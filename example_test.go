package memca_test

import (
	"fmt"
	"time"

	"memca"
)

// ExamplePredictAttack evaluates the paper's Equations (2)-(10) for the
// default RUBBoS model under a strong burst.
func ExamplePredictAttack() {
	m := memca.RUBBoSModel()
	pred, err := memca.PredictAttack(m, memca.ModelAttack{
		D: 0.1, L: 500 * time.Millisecond, I: 2 * time.Second,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("build-up: %v\n", pred.TotalFill.Round(time.Millisecond))
	fmt.Printf("damage period: %v\n", pred.DamagePeriod.Round(time.Millisecond))
	fmt.Printf("millibottleneck: %v\n", pred.Millibottleneck.Round(time.Millisecond))
	fmt.Printf("impact rho: %.3f\n", pred.Impact)
	// Output:
	// build-up: 293ms
	// damage period: 207ms
	// millibottleneck: 544ms
	// impact rho: 0.104
}

// ExamplePlanAttack inverts the model: the weakest attack meeting the
// paper's damage goal under the stealth bound.
func ExamplePlanAttack() {
	m := memca.RUBBoSModel()
	goal := memca.PlanGoal{MinImpact: 0.05, MaxMillibottleneck: time.Second}
	a, err := memca.PlanAttack(m, goal, 2*time.Second)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("D=%.2f L=%v I=%v\n", a.D, a.L.Round(time.Millisecond), a.I)
	// Output:
	// D=0.31 L=884ms I=2s
}

// ExampleProfile reproduces one point of the Section III profiling: six
// co-located VMs on one package under a full-duty memory lock.
func ExampleProfile() {
	cfg := memca.XeonE5_2603v3()
	point, err := memca.Profile(memca.ProfileSpec{
		Host:      cfg,
		VMs:       6,
		Placement: memca.PlacementSamePackage,
		Kind:      memca.AttackMemoryLock,
		LockDuty:  1.0,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("per-VM bandwidth: %.0f MB/s\n", point.PerVMMBps)
	// Output:
	// per-VM bandwidth: 145 MB/s
}

// ExamplePlanSizing inverts the capacity question: instead of predicting
// damage for a given system, find the cheapest RUBBoS sizing that holds
// the SLO even under the worst stealthy burst train the analytical model
// can construct against it.
func ExamplePlanSizing() {
	res, err := memca.PlanSizing(memca.PlanRequest{
		System:  memca.RUBBoSSpec(),
		Traffic: memca.RUBBoSTrafficSpec(),
		SLO:     memca.DefaultSLO(),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("replicas: %v, thread scale: x%d\n", res.Sizing.Replicas, res.Sizing.ThreadScale)
	fmt.Printf("servers: %d\n", res.Sizing.Cost.Servers)
	fmt.Printf("survives worst-case burst train: %v\n", res.Assessment.OKOn)
	// Output:
	// replicas: [1 1 1], thread scale: x4
	// servers: 6
	// survives worst-case burst train: true
}

// ExampleConfig_FromSpec builds a simulation config from the shared spec
// vocabulary, so the planner, the simulator, and the live victim chain
// all describe a system the same way.
func ExampleConfig_FromSpec() {
	sys, err := memca.RUBBoSSpec().WithReplicas([]int{2, 2, 3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg, err := memca.DefaultConfig().FromSpec(sys, memca.RUBBoSTrafficSpec())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, tier := range cfg.Tiers {
		fmt.Printf("%s: %d threads, %d servers\n", tier.Name, tier.QueueLimit, tier.Servers)
	}
	// Output:
	// apache: 200 threads, 4 servers
	// tomcat: 120 threads, 4 servers
	// mysql: 75 threads, 6 servers
}

// ExampleNewExperiment runs a miniature attacked experiment end to end.
func ExampleNewExperiment() {
	cfg := memca.DefaultConfig()
	cfg.Duration = 30 * time.Second
	cfg.Warmup = 5 * time.Second
	cfg.Clients = 700
	cfg.ThinkTime = 1400 * time.Millisecond

	x, err := memca.NewExperiment(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := x.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("attack: %s\n", rep.AttackKind)
	fmt.Printf("goal met: %v\n", rep.GoalMet)
	fmt.Printf("drops observed: %v\n", rep.Drops > 0)
	// Output:
	// attack: memory-lock
	// goal met: true
	// drops observed: true
}
