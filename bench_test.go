// Package memca_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (one Benchmark per artifact)
// plus micro-benchmarks of the simulation kernels. Benchmarks run the
// experiments in quick mode with file output disabled and report the
// headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// doubles as a one-shot reproduction check.
package memca_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"memca"
	"memca/internal/figures"
	"memca/internal/monitor"
	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/stats"
	"memca/internal/telemetry"
)

func benchOpts() figures.Options {
	return figures.Options{Quick: true, Seed: 1}
}

// BenchmarkFig2TailAmplification regenerates Figure 2: per-tier percentile
// response times under MemCA in both cloud environments. Reported metrics:
// client p95/p98 in milliseconds per environment.
func BenchmarkFig2TailAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ClientP95["ec2"].Milliseconds()), "ec2-p95-ms")
		b.ReportMetric(float64(res.ClientP98["ec2"].Milliseconds()), "ec2-p98-ms")
		b.ReportMetric(float64(res.ClientP95["private-cloud"].Milliseconds()), "private-p95-ms")
		if !res.AmplificationOK {
			b.Fatal("tail amplification ordering violated")
		}
	}
}

// BenchmarkFig3BandwidthDegradation regenerates Figure 3: per-VM memory
// bandwidth vs. co-located VM count, placement, and attack type.
func BenchmarkFig3BandwidthDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		sat := res.Curves["same-package/bus-saturation"]
		lock := res.Curves["same-package/memory-lock"]
		b.ReportMetric(sat[0], "1vm-MBps")
		b.ReportMetric(sat[5], "6vm-sat-MBps")
		b.ReportMetric(lock[0], "1vm-lock-MBps")
		if res.SingleVMSaturates || !res.LockBelowSaturation {
			b.Fatal("Figure 3 findings violated")
		}
	}
}

// BenchmarkFig6QueueOverflow regenerates Figure 6: cross-tier queue
// overflow (RPC model) vs. bottleneck-only queueing (tandem model).
func BenchmarkFig6QueueOverflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TandemMySQLMax, "tandem-mysql-peak")
		b.ReportMetric(res.RPCFillOrder[0].Seconds()*1000, "rpc-front-fill-ms")
		if !res.RPCFilled {
			b.Fatal("RPC overflow did not reach the front tier")
		}
	}
}

// BenchmarkFig7TailAmplification regenerates Figure 7: percentile curves
// for the tandem, infinite-front, and finite model variants.
func BenchmarkFig7TailAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cases[figures.Fig7Tandem].ClientP99.Milliseconds()), "tandem-p99-ms")
		b.ReportMetric(float64(res.Cases[figures.Fig7InfiniteFront].ClientP99.Milliseconds()), "inf-front-p99-ms")
		b.ReportMetric(float64(res.Cases[figures.Fig7Finite].ClientP99.Milliseconds()), "finite-p99-ms")
	}
}

// BenchmarkFig8Controller regenerates the control-framework experiment:
// the commander converges on the damage goal from a weak start.
func BenchmarkFig8Controller(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Quick = false // convergence needs the full runway
		res, err := figures.Fig8(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TimeToGoal.Seconds(), "time-to-goal-s")
		b.ReportMetric(res.SustainedFraction, "sustained-frac")
		if !res.GoalReached {
			b.Fatal("controller missed the goal")
		}
	}
}

// BenchmarkFig9Snapshot regenerates Figure 9: the 8-second fine-grained
// view of bursts, CPU saturation, queue propagation, and client damage.
func BenchmarkFig9Snapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BurstsInWindow), "bursts-in-window")
		b.ReportMetric(float64(res.MaxClientRT.Milliseconds()), "max-client-rt-ms")
		if !res.MySQLSaturated || !res.QueuePropagated {
			b.Fatal("snapshot invariants violated")
		}
	}
}

// BenchmarkFig10Stealthiness regenerates Figure 10: the CPU signal at
// three monitoring granularities and the Auto Scaling verdict.
func BenchmarkFig10Stealthiness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxByGranularity[monitor.GranularityCloud], "max-util-1min")
		b.ReportMetric(res.MaxByGranularity[monitor.GranularityFine], "max-util-50ms")
		if res.AutoScalingTriggered || res.ScaleEventsLive != 0 {
			b.Fatal("MemCA triggered auto scaling")
		}
	}
}

// BenchmarkFig11LLCMisses regenerates Figure 11: LLC-miss periodicity
// under bus saturation vs. memory locking.
func BenchmarkFig11LLCMisses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Fig11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SaturationPeriodicity, "sat-periodicity")
		b.ReportMetric(res.LockPeriodicity, "lock-periodicity")
		if res.SaturationPeriodicity <= res.LockPeriodicity {
			b.Fatal("attack signatures not separable")
		}
	}
}

// BenchmarkTable1AnalyticalModel evaluates the analytical model
// (Equations 2-10) plus the inverse planner.
func BenchmarkTable1AnalyticalModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Prediction.Impact, "rho")
		b.ReportMetric(res.Prediction.Millibottleneck.Seconds()*1000, "millibottleneck-ms")
		if !res.PlannedOK {
			b.Fatal("inverse planning failed")
		}
	}
}

// BenchmarkAblationMechanisms quantifies each amplification mechanism's
// contribution to the client tail (slot-holding, finite queues, TCP
// retransmission).
func BenchmarkAblationMechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationMechanisms(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(float64(p.ClientP99.Milliseconds()), p.Label+"-p99-ms")
		}
	}
}

// BenchmarkAblationBurstLength sweeps L: the Equation (7)/(10) trade-off.
func BenchmarkAblationBurstLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.AblationBurstLength(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(float64(first.ClientP95.Milliseconds()), "L100ms-p95-ms")
		b.ReportMetric(float64(last.ClientP95.Milliseconds()), "L800ms-p95-ms")
	}
}

// BenchmarkDefenseEvaluation runs the countermeasure matrix: isolation
// primitives crossed with attack kinds, plus millibottleneck detection.
func BenchmarkDefenseEvaluation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.DefenseEvaluation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DetectorEpisodes), "episodes-50ms")
		b.ReportMetric(float64(res.CoarseDetectorEpisodes), "episodes-1s")
	}
}

// BenchmarkJitterEvasion sweeps burst-interval jitter: damage persists
// while the Figure 11 periodicity signature collapses.
func BenchmarkJitterEvasion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.JitterEvasion(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		b.ReportMetric(first.Periodicity, "periodicity-j0")
		b.ReportMetric(last.Periodicity, "periodicity-j75")
	}
}

// BenchmarkFigAttribution regenerates the latency-attribution figure:
// attacked vs. baseline runs with full per-request tracing, tail
// decomposition, and the dual-resolution blindness ratio.
func BenchmarkFigAttribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.FigAttribution(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.AttackedP99.Milliseconds()), "attacked-p99-ms")
		b.ReportMetric(res.AttackedWaitShare, "attacked-wait-share")
		b.ReportMetric(res.AttackedBlindness, "blindness-ratio")
		if res.AttackedWaitShare < 0.5 {
			b.Fatal("attacked tail not wait-dominated")
		}
	}
}

// BenchmarkReplicateWorkers measures the sweep engine's wall-clock
// scaling: 8 independent replications of a 30-second experiment at 1
// worker (the serial path) versus 4. The replication set is identical in
// both cases — only the wall clock should move. Compare with:
//
//	go test -bench BenchmarkReplicateWorkers -benchtime 3x .
func BenchmarkReplicateWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := memca.DefaultConfig()
			cfg.Clients = 1200
			cfg.Duration = 30 * time.Second
			cfg.Warmup = 10 * time.Second
			for i := 0; i < b.N; i++ {
				reps, err := memca.Replicate(context.Background(), cfg, 8, memca.ReplicateOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(reps) != 8 {
					b.Fatalf("got %d replications, want 8", len(reps))
				}
			}
		})
	}
}

// --- micro-benchmarks of the simulation kernels ---

// BenchmarkEngineEvents measures raw event throughput of the simulator.
func BenchmarkEngineEvents(b *testing.B) {
	e := sim.NewEngine(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(0, tick)
	if err := e.RunAll(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueingThroughput measures simulated requests per wall second
// through the full 3-tier RPC network.
func BenchmarkQueueingThroughput(b *testing.B) {
	e := sim.NewEngine(1)
	n, err := queueing.New(e, queueing.Config{
		Mode: queueing.ModeNTierRPC,
		Tiers: []queueing.TierConfig{
			{Name: "a", QueueLimit: 100, Servers: 2, Service: sim.NewExponential(600 * time.Microsecond)},
			{Name: "b", QueueLimit: 60, Servers: 2, Service: sim.NewExponential(1200 * time.Microsecond)},
			{Name: "c", QueueLimit: 25, Servers: 2, Service: sim.NewExponential(1600 * time.Microsecond)},
		},
		Classes: []queueing.Class{{Name: "full", Depth: 2}},
	})
	if err != nil {
		b.Fatal(err)
	}
	done := 0
	var submit func()
	submit = func() {
		_, err := n.Submit(queueing.SubmitOpts{Class: 0, OnComplete: func(*queueing.Request) {
			done++
			if done < b.N {
				submit()
			}
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	submit()
	if err := e.RunAll(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueueingThroughputTraced is BenchmarkQueueingThroughput with a
// telemetry tracer attached: the per-request overhead of full span
// recording, attribution stamping, sampling, and timeline booking. The
// gap to the untraced benchmark is the enabled-tracing cost; -benchmem
// must report 1 alloc/op — the same request-pool amortization as the
// untraced path, with zero additional allocations from tracing.
func BenchmarkQueueingThroughputTraced(b *testing.B) {
	e := sim.NewEngine(1)
	tr, err := telemetry.New(e, telemetry.Config{
		Spec: telemetry.Spec{
			MaxActive:   4096,
			EventRing:   1 << 14,
			TailKeep:    512,
			HeadEvery:   64,
			HeadKeep:    512,
			Resolutions: []time.Duration{50 * time.Millisecond, time.Second},
		},
		Tiers:   3,
		Seed:    1,
		Horizon: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	n, err := queueing.New(e, queueing.Config{
		Mode: queueing.ModeNTierRPC,
		Tiers: []queueing.TierConfig{
			{Name: "a", QueueLimit: 100, Servers: 2, Service: sim.NewExponential(600 * time.Microsecond)},
			{Name: "b", QueueLimit: 60, Servers: 2, Service: sim.NewExponential(1200 * time.Microsecond)},
			{Name: "c", QueueLimit: 25, Servers: 2, Service: sim.NewExponential(1600 * time.Microsecond)},
		},
		Classes:  []queueing.Class{{Name: "full", Depth: 2}},
		Observer: tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	done := 0
	var submit func()
	submit = func() {
		_, err := n.Submit(queueing.SubmitOpts{Class: 0, OnComplete: func(*queueing.Request) {
			done++
			if done < b.N {
				submit()
			}
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	submit()
	if err := e.RunAll(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExperimentMinute measures wall time per simulated minute of the
// full default experiment (3500 clients under attack).
func BenchmarkExperimentMinute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := memca.DefaultConfig()
		cfg.Duration = time.Minute
		cfg.Warmup = 10 * time.Second
		x, err := memca.NewExperiment(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := x.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Client.P95.Milliseconds()), "p95-ms")
	}
}

// BenchmarkPercentileSample measures the exact-quantile kernel.
func BenchmarkPercentileSample(b *testing.B) {
	s := stats.NewSample(100000)
	for i := 0; i < 100000; i++ {
		s.Add(time.Duration(i*7919%100000) * time.Microsecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(time.Duration(i) * time.Microsecond) // invalidate the cache
		_ = s.Percentile(95)
	}
}

// BenchmarkStatsRecord measures one sweep job's worth of arena-backed
// stats work — checkout, record past the capacity hints, sort/query,
// recycle — the steady-state kernel behind every figure run. The
// allocs/op contract is 0: after warm-up the arena serves every slab and
// object shell from its free lists, including the radix sort's scratch.
func BenchmarkStatsRecord(b *testing.B) {
	a := stats.NewArena()
	record := func() {
		s := a.Sample(1024)
		h := a.LatencyHistogram()
		for j := 0; j < 4096; j++ {
			d := time.Duration(j%977) * time.Millisecond
			s.Add(d)
			h.Add(d)
		}
		if s.Quantile(0.99) == 0 {
			b.Fatal("unexpected zero quantile")
		}
		a.Reset()
	}
	for i := 0; i < 8; i++ {
		record() // warm the slab classes and free-list spines
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		record()
	}
}

// BenchmarkP2Quantile measures the streaming quantile estimator.
func BenchmarkP2Quantile(b *testing.B) {
	p2, err := stats.NewP2Quantile(0.95)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p2.Add(float64(i % 1000))
	}
}

// BenchmarkBandwidthAllocation measures the host bandwidth allocator.
func BenchmarkBandwidthAllocation(b *testing.B) {
	spec := memca.ProfileSpec{
		Host:      memca.XeonE5_2603v3(),
		VMs:       6,
		Placement: memca.PlacementSamePackage,
		Kind:      memca.AttackMemoryLock,
		LockDuty:  1.0,
	}
	for i := 0; i < b.N; i++ {
		if _, err := memca.Profile(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtract measures the streaming per-window feature
// booking the tracer performs on every closed trace — the detection
// features behind the attribution detector. The allocs/op contract is 0:
// the series is pre-sized for its horizon at construction, so steady-state
// extraction never touches the heap.
func BenchmarkFeatureExtract(b *testing.B) {
	fs, err := telemetry.NewFeatureSeries(50*time.Millisecond, time.Minute, time.Second)
	if err != nil {
		b.Fatal(err)
	}
	book := func(i int) {
		end := time.Duration(i%60000) * time.Millisecond
		fs.Add(end, 1200*time.Millisecond, 90*time.Millisecond, 60*time.Millisecond,
			1050*time.Millisecond, 2, 1)
	}
	// Extend every window once so the measured phase only updates in place.
	for i := 0; i < 60000; i++ {
		book(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		book(i)
	}
	if len(fs.Windows()) == 0 {
		b.Fatal("no windows booked")
	}
}
