// Package memca is a simulation-backed reproduction of "Tail Amplification
// in n-Tier Systems: A Study of Transient Cross-Resource Contention
// Attacks" (ICDCS 2019): the MemCA attack, the n-tier queueing substrate
// it targets, the memory-contention model that couples a co-located
// adversary's memory traffic to the victim's CPU capacity, the analytical
// model of Equations (2)-(10), the Kalman-filtered attack controller, and
// the monitoring/elasticity stack the attack evades.
//
// The public surface re-exports the orchestration layer: build a Config,
// create an Experiment, Run it, and inspect the Report.
//
//	cfg := memca.DefaultConfig()
//	x, err := memca.NewExperiment(cfg)
//	if err != nil { ... }
//	report, err := x.Run()
//	fmt.Println(report.Render())
//
// Deeper layers (the queueing network, the host memory model, the burst
// scheduler) are exposed through the Experiment accessors; the analytical
// model and bandwidth profiler are re-exported below for direct use.
package memca

import (
	"context"
	"time"

	"memca/internal/analytical"
	"memca/internal/attack"
	"memca/internal/control"
	"memca/internal/core"
	"memca/internal/memmodel"
	"memca/internal/monitor"
	"memca/internal/plan"
	"memca/internal/spec"
	"memca/internal/sweep"
	"memca/internal/telemetry"
)

// Re-exported orchestration types.
type (
	// Config assembles one experiment run.
	Config = core.Config
	// Env selects the modelled cloud environment.
	Env = core.Env
	// AttackSpec configures the adversary.
	AttackSpec = core.AttackSpec
	// FeedbackSpec enables the MemCA-BE control loop.
	FeedbackSpec = core.FeedbackSpec
	// ScalingSpec enables elastic scaling during the run.
	ScalingSpec = core.ScalingSpec
	// DefenseSpec enables host-side countermeasures on the victim host.
	DefenseSpec = core.DefenseSpec
	// Experiment is one wired run.
	Experiment = core.Experiment
	// Report is the distilled outcome.
	Report = core.Report
	// TierReport summarizes one tier.
	TierReport = core.TierReport
	// Replication is one repetition of a replicated experiment.
	Replication = core.Replication
	// ReplicateOptions control parallel replication.
	ReplicateOptions = core.ReplicateOptions
)

// Re-exported per-request telemetry types (see internal/telemetry).
type (
	// TraceSpec enables per-request causal tracing via Config.Trace.
	TraceSpec = telemetry.Spec
	// Tracer reconstructs per-request traces; reach it through
	// Experiment.Tracer.
	Tracer = telemetry.Tracer
	// TraceAttribution decomposes one traced request's response time.
	TraceAttribution = telemetry.Attribution
	// TraceBreakdown summarizes attribution records by component.
	TraceBreakdown = telemetry.Breakdown
)

// DefaultTraceSpec returns tracer settings sized for the paper's
// experiments (see telemetry.DefaultSpec).
func DefaultTraceSpec() TraceSpec { return telemetry.DefaultSpec() }

// Re-exported attack and control types.
type (
	// AttackParams are the (R, L, I) knobs of Equation (1).
	AttackParams = attack.Params
	// Goal is the damage/stealth objective of the controller.
	Goal = control.Goal
	// Bounds clamp the controller's search space.
	Bounds = control.Bounds
)

// Re-exported analytical-model types (Equations 2-10).
type (
	// Model is the n-tier analytical model.
	Model = analytical.Model
	// ModelTier holds one tier's Table I parameters.
	ModelTier = analytical.Tier
	// ModelAttack is an analytical attack parameterization.
	ModelAttack = analytical.Attack
	// Prediction is the closed-form attack outcome.
	Prediction = analytical.Prediction
)

// Re-exported memory-model types.
type (
	// HostConfig describes a physical host's memory subsystem.
	HostConfig = memmodel.HostConfig
	// VictimProfile characterizes bandwidth sensitivity.
	VictimProfile = memmodel.VictimProfile
	// BandwidthPoint is one Figure 3 measurement.
	BandwidthPoint = memmodel.BandwidthPoint
	// ProfileSpec describes one bandwidth-profiling experiment.
	ProfileSpec = memmodel.ProfileSpec
)

// PlanGoal is the analytical planning objective of PlanAttack: the minimum
// acceptable damage and the stealth ceiling on millibottleneck duration.
// (The runtime controller's objective is the separate Goal type.)
type PlanGoal = analytical.Goal

// Re-exported deployment-spec vocabulary (see internal/spec): one
// description of an n-tier system, its traffic forecast, and its SLO,
// shared by the capacity planner, the simulator (Config.FromSpec /
// Config.Spec), and the live victim daemon.
type (
	// SystemSpec describes an n-tier deployment as per-replica templates.
	SystemSpec = spec.System
	// TierSpec is one tier's template (threads, servers, service time).
	TierSpec = spec.TierSpec
	// TrafficSpec is a closed-loop population plus a forecast shape.
	TrafficSpec = spec.Traffic
	// SLOSpec is the objective a sizing must hold.
	SLOSpec = spec.SLO
)

// Re-exported capacity-planner types (see internal/plan).
type (
	// PlanRequest is one sizing problem for PlanSizing.
	PlanRequest = plan.Request
	// PlanResult is the planner's verdict: the cheapest feasible sizing,
	// its assessment, sustainable-rate ceilings, and the minimality
	// witness.
	PlanResult = plan.Result
	// PlanOptions cap the sizing search.
	PlanOptions = plan.Options
	// PlanAdversary bounds the attacker the planner sizes against.
	PlanAdversary = plan.Adversary
	// PlanAssessment is the oracle's verdict on one sizing.
	PlanAssessment = plan.Assessment
	// PlanSizingChoice is one point of the sizing search space.
	PlanSizingChoice = plan.Sizing
)

// ErrInfeasible marks analytical problems with no feasible answer: an
// attack goal no parameters meet, or a model whose offered load already
// exceeds a tier's attack-free capacity (check with errors.Is).
var ErrInfeasible = analytical.ErrInfeasible

// ErrNoFeasibleSizing marks planning problems no sizing within the
// search caps solves (check with errors.Is).
var ErrNoFeasibleSizing = plan.ErrNoFeasibleSizing

// RUBBoSSpec returns the per-replica tier templates of the paper's
// RUBBoS deployment — the spec-level twin of the default Config topology.
func RUBBoSSpec() SystemSpec { return spec.RUBBoSSystem() }

// RUBBoSTrafficSpec returns the paper's evaluation population (3500
// clients, 7 s think) as a flat-forecast traffic spec.
func RUBBoSTrafficSpec() TrafficSpec { return spec.RUBBoSTraffic() }

// DefaultSLO returns the default provisioning objective: p99 under
// 500 ms with at most 1% of requests dropped.
func DefaultSLO() SLOSpec { return spec.DefaultSLO() }

// DefaultPlanAdversary returns the stealthy attacker the planner sizes
// against by default.
func DefaultPlanAdversary() PlanAdversary { return plan.DefaultAdversary() }

// PlanSizing inverts the analytical model into a capacity plan: the
// cheapest replica counts and thread-pool scales that hold the SLO both
// attack-free and under the worst-case stealthy MemCA burst train.
func PlanSizing(req PlanRequest) (PlanResult, error) { return plan.Solve(req) }

// Environments.
const (
	// EnvPrivateCloud models the paper's OpenStack/KVM testbed.
	EnvPrivateCloud = core.EnvPrivateCloud
	// EnvEC2 models the Amazon EC2 dedicated-host deployment.
	EnvEC2 = core.EnvEC2
)

// Attack kinds.
const (
	// AttackBusSaturation streams through memory to saturate the bus.
	AttackBusSaturation = memmodel.AttackBusSaturation
	// AttackMemoryLock asserts bus locks with unaligned atomics (the
	// paper's evaluation choice: strictly more effective).
	AttackMemoryLock = memmodel.AttackMemoryLock
)

// Placement modes for bandwidth profiling.
const (
	// PlacementSamePackage pins all VMs to one package.
	PlacementSamePackage = memmodel.PlacementSamePackage
	// PlacementRandomPackage floats VMs over all packages.
	PlacementRandomPackage = memmodel.PlacementRandomPackage
)

// FigurePercentiles is the percentile grid of Report curves (Figures 2
// and 7). Treat it as read-only.
func FigurePercentiles() []float64 {
	cp := make([]float64, len(core.FigurePercentiles))
	copy(cp, core.FigurePercentiles)
	return cp
}

// DefaultConfig returns the paper's RUBBoS evaluation setup: 3500 clients,
// 3 minutes, memory-lock attack with I = 2 s and L = 500 ms on EC2.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultFeedback returns the paper's control goal: client p95 above 1 s
// with millibottlenecks under 1 s.
func DefaultFeedback() FeedbackSpec { return core.DefaultFeedback() }

// NewExperiment validates a configuration and wires every component.
func NewExperiment(cfg Config) (*Experiment, error) { return core.NewExperiment(cfg) }

// Replicate runs the experiment `runs` times with deterministically
// derived per-run seeds, fanning the runs over up to opts.Workers
// goroutines; the result set is identical for every worker count.
func Replicate(ctx context.Context, cfg Config, runs int, opts ReplicateOptions) ([]Replication, error) {
	return core.Replicate(ctx, cfg, runs, opts)
}

// DeriveSeed deterministically derives the seed of replication `index`
// from a base seed (a splitmix64 step; the scheme is frozen).
func DeriveSeed(base int64, index int) int64 { return sweep.DeriveSeed(base, index) }

// RUBBoSModel returns the analytical model matching the default topology.
func RUBBoSModel() Model { return analytical.RUBBoS3Tier() }

// PredictAttack evaluates Equations (2)-(10) for an attack on a model.
func PredictAttack(m Model, a ModelAttack) (Prediction, error) { return m.Predict(a) }

// PlanAttack inverts the model: find the weakest attack parameters that
// meet the goal's damage floor under its stealth bound at the given burst
// interval.
func PlanAttack(m Model, goal PlanGoal, interval time.Duration) (ModelAttack, error) {
	return analytical.PlanAttack(m, goal, interval)
}

// PlanAttackArgs is the positional-argument form of PlanAttack.
//
// Deprecated: use PlanAttack with a PlanGoal.
func PlanAttackArgs(m Model, minImpact float64, maxMillibottleneck, interval time.Duration) (ModelAttack, error) {
	return PlanAttack(m, PlanGoal{MinImpact: minImpact, MaxMillibottleneck: maxMillibottleneck}, interval)
}

// XeonE5_2603v3 returns the paper's private-cloud host model.
func XeonE5_2603v3() HostConfig { return memmodel.XeonE5_2603v3() }

// EC2DedicatedHost returns the paper's EC2 dedicated-host model.
func EC2DedicatedHost() HostConfig { return memmodel.EC2DedicatedHost() }

// Profile measures the per-VM available memory bandwidth under the given
// co-location and attack (the Section III profiling experiment).
func Profile(spec ProfileSpec) (BandwidthPoint, error) { return memmodel.Profile(spec) }

// Sweep profiles 1..spec.VMs co-located VMs (one Figure 3 curve).
func Sweep(spec ProfileSpec) ([]BandwidthPoint, error) { return memmodel.Sweep(spec) }

// ProfileBandwidth is the positional-argument form of Profile.
//
// Deprecated: use Profile with a ProfileSpec.
func ProfileBandwidth(cfg HostConfig, vms int, placement memmodel.PlacementMode, kind memmodel.AttackKind, lockDuty float64) (BandwidthPoint, error) {
	return Profile(ProfileSpec{Host: cfg, VMs: vms, Placement: placement, Kind: kind, LockDuty: lockDuty})
}

// BandwidthSweep is the positional-argument form of Sweep.
//
// Deprecated: use Sweep with a ProfileSpec.
func BandwidthSweep(cfg HostConfig, maxVMs int, placement memmodel.PlacementMode, kind memmodel.AttackKind, lockDuty float64) ([]BandwidthPoint, error) {
	return Sweep(ProfileSpec{Host: cfg, VMs: maxVMs, Placement: placement, Kind: kind, LockDuty: lockDuty})
}

// DefaultAutoScaler returns the modelled AWS trigger: 85% average CPU over
// one 1-minute CloudWatch period.
func DefaultAutoScaler() monitor.AutoScalerConfig { return monitor.DefaultAutoScaler() }
