// Command memca-be runs the MemCA backend: it probes the target web
// system's front door, smooths the tail-latency signal through a Kalman
// filter, and retunes the connected frontend's attack parameters toward
// the damage goal under the stealthiness bound.
//
// Usage:
//
//	memca-be -fe 127.0.0.1:7070 -target http://victim.example/ -goal-p95 1s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memca/internal/attack"
	"memca/internal/control"
	"memca/internal/memcafw"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memca-be:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		feAddr    = flag.String("fe", "127.0.0.1:7070", "frontend TCP address")
		target    = flag.String("target", "", "target URL to probe (required)")
		probeTmo  = flag.Duration("probe-timeout", 3*time.Second, "probe HTTP timeout")
		probeEach = flag.Duration("probe-period", time.Second, "probe period")
		goalP95   = flag.Duration("goal-p95", time.Second, "damage goal: p95 response time to exceed")
		maxMB     = flag.Duration("max-millibottleneck", time.Second, "stealth bound on millibottleneck length")
		decide    = flag.Duration("decide-every", 5*time.Second, "commander decision period")
		duration  = flag.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
	)
	flag.Parse()
	if *target == "" {
		return fmt.Errorf("-target is required")
	}

	be, err := memcafw.NewBackend(memcafw.BackendConfig{
		FEAddr:      *feAddr,
		Probe:       memcafw.HTTPProbe(*target, *probeTmo),
		ProbePeriod: *probeEach,
		Goal: control.Goal{
			Percentile:         95,
			TargetRT:           *goalP95,
			MaxMillibottleneck: *maxMB,
		},
		Bounds: control.DefaultBounds(),
		Initial: attack.Params{
			Intensity:   0.5,
			BurstLength: 100 * time.Millisecond,
			Interval:    2 * time.Second,
		},
		DecisionEvery: *decide,
		Logger:        log.New(os.Stderr, "memca-be ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	log.Printf("memca-be connected to FE %s (program %s), probing %s",
		be.FEInfo().FEID, be.FEInfo().Program, *target)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	return be.Run(ctx)
}
