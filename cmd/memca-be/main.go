// Command memca-be runs the MemCA backend: it probes the target web
// system's front door, smooths the tail-latency signal through a Kalman
// filter, and retunes the connected frontend's attack parameters toward
// the damage goal under the stealthiness bound.
//
// Usage:
//
//	memca-be -fe 127.0.0.1:7070 -target http://victim.example/ -goal-p95 1s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memca/internal/attack"
	"memca/internal/control"
	"memca/internal/memcafw"
	"memca/internal/telemetry"
	"memca/internal/telemetry/live"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memca-be:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		feAddr    = flag.String("fe", "127.0.0.1:7070", "frontend TCP address")
		target    = flag.String("target", "", "target URL to probe (required)")
		probeTmo  = flag.Duration("probe-timeout", 3*time.Second, "probe HTTP timeout")
		probeEach = flag.Duration("probe-period", time.Second, "probe period")
		goalP95   = flag.Duration("goal-p95", time.Second, "damage goal: p95 response time to exceed")
		maxMB     = flag.Duration("max-millibottleneck", time.Second, "stealth bound on millibottleneck length")
		decide    = flag.Duration("decide-every", 5*time.Second, "commander decision period")
		duration  = flag.Duration("duration", 0, "stop after this long (0 = run until interrupted)")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace of the probes on exit (empty disables)")
		otlpOut   = flag.String("otlp-out", "", "write an OTLP/JSON export of the probes on exit (empty disables)")
	)
	flag.Parse()
	if *target == "" {
		return fmt.Errorf("-target is required")
	}

	// With a trace target, probes carry trace context: each probe is a
	// client-side trace (an instrumented victim's tiers see the header and
	// record their own spans server-side).
	var col *live.Collector
	probe := memcafw.HTTPProbe(*target, *probeTmo)
	if *traceOut != "" || *otlpOut != "" {
		var err error
		col, err = live.New(live.Config{Events: 1 << 16})
		if err != nil {
			return err
		}
		probe = memcafw.TracedHTTPProbe(*target, *probeTmo, col)
	}

	be, err := memcafw.NewBackend(memcafw.BackendConfig{
		FEAddr:      *feAddr,
		Probe:       probe,
		ProbePeriod: *probeEach,
		Goal: control.Goal{
			Percentile:         95,
			TargetRT:           *goalP95,
			MaxMillibottleneck: *maxMB,
		},
		Bounds: control.DefaultBounds(),
		Initial: attack.Params{
			Intensity:   0.5,
			BurstLength: 100 * time.Millisecond,
			Interval:    2 * time.Second,
		},
		DecisionEvery: *decide,
		Logger:        log.New(os.Stderr, "memca-be ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	log.Printf("memca-be connected to FE %s (program %s), probing %s",
		be.FEInfo().FEID, be.FEInfo().Program, *target)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}
	runErr := be.Run(ctx)
	if col != nil {
		rep := col.Report()
		log.Printf("memca-be traced %d probes (%d open, %d events dropped)",
			len(rep.Attributions), rep.Open, rep.DroppedEvents)
		if *traceOut != "" {
			if err := telemetry.WriteChromeTrace(*traceOut, rep.TierNames, rep.Events); err != nil {
				return err
			}
		}
		if *otlpOut != "" {
			spec := telemetry.OTLPSpec{ServicePrefix: "memca-be", EpochNanos: col.Epoch().UnixNano()}
			if err := telemetry.WriteOTLP(*otlpOut, spec, rep.TierNames, rep.Events); err != nil {
				return err
			}
		}
	}
	return runErr
}
