// Command memca-lint runs the project's custom static-analysis suite over
// the given go-list package patterns (default ./...). It enforces the
// invariants the paper reproduction rests on — sim determinism, the
// simulated/wall clock boundary, epsilon float comparison, and no silently
// dropped errors — and exits non-zero on any finding so it can gate CI.
//
// Usage:
//
//	go run ./cmd/memca-lint ./...
//	go run ./cmd/memca-lint -analyzers simdeterminism,clockdiscipline ./internal/...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memca/internal/lint"
)

func main() {
	var (
		names = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list  = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*names, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "memca-lint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "memca-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memca-lint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers, lint.DefaultConfig())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "memca-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
