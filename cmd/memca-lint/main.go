// Command memca-lint runs the project's custom static-analysis suite over
// the given go-list package patterns (default ./...). It enforces the
// invariants the paper reproduction rests on — sim determinism, the
// simulated/wall clock boundary, epsilon float comparison, no silently
// dropped errors, the //memca:hotpath allocation discipline, and the
// atomic-access discipline — and exits non-zero on any finding so it can
// gate CI. On top of the AST suite it runs the allocbound escape-budget
// gate: the compiler's escape analysis over the hot-path packages must
// match the checked-in budget (internal/lint/testdata/escape_budget.json).
//
// Usage:
//
//	go run ./cmd/memca-lint ./...
//	go run ./cmd/memca-lint -analyzers simdeterminism,clockdiscipline ./internal/...
//	go run ./cmd/memca-lint -json ./...            # JSON Lines output
//	go run ./cmd/memca-lint -github ./...          # GitHub annotations
//	go run ./cmd/memca-lint -update-budget         # accept current escapes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memca/internal/lint"
)

func main() {
	var (
		names        = flag.String("analyzers", "", "comma-separated analyzer subset (default: all, plus the allocbound budget gate)")
		list         = flag.Bool("list", false, "list available analyzers and exit")
		jsonOut      = flag.Bool("json", false, "emit machine-readable JSON Lines (file, line, col, analyzer, message)")
		github       = flag.Bool("github", false, "emit GitHub Actions ::error annotations alongside the plain findings")
		updateBudget = flag.Bool("update-budget", false, "regenerate the escape budget from the current code and exit")
		budgetPath   = flag.String("escape-budget", lint.DefaultBudgetPath, "escape budget file, relative to the working directory")
		skipBudget   = flag.Bool("skip-budget", false, "skip the allocbound escape-budget gate (AST analyzers only)")
	)
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-16s %s\n", "allocbound", "no heap escapes in hot-path packages beyond the checked-in budget")
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	cfg := lint.DefaultConfig()

	if *updateBudget {
		n, err := lint.WriteBudget(wd, *budgetPath, cfg.EscapeBudget)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("memca-lint: wrote %s: %d accepted escape(s) across %d package(s)\n", *budgetPath, n, len(cfg.EscapeBudget))
		return
	}

	runBudget := !*skipBudget
	if *names != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*names, ",") {
			want[strings.TrimSpace(n)] = true
		}
		// allocbound is not an AST analyzer; it runs iff selected.
		runBudget = want["allocbound"]
		delete(want, "allocbound")
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "memca-lint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(pkgs, analyzers, cfg)

	if runBudget {
		budgetDiags, stale, err := lint.CheckEscapeBudget(wd, *budgetPath, cfg)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, budgetDiags...)
		for _, note := range stale {
			fmt.Fprintf(os.Stderr, "memca-lint: note: %s\n", note)
		}
	}

	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *github {
		if err := lint.WriteGitHubAnnotations(os.Stdout, diags); err != nil {
			fatal(err)
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "memca-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		if hasAnalyzer(diags, "allocbound") {
			fmt.Fprintln(os.Stderr, "memca-lint: escape budget drift: the hot path gained heap escapes.")
			fmt.Fprintln(os.Stderr, "memca-lint: fix the allocation, or accept it deliberately with:")
			fmt.Fprintln(os.Stderr, "memca-lint:     go run ./cmd/memca-lint -update-budget")
			fmt.Fprintln(os.Stderr, "memca-lint: and commit the regenerated "+*budgetPath)
		}
		os.Exit(1)
	}
}

func hasAnalyzer(diags []lint.Diagnostic, name string) bool {
	for _, d := range diags {
		if d.Analyzer == name {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "memca-lint: %v\n", err)
	os.Exit(2)
}
