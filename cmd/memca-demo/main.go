// Command memca-demo runs the complete MemCA loop live, in one process, on
// real sockets: a real 3-tier HTTP system (victimd), a closed-loop HTTP
// client population, the MemCA-FE daemon executing ON-OFF bursts against
// the db tier's capacity (standing in for co-located memory contention),
// and the MemCA-BE controller probing the web tier and tuning the attack
// over TCP. It prints per-phase client latency percentiles: baseline,
// under attack, and after the attack stops.
//
// With -trace-out/-otlp-out/-attrib-out the whole run is causally traced:
// every client request carries a trace ID through web→app→db, each tier
// records wall-clock spans into a shared collector, and the same exporters
// the simulator uses write Chrome trace-event JSON, OTLP/JSON, and
// per-trace attribution CSVs — one telemetry pipeline for simulated and
// real runs.
//
//	go run ./cmd/memca-demo -duration 20s -trace-out out/demo/trace.json -otlp-out out/demo/otlp.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"memca/internal/attack"
	"memca/internal/control"
	"memca/internal/memcafw"
	"memca/internal/telemetry"
	"memca/internal/telemetry/live"
	"memca/internal/victimd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memca-demo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		phase       = flag.Duration("duration", 15*time.Second, "length of each phase (baseline, attack, recovery)")
		clients     = flag.Int("clients", 16, "closed-loop HTTP clients")
		d           = flag.Float64("degradation", 0.05, "degradation index during bursts")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON of the live run (empty disables)")
		otlpOut     = flag.String("otlp-out", "", "write an OTLP/JSON export of the live run (empty disables)")
		attribOut   = flag.String("attrib-out", "", "write a per-trace attribution CSV of the live run (empty disables)")
		traceEvents = flag.Int("trace-events", 1<<18, "live span-event log capacity when tracing")
	)
	flag.Parse()

	// Any export target switches the full causal-tracing pipeline on.
	var col *live.Collector
	if *traceOut != "" || *otlpOut != "" || *attribOut != "" {
		var err error
		col, err = live.New(live.Config{Tiers: victimd.TierNames(), Events: *traceEvents})
		if err != nil {
			return err
		}
	}

	sysCfg := victimd.DefaultSystem()
	sysCfg.Trace = col
	sys, err := victimd.StartSystem(sysCfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sys.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closing system:", cerr)
		}
	}()
	fmt.Printf("victim 3-tier system: web %s -> app %s -> db %s\n",
		sys.Web.URL(), sys.App.URL(), sys.DB.URL())

	// Closed-loop client population against the web tier; when tracing,
	// every client request is a traced logical request with up to three
	// attempts (the paper's RTO-driven retransmission behaviour).
	var tcl *live.Client
	if col != nil {
		tcl, err = live.NewClient(live.ClientConfig{
			Collector:   col,
			HTTP:        &http.Client{Timeout: 5 * time.Second},
			MaxAttempts: 3,
			Backoff:     100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
	}
	lg := newLoadGen(sys.Web.URL()+"/", *clients, tcl)
	lg.Start()
	defer lg.Stop()

	measure := func(name string) {
		lg.Reset()
		time.Sleep(*phase)
		p50, p95, p99, n, errs := lg.Percentiles()
		fmt.Printf("%-10s n=%-6d p50=%-10v p95=%-10v p99=%-10v errors=%d\n",
			name, n, p50.Round(time.Millisecond), p95.Round(time.Millisecond), p99.Round(time.Millisecond), errs)
	}

	measure("baseline")

	// MemCA-FE with the capacity-control attack program, MemCA-BE with
	// an HTTP probe — the real framework over real TCP.
	prog, err := memcafw.NewControlProgram(sys.DB.URL()+"/control/capacity", *d)
	if err != nil {
		return err
	}
	fe, err := memcafw.NewFrontend(memcafw.FrontendConfig{
		ID:      "demo-fe",
		Listen:  "127.0.0.1:0",
		Program: prog,
		Initial: memcafw.ParamsMsg{Intensity: 1, BurstMs: 500, IntervalMs: 2000},
	})
	if err != nil {
		return err
	}
	go func() {
		if serr := fe.Serve(); serr != nil {
			fmt.Fprintln(os.Stderr, "fe:", serr)
		}
	}()
	defer func() {
		if cerr := fe.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closing fe:", cerr)
		}
	}()

	probe := memcafw.HTTPProbe(sys.Web.URL()+"/", 2*time.Second)
	if col != nil {
		probe = memcafw.TracedHTTPProbe(sys.Web.URL()+"/", 2*time.Second, col)
	}
	be, err := memcafw.NewBackend(memcafw.BackendConfig{
		FEAddr:      fe.Addr(),
		Probe:       probe,
		ProbePeriod: 500 * time.Millisecond,
		Goal:        control.Goal{Percentile: 95, TargetRT: 300 * time.Millisecond, MaxMillibottleneck: time.Second},
		Bounds:      control.DefaultBounds(),
		Initial:     attack.Params{Intensity: 1, BurstLength: 500 * time.Millisecond, Interval: 2 * time.Second},
	})
	if err != nil {
		return err
	}
	attackCtx, stopAttack := context.WithCancel(context.Background())
	beDone := make(chan error, 1)
	go func() { beDone <- be.Run(attackCtx) }()

	measure("attack")
	fmt.Printf("           FE executed %d bursts; BE received %d reports; BE window p95 = %v\n",
		fe.Bursts(), len(be.Reports()), be.TailRT(95).Round(time.Millisecond))

	stopAttack()
	if err := <-beDone; err != nil {
		fmt.Fprintln(os.Stderr, "be:", err)
	}

	measure("recovery")

	if col != nil {
		if err := exportTrace(col, be, sys, *traceOut, *otlpOut, *attribOut); err != nil {
			return err
		}
	}
	return nil
}

// exportTrace assembles the live collector after the run quiesces, writes
// the requested artifacts, and prints the per-request view an aggregate
// monitor cannot give: the >=p99 critical-path decomposition, the
// burst-aligned probe windows, and the coarse counters for contrast.
func exportTrace(col *live.Collector, be *memcafw.Backend, sys *victimd.System, traceOut, otlpOut, attribOut string) error {
	rep := col.Report()
	fmt.Printf("\nlive trace: %d closed traces, %d still open, %d orphan spans, %d events dropped\n",
		len(rep.Attributions), rep.Open, rep.Orphans, rep.DroppedEvents)

	if traceOut != "" {
		if err := telemetry.WriteChromeTrace(traceOut, rep.TierNames, rep.Events); err != nil {
			return err
		}
		fmt.Printf("  chrome trace:    %s (%d span events)\n", traceOut, len(rep.Events))
	}
	if otlpOut != "" {
		spec := telemetry.OTLPSpec{ServicePrefix: "memca-demo", EpochNanos: col.Epoch().UnixNano()}
		if err := telemetry.WriteOTLP(otlpOut, spec, rep.TierNames, rep.Events); err != nil {
			return err
		}
		fmt.Printf("  otlp export:     %s\n", otlpOut)
	}
	if attribOut != "" {
		if err := telemetry.WriteAttributionCSV(attribOut, rep.TierNames, rep.Attributions); err != nil {
			return err
		}
		fmt.Printf("  attribution csv: %s\n", attribOut)
	}
	if len(rep.Attributions) == 0 {
		return nil
	}

	// The tail decomposition over the whole run's >=p99 traces.
	p99 := rep.PercentileRT(99)
	b := telemetry.Summarize(len(rep.TierNames), rep.TailOver(p99))
	fmt.Printf("  >=p99 (%v) tail over %d traces: wait share %.1f%%, retransmission wait share %.1f%%\n",
		p99.Round(time.Millisecond), b.Count, b.WaitShare()*100, share(b.RetransWait, b.RT)*100)
	for i, tn := range rep.TierNames {
		fmt.Printf("    %-4s queue %5.1f%%  service %5.1f%%\n",
			tn, share(b.Queue[i], b.RT)*100, share(b.Service[i], b.RT)*100)
	}

	// Dual-resolution blindness on the live run.
	if tls, err := rep.Timelines(50*time.Millisecond, time.Second); err == nil {
		fmt.Printf("  monitoring blindness: 50ms vs 1s window-mean peak ratio %.2fx\n",
			telemetry.BlindnessRatio(tls[0], tls[1]))
	}

	// Burst-aligned probe windows: how many bursts contain a tail probe.
	wins := be.BurstWindows(500 * time.Millisecond)
	hit := 0
	for _, w := range wins {
		if w.MaxRT() >= p99 {
			hit++
		}
	}
	fmt.Printf("  burst alignment: %d/%d burst windows contain a >=p99 probe\n", hit, len(wins))

	// The coarse counters an operator would have had instead.
	fmt.Printf("  coarse per-tier counters (the aggregate view):\n")
	for _, tier := range []*victimd.Tier{sys.Web, sys.App, sys.DB} {
		line, err := counterLine(tier.URL() + "/debug/counters")
		if err != nil {
			return err
		}
		fmt.Printf("    %s\n", line)
	}
	return nil
}

func share(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// counterLine fetches one tier's plaintext counters and compresses them
// to a single display line.
func counterLine(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", err
	}
	vals := map[string]string{}
	for _, line := range strings.Split(string(body), "\n") {
		if f := strings.Fields(line); len(f) == 2 {
			vals[strings.TrimPrefix(f[0], "victimd.")] = f[1]
		}
	}
	return fmt.Sprintf("%-4s served=%s rejected=%s queue_wait_ns=%s service_ns=%s",
		vals["tier"], vals["served"], vals["rejected"], vals["queue_wait_ns_total"], vals["service_ns_total"]), nil
}

// loadGen is a minimal closed-loop HTTP client population. With a traced
// client each request becomes a traced logical request (retries included);
// without one it degrades to plain GETs.
type loadGen struct {
	url     string
	clients int
	client  *http.Client
	traced  *live.Client

	mu    sync.Mutex
	rts   []time.Duration
	errs  int
	stopC chan struct{}
	wg    sync.WaitGroup
}

func newLoadGen(url string, clients int, traced *live.Client) *loadGen {
	return &loadGen{
		url:     url,
		clients: clients,
		client:  &http.Client{Timeout: 5 * time.Second},
		traced:  traced,
		stopC:   make(chan struct{}),
	}
}

func (lg *loadGen) Start() {
	for i := 0; i < lg.clients; i++ {
		lg.wg.Add(1)
		go func() {
			defer lg.wg.Done()
			for {
				select {
				case <-lg.stopC:
					return
				default:
				}
				rt, ok := lg.request()
				lg.mu.Lock()
				if ok {
					lg.rts = append(lg.rts, rt)
				} else {
					lg.errs++
				}
				lg.mu.Unlock()
				// Think time keeps the system moderately loaded.
				select {
				case <-lg.stopC:
					return
				case <-time.After(30 * time.Millisecond):
				}
			}
		}()
	}
}

func (lg *loadGen) request() (time.Duration, bool) {
	if lg.traced != nil {
		res := lg.traced.Get(context.Background(), lg.url)
		return res.RT, res.OK
	}
	start := time.Now()
	resp, err := lg.client.Get(lg.url)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	return time.Since(start), ok
}

func (lg *loadGen) Stop() {
	close(lg.stopC)
	lg.wg.Wait()
}

func (lg *loadGen) Reset() {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.rts = lg.rts[:0]
	lg.errs = 0
}

func (lg *loadGen) Percentiles() (p50, p95, p99 time.Duration, n, errs int) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	n, errs = len(lg.rts), lg.errs
	if n == 0 {
		return 0, 0, 0, 0, errs
	}
	cp := make([]time.Duration, n)
	copy(cp, lg.rts)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := func(p float64) time.Duration { return cp[int(p*float64(n-1))] }
	return idx(0.5), idx(0.95), idx(0.99), n, errs
}
