// Command memca-demo runs the complete MemCA loop live, in one process, on
// real sockets: a real 3-tier HTTP system (victimd), a closed-loop HTTP
// client population, the MemCA-FE daemon executing ON-OFF bursts against
// the db tier's capacity (standing in for co-located memory contention),
// and the MemCA-BE controller probing the web tier and tuning the attack
// over TCP. It prints per-phase client latency percentiles: baseline,
// under attack, and after the attack stops.
//
//	go run ./cmd/memca-demo -duration 20s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"memca/internal/attack"
	"memca/internal/control"
	"memca/internal/memcafw"
	"memca/internal/victimd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memca-demo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		phase   = flag.Duration("duration", 15*time.Second, "length of each phase (baseline, attack, recovery)")
		clients = flag.Int("clients", 16, "closed-loop HTTP clients")
		d       = flag.Float64("degradation", 0.05, "degradation index during bursts")
	)
	flag.Parse()

	sys, err := victimd.StartSystem(victimd.DefaultSystem())
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sys.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closing system:", cerr)
		}
	}()
	fmt.Printf("victim 3-tier system: web %s -> app %s -> db %s\n",
		sys.Web.URL(), sys.App.URL(), sys.DB.URL())

	// Closed-loop client population against the web tier.
	lg := newLoadGen(sys.Web.URL()+"/", *clients)
	lg.Start()
	defer lg.Stop()

	measure := func(name string) {
		lg.Reset()
		time.Sleep(*phase)
		p50, p95, p99, n, errs := lg.Percentiles()
		fmt.Printf("%-10s n=%-6d p50=%-10v p95=%-10v p99=%-10v errors=%d\n",
			name, n, p50.Round(time.Millisecond), p95.Round(time.Millisecond), p99.Round(time.Millisecond), errs)
	}

	measure("baseline")

	// MemCA-FE with the capacity-control attack program, MemCA-BE with
	// an HTTP probe — the real framework over real TCP.
	prog, err := memcafw.NewControlProgram(sys.DB.URL()+"/control/capacity", *d)
	if err != nil {
		return err
	}
	fe, err := memcafw.NewFrontend(memcafw.FrontendConfig{
		ID:      "demo-fe",
		Listen:  "127.0.0.1:0",
		Program: prog,
		Initial: memcafw.ParamsMsg{Intensity: 1, BurstMs: 500, IntervalMs: 2000},
	})
	if err != nil {
		return err
	}
	go func() {
		if serr := fe.Serve(); serr != nil {
			fmt.Fprintln(os.Stderr, "fe:", serr)
		}
	}()
	defer func() {
		if cerr := fe.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "closing fe:", cerr)
		}
	}()

	be, err := memcafw.NewBackend(memcafw.BackendConfig{
		FEAddr:      fe.Addr(),
		Probe:       memcafw.HTTPProbe(sys.Web.URL()+"/", 2*time.Second),
		ProbePeriod: 500 * time.Millisecond,
		Goal:        control.Goal{Percentile: 95, TargetRT: 300 * time.Millisecond, MaxMillibottleneck: time.Second},
		Bounds:      control.DefaultBounds(),
		Initial:     attack.Params{Intensity: 1, BurstLength: 500 * time.Millisecond, Interval: 2 * time.Second},
	})
	if err != nil {
		return err
	}
	attackCtx, stopAttack := context.WithCancel(context.Background())
	beDone := make(chan error, 1)
	go func() { beDone <- be.Run(attackCtx) }()

	measure("attack")
	fmt.Printf("           FE executed %d bursts; BE received %d reports; BE window p95 = %v\n",
		fe.Bursts(), len(be.Reports()), be.TailRT(95).Round(time.Millisecond))

	stopAttack()
	if err := <-beDone; err != nil {
		fmt.Fprintln(os.Stderr, "be:", err)
	}

	measure("recovery")
	return nil
}

// loadGen is a minimal closed-loop HTTP client population.
type loadGen struct {
	url     string
	clients int
	client  *http.Client

	mu    sync.Mutex
	rts   []time.Duration
	errs  int
	stopC chan struct{}
	wg    sync.WaitGroup
}

func newLoadGen(url string, clients int) *loadGen {
	return &loadGen{
		url:     url,
		clients: clients,
		client:  &http.Client{Timeout: 5 * time.Second},
		stopC:   make(chan struct{}),
	}
}

func (lg *loadGen) Start() {
	for i := 0; i < lg.clients; i++ {
		lg.wg.Add(1)
		go func() {
			defer lg.wg.Done()
			for {
				select {
				case <-lg.stopC:
					return
				default:
				}
				start := time.Now()
				resp, err := lg.client.Get(lg.url)
				ok := err == nil && resp.StatusCode == http.StatusOK
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
				rt := time.Since(start)
				lg.mu.Lock()
				if ok {
					lg.rts = append(lg.rts, rt)
				} else {
					lg.errs++
				}
				lg.mu.Unlock()
				// Think time keeps the system moderately loaded.
				select {
				case <-lg.stopC:
					return
				case <-time.After(30 * time.Millisecond):
				}
			}
		}()
	}
}

func (lg *loadGen) Stop() {
	close(lg.stopC)
	lg.wg.Wait()
}

func (lg *loadGen) Reset() {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	lg.rts = lg.rts[:0]
	lg.errs = 0
}

func (lg *loadGen) Percentiles() (p50, p95, p99 time.Duration, n, errs int) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	n, errs = len(lg.rts), lg.errs
	if n == 0 {
		return 0, 0, 0, 0, errs
	}
	cp := make([]time.Duration, n)
	copy(cp, lg.rts)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := func(p float64) time.Duration { return cp[int(p*float64(n-1))] }
	return idx(0.5), idx(0.95), idx(0.99), n, errs
}
