// Command memca-trace runs a MemCA experiment with per-request causal
// tracing enabled and exports what aggregate metrics hide: Chrome
// trace-event JSON (load it in Perfetto or about://tracing to walk one
// request's path through the tiers), per-trace critical-path attribution
// CSVs, and dual-resolution latency timelines demonstrating monitoring
// blindness.
//
// Usage:
//
//	memca-trace                       # attacked + baseline runs into out/trace/
//	memca-trace -quick                # shorter horizons (smoke run)
//	memca-trace -run attacked         # only the attacked run
//	memca-trace -duration 1m -seed 7  # custom horizon and seed
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"memca"
	"memca/internal/telemetry"
	"memca/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memca-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", filepath.Join("out", "trace"), "output directory for trace artifacts")
		which    = flag.String("run", "both", "which runs to trace: attacked, baseline, or both")
		duration = flag.Duration("duration", 3*time.Minute, "measured phase length")
		warmup   = flag.Duration("warmup", 20*time.Second, "warm-up phase length")
		quick    = flag.Bool("quick", false, "shorter horizons for a smoke run (45s measured)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		tailKeep = flag.Int("tail", 4096, "slowest-N traces kept with full attribution")
		ring     = flag.Int("events", 1<<18, "span-event ring capacity (0 disables the Chrome and OTLP exports)")
		otlp     = flag.Bool("otlp", true, "also export OTLP/JSON span batches per run")
	)
	flag.Parse()

	runs := []bool{true, false}
	switch *which {
	case "both":
	case "attacked":
		runs = []bool{true}
	case "baseline":
		runs = []bool{false}
	default:
		return fmt.Errorf("unknown -run %q (want attacked, baseline, or both)", *which)
	}
	if *quick {
		*duration = 45 * time.Second
	}

	for _, attacked := range runs {
		if err := traceRun(*out, attacked, *duration, *warmup, *seed, *tailKeep, *ring, *otlp); err != nil {
			return err
		}
	}
	fmt.Printf("\nartifacts written under %s/\n", *out)
	return nil
}

func traceRun(out string, attacked bool, duration, warmup time.Duration, seed int64, tailKeep, ring int, otlp bool) error {
	name := "baseline"
	if attacked {
		name = "attacked"
	}
	fmt.Printf("=== %s ===\n", name)

	cfg := memca.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = duration
	cfg.Warmup = warmup
	if !attacked {
		cfg.Attack = nil
	}
	spec := memca.DefaultTraceSpec()
	spec.TailKeep = tailKeep
	spec.EventRing = ring
	spec.FeatureWindows = []time.Duration{50 * time.Millisecond, time.Second}
	spec.TailOver = time.Second
	cfg.Trace = &spec

	x, err := memca.NewExperiment(cfg)
	if err != nil {
		return err
	}
	rep, err := x.Run()
	if err != nil {
		return err
	}
	tr := x.Tracer()
	tierNames := tr.TierNames()

	// Exports: raw Chrome trace, the slowest-N and head-sample
	// attributions, and one timeline CSV per resolution.
	if ring > 0 {
		path := filepath.Join(out, fmt.Sprintf("trace_%s.json", name))
		if err := tr.WriteChromeTrace(path); err != nil {
			return err
		}
		fmt.Printf("  %s: %d span events (%d overwritten)\n", path, len(tr.Events()), tr.EventsDropped())
		if otlp {
			path := filepath.Join(out, fmt.Sprintf("otlp_%s.json", name))
			if err := tr.WriteOTLP(path, telemetry.DefaultOTLPSpec()); err != nil {
				return err
			}
			fmt.Printf("  %s: OTLP span batches\n", path)
		}
	}
	tail := tr.TailAttributions()
	if err := telemetry.WriteAttributionCSV(filepath.Join(out, fmt.Sprintf("attribution_%s.csv", name)), tierNames, tail); err != nil {
		return err
	}
	if head := tr.HeadAttributions(); len(head) > 0 {
		if err := telemetry.WriteAttributionCSV(filepath.Join(out, fmt.Sprintf("attribution_head_%s.csv", name)), tierNames, head); err != nil {
			return err
		}
	}
	for _, tl := range tr.Timelines() {
		path := filepath.Join(out, fmt.Sprintf("timeline_%s_%dms.csv", name, tl.Res.Milliseconds()))
		if err := telemetry.WriteTimelineCSV(path, tl); err != nil {
			return err
		}
	}
	// The per-window detection feature series: one CSV per window width,
	// plus the OTLP gauge export for metrics backends.
	for _, fs := range tr.Features() {
		path := filepath.Join(out, fmt.Sprintf("features_%s_%dms.csv", name, fs.Res.Milliseconds()))
		if err := telemetry.WriteFeaturesCSV(path, fs); err != nil {
			return err
		}
		if otlp {
			path := filepath.Join(out, fmt.Sprintf("features_otlp_%s_%dms.json", name, fs.Res.Milliseconds()))
			if err := telemetry.WriteFeaturesOTLP(path, telemetry.DefaultOTLPSpec(), fs); err != nil {
				return err
			}
		}
	}

	// Terminal summary: the >=p99 tail decomposition.
	p99 := rep.Client.P99
	over := tail[:0:0]
	for i := range tail {
		if tail[i].RT >= p99 {
			over = append(over, tail[i])
		}
	}
	b := telemetry.Summarize(len(tierNames), over)
	fmt.Printf("  traces closed %d (untracked %d), client p99 %v\n", tr.Closed(), tr.Untracked(), p99.Round(time.Millisecond))
	tbl := &trace.Table{Header: []string{"component", "share", "mean per trace"}}
	addRow := func(label string, d time.Duration) {
		mean := time.Duration(0)
		if b.Count > 0 {
			mean = d / time.Duration(b.Count)
		}
		shr := 0.0
		if b.RT > 0 {
			shr = float64(d) / float64(b.RT)
		}
		tbl.Add(label, fmt.Sprintf("%5.1f%%", shr*100), mean.Round(time.Microsecond).String())
	}
	for i, tn := range tierNames {
		addRow(tn+" queue", b.Queue[i])
		addRow(tn+" service", b.Service[i])
	}
	addRow("retransmission wait", b.RetransWait)
	addRow("other", b.Other)
	fmt.Printf("  >=p99 tail attribution over %d traces:\n", b.Count)
	for _, line := range splitLines(tbl.Render()) {
		fmt.Printf("    %s\n", line)
	}
	fine, coarse := tr.Timeline(50*time.Millisecond), tr.Timeline(time.Second)
	if fine != nil && coarse != nil {
		fmt.Printf("  peak window-mean RT: %v at 50ms vs the 1s view of the same instant — blindness %.2fx\n",
			fine.PeakMeanRT().Round(time.Millisecond), telemetry.BlindnessRatio(fine, coarse))
	}
	fmt.Println()
	return nil
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
