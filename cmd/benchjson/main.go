// Command benchjson turns `go test -bench -benchmem` output into a JSON
// regression report. It reads benchmark text on stdin, optionally joins it
// against a checked-in baseline file, and writes one document with the
// current numbers plus per-benchmark deltas, so CI can archive an
// apples-to-apples record of engine performance per change.
//
// Usage:
//
//	go test -bench 'Engine|Fig2' -benchmem . | benchjson -baseline bench/baseline.json -o BENCH.json
//
// With -gate N the exit status enforces the performance contract: any
// benchmark that regresses more than N% in ns/op against the baseline, or
// allocates more objects per op than the baseline records, fails the run.
// With -baseline-out the current numbers are also written in baseline
// format, for deliberate refreshes of bench/baseline.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BaselineEntry is one benchmark's reference measurement plus its
// enforcement contract.
type BaselineEntry struct {
	Result
	// GateNsPct is the ns/op regression tolerance -gate enforces for this
	// benchmark, in percent. 0 gates allocations only — the right setting
	// for benchmarks whose per-op wall time is backlog- or GC-shaped and
	// too noisy for a tight bound.
	GateNsPct float64 `json:"gate_ns_pct,omitempty"`
}

// Baseline is the checked-in reference measurement set.
type Baseline struct {
	Commit string `json:"commit"`
	Note   string `json:"note"`
	// CPU is the `cpu:` line of the run that produced the numbers. ns/op
	// gates only fire when the current run reports the same CPU —
	// wall-clock comparisons across machines are meaningless, while the
	// allocation contract holds everywhere.
	CPU        string                   `json:"cpu,omitempty"`
	Benchmarks map[string]BaselineEntry `json:"benchmarks"`
}

// Delta compares one benchmark against its baseline. Reductions are
// positive when the current run improved.
type Delta struct {
	NsReductionPct     float64 `json:"ns_reduction_pct"`
	BReductionPct      float64 `json:"b_reduction_pct"`
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
}

// Report is the document benchjson emits.
type Report struct {
	Baseline  *Baseline         `json:"baseline,omitempty"`
	Current   map[string]Result `json:"current"`
	Deltas    map[string]Delta  `json:"deltas,omitempty"`
	BenchArgs string            `json:"bench_args,omitempty"`
}

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkEngineEvents-8   24799743   45.22 ns/op   0 B/op   0 allocs/op
//
// The -benchmem columns are optional; extra ReportMetric columns between
// ns/op and B/op are tolerated.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

var memCols = regexp.MustCompile(`([0-9.e+]+) B/op\s+([0-9.e+]+) allocs/op`)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON to diff against")
		outPath      = flag.String("o", "", "output file (default stdout)")
		benchArgs    = flag.String("args", "", "free-form note recording how the numbers were produced")
		gateOn       = flag.Bool("gate", false, "enforce the baseline's per-benchmark contract: allocs/op may never grow; ns/op may regress at most gate_ns_pct percent")
		baseOutPath  = flag.String("baseline-out", "", "also write the current numbers in baseline format to this file")
		commit       = flag.String("commit", "", "commit hash recorded in -baseline-out")
		note         = flag.String("note", "", "note recorded in -baseline-out")
	)
	flag.Parse()

	if err := run(*baselinePath, *outPath, *benchArgs, *gateOn, *baseOutPath, *commit, *note); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(baselinePath, outPath, benchArgs string, gateOn bool, baseOutPath, commit, note string) error {
	current, cpu, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	rep := Report{Current: current, BenchArgs: benchArgs}

	if baselinePath != "" {
		var base Baseline
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
		}
		rep.Baseline = &base
		rep.Deltas = make(map[string]Delta)
		for name, cur := range current {
			ref, ok := base.Benchmarks[name]
			if !ok {
				continue
			}
			rep.Deltas[name] = Delta{
				NsReductionPct:     reductionPct(ref.NsPerOp, cur.NsPerOp),
				BReductionPct:      reductionPct(ref.BPerOp, cur.BPerOp),
				AllocsReductionPct: reductionPct(ref.AllocsPerOp, cur.AllocsPerOp),
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "" {
		if _, err := os.Stdout.Write(out); err != nil {
			return err
		}
	} else if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}

	if baseOutPath != "" {
		entries := make(map[string]BaselineEntry, len(current))
		for name, res := range current {
			// GateNsPct stays 0 on capture: the contract tolerance is a
			// deliberate human edit, not a measurement.
			entries[name] = BaselineEntry{Result: res}
		}
		raw, err := json.MarshalIndent(Baseline{Commit: commit, Note: note, CPU: cpu, Benchmarks: entries}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(baseOutPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
	}

	if gateOn && rep.Baseline != nil {
		gateNs := rep.Baseline.CPU != "" && rep.Baseline.CPU == cpu
		if !gateNs {
			fmt.Fprintf(os.Stderr, "benchjson: gate: cpu %q does not match baseline %q; enforcing allocation contracts only\n", cpu, rep.Baseline.CPU)
		}
		if violations := gate(rep.Baseline.Benchmarks, current, gateNs); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "benchjson: gate:", v)
			}
			return fmt.Errorf("%d benchmark(s) violate the performance gate", len(violations))
		}
	}
	return nil
}

// gate enforces each benchmark's contract against the baseline: allocs/op
// may never grow — the zero-allocation hot paths are exact contracts, not
// noisy measurements — and, when gateNs is set (same CPU as the
// baseline), ns/op may regress at most the baseline's per-benchmark
// gate_ns_pct. Benchmarks absent from the baseline pass (they gate once a
// refresh records them).
func gate(base map[string]BaselineEntry, current map[string]Result, gateNs bool) []string {
	var violations []string
	for _, name := range sortedKeys(current) {
		ref, ok := base[name]
		if !ok {
			continue
		}
		cur := current[name]
		if cur.AllocsPerOp > ref.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: %.0f allocs/op, baseline %.0f — allocation regressions are never in tolerance",
				name, cur.AllocsPerOp, ref.AllocsPerOp))
		}
		if !gateNs || ref.GateNsPct <= 0 {
			continue
		}
		if reg := -reductionPct(ref.NsPerOp, cur.NsPerOp); reg > ref.GateNsPct {
			violations = append(violations, fmt.Sprintf(
				"%s: %.4g ns/op, baseline %.4g (+%.1f%%, tolerance %.1f%%)",
				name, cur.NsPerOp, ref.NsPerOp, reg, ref.GateNsPct))
		}
	}
	return violations
}

func sortedKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reductionPct is how much the metric shrank relative to the reference, in
// percent; 0 when the reference is 0 (nothing to reduce).
func reductionPct(ref, cur float64) float64 {
	if ref == 0 {
		return 0
	}
	return (ref - cur) / ref * 100
}

// parseBench extracts benchmark results and the `cpu:` header from
// `go test -bench` text. The "Benchmark" prefix and "-<GOMAXPROCS>"
// suffix are stripped from names.
func parseBench(f *os.File) (map[string]Result, string, error) {
	out := make(map[string]Result)
	cpu := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("parse ns/op in %q: %w", sc.Text(), err)
		}
		res := Result{NsPerOp: ns}
		if mem := memCols.FindStringSubmatch(m[3]); mem != nil {
			if res.BPerOp, err = strconv.ParseFloat(mem[1], 64); err != nil {
				return nil, "", fmt.Errorf("parse B/op in %q: %w", sc.Text(), err)
			}
			if res.AllocsPerOp, err = strconv.ParseFloat(mem[2], 64); err != nil {
				return nil, "", fmt.Errorf("parse allocs/op in %q: %w", sc.Text(), err)
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	return out, cpu, nil
}
