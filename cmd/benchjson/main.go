// Command benchjson turns `go test -bench -benchmem` output into a JSON
// regression report. It reads benchmark text on stdin, optionally joins it
// against a checked-in baseline file, and writes one document with the
// current numbers plus per-benchmark deltas, so CI can archive an
// apples-to-apples record of engine performance per change.
//
// Usage:
//
//	go test -bench 'Engine|Fig2' -benchmem . | benchjson -baseline bench/baseline.json -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the checked-in reference measurement set.
type Baseline struct {
	Commit     string            `json:"commit"`
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// Delta compares one benchmark against its baseline. Reductions are
// positive when the current run improved.
type Delta struct {
	NsReductionPct     float64 `json:"ns_reduction_pct"`
	BReductionPct      float64 `json:"b_reduction_pct"`
	AllocsReductionPct float64 `json:"allocs_reduction_pct"`
}

// Report is the document benchjson emits.
type Report struct {
	Baseline  *Baseline         `json:"baseline,omitempty"`
	Current   map[string]Result `json:"current"`
	Deltas    map[string]Delta  `json:"deltas,omitempty"`
	BenchArgs string            `json:"bench_args,omitempty"`
}

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkEngineEvents-8   24799743   45.22 ns/op   0 B/op   0 allocs/op
//
// The -benchmem columns are optional; extra ReportMetric columns between
// ns/op and B/op are tolerated.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

var memCols = regexp.MustCompile(`([0-9.e+]+) B/op\s+([0-9.e+]+) allocs/op`)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON to diff against")
		outPath      = flag.String("o", "", "output file (default stdout)")
		benchArgs    = flag.String("args", "", "free-form note recording how the numbers were produced")
	)
	flag.Parse()

	if err := run(*baselinePath, *outPath, *benchArgs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(baselinePath, outPath, benchArgs string) error {
	current, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	rep := Report{Current: current, BenchArgs: benchArgs}

	if baselinePath != "" {
		var base Baseline
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parse baseline %s: %w", baselinePath, err)
		}
		rep.Baseline = &base
		rep.Deltas = make(map[string]Delta)
		for name, cur := range current {
			ref, ok := base.Benchmarks[name]
			if !ok {
				continue
			}
			rep.Deltas[name] = Delta{
				NsReductionPct:     reductionPct(ref.NsPerOp, cur.NsPerOp),
				BReductionPct:      reductionPct(ref.BPerOp, cur.BPerOp),
				AllocsReductionPct: reductionPct(ref.AllocsPerOp, cur.AllocsPerOp),
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}

// reductionPct is how much the metric shrank relative to the reference, in
// percent; 0 when the reference is 0 (nothing to reduce).
func reductionPct(ref, cur float64) float64 {
	if ref == 0 {
		return 0
	}
	return (ref - cur) / ref * 100
}

// parseBench extracts benchmark results from `go test -bench` text. The
// "Benchmark" prefix and "-<GOMAXPROCS>" suffix are stripped from names.
func parseBench(f *os.File) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parse ns/op in %q: %w", sc.Text(), err)
		}
		res := Result{NsPerOp: ns}
		if mem := memCols.FindStringSubmatch(m[3]); mem != nil {
			if res.BPerOp, err = strconv.ParseFloat(mem[1], 64); err != nil {
				return nil, fmt.Errorf("parse B/op in %q: %w", sc.Text(), err)
			}
			if res.AllocsPerOp, err = strconv.ParseFloat(mem[2], 64); err != nil {
				return nil, fmt.Errorf("parse allocs/op in %q: %w", sc.Text(), err)
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
