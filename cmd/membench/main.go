// Command membench profiles the modelled host's shared memory bandwidth
// the way Section III does with RAMspeed: it sweeps 1..N co-located VMs
// over placements and attack types and prints the per-VM available
// bandwidth (the curves of Figure 3).
//
// Usage:
//
//	membench                  # full sweep on the Xeon E5-2603 v3 host
//	membench -host ec2        # on the EC2 dedicated-host model
//	membench -vms 4           # sweep 1..4 VMs
package main

import (
	"flag"
	"fmt"
	"os"

	"memca"
	"memca/internal/memmodel"
	"memca/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "membench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		host = flag.String("host", "xeon", "host model: xeon (private cloud) or ec2")
		vms  = flag.Int("vms", 6, "maximum co-located VMs to sweep")
		duty = flag.Float64("lock-duty", 1.0, "lock attack duty cycle")
	)
	flag.Parse()

	var cfg memca.HostConfig
	switch *host {
	case "xeon":
		cfg = memca.XeonE5_2603v3()
	case "ec2":
		cfg = memca.EC2DedicatedHost()
	default:
		return fmt.Errorf("unknown -host %q (want xeon or ec2)", *host)
	}

	fmt.Printf("host: %d packages x %d cores, %.0f MB/s bus per package, %.0f MB/s single-core peak\n\n",
		cfg.Packages, cfg.CoresPerPackage, cfg.BusBandwidthMBps, cfg.SingleCoreDemandMBps)

	tbl := trace.Table{Header: []string{"vms", "placement", "attack", "per-VM MB/s", "aggregate MB/s"}}
	for _, placement := range []memmodel.PlacementMode{memmodel.PlacementSamePackage, memmodel.PlacementRandomPackage} {
		for _, kind := range []memmodel.AttackKind{memmodel.AttackBusSaturation, memmodel.AttackMemoryLock} {
			points, err := memca.Sweep(memca.ProfileSpec{
				Host: cfg, VMs: *vms, Placement: placement, Kind: kind, LockDuty: *duty,
			})
			if err != nil {
				return err
			}
			for _, p := range points {
				tbl.Add(
					fmt.Sprintf("%d", p.VMs),
					placement.String(),
					kind.String(),
					fmt.Sprintf("%.0f", p.PerVMMBps),
					fmt.Sprintf("%.0f", p.AggregateMBps),
				)
			}
		}
	}
	fmt.Print(tbl.Render())
	return nil
}
