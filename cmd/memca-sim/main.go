// Command memca-sim runs one MemCA experiment — baseline or attack, with
// optional feedback control and elastic scaling — and prints the report.
//
// Usage:
//
//	memca-sim [flags]
//
// Examples:
//
//	memca-sim                                  # paper defaults: 3-min EC2 run under memory lock
//	memca-sim -baseline                        # clean run, no attack
//	memca-sim -env private -attack saturation  # private cloud, bus-saturation attack
//	memca-sim -feedback                        # Kalman-controlled attack
//	memca-sim -scaling -duration 5m            # with a live auto-scaling group attached
//	memca-sim -json report.json                # also write the machine-readable report
//	memca-sim -runs 8 -parallel 4              # 8 replications with derived seeds, 4 workers
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"memca"
	"memca/internal/core"
	"memca/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memca-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath = flag.String("config", "", "JSON experiment config (overrides other flags; see configs/)")
		baseline   = flag.Bool("baseline", false, "run without the attack")
		env        = flag.String("env", "ec2", "environment: ec2 or private")
		kind       = flag.String("attack", "lock", "attack kind: lock or saturation")
		duration   = flag.Duration("duration", 3*time.Minute, "measured phase length")
		warmup     = flag.Duration("warmup", 20*time.Second, "warm-up phase length")
		clients    = flag.Int("clients", 3500, "emulated user population")
		burst      = flag.Duration("burst", 500*time.Millisecond, "attack burst length L")
		interval   = flag.Duration("interval", 2*time.Second, "attack burst interval I")
		intensity  = flag.Float64("intensity", 1.0, "attack intensity R in (0,1]")
		feedback   = flag.Bool("feedback", false, "enable the Kalman-filtered commander")
		scaling    = flag.Bool("scaling", false, "attach a live auto-scaling group to MySQL")
		seed       = flag.Int64("seed", 1, "simulation seed")
		jsonOut    = flag.String("json", "", "write the report as JSON to this path")
		runs       = flag.Int("runs", 1, "independent replications with deterministically derived seeds")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "worker count when -runs > 1 (1 = serial; results are identical either way)")
	)
	flag.Parse()

	if *configPath != "" {
		cfg, err := core.LoadConfig(*configPath)
		if err != nil {
			return err
		}
		return execute(cfg, *jsonOut, *runs, *parallel)
	}

	cfg := memca.DefaultConfig()
	cfg.Seed = *seed
	cfg.Duration = *duration
	cfg.Warmup = *warmup
	cfg.Clients = *clients
	switch *env {
	case "ec2":
		cfg.Env = memca.EnvEC2
	case "private":
		cfg.Env = memca.EnvPrivateCloud
	default:
		return fmt.Errorf("unknown -env %q (want ec2 or private)", *env)
	}
	if *baseline {
		cfg.Attack = nil
	} else {
		switch *kind {
		case "lock":
			cfg.Attack.Kind = memca.AttackMemoryLock
		case "saturation":
			cfg.Attack.Kind = memca.AttackBusSaturation
		default:
			return fmt.Errorf("unknown -attack %q (want lock or saturation)", *kind)
		}
		cfg.Attack.Params = memca.AttackParams{
			Intensity:   *intensity,
			BurstLength: *burst,
			Interval:    *interval,
		}
	}
	if *feedback {
		if *baseline {
			return fmt.Errorf("-feedback requires an attack")
		}
		fb := memca.DefaultFeedback()
		cfg.Feedback = &fb
	}
	if *scaling {
		cfg.Scaling = &memca.ScalingSpec{Trigger: memca.DefaultAutoScaler(), MaxInstances: 4}
	}

	return execute(cfg, *jsonOut, *runs, *parallel)
}

// execute runs one configured experiment (or several replications of it)
// and prints/writes the report(s).
func execute(cfg memca.Config, jsonOut string, runs, parallel int) error {
	if runs > 1 {
		return executeReplicated(cfg, jsonOut, runs, parallel)
	}
	x, err := memca.NewExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("running %v for %v (%d clients, warmup %v)...\n", cfg.Env, cfg.Duration, cfg.Clients, cfg.Warmup)
	start := time.Now()
	rep, err := x.Run()
	if err != nil {
		return err
	}
	fmt.Printf("done in %v (wall clock)\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Println(rep.Render())
	if jsonOut != "" {
		if err := trace.WriteJSON(jsonOut, rep); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonOut)
	}
	return nil
}

// executeReplicated fans `runs` replications with derived seeds over up
// to `parallel` workers and prints one summary line per replication.
func executeReplicated(cfg memca.Config, jsonOut string, runs, parallel int) error {
	fmt.Printf("running %v for %v (%d clients, warmup %v), %d replications, %d workers...\n",
		cfg.Env, cfg.Duration, cfg.Clients, cfg.Warmup, runs, parallel)
	start := time.Now()
	opts := memca.ReplicateOptions{
		Workers: parallel,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "  replication %d/%d done\n", done, total)
		},
	}
	reps, err := memca.Replicate(context.Background(), cfg, runs, opts)
	if err != nil {
		return err
	}
	fmt.Printf("done in %v (wall clock)\n\n", time.Since(start).Round(time.Millisecond))
	var minP95, maxP95, sumP95 time.Duration
	for i, r := range reps {
		p95 := r.Report.Client.P95
		if i == 0 || p95 < minP95 {
			minP95 = p95
		}
		if p95 > maxP95 {
			maxP95 = p95
		}
		sumP95 += p95
		fmt.Printf("run %2d  seed=%-20d client p95=%-10v p99=%-10v drops=%d\n",
			r.Index, r.Seed, p95.Round(time.Millisecond),
			r.Report.Client.P99.Round(time.Millisecond), r.Report.Drops)
	}
	fmt.Printf("\nclient p95 over %d runs: min=%v mean=%v max=%v\n",
		len(reps), minP95.Round(time.Millisecond),
		(sumP95 / time.Duration(len(reps))).Round(time.Millisecond),
		maxP95.Round(time.Millisecond))
	if jsonOut != "" {
		if err := trace.WriteJSON(jsonOut, reps); err != nil {
			return err
		}
		fmt.Printf("replications written to %s\n", jsonOut)
	}
	return nil
}
