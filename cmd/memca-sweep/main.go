// Command memca-sweep drives the distributed sweep fabric: sharded
// multi-process figure runs with a job manifest, checkpoint/resume, and a
// merge that is byte-identical to a single-process run.
//
// Usage:
//
//	memca-sweep plan -figure fig2 -shards 4 -manifest m.json   # write a manifest
//	memca-sweep run -manifest m.json                           # coordinate workers, merge, finalize
//	memca-sweep worker -manifest m.json -shard 1               # run one shard (what run spawns)
//	memca-sweep resume -manifest m.json                        # finish a killed run (alias of run)
//	memca-sweep status -manifest m.json                        # per-shard progress
//	memca-sweep merge -manifest m.json                         # merge + finalize without spawning workers
//	memca-sweep smoke                                          # CI smoke: kill a worker, resume, diff
//
// Shard artifacts double as checkpoints: a killed worker (or a killed
// run) resumes from its last fsynced record, and the merged artifact is
// byte-identical to a single-process run at any shard count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"memca/internal/dsweep"
	"memca/internal/dsweep/coord"
	"memca/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "memca-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand: plan, run, worker, resume, status, merge, or smoke")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "plan":
		return cmdPlan(rest)
	case "run", "resume":
		// resume is run: the coordinator only spawns incomplete shards and
		// workers pick up from their last durable record, so rerunning
		// after a kill is exactly a resume.
		return cmdRun(rest)
	case "worker":
		return cmdWorker(rest)
	case "status":
		return cmdStatus(rest)
	case "merge":
		return cmdMerge(rest)
	case "smoke":
		return cmdSmoke(rest)
	default:
		return fmt.Errorf("unknown subcommand %q: want plan, run, worker, resume, status, merge, or smoke", cmd)
	}
}

func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	var (
		figure    = fs.String("figure", "", "dist driver to run (one of "+fmt.Sprint(figures.DistDrivers())+")")
		shards    = fs.Int("shards", 1, "worker shard count")
		seed      = fs.Int64("seed", 1, "simulation seed")
		quick     = fs.Bool("quick", false, "shorter horizons for a smoke run")
		out       = fs.String("out", "out", "output directory for the figure's CSV artifacts")
		artifacts = fs.String("artifacts", "", "directory for shard artifacts and checkpoints (default: <manifest dir>/artifacts)")
		fsync     = fs.Int("fsync-every", dsweep.DefaultFsyncEvery, "checkpoint batch: fsync after this many records")
		manifest  = fs.String("manifest", "manifest.json", "manifest file to write")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *figure == "" {
		return fmt.Errorf("plan: -figure is required (one of %v)", figures.DistDrivers())
	}
	dir := *artifacts
	if dir == "" {
		dir = filepath.Join(filepath.Dir(*manifest), "artifacts")
	}
	opts := figures.Options{OutDir: *out, Quick: *quick, Seed: *seed}
	m, err := figures.NewManifest(*figure, opts, *shards, dir)
	if err != nil {
		return err
	}
	m.FsyncEvery = *fsync
	if err := dsweep.WriteManifest(*manifest, m); err != nil {
		return err
	}
	fmt.Printf("wrote %s: driver %s, %d jobs over %d shards (hash %.12s)\n", *manifest, m.Figure, m.Jobs, m.Shards, m.Hash)
	return nil
}

// selfWorker builds the worker subprocess command for one shard:
// this executable re-invoked in worker mode. crashAfter >= 0 injects a
// deterministic crash after that many records (the smoke's kill).
func selfWorker(manifestPath string, shard, crashAfter int) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own executable: %w", err)
	}
	args := []string{"worker", "-manifest", manifestPath, "-shard", fmt.Sprint(shard)}
	if crashAfter >= 0 {
		args = append(args, "-crash-after", fmt.Sprint(crashAfter))
	}
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		manifest = fs.String("manifest", "manifest.json", "manifest file")
		retries  = fs.Int("retries", 1, "respawns per dead shard before giving up")
		poll     = fs.Duration("poll", 2*time.Second, "progress-report interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dsweep.LoadManifest(*manifest)
	if err != nil {
		return err
	}
	err = coord.Run(context.Background(), coord.Options{
		Manifest: m,
		Worker:   func(shard int) (*exec.Cmd, error) { return selfWorker(*manifest, shard, -1) },
		Retries:  *retries,
		Poll:     *poll,
		Log:      os.Stderr,
	})
	if err != nil {
		return err
	}
	return finalize(m)
}

func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	var (
		manifest   = fs.String("manifest", "manifest.json", "manifest file")
		shard      = fs.Int("shard", 0, "shard to run")
		crashAfter = fs.Int("crash-after", -1, "inject a crash after N records (tests and smoke; <0 = never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dsweep.LoadManifest(*manifest)
	if err != nil {
		return err
	}
	opts := dsweep.ShardOptions{
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "worker shard %d: %d/%d\n", *shard, done, total)
		},
	}
	if *crashAfter >= 0 {
		opts.InjectCrash = true
		opts.MaxRecords = *crashAfter
	}
	return figures.RunShard(context.Background(), m, *shard, opts)
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	manifest := fs.String("manifest", "manifest.json", "manifest file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dsweep.LoadManifest(*manifest)
	if err != nil {
		return err
	}
	progress, err := dsweep.Status(m)
	if err != nil {
		return err
	}
	fmt.Printf("driver %s: %d jobs over %d shards (hash %.12s)\n", m.Figure, m.Jobs, m.Shards, m.Hash)
	done := 0
	for _, p := range progress {
		done += p.Done
		age := "-"
		if p.FromCheckpoint {
			if info, err := os.Stat(p.CheckpointPath); err == nil {
				age = time.Since(info.ModTime()).Round(time.Second).String()
			}
		}
		state := "running"
		if p.Done == p.Total {
			state = "complete"
		}
		fmt.Printf("  shard %d: %d/%d %-9s last index %d, checkpoint age %s\n",
			p.Shard, p.Done, p.Total, state, p.LastIndex, age)
	}
	fmt.Printf("total: %d/%d jobs\n", done, m.Jobs)
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	manifest := fs.String("manifest", "manifest.json", "manifest file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := dsweep.LoadManifest(*manifest)
	if err != nil {
		return err
	}
	if err := dsweep.Merge(m); err != nil {
		return err
	}
	return finalize(m)
}

// finalize decodes the merged artifact through the driver's finalizer,
// writing the figure's CSVs and printing its summary line.
func finalize(m *dsweep.Manifest) error {
	_, summary, err := figures.RunDistributed(m)
	if err != nil {
		return err
	}
	fmt.Println(summary)
	if m.OutDir != "" {
		fmt.Printf("artifacts written under %s/\n", m.OutDir)
	}
	return nil
}
