package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"memca/internal/dsweep"
	"memca/internal/dsweep/coord"
	"memca/internal/figures"
)

// cmdSmoke is the CI smoke for the fabric: a quick Fig2 coordinated
// across 3 worker subprocesses, with one worker killed mid-run
// (deterministically, via -crash-after), then resumed; the merged
// artifact and CSVs are diffed against a single-process run. Any
// divergence — bytes or scalars — fails the command.
func cmdSmoke(args []string) error {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	var (
		dir  = fs.String("dir", "", "scratch directory (default: a fresh temp dir)")
		keep = fs.Bool("keep", false, "keep the scratch directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scratch := *dir
	if scratch == "" {
		var err error
		scratch, err = os.MkdirTemp("", "memca-dsweep-smoke")
		if err != nil {
			return err
		}
	}
	if !*keep {
		defer func() {
			if rerr := os.RemoveAll(scratch); rerr != nil {
				fmt.Fprintln(os.Stderr, "memca-sweep: cleaning scratch:", rerr)
			}
		}()
	}

	const shards = 3
	manifestPath := filepath.Join(scratch, "manifest.json")
	distOut := filepath.Join(scratch, "out-dist")
	opts := figures.Options{OutDir: distOut, Quick: true, Seed: 1}
	m, err := figures.NewManifest("fig2", opts, shards, filepath.Join(scratch, "artifacts"))
	if err != nil {
		return err
	}
	m.FsyncEvery = 1
	if err := dsweep.WriteManifest(manifestPath, m); err != nil {
		return err
	}
	fmt.Printf("smoke: %d jobs over %d shards under %s\n", m.Jobs, m.Shards, scratch)

	// Round 1: shard 0's worker is killed right after its durable header
	// (-crash-after 0), with no retries — the coordinated run must fail.
	fmt.Println("smoke: round 1 — killing shard 0's worker mid-run")
	err = coord.Run(context.Background(), coord.Options{
		Manifest: m,
		Worker: func(shard int) (*exec.Cmd, error) {
			crash := -1
			if shard == 0 {
				crash = 0
			}
			return selfWorker(manifestPath, shard, crash)
		},
		Poll: time.Second,
		Log:  os.Stderr,
	})
	if err == nil {
		return fmt.Errorf("smoke: round 1 succeeded despite the killed worker")
	}
	fmt.Printf("smoke: round 1 failed as intended: %v\n", err)
	if _, err := os.Stat(m.MergedPath()); !os.IsNotExist(err) {
		return fmt.Errorf("smoke: merged artifact exists after the failed round (stat: %v)", err)
	}

	// Round 2: resume. Complete shards are skipped, the killed shard picks
	// up from its checkpoint, and the merge runs.
	fmt.Println("smoke: round 2 — resuming")
	err = coord.Run(context.Background(), coord.Options{
		Manifest: m,
		Worker:   func(shard int) (*exec.Cmd, error) { return selfWorker(manifestPath, shard, -1) },
		Poll:     time.Second,
		Log:      os.Stderr,
	})
	if err != nil {
		return fmt.Errorf("smoke: resume: %w", err)
	}
	distRes, distSummary, err := figures.RunDistributed(m)
	if err != nil {
		return err
	}
	fmt.Println("smoke:", distSummary)

	// Reference 1: the same driver through a 1-shard fabric run in this
	// process. Its merged artifact must be byte-identical to the 3-shard,
	// kill-and-resume one.
	ref := *m
	ref.Shards = 1
	ref.ArtifactDir = filepath.Join(scratch, "artifacts-ref")
	ref.Hash = ref.ComputeHash()
	if err := figures.RunShard(context.Background(), &ref, 0, dsweep.ShardOptions{}); err != nil {
		return fmt.Errorf("smoke: reference shard: %w", err)
	}
	if err := dsweep.Merge(&ref); err != nil {
		return err
	}
	distBytes, err := os.ReadFile(m.MergedPath())
	if err != nil {
		return err
	}
	refBytes, err := os.ReadFile(ref.MergedPath())
	if err != nil {
		return err
	}
	if !bytes.Equal(distBytes, refBytes) {
		return fmt.Errorf("smoke: merged artifact differs between 3 shards (killed+resumed) and 1 shard: %d vs %d bytes", len(distBytes), len(refBytes))
	}
	fmt.Printf("smoke: merged artifacts byte-identical across shard counts (%d bytes)\n", len(distBytes))

	// Reference 2: the plain in-process figure function. Its CSVs and
	// scalars must match the distributed run's exactly.
	singleOut := filepath.Join(scratch, "out-single")
	singleRes, err := figures.Fig2(figures.Options{OutDir: singleOut, Quick: true, Seed: 1})
	if err != nil {
		return err
	}
	dist := distRes.(*figures.Fig2Result)
	if dist.AmplificationOK != singleRes.AmplificationOK ||
		fmt.Sprint(dist.ClientP95) != fmt.Sprint(singleRes.ClientP95) ||
		fmt.Sprint(dist.ClientP98) != fmt.Sprint(singleRes.ClientP98) {
		return fmt.Errorf("smoke: distributed scalars %+v differ from single-process %+v", dist, singleRes)
	}
	entries, err := os.ReadDir(singleOut)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("smoke: single-process run wrote no CSVs under %s", singleOut)
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(singleOut, e.Name()))
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(distOut, e.Name()))
		if err != nil {
			return fmt.Errorf("smoke: distributed run is missing CSV %s: %w", e.Name(), err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("smoke: %s differs between distributed and single-process runs", e.Name())
		}
		fmt.Printf("smoke: %s byte-identical (%d bytes)\n", e.Name(), len(want))
	}
	fmt.Println("smoke: PASS — kill/resume across 3 shards matches single-process byte for byte")
	return nil
}
