package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"memca/internal/dsweep"
	"memca/internal/dsweep/coord"
	"memca/internal/figures"
)

// memca-bench's distributed mode re-invokes this binary as shard workers
// through a hidden env-var protocol (no flags, so worker invocations
// can't collide with user flags).
const (
	envWorkerManifest = "MEMCA_BENCH_WORKER_MANIFEST"
	envWorkerShard    = "MEMCA_BENCH_WORKER_SHARD"
)

// maybeRunWorker diverts the process into shard-worker mode when the
// worker env vars are set. Returns true when this invocation was a
// worker (whether it succeeded or not).
func maybeRunWorker() (bool, error) {
	path := os.Getenv(envWorkerManifest)
	if path == "" {
		return false, nil
	}
	m, err := dsweep.LoadManifest(path)
	if err != nil {
		return true, err
	}
	shard, err := strconv.Atoi(os.Getenv(envWorkerShard))
	if err != nil {
		return true, fmt.Errorf("bad %s: %w", envWorkerShard, err)
	}
	return true, figures.RunShard(context.Background(), m, shard, dsweep.ShardOptions{
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "    shard %d: %d/%d\n", shard, done, total)
		},
	})
}

// distDriversFor maps a -fig target to dist driver names.
func distDriversFor(fig string) ([]string, error) {
	switch fig {
	case "2":
		return []string{"fig2"}, nil
	case "planner":
		return []string{"planner"}, nil
	case "ablations":
		var names []string
		for _, n := range figures.DistDrivers() {
			if strings.HasPrefix(n, "ablation-") {
				names = append(names, n)
			}
		}
		return names, nil
	default:
		return nil, fmt.Errorf("distributed mode (-shards/-manifest-out) supports -fig 2, planner, or ablations; for anything else use the in-process path")
	}
}

// runDistributedBench handles -shards > 1 and -manifest-out: it builds
// one manifest per driver and either just writes them (for memca-sweep
// to run, possibly on several machines) or coordinates local worker
// subprocesses right here and finalizes the artifacts.
func runDistributedBench(fig string, opts figures.Options, shards int, manifestOut string) error {
	drivers, err := distDriversFor(fig)
	if err != nil {
		return err
	}
	for _, driver := range drivers {
		base := filepath.Join(opts.OutDir, "dsweep", driver)
		manifestPath := filepath.Join(base, "manifest.json")
		if manifestOut != "" {
			manifestPath = filepath.Join(manifestOut, driver+".json")
		}
		m, err := figures.NewManifest(driver, opts, shards, filepath.Join(base, "artifacts"))
		if err != nil {
			return err
		}
		if err := dsweep.WriteManifest(manifestPath, m); err != nil {
			return err
		}
		if manifestOut != "" {
			fmt.Printf("wrote %s: %d jobs over %d shards (run with: memca-sweep run -manifest %s)\n",
				manifestPath, m.Jobs, m.Shards, manifestPath)
			continue
		}
		fmt.Printf("=== %s (%d shards) ===\n", driver, shards)
		err = coord.Run(context.Background(), coord.Options{
			Manifest: m,
			Worker:   func(shard int) (*exec.Cmd, error) { return benchWorker(manifestPath, shard) },
			Retries:  1,
			Poll:     2 * time.Second,
			Log:      os.Stderr,
		})
		if err != nil {
			return err
		}
		_, summary, err := figures.RunDistributed(m)
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n\n", summary)
	}
	return nil
}

// benchWorker re-invokes this binary as the worker for one shard.
func benchWorker(manifestPath string, shard int) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locating own executable: %w", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		envWorkerManifest+"="+manifestPath,
		envWorkerShard+"="+strconv.Itoa(shard),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd, nil
}
