// Command memca-bench regenerates the paper's tables and figures: each
// -fig target runs the corresponding experiment at full scale, writes
// plot-ready CSVs under -out, and prints the key scalars the paper's
// qualitative claims rest on.
//
// Usage:
//
//	memca-bench                # regenerate everything into out/
//	memca-bench -fig 2         # only Figure 2
//	memca-bench -fig table1    # only Table I
//	memca-bench -quick         # ~4x shorter horizons (smoke run)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"memca/internal/figures"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memca-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	if worker, err := maybeRunWorker(); worker {
		return err
	}
	var (
		fig         = flag.String("fig", "all", "figure to regenerate: 2, 3, 6, 7, 8, 9, 10, 11, table1, ablations, defense, evasion, detectors, crowd, attribution, planner, all")
		out         = flag.String("out", "out", "output directory for CSV artifacts")
		quick       = flag.Bool("quick", false, "shorter horizons for a smoke run")
		seed        = flag.Int64("seed", 1, "simulation seed")
		parallel    = flag.Int("parallel", runtime.NumCPU(), "worker count for a driver's independent runs (1 = serial; artifacts are identical either way)")
		shards      = flag.Int("shards", 1, "run -fig 2, planner, or ablations sharded over this many worker subprocesses (artifacts are byte-identical to -shards 1)")
		manifestOut = flag.String("manifest-out", "", "write dsweep manifests for -fig into this directory and exit (run them with memca-sweep)")
	)
	flag.Parse()

	opts := figures.Options{OutDir: *out, Quick: *quick, Seed: *seed, Parallel: *parallel}
	if *shards > 1 || *manifestOut != "" {
		return runDistributedBench(*fig, opts, *shards, *manifestOut)
	}
	opts.Progress = func(done, total int) {
		fmt.Fprintf(os.Stderr, "    run %d/%d\n", done, total)
	}
	targets := map[string]func(figures.Options) error{
		"2":           runFig2,
		"3":           runFig3,
		"6":           runFig6,
		"7":           runFig7,
		"8":           runFig8,
		"9":           runFig9,
		"10":          runFig10,
		"11":          runFig11,
		"table1":      runTable1,
		"ablations":   runAblations,
		"defense":     runDefense,
		"evasion":     runEvasion,
		"detectors":   runDetectors,
		"crowd":       runFlashCrowd,
		"attribution": runAttribution,
		"planner":     runPlanner,
	}
	order := []string{"table1", "3", "6", "7", "2", "9", "10", "11", "8", "ablations", "defense", "evasion", "detectors", "crowd", "attribution", "planner"}

	if *fig != "all" {
		f, ok := targets[*fig]
		if !ok {
			return fmt.Errorf("unknown -fig %q", *fig)
		}
		return timed(*fig, f, opts)
	}
	for _, name := range order {
		if err := timed(name, targets[name], opts); err != nil {
			return err
		}
	}
	fmt.Printf("\nall artifacts written under %s/\n", *out)
	return nil
}

func timed(name string, f func(figures.Options) error, opts figures.Options) error {
	fmt.Printf("=== %s ===\n", label(name))
	start := time.Now()
	if err := f(opts); err != nil {
		return fmt.Errorf("%s: %w", label(name), err)
	}
	fmt.Printf("    (%v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func label(name string) string {
	switch name {
	case "table1":
		return "Table I"
	case "ablations":
		return "Ablations"
	case "defense":
		return "Defense evaluation"
	case "evasion":
		return "Jitter evasion"
	case "detectors":
		return "Detector comparison"
	case "crowd":
		return "Flash-crowd contrast"
	case "attribution":
		return "Critical-path attribution"
	case "planner":
		return "Planner validation"
	default:
		return "Figure " + name
	}
}

func runFig2(opts figures.Options) error {
	res, err := figures.Fig2(opts)
	if err != nil {
		return err
	}
	for env, p95 := range res.ClientP95 {
		fmt.Printf("  %-14s client p95 = %-8v p98 = %v\n", env, p95.Round(time.Millisecond), res.ClientP98[env].Round(time.Millisecond))
	}
	fmt.Printf("  per-tier amplification ordering held: %v\n", res.AmplificationOK)
	return nil
}

func runFig3(opts figures.Options) error {
	res, err := figures.Fig3(opts)
	if err != nil {
		return err
	}
	for key, curve := range res.Curves {
		fmt.Printf("  %-32s %.0f -> %.0f MB/s per VM (1 -> 6 VMs)\n", key, curve[0], curve[len(curve)-1])
	}
	fmt.Printf("  single VM saturates bus: %v (paper: no)\n", res.SingleVMSaturates)
	fmt.Printf("  lock stronger than saturation everywhere: %v (paper: yes)\n", res.LockBelowSaturation)
	return nil
}

func runFig6(opts figures.Options) error {
	res, err := figures.Fig6(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  tandem: mysql max occupancy %.0f, upstream max %.0f\n", res.TandemMySQLMax, res.TandemUpstreamMax)
	fmt.Printf("  rpc: all queues filled %v, fill order mysql %v -> tomcat %v -> apache %v\n",
		res.RPCFilled,
		res.RPCFillOrder[2].Round(time.Millisecond),
		res.RPCFillOrder[1].Round(time.Millisecond),
		res.RPCFillOrder[0].Round(time.Millisecond))
	return nil
}

func runFig7(opts figures.Options) error {
	res, err := figures.Fig7(opts)
	if err != nil {
		return err
	}
	for _, c := range []figures.Fig7Case{figures.Fig7Tandem, figures.Fig7InfiniteFront, figures.Fig7Finite} {
		r := res.Cases[c]
		fmt.Printf("  %-15s client p99 = %-9v mysql p99 = %-9v spread = %-9v drops = %d\n",
			c, r.ClientP99.Round(time.Millisecond), r.MySQLP99.Round(time.Millisecond),
			r.SpreadP99.Round(time.Millisecond), r.Drops)
	}
	return nil
}

func runFig8(opts figures.Options) error {
	res, err := figures.Fig8(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  %d decisions, goal reached at t=%v, sustained %.0f%%, final params R=%.2f L=%v I=%v\n",
		res.Decisions, res.TimeToGoal.Round(time.Second), res.SustainedFraction*100,
		res.FinalParams.Intensity, res.FinalParams.BurstLength.Round(time.Millisecond),
		res.FinalParams.Interval.Round(time.Millisecond))
	return nil
}

func runFig9(opts figures.Options) error {
	res, err := figures.Fig9(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  %d bursts in the 8s window; mysql transiently saturated: %v; queues propagated: %v; worst client RT %v\n",
		res.BurstsInWindow, res.MySQLSaturated, res.QueuePropagated, res.MaxClientRT.Round(time.Millisecond))
	return nil
}

func runFig10(opts figures.Options) error {
	res, err := figures.Fig10(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  cpu max by granularity:")
	for g, max := range res.MaxByGranularity {
		fmt.Printf(" %v=%.0f%%", g, max*100)
	}
	fmt.Printf("\n  1-min mean %.0f%%; auto scaling triggered: %v (live events: %d)\n",
		res.MeanCoarse*100, res.AutoScalingTriggered, res.ScaleEventsLive)
	return nil
}

func runFig11(opts figures.Options) error {
	res, err := figures.Fig11(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  LLC-miss periodicity at burst interval: saturation %.2f vs lock %.2f\n",
		res.SaturationPeriodicity, res.LockPeriodicity)
	fmt.Printf("  locking adversary's own peak miss rate: %.0f misses/s (invisible)\n", res.LockAdversaryMaxMisses)
	return nil
}

func runAblations(opts figures.Options) error {
	sweeps := []func(figures.Options) (*figures.AblationResult, error){
		figures.AblationBurstLength,
		figures.AblationInterval,
		figures.AblationMechanisms,
		figures.AblationAdversaries,
		figures.AblationServiceDistribution,
		figures.AblationLoad,
	}
	for _, sweep := range sweeps {
		res, err := sweep(opts)
		if err != nil {
			return err
		}
		fmt.Printf("  [%s]\n", res.Name)
		for _, p := range res.Points {
			fmt.Printf("    %-16s p95=%-9v p99=%-9v coarse-util=%4.0f%%  drops=%d\n",
				p.Label, p.ClientP95.Round(time.Millisecond), p.ClientP99.Round(time.Millisecond),
				p.CoarseUtil*100, p.Drops)
		}
	}
	return nil
}

func runDefense(opts figures.Options) error {
	res, err := figures.DefenseEvaluation(opts)
	if err != nil {
		return err
	}
	for _, p := range res.Matrix {
		fmt.Printf("  %-15s + %-22s p95=%-9v D=%.3f mitigated=%v\n",
			p.Attack, p.Defense, p.ClientP95.Round(time.Millisecond), p.DegradationD, p.Mitigated)
	}
	fmt.Printf("  50ms detector: %d episodes, attack classified: %v (overhead %.3f%% of a core)\n",
		res.DetectorEpisodes, res.DetectorVerdict.PulsatingAttack, res.DetectorOverhead*100)
	fmt.Printf("  1s detector: %d episodes (the stealth window)\n", res.CoarseDetectorEpisodes)
	return nil
}

func runEvasion(opts figures.Options) error {
	res, err := figures.JitterEvasion(opts)
	if err != nil {
		return err
	}
	for _, p := range res.Points {
		fmt.Printf("  jitter=%.2f  p95=%-9v periodicity=%.2f  gap-CV=%.2f  classified=%v\n",
			p.Jitter, p.ClientP95.Round(time.Millisecond), p.Periodicity, p.IntervalCV, p.Classified)
	}
	return nil
}

func runDetectors(opts figures.Options) error {
	res, err := figures.DetectorComparison(opts)
	if err != nil {
		return err
	}
	for _, c := range res.Cells {
		fmt.Printf("  %-12s %-10s @ %-5v alarms=%d\n", c.Scenario, c.Detector, c.Granularity, c.Alarms)
	}
	fmt.Printf("  attribution threshold (ROC-tuned): retrans share > %.4f (min %d traces/window)\n",
		res.Attribution.ShareThreshold, res.Attribution.MinCount)
	for _, tn := range res.Tuning {
		fmt.Printf("  tuned CPU @ %-5v threshold=%.2f ewma(K=%.0f,a=%.1f) cusum(target=%.2f,k=%.2f,h=%.1f)\n",
			tn.Granularity, tn.CPU.Threshold.Threshold, tn.CPU.EWMA.K, tn.CPU.EWMA.Alpha,
			tn.CPU.CUSUM.Target, tn.CPU.CUSUM.Slack, tn.CPU.CUSUM.DecisionThreshold)
	}
	return nil
}

func runFlashCrowd(opts figures.Options) error {
	res, err := figures.FlashCrowd(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  peak 1-min CPU %.0f%%, %d scale events; p95 %v during surge -> %v after absorption\n",
		res.PeakCoarseUtil*100, res.ScaleEvents,
		res.CrowdP95.Round(time.Millisecond), res.AbsorbedP95.Round(time.Millisecond))
	return nil
}

func runTable1(opts figures.Options) error {
	res, err := figures.Table1(opts)
	if err != nil {
		return err
	}
	p := res.Prediction
	fmt.Printf("  D=0.1, L=500ms, I=2s: fill %v, damage %v, drain %v, P_MB %v, rho %.4f\n",
		p.TotalFill.Round(time.Millisecond), p.DamagePeriod.Round(time.Millisecond),
		p.DrainTime.Round(time.Millisecond), p.Millibottleneck.Round(time.Millisecond), p.Impact)
	if res.PlannedOK {
		a := res.PlannedAttack
		fmt.Printf("  planned weakest attack for rho>=0.05, P_MB<1s: D=%.2f L=%v I=%v\n",
			a.D, a.L.Round(time.Millisecond), a.I.Round(time.Millisecond))
	}
	return nil
}

func runAttribution(opts figures.Options) error {
	res, err := figures.FigAttribution(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  attacked p99 %v (baseline %v)\n",
		res.AttackedP99.Round(time.Millisecond), res.BaselineP99.Round(time.Millisecond))
	fmt.Printf("  attacked >=p99 tail: wait share %.1f%% (retransmission %.1f%%) over %d traces\n",
		res.AttackedWaitShare*100, res.AttackedRetransShare*100, res.AttackedTailTraces)
	fmt.Printf("  baseline >=p99 tail: service share %.1f%%\n", res.BaselineServiceShare*100)
	fmt.Printf("  monitoring blindness (50ms vs 1s peak): %.2fx attacked, %.2fx baseline\n",
		res.AttackedBlindness, res.BaselineBlindness)
	return nil
}

func runPlanner(opts figures.Options) error {
	res, err := figures.FigPlanner(opts)
	if err != nil {
		return err
	}
	fmt.Printf("  %d cells x %d runs: sized OK %v (worst p99 %v), witnesses violate %v (best p99 %v)\n",
		res.Cells, res.Runs/res.Cells, res.AllSizedOK, res.MaxSizedP99.Round(time.Millisecond),
		res.AllSmallerViolate, res.MinSmallerP99.Round(time.Millisecond))
	return nil
}
