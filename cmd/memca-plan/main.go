// Command memca-plan sizes an n-tier deployment against the MemCA threat
// model: given tier templates, a traffic forecast, and an SLO, it searches
// replica counts and thread-pool scales for the cheapest sizing that holds
// the objective both attack-free and under the worst-case stealthy burst
// train (analytical.PlanAttack as the adversary oracle), and reports the
// verdict, the maximum sustainable load in each regime, and the minimality
// witness (one bottleneck replica fewer fails).
//
// Inputs: a plan spec file (-spec, see internal/spec.PlanJSON), or an
// experiment config (-config) whose topology and population are lifted
// into a spec; with neither, the paper's RUBBoS defaults.
//
// Usage:
//
//	go run ./cmd/memca-plan                           # RUBBoS defaults
//	go run ./cmd/memca-plan -spec configs/plan-rubbos.json
//	go run ./cmd/memca-plan -config configs/paper-default.json -quick
//	go run ./cmd/memca-plan -clients 2600 -think 1s -json
package main

import (
	"flag"
	"fmt"
	"os"

	"memca/internal/core"
	"memca/internal/plan"
	"memca/internal/spec"
)

func main() {
	var (
		specPath   = flag.String("spec", "", "plan spec file (system/traffic/slo JSON; missing sections default to RUBBoS)")
		configPath = flag.String("config", "", "experiment config file; its topology and population seed the plan")
		jsonOut    = flag.Bool("json", false, "emit the JSON report instead of text")
		quick      = flag.Bool("quick", false, "shrink the search caps (4 replicas/tier, one adversary interval) for smoke runs")
		clients    = flag.Int("clients", 0, "override the client population")
		think      = flag.Duration("think", 0, "override the mean think time")
		growth     = flag.Float64("growth", 0, "override the growth multiplier")
		target     = flag.Duration("target", 0, "override the SLO target response time")
		drop       = flag.Float64("drop", -1, "override the SLO max drop rate")
		percentile = flag.Float64("percentile", 0, "override the SLO percentile")
		out        = flag.String("o", "", "write the report to a file instead of stdout")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fatal(fmt.Errorf("unexpected arguments %v", flag.Args()))
	}
	if *specPath != "" && *configPath != "" {
		fatal(fmt.Errorf("-spec and -config are mutually exclusive"))
	}

	sys, traffic, slo, err := loadInputs(*specPath, *configPath)
	if err != nil {
		fatal(err)
	}
	if *clients > 0 {
		traffic.Clients = *clients
	}
	if *think > 0 {
		traffic.ThinkTime = *think
	}
	if *growth > 0 {
		traffic.Growth = *growth
	}
	if *target > 0 {
		slo.TargetRT = *target
	}
	if *drop >= 0 {
		slo.MaxDropRate = *drop
	}
	if *percentile > 0 {
		slo.Percentile = *percentile
	}

	req := plan.Request{System: sys, Traffic: traffic, SLO: slo}
	if *quick {
		req.Options = plan.Options{MaxReplicas: 4, ThreadScales: []int{1, 4}}
		adv := plan.DefaultAdversary()
		adv.Intervals = adv.Intervals[1:2] // the paper's I = 2 s only
		req.Adversary = adv
	}

	res, err := plan.Solve(req)
	if err != nil {
		fatal(err)
	}

	var report []byte
	if *jsonOut {
		report, err = res.JSON(req)
		if err != nil {
			fatal(err)
		}
		report = append(report, '\n')
	} else {
		report = []byte(res.Render(req))
	}
	if *out != "" {
		if err := os.WriteFile(*out, report, 0o644); err != nil {
			fatal(err)
		}
		return
	}
	if _, err := os.Stdout.Write(report); err != nil {
		fatal(err)
	}
}

// loadInputs resolves the system/traffic/SLO triple from a plan spec
// file, an experiment config, or the RUBBoS defaults.
func loadInputs(specPath, configPath string) (spec.System, spec.Traffic, spec.SLO, error) {
	switch {
	case specPath != "":
		return spec.LoadPlan(specPath)
	case configPath != "":
		cfg, err := core.LoadConfig(configPath)
		if err != nil {
			return spec.System{}, spec.Traffic{}, spec.SLO{}, err
		}
		sys, traffic, err := cfg.Spec()
		if err != nil {
			return spec.System{}, spec.Traffic{}, spec.SLO{}, err
		}
		return sys, traffic, spec.DefaultSLO(), nil
	default:
		return spec.RUBBoSSystem(), spec.RUBBoSTraffic(), spec.DefaultSLO(), nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memca-plan:", err)
	os.Exit(1)
}
