// Command memca-fe runs the MemCA frontend daemon: it executes the attack
// program in ON-OFF bursts inside the (co-located) adversary machine,
// accepts a MemCA-BE connection over TCP, applies parameter retunes, and
// streams per-burst reports back.
//
// Usage:
//
//	memca-fe -listen 127.0.0.1:7070 -program stream
//
// The "stream" program generates real memory traffic (a RAMspeed-style
// scan through a cache-defeating buffer); "simulated" only sleeps, for
// demos and tests.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"memca/internal/memcafw"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memca-fe:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "127.0.0.1:7070", "TCP address to serve the BE on")
		id        = flag.String("id", "fe-1", "frontend identifier")
		program   = flag.String("program", "stream", "attack program: stream or simulated")
		bufMB     = flag.Int("buffer-mb", 64, "streaming buffer size (should exceed the LLC)")
		peakMBps  = flag.Float64("peak-mbps", 9000, "calibrated single-core streaming peak for resource-share reporting")
		burstMs   = flag.Int64("burst-ms", 500, "initial burst length L")
		interval  = flag.Int64("interval-ms", 2000, "initial burst interval I")
		intensity = flag.Float64("intensity", 1.0, "initial intensity R")
	)
	flag.Parse()

	var prog memcafw.AttackProgram
	switch *program {
	case "stream":
		p, err := memcafw.NewStreamProgram(*bufMB, *peakMBps)
		if err != nil {
			return err
		}
		prog = p
	case "simulated":
		prog = memcafw.SimulatedProgram{}
	default:
		return fmt.Errorf("unknown -program %q (want stream or simulated)", *program)
	}

	fe, err := memcafw.NewFrontend(memcafw.FrontendConfig{
		ID:      *id,
		Listen:  *listen,
		Program: prog,
		Initial: memcafw.ParamsMsg{Intensity: *intensity, BurstMs: *burstMs, IntervalMs: *interval},
		Logger:  log.New(os.Stderr, "memca-fe ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := fe.Close(); cerr != nil {
			log.Printf("memca-fe: close: %v", cerr)
		}
	}()
	log.Printf("memca-fe %s serving on %s (program %s)", *id, fe.Addr(), prog.Name())
	return fe.Serve()
}
