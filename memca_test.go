package memca_test

import (
	"testing"
	"time"

	"memca"
)

// TestFacadeQuickExperiment exercises the public API end to end at reduced
// scale: configure, run, and read the report through the facade only.
func TestFacadeQuickExperiment(t *testing.T) {
	cfg := memca.DefaultConfig()
	cfg.Duration = 30 * time.Second
	cfg.Warmup = 5 * time.Second
	cfg.Clients = 700
	cfg.ThinkTime = 1400 * time.Millisecond

	x, err := memca.NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GoalMet {
		t.Errorf("facade attack run missed the goal: p95 = %v", rep.Client.P95)
	}
	if len(rep.Tiers) != 3 {
		t.Errorf("tiers = %d", len(rep.Tiers))
	}
	if rep.Render() == "" {
		t.Error("empty render")
	}
}

func TestFacadeAnalytical(t *testing.T) {
	m := memca.RUBBoSModel()
	pred, err := memca.PredictAttack(m, memca.ModelAttack{
		D: 0.1, L: 500 * time.Millisecond, I: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pred.QueuesAllFill || pred.Impact <= 0 {
		t.Errorf("prediction wrong: %+v", pred)
	}
	goal := memca.PlanGoal{MinImpact: 0.05, MaxMillibottleneck: time.Second}
	planned, err := memca.PlanAttack(m, goal, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if planned.L <= 0 || planned.D <= 0 {
		t.Errorf("planned attack wrong: %+v", planned)
	}
	// The deprecated positional form must keep returning the same plan.
	legacy, err := memca.PlanAttackArgs(m, 0.05, time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != planned {
		t.Errorf("PlanAttackArgs = %+v, want %+v", legacy, planned)
	}
}

func TestFacadeBandwidthProfile(t *testing.T) {
	cfg := memca.XeonE5_2603v3()
	spec := memca.ProfileSpec{
		Host: cfg, VMs: 3, Placement: memca.PlacementSamePackage,
		Kind: memca.AttackMemoryLock, LockDuty: 1,
	}
	point, err := memca.Profile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if point.PerVMMBps <= 0 {
		t.Errorf("bandwidth point: %+v", point)
	}
	// The deprecated positional form must agree with the spec form.
	legacy, err := memca.ProfileBandwidth(cfg, 3, memca.PlacementSamePackage, memca.AttackMemoryLock, 1)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != point {
		t.Errorf("ProfileBandwidth = %+v, want %+v", legacy, point)
	}
	sweep, err := memca.Sweep(memca.ProfileSpec{
		Host: cfg, VMs: 4, Placement: memca.PlacementRandomPackage, Kind: memca.AttackBusSaturation,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 4 {
		t.Errorf("sweep points = %d", len(sweep))
	}
	legacySweep, err := memca.BandwidthSweep(cfg, 4, memca.PlacementRandomPackage, memca.AttackBusSaturation, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacySweep) != len(sweep) || legacySweep[len(legacySweep)-1] != sweep[len(sweep)-1] {
		t.Errorf("BandwidthSweep disagrees with Sweep: %+v vs %+v", legacySweep, sweep)
	}
	ec2 := memca.EC2DedicatedHost()
	if ec2.BusBandwidthMBps <= cfg.BusBandwidthMBps {
		t.Error("EC2 host should have more bandwidth than the private host")
	}
}

func TestFacadePercentilesCopy(t *testing.T) {
	a := memca.FigurePercentiles()
	a[0] = -1
	b := memca.FigurePercentiles()
	if b[0] == -1 {
		t.Error("FigurePercentiles returns a shared slice")
	}
	if b[len(b)-1] != 99.9 {
		t.Errorf("grid end = %v", b[len(b)-1])
	}
}

func TestFacadeAutoScaler(t *testing.T) {
	trigger := memca.DefaultAutoScaler()
	if trigger.Threshold != 0.85 || trigger.Period != time.Minute {
		t.Errorf("default trigger: %+v", trigger)
	}
}
