module memca

go 1.22
