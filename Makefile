GO ?= go

.PHONY: all build vet lint lint-budget test race equivalence dsweep-smoke fuzz bench bench-baseline bench-smoke figures quick-figures trace demo demo-smoke plan-smoke clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# memca-lint is the project's custom analyzer suite (sim determinism,
# clock discipline, float comparison, dropped errors, hot-path allocation
# discipline, atomic-access discipline) plus the allocbound escape-budget
# gate over the zero-alloc packages; see DESIGN.md. On budget drift, fix
# the allocation or accept it with `make lint-budget` and commit the
# regenerated internal/lint/testdata/escape_budget.json.
lint:
	$(GO) run ./cmd/memca-lint ./...

# Deliberate escape-budget refresh: re-run the compiler's escape analysis
# over the budgeted packages and rewrite the checked-in budget in place.
lint-budget:
	$(GO) run ./cmd/memca-lint -update-budget

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=5 ./internal/sweep

# Parallel-vs-serial determinism proof: every sweep-converted driver and
# the replication helper must produce identical results and byte-identical
# CSV artifacts for workers 1, 4, and 8 (quick horizons); the dsweep
# fabric additionally proves shards 1/2/4/8 and kill+resume byte-identical
# to the in-process path.
equivalence:
	$(GO) test -run 'TestSweepWorkerEquivalence|TestSweepProgressTotals|TestReplicateWorkerEquivalence|TestDistShardEquivalence|TestDistKillResumeEquivalence' -v ./internal/figures ./internal/core

# Distributed-sweep smoke: coordinate a quick Fig2 across 3 worker
# subprocesses, kill one mid-run, resume, and diff the merged artifact
# and CSVs against a single-process run — any byte of divergence fails.
dsweep-smoke:
	$(GO) run ./cmd/memca-sweep smoke

# Short fuzz passes over the file-facing config schema and the stats
# kernels (seed corpora are checked in under the packages'
# testdata/fuzz). FUZZTIME tunes the per-target budget.
FUZZTIME = 30s
fuzz:
	$(GO) test -run FuzzConfigJSON -fuzz FuzzConfigJSON -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzHistogramAdd -fuzztime $(FUZZTIME) ./internal/stats
	$(GO) test -run '^$$' -fuzz FuzzSampleQuantile -fuzztime $(FUZZTIME) ./internal/stats

# Engine performance regression report and gate: run the kernel and
# headline-figure benchmarks for real (default benchtime), diff them
# against the checked-in baseline into BENCH.json, and fail on contract
# violations — allocs/op may never grow (the zero-allocation hot paths,
# traced and untraced, are exact contracts on any machine); ns/op is
# additionally gated per the baseline's gate_ns_pct when the CPU matches
# the one that produced the baseline. The unanchored QueueingThroughput
# pattern also matches its Traced variant.
BENCH_REGRESSION = BenchmarkEngineEvents|BenchmarkQueueingThroughput|BenchmarkFig2TailAmplification|BenchmarkStatsRecord|BenchmarkFeatureExtract
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_REGRESSION)' -benchmem . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench/baseline.json -gate \
			-args "go test -run ^$$ -bench '$(BENCH_REGRESSION)' -benchmem ." \
			-o BENCH.json

# Deliberate baseline refresh: re-measure the regression set and rewrite
# bench/baseline.json in place. gate_ns_pct resets to 0 on capture —
# re-add tolerances by hand (they are contracts, not measurements).
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_REGRESSION)' -benchmem . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline-out bench/baseline.json \
			-commit "$$(git rev-parse --short HEAD)" \
			-note "captured by make bench-baseline"

# One iteration of every benchmark — a fast smoke check that each figure
# pipeline still runs end to end.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every paper table/figure plus ablations, the defense matrix,
# and the jitter-evasion study into out/.
figures:
	$(GO) run ./cmd/memca-bench -out out

quick-figures:
	$(GO) run ./cmd/memca-bench -out out -quick

# Per-request causal traces: attacked + baseline runs with full tracing,
# exporting Chrome trace JSON, attribution CSVs, and dual-resolution
# timelines into out/trace/.
trace:
	$(GO) run ./cmd/memca-trace -out out/trace

# Capacity-planner smoke: solve the RUBBoS plan spec (forecast shaping)
# and re-size an experiment config lifted through Config.Spec(), both on
# the reduced -quick search space. Exercises the spec loader, the config
# bridge, the solver, and both report formats end to end.
plan-smoke:
	$(GO) run ./cmd/memca-plan -quick -spec configs/plan-rubbos.json
	$(GO) run ./cmd/memca-plan -quick -config configs/paper-default.json -json

# Live end-to-end demo on real sockets.
demo:
	$(GO) run ./cmd/memca-demo

# Short traced demo run (real sockets, causal tracing on): exports Chrome
# trace, OTLP/JSON, and attribution CSV into out/demo/ — the live half of
# the shared telemetry pipeline, small enough for CI.
demo-smoke:
	$(GO) run ./cmd/memca-demo -duration 3s -clients 8 \
		-trace-out out/demo/trace.json \
		-otlp-out out/demo/otlp.json \
		-attrib-out out/demo/attribution.csv

clean:
	rm -rf out
