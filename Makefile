GO ?= go

.PHONY: all build vet test race bench figures quick-figures demo clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/memcafw/ ./internal/victimd/

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every paper table/figure plus ablations, the defense matrix,
# and the jitter-evasion study into out/.
figures:
	$(GO) run ./cmd/memca-bench -out out

quick-figures:
	$(GO) run ./cmd/memca-bench -out out -quick

# Live end-to-end demo on real sockets.
demo:
	$(GO) run ./cmd/memca-demo

clean:
	rm -rf out
