GO ?= go

.PHONY: all build vet lint test race equivalence fuzz bench figures quick-figures demo clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# memca-lint is the project's custom analyzer suite (sim determinism,
# clock discipline, float comparison, dropped errors); see DESIGN.md.
lint:
	$(GO) run ./cmd/memca-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=5 ./internal/sweep

# Parallel-vs-serial determinism proof: every sweep-converted driver and
# the replication helper must produce identical results and byte-identical
# CSV artifacts for workers 1, 4, and 8 (quick horizons).
equivalence:
	$(GO) test -run 'TestSweepWorkerEquivalence|TestSweepProgressTotals|TestReplicateWorkerEquivalence' -v ./internal/figures ./internal/core

# Short fuzz pass over the file-facing config schema (seed corpus is
# checked in under internal/core/testdata/fuzz).
fuzz:
	$(GO) test -run FuzzConfigJSON -fuzz FuzzConfigJSON -fuzztime 30s ./internal/core

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every paper table/figure plus ablations, the defense matrix,
# and the jitter-evasion study into out/.
figures:
	$(GO) run ./cmd/memca-bench -out out

quick-figures:
	$(GO) run ./cmd/memca-bench -out out -quick

# Live end-to-end demo on real sockets.
demo:
	$(GO) run ./cmd/memca-demo

clean:
	rm -rf out
