GO ?= go

.PHONY: all build vet lint test race bench figures quick-figures demo clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# memca-lint is the project's custom analyzer suite (sim determinism,
# clock discipline, float comparison, dropped errors); see DESIGN.md.
lint:
	$(GO) run ./cmd/memca-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every paper table/figure plus ablations, the defense matrix,
# and the jitter-evasion study into out/.
figures:
	$(GO) run ./cmd/memca-bench -out out

quick-figures:
	$(GO) run ./cmd/memca-bench -out out -quick

# Live end-to-end demo on real sockets.
demo:
	$(GO) run ./cmd/memca-demo

clean:
	rm -rf out
