GO ?= go

.PHONY: all build vet lint test race equivalence fuzz bench bench-smoke figures quick-figures demo clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# memca-lint is the project's custom analyzer suite (sim determinism,
# clock discipline, float comparison, dropped errors); see DESIGN.md.
lint:
	$(GO) run ./cmd/memca-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	$(GO) test -race -count=5 ./internal/sweep

# Parallel-vs-serial determinism proof: every sweep-converted driver and
# the replication helper must produce identical results and byte-identical
# CSV artifacts for workers 1, 4, and 8 (quick horizons).
equivalence:
	$(GO) test -run 'TestSweepWorkerEquivalence|TestSweepProgressTotals|TestReplicateWorkerEquivalence' -v ./internal/figures ./internal/core

# Short fuzz pass over the file-facing config schema (seed corpus is
# checked in under internal/core/testdata/fuzz).
fuzz:
	$(GO) test -run FuzzConfigJSON -fuzz FuzzConfigJSON -fuzztime 30s ./internal/core

# Engine performance regression report: run the kernel and headline-figure
# benchmarks for real (default benchtime) and diff them against the
# checked-in pre-redesign baseline into BENCH_PR3.json.
BENCH_REGRESSION = BenchmarkEngineEvents|BenchmarkQueueingThroughput|BenchmarkFig2TailAmplification
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_REGRESSION)' -benchmem . \
		| tee /dev/stderr \
		| $(GO) run ./cmd/benchjson -baseline bench/baseline.json \
			-args "go test -run ^$$ -bench '$(BENCH_REGRESSION)' -benchmem ." \
			-o BENCH_PR3.json

# One iteration of every benchmark — a fast smoke check that each figure
# pipeline still runs end to end.
bench-smoke:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate every paper table/figure plus ablations, the defense matrix,
# and the jitter-evasion study into out/.
figures:
	$(GO) run ./cmd/memca-bench -out out

quick-figures:
	$(GO) run ./cmd/memca-bench -out out -quick

# Live end-to-end demo on real sockets.
demo:
	$(GO) run ./cmd/memca-demo

clean:
	rm -rf out
