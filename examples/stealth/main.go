// Stealth: why the cloud never sees MemCA coming. Runs the attack with a
// live auto-scaling group attached to the victim tier and shows the same
// CPU signal through 1-minute (CloudWatch), 1-second, and 50-millisecond
// monitoring — plus the contrast case of a brute-force sustained attack
// that DOES trip the scaler.
//
//	go run ./examples/stealth
package main

import (
	"fmt"
	"os"
	"time"

	"memca"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stealth:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== MemCA: 500ms bursts every 2s, live 85%/1-min auto scaler attached ==")
	cfg := memca.DefaultConfig()
	cfg.Duration = 4 * time.Minute
	cfg.Scaling = &memca.ScalingSpec{Trigger: memca.DefaultAutoScaler(), MaxInstances: 4}
	rep, err := runOne(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("scale events: %d, fleet size: %d  -> elasticity bypassed while p95 = %v\n\n",
		len(rep.ScaleEvents), rep.Instances, rep.Client.P95.Round(time.Millisecond))

	fmt.Println("== contrast: brute-force attack (sustained 90% duty) ==")
	brute := cfg
	brute.Attack = &memca.AttackSpec{
		Kind: memca.AttackMemoryLock,
		Params: memca.AttackParams{
			Intensity:   1,
			BurstLength: 1800 * time.Millisecond,
			Interval:    2 * time.Second,
		},
		AdversaryVMs: 1,
	}
	bruteRep, err := runOne(brute)
	if err != nil {
		return err
	}
	fmt.Printf("scale events: %d, fleet size: %d  -> a sustained attack is seen and absorbed\n",
		len(bruteRep.ScaleEvents), bruteRep.Instances)
	return nil
}

func runOne(cfg memca.Config) (*memca.Report, error) {
	x, err := memca.NewExperiment(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := x.Run()
	if err != nil {
		return nil, err
	}
	for _, v := range rep.VictimUtilization {
		fmt.Printf("mysql CPU @ %-8v mean %5.1f%%  max %5.1f%%\n", v.Granularity, v.Mean*100, v.Max*100)
	}
	return rep, nil
}
