// Feedback: the MemCA-BE control loop in action. The attacker starts with
// deliberately weak parameters and no knowledge of the target system; the
// Kalman-filtered commander probes the tail, escalates intensity, burst
// length and burst density in turn, and converges on the damage goal
// (p95 > 1 s) while honoring the stealth bound (millibottleneck < 1 s).
//
//	go run ./examples/feedback
package main

import (
	"fmt"
	"os"
	"time"

	"memca"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "feedback:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := memca.DefaultConfig()
	cfg.Duration = 5 * time.Minute
	cfg.Attack.Params = memca.AttackParams{
		Intensity:   0.3,
		BurstLength: 60 * time.Millisecond,
		Interval:    4 * time.Second,
	}
	fb := memca.DefaultFeedback()
	fb.DecisionEvery = 5 * time.Second
	cfg.Feedback = &fb

	x, err := memca.NewExperiment(cfg)
	if err != nil {
		return err
	}

	// Print the controller trajectory every 20 simulated seconds.
	engine := x.Engine()
	var watch func()
	watch = func() {
		p := x.Burster().Params()
		fmt.Printf("t=%-6v R=%.2f  L=%-8v I=%-6v  probe p95=%v\n",
			engine.Now().Round(time.Second), p.Intensity,
			p.BurstLength.Round(time.Millisecond), p.Interval.Round(time.Millisecond),
			x.Prober().Percentile(95).Round(time.Millisecond))
		if engine.Now() < cfg.Warmup+cfg.Duration {
			engine.Schedule(20*time.Second, watch)
		}
	}
	engine.Schedule(cfg.Warmup, watch)

	rep, err := x.Run()
	if err != nil {
		return err
	}

	fmt.Printf("\ncommander: %d decisions, %d escalations, %d backoffs\n",
		x.Commander().Decisions(), x.Commander().Escalations(), x.Commander().Backoffs())
	fmt.Printf("final params: R=%.2f L=%v I=%v\n",
		x.Burster().Params().Intensity,
		x.Burster().Params().BurstLength.Round(time.Millisecond),
		x.Burster().Params().Interval.Round(time.Millisecond))
	fmt.Printf("whole-run client p95 = %v (mixes the weak early phase)\n", rep.Client.P95.Round(time.Millisecond))
	fmt.Printf("smoothed tail estimate at the end: %v\n", x.Commander().SmoothedTailRT().Round(time.Millisecond))
	return nil
}
