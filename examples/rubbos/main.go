// RUBBoS under attack: the full Figure 2 + Figure 9 scenario. Runs the
// 3500-client RUBBoS workload in both modelled clouds under the
// memory-lock MemCA attack, prints per-tier percentile curves (tail
// amplification), and zooms into one fine-grained 8-second window to show
// the burst -> CPU saturation -> queue propagation -> client damage chain.
//
//	go run ./examples/rubbos
package main

import (
	"fmt"
	"os"
	"time"

	"memca"
	"memca/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rubbos:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, env := range []memca.Env{memca.EnvEC2, memca.EnvPrivateCloud} {
		cfg := memca.DefaultConfig()
		cfg.Env = env
		cfg.Duration = 90 * time.Second
		cfg.RecordSeries = true
		x, err := memca.NewExperiment(cfg)
		if err != nil {
			return err
		}
		rep, err := x.Run()
		if err != nil {
			return err
		}

		fmt.Printf("==== %s ====\n", env)
		fmt.Println(rep.Render())

		// Tail amplification, Figure 2 style: percentile curves per tier.
		fmt.Println("percentile  mysql      tomcat     apache     client")
		for _, p := range []float64{90, 95, 98, 99} {
			idx := indexOfPercentile(p)
			fmt.Printf("p%-10v %-10v %-10v %-10v %v\n", p,
				rep.Tiers[2].Curve[idx].Round(time.Millisecond),
				rep.Tiers[1].Curve[idx].Round(time.Millisecond),
				rep.Tiers[0].Curve[idx].Round(time.Millisecond),
				rep.ClientCurve[idx].Round(time.Millisecond))
		}

		// Figure 9 style: worst client response times inside an 8s window.
		start := cfg.Warmup + 4*time.Second
		worst := time.Duration(0)
		over1s := 0
		for _, pt := range x.Generator().RTSeries().Points {
			if pt.T < start || pt.T >= start+8*time.Second {
				continue
			}
			rt := time.Duration(pt.V * float64(time.Second))
			if rt > worst {
				worst = rt
			}
			if rt >= time.Second {
				over1s++
			}
		}
		fmt.Printf("\n8-second snapshot: worst client RT %v, %d requests above 1s, %d attack bursts total\n\n",
			worst.Round(time.Millisecond), over1s, rep.Bursts)
	}
	return nil
}

// indexOfPercentile maps a percentile to its index in the report curves.
func indexOfPercentile(p float64) int {
	grid := memca.FigurePercentiles()
	for i, v := range grid {
		if stats.ApproxEqual(v, p) {
			return i
		}
	}
	return len(grid) - 1
}
