// Defense: the countermeasure space the paper's conclusion calls for.
// Runs the memory-lock attack against three host configurations — no
// defense, Heracles/MBA-style bandwidth reservation, and kernel
// split-lock protection — then shows what a fine-grained millibottleneck
// detector would see and what it would cost.
//
// The isolation asymmetry is the point: bandwidth partitioning protects
// against bus *saturation* but sits above the hardware bus lock, so it
// cannot stop MemCA's lock attack; split-lock protection stops exactly
// that attack.
//
//	go run ./examples/defense
package main

import (
	"fmt"
	"os"
	"time"

	"memca"
	"memca/internal/defense"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "defense:", err)
		os.Exit(1)
	}
}

func run() error {
	variants := []struct {
		name string
		spec *memca.DefenseSpec
	}{
		{"no defense", nil},
		{"bandwidth reservation (3 GB/s for MySQL)", &memca.DefenseSpec{VictimReservationMBps: 3000}},
		{"split-lock protection", &memca.DefenseSpec{SplitLockProtection: true}},
	}

	var undefended *memca.Experiment
	for _, v := range variants {
		cfg := memca.DefaultConfig()
		cfg.Duration = 90 * time.Second
		cfg.Defense = v.spec
		x, err := memca.NewExperiment(cfg)
		if err != nil {
			return err
		}
		rep, err := x.Run()
		if err != nil {
			return err
		}
		verdict := "ATTACK SUCCEEDS"
		if rep.Client.P95 < time.Second {
			verdict = "mitigated"
		}
		fmt.Printf("%-42s client p95 = %-9v burst D = %.3f   %s\n",
			v.name, rep.Client.P95.Round(time.Millisecond), rep.LastDegradation, verdict)
		if v.spec == nil {
			undefended = x
		}
	}

	// Detection: run the millibottleneck detector over the undefended
	// run's exact CPU signal at two granularities.
	busy, err := undefended.Network().TierBusy(2)
	if err != nil {
		return err
	}
	source := func(from, to time.Duration) float64 {
		return busy.WindowAverage(20*time.Second+from, 20*time.Second+to) / 2
	}
	fmt.Println()
	for _, g := range []time.Duration{50 * time.Millisecond, time.Second} {
		cfg := defense.DefaultDetector()
		cfg.Granularity = g
		det, err := defense.NewDetector(cfg)
		if err != nil {
			return err
		}
		episodes, err := det.Detect(source, 90*time.Second)
		if err != nil {
			return err
		}
		cls := defense.Classify(episodes, 5)
		fmt.Printf("detector @ %-5v %3d millibottlenecks, attack classified: %-5v (overhead %.3f%% of a core)\n",
			g, len(episodes), cls.PulsatingAttack, cfg.OverheadFraction()*100)
	}
	fmt.Println("\nfine-grained detection works but costs 20x the monitoring budget of 1s sampling —")
	fmt.Println("the economics that keep the MemCA window open (Section V-B).")
	return nil
}
