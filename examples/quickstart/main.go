// Quickstart: run the paper's headline experiment — a 3-tier RUBBoS-style
// web application under the MemCA memory-lock attack — and compare the
// client-perceived tail latency against a clean baseline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"memca"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Ctrl-C aborts a run mid-simulation instead of waiting it out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// A shortened run is enough to see the effect; the full paper setup
	// is memca.DefaultConfig() unchanged (3 minutes, 3500 clients).
	base := memca.DefaultConfig()
	base.Duration = time.Minute

	fmt.Println("== baseline (no attack) ==")
	clean := base
	clean.Attack = nil
	cleanRep, err := runOne(ctx, clean)
	if err != nil {
		return err
	}

	fmt.Println("== under MemCA (memory lock, L=500ms, I=2s) ==")
	attackRep, err := runOne(ctx, base)
	if err != nil {
		return err
	}

	fmt.Printf("client p95: %v -> %v (%.0fx)\n",
		cleanRep.Client.P95.Round(time.Millisecond),
		attackRep.Client.P95.Round(time.Millisecond),
		float64(attackRep.Client.P95)/float64(cleanRep.Client.P95))
	fmt.Printf("1-minute average MySQL CPU stays at %.0f%% -> %.0f%% — nothing for CloudWatch to see\n",
		cleanRep.VictimUtilization[0].Mean*100, attackRep.VictimUtilization[0].Mean*100)
	return nil
}

func runOne(ctx context.Context, cfg memca.Config) (*memca.Report, error) {
	x, err := memca.NewExperiment(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := x.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	fmt.Println(rep.Render())
	return rep, nil
}
