// Tandem vs n-tier: why cross-tier queue overflow amplifies tails
// (Figures 6 and 7). Compares the classic tandem-queue model against the
// paper's RPC slot-holding model under identical attack bursts, first
// analytically (Equations 4-10) and then by simulation.
//
// This example reaches below the orchestration facade into the model
// packages, showing how to drive the queueing substrate directly.
//
//	go run ./examples/tandem-vs-ntier
package main

import (
	"fmt"
	"os"
	"time"

	"memca"
	"memca/internal/figures"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tandem-vs-ntier:", err)
		os.Exit(1)
	}
}

func run() error {
	// Analytical side: Equations 4-10 on the RUBBoS model.
	m := memca.RUBBoSModel()
	a := memca.ModelAttack{D: 0.05, L: 500 * time.Millisecond, I: 2 * time.Second}
	pred, err := memca.PredictAttack(m, a)
	if err != nil {
		return err
	}
	fmt.Println("== analytical model (Equations 4-10) ==")
	fmt.Printf("degraded capacity C_ON = %.0f req/s\n", pred.CnON)
	for i, t := range m.Tiers {
		fmt.Printf("fill %-7s queue (Q=%d) in %v\n", t.Name, t.Queue, pred.FillTimes[i].Round(time.Millisecond))
	}
	fmt.Printf("build-up %v, damage period %v, drain %v, millibottleneck %v, impact rho=%.3f\n\n",
		pred.TotalFill.Round(time.Millisecond), pred.DamagePeriod.Round(time.Millisecond),
		pred.DrainTime.Round(time.Millisecond), pred.Millibottleneck.Round(time.Millisecond), pred.Impact)

	// Simulation side: Figure 6 (queue overflow) and Figure 7 (tails).
	opts := figures.Options{Quick: true, Seed: 1}
	fmt.Println("== simulated queue overflow (Figure 6) ==")
	f6, err := figures.Fig6(opts)
	if err != nil {
		return err
	}
	fmt.Printf("tandem: all queued work at mysql (max %.0f); upstream stays at %.0f\n",
		f6.TandemMySQLMax, f6.TandemUpstreamMax)
	fmt.Printf("rpc: overflow reaches the front; fill order mysql %v -> tomcat %v -> apache %v\n\n",
		f6.RPCFillOrder[2].Round(time.Millisecond),
		f6.RPCFillOrder[1].Round(time.Millisecond),
		f6.RPCFillOrder[0].Round(time.Millisecond))

	fmt.Println("== simulated tail amplification (Figure 7) ==")
	f7, err := figures.Fig7(opts)
	if err != nil {
		return err
	}
	for _, c := range []figures.Fig7Case{figures.Fig7Tandem, figures.Fig7InfiniteFront, figures.Fig7Finite} {
		r := f7.Cases[c]
		fmt.Printf("%-15s client p99 %-9v mysql p99 %-9v drops %d\n",
			c, r.ClientP99.Round(time.Millisecond), r.MySQLP99.Round(time.Millisecond), r.Drops)
	}
	fmt.Println("\ntandem keeps the tails together; finite RPC queues drop requests and")
	fmt.Println("TCP retransmission (min RTO 1s) amplifies the client tail past every tier.")
	return nil
}
