package stats

import (
	"testing"
	"time"
)

func TestLevelIntegratorBasics(t *testing.T) {
	li := NewLevelIntegrator()
	if li.Level() != 0 {
		t.Fatal("new integrator not at level 0")
	}
	li.Set(time.Second, 2)
	li.Add(2*time.Second, 3)  // level 5
	li.Add(3*time.Second, -5) // level 0
	if li.Level() != 0 {
		t.Errorf("Level = %v, want 0", li.Level())
	}
	// Integral: 0*1 + 2*1 + 5*1 = 7 level-seconds by t=3.
	if got := li.Integral(3 * time.Second); got != 7 {
		t.Errorf("Integral(3s) = %v, want 7", got)
	}
	// Open level extends: set level 4 at t=4, ask at t=6.
	li.Set(4*time.Second, 4)
	if got := li.Integral(6 * time.Second); got != 7+8 {
		t.Errorf("Integral(6s) = %v, want 15", got)
	}
	if got := li.MaxLevel(); got != 5 {
		t.Errorf("MaxLevel = %v, want 5", got)
	}
	if n := len(li.Transitions()); n != 4 {
		t.Errorf("transitions = %d, want 4", n)
	}
}

func TestLevelIntegratorWindowAverage(t *testing.T) {
	li := NewLevelIntegrator()
	li.Set(time.Second, 10)
	li.Set(2*time.Second, 0)
	tests := []struct {
		from, to time.Duration
		want     float64
	}{
		{0, 4 * time.Second, 2.5},
		{time.Second, 2 * time.Second, 10},
		{1500 * time.Millisecond, 2500 * time.Millisecond, 5},
		{3 * time.Second, 4 * time.Second, 0},
		{2 * time.Second, 2 * time.Second, 0}, // degenerate window
	}
	for _, tc := range tests {
		if got := li.WindowAverage(tc.from, tc.to); got != tc.want {
			t.Errorf("WindowAverage(%v,%v) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestLevelIntegratorDuplicateSetIgnored(t *testing.T) {
	li := NewLevelIntegrator()
	li.Set(time.Second, 3)
	li.Set(2*time.Second, 3) // no-op
	if n := len(li.Transitions()); n != 1 {
		t.Errorf("duplicate set recorded: %d transitions", n)
	}
}

func TestLevelIntegratorAverageSeries(t *testing.T) {
	li := NewLevelIntegrator()
	// 1 for [0,1s), 3 for [1s,2s).
	li.Set(0, 1)
	li.Set(time.Second, 3)
	li.Set(2*time.Second, 0)
	buckets, err := li.AverageSeries(time.Second, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 3 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	want := []float64{1, 3, 0}
	for i, b := range buckets {
		if b.Mean != want[i] {
			t.Errorf("bucket %d mean = %v, want %v", i, b.Mean, want[i])
		}
	}
	if _, err := li.AverageSeries(0, time.Second); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := li.AverageSeries(time.Second, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestTimeSeriesAccessors(t *testing.T) {
	ts := NewTimeSeries("x")
	if ts.Len() != 0 || ts.MaxValue() != 0 || ts.MeanValue() != 0 {
		t.Error("empty series accessors nonzero")
	}
	ts.Add(time.Second, 2)
	ts.Add(2*time.Second, 8)
	ts.Add(3*time.Second, 5)
	if ts.Len() != 3 {
		t.Errorf("Len = %d", ts.Len())
	}
	if ts.MaxValue() != 8 {
		t.Errorf("MaxValue = %v", ts.MaxValue())
	}
	if ts.MeanValue() != 5 {
		t.Errorf("MeanValue = %v", ts.MeanValue())
	}
}

func TestSampleValuesAndString(t *testing.T) {
	s := NewSample(2)
	s.Add(2 * time.Second)
	s.Add(time.Second)
	vals := s.Values()
	if len(vals) != 2 {
		t.Fatalf("Values len = %d", len(vals))
	}
	// Mutating the copy must not affect the sample.
	vals[0] = 0
	if s.Max() != 2*time.Second {
		t.Error("Values copy aliased the sample")
	}
	text := s.Summarize().String()
	for _, want := range []string{"n=2", "p95", "max"} {
		if !containsStr(text, want) {
			t.Errorf("summary %q missing %q", text, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRunningAccessors(t *testing.T) {
	var r Running
	if r.Count() != 0 || r.StdDev() != 0 {
		t.Error("zero-value accessors wrong")
	}
	r.Add(3)
	r.Add(7)
	if r.Count() != 2 {
		t.Errorf("Count = %d", r.Count())
	}
	if r.StdDev() <= 0 {
		t.Errorf("StdDev = %v", r.StdDev())
	}
}

func TestP2LinearInterpolationPath(t *testing.T) {
	// Heavily skewed input forces the parabolic prediction out of
	// bounds, exercising the linear fallback.
	p2, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1, 1, 1, 1, 1000, 1, 1, 1000, 1, 1, 1, 1000, 1, 1}
	for _, v := range vals {
		p2.Add(v)
	}
	got := p2.Value()
	if got < 1 || got > 1000 {
		t.Errorf("estimate %v outside data range", got)
	}
}

func TestHistogramDeepTail(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		h.Add(time.Millisecond)
	}
	h.Add(5 * time.Minute) // beyond the last bucket: clamped
	q := h.Quantile(1)
	if q < time.Millisecond {
		t.Errorf("max quantile %v too small", q)
	}
	if h.Mean() < 2*time.Second {
		t.Errorf("mean %v should be dominated by the outlier", h.Mean())
	}
	// Bucket bounds are increasing.
	lo0, hi0 := h.BucketBounds(0)
	lo1, _ := h.BucketBounds(1)
	if !(lo0 < hi0 && hi0 == lo1) {
		t.Errorf("bucket bounds wrong: [%v,%v) then lo %v", lo0, hi0, lo1)
	}
}
