package stats

import (
	"math"
	"testing"
	"time"
)

// FuzzHistogramAdd throws arbitrary durations — including zero, negative,
// and math.MaxInt64 — at the standard latency histogram and checks its
// invariants: no panic, bucket indices stay in [-1, buckets), the index is
// monotone in the observation, and every observation is conserved as
// either an underflow or a bucket count.
func FuzzHistogramAdd(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(-1), int64(1))
	f.Add(int64(time.Microsecond), int64(100*time.Microsecond))
	f.Add(int64(time.Second), int64(10*time.Second))
	f.Add(int64(math.MaxInt64), int64(math.MinInt64))
	f.Add(int64(99*time.Microsecond), int64(110*time.Microsecond)) // base boundary
	f.Fuzz(func(t *testing.T, raw1, raw2 int64) {
		v1, v2 := time.Duration(raw1), time.Duration(raw2)
		h := NewLatencyHistogram()
		i1, i2 := h.BucketIndex(v1), h.BucketIndex(v2)
		for i, v := range map[int]time.Duration{i1: v1, i2: v2} {
			if i < -1 || i >= h.Buckets() {
				t.Fatalf("BucketIndex(%d) = %d, outside [-1, %d)", v, i, h.Buckets())
			}
		}
		if v1 <= v2 && i1 > i2 {
			t.Fatalf("bucket index not monotone: %d -> %d but %d -> %d", v1, i1, v2, i2)
		}
		h.Add(v1)
		h.Add(v2)
		var inBuckets uint64
		for i := 0; i < h.Buckets(); i++ {
			inBuckets += h.BucketCount(i)
		}
		if h.Under()+inBuckets != h.Count() {
			t.Fatalf("conservation violated: under %d + buckets %d != total %d",
				h.Under(), inBuckets, h.Count())
		}
		if h.Count() != 2 {
			t.Fatalf("total = %d after 2 adds", h.Count())
		}
		// The arena-backed histogram shares the Add/BucketIndex kernels; its
		// counts must agree observation for observation.
		a := NewArena()
		defer a.Reset()
		ah := a.LatencyHistogram()
		ah.Add(v1)
		ah.Add(v2)
		if ah.Under() != h.Under() || ah.Count() != h.Count() {
			t.Fatalf("arena histogram diverges: under %d/%d total %d/%d",
				ah.Under(), h.Under(), ah.Count(), h.Count())
		}
	})
}

// FuzzSampleQuantile feeds arbitrary observation triples to heap- and
// arena-backed samples and checks the quantile kernel's invariants: no
// panic anywhere in [min, max] queries, Quantile(0)/Quantile(1) hit the
// extremes, results are monotone in q, interpolated values stay within
// [min, max], and both backings answer bit-identically.
func FuzzSampleQuantile(f *testing.F) {
	f.Add(int64(0), int64(0), int64(0), 0.5)
	f.Add(int64(-5), int64(3), int64(3), 0.25)
	f.Add(int64(time.Millisecond), int64(time.Second), int64(time.Minute), 0.99)
	f.Add(int64(math.MaxInt64), int64(math.MinInt64), int64(0), 0.999)
	f.Add(int64(1), int64(2), int64(3), -1.5) // out-of-range q clamps
	f.Add(int64(7), int64(7), int64(7), 2.0)
	f.Fuzz(func(t *testing.T, raw1, raw2, raw3 int64, q float64) {
		values := []time.Duration{time.Duration(raw1), time.Duration(raw2), time.Duration(raw3)}
		s := NewSample(0)
		a := NewArena()
		defer a.Reset()
		as := a.Sample(0)
		for _, v := range values {
			s.Add(v)
			as.Add(v)
		}
		if math.IsNaN(q) {
			q = 0.5
		}
		got := s.Quantile(q)
		if ag := as.Quantile(q); ag != got {
			t.Fatalf("arena quantile %d != heap quantile %d at q=%v", ag, got, q)
		}
		min, max := s.Min(), s.Max()
		if s.Quantile(0) != min || s.Quantile(1) != max {
			t.Fatalf("Quantile(0)=%d want %d; Quantile(1)=%d want %d",
				s.Quantile(0), min, s.Quantile(1), max)
		}
		// Interpolation computes v[lo] + frac*(v[hi]-v[lo]); when the span
		// max-min overflows int64 (only possible with negative durations of
		// cosmic magnitude, which real response times never produce), the
		// ordering invariants don't hold — the contract there is just
		// "no panic", checked by getting this far.
		if uint64(max)-uint64(min) > uint64(math.MaxInt64) {
			return
		}
		if got < min || got > max {
			t.Fatalf("Quantile(%v) = %d outside [%d, %d]", q, got, min, max)
		}
		grid := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
		prev := s.Quantile(0)
		for _, g := range grid[1:] {
			cur := s.Quantile(g)
			if cur < prev {
				t.Fatalf("quantile not monotone in q: q=%v gives %d after %d", g, cur, prev)
			}
			prev = cur
		}
	})
}
