package stats

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"time"
)

// Point is one timestamped observation in virtual time.
type Point struct {
	T time.Duration `json:"t"`
	V float64       `json:"v"`
}

// TimeSeries is an append-mostly series of timestamped values, the raw
// material for every per-figure trace (queue lengths, CPU utilization,
// LLC misses, response times over time).
type TimeSeries struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`

	a   *Arena
	gen uint64
}

// NewTimeSeries returns an empty heap-backed named series.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{Name: name}
}

// Add appends an observation. Out-of-order appends are tolerated; Sort must
// be called before window queries if order is not guaranteed by the caller.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	if ts.a != nil && len(ts.Points) == cap(ts.Points) {
		ts.growPoints(len(ts.Points) + 1)
	}
	ts.Points = append(ts.Points, Point{T: t, V: v})
}

// Reset discards all points in place, keeping the backing storage and the
// name for reuse.
func (ts *TimeSeries) Reset() {
	ts.Points = ts.Points[:0]
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Points) }

// Sort orders points by timestamp (stable, so equal timestamps keep
// insertion order).
func (ts *TimeSeries) Sort() {
	slices.SortStableFunc(ts.Points, func(a, b Point) int { return cmp.Compare(a.T, b.T) })
}

// Window returns the points with T in [from, to).
func (ts *TimeSeries) Window(from, to time.Duration) []Point {
	out := make([]Point, 0)
	for _, p := range ts.Points {
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	return out
}

// Bucket is one resampled window of a time series.
type Bucket struct {
	Start time.Duration `json:"start"`
	Mean  float64       `json:"mean"`
	Max   float64       `json:"max"`
	Min   float64       `json:"min"`
	Count int           `json:"count"`
}

// Resample aggregates the series into fixed-width buckets covering
// [0, horizon). Empty buckets carry Count == 0 and zero aggregates. This is
// the core of the monitoring-granularity experiments (Fig 10): the same
// underlying signal resampled at 50 ms, 1 s, and 1 min.
func (ts *TimeSeries) Resample(width, horizon time.Duration) ([]Bucket, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stats: resample width must be positive, got %v", width)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("stats: resample horizon must be positive, got %v", horizon)
	}
	n := int((horizon + width - 1) / width)
	buckets := make([]Bucket, n)
	sums := make([]float64, n)
	for i := range buckets {
		buckets[i].Start = time.Duration(i) * width
		buckets[i].Min = math.Inf(1)
		buckets[i].Max = math.Inf(-1)
	}
	for _, p := range ts.Points {
		if p.T < 0 || p.T >= horizon {
			continue
		}
		i := int(p.T / width)
		b := &buckets[i]
		b.Count++
		sums[i] += p.V
		if p.V > b.Max {
			b.Max = p.V
		}
		if p.V < b.Min {
			b.Min = p.V
		}
	}
	for i := range buckets {
		if buckets[i].Count == 0 {
			buckets[i].Min, buckets[i].Max = 0, 0
			continue
		}
		buckets[i].Mean = sums[i] / float64(buckets[i].Count)
	}
	return buckets, nil
}

// MaxValue returns the largest value in the series, or 0 when empty.
func (ts *TimeSeries) MaxValue() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	max := ts.Points[0].V
	for _, p := range ts.Points[1:] {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// MeanValue returns the unweighted mean of the series values, or 0 when
// empty.
func (ts *TimeSeries) MeanValue() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range ts.Points {
		sum += p.V
	}
	return sum / float64(len(ts.Points))
}

// BusyIntegrator accumulates busy time of a binary (busy/idle) resource and
// reports utilization over arbitrary windows. It is how the simulator turns
// "server busy from t1 to t2" into the CPU-utilization signals the paper's
// monitors sample.
type BusyIntegrator struct {
	transitions []Point // V is 1 for busy-start, 0 for busy-end
	busy        bool
	lastChange  time.Duration
	busyAccum   time.Duration
}

// NewBusyIntegrator returns an integrator that is idle at time zero.
func NewBusyIntegrator() *BusyIntegrator {
	return &BusyIntegrator{}
}

// SetBusy records a busy/idle transition at time t. Transitions must be fed
// in non-decreasing time order; duplicate states are ignored.
func (b *BusyIntegrator) SetBusy(t time.Duration, busy bool) {
	if busy == b.busy {
		return
	}
	if b.busy {
		b.busyAccum += t - b.lastChange
	}
	b.busy = busy
	b.lastChange = t
	v := 0.0
	if busy {
		v = 1.0
	}
	b.transitions = append(b.transitions, Point{T: t, V: v})
}

// TotalBusy returns the accumulated busy time up to time t.
func (b *BusyIntegrator) TotalBusy(t time.Duration) time.Duration {
	total := b.busyAccum
	if b.busy && t > b.lastChange {
		total += t - b.lastChange
	}
	return total
}

// Utilization returns the busy fraction of the window [from, to). It walks
// the transition log, so it is exact for any window regardless of how the
// monitors later sample it.
func (b *BusyIntegrator) Utilization(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	busy := time.Duration(0)
	state := false
	stateSince := time.Duration(0)
	for _, tr := range b.transitions {
		if tr.T >= to {
			break
		}
		newState := tr.V > 0.5
		if state && tr.T > from {
			start := stateSince
			if start < from {
				start = from
			}
			busy += tr.T - start
		}
		state = newState
		stateSince = tr.T
	}
	if state {
		start := stateSince
		if start < from {
			start = from
		}
		if to > start {
			busy += to - start
		}
	}
	return float64(busy) / float64(to-from)
}

// UtilizationSeries samples utilization in fixed windows of the given width
// over [0, horizon), producing the signal a monitor of that granularity
// would report.
func (b *BusyIntegrator) UtilizationSeries(width, horizon time.Duration) ([]Bucket, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stats: utilization window must be positive, got %v", width)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("stats: utilization horizon must be positive, got %v", horizon)
	}
	n := int((horizon + width - 1) / width)
	out := make([]Bucket, 0, n)
	for i := 0; i < n; i++ {
		from := time.Duration(i) * width
		to := from + width
		if to > horizon {
			to = horizon
		}
		u := b.Utilization(from, to)
		out = append(out, Bucket{Start: from, Mean: u, Max: u, Min: u, Count: 1})
	}
	return out, nil
}
