package stats

import (
	"testing"
	"time"
)

// statsPass is one simulated run's worth of stats work against a single
// arena: check out every kernel type, record past the initial capacity
// hints (forcing the slab trade-up path), query, and recycle. After
// warm-up this must not touch the heap at all.
func statsPass(a *Arena) {
	defer a.Reset()
	s := a.Sample(1024)
	h := a.LatencyHistogram()
	li := a.LevelIntegrator()
	ts := a.TimeSeries("alloc-probe")
	for i := 0; i < 4096; i++ {
		d := time.Duration(i%977) * time.Millisecond
		s.Add(d)
		h.Add(d)
		li.Set(time.Duration(i)*time.Millisecond, float64(i%3))
		ts.Add(time.Duration(i)*time.Millisecond, float64(i%7))
	}
	_ = s.Quantile(0.99) // radix path: n >= radixMinLen
	_ = s.Mean()
	_ = s.Max()
	_ = h.Quantile(0.99)
	_ = li.Integral(4096 * time.Millisecond)
}

// TestArenaStatsPathZeroAllocs is the gated allocation contract behind the
// tentpole: after warm-up, a full checkout → record → sort/query → Reset
// cycle performs zero heap allocations, so a figure run's stats path costs
// nothing in steady state. The contract mirrors the telemetry tracer's
// zero-alloc submit test; the regression gate lives in
// BenchmarkStatsRecord via bench/baseline.json.
func TestArenaStatsPathZeroAllocs(t *testing.T) {
	a := NewArena()
	// Warm the slab classes, the object shells, and the free-list spines.
	for i := 0; i < 8; i++ {
		statsPass(a)
	}
	if allocs := testing.AllocsPerRun(100, func() { statsPass(a) }); allocs != 0 {
		t.Errorf("stats pass allocated %.1f objects per run after warm-up, want 0", allocs)
	}
	if st := a.Stats(); st.Spills != 0 {
		t.Errorf("stats pass spilled %d slabs past the default budget", st.Spills)
	}
}

// TestArenaBudgetSpillAccounting pins the horizon cap: growth past the
// byte budget still succeeds (results stay exact) but is booked as spills
// with the overrun bytes, and pooled storage is re-counted only once.
func TestArenaBudgetSpillAccounting(t *testing.T) {
	a := NewArena()
	a.SetBudgetBytes(8 << 10) // one minimum slab (1024 durations × 8 bytes) fits exactly
	s := a.Sample(1024)
	if st := a.Stats(); st.Spills != 0 {
		t.Fatalf("first in-budget slab counted as spill: %+v", st)
	}
	for i := 0; i < 2048; i++ { // grow past the budgeted slab
		s.Add(time.Duration(i))
	}
	st := a.Stats()
	if st.Spills == 0 || st.SpillBytes == 0 {
		t.Fatalf("over-budget growth not recorded as spill: %+v", st)
	}
	if st.OwnedBytes <= st.BudgetBytes {
		t.Fatalf("owned bytes %d not past budget %d despite spill", st.OwnedBytes, st.BudgetBytes)
	}
	if got, want := s.Len(), 2048; got != want {
		t.Fatalf("spilled sample lost observations: len %d, want %d", got, want)
	}
	spillsBefore := st.Spills
	a.Reset()
	s = a.Sample(1024)
	for i := 0; i < 2048; i++ {
		s.Add(time.Duration(i))
	}
	if st := a.Stats(); st.Spills != spillsBefore {
		t.Fatalf("recycled slabs re-counted as spills: %d -> %d", spillsBefore, st.Spills)
	}
}
