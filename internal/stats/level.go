package stats

import (
	"fmt"
	"sort"
	"time"
)

// LevelIntegrator tracks a piecewise-constant integer level over time (e.g.
// busy server stations, queue occupancy) and integrates it exactly. It
// generalizes BusyIntegrator to levels above 1.
type LevelIntegrator struct {
	transitions []Point
	level       float64
	lastChange  time.Duration
	integral    float64 // level-seconds

	a   *Arena
	gen uint64
}

// NewLevelIntegrator returns a heap-backed integrator at level 0 at time 0.
func NewLevelIntegrator() *LevelIntegrator {
	return &LevelIntegrator{}
}

// Set records the level at time t. Times must be non-decreasing; setting
// the same level again is a no-op.
//
//memca:hotpath
func (li *LevelIntegrator) Set(t time.Duration, level float64) {
	if ApproxEqual(level, li.level) {
		return
	}
	li.integral += li.level * (t - li.lastChange).Seconds()
	li.level = level
	li.lastChange = t
	if li.a != nil && len(li.transitions) == cap(li.transitions) {
		li.growTransitions(len(li.transitions) + 1)
	}
	li.transitions = append(li.transitions, Point{T: t, V: level})
}

// Add shifts the level by delta at time t.
//
//memca:hotpath
func (li *LevelIntegrator) Add(t time.Duration, delta float64) {
	li.Set(t, li.level+delta)
}

// Level returns the current level.
func (li *LevelIntegrator) Level() float64 { return li.level }

// Integral returns the accumulated level-seconds up to time t.
func (li *LevelIntegrator) Integral(t time.Duration) float64 {
	total := li.integral
	if t > li.lastChange {
		total += li.level * (t - li.lastChange).Seconds()
	}
	return total
}

// WindowAverage returns the time-weighted mean level over [from, to). It
// binary-searches for the window start, so periodic utilization sampling
// stays cheap no matter how long the transition history has grown.
func (li *LevelIntegrator) WindowAverage(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	// First transition strictly inside the window; the level in force at
	// `from` is the one set by the transition before it (0 if none).
	idx := sort.Search(len(li.transitions), func(i int) bool {
		return li.transitions[i].T > from
	})
	level := 0.0
	if idx > 0 {
		level = li.transitions[idx-1].V
	}
	var acc float64
	since := from
	for _, tr := range li.transitions[idx:] {
		if tr.T >= to {
			break
		}
		acc += level * (tr.T - since).Seconds()
		level = tr.V
		since = tr.T
	}
	if to > since {
		acc += level * (to - since).Seconds()
	}
	return acc / (to - from).Seconds()
}

// AverageSeries resamples the window-averaged level into fixed-width
// buckets over [0, horizon).
func (li *LevelIntegrator) AverageSeries(width, horizon time.Duration) ([]Bucket, error) {
	if width <= 0 {
		return nil, fmt.Errorf("stats: level window must be positive, got %v", width)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("stats: level horizon must be positive, got %v", horizon)
	}
	n := int((horizon + width - 1) / width)
	out := make([]Bucket, 0, n)
	for i := 0; i < n; i++ {
		from := time.Duration(i) * width
		to := from + width
		if to > horizon {
			to = horizon
		}
		v := li.WindowAverage(from, to)
		out = append(out, Bucket{Start: from, Mean: v, Max: v, Min: v, Count: 1})
	}
	return out, nil
}

// Transitions returns the recorded level changes. The slice is shared;
// callers must not modify it.
func (li *LevelIntegrator) Transitions() []Point { return li.transitions }

// MaxLevel returns the highest level ever set (0 if never changed).
func (li *LevelIntegrator) MaxLevel() float64 {
	max := 0.0
	for _, tr := range li.transitions {
		if tr.V > max {
			max = tr.V
		}
	}
	return max
}
