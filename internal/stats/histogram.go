package stats

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a log-spaced latency histogram: bucket i covers
// [base*growth^i, base*growth^(i+1)). Log spacing keeps relative error
// bounded across the microsecond-to-multi-second range that tail
// amplification spans.
type Histogram struct {
	base    float64 // seconds, lower bound of bucket 0
	growth  float64
	counts  []uint64
	under   uint64 // observations below base
	total   uint64
	sumSecs float64
}

// NewHistogram returns a histogram starting at base with the given bucket
// growth factor and bucket count.
func NewHistogram(base time.Duration, growth float64, buckets int) (*Histogram, error) {
	if base <= 0 {
		return nil, fmt.Errorf("stats: histogram base must be positive, got %v", base)
	}
	if growth <= 1 {
		return nil, fmt.Errorf("stats: histogram growth must exceed 1, got %v", growth)
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket, got %d", buckets)
	}
	return &Histogram{base: base.Seconds(), growth: growth, counts: make([]uint64, buckets)}, nil
}

// NewLatencyHistogram returns a histogram tuned for response times: 100 µs
// base, 10% growth, covering past 100 s.
func NewLatencyHistogram() *Histogram {
	h, err := NewHistogram(100*time.Microsecond, 1.1, 150)
	if err != nil {
		// The fixed arguments above are valid; reaching here is a bug.
		panic(err)
	}
	return h
}

// Add records one observation.
//
//memca:hotpath
func (h *Histogram) Add(v time.Duration) {
	h.total++
	h.sumSecs += v.Seconds()
	i := h.BucketIndex(v)
	if i < 0 {
		h.under++
		return
	}
	h.counts[i]++
}

// BucketIndex returns the bucket an observation of v falls into, or -1
// when v is below the histogram's base (the underflow counter).
//
//memca:hotpath
func (h *Histogram) BucketIndex(v time.Duration) int {
	s := v.Seconds()
	if s < h.base {
		return -1
	}
	i := int(math.Log(s/h.base) / math.Log(h.growth))
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	if i < 0 {
		// Guard the float path: s >= base implies log >= 0, but keep the
		// clamp explicit for rounding at the boundary.
		i = 0
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// BucketCount returns the number of observations recorded in bucket i.
func (h *Histogram) BucketCount(i int) uint64 { return h.counts[i] }

// Under returns the number of observations below the histogram's base.
func (h *Histogram) Under() uint64 { return h.under }

// Mean returns the exact mean of all observations (tracked outside the
// buckets, so it has no quantization error).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sumSecs / float64(h.total) * float64(time.Second))
}

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi time.Duration) {
	loS := h.base * math.Pow(h.growth, float64(i))
	hiS := loS * h.growth
	return time.Duration(loS * float64(time.Second)), time.Duration(hiS * float64(time.Second))
}

// Quantile estimates the q-quantile from the buckets, interpolating within
// the chosen bucket. Accuracy is bounded by the growth factor.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	cum := float64(h.under)
	if cum >= target && h.under > 0 {
		return time.Duration(h.base * float64(time.Second))
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := h.BucketBounds(i)
			frac := 0.5
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	lo, _ := h.BucketBounds(len(h.counts) - 1)
	return lo
}
