package stats

import "math"

// Running tracks mean and variance online using Welford's algorithm.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Count returns the number of observations.
func (r *Running) Count() int { return r.n }

// Mean returns the running mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the sample variance (n-1 denominator), or 0 with fewer
// than two observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 with none.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation, or 0 with none.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// EWMA is an exponentially weighted moving average, one of the smoothing
// primitives behind the interference detectors.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent observations more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Add feeds one observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.primed {
		e.value = x
		e.primed = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one observation has been fed.
func (e *EWMA) Primed() bool { return e.primed }

// CUSUM is a one-sided cumulative-sum change detector: it alarms when the
// positive drift of (x - target - slack) exceeds the decision threshold.
// Used by the monitor package to model a sensitive provider-side detector.
type CUSUM struct {
	target    float64
	slack     float64
	threshold float64
	sum       float64
	alarms    int
}

// NewCUSUM returns a detector around the given target level. slack (k)
// absorbs benign drift; threshold (h) sets the alarm level.
func NewCUSUM(target, slack, threshold float64) *CUSUM {
	return &CUSUM{target: target, slack: slack, threshold: threshold}
}

// Add feeds one observation and reports whether the detector alarms on it.
// After an alarm the statistic resets, modelling a re-armed detector.
func (c *CUSUM) Add(x float64) bool {
	c.sum += x - c.target - c.slack
	if c.sum < 0 {
		c.sum = 0
	}
	if c.sum > c.threshold {
		c.alarms++
		c.sum = 0
		return true
	}
	return false
}

// Sum returns the current cumulative statistic.
func (c *CUSUM) Sum() float64 { return c.sum }

// Alarms returns how many times the detector has fired.
func (c *CUSUM) Alarms() int { return c.alarms }
