package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile is the P-square (P²) streaming quantile estimator of Jain &
// Chlamtac (1985). It tracks one quantile in O(1) space, which is what the
// MemCA backend prober uses to follow the target system's percentile
// response time online without retaining every probe.
type P2Quantile struct {
	q       float64    // target quantile in (0, 1)
	n       int        // observations seen
	heights [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	desired [5]float64 // desired marker positions
	incr    [5]float64 // desired position increments
	initial []float64  // first five observations before steady state
}

// NewP2Quantile returns an estimator for quantile q in (0, 1).
func NewP2Quantile(q float64) (*P2Quantile, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("stats: P2 quantile must be in (0,1), got %v", q)
	}
	p := &P2Quantile{q: q, initial: make([]float64, 0, 5)}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p, nil
}

// Add feeds one observation.
func (p *P2Quantile) Add(x float64) {
	p.n++
	if len(p.initial) < 5 {
		p.initial = append(p.initial, x)
		if len(p.initial) == 5 {
			sort.Float64s(p.initial)
			for i := 0; i < 5; i++ {
				p.heights[i] = p.initial[i]
				p.pos[i] = float64(i + 1)
			}
			p.desired = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
		}
		return
	}

	// Find cell k such that heights[k] <= x < heights[k+1].
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for i := 1; i < 5; i++ {
			if x < p.heights[i] {
				k = i - 1
				break
			}
		}
	}

	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.desired[i] += p.incr[i]
	}

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2Quantile) linear(i int, d float64) float64 {
	di := int(d)
	return p.heights[i] + d*(p.heights[i+di]-p.heights[i])/(p.pos[i+di]-p.pos[i])
}

// Count returns the number of observations fed so far.
func (p *P2Quantile) Count() int { return p.n }

// Value returns the current quantile estimate. Before five observations it
// falls back to the exact quantile of what has been seen; with no
// observations it returns 0.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if len(p.initial) < 5 {
		cp := make([]float64, len(p.initial))
		copy(cp, p.initial)
		sort.Float64s(cp)
		idx := int(p.q * float64(len(cp)))
		if idx >= len(cp) {
			idx = len(cp) - 1
		}
		return cp[idx]
	}
	return p.heights[2]
}
