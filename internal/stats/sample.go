// Package stats provides the statistics kernels used throughout the MemCA
// reproduction: exact and streaming percentiles, histograms, windowed time
// series, running moments, and the EWMA/CUSUM primitives that back the
// interference detectors.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample collects duration observations and answers exact quantile queries.
// Observations are kept in insertion order; queries sort lazily into a
// separate scratch slab, which is reused (and only re-filled after new
// Adds), so a query burst like Summarize sorts once.
//
// Samples come either from NewSample (heap-backed, grows via append) or
// from an Arena (slab-backed, grows by trading up through the arena's size
// classes and is invalidated by Arena.Reset).
type Sample struct {
	values []time.Duration
	// sorted caches an ascending copy of values; it is valid iff
	// sortedN == len(values).
	sorted  []time.Duration
	sortedN int

	a   *Arena
	gen uint64
}

// NewSample returns an empty heap-backed sample with the given capacity
// hint.
func NewSample(capacity int) *Sample {
	if capacity < 0 {
		capacity = 0
	}
	return &Sample{values: make([]time.Duration, 0, capacity)}
}

// Add records one observation.
//
//memca:hotpath
func (s *Sample) Add(v time.Duration) {
	if s.a != nil && len(s.values) == cap(s.values) {
		s.growValues(len(s.values) + 1)
	}
	s.values = append(s.values, v)
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.values) }

// Reset discards all observations in place, keeping the backing storage
// for reuse (e.g. after a warm-up phase).
func (s *Sample) Reset() {
	s.values = s.values[:0]
	s.sortedN = 0
}

// Values returns a copy of the raw observations in insertion order,
// regardless of any quantile queries in between. Use SortedValues for
// ascending order.
func (s *Sample) Values() []time.Duration {
	cp := make([]time.Duration, len(s.values))
	copy(cp, s.values)
	return cp
}

// SortedValues returns a copy of the observations in ascending order.
func (s *Sample) SortedValues() []time.Duration {
	cp := make([]time.Duration, len(s.values))
	copy(cp, s.sortedView())
	return cp
}

// sortedView returns the observations in ascending order, re-sorting the
// scratch slab only when observations arrived since the last query.
func (s *Sample) sortedView() []time.Duration {
	n := len(s.values)
	if s.sortedN == n {
		return s.sorted[:n]
	}
	if cap(s.sorted) < n {
		if s.a != nil {
			s.a.check(s.gen)
			s.a.putDur(s.sorted)
			s.sorted = s.a.getDur(n)
		} else {
			s.sorted = make([]time.Duration, 0, cap(s.values))
		}
	}
	s.sorted = s.sorted[:n]
	copy(s.sorted, s.values)
	if s.a != nil {
		sortDurations(s.sorted, s.a.sortScratch(n))
	} else {
		sortDurations(s.sorted, nil)
	}
	s.sortedN = n
	return s.sorted
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation
// between order statistics. An empty sample yields 0.
func (s *Sample) Quantile(q float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	v := s.sortedView()
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo] + time.Duration(frac*float64(v[hi]-v[lo]))
}

// Percentile returns the p-th percentile, p in [0, 100].
func (s *Sample) Percentile(p float64) time.Duration { return s.Quantile(p / 100) }

// Mean returns the arithmetic mean, or 0 for an empty sample. The sum
// runs in insertion order.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(s.values)))
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	v := s.sortedView()
	return v[len(v)-1]
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	return s.sortedView()[0]
}

// CountAbove returns how many observations strictly exceed threshold.
func (s *Sample) CountAbove(threshold time.Duration) int {
	v := s.sortedView()
	// first index with value > threshold
	idx := sort.Search(len(v), func(i int) bool { return v[i] > threshold })
	return len(v) - idx
}

// FractionAbove returns the fraction of observations strictly above
// threshold, or 0 for an empty sample.
func (s *Sample) FractionAbove(threshold time.Duration) float64 {
	if len(s.values) == 0 {
		return 0
	}
	return float64(s.CountAbove(threshold)) / float64(len(s.values))
}

// PercentileCurve evaluates the sample at each requested percentile. It is
// the shape used by the paper's Figure 2 and Figure 7 plots.
func (s *Sample) PercentileCurve(percentiles []float64) []time.Duration {
	out := make([]time.Duration, len(percentiles))
	for i, p := range percentiles {
		out[i] = s.Percentile(p)
	}
	return out
}

// Summary is a compact description of a distribution of response times.
type Summary struct {
	Count int           `json:"count"`
	Mean  time.Duration `json:"mean"`
	Min   time.Duration `json:"min"`
	P50   time.Duration `json:"p50"`
	P90   time.Duration `json:"p90"`
	P95   time.Duration `json:"p95"`
	P98   time.Duration `json:"p98"`
	P99   time.Duration `json:"p99"`
	P999  time.Duration `json:"p999"`
	Max   time.Duration `json:"max"`
}

// Summarize computes the standard summary used across the experiments.
func (s *Sample) Summarize() Summary {
	return Summary{
		Count: s.Len(),
		Mean:  s.Mean(),
		Min:   s.Min(),
		P50:   s.Percentile(50),
		P90:   s.Percentile(90),
		P95:   s.Percentile(95),
		P98:   s.Percentile(98),
		P99:   s.Percentile(99),
		P999:  s.Percentile(99.9),
		Max:   s.Max(),
	}
}

// String renders the summary as a single readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p95=%v p98=%v p99=%v max=%v",
		s.Count, s.Mean.Round(time.Millisecond), s.P50.Round(time.Millisecond),
		s.P90.Round(time.Millisecond), s.P95.Round(time.Millisecond),
		s.P98.Round(time.Millisecond), s.P99.Round(time.Millisecond),
		s.Max.Round(time.Millisecond))
}
