package stats

import (
	"context"
	"math"
	"math/rand"
	"slices"
	"testing"
	"time"

	"memca/internal/sweep"
)

// naiveQuantile is the reference implementation the arena-backed kernels
// are checked against: copy, comparison-sort, index with the same linear
// interpolation as Sample.Quantile — but sharing none of the production
// sort or slab code.
func naiveQuantile(values []time.Duration, q float64) time.Duration {
	if len(values) == 0 {
		return 0
	}
	v := make([]time.Duration, len(values))
	copy(v, values)
	slices.Sort(v)
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return v[lo]
	}
	frac := pos - float64(lo)
	return v[lo] + time.Duration(frac*float64(v[hi]-v[lo]))
}

func naiveMean(values []time.Duration) time.Duration {
	if len(values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(values)))
}

// randomDurations draws n durations spanning the magnitudes tail
// amplification produces — sub-millisecond service times up to multi-second
// stalls — plus the hostile cases: zeros, duplicates, negatives, and
// near-extreme values that stress the radix sort's sign handling.
func randomDurations(rng *rand.Rand, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = time.Duration(rng.Int63n(1000)) // duplicate-heavy
		case 2:
			out[i] = -time.Duration(rng.Int63n(int64(time.Second)))
		case 3:
			out[i] = time.Duration(math.MaxInt64 - rng.Int63n(1<<20))
		case 4:
			out[i] = time.Duration(math.MinInt64 + rng.Int63n(1<<20))
		default:
			out[i] = time.Duration(rng.Int63n(int64(10 * time.Second)))
		}
	}
	return out
}

var quantileGrid = []float64{0, 0.5, 0.9, 0.99, 0.999, 1}

// checkSampleMatchesReference asserts that a sample loaded with values
// answers exactly like the naive reference, bit for bit.
func checkSampleMatchesReference(t *testing.T, s *Sample, values []time.Duration) {
	t.Helper()
	for _, v := range values {
		s.Add(v)
	}
	for _, q := range quantileGrid {
		if got, want := s.Quantile(q), naiveQuantile(values, q); got != want {
			t.Fatalf("n=%d q=%v: got %d, reference %d", len(values), q, got, want)
		}
	}
	if got, want := s.Mean(), naiveMean(values); got != want {
		t.Fatalf("n=%d mean: got %d, reference %d", len(values), got, want)
	}
	var wantMax, wantMin time.Duration
	if len(values) > 0 {
		wantMax = slices.Max(values)
		wantMin = slices.Min(values)
	}
	if got := s.Max(); got != wantMax {
		t.Fatalf("n=%d max: got %d, reference %d", len(values), got, wantMax)
	}
	if got := s.Min(); got != wantMin {
		t.Fatalf("n=%d min: got %d, reference %d", len(values), got, wantMin)
	}
}

// TestArenaSampleMatchesNaiveReference is the tentpole equivalence
// property: arena-backed and heap-backed samples agree bit-identically
// with an independent sort-and-index reference across the quantile grid
// and the length edge cases (empty, singleton, pair, odd, even, and a
// stream large enough to take the radix path several slab classes up).
func TestArenaSampleMatchesNaiveReference(t *testing.T) {
	const baseSeed = 7
	lengths := []int{0, 1, 2, 101, 1000, 100000}
	a := NewArena()
	for i, n := range lengths {
		rng := rand.New(rand.NewSource(sweep.DeriveSeed(baseSeed, i)))
		values := randomDurations(rng, n)
		checkSampleMatchesReference(t, a.Sample(16), values)
		checkSampleMatchesReference(t, NewSample(16), values)
		a.Reset()
	}
}

// TestArenaSampleReuseAfterReset recycles one arena across generations and
// checks that recycled samples answer from their own observations only: no
// slab aliasing between the samples of one generation, and nothing
// surviving from the previous generation.
func TestArenaSampleReuseAfterReset(t *testing.T) {
	const baseSeed = 11
	a := NewArena()
	for gen := 0; gen < 5; gen++ {
		rngA := rand.New(rand.NewSource(sweep.DeriveSeed(baseSeed, 2*gen)))
		rngB := rand.New(rand.NewSource(sweep.DeriveSeed(baseSeed, 2*gen+1)))
		valuesA := randomDurations(rngA, 5000+gen)
		valuesB := randomDurations(rngB, 300)

		sa, sb := a.Sample(64), a.Sample(64)
		for _, v := range valuesA {
			sa.Add(v)
		}
		for _, v := range valuesB {
			sb.Add(v)
		}
		// Interleave queries so both samples' sorted slabs are live at once.
		for _, q := range quantileGrid {
			if got, want := sa.Quantile(q), naiveQuantile(valuesA, q); got != want {
				t.Fatalf("gen %d sample A q=%v: got %d, want %d", gen, q, got, want)
			}
			if got, want := sb.Quantile(q), naiveQuantile(valuesB, q); got != want {
				t.Fatalf("gen %d sample B q=%v: got %d, want %d", gen, q, got, want)
			}
		}
		if !slices.Equal(sa.Values(), valuesA) || !slices.Equal(sb.Values(), valuesB) {
			t.Fatalf("gen %d: recycled samples do not hold their own observations", gen)
		}
		a.Reset()
	}
	if st := a.Stats(); st.Live != 0 || st.Resets != 5 {
		t.Fatalf("after reuse loop: Live=%d Resets=%d, want 0 and 5", st.Live, st.Resets)
	}
}

// TestArenaStaleHandlePanics pins the ownership rule: recording into a
// sample from a previous arena generation must panic, not silently alias a
// recycled slab.
func TestArenaStaleHandlePanics(t *testing.T) {
	a := NewArena()
	s := a.Sample(4)
	s.Add(time.Millisecond)
	a.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("Add on a stale arena-backed sample did not panic")
		}
	}()
	s.Add(time.Millisecond)
}

// TestSortDurationsMatchesSlicesSort checks the radix sort against the
// standard library across adversarial shapes: random with negatives and
// extremes, all-equal (every pass skipped), already sorted, reversed, and
// lengths straddling the radixMinLen fallback.
func TestSortDurationsMatchesSlicesSort(t *testing.T) {
	const baseSeed = 23
	lengths := []int{0, 1, 2, radixMinLen - 1, radixMinLen, radixMinLen + 1, 1000, 65536}
	scratch := make([]time.Duration, 65536)
	for i, n := range lengths {
		rng := rand.New(rand.NewSource(sweep.DeriveSeed(baseSeed, i)))
		cases := [][]time.Duration{randomDurations(rng, n)}
		if n > 0 {
			constant := make([]time.Duration, n)
			for j := range constant {
				constant[j] = -42 * time.Millisecond
			}
			sorted := randomDurations(rng, n)
			slices.Sort(sorted)
			reversed := slices.Clone(sorted)
			slices.Reverse(reversed)
			cases = append(cases, constant, sorted, reversed)
		}
		for ci, values := range cases {
			want := slices.Clone(values)
			slices.Sort(want)

			got := slices.Clone(values)
			sortDurations(got, scratch)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d case=%d: radix path diverges from slices.Sort", n, ci)
			}
			got = slices.Clone(values)
			sortDurations(got, nil) // comparison fallback
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d case=%d: fallback path diverges from slices.Sort", n, ci)
			}
		}
	}
}

// TestSampleValuesInsertionOrderAfterQueries is the regression test for
// the Values contract used by the CSV writers: query the sample (which
// sorts internally), then export — the export must still be in insertion
// order, with SortedValues as the explicit ascending accessor, and neither
// returned slice may alias sample-internal storage.
func TestSampleValuesInsertionOrderAfterQueries(t *testing.T) {
	inserted := []time.Duration{
		5 * time.Second, time.Millisecond, 3 * time.Second,
		-time.Microsecond, 4 * time.Second, time.Millisecond,
	}
	a := NewArena()
	defer a.Reset()
	for name, s := range map[string]*Sample{"heap": NewSample(0), "arena": a.Sample(0)} {
		for _, v := range inserted {
			s.Add(v)
		}
		// The writers query percentiles first, then export raw values.
		_ = s.Quantile(0.99)
		_ = s.Summarize()
		if got := s.Values(); !slices.Equal(got, inserted) {
			t.Fatalf("%s: Values after queries = %v, want insertion order %v", name, got, inserted)
		}
		wantSorted := slices.Clone(inserted)
		slices.Sort(wantSorted)
		if got := s.SortedValues(); !slices.Equal(got, wantSorted) {
			t.Fatalf("%s: SortedValues = %v, want %v", name, got, wantSorted)
		}
		// Both accessors return copies: mutating them must not corrupt the
		// sample.
		s.Values()[0] = 0
		s.SortedValues()[0] = 0
		if got := s.Values(); !slices.Equal(got, inserted) {
			t.Fatalf("%s: Values aliases sample storage", name)
		}
	}
}

// TestArenaWorkerCountEquivalence runs the same arena-backed quantile jobs
// through sweep.RunState at workers 1, 4, and 8 and demands identical
// results — the per-worker arena contract of the figure drivers in
// miniature.
func TestArenaWorkerCountEquivalence(t *testing.T) {
	const jobs = 32
	run := func(workers int) []time.Duration {
		t.Helper()
		res, err := sweep.RunState(t.Context(), sweep.Options{Workers: workers}, jobs,
			GetArena, PutArena,
			func(_ context.Context, a *Arena, i int) (time.Duration, error) {
				defer a.Reset()
				rng := rand.New(rand.NewSource(sweep.DeriveSeed(97, i)))
				s := a.Sample(256)
				for _, v := range randomDurations(rng, 2000+i) {
					s.Add(v)
				}
				return s.Quantile(0.99), nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	for _, w := range []int{4, 8} {
		if got := run(w); !slices.Equal(got, base) {
			t.Fatalf("workers=%d results diverge from serial", w)
		}
	}
}
