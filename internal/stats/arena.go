package stats

import (
	"fmt"
	"math/bits"
	"sync"
	"time"
)

// Arena owns the slab storage behind the Samples, LevelIntegrators,
// TimeSeries, and Histograms of one experiment run, so that repeated runs
// (benchmark iterations, sweep jobs on the same worker) recycle storage
// instead of re-allocating it. It mirrors the queueing package's request
// pools: checkout via the constructor methods, recycle everything at once
// via Reset.
//
// Ownership rules:
//
//   - An arena is single-goroutine, like the simulation engine it feeds.
//     Distinct workers use distinct arenas (see sweep.RunState); the
//     process-wide pool behind GetArena/PutArena is the only synchronized
//     path.
//   - Reset invalidates every object checked out since the previous Reset.
//     Stale handles keep nil backing storage, so the first recording on
//     one panics (in the grow path) instead of silently aliasing a slab
//     that has been handed to a new object.
//   - Results that outlive the run (reports, summaries, percentile
//     curves) must be copied out of arena-backed objects before Reset;
//     the exported query methods already return heap copies.
//
// Growth is horizon-capped by a byte budget rather than unbounded: slabs
// come from power-of-two size classes, and any fresh allocation that
// pushes the arena past its budget is recorded as a spill (count and
// bytes) while still succeeding, so results stay exact and the overrun is
// observable instead of silent.
type Arena struct {
	gen    uint64
	resets uint64

	budgetBytes int64
	ownedBytes  int64
	spills      int64
	spillBytes  int64

	durFree [slabClasses][][]time.Duration
	ptFree  [slabClasses][][]Point
	u64Free [slabClasses][][]uint64

	// Live checked-out objects, harvested at Reset.
	samples []*Sample
	levels  []*LevelIntegrator
	series  []*TimeSeries
	hists   []*Histogram
	slabs   [][]time.Duration

	// Recycled object shells awaiting re-checkout.
	freeSamples []*Sample
	freeLevels  []*LevelIntegrator
	freeSeries  []*TimeSeries
	freeHists   []*Histogram

	// scratch is the shared radix-sort ping-pong buffer (see
	// sortDurations); every sample of the arena reuses it, which is safe
	// because the arena is single-goroutine and the buffer is dead
	// between sorts.
	scratch []time.Duration
}

// DefaultArenaBudget is the slab budget of arenas built by NewArena:
// large enough that full-scale figure runs stay spill-free, small enough
// that a runaway recording loop shows up in ArenaStats.
const DefaultArenaBudget = 256 << 20

const (
	// minClassBits is the smallest slab class (1024 elements), matching
	// the sample capacity hints used across the simulator.
	minClassBits = 10
	// maxClassBits bounds the pooled classes; larger requests are served
	// exactly and returned to the garbage collector on Reset.
	maxClassBits = 30
	slabClasses  = maxClassBits + 1
)

// slabClass returns the size-class exponent for a slab of at least minCap
// elements, or -1 when the request exceeds the largest pooled class.
func slabClass(minCap int) int {
	if minCap <= 1<<minClassBits {
		return minClassBits
	}
	b := bits.Len(uint(minCap - 1))
	if b > maxClassBits {
		return -1
	}
	return b
}

// NewArena returns an empty arena with the default byte budget.
func NewArena() *Arena {
	return &Arena{budgetBytes: DefaultArenaBudget}
}

// SetBudgetBytes caps the arena's owned slab bytes at n; growth past the
// cap still succeeds but is counted as a spill. Non-positive disables the
// cap.
func (a *Arena) SetBudgetBytes(n int64) { a.budgetBytes = n }

// ArenaStats describes an arena's storage accounting.
type ArenaStats struct {
	// OwnedBytes is the total slab storage the arena has allocated and
	// still owns (live or pooled).
	OwnedBytes int64
	// BudgetBytes is the configured cap (0 = uncapped).
	BudgetBytes int64
	// Spills counts fresh allocations made while past the budget.
	Spills int64
	// SpillBytes is the storage those allocations added.
	SpillBytes int64
	// Live is the number of currently checked-out objects.
	Live int
	// Resets counts Reset calls over the arena's lifetime.
	Resets uint64
}

// Stats returns the arena's current storage accounting.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		OwnedBytes:  a.ownedBytes,
		BudgetBytes: a.budgetBytes,
		Spills:      a.spills,
		SpillBytes:  a.spillBytes,
		Live:        len(a.samples) + len(a.levels) + len(a.series) + len(a.hists) + len(a.slabs),
		Resets:      a.resets,
	}
}

// account books n fresh slab bytes, recording a spill past the budget.
func (a *Arena) account(n int64) {
	a.ownedBytes += n
	if a.budgetBytes > 0 && a.ownedBytes > a.budgetBytes {
		a.spills++
		a.spillBytes += n
	}
}

// check panics when a handle from a previous arena generation is used;
// the slab it pointed at has been recycled.
func (a *Arena) check(gen uint64) {
	if gen != a.gen {
		panic("stats: arena-backed object used after Arena.Reset")
	}
}

// slabGet pops a pooled slab of at least minCap elements, or allocates a
// fresh one (accounting its bytes). The result has length 0.
func slabGet[T any](a *Arena, free *[slabClasses][][]T, minCap int, elemBytes int64) []T {
	b := slabClass(minCap)
	if b < 0 {
		a.account(int64(minCap) * elemBytes)
		return make([]T, 0, minCap)
	}
	if k := len(free[b]); k > 0 {
		sl := free[b][k-1]
		free[b][k-1] = nil
		free[b] = free[b][:k-1]
		return sl[:0]
	}
	a.account((int64(1) << b) * elemBytes)
	return make([]T, 0, 1<<b)
}

// slabPut returns a slab to its class free list. Slabs outside the pooled
// classes are released to the garbage collector and their bytes
// un-accounted.
func slabPut[T any](a *Arena, free *[slabClasses][][]T, sl []T, elemBytes int64) {
	c := cap(sl)
	if c == 0 {
		return
	}
	if c < 1<<minClassBits || c&(c-1) != 0 || c > 1<<maxClassBits {
		a.ownedBytes -= int64(c) * elemBytes
		return
	}
	b := bits.Len(uint(c)) - 1
	free[b] = append(free[b], sl[:0])
}

const (
	durBytes = int64(8)
	ptBytes  = int64(16)
	u64Bytes = int64(8)
)

func (a *Arena) getDur(minCap int) []time.Duration { return slabGet(a, &a.durFree, minCap, durBytes) }
func (a *Arena) putDur(sl []time.Duration)         { slabPut(a, &a.durFree, sl, durBytes) }
func (a *Arena) getPts(minCap int) []Point         { return slabGet(a, &a.ptFree, minCap, ptBytes) }
func (a *Arena) putPts(sl []Point)                 { slabPut(a, &a.ptFree, sl, ptBytes) }
func (a *Arena) getU64(minCap int) []uint64        { return slabGet(a, &a.u64Free, minCap, u64Bytes) }
func (a *Arena) putU64(sl []uint64)                { slabPut(a, &a.u64Free, sl, u64Bytes) }

// Sample checks an empty sample out of the arena with the given capacity
// hint. It is invalidated by the next Reset.
func (a *Arena) Sample(capacity int) *Sample {
	var s *Sample
	if k := len(a.freeSamples); k > 0 {
		s = a.freeSamples[k-1]
		a.freeSamples[k-1] = nil
		a.freeSamples = a.freeSamples[:k-1]
	} else {
		s = &Sample{}
	}
	s.a = a
	s.gen = a.gen
	s.values = a.getDur(capacity)
	s.sorted = nil
	s.sortedN = 0
	a.samples = append(a.samples, s)
	return s
}

// LevelIntegrator checks an integrator (level 0 at time 0) out of the
// arena. It is invalidated by the next Reset.
func (a *Arena) LevelIntegrator() *LevelIntegrator {
	var li *LevelIntegrator
	if k := len(a.freeLevels); k > 0 {
		li = a.freeLevels[k-1]
		a.freeLevels[k-1] = nil
		a.freeLevels = a.freeLevels[:k-1]
	} else {
		li = &LevelIntegrator{}
	}
	li.a = a
	li.gen = a.gen
	li.transitions = a.getPts(0)
	li.level = 0
	li.lastChange = 0
	li.integral = 0
	a.levels = append(a.levels, li)
	return li
}

// TimeSeries checks an empty named series out of the arena. It is
// invalidated by the next Reset.
func (a *Arena) TimeSeries(name string) *TimeSeries {
	var ts *TimeSeries
	if k := len(a.freeSeries); k > 0 {
		ts = a.freeSeries[k-1]
		a.freeSeries[k-1] = nil
		a.freeSeries = a.freeSeries[:k-1]
	} else {
		ts = &TimeSeries{}
	}
	ts.a = a
	ts.gen = a.gen
	ts.Name = name
	ts.Points = a.getPts(0)
	a.series = append(a.series, ts)
	return ts
}

// Histogram checks a log-spaced histogram out of the arena, validating
// like NewHistogram. It is invalidated by the next Reset.
func (a *Arena) Histogram(base time.Duration, growth float64, buckets int) (*Histogram, error) {
	if base <= 0 {
		return nil, fmt.Errorf("stats: histogram base must be positive, got %v", base)
	}
	if growth <= 1 {
		return nil, fmt.Errorf("stats: histogram growth must exceed 1, got %v", growth)
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one bucket, got %d", buckets)
	}
	var h *Histogram
	if k := len(a.freeHists); k > 0 {
		h = a.freeHists[k-1]
		a.freeHists[k-1] = nil
		a.freeHists = a.freeHists[:k-1]
	} else {
		h = &Histogram{}
	}
	counts := a.getU64(buckets)[:buckets]
	clear(counts)
	h.base = base.Seconds()
	h.growth = growth
	h.counts = counts
	h.under = 0
	h.total = 0
	h.sumSecs = 0
	a.hists = append(a.hists, h)
	return h, nil
}

// LatencyHistogram checks out a histogram with the standard latency
// tuning (see NewLatencyHistogram).
func (a *Arena) LatencyHistogram() *Histogram {
	h, err := a.Histogram(100*time.Microsecond, 1.1, 150)
	if err != nil {
		// The fixed arguments above are valid; reaching here is a bug.
		panic(err)
	}
	return h
}

// DurationSlab checks out a zeroed []time.Duration of length n (its
// capacity may be larger), reclaimed at the next Reset. It backs the
// telemetry tracer's per-request duration records, so the sim and trace
// paths draw from one allocator.
func (a *Arena) DurationSlab(n int) []time.Duration {
	sl := a.getDur(n)[:n]
	clear(sl)
	a.slabs = append(a.slabs, sl)
	return sl
}

// sortScratch returns the arena's shared sort scratch buffer with room
// for at least n elements, growing it through the slab classes on demand.
func (a *Arena) sortScratch(n int) []time.Duration {
	if cap(a.scratch) < n {
		a.putDur(a.scratch)
		a.scratch = a.getDur(n)
	}
	return a.scratch[:cap(a.scratch)]
}

// Reset reclaims every slab into the class free lists and recycles the
// object shells. All objects checked out since the previous Reset are
// invalidated: their storage is gone, and their next recording panics.
// The arena keeps its storage, so the following run's checkouts are warm.
func (a *Arena) Reset() {
	a.gen++
	a.resets++
	for i, s := range a.samples {
		a.putDur(s.values)
		a.putDur(s.sorted)
		s.values = nil
		s.sorted = nil
		s.sortedN = 0
		a.samples[i] = nil
		a.freeSamples = append(a.freeSamples, s)
	}
	a.samples = a.samples[:0]
	for i, li := range a.levels {
		a.putPts(li.transitions)
		li.transitions = nil
		li.level = 0
		li.lastChange = 0
		li.integral = 0
		a.levels[i] = nil
		a.freeLevels = append(a.freeLevels, li)
	}
	a.levels = a.levels[:0]
	for i, ts := range a.series {
		a.putPts(ts.Points)
		ts.Points = nil
		ts.Name = ""
		a.series[i] = nil
		a.freeSeries = append(a.freeSeries, ts)
	}
	a.series = a.series[:0]
	for i, h := range a.hists {
		a.putU64(h.counts)
		h.counts = nil
		h.under = 0
		h.total = 0
		h.sumSecs = 0
		a.hists[i] = nil
		a.freeHists = append(a.freeHists, h)
	}
	a.hists = a.hists[:0]
	for i, sl := range a.slabs {
		a.putDur(sl)
		a.slabs[i] = nil
	}
	a.slabs = a.slabs[:0]
	a.putDur(a.scratch)
	a.scratch = nil
}

// growValues moves s.values to a slab with room for at least need
// elements, preserving contents. Arena-backed samples only.
func (s *Sample) growValues(need int) {
	s.a.check(s.gen)
	nw := s.a.getDur(need)
	nw = nw[:len(s.values)]
	copy(nw, s.values)
	s.a.putDur(s.values)
	s.values = nw
}

// growTransitions moves li.transitions to a slab with room for at least
// need elements, preserving contents. Arena-backed integrators only.
func (li *LevelIntegrator) growTransitions(need int) {
	li.a.check(li.gen)
	nw := li.a.getPts(need)
	nw = nw[:len(li.transitions)]
	copy(nw, li.transitions)
	li.a.putPts(li.transitions)
	li.transitions = nw
}

// growPoints moves ts.Points to a slab with room for at least need
// elements, preserving contents. Arena-backed series only.
func (ts *TimeSeries) growPoints(need int) {
	ts.a.check(ts.gen)
	nw := ts.a.getPts(need)
	nw = nw[:len(ts.Points)]
	copy(nw, ts.Points)
	ts.a.putPts(ts.Points)
	ts.Points = nw
}

// NewSampleIn checks a sample out of a, or heap-allocates one when a is
// nil, so call sites thread an optional arena in one line.
func NewSampleIn(a *Arena, capacity int) *Sample {
	if a == nil {
		return NewSample(capacity)
	}
	return a.Sample(capacity)
}

// NewLevelIntegratorIn checks an integrator out of a, or heap-allocates
// one when a is nil.
func NewLevelIntegratorIn(a *Arena) *LevelIntegrator {
	if a == nil {
		return NewLevelIntegrator()
	}
	return a.LevelIntegrator()
}

// NewTimeSeriesIn checks a series out of a, or heap-allocates one when a
// is nil.
func NewTimeSeriesIn(a *Arena, name string) *TimeSeries {
	if a == nil {
		return NewTimeSeries(name)
	}
	return a.TimeSeries(name)
}

// arenaPool is the process-wide free list of warm arenas shared by
// benchmark iterations and sweep workers. Slab contents never influence
// results (checkouts are zero-length or zeroed), so sharing across
// figure invocations is safe; it only keeps storage warm.
var arenaPool struct {
	mu   sync.Mutex
	free []*Arena
}

// GetArena checks a warm arena out of the process-wide pool, or builds a
// fresh one. Pair with PutArena.
func GetArena() *Arena {
	arenaPool.mu.Lock()
	if k := len(arenaPool.free); k > 0 {
		a := arenaPool.free[k-1]
		arenaPool.free[k-1] = nil
		arenaPool.free = arenaPool.free[:k-1]
		arenaPool.mu.Unlock()
		return a
	}
	arenaPool.mu.Unlock()
	return NewArena()
}

// PutArena resets a and returns it to the process-wide pool. The caller
// must hold no live handles into it.
func PutArena(a *Arena) {
	if a == nil {
		return
	}
	a.Reset()
	arenaPool.mu.Lock()
	arenaPool.free = append(arenaPool.free, a)
	arenaPool.mu.Unlock()
}
