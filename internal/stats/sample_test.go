package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleQuantileBasics(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{100, 100 * time.Millisecond},
		{50, 50*time.Millisecond + 500*time.Microsecond},
	}
	for _, tc := range tests {
		got := s.Percentile(tc.p)
		if got != tc.want {
			t.Errorf("P%.0f = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Error("empty sample should return zeros")
	}
	if s.FractionAbove(time.Second) != 0 {
		t.Error("empty FractionAbove should be 0")
	}
	sum := s.Summarize()
	if sum.Count != 0 {
		t.Errorf("empty summary count = %d", sum.Count)
	}
}

func TestSampleAddAfterQuery(t *testing.T) {
	s := NewSample(4)
	s.Add(3 * time.Second)
	s.Add(time.Second)
	if got := s.Min(); got != time.Second {
		t.Fatalf("Min = %v", got)
	}
	s.Add(500 * time.Millisecond) // must invalidate the sort cache
	if got := s.Min(); got != 500*time.Millisecond {
		t.Errorf("Min after re-add = %v, want 500ms", got)
	}
}

func TestSampleCountAbove(t *testing.T) {
	s := NewSample(0)
	for _, v := range []time.Duration{1, 2, 3, 4, 5} {
		s.Add(v * time.Second)
	}
	if got := s.CountAbove(3 * time.Second); got != 2 {
		t.Errorf("CountAbove(3s) = %d, want 2", got)
	}
	if got := s.CountAbove(0); got != 5 {
		t.Errorf("CountAbove(0) = %d, want 5", got)
	}
	if got := s.FractionAbove(4 * time.Second); got != 0.2 {
		t.Errorf("FractionAbove(4s) = %v, want 0.2", got)
	}
}

func TestSamplePercentileCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSample(0)
	for i := 0; i < 10000; i++ {
		s.Add(time.Duration(rng.Int63n(int64(10 * time.Second))))
	}
	ps := []float64{10, 25, 50, 75, 90, 95, 98, 99, 99.9}
	curve := s.PercentileCurve(ps)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("percentile curve not monotone at %v: %v < %v", ps[i], curve[i], curve[i-1])
		}
	}
}

func TestSampleQuantilePropertyWithinRange(t *testing.T) {
	f := func(raw []uint16, qRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		var lo, hi time.Duration = 1 << 62, 0
		for _, r := range raw {
			d := time.Duration(r)
			s.Add(d)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		q := float64(qRaw) / 65535
		v := s.Quantile(q)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestP2MatchesExactQuantile(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		rng := rand.New(rand.NewSource(17))
		p2, err := NewP2Quantile(q)
		if err != nil {
			t.Fatalf("NewP2Quantile(%v): %v", q, err)
		}
		vals := make([]float64, 0, 50000)
		for i := 0; i < 50000; i++ {
			v := rng.ExpFloat64() * 100
			p2.Add(v)
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		exact := vals[int(q*float64(len(vals)))]
		got := p2.Value()
		rel := (got - exact) / exact
		if rel < -0.08 || rel > 0.08 {
			t.Errorf("P2(q=%v) = %v, exact %v (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	p2, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Value() != 0 {
		t.Error("empty estimator should return 0")
	}
	p2.Add(10)
	p2.Add(20)
	p2.Add(30)
	v := p2.Value()
	if v < 10 || v > 30 {
		t.Errorf("small-sample estimate %v outside observed range", v)
	}
	if p2.Count() != 3 {
		t.Errorf("Count = %d, want 3", p2.Count())
	}
}

func TestP2RejectsBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewP2Quantile(q); err == nil {
			t.Errorf("NewP2Quantile(%v) accepted", q)
		}
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	want := 32.0 / 7.0
	if got := r.Variance(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Add(7)
	}
	if got := e.Value(); got < 6.999 || got > 7.001 {
		t.Errorf("EWMA of constant = %v, want 7", got)
	}
}

func TestEWMAPrimesOnFirstValue(t *testing.T) {
	e := NewEWMA(0.01)
	if e.Primed() {
		t.Error("new EWMA reports primed")
	}
	e.Add(100)
	if e.Value() != 100 {
		t.Errorf("first value = %v, want 100", e.Value())
	}
}

func TestCUSUMDetectsShift(t *testing.T) {
	c := NewCUSUM(10, 1, 5)
	for i := 0; i < 100; i++ {
		if c.Add(10) {
			t.Fatal("CUSUM alarmed on in-control data")
		}
	}
	alarmed := false
	for i := 0; i < 20; i++ {
		if c.Add(14) {
			alarmed = true
			break
		}
	}
	if !alarmed {
		t.Error("CUSUM missed a 4-sigma-equivalent shift")
	}
	if c.Alarms() != 1 {
		t.Errorf("Alarms = %d, want 1", c.Alarms())
	}
	if c.Sum() != 0 {
		t.Errorf("Sum not reset after alarm: %v", c.Sum())
	}
}

func TestTimeSeriesResample(t *testing.T) {
	ts := NewTimeSeries("cpu")
	ts.Add(100*time.Millisecond, 1)
	ts.Add(200*time.Millisecond, 3)
	ts.Add(1100*time.Millisecond, 10)
	buckets, err := ts.Resample(time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2", len(buckets))
	}
	if buckets[0].Mean != 2 || buckets[0].Count != 2 || buckets[0].Max != 3 {
		t.Errorf("bucket0 = %+v", buckets[0])
	}
	if buckets[1].Mean != 10 || buckets[1].Count != 1 {
		t.Errorf("bucket1 = %+v", buckets[1])
	}
}

func TestTimeSeriesResampleRejectsBadArgs(t *testing.T) {
	ts := NewTimeSeries("x")
	if _, err := ts.Resample(0, time.Second); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := ts.Resample(time.Second, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestTimeSeriesWindowAndSort(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(3*time.Second, 3)
	ts.Add(1*time.Second, 1)
	ts.Add(2*time.Second, 2)
	ts.Sort()
	w := ts.Window(time.Second, 3*time.Second)
	if len(w) != 2 || w[0].V != 1 || w[1].V != 2 {
		t.Errorf("Window = %+v", w)
	}
}

func TestBusyIntegratorUtilization(t *testing.T) {
	b := NewBusyIntegrator()
	b.SetBusy(1*time.Second, true)
	b.SetBusy(2*time.Second, false)
	b.SetBusy(3*time.Second, true)
	b.SetBusy(3500*time.Millisecond, false)

	tests := []struct {
		from, to time.Duration
		want     float64
	}{
		{0, 4 * time.Second, 1.5 / 4},
		{0, 1 * time.Second, 0},
		{1 * time.Second, 2 * time.Second, 1},
		{1500 * time.Millisecond, 2500 * time.Millisecond, 0.5},
		{3 * time.Second, 4 * time.Second, 0.5},
	}
	for _, tc := range tests {
		got := b.Utilization(tc.from, tc.to)
		if got < tc.want-1e-9 || got > tc.want+1e-9 {
			t.Errorf("Utilization(%v,%v) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestBusyIntegratorOpenBusyPeriod(t *testing.T) {
	b := NewBusyIntegrator()
	b.SetBusy(time.Second, true)
	if got := b.Utilization(0, 3*time.Second); got < 2.0/3-1e-9 || got > 2.0/3+1e-9 {
		t.Errorf("open busy utilization = %v, want 2/3", got)
	}
	if got := b.TotalBusy(4 * time.Second); got != 3*time.Second {
		t.Errorf("TotalBusy = %v, want 3s", got)
	}
}

func TestBusyIntegratorDuplicateStatesIgnored(t *testing.T) {
	b := NewBusyIntegrator()
	b.SetBusy(time.Second, true)
	b.SetBusy(2*time.Second, true) // duplicate
	b.SetBusy(3*time.Second, false)
	if got := b.TotalBusy(3 * time.Second); got != 2*time.Second {
		t.Errorf("TotalBusy = %v, want 2s", got)
	}
}

func TestBusyIntegratorSeries(t *testing.T) {
	b := NewBusyIntegrator()
	// 100ms busy burst every second, like a miniature MemCA attack.
	for i := 0; i < 5; i++ {
		start := time.Duration(i) * time.Second
		b.SetBusy(start, true)
		b.SetBusy(start+100*time.Millisecond, false)
	}
	fine, err := b.UtilizationSeries(100*time.Millisecond, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := b.UtilizationSeries(time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Fine granularity sees saturation; coarse sees 10%.
	maxFine := 0.0
	for _, bk := range fine {
		if bk.Mean > maxFine {
			maxFine = bk.Mean
		}
	}
	if maxFine < 0.999 {
		t.Errorf("fine-grained max utilization %v, want ~1.0", maxFine)
	}
	for _, bk := range coarse {
		if bk.Mean < 0.099 || bk.Mean > 0.101 {
			t.Errorf("coarse bucket at %v = %v, want ~0.1", bk.Start, bk.Mean)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(8))
	s := NewSample(0)
	for i := 0; i < 100000; i++ {
		v := time.Duration(rng.ExpFloat64() * float64(100*time.Millisecond))
		h.Add(v)
		s.Add(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := s.Quantile(q)
		approx := h.Quantile(q)
		ratio := float64(approx) / float64(exact)
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("histogram q=%v: %v vs exact %v (ratio %.3f)", q, approx, exact, ratio)
		}
	}
	if h.Count() != 100000 {
		t.Errorf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 95*time.Millisecond || mean > 105*time.Millisecond {
		t.Errorf("Mean = %v, want ~100ms", mean)
	}
}

func TestHistogramRejectsBadConfig(t *testing.T) {
	if _, err := NewHistogram(0, 1.5, 10); err == nil {
		t.Error("zero base accepted")
	}
	if _, err := NewHistogram(time.Millisecond, 1.0, 10); err == nil {
		t.Error("growth 1.0 accepted")
	}
	if _, err := NewHistogram(time.Millisecond, 1.5, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestHistogramUnderflow(t *testing.T) {
	h, err := NewHistogram(time.Millisecond, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(time.Microsecond)
	if h.Count() != 1 {
		t.Errorf("Count = %d", h.Count())
	}
	if q := h.Quantile(0.5); q > time.Millisecond {
		t.Errorf("underflow quantile = %v, want <= 1ms", q)
	}
}
