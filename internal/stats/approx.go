package stats

import "math"

// DefaultTolerance is the relative (and near-zero absolute) tolerance used
// by ApproxEqual and ApproxZero. Accumulated rounding across a simulation
// run stays far below it, while any intentional parameter change (capacity
// multipliers, queue levels, percentile grid points) is far above it.
const DefaultTolerance = 1e-9

// ApproxEqual reports whether a and b are equal within DefaultTolerance.
// This is the project-wide replacement for exact float ==, which the
// floatcompare analyzer forbids outside test files.
func ApproxEqual(a, b float64) bool {
	return ApproxEqualTol(a, b, DefaultTolerance)
}

// ApproxEqualTol reports whether a and b are within tol of each other,
// relative to the larger magnitude (absolute near zero). NaN compares
// unequal to everything; infinities compare equal only to infinities of
// the same sign.
func ApproxEqualTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.IsInf(a, 1) == math.IsInf(b, 1) &&
			math.IsInf(a, -1) == math.IsInf(b, -1)
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// ApproxZero reports whether x is within DefaultTolerance of zero.
func ApproxZero(x float64) bool {
	return math.Abs(x) <= DefaultTolerance
}
