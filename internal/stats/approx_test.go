package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1e9, 1e9 * (1 + 1e-12), true},
		{1, 1.0001, false},
		{0, 1e-12, true},  // absolute tolerance near zero
		{0, 1e-6, false},  // but not for clearly nonzero values
		{-2.5, -2.5, true},
		{2.5, -2.5, false},
		{0.95, 0.99, false}, // adjacent percentile grid points stay distinct
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(-1), math.Inf(-1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e308, false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 0, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b); got != c.want {
			t.Errorf("ApproxEqual(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestApproxEqualTol(t *testing.T) {
	if !ApproxEqualTol(100, 101, 0.02) {
		t.Error("ApproxEqualTol(100, 101, 0.02) = false, want true")
	}
	if ApproxEqualTol(100, 103, 0.02) {
		t.Error("ApproxEqualTol(100, 103, 0.02) = true, want false")
	}
}

func TestApproxZero(t *testing.T) {
	if !ApproxZero(0) || !ApproxZero(1e-12) || !ApproxZero(-1e-12) {
		t.Error("ApproxZero should accept values within tolerance of zero")
	}
	if ApproxZero(1e-6) || ApproxZero(math.NaN()) || ApproxZero(math.Inf(1)) {
		t.Error("ApproxZero should reject clearly nonzero values")
	}
}
