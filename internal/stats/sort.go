package stats

import (
	"slices"
	"time"
)

// signBit maps int64 durations onto uint64 so unsigned digit ordering
// matches signed value ordering.
const signBit = uint64(1) << 63

// radixMinLen is the length below which comparison sorting beats the
// fixed per-pass cost of counting digits.
const radixMinLen = 128

// sortDurations sorts v ascending. Large inputs use an LSD radix sort
// over 8-bit digits, ping-ponging between v and scratch (which must be at
// least len(v) long); passes whose digit is constant across v are
// skipped, so values spanning k significant bytes cost k linear passes.
// The result is byte-identical to a comparison sort: sorting int64 keys
// has exactly one output. A nil or short scratch falls back to
// comparison sorting, as do small inputs.
func sortDurations(v, scratch []time.Duration) {
	if len(v) < radixMinLen || len(scratch) < len(v) {
		slices.Sort(v)
		return
	}
	// Which key bits vary decides which passes run.
	orAcc := uint64(0)
	andAcc := ^uint64(0)
	for _, d := range v {
		k := uint64(d) ^ signBit
		orAcc |= k
		andAcc &= k
	}
	varying := orAcc ^ andAcc
	if varying == 0 {
		return // all elements equal
	}
	src, dst := v, scratch[:len(v)]
	swapped := false
	var counts [256]int
	for shift := uint(0); shift < 64; shift += 8 {
		if (varying>>shift)&0xff == 0 {
			continue
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, d := range src {
			counts[((uint64(d)^signBit)>>shift)&0xff]++
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, d := range src {
			b := ((uint64(d) ^ signBit) >> shift) & 0xff
			dst[counts[b]] = d
			counts[b]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(v, src)
	}
}
