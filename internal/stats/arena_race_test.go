package stats

import (
	"context"
	"math/rand"
	"slices"
	"testing"
	"time"

	"memca/internal/sweep"
)

// arenaJob is the stress kernel: per-worker arena, per-job reset, quantile
// over a seed-derived stream — the exact shape the figure drivers run.
func arenaJob(a *Arena, i int) time.Duration {
	defer a.Reset()
	rng := rand.New(rand.NewSource(sweep.DeriveSeed(41, i)))
	s := a.Sample(128)
	h := a.LatencyHistogram()
	for j := 0; j < 1500; j++ {
		d := time.Duration(rng.Int63n(int64(time.Second)))
		s.Add(d)
		h.Add(d)
	}
	return s.Quantile(0.999)
}

// TestRaceArenaReuseMidSweepCancellation stresses per-worker arena reuse
// under `go test -race`: a sweep is canceled partway through, which must
// release every arena back to the process pool (sweep.RunState releases at
// worker exit on cancellation too), and an immediately following sweep
// reusing those warm arenas must produce the serial results bit for bit.
func TestRaceArenaReuseMidSweepCancellation(t *testing.T) {
	const jobs = 200
	job := func(_ context.Context, a *Arena, i int) (time.Duration, error) {
		return arenaJob(a, i), nil
	}

	// Serial reference, heap-backed arena outside the pool.
	want := make([]time.Duration, jobs)
	ref := NewArena()
	for i := range want {
		want[i] = arenaJob(ref, i)
	}

	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		cutoff := 20 * (round + 1)
		n := 0
		_, err := sweep.RunState(ctx, sweep.Options{
			Workers: 8,
			// Progress calls are serialized, so counting here is safe.
			Progress: func(done, total int) {
				n++
				if n == cutoff {
					cancel()
				}
			},
		}, jobs, GetArena, PutArena, job)
		cancel()
		if err == nil {
			t.Fatalf("round %d: canceled sweep reported success", round)
		}

		// The interrupted workers must have returned their arenas; reusing
		// them may not perturb results.
		for _, workers := range []int{1, 4, 8} {
			got, err := sweep.RunState(context.Background(), sweep.Options{Workers: workers},
				jobs, GetArena, PutArena, job)
			if err != nil {
				t.Fatalf("round %d workers=%d: %v", round, workers, err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("round %d workers=%d: results diverge after arena reuse", round, workers)
			}
		}
	}
}
