package figures

import (
	"testing"
	"time"
)

func TestDefenseEvaluation(t *testing.T) {
	opts := quickOpts(t)
	res, err := DefenseEvaluation(opts)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(attack, def string) DefensePoint {
		for _, p := range res.Matrix {
			if p.Attack == attack && p.Defense == def {
				return p
			}
		}
		t.Fatalf("missing cell %s/%s", attack, def)
		return DefensePoint{}
	}

	// Undefended lock attack does its damage.
	if cell("memory-lock", "none").Mitigated {
		t.Error("undefended lock attack reported mitigated")
	}
	// Bandwidth reservation does NOT stop the lock attack: the bus lock
	// stalls the partition too (the asymmetry the matrix exists to show).
	if cell("memory-lock", "bandwidth-reservation").Mitigated {
		t.Error("bandwidth reservation should not stop a bus-lock attack")
	}
	// Split-lock protection neutralizes it completely.
	slp := cell("memory-lock", "split-lock-protection")
	if !slp.Mitigated {
		t.Errorf("split-lock protection failed: p95 = %v", slp.ClientP95)
	}
	if slp.DegradationD < 0.999 {
		t.Errorf("split-lock protection left D = %v, want 1", slp.DegradationD)
	}
	// Bandwidth reservation guarantees the saturation victim full speed.
	if d := cell("bus-saturation", "bandwidth-reservation").DegradationD; d < 0.999 {
		t.Errorf("reservation under saturation left D = %v, want 1", d)
	}
	// Bus saturation never reaches the damage goal in any cell (the
	// paper's reason for choosing the lock attack).
	for _, def := range []string{"none", "bandwidth-reservation", "split-lock-protection"} {
		if !cell("bus-saturation", def).Mitigated {
			t.Errorf("bus saturation reached the damage goal under %s", def)
		}
	}

	// Detection: the 50 ms detector sees the pulsating pattern that the
	// 1 s detector misses entirely.
	if res.DetectorEpisodes < 10 {
		t.Errorf("fine detector found %d episodes, want many", res.DetectorEpisodes)
	}
	if !res.DetectorVerdict.PulsatingAttack {
		t.Errorf("classifier missed the attack: %+v", res.DetectorVerdict)
	}
	// Mean spacing sits between the RTO echo (~1s) and the burst
	// interval (2s): every burst is followed by a retransmission-wave
	// echo millibottleneck.
	gotI := res.DetectorVerdict.MeanInterval
	if gotI < 500*time.Millisecond || gotI > 2500*time.Millisecond {
		t.Errorf("classified interval %v, want pulsating-range", gotI)
	}
	// The 1 s detector sees at most an isolated blip — no actionable
	// pattern — while the fine detector sees every burst.
	if res.CoarseDetectorEpisodes > res.DetectorEpisodes/4 {
		t.Errorf("coarse detector found %d of %d episodes, want almost none",
			res.CoarseDetectorEpisodes, res.DetectorEpisodes)
	}
	if res.DetectorOverhead <= 0 {
		t.Error("overhead accounting missing")
	}

	// Attribution trigger: the tuned feature detector fires on the
	// undefended lock attack, so the triggered-reservation row applies
	// the reservation cell's measured outcome.
	if !res.AttributionTriggered || res.AttributionAlarms == 0 {
		t.Errorf("attribution trigger stayed silent on the lock attack (%d alarms)", res.AttributionAlarms)
	}
	triggered := cell("memory-lock", "attribution-triggered-reservation")
	if triggered.ClientP95 != cell("memory-lock", "bandwidth-reservation").ClientP95 {
		t.Errorf("triggered row p95 %v, want the reservation cell's %v",
			triggered.ClientP95, cell("memory-lock", "bandwidth-reservation").ClientP95)
	}
	if triggered.ClientP95 != res.TriggeredP95 {
		t.Errorf("triggered row p95 %v disagrees with TriggeredP95 %v", triggered.ClientP95, res.TriggeredP95)
	}
	requireFiles(t, opts.OutDir, "defense_matrix.csv")
}
