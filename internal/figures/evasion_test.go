package figures

import (
	"testing"
	"time"
)

func TestJitterEvasion(t *testing.T) {
	opts := quickOpts(t)
	res, err := JitterEvasion(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points", len(res.Points))
	}
	noJitter := res.Points[0]
	maxJitter := res.Points[len(res.Points)-1]

	// Damage survives jitter at every level (mean duty unchanged).
	for _, p := range res.Points {
		if p.ClientP95 < time.Second {
			t.Errorf("jitter %v: p95 %v, want >= 1s", p.Jitter, p.ClientP95)
		}
	}
	// The periodic signature erodes with jitter.
	if noJitter.Periodicity < 0.3 {
		t.Errorf("unjittered periodicity %v, want strong", noJitter.Periodicity)
	}
	if maxJitter.Periodicity > noJitter.Periodicity/2 {
		t.Errorf("jitter did not erode periodicity: %v -> %v", noJitter.Periodicity, maxJitter.Periodicity)
	}
	// The unjittered attack is classified. (The episode classifier is
	// notably robust to jitter — the burst/RTO-echo structure keeps
	// inter-episode gaps regular even when burst starts are randomized —
	// while the spectral cue above collapses; see EXPERIMENTS.md.)
	if !noJitter.Classified {
		t.Error("unjittered attack not classified")
	}
	requireFiles(t, opts.OutDir, "evasion_jitter.csv")
}
