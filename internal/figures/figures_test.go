package figures

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"memca/internal/monitor"
)

func quickOpts(t *testing.T) Options {
	t.Helper()
	return Options{OutDir: t.TempDir(), Quick: true, Seed: 1}
}

func requireFiles(t *testing.T, dir string, names ...string) {
	t.Helper()
	for _, name := range names {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("artifact %s missing: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
}

func TestFig2(t *testing.T) {
	opts := quickOpts(t)
	res, err := Fig2(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, env := range []string{"ec2", "private-cloud"} {
		if res.ClientP95[env] < time.Second {
			t.Errorf("%s client p95 = %v, want > 1s (paper's damage goal)", env, res.ClientP95[env])
		}
		if res.ClientP98[env] < res.ClientP95[env] {
			t.Errorf("%s p98 below p95", env)
		}
	}
	if !res.AmplificationOK {
		t.Error("per-tier amplification ordering violated")
	}
	requireFiles(t, opts.OutDir, "fig2_ec2.csv", "fig2_private-cloud.csv")
}

func TestFig3(t *testing.T) {
	opts := quickOpts(t)
	res, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SingleVMSaturates {
		t.Error("finding 1 violated: a single VM saturated the bus")
	}
	if !res.LockBelowSaturation {
		t.Error("finding 3 violated: lock attack not stronger than saturation")
	}
	// Finding 2: monotone decrease in per-VM bandwidth.
	for key, curve := range res.Curves {
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-9 {
				t.Errorf("%s: per-VM bandwidth increased at %d VMs", key, i+1)
			}
		}
	}
	// Random-package degradation is milder than same-package at 6 VMs.
	if res.Curves["random-package/bus-saturation"][5] <= res.Curves["same-package/bus-saturation"][5] {
		t.Error("random-package placement did not soften degradation")
	}
	requireFiles(t, opts.OutDir, "fig3_bandwidth.csv")
}

func TestFig6(t *testing.T) {
	opts := quickOpts(t)
	res, err := Fig6(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Tandem: queued work accumulates only at the bottleneck.
	if res.TandemMySQLMax < 50 {
		t.Errorf("tandem MySQL max occupancy %v, want large accumulation", res.TandemMySQLMax)
	}
	if res.TandemUpstreamMax > 25 {
		t.Errorf("tandem upstream occupancy %v, want small", res.TandemUpstreamMax)
	}
	// RPC: overflow propagates to every tier, back to front.
	if !res.RPCFilled {
		t.Fatalf("RPC queues did not all fill: %v", res.RPCFillOrder)
	}
	if !(res.RPCFillOrder[2] <= res.RPCFillOrder[1] && res.RPCFillOrder[1] <= res.RPCFillOrder[0]) {
		t.Errorf("overflow not back-to-front: %v", res.RPCFillOrder)
	}
	requireFiles(t, opts.OutDir, "fig6_tandem.csv", "fig6_rpc.csv")
}

func TestFig7(t *testing.T) {
	opts := quickOpts(t)
	res, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	tandem := res.Cases[Fig7Tandem]
	infFront := res.Cases[Fig7InfiniteFront]
	finite := res.Cases[Fig7Finite]

	// (a) Tandem: client and MySQL tails nearly coincide (queueing
	// happens at the bottleneck only).
	if tandem.SpreadP99 > tandem.MySQLP99/2 {
		t.Errorf("tandem spread %v not small vs mysql p99 %v", tandem.SpreadP99, tandem.MySQLP99)
	}
	if tandem.Drops != 0 {
		t.Errorf("tandem with infinite queues dropped %d", tandem.Drops)
	}
	// (b) Cross-tier overflow amplifies the client tail past MySQL's.
	if infFront.SpreadP99 <= tandem.SpreadP99 {
		t.Errorf("infinite-front spread %v not above tandem %v", infFront.SpreadP99, tandem.SpreadP99)
	}
	if infFront.Drops != 0 {
		t.Errorf("infinite front queue dropped %d", infFront.Drops)
	}
	// (c) Finite queues: drops + retransmissions push the client peak
	// beyond case (b).
	if finite.Drops == 0 {
		t.Error("finite case produced no drops")
	}
	if finite.ClientP99 < time.Second {
		t.Errorf("finite client p99 %v, want >= 1s (TCP retransmission)", finite.ClientP99)
	}
	if finite.ClientP99 <= infFront.ClientP99 {
		t.Errorf("finite client p99 %v not above infinite-front %v", finite.ClientP99, infFront.ClientP99)
	}
	requireFiles(t, opts.OutDir, "fig7_tandem.csv", "fig7_infinite-front.csv", "fig7_finite.csv")
}

func TestFig8(t *testing.T) {
	opts := quickOpts(t)
	opts.Quick = false // the controller needs its full convergence runway
	res, err := Fig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions < 20 {
		t.Errorf("only %d decisions", res.Decisions)
	}
	if !res.GoalReached {
		t.Errorf("controller never reached the goal: final tail %v", res.FinalTailRT)
	}
	if res.SustainedFraction < 0.6 {
		t.Errorf("damage not sustained after convergence: %v", res.SustainedFraction)
	}
	if !res.StealthHeld {
		t.Errorf("stealth bound violated: burst %v", res.FinalParams.BurstLength)
	}
	requireFiles(t, opts.OutDir, "fig8_controller.csv")
}

func TestFig9(t *testing.T) {
	opts := quickOpts(t)
	res, err := Fig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 8-second window at I=2s: 4 bursts.
	if res.BurstsInWindow < 3 || res.BurstsInWindow > 5 {
		t.Errorf("bursts in window = %d, want ~4", res.BurstsInWindow)
	}
	if !res.MySQLSaturated {
		t.Error("no transient MySQL CPU saturation at 50ms granularity")
	}
	if !res.QueuePropagated {
		t.Error("queue propagation not visible across tiers")
	}
	if res.MaxClientRT < time.Second {
		t.Errorf("max client RT %v, want >= 1s", res.MaxClientRT)
	}
	requireFiles(t, opts.OutDir,
		"fig9a_attack_bursts.csv", "fig9b_mysql_cpu.csv", "fig9c_queues.csv", "fig9d_client_rt.csv")
}

func TestFig10(t *testing.T) {
	opts := quickOpts(t)
	res, err := Fig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.AutoScalingTriggered {
		t.Error("MemCA triggered the offline auto-scaling evaluation")
	}
	if res.ScaleEventsLive != 0 {
		t.Errorf("live scaling group fired %d times", res.ScaleEventsLive)
	}
	coarseMax := res.MaxByGranularity[monitor.GranularityCloud]
	fineMax := res.MaxByGranularity[monitor.GranularityFine]
	if coarseMax > 0.85 {
		t.Errorf("1-min max utilization %v above the scaling threshold", coarseMax)
	}
	if fineMax < 0.99 {
		t.Errorf("50ms max utilization %v, want saturation visible", fineMax)
	}
	if res.MeanCoarse < 0.4 || res.MeanCoarse > 0.85 {
		t.Errorf("coarse mean %v, want moderate", res.MeanCoarse)
	}
	requireFiles(t, opts.OutDir, "fig10a_cpu_1min.csv", "fig10b_cpu_1s.csv", "fig10c_cpu_50ms.csv")
}

func TestFig11(t *testing.T) {
	opts := quickOpts(t)
	res, err := Fig11(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.SaturationPeriodicity < 0.3 {
		t.Errorf("bus-saturation LLC periodicity %v, want visible pattern (> 0.3)", res.SaturationPeriodicity)
	}
	if res.LockPeriodicity > 0.3 {
		t.Errorf("memory-lock LLC periodicity %v, want no pattern (< 0.3)", res.LockPeriodicity)
	}
	if res.SaturationPeriodicity <= res.LockPeriodicity {
		t.Error("saturation pattern not stronger than lock pattern")
	}
	if res.LockAdversaryMaxMisses > 1e5 {
		t.Errorf("locking adversary misses %v, want invisible to profiler", res.LockAdversaryMaxMisses)
	}
	requireFiles(t, opts.OutDir,
		"fig11a_llc_saturation.csv", "fig11b_llc_lock.csv")
}

func TestTable1(t *testing.T) {
	opts := quickOpts(t)
	res, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Prediction.QueuesAllFill {
		t.Error("default attack should fill all queues analytically")
	}
	if res.Prediction.Impact <= 0 {
		t.Errorf("impact %v, want positive", res.Prediction.Impact)
	}
	if res.Prediction.Millibottleneck >= time.Second {
		t.Errorf("millibottleneck %v, want sub-second (stealth)", res.Prediction.Millibottleneck)
	}
	if !res.PlannedOK {
		t.Error("inverse planning failed for the paper's goal")
	}
	requireFiles(t, opts.OutDir, "table1_model.csv", "table1_prediction.csv")
}
