package figures

import (
	"testing"
	"time"
)

func TestFlashCrowd(t *testing.T) {
	opts := quickOpts(t)
	res, err := FlashCrowd(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The organic surge is visible at CloudWatch granularity and trips
	// the scaler — everything MemCA avoids.
	if res.PeakCoarseUtil <= 0.85 {
		t.Errorf("peak 1-min CPU %v, want above the trigger", res.PeakCoarseUtil)
	}
	if res.ScaleEvents == 0 {
		t.Fatal("flash crowd did not trigger scaling")
	}
	// The surge hurt before capacity arrived, and the scale-out absorbed
	// it: post-absorption tail back to healthy single-digit-to-tens ms.
	if res.CrowdP95 < 50*time.Millisecond {
		t.Errorf("crowd-phase p95 %v, want degraded", res.CrowdP95)
	}
	if res.AbsorbedP95 > 50*time.Millisecond {
		t.Errorf("absorbed p95 %v, want healthy after scale-out", res.AbsorbedP95)
	}
	if res.AbsorbedP95 >= res.CrowdP95 {
		t.Errorf("scale-out did not help: %v -> %v", res.CrowdP95, res.AbsorbedP95)
	}
	requireFiles(t, opts.OutDir, "flashcrowd.csv")
}
