package figures

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sort"

	"memca/internal/dsweep"
	"memca/internal/stats"
)

// DistRun is one figure driver prepared for distributable execution: a
// fixed job count, a pure per-index job producing an encoded record, and
// a finalizer that turns the complete index-ordered record stream back
// into the figure's result and CSV artifacts.
//
// The split is what makes sharding safe: Job never writes files and is a
// pure function of (Options, index) — every worker computes identical
// bytes for an index — while Finalize is the only stage that touches
// OutDir, and runs exactly once on the merged stream. The in-process
// figure functions (Fig2, the ablations, FigPlanner) run through the same
// Job/Finalize pair, so a distributed run's outputs are byte-identical to
// theirs by construction, not by testing alone.
type DistRun struct {
	// Jobs is the total job count; indices run 0..Jobs-1.
	Jobs int
	// Job computes the record for one index. The arena (never nil) backs
	// the run's stats and is reset by the caller after each job; the
	// returned bytes must not alias it.
	Job func(a *stats.Arena, index int) ([]byte, error)
	// Finalize consumes the records in index order, writes the figure's
	// CSV artifacts (honoring Options.OutDir), and returns the figure's
	// result plus a one-line human summary.
	Finalize func(payloads [][]byte) (result any, summary string, err error)
}

// DistDriver is a registered distributable figure driver.
type DistDriver struct {
	// Name is the manifest key (e.g. "fig2", "ablation-interval").
	Name string
	// New prepares a run for the given options. It is called once per
	// process — expensive pure setup (the planner's Solve pass, say)
	// happens here, not per job.
	New func(Options) (*DistRun, error)
}

// distRegistry holds every distributable driver, keyed by name. Drivers
// register in init functions next to their figure code.
var distRegistry = map[string]DistDriver{}

// registerDist adds a driver; duplicate names are a programming error.
func registerDist(d DistDriver) {
	if _, dup := distRegistry[d.Name]; dup {
		panic(fmt.Sprintf("figures: duplicate dist driver %q", d.Name))
	}
	distRegistry[d.Name] = d
}

// DistDrivers lists the registered driver names, sorted.
func DistDrivers() []string {
	names := make([]string, 0, len(distRegistry))
	for name := range distRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupDist finds a driver by name.
func LookupDist(name string) (DistDriver, bool) {
	d, ok := distRegistry[name]
	return d, ok
}

// runDistLocal executes a driver fully in-process: jobs fan out over the
// sweep engine (one arena per worker, same as every figure), then the
// finalizer consumes the records in index order. This is the path the
// plain figure functions use.
func runDistLocal(name string, o Options) (any, string, error) {
	d, ok := LookupDist(name)
	if !ok {
		return nil, "", fmt.Errorf("figures: no dist driver %q (have %v)", name, DistDrivers())
	}
	r, err := d.New(o)
	if err != nil {
		return nil, "", err
	}
	payloads, err := runArenaJobs(o, r.Jobs, r.Job)
	if err != nil {
		return nil, "", err
	}
	return r.Finalize(payloads)
}

// encodeRecord gob-encodes one job record with a fresh encoder, so the
// bytes are a pure function of the value (no stream state). Record types
// must avoid maps — gob iterates them in random order.
func encodeRecord(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("figures: encoding job record: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRecord is encodeRecord's inverse.
func decodeRecord(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("figures: decoding job record: %w", err)
	}
	return nil
}

// DistOptions reconstructs the figure Options a manifest's jobs run
// under. Only result-determining fields and the output directory travel
// through the manifest; parallelism and progress belong to the process
// running the jobs.
func DistOptions(m *dsweep.Manifest) Options {
	return Options{OutDir: m.OutDir, Quick: m.Quick, Seed: m.Seed}
}

// NewManifest builds (without writing) a manifest for a distributed run
// of the named driver, with the job count filled in by preparing the
// driver once.
func NewManifest(figure string, o Options, shards int, artifactDir string) (*dsweep.Manifest, error) {
	d, ok := LookupDist(figure)
	if !ok {
		return nil, fmt.Errorf("figures: no dist driver %q (have %v)", figure, DistDrivers())
	}
	r, err := d.New(o)
	if err != nil {
		return nil, err
	}
	return &dsweep.Manifest{
		Figure:      figure,
		Jobs:        r.Jobs,
		Shards:      shards,
		Seed:        o.Seed,
		Quick:       o.Quick,
		OutDir:      o.OutDir,
		ArtifactDir: artifactDir,
	}, nil
}

// newDistRun prepares the manifest's driver in this process and checks
// the manifest's job count against it, catching manifests generated by a
// build with a different grid.
func newDistRun(m *dsweep.Manifest) (*DistRun, error) {
	d, ok := LookupDist(m.Figure)
	if !ok {
		return nil, fmt.Errorf("figures: manifest names unknown dist driver %q (have %v)", m.Figure, DistDrivers())
	}
	r, err := d.New(DistOptions(m))
	if err != nil {
		return nil, err
	}
	if r.Jobs != m.Jobs {
		return nil, fmt.Errorf("figures: driver %q has %d jobs, manifest says %d — manifest from a different build?", m.Figure, r.Jobs, m.Jobs)
	}
	return r, nil
}

// RunShard runs one shard of a manifest in this process: the worker half
// of the fabric. It keeps the arena story intact — one arena for the
// whole worker process, reset after every job, so each job after the
// first records into warm slabs (the per-worker equivalent of
// sweep.RunState in the in-process path). Resume is automatic via the
// shard artifact.
func RunShard(ctx context.Context, m *dsweep.Manifest, shard int, opts dsweep.ShardOptions) error {
	r, err := newDistRun(m)
	if err != nil {
		return err
	}
	a := stats.GetArena()
	defer stats.PutArena(a)
	return dsweep.RunShard(ctx, m, shard, func(_ context.Context, index int) ([]byte, error) {
		defer a.Reset()
		return r.Job(a, index)
	}, opts)
}

// RunDistributed finalizes a distributed run from its merged artifact:
// it decodes the index-ordered records, writes the figure's CSV
// artifacts into the manifest's OutDir, and returns the figure result
// with a one-line summary. Merge must have completed first.
func RunDistributed(m *dsweep.Manifest) (any, string, error) {
	r, err := newDistRun(m)
	if err != nil {
		return nil, "", err
	}
	payloads, err := dsweep.ReadMerged(m)
	if err != nil {
		return nil, "", err
	}
	return r.Finalize(payloads)
}
