package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/core"
	"memca/internal/defense"
	"memca/internal/monitor"
	"memca/internal/stats"
	"memca/internal/trace"
)

// EvasionPoint is one jitter level's outcome.
type EvasionPoint struct {
	// Jitter is the interval randomization fraction.
	Jitter float64
	// ClientP95 is the damage (must survive jitter).
	ClientP95 time.Duration
	// Periodicity is the Figure 11-style autocorrelation of the victim's
	// CPU signal at the mean burst interval.
	Periodicity float64
	// Classified reports whether the defense classifier still calls the
	// detected millibottlenecks a pulsating attack.
	Classified bool
	// IntervalCV is the classifier's gap coefficient of variation.
	IntervalCV float64
}

// EvasionResult captures the detection-evasion arms race: randomizing the
// burst interval preserves the damage (the mean duty cycle is unchanged)
// while erasing the periodic autocorrelation signature the Figure 11
// analysis keys on. The episode-based classifier proves more robust: the
// burst-plus-RTO-echo structure keeps inter-episode gaps regular even
// under heavy jitter — evidence that millibottleneck *episode* detection,
// not spectral analysis, is the promising direction for the defense
// research the paper calls for.
type EvasionResult struct {
	Points []EvasionPoint
}

// JitterEvasion sweeps the attack's interval jitter and evaluates damage
// versus detectability at each level.
func JitterEvasion(opts Options) (*EvasionResult, error) {
	res := &EvasionResult{}
	jitters := []float64{0, 0.25, 0.5, 0.75}
	points, err := runArenaJobs(opts, len(jitters), func(a *stats.Arena, ji int) (EvasionPoint, error) {
		jitter := jitters[ji]
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Duration = opts.duration(2 * time.Minute)
		cfg.Attack.Params.Jitter = jitter
		// The busy integrator read below is arena-backed; it is consumed
		// in full before the job returns and the arena resets.
		cfg.Arena = a
		x, err := core.NewExperiment(cfg)
		if err != nil {
			return EvasionPoint{}, fmt.Errorf("figures: evasion jitter=%v: %w", jitter, err)
		}
		rep, err := x.Run()
		if err != nil {
			return EvasionPoint{}, fmt.Errorf("figures: evasion jitter=%v run: %w", jitter, err)
		}
		point := EvasionPoint{Jitter: jitter, ClientP95: rep.Client.P95}

		busy, err := x.Network().TierBusy(2)
		if err != nil {
			return EvasionPoint{}, err
		}
		source := func(from, to time.Duration) float64 {
			return busy.WindowAverage(cfg.Warmup+from, cfg.Warmup+to) / 2
		}

		// Figure 11-style periodicity of the CPU signal at the mean
		// interval.
		sampler, err := monitor.NewSampler("cpu", 50*time.Millisecond, source)
		if err != nil {
			return EvasionPoint{}, err
		}
		buckets, err := sampler.Collect(cfg.Duration)
		if err != nil {
			return EvasionPoint{}, err
		}
		lag := int(cfg.Attack.Params.Interval / (50 * time.Millisecond))
		point.Periodicity, err = monitor.Periodicity(buckets, lag)
		if err != nil {
			return EvasionPoint{}, err
		}

		// Defense classifier verdict.
		det, err := defense.NewDetector(defense.DefaultDetector())
		if err != nil {
			return EvasionPoint{}, err
		}
		episodes, err := det.Detect(source, cfg.Duration)
		if err != nil {
			return EvasionPoint{}, err
		}
		verdict := defense.Classify(episodes, 5)
		point.Classified = verdict.PulsatingAttack
		point.IntervalCV = verdict.IntervalCV
		return point, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points

	if path := opts.path("evasion_jitter.csv"); path != "" {
		rows := make([][]string, 0, len(res.Points))
		for _, p := range res.Points {
			rows = append(rows, []string{
				strconv.FormatFloat(p.Jitter, 'f', 2, 64),
				strconv.FormatFloat(p.ClientP95.Seconds()*1000, 'f', 1, 64),
				strconv.FormatFloat(p.Periodicity, 'f', 3, 64),
				strconv.FormatBool(p.Classified),
				strconv.FormatFloat(p.IntervalCV, 'f', 3, 64),
			})
		}
		if err := trace.WriteCSV(path, []string{"jitter", "client_p95_ms", "periodicity", "classified", "interval_cv"}, rows); err != nil {
			return nil, err
		}
	}
	return res, nil
}
