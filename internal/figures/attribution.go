package figures

import (
	"fmt"
	"time"

	"memca/internal/core"
	"memca/internal/telemetry"
)

// AttributionResult captures the critical-path attribution experiment:
// where the p99 tail's time actually goes, attacked vs baseline, and how
// much of the latency signal coarse monitoring averages away.
type AttributionResult struct {
	// AttackedP99 / BaselineP99 are the client p99 response times.
	AttackedP99 time.Duration
	BaselineP99 time.Duration
	// AttackedWaitShare is the fraction of the attacked run's >=p99 tail
	// spent waiting (front-tier retransmission wait plus queueing) rather
	// than in service. The paper's tail-amplification claim is that this
	// dominates.
	AttackedWaitShare float64
	// AttackedRetransShare is the retransmission-wait fraction alone.
	AttackedRetransShare float64
	// BaselineServiceShare is the service fraction of the baseline run's
	// >=p99 tail: without the attack, slow requests are slow because of
	// work, not waiting.
	BaselineServiceShare float64
	// AttackedBlindness / BaselineBlindness are the 50ms-vs-1s peak
	// window-mean RT ratios (see telemetry.BlindnessRatio).
	AttackedBlindness float64
	BaselineBlindness float64
	// AttackedTailTraces is how many traces the attacked >=p99 breakdown
	// summarizes.
	AttackedTailTraces int
}

// attributionRun is one job's distilled output.
type attributionRun struct {
	p99       time.Duration
	tail      []telemetry.Attribution
	breakdown telemetry.Breakdown
	blindness float64
	timelines []*telemetry.Timeline
	tierNames []string
}

// attributionResolutions are the dual monitoring resolutions contrasted by
// the figure: fine enough to resolve a millibottleneck, and the 1-second
// floor of typical cloud monitoring.
var attributionResolutions = []time.Duration{50 * time.Millisecond, time.Second}

// FigAttribution runs the attacked and baseline RUBBoS experiments with
// per-request tracing and decomposes each run's >=p99 latency tail along
// its critical path. It writes a component-share CSV, per-trace tail
// attributions, and the dual-resolution timelines for both runs.
func FigAttribution(opts Options) (*AttributionResult, error) {
	if err := checkTiersMatch(); err != nil {
		return nil, err
	}
	attacked := []bool{true, false}
	runs, err := runJobs(opts, len(attacked), func(i int) (*attributionRun, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Duration = opts.duration(3 * time.Minute)
		if !attacked[i] {
			cfg.Attack = nil
		}
		spec := telemetry.DefaultSpec()
		spec.TailKeep = 4096
		spec.Resolutions = attributionResolutions
		cfg.Trace = &spec
		x, err := core.NewExperiment(cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: attribution attacked=%v: %w", attacked[i], err)
		}
		rep, err := x.Run()
		if err != nil {
			return nil, fmt.Errorf("figures: attribution attacked=%v run: %w", attacked[i], err)
		}
		tr := x.Tracer()
		run := &attributionRun{
			p99:       rep.Client.P99,
			tail:      tr.TailAttributions(),
			timelines: tr.Timelines(),
			tierNames: tr.TierNames(),
		}
		// Summarize only the traces at or above the run's own p99: the
		// slowest-N sample reaches deeper, but the claim is about the tail
		// percentile the paper reports.
		over := run.tail[:0:0]
		for j := range run.tail {
			if run.tail[j].RT >= run.p99 {
				over = append(over, run.tail[j])
			}
		}
		run.breakdown = telemetry.Summarize(len(run.tierNames), over)
		run.blindness = telemetry.BlindnessRatio(
			tr.Timeline(attributionResolutions[0]), tr.Timeline(attributionResolutions[1]))
		return run, nil
	})
	if err != nil {
		return nil, err
	}

	att, base := runs[0], runs[1]
	res := &AttributionResult{
		AttackedP99:          att.p99,
		BaselineP99:          base.p99,
		AttackedWaitShare:    att.breakdown.WaitShare(),
		AttackedRetransShare: share(att.breakdown.RetransWait, att.breakdown.RT),
		BaselineServiceShare: base.breakdown.ServiceShare(),
		AttackedBlindness:    att.blindness,
		BaselineBlindness:    base.blindness,
		AttackedTailTraces:   att.breakdown.Count,
	}

	if opts.OutDir != "" {
		labels := []string{"attacked", "baseline"}
		breakdowns := []telemetry.Breakdown{att.breakdown, base.breakdown}
		if err := telemetry.WriteBreakdownCSV(opts.path("attribution.csv"), att.tierNames, labels, breakdowns); err != nil {
			return nil, err
		}
		for i, run := range runs {
			name := labels[i]
			if err := telemetry.WriteAttributionCSV(opts.path(fmt.Sprintf("attribution_tail_%s.csv", name)), run.tierNames, run.tail); err != nil {
				return nil, err
			}
			for _, tl := range run.timelines {
				path := opts.path(fmt.Sprintf("attribution_timeline_%s_%dms.csv", name, tl.Res.Milliseconds()))
				if err := telemetry.WriteTimelineCSV(path, tl); err != nil {
					return nil, err
				}
			}
		}
	}
	return res, nil
}

func share(part, whole time.Duration) float64 {
	if whole <= 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
