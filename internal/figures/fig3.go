package figures

import (
	"fmt"
	"strconv"

	"memca/internal/memmodel"
	"memca/internal/trace"
)

// Fig3Result captures Figure 3: available memory bandwidth per co-located
// VM versus VM count, placement, and attack type.
type Fig3Result struct {
	// Curves maps "<placement>/<attack>" to per-VM MB/s for 1..6 VMs.
	Curves map[string][]float64
	// SingleVMSaturates reports whether one VM saturated the bus
	// (the paper's finding 1 says it must not).
	SingleVMSaturates bool
	// LockBelowSaturation reports finding 3: the lock attack leaves
	// every VM less bandwidth than bus saturation does, at every count.
	LockBelowSaturation bool
}

// Fig3 sweeps 1-6 co-located VMs over {same, random} package placement
// and {bus-saturation, memory-lock} attacks on the private-cloud host and
// writes the four curves as one CSV.
func Fig3(opts Options) (*Fig3Result, error) {
	cfg := memmodel.XeonE5_2603v3()
	const maxVMs = 6
	res := &Fig3Result{Curves: make(map[string][]float64), LockBelowSaturation: true}

	type variant struct {
		placement memmodel.PlacementMode
		kind      memmodel.AttackKind
	}
	variants := []variant{
		{memmodel.PlacementSamePackage, memmodel.AttackBusSaturation},
		{memmodel.PlacementSamePackage, memmodel.AttackMemoryLock},
		{memmodel.PlacementRandomPackage, memmodel.AttackBusSaturation},
		{memmodel.PlacementRandomPackage, memmodel.AttackMemoryLock},
	}
	curves, err := runJobs(opts, len(variants), func(i int) ([]float64, error) {
		v := variants[i]
		points, err := memmodel.Sweep(memmodel.ProfileSpec{
			Host: cfg, VMs: maxVMs, Placement: v.placement, Kind: v.kind, LockDuty: 1.0,
		})
		if err != nil {
			return nil, fmt.Errorf("figures: fig3 %v/%v: %w", v.placement, v.kind, err)
		}
		curve := make([]float64, 0, maxVMs)
		for _, p := range points {
			curve = append(curve, p.PerVMMBps)
		}
		return curve, nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		res.Curves[v.placement.String()+"/"+v.kind.String()] = curves[i]
	}

	// Finding 1: one VM alone under bus-saturation placement does not
	// reach the bus capacity.
	single := res.Curves["same-package/bus-saturation"][0]
	res.SingleVMSaturates = single >= cfg.BusBandwidthMBps

	// Finding 3 across both placements and all VM counts.
	for _, placement := range []string{"same-package", "random-package"} {
		sat := res.Curves[placement+"/bus-saturation"]
		lock := res.Curves[placement+"/memory-lock"]
		for k := 0; k < maxVMs; k++ {
			if lock[k] >= sat[k] {
				res.LockBelowSaturation = false
			}
		}
	}

	if path := opts.path("fig3_bandwidth.csv"); path != "" {
		header := []string{"vms"}
		order := make([]string, 0, len(variants))
		for _, v := range variants {
			key := v.placement.String() + "/" + v.kind.String()
			order = append(order, key)
			header = append(header, key)
		}
		rows := make([][]string, 0, maxVMs)
		for k := 0; k < maxVMs; k++ {
			row := []string{strconv.Itoa(k + 1)}
			for _, key := range order {
				row = append(row, strconv.FormatFloat(res.Curves[key][k], 'f', 1, 64))
			}
			rows = append(rows, row)
		}
		if err := trace.WriteCSV(path, header, rows); err != nil {
			return nil, err
		}
	}
	return res, nil
}
