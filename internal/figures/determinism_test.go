package figures

import (
	"fmt"
	"testing"
)

// fig2Fingerprint runs the full Figure 2 pipeline (two cloud environments,
// complete experiment wiring: workload, attack bursts, memory model,
// queueing network) and serializes the result. fmt prints map keys in
// sorted order, so equal fingerprints mean equal results.
func fig2Fingerprint(t *testing.T, seed int64) string {
	t.Helper()
	res, err := Fig2(Options{OutDir: "", Quick: true, Seed: seed})
	if err != nil {
		t.Fatalf("Fig2(seed=%d): %v", seed, err)
	}
	return fmt.Sprintf("%#v", *res)
}

// TestFig2SeedDeterminism pins seed-for-seed reproducibility of a full
// figure pipeline end to end: same seed, byte-identical result; different
// seed, different result.
func TestFig2SeedDeterminism(t *testing.T) {
	a := fig2Fingerprint(t, 11)
	b := fig2Fingerprint(t, 11)
	if a != b {
		t.Errorf("same seed produced different Fig2 results:\n%s\nvs\n%s", a, b)
	}
	c := fig2Fingerprint(t, 12)
	if a == c {
		t.Error("different seeds produced byte-identical Fig2 results; randomness is not flowing from the seed")
	}
}
