package figures

import (
	"testing"
	"time"
)

func TestAblationBurstLength(t *testing.T) {
	opts := quickOpts(t)
	res, err := AblationBurstLength(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Damage grows with L (Eq 7): the shortest burst never finishes the
	// build-up stage, the longest clearly exceeds the goal.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if first.ClientP95 >= time.Second {
		t.Errorf("L=100ms already at p95 %v, expected below goal", first.ClientP95)
	}
	if last.ClientP95 < time.Second {
		t.Errorf("L=800ms p95 %v, expected above goal", last.ClientP95)
	}
	// Stealth cost grows with L: coarse utilization increases.
	if last.CoarseUtil <= first.CoarseUtil {
		t.Errorf("coarse utilization did not grow with L: %v -> %v", first.CoarseUtil, last.CoarseUtil)
	}
	requireFiles(t, opts.OutDir, "ablation_burst_length.csv")
}

func TestAblationInterval(t *testing.T) {
	opts := quickOpts(t)
	res, err := AblationInterval(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Sparser bursts (larger I) mean lower impact ρ = P_D / I: fewer
	// requests above the RTO floor, so the p95 collapses once the
	// affected fraction drops below 5%.
	last := res.Points[len(res.Points)-1] // I = 8s
	first := res.Points[0]                // I = 1s
	if last.ClientP95 >= first.ClientP95 {
		t.Errorf("p95 did not fall with sparser bursts: I=1s %v vs I=8s %v", first.ClientP95, last.ClientP95)
	}
	// And stealth improves: coarse utilization falls with I.
	if last.CoarseUtil >= first.CoarseUtil {
		t.Errorf("coarse utilization did not fall with I: %v vs %v", first.CoarseUtil, last.CoarseUtil)
	}
	requireFiles(t, opts.OutDir, "ablation_interval.csv")
}

func TestAblationMechanisms(t *testing.T) {
	opts := quickOpts(t)
	res, err := AblationMechanisms(opts)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationPoint{}
	for _, p := range res.Points {
		byLabel[p.Label] = p
	}
	full := byLabel["full"]
	noRetrans := byLabel["no-retransmit"]
	infQ := byLabel["infinite-queues"]
	tandem := byLabel["no-slot-holding"]

	// Retransmission is what lifts the client tail past 1 s.
	if full.ClientP99 < time.Second {
		t.Errorf("full model p99 %v, want >= 1s", full.ClientP99)
	}
	if noRetrans.ClientP99 >= time.Second {
		t.Errorf("without retransmission p99 %v, want < 1s", noRetrans.ClientP99)
	}
	// Dropping (finite queues) bounds queueing delay; with infinite
	// queues there are no drops at all.
	if infQ.Drops != 0 || tandem.Drops != 0 {
		t.Errorf("infinite-queue variants dropped: %d / %d", infQ.Drops, tandem.Drops)
	}
	if full.Drops == 0 {
		t.Error("full model did not drop")
	}
	requireFiles(t, opts.OutDir, "ablation_mechanisms.csv")
}

func TestAblationAdversaries(t *testing.T) {
	opts := quickOpts(t)
	res, err := AblationAdversaries(opts)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationPoint{}
	for _, p := range res.Points {
		byLabel[p.Label] = p
	}
	// One locking VM suffices for the goal (the paper's economy claim)...
	if byLabel["lock-x1"].ClientP95 < time.Second {
		t.Errorf("single locking adversary p95 %v, want >= 1s", byLabel["lock-x1"].ClientP95)
	}
	// ...while bus saturation with the same budget does nearly nothing.
	if byLabel["saturation-x1"].ClientP95 > 200*time.Millisecond {
		t.Errorf("single saturating adversary p95 %v, want small", byLabel["saturation-x1"].ClientP95)
	}
	// Even four saturating VMs stay far below the lock attack's damage.
	if byLabel["saturation-x4"].ClientP95 >= byLabel["lock-x1"].ClientP95 {
		t.Error("saturation with 4 VMs should not beat one locking VM")
	}
	requireFiles(t, opts.OutDir, "ablation_adversaries.csv")
}

func TestAblationServiceDistribution(t *testing.T) {
	opts := quickOpts(t)
	res, err := AblationServiceDistribution(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points", len(res.Points))
	}
	// Tail amplification is distribution-robust: every variant reaches
	// the damage goal because drops + retransmission, not service-time
	// variance, drive the client tail.
	for _, p := range res.Points {
		if p.ClientP95 < time.Second {
			t.Errorf("%s: p95 = %v, want >= 1s", p.Label, p.ClientP95)
		}
		if p.Drops == 0 {
			t.Errorf("%s: no drops", p.Label)
		}
	}
	requireFiles(t, opts.OutDir, "ablation_service_distribution.csv")
}

func TestAblationLoad(t *testing.T) {
	opts := quickOpts(t)
	res, err := AblationLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]AblationPoint{}
	for _, p := range res.Points {
		byLabel[p.Label] = p
	}
	// A quarter of the load starves condition 2: the same attack cannot
	// push the tail past the goal.
	if byLabel["clients=875"].ClientP95 >= time.Second {
		t.Errorf("quarter load p95 %v, want below goal", byLabel["clients=875"].ClientP95)
	}
	// At full and above-full population the attack succeeds.
	for _, label := range []string{"clients=3500", "clients=5000"} {
		if byLabel[label].ClientP95 < time.Second {
			t.Errorf("%s p95 %v, want >= 1s", label, byLabel[label].ClientP95)
		}
	}
	requireFiles(t, opts.OutDir, "ablation_load.csv")
}
