package figures

import (
	"fmt"
	"time"

	"memca/internal/core"
	"memca/internal/monitor"
)

// Fig10Result captures Figure 10: the same MySQL CPU signal through
// 1-minute, 1-second, and 50-millisecond monitoring, plus the Auto
// Scaling verdict.
type Fig10Result struct {
	// MaxByGranularity maps granularity to the largest sampled
	// utilization.
	MaxByGranularity map[time.Duration]float64
	// MeanCoarse is the 1-minute average (flat and moderate).
	MeanCoarse float64
	// AutoScalingTriggered reports whether the 85%/1-min trigger fired.
	AutoScalingTriggered bool
	// ScaleEventsLive is the number of events from the live scaling
	// group during the run (must be 0 for the bypass claim).
	ScaleEventsLive int
}

// Fig10 runs the 3-minute attack with a live Auto Scaling group attached
// to MySQL and exports the three sampled views.
func Fig10(opts Options) (*Fig10Result, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.Duration = opts.duration(3 * time.Minute)
	cfg.Scaling = &core.ScalingSpec{Trigger: monitor.DefaultAutoScaler(), MaxInstances: 4}
	x, err := core.NewExperiment(cfg)
	if err != nil {
		return nil, fmt.Errorf("figures: fig10: %w", err)
	}
	rep, err := x.Run()
	if err != nil {
		return nil, fmt.Errorf("figures: fig10 run: %w", err)
	}

	res := &Fig10Result{MaxByGranularity: make(map[time.Duration]float64)}
	res.ScaleEventsLive = len(rep.ScaleEvents)

	// Re-sample the exact busy signal at the three granularities over
	// the measured window.
	busy, err := x.Network().TierBusy(2)
	if err != nil {
		return nil, err
	}
	from := cfg.Warmup
	horizon := cfg.Duration
	source := func(wFrom, wTo time.Duration) float64 {
		return busy.WindowAverage(from+wFrom, from+wTo) / 2
	}
	names := map[time.Duration]string{
		monitor.GranularityCloud: "fig10a_cpu_1min.csv",
		monitor.GranularityUser:  "fig10b_cpu_1s.csv",
		monitor.GranularityFine:  "fig10c_cpu_50ms.csv",
	}
	for _, g := range []time.Duration{monitor.GranularityCloud, monitor.GranularityUser, monitor.GranularityFine} {
		sampler, err := monitor.NewSampler("cpu", g, source)
		if err != nil {
			return nil, err
		}
		buckets, err := sampler.Collect(horizon)
		if err != nil {
			return nil, err
		}
		max, sum := 0.0, 0.0
		for _, b := range buckets {
			if b.Mean > max {
				max = b.Mean
			}
			sum += b.Mean
		}
		res.MaxByGranularity[g] = max
		if g == monitor.GranularityCloud && len(buckets) > 0 {
			res.MeanCoarse = sum / float64(len(buckets))
		}
		if err := writeBuckets(opts.path(names[g]), buckets); err != nil {
			return nil, err
		}
	}

	// Offline trigger evaluation over the same signal.
	scaler, err := monitor.NewAutoScaler(monitor.DefaultAutoScaler())
	if err != nil {
		return nil, err
	}
	events, err := scaler.Evaluate(source, horizon)
	if err != nil {
		return nil, err
	}
	res.AutoScalingTriggered = len(events) > 0
	return res, nil
}
