package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/core"
	"memca/internal/monitor"
	"memca/internal/trace"
)

// DetectorCell is one (detector, granularity) cell of the comparison.
type DetectorCell struct {
	Detector    string
	Granularity time.Duration
	Alarms      int
}

// DetectorComparisonResult captures how the state-of-the-art interference
// detectors the paper cites (threshold, EWMA-anomaly, CUSUM change
// detection) fare against MemCA at the two monitoring granularities a
// cloud could afford — the quantitative form of the Section V-B claim
// that the attack "escapes the state-of-the-art detection mechanisms".
type DetectorComparisonResult struct {
	Cells []DetectorCell
	// BaselineFalseAlarms counts alarms the same detectors raise on the
	// clean (no-attack) signal at 1 s granularity: the noise floor that
	// forces operators to de-tune sensitivity.
	BaselineFalseAlarms int
}

// DetectorComparison runs the undefended attack and a clean baseline, and
// evaluates each detector on the victim's CPU signal at 1 s and 50 ms.
func DetectorComparison(opts Options) (*DetectorComparisonResult, error) {
	type signal struct {
		source  monitor.UtilizationSource
		horizon time.Duration
	}
	run := func(withAttack bool) (*signal, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Duration = opts.duration(2 * time.Minute)
		if !withAttack {
			cfg.Attack = nil
		}
		x, err := core.NewExperiment(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := x.Run(); err != nil {
			return nil, err
		}
		busy, err := x.Network().TierBusy(2)
		if err != nil {
			return nil, err
		}
		warmup := cfg.Warmup
		source := func(from, to time.Duration) float64 {
			return busy.WindowAverage(warmup+from, warmup+to) / 2
		}
		return &signal{source: source, horizon: cfg.Duration}, nil
	}

	// The attacked run and the clean baseline are independent simulations.
	// Plain runJobs (no arena): the returned signal sources close over the
	// runs' live busy integrators, which are read after the sweep returns.
	withAttack := []bool{true, false}
	signals, err := runJobs(opts, len(withAttack), func(i int) (*signal, error) {
		s, err := run(withAttack[i])
		if err != nil {
			label := "attack"
			if !withAttack[i] {
				label = "baseline"
			}
			return nil, fmt.Errorf("figures: detector comparison %s run: %w", label, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	attacked, clean := signals[0].source, signals[1].source
	horizon := signals[0].horizon

	detectors := []monitor.Detector{
		monitor.ThresholdDetector{Threshold: 0.9, MinConsecutive: 2},
		monitor.EWMADetector{Alpha: 0.2, K: 4, Warmup: 20},
		monitor.CUSUMDetector{Target: 0.55, Slack: 0.1, DecisionThreshold: 3},
	}
	res := &DetectorComparisonResult{}
	for _, g := range []time.Duration{monitor.GranularityUser, monitor.GranularityFine} {
		sampler, err := monitor.NewSampler("cpu", g, attacked)
		if err != nil {
			return nil, err
		}
		buckets, err := sampler.Collect(horizon)
		if err != nil {
			return nil, err
		}
		for _, det := range detectors {
			res.Cells = append(res.Cells, DetectorCell{
				Detector:    det.Name(),
				Granularity: g,
				Alarms:      len(det.Detect(buckets)),
			})
		}
	}

	// Noise floor: the same detectors on the clean signal at 1 s.
	cleanSampler, err := monitor.NewSampler("cpu", monitor.GranularityUser, clean)
	if err != nil {
		return nil, err
	}
	cleanBuckets, err := cleanSampler.Collect(horizon)
	if err != nil {
		return nil, err
	}
	for _, det := range detectors {
		res.BaselineFalseAlarms += len(det.Detect(cleanBuckets))
	}

	if path := opts.path("detector_comparison.csv"); path != "" {
		rows := make([][]string, 0, len(res.Cells))
		for _, c := range res.Cells {
			rows = append(rows, []string{
				c.Detector,
				c.Granularity.String(),
				strconv.Itoa(c.Alarms),
			})
		}
		if err := trace.WriteCSV(path, []string{"detector", "granularity", "alarms"}, rows); err != nil {
			return nil, err
		}
	}
	return res, nil
}
