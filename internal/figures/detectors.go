package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/core"
	"memca/internal/monitor"
	"memca/internal/sweep"
	"memca/internal/telemetry"
	"memca/internal/trace"
)

// Detector-comparison scenario labels.
const (
	ScenarioAttack     = "attack"
	ScenarioClean      = "clean"
	ScenarioFlashCrowd = "flash-crowd"
)

// detectorMinCount is the eligibility floor for attribution windows: a
// window with fewer closed traces has a share one retransmitted straggler
// away from 1.0, so both the tuner and the detector skip it.
const detectorMinCount = 8

// DetectorCell is one (scenario, detector, granularity) cell of the grid.
type DetectorCell struct {
	Scenario    string
	Detector    string
	Granularity time.Duration
	Alarms      int
}

// DetectorTuning records the auto-tuned CPU-signal detectors for one
// monitoring granularity.
type DetectorTuning struct {
	Granularity time.Duration
	CPU         monitor.TunedCPUDetectors
}

// DetectorComparisonResult captures how the state-of-the-art interference
// detectors the paper cites (threshold, EWMA-anomaly, CUSUM change
// detection) and the attribution detector built on the tracer's feature
// stream fare across three scenarios: the MemCA attack, a clean baseline,
// and a benign flash crowd. It is the quantitative form of the Section V-B
// claim that the attack "escapes the state-of-the-art detection
// mechanisms" — and of its converse: the resource actually amplifying
// latency (retransmission wait) separates the attack from organic load.
type DetectorComparisonResult struct {
	Cells []DetectorCell
	// Tuning holds the auto-tuned CPU detectors per granularity,
	// calibrated on a seed-derived clean replication (most sensitive
	// settings that stay silent on it).
	Tuning []DetectorTuning
	// Attribution is the tuned feature detector; its threshold comes from
	// the ROC sweep over seed-derived labeled replications.
	Attribution monitor.AttributionDetector
	// ROC is the full threshold sweep behind the attribution tuning.
	ROC []monitor.ROCPoint
}

// Alarms returns the alarm count of one grid cell.
func (r *DetectorComparisonResult) Alarms(scenario, detector string, g time.Duration) (int, bool) {
	for _, c := range r.Cells {
		if c.Scenario == scenario && c.Detector == detector && c.Granularity == g {
			return c.Alarms, true
		}
	}
	return 0, false
}

// LegacyCPUDetectors returns the hand-picked constants the comparison used
// before the auto-tuner existed. They are kept (and pinned by a regression
// test) as the historical reference point: a threshold nobody trips, an
// EWMA de-tuned to the noise floor, a CUSUM slack absorbing every burst.
func LegacyCPUDetectors() []monitor.Detector {
	return []monitor.Detector{
		monitor.ThresholdDetector{Threshold: 0.9, MinConsecutive: 2},
		monitor.EWMADetector{Alpha: 0.2, K: 4, Warmup: 20},
		monitor.CUSUMDetector{Target: 0.55, Slack: 0.1, DecisionThreshold: 3},
	}
}

// detectorScenarios enumerates the grid's three scenarios.
var detectorScenarios = []struct {
	name   string
	attack bool
	flash  bool
}{
	{ScenarioAttack, true, false},
	{ScenarioClean, false, false},
	{ScenarioFlashCrowd, false, true},
}

// detectorSignal is one scenario run's evidence: the victim-tier CPU
// signal the sampled detectors see and the tracer whose feature series the
// attribution detector consumes.
type detectorSignal struct {
	source  monitor.UtilizationSource
	horizon time.Duration
	tracer  *telemetry.Tracer
}

// runDetectorScenario runs one scenario with feature tracing enabled. The
// flash crowd raises the closed-loop population by 50% over the middle
// half of the run: enough to lift the 1 s CPU signal well above the clean
// band, while the queues (not drop cascades) absorb the surge — the benign
// overload a CPU detector cannot tell from an attack.
func runDetectorScenario(opts Options, seed int64, attack, flash bool) (*detectorSignal, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Duration = opts.duration(2 * time.Minute)
	if !attack {
		cfg.Attack = nil
	}
	spec := telemetry.DefaultSpec()
	spec.EventRing = 0
	spec.TailKeep = 0
	spec.HeadEvery = 0
	spec.HeadKeep = 0
	spec.Resolutions = nil
	spec.FeatureWindows = []time.Duration{monitor.GranularityFine, monitor.GranularityUser}
	spec.TailOver = time.Second
	cfg.Trace = &spec

	x, err := core.NewExperiment(cfg)
	if err != nil {
		return nil, err
	}
	if flash {
		surgeStart := cfg.Warmup + cfg.Duration/4
		surgeEnd := cfg.Warmup + 3*cfg.Duration/4
		crowd := cfg.Clients + cfg.Clients/2
		engine := x.Engine()
		engine.At(surgeStart, func() { x.Generator().SetPopulation(crowd, 5*time.Second) })
		engine.At(surgeEnd, func() { x.Generator().SetPopulation(cfg.Clients, 0) })
	}
	if _, err := x.Run(); err != nil {
		return nil, err
	}
	busy, err := x.Network().TierBusy(2)
	if err != nil {
		return nil, err
	}
	warmup := cfg.Warmup
	source := func(from, to time.Duration) float64 {
		return busy.WindowAverage(warmup+from, warmup+to) / 2
	}
	return &detectorSignal{source: source, horizon: cfg.Duration, tracer: x.Tracer()}, nil
}

// DetectorComparison evaluates the detector grid: three scenarios (attack,
// clean, flash crowd) × {tuned CPU detectors, attribution detector} ×
// {1 s, 50 ms}. Every run is replicated at a seed-derived tuning seed and
// the evaluation seed; the tuners see only the tuning replications, so the
// evaluated alarms are out-of-sample.
func DetectorComparison(opts Options) (*DetectorComparisonResult, error) {
	granularities := []time.Duration{monitor.GranularityUser, monitor.GranularityFine}

	// Jobs 0-2 are the tuning replications (seed-derived), jobs 3-5 the
	// evaluation runs. Plain runJobs (no arena): the returned signals
	// close over live busy integrators and tracer slabs, read after the
	// sweep returns.
	n := 2 * len(detectorScenarios)
	signals, err := runJobs(opts, n, func(i int) (*detectorSignal, error) {
		scen := detectorScenarios[i%len(detectorScenarios)]
		seed := opts.Seed
		label := "eval"
		if i < len(detectorScenarios) {
			seed = sweep.DeriveSeed(opts.Seed, 100+i)
			label = "tuning"
		}
		s, err := runDetectorScenario(opts, seed, scen.attack, scen.flash)
		if err != nil {
			return nil, fmt.Errorf("figures: detector comparison %s %s run: %w", scen.name, label, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	tune, eval := signals[:len(detectorScenarios)], signals[len(detectorScenarios):]
	tuneAttack, tuneClean, tuneFlash := tune[0], tune[1], tune[2]

	res := &DetectorComparisonResult{}

	// Calibrate the CPU detectors per granularity on the clean tuning
	// replication's signal.
	cpuTuned := make(map[time.Duration]monitor.TunedCPUDetectors, len(granularities))
	for _, g := range granularities {
		sampler, err := monitor.NewSampler("cpu", g, tuneClean.source)
		if err != nil {
			return nil, err
		}
		buckets, err := sampler.Collect(tuneClean.horizon)
		if err != nil {
			return nil, err
		}
		tuned, err := monitor.TuneCPUDetectors(buckets)
		if err != nil {
			return nil, fmt.Errorf("figures: tuning CPU detectors at %v: %w", g, err)
		}
		cpuTuned[g] = tuned
		res.Tuning = append(res.Tuning, DetectorTuning{Granularity: g, CPU: tuned})
	}

	// ROC-sweep the attribution threshold over the labeled tuning
	// replications, pooling both granularities so one threshold serves
	// the whole grid (the share is scale-free).
	pos := []*telemetry.FeatureSeries{}
	neg := []*telemetry.FeatureSeries{}
	for _, g := range granularities {
		pos = append(pos, tuneAttack.tracer.FeaturesAt(g))
		neg = append(neg, tuneClean.tracer.FeaturesAt(g), tuneFlash.tracer.FeaturesAt(g))
	}
	attribution, roc, err := monitor.TuneAttribution(pos, neg, detectorMinCount)
	if err != nil {
		return nil, fmt.Errorf("figures: tuning attribution detector: %w", err)
	}
	res.Attribution = attribution
	res.ROC = roc

	// Evaluate the grid on the out-of-sample runs.
	for si, scen := range detectorScenarios {
		sig := eval[si]
		for _, g := range granularities {
			sampler, err := monitor.NewSampler("cpu", g, sig.source)
			if err != nil {
				return nil, err
			}
			buckets, err := sampler.Collect(sig.horizon)
			if err != nil {
				return nil, err
			}
			detectors := append(cpuTuned[g].Detectors(),
				monitor.BridgeFeatures(attribution, sig.tracer.FeaturesAt(g)))
			for _, det := range detectors {
				res.Cells = append(res.Cells, DetectorCell{
					Scenario:    scen.name,
					Detector:    det.Name(),
					Granularity: g,
					Alarms:      len(det.Detect(buckets)),
				})
			}
		}
	}

	if path := opts.path("detector_comparison.csv"); path != "" {
		rows := make([][]string, 0, len(res.Cells))
		for _, c := range res.Cells {
			rows = append(rows, []string{
				c.Scenario,
				c.Detector,
				c.Granularity.String(),
				strconv.Itoa(c.Alarms),
			})
		}
		if err := trace.WriteCSV(path, []string{"scenario", "detector", "granularity", "alarms"}, rows); err != nil {
			return nil, err
		}
	}
	if path := opts.path("detector_roc.csv"); path != "" {
		rows := make([][]string, 0, len(res.ROC))
		for _, p := range res.ROC {
			rows = append(rows, []string{
				strconv.FormatFloat(p.Threshold, 'f', 6, 64),
				strconv.Itoa(p.TP),
				strconv.Itoa(p.FP),
				strconv.FormatFloat(p.TPR, 'f', 4, 64),
				strconv.FormatFloat(p.FPR, 'f', 4, 64),
			})
		}
		if err := trace.WriteCSV(path, []string{"threshold", "tp", "fp", "tpr", "fpr"}, rows); err != nil {
			return nil, err
		}
	}
	return res, nil
}
