package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/analytical"
	"memca/internal/attack"
	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/stats"
	"memca/internal/trace"
)

// fig6Attack is the attack parameterization of the model experiments
// (Figures 6 and 7): strong degradation, 500 ms bursts every 2 s.
func fig6Attack() (float64, attack.Params) {
	return 0.05, attack.Params{Intensity: 1, BurstLength: 500 * time.Millisecond, Interval: 2 * time.Second}
}

// Fig6Result captures Figure 6: cross-tier queue overflow under MemCA in
// the paper's system model versus the classic tandem queue.
type Fig6Result struct {
	// TandemMySQLMax is the peak MySQL occupancy in the tandem model —
	// all queued work sits in the last tier.
	TandemMySQLMax float64
	// TandemUpstreamMax is the peak occupancy across Apache and Tomcat
	// in the tandem model (stays near their own service needs).
	TandemUpstreamMax float64
	// RPCFilled reports whether every tier's queue hit its limit in the
	// RPC model (overflow propagated to the front).
	RPCFilled bool
	// RPCFillOrder holds the first-full times per tier (apache, tomcat,
	// mysql) of the RPC model's first burst; back-to-front propagation
	// means mysql <= tomcat <= apache.
	RPCFillOrder [3]time.Duration
}

// Fig6 runs both queueing models under identical ON-OFF attacks and
// writes per-tier occupancy time lines.
func Fig6(opts Options) (*Fig6Result, error) {
	d, params := fig6Attack()
	horizon := opts.duration(40 * time.Second)
	res := &Fig6Result{RPCFilled: true}
	m := analytical.RUBBoS3Tier()
	limits := [3]int{m.Tiers[0].Queue, m.Tiers[1].Queue, m.Tiers[2].Queue}

	type runResult struct {
		buckets [][4]float64 // t, apache, tomcat, mysql
		maxOcc  [3]float64
		fullAt  [3]time.Duration
	}
	run := func(a *stats.Arena, mode queueing.Mode, queueLimits [3]int) (*runResult, error) {
		e := sim.NewEngine(opts.Seed)
		n, sources, err := modelNetwork(e, a, mode, queueLimits)
		if err != nil {
			return nil, err
		}
		inj, err := attack.NewDirectInjector(n, 2, d)
		if err != nil {
			return nil, err
		}
		b, err := attack.NewBurster(e, inj, params)
		if err != nil {
			return nil, err
		}
		for _, s := range sources {
			s.Start()
		}
		// Warm up 5 s, then attack.
		e.Run(5 * time.Second)
		b.Start()
		attackStart := e.Now()

		rr := &runResult{}
		// Track first-full instants with a fine poller.
		var poll func()
		poll = func() {
			for i := 0; i < 3; i++ {
				st, err := n.TierState(i)
				if err != nil {
					return
				}
				occ := float64(st.InUse)
				if occ > rr.maxOcc[i] {
					rr.maxOcc[i] = occ
				}
				if queueLimits[i] != queueing.Infinite && rr.fullAt[i] == 0 && st.InUse >= queueLimits[i] {
					rr.fullAt[i] = e.Now() - attackStart
				}
			}
			if e.Now() < horizon {
				e.Schedule(5*time.Millisecond, poll)
			}
		}
		e.Schedule(0, poll)
		e.Run(horizon)
		b.Stop()
		for _, s := range sources {
			s.Stop()
		}

		// Export a 8-second window around the first post-warmup bursts
		// at 20 ms resolution.
		const width = 20 * time.Millisecond
		for t := attackStart; t < attackStart+8*time.Second; t += width {
			row := [4]float64{(t - attackStart).Seconds()}
			for i := 0; i < 3; i++ {
				occ, err := n.TierOccupancy(i)
				if err != nil {
					return nil, err
				}
				row[i+1] = occ.WindowAverage(t, t+width)
			}
			rr.buckets = append(rr.buckets, row)
		}
		return rr, nil
	}

	// Two independent models under the same attack: the tandem baseline
	// (infinite queues, work piles at the bottleneck) and the paper's
	// RPC model (finite descending queues, overflow propagates front).
	variants := []struct {
		name   string
		mode   queueing.Mode
		limits [3]int
	}{
		{"tandem", queueing.ModeTandem, [3]int{queueing.Infinite, queueing.Infinite, queueing.Infinite}},
		{"rpc", queueing.ModeNTierRPC, limits},
	}
	runs, err := runArenaJobs(opts, len(variants), func(a *stats.Arena, i int) (*runResult, error) {
		rr, err := run(a, variants[i].mode, variants[i].limits)
		if err != nil {
			return nil, fmt.Errorf("figures: fig6 %s: %w", variants[i].name, err)
		}
		return rr, nil
	})
	if err != nil {
		return nil, err
	}
	tandem, rpc := runs[0], runs[1]
	res.TandemMySQLMax = tandem.maxOcc[2]
	res.TandemUpstreamMax = tandem.maxOcc[0]
	if tandem.maxOcc[1] > res.TandemUpstreamMax {
		res.TandemUpstreamMax = tandem.maxOcc[1]
	}
	for i := 0; i < 3; i++ {
		if rpc.fullAt[i] == 0 {
			res.RPCFilled = false
		}
		res.RPCFillOrder[i] = rpc.fullAt[i]
	}

	writeRun := func(name string, rr *runResult) error {
		path := opts.path(name)
		if path == "" {
			return nil
		}
		rows := make([][]string, 0, len(rr.buckets))
		for _, b := range rr.buckets {
			rows = append(rows, []string{
				strconv.FormatFloat(b[0], 'f', 3, 64),
				strconv.FormatFloat(b[1], 'f', 2, 64),
				strconv.FormatFloat(b[2], 'f', 2, 64),
				strconv.FormatFloat(b[3], 'f', 2, 64),
			})
		}
		return trace.WriteCSV(path, []string{"t_s", "apache_q", "tomcat_q", "mysql_q"}, rows)
	}
	if err := writeRun("fig6_tandem.csv", tandem); err != nil {
		return nil, err
	}
	if err := writeRun("fig6_rpc.csv", rpc); err != nil {
		return nil, err
	}
	return res, nil
}
