package figures

import (
	"testing"
	"time"

	"memca/internal/monitor"
)

func TestDetectorComparison(t *testing.T) {
	opts := quickOpts(t)
	res, err := DetectorComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	alarms := func(scenario, det string, g time.Duration) int {
		n, ok := res.Alarms(scenario, det, g)
		if !ok {
			t.Fatalf("missing cell %s/%s/%v", scenario, det, g)
		}
		return n
	}
	granularities := []time.Duration{monitor.GranularityUser, monitor.GranularityFine}

	// The attribution detector detects the attack at both granularities
	// with zero false alarms on the clean baseline and the flash crowd —
	// the separation its auto-tuned retransmission-share threshold buys.
	for _, g := range granularities {
		if got := alarms(ScenarioAttack, "attribution", g); got == 0 {
			t.Errorf("attribution@%v missed the attack", g)
		}
		for _, benign := range []string{ScenarioClean, ScenarioFlashCrowd} {
			if got := alarms(benign, "attribution", g); got != 0 {
				t.Errorf("attribution@%v alarmed %d times on %s, want 0", g, got, benign)
			}
		}
	}

	// Every CPU-signal detector at user-facing (1 s) granularity either
	// misses the attack or cannot tell it from the benign flash crowd —
	// the Section V-B stealthiness claim in quantitative form.
	for _, det := range []string{"threshold", "ewma", "cusum"} {
		attack := alarms(ScenarioAttack, det, monitor.GranularityUser)
		flash := alarms(ScenarioFlashCrowd, det, monitor.GranularityUser)
		if attack > 0 && flash == 0 {
			t.Errorf("%s@1s detected the attack (%d alarms) while staying silent on the flash crowd", det, attack)
		}
	}

	// The tuned share threshold separates cleanly: strictly inside (0, 1)
	// and reached with no false positives somewhere on the ROC.
	if thr := res.Attribution.ShareThreshold; thr <= 0 || thr >= 1 {
		t.Errorf("attribution threshold %v outside (0, 1)", thr)
	}
	perfect := false
	for _, p := range res.ROC {
		if p.FP == 0 && p.TP > 0 {
			perfect = true
			break
		}
	}
	if !perfect {
		t.Error("no ROC operating point with TP > 0 and FP == 0")
	}
	if len(res.Tuning) != 2 {
		t.Fatalf("got %d tuning entries, want 2", len(res.Tuning))
	}

	requireFiles(t, opts.OutDir, "detector_comparison.csv", "detector_roc.csv")
}

// TestLegacyCPUDetectorConstants pins the hand-picked settings the
// comparison shipped with before the auto-tuner: they remain the
// documented historical reference point and must not drift.
func TestLegacyCPUDetectorConstants(t *testing.T) {
	legacy := LegacyCPUDetectors()
	if len(legacy) != 3 {
		t.Fatalf("got %d legacy detectors, want 3", len(legacy))
	}
	th, ok := legacy[0].(monitor.ThresholdDetector)
	if !ok || th.Threshold != 0.9 || th.MinConsecutive != 2 {
		t.Errorf("legacy threshold detector = %#v, want Threshold 0.9 MinConsecutive 2", legacy[0])
	}
	ew, ok := legacy[1].(monitor.EWMADetector)
	if !ok || ew.Alpha != 0.2 || ew.K != 4 || ew.Warmup != 20 {
		t.Errorf("legacy EWMA detector = %#v, want Alpha 0.2 K 4 Warmup 20", legacy[1])
	}
	cu, ok := legacy[2].(monitor.CUSUMDetector)
	if !ok || cu.Target != 0.55 || cu.Slack != 0.1 || cu.DecisionThreshold != 3 {
		t.Errorf("legacy CUSUM detector = %#v, want Target 0.55 Slack 0.1 DecisionThreshold 3", legacy[2])
	}
}
