package figures

import (
	"testing"
	"time"

	"memca/internal/monitor"
)

func TestDetectorComparison(t *testing.T) {
	opts := quickOpts(t)
	res, err := DetectorComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	alarms := func(det string, g time.Duration) int {
		for _, c := range res.Cells {
			if c.Detector == det && c.Granularity == g {
				return c.Alarms
			}
		}
		t.Fatalf("missing cell %s/%v", det, g)
		return 0
	}

	// At 1 s granularity the hard-threshold detector stays quiet (the
	// Section V-B claim); at 50 ms the millibottlenecks are plain.
	if got := alarms("threshold", monitor.GranularityUser); got != 0 {
		t.Errorf("threshold@1s alarmed %d times, want 0", got)
	}
	if got := alarms("threshold", monitor.GranularityFine); got < 5 {
		t.Errorf("threshold@50ms alarmed %d times, want many", got)
	}
	// Every detector sees more at fine granularity than at coarse.
	for _, det := range []string{"threshold", "ewma", "cusum"} {
		coarse := alarms(det, monitor.GranularityUser)
		fine := alarms(det, monitor.GranularityFine)
		if fine < coarse {
			t.Errorf("%s: fine alarms %d below coarse %d", det, fine, coarse)
		}
	}
	requireFiles(t, opts.OutDir, "detector_comparison.csv")
}
