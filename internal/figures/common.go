// Package figures regenerates every table and figure of the paper's
// evaluation: each FigN function runs the corresponding experiment at full
// scale, writes the plot-ready CSV artifacts under an output directory,
// and returns the key scalars so benchmarks and tests can assert the
// paper's qualitative claims (who wins, by what factor, where the
// crossovers fall).
package figures

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"memca/internal/analytical"
	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/stats"
	"memca/internal/sweep"
	"memca/internal/trace"
	"memca/internal/workload"
)

// Options control figure generation.
type Options struct {
	// OutDir receives CSV artifacts; empty disables file output.
	OutDir string
	// Quick shrinks run horizons (~4x) for smoke tests and benchmarks.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Parallel bounds the worker count for multi-run drivers: 0 means
	// one worker per available CPU, 1 forces the serial path. Results
	// and CSV artifacts are byte-identical for every value (see
	// internal/sweep).
	Parallel int
	// Progress, when non-nil, is called after each independent run of a
	// multi-run driver with (completed, total) counts. Completion order
	// is nondeterministic under parallelism; this is a display hook.
	Progress func(done, total int)
}

// DefaultOptions returns full-scale generation into out/.
func DefaultOptions() Options {
	return Options{OutDir: "out", Seed: 1}
}

// duration returns full, or full/4 in quick mode (minimum 20 s).
func (o Options) duration(full time.Duration) time.Duration {
	if !o.Quick {
		return full
	}
	d := full / 4
	if d < 20*time.Second {
		d = 20 * time.Second
	}
	return d
}

// runJobs fans one figure driver's independent runs out over the sweep
// engine and returns the results in job-index order, which keeps every
// scalar and CSV artifact byte-identical to the serial path regardless
// of Options.Parallel. Jobs must be pure functions of their index: each
// builds its own engine (or pure model) and shares no mutable state.
func runJobs[T any](o Options, n int, job func(index int) (T, error)) ([]T, error) {
	opts := sweep.Options{Workers: o.Parallel, Progress: o.Progress}
	return sweep.Run(context.Background(), opts, n, func(_ context.Context, i int) (T, error) {
		return job(i)
	})
}

// runArenaJobs is runJobs with one stats arena per sweep worker: the job
// receives the worker's arena, which is reset as soon as the job returns,
// so every run after a worker's first records into warm slabs. Jobs must
// therefore copy anything they keep out of arena-backed objects before
// returning — results that alias live experiment state (tier integrators,
// generator series, tracer slabs) belong on plain runJobs instead.
func runArenaJobs[T any](o Options, n int, job func(a *stats.Arena, index int) (T, error)) ([]T, error) {
	opts := sweep.Options{Workers: o.Parallel, Progress: o.Progress}
	return sweep.RunState(context.Background(), opts, n, stats.GetArena, stats.PutArena,
		func(_ context.Context, a *stats.Arena, i int) (T, error) {
			defer a.Reset()
			return job(a, i)
		})
}

// path joins OutDir with name; it returns "" when output is disabled.
func (o Options) path(name string) string {
	if o.OutDir == "" {
		return ""
	}
	return filepath.Join(o.OutDir, name)
}

// writeCurves writes a percentile-curve CSV unless output is disabled.
func writeCurves(path string, percentiles []float64, order []string, curves map[string][]time.Duration) error {
	if path == "" {
		return nil
	}
	return trace.PercentileCurveCSV(path, percentiles, order, curves)
}

// writeBuckets writes a bucket CSV unless output is disabled.
func writeBuckets(path string, buckets []stats.Bucket) error {
	if path == "" {
		return nil
	}
	return trace.BucketsCSV(path, buckets)
}

// writeSeries writes a raw series CSV unless output is disabled.
func writeSeries(path string, ts *stats.TimeSeries) error {
	if path == "" {
		return nil
	}
	return trace.SeriesCSV(path, ts)
}

// modelNetwork builds the 3-tier queueing network matching the analytical
// RUBBoS model (one class per tier depth, rates from the model), used by
// the model-level experiments of Figures 6 and 7. mode selects tandem or
// RPC coupling; queueLimits overrides the per-tier limits (0 = Infinite).
// a, when non-nil, backs the network's per-tier stats and the sources'
// client samples (see stats.Arena).
func modelNetwork(e *sim.Engine, a *stats.Arena, mode queueing.Mode, queueLimits [3]int) (*queueing.Network, []*queueing.Source, error) {
	m := analytical.RUBBoS3Tier()
	tiers := make([]queueing.TierConfig, 3)
	for i, t := range m.Tiers {
		servers := 2
		if i == 2 {
			servers = 2
		}
		tiers[i] = queueing.TierConfig{
			Name:       t.Name,
			QueueLimit: queueLimits[i],
			Servers:    servers,
			Service:    sim.NewExponential(time.Duration(float64(servers) / t.CapacityOFF * float64(time.Second))),
		}
	}
	classes := []queueing.Class{
		{Name: "to-apache", Depth: 0},
		{Name: "to-tomcat", Depth: 1},
		{Name: "to-mysql", Depth: 2},
	}
	n, err := queueing.New(e, queueing.Config{Mode: mode, Tiers: tiers, Classes: classes, Arena: a})
	if err != nil {
		return nil, nil, err
	}
	sources := make([]*queueing.Source, 0, 3)
	for i, t := range m.Tiers {
		if t.ArrivalRate <= 0 {
			continue
		}
		src, err := queueing.NewPoissonSource(n, queueing.SourceConfig{
			Class:      i,
			Rate:       t.ArrivalRate,
			Retransmit: queueing.DefaultRetransmit(),
		})
		if err != nil {
			return nil, nil, err
		}
		sources = append(sources, src)
	}
	return n, sources, nil
}

// rubbosTierNames returns the canonical tier labels.
func rubbosTierNames() []string { return []string{"apache", "tomcat", "mysql"} }

// checkTiersMatch guards figure code against topology drift.
func checkTiersMatch() error {
	tiers := workload.RUBBoSTiers()
	if len(tiers) != 3 {
		return fmt.Errorf("figures: expected 3 RUBBoS tiers, got %d", len(tiers))
	}
	return nil
}
