package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/core"
	"memca/internal/stats"
	"memca/internal/trace"
)

// Fig9Result captures Figure 9: the 8-second fine-grained (50 ms) snapshot
// of a MemCA attack in flight — attack bursts, transient MySQL CPU
// saturation, cross-tier queue propagation, and client response times.
type Fig9Result struct {
	// BurstsInWindow counts attack bursts inside the snapshot window.
	BurstsInWindow int
	// MySQLSaturated reports that the 50 ms view hit ~100% CPU during
	// bursts.
	MySQLSaturated bool
	// QueuePropagated reports that all three tiers' queues rose during
	// bursts.
	QueuePropagated bool
	// MaxClientRT is the worst client response time in the window.
	MaxClientRT time.Duration
}

// Fig9 runs the standard attack with fine-grained recording and exports
// the four panels over an 8-second window.
func Fig9(opts Options) (*Fig9Result, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.Duration = opts.duration(time.Minute)
	cfg.RecordSeries = true
	x, err := core.NewExperiment(cfg)
	if err != nil {
		return nil, fmt.Errorf("figures: fig9: %w", err)
	}
	if _, err := x.Run(); err != nil {
		return nil, fmt.Errorf("figures: fig9 run: %w", err)
	}

	// Window: 8 seconds starting shortly after measurement begins.
	start := cfg.Warmup + 4*time.Second
	end := start + 8*time.Second
	const width = 50 * time.Millisecond
	res := &Fig9Result{}

	// Panel (a): adversary VM activity (the attack bursts).
	adversary := x.Burster().Busy()
	var panelA []stats.Bucket
	for t := start; t < end; t += width {
		u := adversary.Utilization(t, t+width)
		panelA = append(panelA, stats.Bucket{Start: t - start, Mean: u, Max: u, Min: u, Count: 1})
	}
	// Count rising edges for BurstsInWindow.
	prev := 0.0
	for _, b := range panelA {
		if b.Mean > 0.5 && prev <= 0.5 {
			res.BurstsInWindow++
		}
		prev = b.Mean
	}
	if err := writeBuckets(opts.path("fig9a_attack_bursts.csv"), panelA); err != nil {
		return nil, err
	}

	// Panel (b): MySQL CPU at 50 ms.
	busy, err := x.Network().TierBusy(2)
	if err != nil {
		return nil, err
	}
	var panelB []stats.Bucket
	maxU := 0.0
	for t := start; t < end; t += width {
		u := busy.WindowAverage(t, t+width) / 2 // 2 servers
		if u > maxU {
			maxU = u
		}
		panelB = append(panelB, stats.Bucket{Start: t - start, Mean: u, Max: u, Min: u, Count: 1})
	}
	res.MySQLSaturated = maxU > 0.99
	if err := writeBuckets(opts.path("fig9b_mysql_cpu.csv"), panelB); err != nil {
		return nil, err
	}

	// Panel (c): queued requests per tier.
	rows := make([][]string, 0, int(end-start)/int(width))
	peaks := [3]float64{}
	for t := start; t < end; t += width {
		row := []string{strconv.FormatFloat((t - start).Seconds(), 'f', 3, 64)}
		for i := 0; i < 3; i++ {
			occ, err := x.Network().TierOccupancy(i)
			if err != nil {
				return nil, err
			}
			v := occ.WindowAverage(t, t+width)
			if v > peaks[i] {
				peaks[i] = v
			}
			row = append(row, strconv.FormatFloat(v, 'f', 2, 64))
		}
		rows = append(rows, row)
	}
	res.QueuePropagated = peaks[0] > 30 && peaks[1] > 30 && peaks[2] > 20
	if path := opts.path("fig9c_queues.csv"); path != "" {
		if err := trace.WriteCSV(path, []string{"t_s", "apache_q", "tomcat_q", "mysql_q"}, rows); err != nil {
			return nil, err
		}
	}

	// Panel (d): client response times in the window.
	rtSeries := x.Generator().RTSeries()
	window := stats.NewTimeSeries("client-rt-window")
	for _, p := range rtSeries.Points {
		if p.T >= start && p.T < end {
			window.Add(p.T-start, p.V)
			if rt := time.Duration(p.V * float64(time.Second)); rt > res.MaxClientRT {
				res.MaxClientRT = rt
			}
		}
	}
	if err := writeSeries(opts.path("fig9d_client_rt.csv"), window); err != nil {
		return nil, err
	}
	return res, nil
}
