package figures

import "testing"

// TestFigAttribution pins the paper's tail-decomposition claim on live
// runs: under attack the p99 tail is wait-dominated (front-tier
// retransmission plus queueing), while the clean baseline's tail is
// service-dominated — per-tier latency monitoring sees healthy service
// times either way.
func TestFigAttribution(t *testing.T) {
	opts := quickOpts(t)
	res, err := FigAttribution(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackedTailTraces == 0 {
		t.Fatal("attacked run sampled no tail traces at or above p99")
	}
	if res.AttackedWaitShare < 0.5 {
		t.Errorf("attacked >=p99 tail wait share = %.3f, want >= 0.5 (drop/retransmission wait plus queueing should dominate)", res.AttackedWaitShare)
	}
	if res.BaselineServiceShare <= 0.5 {
		t.Errorf("baseline >=p99 tail service share = %.3f, want > 0.5 (clean tail should be service-dominated)", res.BaselineServiceShare)
	}
	if res.AttackedRetransShare > res.AttackedWaitShare {
		t.Errorf("retransmission share %.3f exceeds total wait share %.3f", res.AttackedRetransShare, res.AttackedWaitShare)
	}
	if res.AttackedP99 <= res.BaselineP99 {
		t.Errorf("attacked p99 %v not above baseline p99 %v", res.AttackedP99, res.BaselineP99)
	}
	// Monitoring blindness: the attacked run's transient spikes must be
	// visible at 50ms and averaged away at 1s.
	if res.AttackedBlindness <= 1.2 {
		t.Errorf("attacked blindness ratio = %.2f, want > 1.2 (fine-resolution peak should exceed coarse)", res.AttackedBlindness)
	}
	requireFiles(t, opts.OutDir,
		"attribution.csv",
		"attribution_tail_attacked.csv",
		"attribution_tail_baseline.csv",
		"attribution_timeline_attacked_50ms.csv",
		"attribution_timeline_attacked_1000ms.csv",
		"attribution_timeline_baseline_50ms.csv",
		"attribution_timeline_baseline_1000ms.csv",
	)
}
