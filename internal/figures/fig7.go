package figures

import (
	"fmt"
	"time"

	"memca/internal/analytical"
	"memca/internal/attack"
	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/stats"
)

// fig7Percentiles is the x-axis grid of the Figure 7 tail plots.
var fig7Percentiles = []float64{50, 60, 70, 75, 80, 85, 90, 92, 94, 95, 96, 97, 98, 99, 99.5, 99.9}

// Fig7Case names the three model variants of Figure 7.
type Fig7Case string

// Figure 7 cases.
const (
	// Fig7Tandem is case (a): tandem queues, infinite MySQL queue —
	// per-tier percentile curves nearly overlap.
	Fig7Tandem Fig7Case = "tandem"
	// Fig7InfiniteFront is case (b): the attack model with an infinite
	// Apache queue — tails amplify by cross-tier overflow, no drops.
	Fig7InfiniteFront Fig7Case = "infinite-front"
	// Fig7Finite is case (c): finite queues everywhere — drops and TCP
	// retransmissions push the client tail past every tier.
	Fig7Finite Fig7Case = "finite"
)

// Fig7CaseResult summarizes one variant.
type Fig7CaseResult struct {
	ClientP99 time.Duration
	MySQLP99  time.Duration
	// SpreadP99 is client p99 minus mysql p99: the amplification gap.
	SpreadP99 time.Duration
	Drops     uint64
}

// Fig7Result captures Figure 7: tail amplification across the three model
// variants under the same attack.
type Fig7Result struct {
	Cases map[Fig7Case]Fig7CaseResult
}

// Fig7 runs the three variants and writes one percentile-curve CSV per
// case.
func Fig7(opts Options) (*Fig7Result, error) {
	d, params := fig6Attack()
	horizon := opts.duration(3 * time.Minute)
	m := analytical.RUBBoS3Tier()
	res := &Fig7Result{Cases: make(map[Fig7Case]Fig7CaseResult)}

	variants := []struct {
		name   Fig7Case
		mode   queueing.Mode
		limits [3]int
	}{
		{Fig7Tandem, queueing.ModeTandem, [3]int{queueing.Infinite, queueing.Infinite, queueing.Infinite}},
		{Fig7InfiniteFront, queueing.ModeNTierRPC, [3]int{queueing.Infinite, m.Tiers[1].Queue, m.Tiers[2].Queue}},
		{Fig7Finite, queueing.ModeNTierRPC, [3]int{m.Tiers[0].Queue, m.Tiers[1].Queue, m.Tiers[2].Queue}},
	}
	// Each variant is an independent simulation; run them over the sweep
	// engine, then summarize and write CSVs serially in variant order.
	type caseRun struct {
		curves map[string][]time.Duration
		order  []string
		result Fig7CaseResult
	}
	runs, err := runArenaJobs(opts, len(variants), func(a *stats.Arena, vi int) (*caseRun, error) {
		v := variants[vi]
		e := sim.NewEngine(opts.Seed)
		n, sources, err := modelNetwork(e, a, v.mode, v.limits)
		if err != nil {
			return nil, fmt.Errorf("figures: fig7 %s: %w", v.name, err)
		}
		inj, err := attack.NewDirectInjector(n, 2, d)
		if err != nil {
			return nil, err
		}
		b, err := attack.NewBurster(e, inj, params)
		if err != nil {
			return nil, err
		}
		for _, s := range sources {
			s.Start()
		}
		e.Run(5 * time.Second)
		n.ResetTierSamples()
		b.Start()
		e.Run(5*time.Second + horizon)
		b.Stop()
		for _, s := range sources {
			s.Stop()
		}
		if err := e.RunAll(100_000_000); err != nil {
			return nil, fmt.Errorf("figures: fig7 %s drain: %w", v.name, err)
		}

		// Client RT: merge the per-source samples (deep class dominates).
		client := stats.NewSampleIn(a, 4096)
		for _, s := range sources {
			for _, rt := range s.ClientRT().Values() {
				client.Add(rt)
			}
		}
		cr := &caseRun{
			curves: map[string][]time.Duration{"client": client.PercentileCurve(fig7Percentiles)},
			order:  []string{"client"},
		}
		for i, name := range rubbosTierNames() {
			sample, err := n.TierRT(i)
			if err != nil {
				return nil, err
			}
			cr.curves[name] = sample.PercentileCurve(fig7Percentiles)
			cr.order = append(cr.order, name)
		}

		mysqlSample, err := n.TierRT(2)
		if err != nil {
			return nil, err
		}
		cr.result = Fig7CaseResult{
			ClientP99: client.Percentile(99),
			MySQLP99:  mysqlSample.Percentile(99),
			Drops:     n.Drops(),
		}
		cr.result.SpreadP99 = cr.result.ClientP99 - cr.result.MySQLP99
		return cr, nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		cr := runs[i]
		if err := writeCurves(opts.path(fmt.Sprintf("fig7_%s.csv", v.name)), fig7Percentiles, cr.order, cr.curves); err != nil {
			return nil, err
		}
		res.Cases[v.name] = cr.result
	}
	return res, nil
}
