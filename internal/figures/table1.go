package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/analytical"
	"memca/internal/trace"
)

// Table1Result captures Table I plus the analytical predictions built on
// it (Equations 2-10) for the evaluation's attack parameters, and an
// inverse-planning round trip.
type Table1Result struct {
	// Model echoes the system parameters.
	Model analytical.Model
	// Prediction is the closed-form outcome for D from the memory model
	// under full locking, L = 500 ms, I = 2 s.
	Prediction analytical.Prediction
	// PlannedAttack is the weakest attack PlanAttack finds for the
	// paper's goal (ρ >= 0.05, P_MB < 1 s at I = 2 s).
	PlannedAttack analytical.Attack
	// PlannedOK reports whether planning succeeded.
	PlannedOK bool
}

// Table1 evaluates and exports the analytical model.
func Table1(opts Options) (*Table1Result, error) {
	m := analytical.RUBBoS3Tier()
	attack := analytical.Attack{D: 0.1, L: 500 * time.Millisecond, I: 2 * time.Second}
	pred, err := m.Predict(attack)
	if err != nil {
		return nil, fmt.Errorf("figures: table1 predict: %w", err)
	}
	res := &Table1Result{Model: m, Prediction: pred}

	planned, err := analytical.PlanAttack(m, analytical.Goal{
		MinImpact:          0.05,
		MaxMillibottleneck: time.Second,
	}, 2*time.Second)
	if err == nil {
		res.PlannedAttack = planned
		res.PlannedOK = true
	}

	if path := opts.path("table1_model.csv"); path != "" {
		rows := [][]string{}
		for i, t := range m.Tiers {
			fill := "-"
			if pred.FillTimes[i] >= 0 {
				fill = strconv.FormatFloat(pred.FillTimes[i].Seconds()*1000, 'f', 1, 64)
			}
			rows = append(rows, []string{
				t.Name,
				strconv.Itoa(t.Queue),
				strconv.FormatFloat(t.CapacityOFF, 'f', 0, 64),
				strconv.FormatFloat(t.ArrivalRate, 'f', 0, 64),
				fill,
			})
		}
		if err := trace.WriteCSV(path, []string{"tier", "queue_Q", "capacity_C_off", "arrival_lambda", "fill_ms"}, rows); err != nil {
			return nil, err
		}
	}
	if path := opts.path("table1_prediction.csv"); path != "" {
		rows := [][]string{
			{"C_n_ON_req_s", strconv.FormatFloat(pred.CnON, 'f', 1, 64)},
			{"total_fill_ms", strconv.FormatFloat(pred.TotalFill.Seconds()*1000, 'f', 1, 64)},
			{"damage_period_ms", strconv.FormatFloat(pred.DamagePeriod.Seconds()*1000, 'f', 1, 64)},
			{"drain_ms", strconv.FormatFloat(pred.DrainTime.Seconds()*1000, 'f', 1, 64)},
			{"millibottleneck_ms", strconv.FormatFloat(pred.Millibottleneck.Seconds()*1000, 'f', 1, 64)},
			{"impact_rho", strconv.FormatFloat(pred.Impact, 'f', 4, 64)},
		}
		if err := trace.WriteCSV(path, []string{"quantity", "value"}, rows); err != nil {
			return nil, err
		}
	}
	return res, nil
}
