package figures

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"memca/internal/dsweep"
	"memca/internal/sweep"
)

// distEquivalenceDrivers are the drivers the sharded-vs-local contract is
// pinned at: the headline figure, one ablation sweep, and the planner
// validation (the largest job grid).
var distEquivalenceDrivers = []string{"fig2", "ablation-interval", "planner"}

// distShardCounts cover the serial case, the power-of-two ladder, and
// more shards than some drivers have jobs (empty shards must merge too).
var distShardCounts = []int{1, 2, 4, 8}

// distReference runs a driver fully in-process and returns the canonical
// merged encoding of its job records plus the scalar fingerprint of its
// finalized result (CSV artifacts land in o.OutDir).
func distReference(t *testing.T, name string, o Options) ([]byte, string) {
	t.Helper()
	d, ok := LookupDist(name)
	if !ok {
		t.Fatalf("no dist driver %q", name)
	}
	r, err := d.New(o)
	if err != nil {
		t.Fatal(err)
	}
	payloads, err := runArenaJobs(o, r.Jobs, r.Job)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := r.Finalize(payloads)
	if err != nil {
		t.Fatal(err)
	}
	return sweep.EncodeRecords(payloads), fingerprint(res)
}

// writeDistManifest builds and persists a manifest for the driver into a
// fresh temp dir, returning the stamped (hashed) manifest.
func writeDistManifest(t *testing.T, name string, o Options, shards int) *dsweep.Manifest {
	t.Helper()
	dir := t.TempDir()
	m, err := NewManifest(name, o, shards, filepath.Join(dir, "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	if err := dsweep.WriteManifest(filepath.Join(dir, "manifest.json"), m); err != nil {
		t.Fatal(err)
	}
	return m
}

// runAllShards runs every shard of the manifest concurrently (each shard
// is an independent worker with its own artifact file and arena).
func runAllShards(t *testing.T, m *dsweep.Manifest) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, m.Shards)
	for s := 0; s < m.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = RunShard(context.Background(), m, s, dsweep.ShardOptions{})
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
}

// TestDistShardEquivalence pins the fabric's core contract at the figure
// level: for every shard count, the merged artifact is byte-identical to
// the canonical encoding of an in-process run, and the finalized scalars
// and CSV artifacts are identical too. A regression here means the shard
// plan, the record codec, or a driver's job purity leaked into results.
func TestDistShardEquivalence(t *testing.T) {
	for _, name := range distEquivalenceDrivers {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			refDir := t.TempDir()
			refMerged, refPrint := distReference(t, name, Options{OutDir: refDir, Quick: true, Seed: 7})
			refFiles := readArtifacts(t, refDir)
			if len(refFiles) == 0 {
				t.Fatalf("%s reference run wrote no artifacts", name)
			}
			for _, shards := range distShardCounts {
				outDir := t.TempDir()
				m := writeDistManifest(t, name, Options{OutDir: outDir, Quick: true, Seed: 7}, shards)
				runAllShards(t, m)
				if err := dsweep.Merge(m); err != nil {
					t.Fatalf("%s with %d shards: merge: %v", name, shards, err)
				}
				merged, err := os.ReadFile(m.MergedPath())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(merged, refMerged) {
					t.Errorf("%s with %d shards: merged artifact differs from in-process run (%d vs %d bytes)",
						name, shards, len(merged), len(refMerged))
				}
				res, _, err := RunDistributed(m)
				if err != nil {
					t.Fatalf("%s with %d shards: finalize: %v", name, shards, err)
				}
				if got := fingerprint(res); got != refPrint {
					t.Errorf("%s with %d shards: scalars differ:\n%s\nvs\n%s", name, shards, got, refPrint)
				}
				files := readArtifacts(t, outDir)
				if len(files) != len(refFiles) {
					t.Errorf("%s with %d shards wrote %d artifacts, in-process wrote %d", name, shards, len(files), len(refFiles))
				}
				for fname, ref := range refFiles {
					got, ok := files[fname]
					if !ok {
						t.Errorf("%s with %d shards did not write %s", name, shards, fname)
						continue
					}
					if !bytes.Equal(got, ref) {
						t.Errorf("%s with %d shards: artifact %s differs from in-process run", name, shards, fname)
					}
				}
			}
		})
	}
}

// TestDistKillResumeEquivalence kills one worker mid-shard (the
// deterministic injected crash standing in for kill -9), verifies the
// partial state refuses to merge, resumes the shard, and requires the
// final merged artifact and CSVs to be byte-identical to an in-process
// run — the crash must leave no trace in the results.
func TestDistKillResumeEquivalence(t *testing.T) {
	for _, name := range distEquivalenceDrivers {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			refDir := t.TempDir()
			refMerged, refPrint := distReference(t, name, Options{OutDir: refDir, Quick: true, Seed: 7})
			refFiles := readArtifacts(t, refDir)

			const shards = 3
			outDir := t.TempDir()
			m := writeDistManifest(t, name, Options{OutDir: outDir, Quick: true, Seed: 7}, shards)

			// Kill shard 0 partway: after one record when it owns several
			// jobs, right after the durable header when it owns one.
			budget := 0
			if sweep.ShardSize(m.Jobs, m.Shards, 0) > 1 {
				budget = 1
			}
			err := RunShard(context.Background(), m, 0, dsweep.ShardOptions{InjectCrash: true, MaxRecords: budget})
			if !errors.Is(err, dsweep.ErrCrashInjected) {
				t.Fatalf("crashing run returned %v, want ErrCrashInjected", err)
			}
			for s := 1; s < shards; s++ {
				if err := RunShard(context.Background(), m, s, dsweep.ShardOptions{}); err != nil {
					t.Fatalf("shard %d: %v", s, err)
				}
			}
			if err := dsweep.Merge(m); err == nil {
				t.Fatal("merge succeeded with a crashed, incomplete shard")
			}

			// Resume: the worker picks up from the durable checkpoint.
			recovered := -1
			err = RunShard(context.Background(), m, 0, dsweep.ShardOptions{
				Progress: func(done, total int) {
					if recovered < 0 {
						recovered = done
					}
				},
			})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if budget > 0 && recovered < budget {
				t.Errorf("resume re-ran checkpointed jobs: first progress %d, want >= %d", recovered, budget)
			}
			if err := dsweep.Merge(m); err != nil {
				t.Fatalf("merge after resume: %v", err)
			}
			merged, err := os.ReadFile(m.MergedPath())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(merged, refMerged) {
				t.Errorf("%s: merged artifact after kill+resume differs from in-process run", name)
			}
			res, _, err := RunDistributed(m)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(res); got != refPrint {
				t.Errorf("%s: scalars after kill+resume differ:\n%s\nvs\n%s", name, got, refPrint)
			}
			for fname, ref := range refFiles {
				got, err := os.ReadFile(filepath.Join(outDir, fname))
				if err != nil {
					t.Errorf("%s: missing artifact %s after kill+resume: %v", name, fname, err)
					continue
				}
				if !bytes.Equal(got, ref) {
					t.Errorf("%s: artifact %s differs after kill+resume", name, fname)
				}
			}
		})
	}
}
