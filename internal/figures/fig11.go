package figures

import (
	"fmt"
	"time"

	"memca/internal/core"
	"memca/internal/memmodel"
	"memca/internal/monitor"
)

// Fig11Result captures Figure 11: OProfile-style LLC-miss monitoring of
// the MySQL host under the two attack approaches.
type Fig11Result struct {
	// SaturationPeriodicity is the autocorrelation of the victim's LLC
	// misses at the burst interval under bus saturation (visible
	// pattern).
	SaturationPeriodicity float64
	// LockPeriodicity is the same under memory locking (no pattern).
	LockPeriodicity float64
	// LockAdversaryMaxMisses is the locking attacker's own peak miss
	// rate (near zero: invisible to the profiler).
	LockAdversaryMaxMisses float64
}

// Fig11 runs the attack twice — bus saturation and memory lock — in the
// private cloud with 50 ms LLC sampling, and writes the miss-rate series.
func Fig11(opts Options) (*Fig11Result, error) {
	const period = 50 * time.Millisecond
	res := &Fig11Result{}

	run := func(kind memmodel.AttackKind, victimCSV, advCSV string) (victimScore float64, advMax float64, err error) {
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Env = core.EnvPrivateCloud
		cfg.Duration = opts.duration(time.Minute)
		cfg.Attack.Kind = kind
		cfg.LLCSamplePeriod = period
		x, err := core.NewExperiment(cfg)
		if err != nil {
			return 0, 0, fmt.Errorf("figures: fig11 %v: %w", kind, err)
		}
		if _, err := x.Run(); err != nil {
			return 0, 0, fmt.Errorf("figures: fig11 %v run: %w", kind, err)
		}

		victim := x.LLCVictimSeries().Series()
		adv := x.LLCAdversarySeries().Series()
		if err := writeSeries(opts.path(victimCSV), victim); err != nil {
			return 0, 0, err
		}
		if err := writeSeries(opts.path(advCSV), adv); err != nil {
			return 0, 0, err
		}

		horizon := cfg.Warmup + cfg.Duration
		buckets, err := monitor.ToBuckets(victim, period, horizon)
		if err != nil {
			return 0, 0, err
		}
		// Skip the warmup buckets: the attack starts after warmup.
		skip := int(cfg.Warmup / period)
		lag := int(cfg.Attack.Params.Interval / period)
		score, err := monitor.Periodicity(buckets[skip:], lag)
		if err != nil {
			return 0, 0, err
		}
		for _, p := range adv.Points {
			if p.V > advMax {
				advMax = p.V
			}
		}
		return score, advMax, nil
	}

	var err error
	res.SaturationPeriodicity, _, err = run(memmodel.AttackBusSaturation, "fig11a_llc_saturation.csv", "fig11a_llc_adversary.csv")
	if err != nil {
		return nil, err
	}
	res.LockPeriodicity, res.LockAdversaryMaxMisses, err = run(memmodel.AttackMemoryLock, "fig11b_llc_lock.csv", "fig11b_llc_adversary.csv")
	if err != nil {
		return nil, err
	}
	return res, nil
}
