package figures

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memca/internal/plan"
	"memca/internal/spec"
)

// TestPlannerValidationGrid is the planner's acceptance contract: for
// every grid cell, the sizing chosen by plan.Solve holds the SLO in the
// closed-loop simulation, and the next-smaller sizing (one bottleneck
// replica fewer) violates it. The planner's analytical feasibility
// boundary and the simulator's must agree cell by cell, at every seed.
func TestPlannerValidationGrid(t *testing.T) {
	dir := t.TempDir()
	opts := Options{OutDir: dir, Quick: true, Seed: 7}
	res, err := FigPlanner(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != len(plan.DefaultGrid()) || res.Runs != 3*res.Cells {
		t.Errorf("grid shape: %d cells, %d runs", res.Cells, res.Runs)
	}
	if !res.AllSizedOK {
		t.Errorf("a planner-chosen sizing violated the SLO in simulation (worst p99 %v)", res.MaxSizedP99)
	}
	if !res.AllSmallerViolate {
		t.Errorf("a minimality witness met the SLO in simulation (best p99 %v)", res.MinSmallerP99)
	}
	slo := spec.DefaultSLO()
	if res.MaxSizedP99 >= slo.TargetRT {
		t.Errorf("sized p99 %v has no margin to the target %v", res.MaxSizedP99, slo.TargetRT)
	}
	if res.MinSmallerP99 <= slo.TargetRT {
		t.Errorf("witness p99 %v does not clear the target %v", res.MinSmallerP99, slo.TargetRT)
	}

	data, err := os.ReadFile(filepath.Join(dir, "planner_validation.csv"))
	if err != nil {
		t.Fatalf("validation CSV not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+res.Runs {
		t.Errorf("CSV has %d lines, want header + %d rows", len(lines), res.Runs)
	}
}
