package figures

import (
	"fmt"
	"strings"
	"time"

	"memca/internal/core"
	"memca/internal/stats"
)

// Fig2Result captures Figure 2: per-tier percentile response times of the
// 3-tier system under MemCA, in both cloud environments.
type Fig2Result struct {
	// ClientP95 and ClientP98 are the headline damage numbers per
	// environment.
	ClientP95 map[string]time.Duration
	ClientP98 map[string]time.Duration
	// AmplificationOK reports that the p95 ordering client >= apache >=
	// tomcat >= mysql held (within a small mix-dilution tolerance).
	AmplificationOK bool
}

// fig2Tier is one tier's slice of a fig2 job record.
type fig2Tier struct {
	Name  string
	Curve []time.Duration
	P95   time.Duration
}

// fig2Record is one environment's job record: everything Finalize needs
// to write the environment's CSV and judge amplification. No maps — gob
// iterates maps in random order, and records must encode to stable bytes.
type fig2Record struct {
	Env         string
	ClientP95   time.Duration
	ClientP98   time.Duration
	ClientCurve []time.Duration
	Tiers       []fig2Tier
}

func init() {
	registerDist(DistDriver{Name: "fig2", New: newFig2Run})
}

// newFig2Run prepares the Figure 2 driver: one job per cloud environment,
// each running the paper's headline experiment — the 3-minute RUBBoS run
// under the memory-lock MemCA attack (I = 2 s, L = 500 ms).
func newFig2Run(opts Options) (*DistRun, error) {
	if err := checkTiersMatch(); err != nil {
		return nil, err
	}
	envs := []core.Env{core.EnvEC2, core.EnvPrivateCloud}
	return &DistRun{
		Jobs: len(envs),
		Job: func(a *stats.Arena, i int) ([]byte, error) {
			env := envs[i]
			cfg := core.DefaultConfig()
			cfg.Seed = opts.Seed
			cfg.Env = env
			cfg.Duration = opts.duration(3 * time.Minute)
			cfg.Arena = a // the Report holds only heap copies; see core.Config
			x, err := core.NewExperiment(cfg)
			if err != nil {
				return nil, fmt.Errorf("figures: fig2 %v: %w", env, err)
			}
			rep, err := x.Run()
			if err != nil {
				return nil, fmt.Errorf("figures: fig2 %v run: %w", env, err)
			}
			rec := fig2Record{
				Env:         env.String(),
				ClientP95:   rep.Client.P95,
				ClientP98:   rep.Client.P98,
				ClientCurve: rep.ClientCurve,
			}
			for _, t := range rep.Tiers {
				rec.Tiers = append(rec.Tiers, fig2Tier{Name: t.Name, Curve: t.Curve, P95: t.Summary.P95})
			}
			return encodeRecord(rec)
		},
		Finalize: func(payloads [][]byte) (any, string, error) {
			res := &Fig2Result{
				ClientP95:       make(map[string]time.Duration),
				ClientP98:       make(map[string]time.Duration),
				AmplificationOK: true,
			}
			lines := make([]string, 0, len(payloads))
			for i, env := range envs {
				rec := fig2Record{}
				if err := decodeRecord(payloads[i], &rec); err != nil {
					return nil, "", err
				}
				res.ClientP95[rec.Env] = rec.ClientP95
				res.ClientP98[rec.Env] = rec.ClientP98

				curves := map[string][]time.Duration{"client": rec.ClientCurve}
				order := []string{"client"}
				for _, t := range rec.Tiers {
					curves[t.Name] = t.Curve
					order = append(order, t.Name)
				}
				if err := writeCurves(opts.path(fmt.Sprintf("fig2_%s.csv", env)), core.FigurePercentiles, order, curves); err != nil {
					return nil, "", err
				}

				tol := 5 * time.Millisecond
				apache, tomcat, mysql := rec.Tiers[0].P95, rec.Tiers[1].P95, rec.Tiers[2].P95
				if mysql > tomcat+tol || tomcat > apache+tol || apache > rec.ClientP95+tol {
					res.AmplificationOK = false
				}
				lines = append(lines, fmt.Sprintf("%s client p95=%v p98=%v", rec.Env, rec.ClientP95, rec.ClientP98))
			}
			summary := fmt.Sprintf("fig2: %s, amplification ok=%t", strings.Join(lines, "; "), res.AmplificationOK)
			return res, summary, nil
		},
	}, nil
}

// Fig2 runs the paper's headline experiment — the 3-minute RUBBoS run
// under the memory-lock MemCA attack (I = 2 s, L = 500 ms) — in the EC2
// and private-cloud parameterizations, and writes one percentile-curve CSV
// per environment. It runs through the same job/finalize pair as the
// distributed fabric, so its outputs match a sharded run byte for byte.
func Fig2(opts Options) (*Fig2Result, error) {
	res, _, err := runDistLocal("fig2", opts)
	if err != nil {
		return nil, err
	}
	return res.(*Fig2Result), nil
}
