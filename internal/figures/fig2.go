package figures

import (
	"fmt"
	"time"

	"memca/internal/core"
	"memca/internal/stats"
)

// Fig2Result captures Figure 2: per-tier percentile response times of the
// 3-tier system under MemCA, in both cloud environments.
type Fig2Result struct {
	// ClientP95 and ClientP98 are the headline damage numbers per
	// environment.
	ClientP95 map[string]time.Duration
	ClientP98 map[string]time.Duration
	// AmplificationOK reports that the p95 ordering client >= apache >=
	// tomcat >= mysql held (within a small mix-dilution tolerance).
	AmplificationOK bool
}

// Fig2 runs the paper's headline experiment — the 3-minute RUBBoS run
// under the memory-lock MemCA attack (I = 2 s, L = 500 ms) — in the EC2
// and private-cloud parameterizations, and writes one percentile-curve CSV
// per environment.
func Fig2(opts Options) (*Fig2Result, error) {
	if err := checkTiersMatch(); err != nil {
		return nil, err
	}
	res := &Fig2Result{
		ClientP95:       make(map[string]time.Duration),
		ClientP98:       make(map[string]time.Duration),
		AmplificationOK: true,
	}
	envs := []core.Env{core.EnvEC2, core.EnvPrivateCloud}
	reports, err := runArenaJobs(opts, len(envs), func(a *stats.Arena, i int) (*core.Report, error) {
		env := envs[i]
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Env = env
		cfg.Duration = opts.duration(3 * time.Minute)
		cfg.Arena = a // the Report holds only heap copies; see core.Config
		x, err := core.NewExperiment(cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: fig2 %v: %w", env, err)
		}
		rep, err := x.Run()
		if err != nil {
			return nil, fmt.Errorf("figures: fig2 %v run: %w", env, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	for i, env := range envs {
		rep := reports[i]
		res.ClientP95[env.String()] = rep.Client.P95
		res.ClientP98[env.String()] = rep.Client.P98

		curves := map[string][]time.Duration{"client": rep.ClientCurve}
		order := []string{"client"}
		for _, t := range rep.Tiers {
			curves[t.Name] = t.Curve
			order = append(order, t.Name)
		}
		if err := writeCurves(opts.path(fmt.Sprintf("fig2_%s.csv", env)), core.FigurePercentiles, order, curves); err != nil {
			return nil, err
		}

		tol := 5 * time.Millisecond
		apache, tomcat, mysql := rep.Tiers[0].Summary, rep.Tiers[1].Summary, rep.Tiers[2].Summary
		if mysql.P95 > tomcat.P95+tol || tomcat.P95 > apache.P95+tol || apache.P95 > rep.Client.P95+tol {
			res.AmplificationOK = false
		}
	}
	return res, nil
}
