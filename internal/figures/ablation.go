package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/analytical"
	"memca/internal/attack"
	"memca/internal/core"
	"memca/internal/memmodel"
	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/stats"
	"memca/internal/trace"
	"memca/internal/workload"
)

// AblationPoint is one configuration's outcome in a sweep.
type AblationPoint struct {
	// Label identifies the configuration (e.g. "L=500ms").
	Label string
	// ClientP95 and ClientP99 are the damage metrics.
	ClientP95 time.Duration
	ClientP99 time.Duration
	// CoarseUtil is the 1-minute mean CPU of the victim (stealth).
	CoarseUtil float64
	// Drops counts front-tier rejections.
	Drops uint64
}

// AblationResult aggregates one sweep.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// runAttackVariant runs the default experiment with the given mutation
// applied to its configuration and summarizes it as an AblationPoint.
// The arena (may be nil) backs the run's stats; the point holds no
// arena-backed memory.
func runAttackVariant(opts Options, a *stats.Arena, label string, mutate func(*core.Config)) (AblationPoint, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.Duration = opts.duration(2 * time.Minute)
	cfg.Arena = a
	if mutate != nil {
		mutate(&cfg)
	}
	x, err := core.NewExperiment(cfg)
	if err != nil {
		return AblationPoint{}, fmt.Errorf("figures: ablation %s: %w", label, err)
	}
	rep, err := x.Run()
	if err != nil {
		return AblationPoint{}, fmt.Errorf("figures: ablation %s run: %w", label, err)
	}
	p := AblationPoint{
		Label:     label,
		ClientP95: rep.Client.P95,
		ClientP99: rep.Client.P99,
		Drops:     rep.Drops,
	}
	// Use the coarsest available utilization view (the 1-minute view is
	// skipped when quick-mode horizons are shorter than a minute).
	coarsest := time.Duration(0)
	for _, v := range rep.VictimUtilization {
		if v.Granularity > coarsest {
			coarsest = v.Granularity
			p.CoarseUtil = v.Mean
		}
	}
	return p, nil
}

// attackVariant is one cell of a closed-loop ablation sweep.
type attackVariant struct {
	label  string
	mutate func(*core.Config)
}

// newVariantRun builds the DistRun for a closed-loop ablation sweep: one
// job per variant, each an AblationPoint record; the finalizer assembles
// the result in variant order and writes the sweep's CSV. AblationPoint
// has no map fields, so its gob encoding is stable (see encodeRecord).
func newVariantRun(opts Options, name, csv string, variants []attackVariant) *DistRun {
	return &DistRun{
		Jobs: len(variants),
		Job: func(a *stats.Arena, i int) ([]byte, error) {
			p, err := runAttackVariant(opts, a, variants[i].label, variants[i].mutate)
			if err != nil {
				return nil, err
			}
			return encodeRecord(p)
		},
		Finalize: newAblationFinalize(opts, name, csv),
	}
}

// newAblationFinalize decodes AblationPoint records in variant order,
// writes the sweep CSV, and summarizes the damage range.
func newAblationFinalize(opts Options, name, csv string) func([][]byte) (any, string, error) {
	return func(payloads [][]byte) (any, string, error) {
		res := &AblationResult{Name: name, Points: make([]AblationPoint, len(payloads))}
		for i, data := range payloads {
			if err := decodeRecord(data, &res.Points[i]); err != nil {
				return nil, "", err
			}
		}
		if err := writeAblation(opts, csv, res); err != nil {
			return nil, "", err
		}
		lo, hi := time.Duration(0), time.Duration(0)
		for i, p := range res.Points {
			if i == 0 || p.ClientP95 < lo {
				lo = p.ClientP95
			}
			if p.ClientP95 > hi {
				hi = p.ClientP95
			}
		}
		summary := fmt.Sprintf("ablation %s: %d points, client p95 %v..%v", name, len(res.Points), lo, hi)
		return res, summary, nil
	}
}

// The closed-loop ablation sweeps, as (name, csv, variant builder)
// rows; each registers a dist driver named "ablation-<name>" and backs
// the corresponding Ablation* function.
var ablationSweeps = []struct {
	name     string
	csv      string
	variants func() []attackVariant
}{
	{"burst-length", "ablation_burst_length.csv", burstLengthVariants},
	{"interval", "ablation_interval.csv", intervalVariants},
	{"adversaries", "ablation_adversaries.csv", adversariesVariants},
	{"load", "ablation_load.csv", loadVariants},
	{"service-distribution", "ablation_service_distribution.csv", serviceDistributionVariants},
}

func init() {
	for _, ab := range ablationSweeps {
		ab := ab
		registerDist(DistDriver{
			Name: "ablation-" + ab.name,
			New: func(o Options) (*DistRun, error) {
				return newVariantRun(o, ab.name, ab.csv, ab.variants()), nil
			},
		})
	}
	registerDist(DistDriver{Name: "ablation-mechanisms", New: newMechanismsRun})
}

// runAblation executes one registered ablation driver fully in-process.
func runAblation(driver string, opts Options) (*AblationResult, error) {
	res, _, err := runDistLocal(driver, opts)
	if err != nil {
		return nil, err
	}
	return res.(*AblationResult), nil
}

// burstLengthVariants sweeps the burst length L at fixed I = 2 s.
func burstLengthVariants() []attackVariant {
	var variants []attackVariant
	for _, l := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 350 * time.Millisecond, 500 * time.Millisecond, 800 * time.Millisecond} {
		l := l
		variants = append(variants, attackVariant{fmt.Sprintf("L=%v", l), func(c *core.Config) {
			c.Attack.Params.BurstLength = l
		}})
	}
	return variants
}

// AblationBurstLength sweeps the burst length L at fixed I = 2 s: the
// damage-vs-stealth trade-off of Equations (7) and (10). Short bursts
// never complete the build-up stage (no damage); long bursts raise the
// coarse utilization toward detectability.
func AblationBurstLength(opts Options) (*AblationResult, error) {
	return runAblation("ablation-burst-length", opts)
}

// intervalVariants sweeps the burst interval I at fixed L = 500 ms.
func intervalVariants() []attackVariant {
	var variants []attackVariant
	for _, iv := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second} {
		iv := iv
		variants = append(variants, attackVariant{fmt.Sprintf("I=%v", iv), func(c *core.Config) {
			c.Attack.Params.Interval = iv
		}})
	}
	return variants
}

// AblationInterval sweeps the burst interval I at fixed L = 500 ms: the
// frequency axis of Equation (8), ρ = P_D / I.
func AblationInterval(opts Options) (*AblationResult, error) {
	return runAblation("ablation-interval", opts)
}

// newMechanismsRun prepares the mechanism-removal ablation, which uses
// the model-level network (open-loop arrivals) so the mechanisms can be
// toggled independently of the closed-loop client population.
func newMechanismsRun(opts Options) (*DistRun, error) {
	d, params := fig6Attack()
	horizon := opts.duration(2 * time.Minute)

	type variant struct {
		label      string
		mode       queueing.Mode
		infinite   bool
		retransmit bool
	}
	variants := []variant{
		{"full", queueing.ModeNTierRPC, false, true},
		{"no-retransmit", queueing.ModeNTierRPC, false, false},
		{"infinite-queues", queueing.ModeNTierRPC, true, false},
		{"no-slot-holding", queueing.ModeTandem, true, false},
	}
	m := rubbosModelLimits()
	return &DistRun{
		Jobs: len(variants),
		Job: func(a *stats.Arena, i int) ([]byte, error) {
			v := variants[i]
			limits := m
			if v.infinite {
				limits = [3]int{queueing.Infinite, queueing.Infinite, queueing.Infinite}
			}
			e := sim.NewEngine(opts.Seed)
			n, sources, err := buildModelNetwork(e, a, v.mode, limits, v.retransmit)
			if err != nil {
				return nil, fmt.Errorf("figures: ablation %s: %w", v.label, err)
			}
			point, err := runModelAttack(e, n, sources, d, params, horizon)
			if err != nil {
				return nil, fmt.Errorf("figures: ablation %s: %w", v.label, err)
			}
			point.Label = v.label
			return encodeRecord(point)
		},
		Finalize: newAblationFinalize(opts, "mechanisms", "ablation_mechanisms.csv"),
	}, nil
}

// AblationMechanisms removes the three amplification mechanisms one at a
// time, quantifying each one's contribution to the client tail:
//
//   - "full": the complete model (slot-holding, finite queues, TCP
//     retransmission);
//   - "no-retransmit": drops are final — the RTO floor disappears from
//     the client tail;
//   - "infinite-queues": nothing is ever dropped — only queueing delay
//     remains;
//   - "no-slot-holding": tandem coupling — overflow cannot propagate.
func AblationMechanisms(opts Options) (*AblationResult, error) {
	return runAblation("ablation-mechanisms", opts)
}

// adversariesVariants sweeps the co-located adversary VM count.
func adversariesVariants() []attackVariant {
	var variants []attackVariant
	for _, k := range []int{1, 2, 4} {
		k := k
		variants = append(variants, attackVariant{fmt.Sprintf("lock-x%d", k), func(c *core.Config) {
			c.Attack.AdversaryVMs = k
		}})
	}
	for _, k := range []int{1, 4} {
		k := k
		variants = append(variants, attackVariant{fmt.Sprintf("saturation-x%d", k), func(c *core.Config) {
			c.Attack.Kind = memmodel.AttackBusSaturation
			c.Attack.AdversaryVMs = k
		}})
	}
	return variants
}

// AblationAdversaries sweeps the number of co-located adversary VMs for
// the bus-saturation attack (the lock attack needs only one, which is the
// paper's point; saturation needs many to bite).
func AblationAdversaries(opts Options) (*AblationResult, error) {
	return runAblation("ablation-adversaries", opts)
}

// loadVariants sweeps the legitimate client population.
func loadVariants() []attackVariant {
	var variants []attackVariant
	for _, clients := range []int{875, 1750, 3500, 5000} {
		clients := clients
		variants = append(variants, attackVariant{fmt.Sprintf("clients=%d", clients), func(c *core.Config) {
			c.Clients = clients
		}})
	}
	return variants
}

// AblationLoad sweeps the legitimate client population: condition 2
// (λ_n > C_n,ON) needs enough background load for the degraded bottleneck
// to overflow, so a lightly loaded system resists the same attack.
func AblationLoad(opts Options) (*AblationResult, error) {
	return runAblation("ablation-load", opts)
}

// serviceDistributionVariants swaps the per-tier service-time
// distributions.
func serviceDistributionVariants() []attackVariant {
	base := workload.RUBBoSTiers()
	variants := []struct {
		label string
		make  func(mean time.Duration) sim.Dist
	}{
		{"exponential", func(m time.Duration) sim.Dist { return sim.NewExponential(m) }},
		{"erlang-4", func(m time.Duration) sim.Dist { return sim.NewErlang(4, m) }},
		{"lognormal-1.2", func(m time.Duration) sim.Dist { return sim.NewLogNormalFromMean(m, 1.2) }},
		{"deterministic", func(m time.Duration) sim.Dist { return sim.NewDeterministic(m) }},
	}
	means := []time.Duration{600 * time.Microsecond, 1200 * time.Microsecond, 1600 * time.Microsecond}
	cells := make([]attackVariant, 0, len(variants))
	for _, v := range variants {
		v := v
		cells = append(cells, attackVariant{v.label, func(c *core.Config) {
			tiers := make([]queueing.TierConfig, len(base))
			copy(tiers, base)
			for i := range tiers {
				tiers[i].Service = v.make(means[i])
			}
			c.Tiers = tiers
		}})
	}
	return cells
}

// AblationServiceDistribution swaps the per-tier service-time
// distributions (the paper assumes exponential capacities) and reruns the
// attack: tail amplification should be robust to the distributional
// assumption because it is driven by capacity starvation and drops, not
// by service-time variance.
func AblationServiceDistribution(opts Options) (*AblationResult, error) {
	return runAblation("ablation-service-distribution", opts)
}

func writeAblation(opts Options, name string, res *AblationResult) error {
	path := opts.path(name)
	if path == "" {
		return nil
	}
	rows := make([][]string, 0, len(res.Points))
	for _, p := range res.Points {
		rows = append(rows, []string{
			p.Label,
			strconv.FormatFloat(p.ClientP95.Seconds()*1000, 'f', 1, 64),
			strconv.FormatFloat(p.ClientP99.Seconds()*1000, 'f', 1, 64),
			strconv.FormatFloat(p.CoarseUtil, 'f', 4, 64),
			strconv.FormatUint(p.Drops, 10),
		})
	}
	return trace.WriteCSV(path, []string{"config", "client_p95_ms", "client_p99_ms", "coarse_util", "drops"}, rows)
}

// rubbosModelLimits returns the analytical model's queue limits.
func rubbosModelLimits() [3]int {
	tiers := workload.RUBBoSTiers()
	return [3]int{tiers[0].QueueLimit, tiers[1].QueueLimit, tiers[2].QueueLimit}
}

// buildModelNetwork is modelNetwork with a retransmission toggle.
func buildModelNetwork(e *sim.Engine, a *stats.Arena, mode queueing.Mode, limits [3]int, retransmit bool) (*queueing.Network, []*queueing.Source, error) {
	n, sources, err := modelNetwork(e, a, mode, limits)
	if err != nil {
		return nil, nil, err
	}
	if retransmit {
		return n, sources, nil
	}
	// Rebuild sources without retransmission (the originals were never
	// started, so they generate no arrivals).
	plain := make([]*queueing.Source, 0, len(sources))
	for i, t := range analytical.RUBBoS3Tier().Tiers {
		if t.ArrivalRate <= 0 {
			continue
		}
		src, err := queueing.NewPoissonSource(n, queueing.SourceConfig{Class: i, Rate: t.ArrivalRate})
		if err != nil {
			return nil, nil, err
		}
		plain = append(plain, src)
	}
	return n, plain, nil
}

// runModelAttack drives an open-loop model network under ON-OFF bursts
// and summarizes client damage.
func runModelAttack(e *sim.Engine, n *queueing.Network, sources []*queueing.Source, d float64, params attack.Params, horizon time.Duration) (AblationPoint, error) {
	inj, err := attack.NewDirectInjector(n, 2, d)
	if err != nil {
		return AblationPoint{}, err
	}
	b, err := attack.NewBurster(e, inj, params)
	if err != nil {
		return AblationPoint{}, err
	}
	for _, s := range sources {
		s.Start()
	}
	e.Run(5 * time.Second)
	b.Start()
	e.Run(5*time.Second + horizon)
	b.Stop()
	for _, s := range sources {
		s.Stop()
	}
	if err := e.RunAll(200_000_000); err != nil {
		return AblationPoint{}, err
	}
	client := stats.NewSample(4096)
	for _, s := range sources {
		for _, rt := range s.ClientRT().Values() {
			client.Add(rt)
		}
	}
	busy, err := n.TierBusy(2)
	if err != nil {
		return AblationPoint{}, err
	}
	return AblationPoint{
		ClientP95:  client.Percentile(95),
		ClientP99:  client.Percentile(99),
		CoarseUtil: busy.WindowAverage(5*time.Second, 5*time.Second+horizon) / 2,
		Drops:      n.Drops(),
	}, nil
}
