package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/attack"
	"memca/internal/core"
	"memca/internal/trace"
)

// Fig8Result captures the MemCA control framework experiment (the paper's
// Figure 8 architecture in action): the commander, starting from a weak
// parameterization and knowing nothing about the target, converges on the
// damage goal while honoring the stealth bound.
type Fig8Result struct {
	// Decisions is how many control epochs ran.
	Decisions int
	// FinalParams is where the commander settled.
	FinalParams attack.Params
	// FinalTailRT is the prober's final window percentile.
	FinalTailRT time.Duration
	// TimeToGoal is when the measured tail first reached the 1 s target
	// (0 if never). The commander then oscillates inside its hysteresis
	// band, so the final instant may sit below the target.
	TimeToGoal time.Duration
	// GoalReached reports the target was reached at least once.
	GoalReached bool
	// SustainedFraction is the fraction of post-goal decision epochs with
	// the tail still above half the target — sustained damage, not a
	// single spike.
	SustainedFraction float64
	// StealthHeld reports the final burst length stayed within the
	// millibottleneck bound.
	StealthHeld bool
}

// Fig8 runs the feedback-controlled attack from a deliberately weak start
// and writes the parameter/tail trajectory.
func Fig8(opts Options) (*Fig8Result, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.Duration = opts.duration(6 * time.Minute)
	cfg.Attack.Params = attack.Params{
		Intensity:   0.3,
		BurstLength: 60 * time.Millisecond,
		Interval:    4 * time.Second,
	}
	fb := core.DefaultFeedback()
	fb.DecisionEvery = 5 * time.Second
	cfg.Feedback = &fb
	x, err := core.NewExperiment(cfg)
	if err != nil {
		return nil, fmt.Errorf("figures: fig8: %w", err)
	}

	// Record the trajectory every decision epoch.
	type sample struct {
		t      time.Duration
		params attack.Params
		tail   time.Duration
	}
	var traj []sample
	engine := x.Engine()
	var record func()
	record = func() {
		traj = append(traj, sample{
			t:      engine.Now(),
			params: x.Burster().Params(),
			tail:   x.Prober().Percentile(fb.Goal.Percentile),
		})
		if engine.Now() < cfg.Warmup+cfg.Duration {
			engine.Schedule(fb.DecisionEvery, record)
		}
	}
	engine.Schedule(cfg.Warmup, record)

	if _, err := x.Run(); err != nil {
		return nil, fmt.Errorf("figures: fig8 run: %w", err)
	}

	res := &Fig8Result{
		Decisions:   x.Commander().Decisions(),
		FinalParams: x.Burster().Params(),
		FinalTailRT: x.Prober().Percentile(fb.Goal.Percentile),
	}
	var post, sustained int
	for _, s := range traj {
		if res.TimeToGoal == 0 && s.tail >= fb.Goal.TargetRT {
			res.TimeToGoal = s.t
		}
		if res.TimeToGoal > 0 && s.t >= res.TimeToGoal {
			post++
			if s.tail >= fb.Goal.TargetRT/2 {
				sustained++
			}
		}
	}
	res.GoalReached = res.TimeToGoal > 0
	if post > 0 {
		res.SustainedFraction = float64(sustained) / float64(post)
	}
	res.StealthHeld = res.FinalParams.BurstLength <= fb.Goal.MaxMillibottleneck

	if path := opts.path("fig8_controller.csv"); path != "" {
		rows := make([][]string, 0, len(traj))
		for _, s := range traj {
			rows = append(rows, []string{
				strconv.FormatFloat(s.t.Seconds(), 'f', 1, 64),
				strconv.FormatFloat(s.params.Intensity, 'f', 3, 64),
				strconv.FormatFloat(s.params.BurstLength.Seconds()*1000, 'f', 1, 64),
				strconv.FormatFloat(s.params.Interval.Seconds()*1000, 'f', 1, 64),
				strconv.FormatFloat(s.tail.Seconds()*1000, 'f', 1, 64),
			})
		}
		if err := trace.WriteCSV(path, []string{"t_s", "intensity", "burst_ms", "interval_ms", "tail_p95_ms"}, rows); err != nil {
			return nil, err
		}
	}
	return res, nil
}
