package figures

import (
	"fmt"
	"sort"
	"time"

	"memca/internal/core"
	"memca/internal/monitor"
	"memca/internal/stats"
)

// FlashCrowdResult contrasts an organic load surge with MemCA: a flash
// crowd raises the 1-minute average CPU, trips the Auto Scaling trigger,
// gets absorbed by the new capacity, and leaves again — everything the
// cloud's machinery was designed for and everything MemCA avoids.
type FlashCrowdResult struct {
	// ScaleEvents is how many scale-out actions fired (>= 1 expected).
	ScaleEvents int
	// PeakCoarseUtil is the highest 1-minute average CPU (visible).
	PeakCoarseUtil float64
	// CrowdP95 is the client p95 during the surge before capacity
	// arrived.
	CrowdP95 time.Duration
	// AbsorbedP95 is the client p95 after the scale-out took effect.
	AbsorbedP95 time.Duration
}

// FlashCrowd doubles the client population for two minutes of a four-
// minute attackless run with a live scaling group attached.
func FlashCrowd(opts Options) (*FlashCrowdResult, error) {
	// The driver reads the generator's arena-backed RT series after the
	// single run, so the arena is scoped to the whole driver (released,
	// and thereby reset, only after the CSV is written) rather than
	// per-job as in runArenaJobs.
	arena := stats.GetArena()
	defer stats.PutArena(arena)
	cfg := core.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.Arena = arena
	cfg.Attack = nil
	cfg.Duration = 5 * time.Minute // fixed: the 1-min trigger needs room
	cfg.Scaling = &core.ScalingSpec{
		Trigger:        monitor.DefaultAutoScaler(),
		MaxInstances:   4,
		ProvisionDelay: 30 * time.Second,
	}
	// The crowd spans three minutes: long enough for the 1-minute
	// trigger to fire (~t+70s), the instance to boot (+30s), and the
	// overload backlog to drain before the absorbed-phase measurement.
	crowdStart := cfg.Warmup + 30*time.Second
	crowdEnd := cfg.Warmup + 210*time.Second

	// A single run, still routed through the sweep engine so every
	// figure driver shares one execution and progress path.
	type crowdRun struct {
		x   *core.Experiment
		rep *core.Report
	}
	runs, err := runJobs(opts, 1, func(int) (*crowdRun, error) {
		x, err := core.NewExperiment(cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: flash crowd: %w", err)
		}
		engine := x.Engine()
		engine.At(crowdStart, func() { x.Generator().SetPopulation(cfg.Clients*2, 5*time.Second) })
		engine.At(crowdEnd, func() { x.Generator().SetPopulation(cfg.Clients, 0) })

		// Collect client RTs per phase.
		x.Generator().RecordSeries(true)
		rep, err := x.Run()
		if err != nil {
			return nil, fmt.Errorf("figures: flash crowd run: %w", err)
		}
		return &crowdRun{x: x, rep: rep}, nil
	})
	if err != nil {
		return nil, err
	}
	x, rep := runs[0].x, runs[0].rep

	res := &FlashCrowdResult{ScaleEvents: len(rep.ScaleEvents)}
	for _, v := range rep.VictimUtilization {
		if v.Granularity == monitor.GranularityCloud && v.Max > res.PeakCoarseUtil {
			res.PeakCoarseUtil = v.Max
		}
	}
	// Phase percentiles from the per-completion series.
	crowdRTs := make([]time.Duration, 0, 4096)
	absorbedRTs := make([]time.Duration, 0, 4096)
	absorbedFrom := crowdStart + 140*time.Second // provision landed + backlog drained
	for _, p := range x.Generator().RTSeries().Points {
		rt := time.Duration(p.V * float64(time.Second))
		switch {
		case p.T >= crowdStart+30*time.Second && p.T < crowdStart+90*time.Second:
			crowdRTs = append(crowdRTs, rt)
		case p.T >= absorbedFrom && p.T < crowdEnd:
			absorbedRTs = append(absorbedRTs, rt)
		}
	}
	res.CrowdP95 = percentileOf(crowdRTs, 0.95)
	res.AbsorbedP95 = percentileOf(absorbedRTs, 0.95)

	if path := opts.path("flashcrowd.csv"); path != "" {
		if err := writeSeries(path, x.Generator().RTSeries()); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// percentileOf computes a simple order-statistic percentile.
func percentileOf(vals []time.Duration, q float64) time.Duration {
	if len(vals) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(vals))
	copy(cp, vals)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}
