package figures

import (
	"time"

	"memca/internal/plan"
	"memca/internal/spec"
)

// PlannerResult captures the capacity-planner validation sweep: the
// memca-plan solver's sizing verdicts replayed through the closed-loop
// simulator across a load grid and seed set.
type PlannerResult struct {
	// Cells and Runs count the grid points and (cell, seed) simulations.
	Cells int
	Runs  int
	// AllSizedOK reports every chosen sizing met the SLO in simulation.
	AllSizedOK bool
	// AllSmallerViolate reports every minimality witness (one bottleneck
	// replica fewer) broke the SLO in simulation.
	AllSmallerViolate bool
	// MaxSizedP99 is the worst simulated p99 across the chosen sizings —
	// the planner's safety margin is TargetRT minus this.
	MaxSizedP99 time.Duration
	// MinSmallerP99 is the best simulated p99 across the witnesses — the
	// cliff's far side; it exceeding TargetRT is the minimality claim.
	MinSmallerP99 time.Duration
}

// FigPlanner validates the capacity planner against the simulator: each
// grid cell is sized by plan.Solve, then the sizing and its minimality
// witness are replayed attack-free through the full closed-loop
// simulation at every seed. It writes planner_validation.csv (one row
// per cell and seed, byte-identical at any worker count).
func FigPlanner(opts Options) (*PlannerResult, error) {
	vopts := plan.ValidateOptions{
		BaseSeed: opts.Seed,
		Duration: opts.duration(160 * time.Second),
		Workers:  opts.Parallel,
		Progress: opts.Progress,
	}
	results, err := plan.Validate(spec.DefaultSLO(), vopts)
	if err != nil {
		return nil, err
	}
	res := &PlannerResult{
		Cells:             len(plan.DefaultGrid()),
		Runs:              len(results),
		AllSizedOK:        true,
		AllSmallerViolate: true,
	}
	for i, r := range results {
		if !r.SizedOK {
			res.AllSizedOK = false
		}
		if !r.SmallerViolates {
			res.AllSmallerViolate = false
		}
		if r.SizedP99 > res.MaxSizedP99 {
			res.MaxSizedP99 = r.SizedP99
		}
		if i == 0 || r.SmallerP99 < res.MinSmallerP99 {
			res.MinSmallerP99 = r.SmallerP99
		}
	}
	if path := opts.path("planner_validation.csv"); path != "" {
		if err := plan.ValidationCSV(path, results); err != nil {
			return nil, err
		}
	}
	return res, nil
}
