package figures

import (
	"fmt"
	"time"

	"memca/internal/plan"
	"memca/internal/spec"
	"memca/internal/stats"
)

// PlannerResult captures the capacity-planner validation sweep: the
// memca-plan solver's sizing verdicts replayed through the closed-loop
// simulator across a load grid and seed set.
type PlannerResult struct {
	// Cells and Runs count the grid points and (cell, seed) simulations.
	Cells int
	Runs  int
	// AllSizedOK reports every chosen sizing met the SLO in simulation.
	AllSizedOK bool
	// AllSmallerViolate reports every minimality witness (one bottleneck
	// replica fewer) broke the SLO in simulation.
	AllSmallerViolate bool
	// MaxSizedP99 is the worst simulated p99 across the chosen sizings —
	// the planner's safety margin is TargetRT minus this.
	MaxSizedP99 time.Duration
	// MinSmallerP99 is the best simulated p99 across the witnesses — the
	// cliff's far side; it exceeding TargetRT is the minimality claim.
	MinSmallerP99 time.Duration
}

func init() {
	registerDist(DistDriver{Name: "planner", New: newPlannerRun})
}

// newPlannerRun prepares the planner-validation driver. plan.Solve runs
// once per process here (plan.NewValidation), so every worker sizes the
// grid identically and the per-index jobs stay sim-only; each job record
// is one gob-encoded plan.CellResult (no map fields, stable bytes).
func newPlannerRun(opts Options) (*DistRun, error) {
	vopts := plan.ValidateOptions{
		BaseSeed: opts.Seed,
		Duration: opts.duration(160 * time.Second),
	}
	v, err := plan.NewValidation(spec.DefaultSLO(), vopts)
	if err != nil {
		return nil, err
	}
	slo := spec.DefaultSLO()
	return &DistRun{
		Jobs: v.Jobs(),
		Job: func(_ *stats.Arena, i int) ([]byte, error) {
			// Planner runs manage their own stats (see plan.Validate); the
			// worker arena is unused here.
			r, err := v.Run(i)
			if err != nil {
				return nil, err
			}
			return encodeRecord(r)
		},
		Finalize: func(payloads [][]byte) (any, string, error) {
			results := make([]plan.CellResult, len(payloads))
			for i, data := range payloads {
				if err := decodeRecord(data, &results[i]); err != nil {
					return nil, "", err
				}
			}
			res := &PlannerResult{
				Cells:             len(plan.DefaultGrid()),
				Runs:              len(results),
				AllSizedOK:        true,
				AllSmallerViolate: true,
			}
			for i, r := range results {
				if !r.SizedOK {
					res.AllSizedOK = false
				}
				if !r.SmallerViolates {
					res.AllSmallerViolate = false
				}
				if r.SizedP99 > res.MaxSizedP99 {
					res.MaxSizedP99 = r.SizedP99
				}
				if i == 0 || r.SmallerP99 < res.MinSmallerP99 {
					res.MinSmallerP99 = r.SmallerP99
				}
			}
			if path := opts.path("planner_validation.csv"); path != "" {
				if err := plan.ValidationCSV(path, results); err != nil {
					return nil, "", err
				}
			}
			summary := fmt.Sprintf("planner: %d runs, sized ok=%t (max p99 %v vs target %v), smaller violates=%t",
				res.Runs, res.AllSizedOK, res.MaxSizedP99, slo.TargetRT, res.AllSmallerViolate)
			return res, summary, nil
		},
	}, nil
}

// FigPlanner validates the capacity planner against the simulator: each
// grid cell is sized by plan.Solve, then the sizing and its minimality
// witness are replayed attack-free through the full closed-loop
// simulation at every seed. It writes planner_validation.csv (one row
// per cell and seed, byte-identical at any worker count — and, via the
// dist driver, at any shard count).
func FigPlanner(opts Options) (*PlannerResult, error) {
	res, _, err := runDistLocal("planner", opts)
	if err != nil {
		return nil, err
	}
	return res.(*PlannerResult), nil
}
