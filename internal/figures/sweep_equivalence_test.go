package figures

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// equivalenceWorkers are the worker counts the parallel-vs-serial
// contract is pinned at: the serial path, oversubscription, and a
// power-of-two in between.
var equivalenceWorkers = []int{1, 4, 8}

// sweepDrivers enumerates every figure driver that fans out over the
// sweep engine, each returning a scalar fingerprint of its result.
// fmt prints map keys in sorted order, so equal fingerprints mean
// equal results.
var sweepDrivers = []struct {
	name string
	run  func(Options) (string, error)
}{
	{"Fig2", func(o Options) (string, error) {
		res, err := Fig2(o)
		return fingerprint(res), err
	}},
	{"Fig3", func(o Options) (string, error) {
		res, err := Fig3(o)
		return fingerprint(res), err
	}},
	{"Fig6", func(o Options) (string, error) {
		res, err := Fig6(o)
		return fingerprint(res), err
	}},
	{"Fig7", func(o Options) (string, error) {
		res, err := Fig7(o)
		return fingerprint(res), err
	}},
	{"AblationBurstLength", func(o Options) (string, error) {
		res, err := AblationBurstLength(o)
		return fingerprint(res), err
	}},
	{"AblationMechanisms", func(o Options) (string, error) {
		res, err := AblationMechanisms(o)
		return fingerprint(res), err
	}},
	{"DetectorComparison", func(o Options) (string, error) {
		res, err := DetectorComparison(o)
		return fingerprint(res), err
	}},
	{"JitterEvasion", func(o Options) (string, error) {
		res, err := JitterEvasion(o)
		return fingerprint(res), err
	}},
	{"DefenseEvaluation", func(o Options) (string, error) {
		res, err := DefenseEvaluation(o)
		return fingerprint(res), err
	}},
	{"FlashCrowd", func(o Options) (string, error) {
		res, err := FlashCrowd(o)
		return fingerprint(res), err
	}},
	{"FigAttribution", func(o Options) (string, error) {
		res, err := FigAttribution(o)
		return fingerprint(res), err
	}},
	{"FigPlanner", func(o Options) (string, error) {
		res, err := FigPlanner(o)
		return fingerprint(res), err
	}},
}

func fingerprint(res any) string { return fmt.Sprintf("%#v", res) }

// readArtifacts returns every CSV under dir keyed by relative path.
func readArtifacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := make(map[string][]byte)
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatalf("reading artifacts under %s: %v", dir, err)
	}
	return files
}

// TestSweepWorkerEquivalence pins the engine's core contract at the
// figure level: every driver converted onto internal/sweep produces
// byte-identical CSV artifacts and identical scalar results for every
// worker count. A regression here means parallelism leaked into the
// results — the one thing the sweep engine exists to prevent.
func TestSweepWorkerEquivalence(t *testing.T) {
	for _, d := range sweepDrivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			var refPrint string
			var refFiles map[string][]byte
			for wi, workers := range equivalenceWorkers {
				dir := t.TempDir()
				opts := Options{OutDir: dir, Quick: true, Seed: 7, Parallel: workers}
				print, err := d.run(opts)
				if err != nil {
					t.Fatalf("%s with %d workers: %v", d.name, workers, err)
				}
				files := readArtifacts(t, dir)
				if len(files) == 0 {
					t.Fatalf("%s with %d workers wrote no artifacts", d.name, workers)
				}
				if wi == 0 {
					refPrint, refFiles = print, files
					continue
				}
				if print != refPrint {
					t.Errorf("%s scalars differ between %d and %d workers:\n%s\nvs\n%s",
						d.name, equivalenceWorkers[0], workers, refPrint, print)
				}
				if len(files) != len(refFiles) {
					t.Errorf("%s wrote %d artifacts with %d workers, %d with %d",
						d.name, len(refFiles), equivalenceWorkers[0], len(files), workers)
				}
				for name, ref := range refFiles {
					got, ok := files[name]
					if !ok {
						t.Errorf("%s with %d workers did not write %s", d.name, workers, name)
						continue
					}
					if string(got) != string(ref) {
						t.Errorf("%s artifact %s differs between %d and %d workers",
							d.name, name, equivalenceWorkers[0], workers)
					}
				}
			}
		})
	}
}

// TestSweepProgressTotals pins the progress hook: one callback per run,
// ending exactly at (total, total), for serial and parallel execution.
func TestSweepProgressTotals(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls, lastDone, lastTotal int
		opts := Options{Quick: true, Seed: 7, Parallel: workers}
		opts.Progress = func(done, total int) {
			calls++
			lastDone, lastTotal = done, total
		}
		if _, err := Fig3(opts); err != nil {
			t.Fatalf("Fig3 with %d workers: %v", workers, err)
		}
		if calls == 0 || lastDone != lastTotal {
			t.Errorf("with %d workers: %d progress calls, final %d/%d; want final done == total",
				workers, calls, lastDone, lastTotal)
		}
	}
}
