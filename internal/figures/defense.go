package figures

import (
	"fmt"
	"strconv"
	"time"

	"memca/internal/core"
	"memca/internal/defense"
	"memca/internal/memmodel"
	"memca/internal/monitor"
	"memca/internal/sweep"
	"memca/internal/telemetry"
	"memca/internal/trace"
)

// DefensePoint is one (attack, defense) cell of the countermeasure matrix.
type DefensePoint struct {
	Attack  string
	Defense string
	// ClientP95 is the damage remaining under the defense.
	ClientP95 time.Duration
	// DegradationD is the degradation index the attack achieved on the
	// victim tier during bursts (1 = no degradation at all).
	DegradationD float64
	// Mitigated reports the damage goal was NOT met (p95 back under 1s).
	Mitigated bool
}

// DefenseResult captures the countermeasure evaluation: isolation
// primitives crossed with attack kinds, plus the fine-grained detector's
// verdict and its overhead cost.
type DefenseResult struct {
	Matrix []DefensePoint
	// DetectorEpisodes is how many millibottlenecks the 50 ms detector
	// found under the undefended lock attack.
	DetectorEpisodes int
	// DetectorVerdict is the ON-OFF classifier's conclusion.
	DetectorVerdict defense.Classification
	// DetectorOverhead is the monitoring cost (fraction of a core) —
	// the economic reason clouds don't run this by default.
	DetectorOverhead float64
	// CoarseDetectorEpisodes is what the same detector finds at 1 s
	// granularity: nothing, which is the paper's stealthiness argument.
	CoarseDetectorEpisodes int
	// Attribution is the feature detector tuned on a seed-derived clean
	// replication and used as the defense trigger.
	Attribution monitor.AttributionDetector
	// AttributionAlarms counts its alarms on the undefended lock attack.
	AttributionAlarms int
	// AttributionTriggered reports whether the trigger fired at all —
	// the condition under which the triggered defense row applies its
	// reservation instead of the undefended outcome.
	AttributionTriggered bool
	// TriggeredP95 is the client p95 of the attribution-triggered
	// reservation row: the reservation cell's measured p95 when the
	// trigger fired, the undefended one when it did not.
	TriggeredP95 time.Duration
}

// DefenseEvaluation runs the attack under no defense, bandwidth
// reservation, and split-lock protection, for both attack kinds, and runs
// the millibottleneck detector against the undefended lock attack.
func DefenseEvaluation(opts Options) (*DefenseResult, error) {
	res := &DefenseResult{}
	type cell struct {
		attackName string
		kind       memmodel.AttackKind
		defName    string
		spec       *core.DefenseSpec
	}
	reservation := &core.DefenseSpec{VictimReservationMBps: memmodel.MySQLProfile().DemandMBps}
	splitLock := &core.DefenseSpec{SplitLockProtection: true}
	cells := []cell{
		{"memory-lock", memmodel.AttackMemoryLock, "none", nil},
		{"memory-lock", memmodel.AttackMemoryLock, "bandwidth-reservation", reservation},
		{"memory-lock", memmodel.AttackMemoryLock, "split-lock-protection", splitLock},
		{"bus-saturation", memmodel.AttackBusSaturation, "none", nil},
		{"bus-saturation", memmodel.AttackBusSaturation, "bandwidth-reservation", reservation},
		{"bus-saturation", memmodel.AttackBusSaturation, "split-lock-protection", splitLock},
	}

	// Plain runJobs (no arena): each cell keeps its live experiment so the
	// detection pass below can replay the undefended lock attack's exact
	// CPU signal after the sweep returns. The extra job past the matrix
	// cells is a seed-derived attack-free replication whose feature stream
	// calibrates the attribution trigger.
	featureSpec := func() *telemetry.Spec {
		spec := telemetry.DefaultSpec()
		spec.EventRing = 0
		spec.TailKeep = 0
		spec.HeadEvery = 0
		spec.HeadKeep = 0
		spec.Resolutions = nil
		spec.FeatureWindows = []time.Duration{monitor.GranularityFine}
		spec.TailOver = time.Second
		return &spec
	}
	type cellRun struct {
		point DefensePoint
		x     *core.Experiment
	}
	runs, err := runJobs(opts, len(cells)+1, func(i int) (*cellRun, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = opts.Seed
		cfg.Duration = opts.duration(90 * time.Second)
		if i == len(cells) {
			cfg.Seed = sweep.DeriveSeed(opts.Seed, 200)
			cfg.Attack = nil
			cfg.Trace = featureSpec()
			x, err := core.NewExperiment(cfg)
			if err != nil {
				return nil, fmt.Errorf("figures: defense clean tuning run: %w", err)
			}
			if _, err := x.Run(); err != nil {
				return nil, fmt.Errorf("figures: defense clean tuning run: %w", err)
			}
			return &cellRun{x: x}, nil
		}
		c := cells[i]
		cfg.Attack.Kind = c.kind
		// Give bus saturation its best shot: multiple adversaries.
		if c.kind == memmodel.AttackBusSaturation {
			cfg.Attack.AdversaryVMs = 4
		}
		cfg.Defense = c.spec
		if c.kind == memmodel.AttackMemoryLock && c.spec == nil {
			cfg.Trace = featureSpec()
		}
		x, err := core.NewExperiment(cfg)
		if err != nil {
			return nil, fmt.Errorf("figures: defense %s/%s: %w", c.attackName, c.defName, err)
		}
		rep, err := x.Run()
		if err != nil {
			return nil, fmt.Errorf("figures: defense %s/%s run: %w", c.attackName, c.defName, err)
		}
		return &cellRun{
			point: DefensePoint{
				Attack:       c.attackName,
				Defense:      c.defName,
				ClientP95:    rep.Client.P95,
				DegradationD: rep.LastDegradation,
				Mitigated:    rep.Client.P95 < time.Second,
			},
			x: x,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var undefendedLock *core.Experiment
	var lockP95, reservationP95 time.Duration
	for i, c := range cells {
		res.Matrix = append(res.Matrix, runs[i].point)
		if c.kind == memmodel.AttackMemoryLock {
			switch {
			case c.spec == nil:
				undefendedLock = runs[i].x
				lockP95 = runs[i].point.ClientP95
			case c.spec == reservation:
				reservationP95 = runs[i].point.ClientP95
			}
		}
	}
	cleanTuning := runs[len(cells)].x

	// Detection side: run the fine- and coarse-grained detectors over
	// the undefended lock attack's exact CPU signal.
	busy, err := undefendedLock.Network().TierBusy(2)
	if err != nil {
		return nil, err
	}
	warmup := 20 * time.Second
	source := func(from, to time.Duration) float64 {
		return busy.WindowAverage(warmup+from, warmup+to) / 2
	}
	horizon := opts.duration(90 * time.Second)

	fine, err := defense.NewDetector(defense.DefaultDetector())
	if err != nil {
		return nil, err
	}
	episodes, err := fine.Detect(source, horizon)
	if err != nil {
		return nil, err
	}
	res.DetectorEpisodes = len(episodes)
	res.DetectorVerdict = defense.Classify(episodes, 5)
	res.DetectorOverhead = defense.DefaultDetector().OverheadFraction()

	coarseCfg := defense.DefaultDetector()
	coarseCfg.Granularity = time.Second
	coarse, err := defense.NewDetector(coarseCfg)
	if err != nil {
		return nil, err
	}
	coarseEpisodes, err := coarse.Detect(source, horizon)
	if err != nil {
		return nil, err
	}
	res.CoarseDetectorEpisodes = len(coarseEpisodes)

	// Attribution trigger: tune the feature detector on the seed-derived
	// clean replication against the undefended lock attack, then use it as
	// the activation condition for bandwidth reservation. The triggered
	// row's p95 is not a new simulation — the trigger decides which of the
	// two measured outcomes applies: the reservation cell's when the
	// detector fires, the undefended cell's when it stays silent.
	lockFeatures := undefendedLock.Tracer().FeaturesAt(monitor.GranularityFine)
	cleanFeatures := cleanTuning.Tracer().FeaturesAt(monitor.GranularityFine)
	attribution, _, err := monitor.TuneAttribution(
		[]*telemetry.FeatureSeries{lockFeatures},
		[]*telemetry.FeatureSeries{cleanFeatures},
		detectorMinCount,
	)
	if err != nil {
		return nil, fmt.Errorf("figures: tuning defense trigger: %w", err)
	}
	res.Attribution = attribution
	res.AttributionAlarms = len(attribution.DetectFeatures(lockFeatures))
	res.AttributionTriggered = res.AttributionAlarms > 0
	res.TriggeredP95 = lockP95
	if res.AttributionTriggered {
		res.TriggeredP95 = reservationP95
	}
	res.Matrix = append(res.Matrix, DefensePoint{
		Attack:       "memory-lock",
		Defense:      "attribution-triggered-reservation",
		ClientP95:    res.TriggeredP95,
		DegradationD: res.Matrix[0].DegradationD,
		Mitigated:    res.TriggeredP95 < time.Second,
	})

	if path := opts.path("defense_matrix.csv"); path != "" {
		rows := make([][]string, 0, len(res.Matrix))
		for _, p := range res.Matrix {
			rows = append(rows, []string{
				p.Attack, p.Defense,
				strconv.FormatFloat(p.ClientP95.Seconds()*1000, 'f', 1, 64),
				strconv.FormatFloat(p.DegradationD, 'f', 3, 64),
				strconv.FormatBool(p.Mitigated),
			})
		}
		if err := trace.WriteCSV(path, []string{"attack", "defense", "client_p95_ms", "degradation_d", "mitigated"}, rows); err != nil {
			return nil, err
		}
	}
	return res, nil
}
