package memmodel

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestHostConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*HostConfig)
	}{
		{"zero packages", func(c *HostConfig) { c.Packages = 0 }},
		{"zero cores", func(c *HostConfig) { c.CoresPerPackage = 0 }},
		{"zero bandwidth", func(c *HostConfig) { c.BusBandwidthMBps = 0 }},
		{"zero core demand", func(c *HostConfig) { c.SingleCoreDemandMBps = 0 }},
		{"overhead 1", func(c *HostConfig) { c.ContentionOverhead = 1 }},
		{"negative overhead", func(c *HostConfig) { c.ContentionOverhead = -0.1 }},
		{"numa 0", func(c *HostConfig) { c.NUMAEfficiency = 0 }},
		{"numa >1", func(c *HostConfig) { c.NUMAEfficiency = 1.5 }},
		{"lock fraction 0", func(c *HostConfig) { c.LockBandwidthFraction = 0 }},
		{"negative eviction", func(c *HostConfig) { c.EvictionPressure = -1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := XeonE5_2603v3()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := XeonE5_2603v3().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if err := EC2DedicatedHost().Validate(); err != nil {
		t.Errorf("EC2 config rejected: %v", err)
	}
}

func TestAddVMValidation(t *testing.T) {
	h, err := NewHost(XeonE5_2603v3())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddVM(VM{ID: "", Package: 0}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := h.AddVM(VM{ID: "a", Package: 5}); err == nil {
		t.Error("out-of-range package accepted")
	}
	if _, err := h.AddVM(VM{ID: "a", Package: 0}); err != nil {
		t.Fatalf("valid VM rejected: %v", err)
	}
	if _, err := h.AddVM(VM{ID: "a", Package: 1}); err == nil {
		t.Error("duplicate ID accepted")
	}
	// Fill package 0 (one slot used already).
	for i := 1; i < 6; i++ {
		if _, err := h.AddVM(VM{ID: fmt.Sprintf("p0-%d", i), Package: 0}); err != nil {
			t.Fatalf("filling package 0: %v", err)
		}
	}
	if _, err := h.AddVM(VM{ID: "overflow", Package: 0}); err == nil {
		t.Error("over-packed package accepted")
	}
	// Host-wide capacity: 12 cores total, 6 used.
	for i := 0; i < 6; i++ {
		if _, err := h.AddVM(VM{ID: fmt.Sprintf("f-%d", i), Package: FloatingPackage}); err != nil {
			t.Fatalf("adding floating VM %d: %v", i, err)
		}
	}
	if _, err := h.AddVM(VM{ID: "too-many", Package: FloatingPackage}); err == nil {
		t.Error("host over capacity accepted")
	}
}

func TestFinding1SingleVMDoesNotSaturateBus(t *testing.T) {
	cfg := XeonE5_2603v3()
	p, err := Profile(ProfileSpec{Host: cfg, VMs: 1, Placement: PlacementSamePackage, Kind: AttackBusSaturation})
	if err != nil {
		t.Fatal(err)
	}
	if p.PerVMMBps >= cfg.BusBandwidthMBps {
		t.Errorf("one VM pulled %v MB/s, bus capacity %v: should not saturate", p.PerVMMBps, cfg.BusBandwidthMBps)
	}
	if p.PerVMMBps != cfg.SingleCoreDemandMBps {
		t.Errorf("one VM alone should get its full core demand %v, got %v", cfg.SingleCoreDemandMBps, p.PerVMMBps)
	}
}

func TestFinding2PerVMBandwidthDecreases(t *testing.T) {
	cfg := XeonE5_2603v3()
	for _, placement := range []PlacementMode{PlacementSamePackage, PlacementRandomPackage} {
		sweep, err := Sweep(ProfileSpec{Host: cfg, VMs: 6, Placement: placement, Kind: AttackBusSaturation})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(sweep); i++ {
			if sweep[i].PerVMMBps > sweep[i-1].PerVMMBps {
				t.Errorf("%v: per-VM bandwidth increased from %d to %d VMs (%v -> %v)",
					placement, i, i+1, sweep[i-1].PerVMMBps, sweep[i].PerVMMBps)
			}
		}
		if sweep[5].PerVMMBps >= sweep[0].PerVMMBps {
			t.Errorf("%v: no net degradation across sweep", placement)
		}
	}
}

func TestFinding2RandomPackageDegradesLess(t *testing.T) {
	cfg := XeonE5_2603v3()
	same, err := Sweep(ProfileSpec{Host: cfg, VMs: 6, Placement: PlacementSamePackage, Kind: AttackBusSaturation})
	if err != nil {
		t.Fatal(err)
	}
	random, err := Sweep(ProfileSpec{Host: cfg, VMs: 6, Placement: PlacementRandomPackage, Kind: AttackBusSaturation})
	if err != nil {
		t.Fatal(err)
	}
	// With enough sharers to exceed one package's bus, floating over two
	// packages must leave each VM more bandwidth.
	for k := 3; k <= 6; k++ {
		if random[k-1].PerVMMBps <= same[k-1].PerVMMBps {
			t.Errorf("at %d VMs random-package (%v) not above same-package (%v)",
				k, random[k-1].PerVMMBps, same[k-1].PerVMMBps)
		}
	}
}

func TestFinding3LockBeatsSaturation(t *testing.T) {
	cfg := XeonE5_2603v3()
	for k := 1; k <= 6; k++ {
		sat, err := Profile(ProfileSpec{Host: cfg, VMs: k, Placement: PlacementSamePackage, Kind: AttackBusSaturation})
		if err != nil {
			t.Fatal(err)
		}
		lock, err := Profile(ProfileSpec{Host: cfg, VMs: k, Placement: PlacementSamePackage, Kind: AttackMemoryLock, LockDuty: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		if lock.PerVMMBps >= sat.PerVMMBps {
			t.Errorf("at %d VMs lock attack (%v MB/s) not more effective than saturation (%v MB/s)",
				k, lock.PerVMMBps, sat.PerVMMBps)
		}
	}
}

func TestAllocateMaxMinFairness(t *testing.T) {
	cfg := XeonE5_2603v3()
	cfg.ContentionOverhead = 0
	h, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One small demand and two large demands on the same bus.
	mustAdd(t, h, VM{ID: "small", Package: 0, Workload: WorkloadVictim, DemandMBps: 1000})
	mustAdd(t, h, VM{ID: "big1", Package: 0, Workload: WorkloadStream, DemandMBps: 9000})
	mustAdd(t, h, VM{ID: "big2", Package: 0, Workload: WorkloadStream, DemandMBps: 9000})
	alloc := h.Allocate()
	if got := alloc.PerVM["small"]; got != 1000 {
		t.Errorf("small demand got %v, want fully satisfied 1000", got)
	}
	// Remaining 16000 split evenly between the two big demands.
	if alloc.PerVM["big1"] != alloc.PerVM["big2"] {
		t.Errorf("equal demands got unequal shares: %v vs %v", alloc.PerVM["big1"], alloc.PerVM["big2"])
	}
	if got := alloc.PerVM["big1"]; got != 8000 {
		t.Errorf("big demand got %v, want 8000", got)
	}
}

func TestAllocateConservation(t *testing.T) {
	f := func(demands []uint16) bool {
		cfg := XeonE5_2603v3()
		h, err := NewHost(cfg)
		if err != nil {
			return false
		}
		n := len(demands)
		if n > cfg.CoresPerPackage {
			n = cfg.CoresPerPackage
		}
		for i := 0; i < n; i++ {
			d := float64(demands[i])
			if _, err := h.AddVM(VM{ID: fmt.Sprintf("vm%d", i), Package: 0, Workload: WorkloadStream, DemandMBps: d}); err != nil {
				return false
			}
		}
		alloc := h.Allocate()
		total := 0.0
		for i := 0; i < n; i++ {
			bw := alloc.PerVM[fmt.Sprintf("vm%d", i)]
			if bw < 0 {
				return false
			}
			d := float64(demands[i])
			if d > cfg.SingleCoreDemandMBps {
				d = cfg.SingleCoreDemandMBps
			}
			if bw > d+1e-9 {
				return false // never grant above demand
			}
			total += bw
		}
		return total <= cfg.BusBandwidthMBps+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLockSeverityCapsAtOne(t *testing.T) {
	h, err := NewHost(XeonE5_2603v3())
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, h, VM{ID: "l1", Package: 0, Workload: WorkloadLock, LockDuty: 0.8})
	mustAdd(t, h, VM{ID: "l2", Package: 0, Workload: WorkloadLock, LockDuty: 0.8})
	mustAdd(t, h, VM{ID: "victim", Package: 0, Workload: WorkloadVictim, DemandMBps: 3000})
	alloc := h.Allocate()
	if alloc.LockSeverity != 1 {
		t.Errorf("LockSeverity = %v, want capped 1", alloc.LockSeverity)
	}
	if alloc.PerVM["victim"] <= 0 {
		t.Errorf("victim bandwidth %v, want positive floor", alloc.PerVM["victim"])
	}
}

func TestSetWorkloadTogglesAllocation(t *testing.T) {
	h, err := NewHost(XeonE5_2603v3())
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, h, VM{ID: "victim", Package: 0, Workload: WorkloadVictim, DemandMBps: 3000})
	mustAdd(t, h, VM{ID: "adv", Package: 0, Workload: WorkloadIdle})

	before, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	if before != 3000 {
		t.Fatalf("victim alone should be satisfied, got %v", before)
	}
	if err := h.SetWorkload("adv", WorkloadLock, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	during, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	if during >= before {
		t.Errorf("lock attack did not reduce victim bandwidth: %v -> %v", before, during)
	}
	if err := h.SetWorkload("adv", WorkloadIdle, 0, 0); err != nil {
		t.Fatal(err)
	}
	after, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("bandwidth did not recover after attack: %v vs %v", after, before)
	}
}

func TestSetWorkloadUnknownVM(t *testing.T) {
	h, err := NewHost(XeonE5_2603v3())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetWorkload("ghost", WorkloadLock, 0, 1); err == nil {
		t.Error("unknown VM accepted")
	}
	if _, err := h.AvailableBandwidth("ghost"); err == nil {
		t.Error("unknown VM accepted in AvailableBandwidth")
	}
	if _, err := h.LLCMissRate("ghost"); err == nil {
		t.Error("unknown VM accepted in LLCMissRate")
	}
}

func mustAdd(t *testing.T, h *Host, vm VM) *VM {
	t.Helper()
	v, err := h.AddVM(vm)
	if err != nil {
		t.Fatalf("AddVM(%q): %v", vm.ID, err)
	}
	return v
}
