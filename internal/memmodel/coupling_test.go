package memmodel

import (
	"testing"
	"testing/quick"
)

func TestCapacityMultiplierFullBandwidth(t *testing.T) {
	p := MySQLProfile()
	if d := CapacityMultiplier(p, p.DemandMBps, 0); d != 1 {
		t.Errorf("full bandwidth D = %v, want 1", d)
	}
	if d := CapacityMultiplier(p, p.DemandMBps*10, 0); d != 1 {
		t.Errorf("surplus bandwidth D = %v, want 1", d)
	}
}

func TestCapacityMultiplierDegradesWithBandwidth(t *testing.T) {
	p := MySQLProfile()
	prev := 1.0
	for _, frac := range []float64{0.8, 0.5, 0.25, 0.1, 0.05} {
		d := CapacityMultiplier(p, p.DemandMBps*frac, 0)
		if d >= prev {
			t.Errorf("D did not decrease at bandwidth fraction %v: %v >= %v", frac, d, prev)
		}
		if d <= 0 || d > 1 {
			t.Errorf("D out of range at fraction %v: %v", frac, d)
		}
		prev = d
	}
}

func TestCapacityMultiplierLockSeverity(t *testing.T) {
	p := MySQLProfile()
	noLock := CapacityMultiplier(p, p.DemandMBps/4, 0)
	withLock := CapacityMultiplier(p, p.DemandMBps/4, 1)
	if withLock >= noLock {
		t.Errorf("lock severity did not worsen degradation: %v vs %v", withLock, noLock)
	}
}

func TestCapacityMultiplierZeroBandwidthFloor(t *testing.T) {
	p := MySQLProfile()
	d := CapacityMultiplier(p, 0, 1)
	if d <= 0 {
		t.Errorf("D = %v, want positive floor", d)
	}
	if d > 0.1 {
		t.Errorf("D = %v under total starvation, want near floor", d)
	}
}

func TestCapacityMultiplierPureComputeImmune(t *testing.T) {
	p := VictimProfile{StallFraction: 0, DemandMBps: 100}
	if d := CapacityMultiplier(p, 1, 0); d != 1 {
		t.Errorf("pure-compute victim degraded to %v under bandwidth loss", d)
	}
	// But a bus lock still cannot hurt a workload that never touches
	// memory in this model.
	if d := CapacityMultiplier(p, 1, 1); d != 1 {
		t.Errorf("pure-compute victim degraded to %v under lock", d)
	}
}

func TestCapacityMultiplierBoundsProperty(t *testing.T) {
	f := func(stallRaw, demandRaw, availRaw, lockRaw uint16) bool {
		p := VictimProfile{
			StallFraction: float64(stallRaw%1000) / 1001, // in [0,1)
			DemandMBps:    float64(demandRaw%20000) + 1,
		}
		avail := float64(availRaw % 30000)
		lock := float64(lockRaw%1000) / 999
		d := CapacityMultiplier(p, avail, lock)
		return d > 0 && d <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCapacityMultiplierMonotoneInBandwidth(t *testing.T) {
	f := func(availA, availB uint16) bool {
		p := MySQLProfile()
		a, b := float64(availA), float64(availB)
		if a > b {
			a, b = b, a
		}
		return CapacityMultiplier(p, a, 0.5) <= CapacityMultiplier(p, b, 0.5)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDegradationIndex(t *testing.T) {
	tests := []struct {
		rMax, r, want float64
	}{
		{100, 0, 1},
		{100, 100, 0},
		{100, 90, 0.1},
		{100, 150, 0}, // over-consumption clamps to 0
		{0, 50, 1},    // degenerate host
	}
	for _, tc := range tests {
		if got := DegradationIndex(tc.rMax, tc.r); got < tc.want-1e-12 || got > tc.want+1e-12 {
			t.Errorf("DegradationIndex(%v, %v) = %v, want %v", tc.rMax, tc.r, got, tc.want)
		}
	}
}

func TestVictimProfileValidate(t *testing.T) {
	if err := MySQLProfile().Validate(); err != nil {
		t.Errorf("MySQL profile rejected: %v", err)
	}
	if err := (VictimProfile{StallFraction: 1, DemandMBps: 100}).Validate(); err == nil {
		t.Error("StallFraction 1 accepted")
	}
	if err := (VictimProfile{StallFraction: 0.5, DemandMBps: 0}).Validate(); err == nil {
		t.Error("zero demand accepted")
	}
}

func TestLLCMissRates(t *testing.T) {
	h, err := NewHost(XeonE5_2603v3())
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	mustAdd(t, h, VM{ID: "victim", Package: 0, Workload: WorkloadVictim, DemandMBps: 3000})
	mustAdd(t, h, VM{ID: "adv", Package: 0, Workload: WorkloadIdle})

	base, err := h.LLCMissRate("victim")
	if err != nil {
		t.Fatal(err)
	}
	if base != cfg.VictimBaselineMissRate {
		t.Errorf("victim baseline misses = %v, want %v", base, cfg.VictimBaselineMissRate)
	}

	// Bus-saturation attack: attacker misses a lot, victim inflated.
	if err := h.SetWorkload("adv", WorkloadStream, cfg.SingleCoreDemandMBps, 0); err != nil {
		t.Fatal(err)
	}
	advMisses, err := h.LLCMissRate("adv")
	if err != nil {
		t.Fatal(err)
	}
	if advMisses != cfg.StreamMissRate {
		t.Errorf("streaming attacker misses = %v, want %v", advMisses, cfg.StreamMissRate)
	}
	victimDuringStream, err := h.LLCMissRate("victim")
	if err != nil {
		t.Fatal(err)
	}
	if victimDuringStream <= base {
		t.Errorf("stream attack did not inflate victim misses: %v vs %v", victimDuringStream, base)
	}

	// Memory-lock attack: near-invisible to an LLC profiler.
	if err := h.SetWorkload("adv", WorkloadLock, 0, 1); err != nil {
		t.Fatal(err)
	}
	lockMisses, err := h.LLCMissRate("adv")
	if err != nil {
		t.Fatal(err)
	}
	if lockMisses >= advMisses/1000 {
		t.Errorf("lock attacker misses %v not orders of magnitude below streaming %v", lockMisses, advMisses)
	}
	victimDuringLock, err := h.LLCMissRate("victim")
	if err != nil {
		t.Fatal(err)
	}
	if victimDuringLock != base {
		t.Errorf("lock attack changed victim miss rate: %v vs %v", victimDuringLock, base)
	}
}

func TestLLCMissRateCrossPackage(t *testing.T) {
	h, err := NewHost(XeonE5_2603v3())
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	mustAdd(t, h, VM{ID: "victim", Package: 0, Workload: WorkloadVictim, DemandMBps: 3000})
	mustAdd(t, h, VM{ID: "adv", Package: 1, Workload: WorkloadStream, DemandMBps: cfg.SingleCoreDemandMBps})
	got, err := h.LLCMissRate("victim")
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg.VictimBaselineMissRate {
		t.Errorf("cross-package streamer inflated victim misses: %v vs %v", got, cfg.VictimBaselineMissRate)
	}
}

func TestProfileBandwidthErrors(t *testing.T) {
	if _, err := ProfileBandwidth(XeonE5_2603v3(), 0, PlacementSamePackage, AttackBusSaturation, 0); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := BandwidthSweep(XeonE5_2603v3(), 0, PlacementSamePackage, AttackBusSaturation, 0); err == nil {
		t.Error("zero maxVMs accepted")
	}
	bad := XeonE5_2603v3()
	bad.Packages = 0
	if _, err := ProfileBandwidth(bad, 1, PlacementSamePackage, AttackBusSaturation, 0); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStringers(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{WorkloadIdle.String(), "idle"},
		{WorkloadStream.String(), "stream"},
		{WorkloadLock.String(), "lock"},
		{WorkloadVictim.String(), "victim"},
		{Workload(99).String(), "Workload(99)"},
		{AttackBusSaturation.String(), "bus-saturation"},
		{AttackMemoryLock.String(), "memory-lock"},
		{AttackKind(99).String(), "AttackKind(99)"},
		{PlacementSamePackage.String(), "same-package"},
		{PlacementRandomPackage.String(), "random-package"},
		{PlacementMode(99).String(), "PlacementMode(99)"},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}
