package memmodel

import "fmt"

// AttackKind selects which memory attack an adversary VM runs.
type AttackKind int

// Attack kinds.
const (
	// AttackBusSaturation streams through memory to saturate the bus.
	AttackBusSaturation AttackKind = iota + 1
	// AttackMemoryLock triggers bus locks with unaligned atomics.
	AttackMemoryLock
)

// String implements fmt.Stringer.
func (k AttackKind) String() string {
	switch k {
	case AttackBusSaturation:
		return "bus-saturation"
	case AttackMemoryLock:
		return "memory-lock"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// PlacementMode selects the VM placement of the Figure 3 profiling
// experiments.
type PlacementMode int

// Placement modes.
const (
	// PlacementSamePackage pins every VM to package 0.
	PlacementSamePackage PlacementMode = iota + 1
	// PlacementRandomPackage lets VMs float over all packages.
	PlacementRandomPackage
)

// String implements fmt.Stringer.
func (m PlacementMode) String() string {
	switch m {
	case PlacementSamePackage:
		return "same-package"
	case PlacementRandomPackage:
		return "random-package"
	default:
		return fmt.Sprintf("PlacementMode(%d)", int(m))
	}
}

// BandwidthPoint is one measurement of the Figure 3 sweep.
type BandwidthPoint struct {
	VMs       int           `json:"vms"`
	Placement PlacementMode `json:"placement"`
	Attack    AttackKind    `json:"attack"`
	// PerVMMBps is the bandwidth each measuring VM obtains.
	PerVMMBps float64 `json:"per_vm_mbps"`
	// AggregateMBps is the total across measuring VMs.
	AggregateMBps float64 `json:"aggregate_mbps"`
}

// ProfileSpec describes one bandwidth-profiling experiment: the host
// model, the number of measuring VMs, their placement, and the attack that
// runs alongside. It replaces the five-positional-argument profiling
// calls; a zero LockDuty with Kind == AttackMemoryLock means the adversary
// never locks, so callers normally want 1.0 there.
type ProfileSpec struct {
	// Host is the physical host's memory-subsystem model.
	Host HostConfig
	// VMs is the number of measuring VMs; for Sweep it is the maximum of
	// the 1..VMs curve.
	VMs int
	// Placement pins VMs to one package or lets them float.
	Placement PlacementMode
	// Kind selects the co-running attack program.
	Kind AttackKind
	// LockDuty is the bus-lock duty cycle in [0,1], used only by
	// AttackMemoryLock.
	LockDuty float64
}

// Profile reproduces the paper's Section III measurement: spec.VMs
// co-located VMs run a RAMspeed-style benchmark under the given placement,
// and the attack runs alongside. For AttackBusSaturation the measuring VMs
// themselves are the saturating load (as in the paper, where the benchmark
// doubles as the attack program); for AttackMemoryLock one extra adversary
// VM holds bus locks at the given duty cycle.
func Profile(spec ProfileSpec) (BandwidthPoint, error) {
	cfg, vms, placement, attack, lockDuty := spec.Host, spec.VMs, spec.Placement, spec.Kind, spec.LockDuty
	if vms <= 0 {
		return BandwidthPoint{}, fmt.Errorf("memmodel: need at least one measuring VM, got %d", vms)
	}
	h, err := NewHost(cfg)
	if err != nil {
		return BandwidthPoint{}, err
	}
	pkg := FloatingPackage
	if placement == PlacementSamePackage {
		pkg = 0
	}
	for i := 0; i < vms; i++ {
		_, err := h.AddVM(VM{
			ID:         fmt.Sprintf("meas-%d", i),
			Package:    pkg,
			Workload:   WorkloadStream,
			DemandMBps: cfg.SingleCoreDemandMBps,
		})
		if err != nil {
			return BandwidthPoint{}, fmt.Errorf("placing measuring VM %d: %w", i, err)
		}
	}
	if attack == AttackMemoryLock {
		// Bus locks are system-wide, so the adversary's placement does
		// not matter; float it so it never competes for a core slot with
		// the measuring VMs.
		if _, err := h.AddVM(VM{ID: "adversary", Package: FloatingPackage, Workload: WorkloadLock, LockDuty: lockDuty}); err != nil {
			return BandwidthPoint{}, fmt.Errorf("placing adversary VM: %w", err)
		}
	}
	alloc := h.Allocate()
	point := BandwidthPoint{VMs: vms, Placement: placement, Attack: attack}
	for i := 0; i < vms; i++ {
		bw := alloc.PerVM[fmt.Sprintf("meas-%d", i)]
		point.AggregateMBps += bw
	}
	point.PerVMMBps = point.AggregateMBps / float64(vms)
	return point, nil
}

// Sweep runs Profile for 1..spec.VMs measuring VMs, producing one curve of
// Figure 3.
func Sweep(spec ProfileSpec) ([]BandwidthPoint, error) {
	if spec.VMs <= 0 {
		return nil, fmt.Errorf("memmodel: maxVMs must be positive, got %d", spec.VMs)
	}
	out := make([]BandwidthPoint, 0, spec.VMs)
	for k := 1; k <= spec.VMs; k++ {
		at := spec
		at.VMs = k
		p, err := Profile(at)
		if err != nil {
			return nil, fmt.Errorf("sweep at %d VMs: %w", k, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// ProfileBandwidth is the positional-argument form of Profile.
//
// Deprecated: use Profile with a ProfileSpec.
func ProfileBandwidth(cfg HostConfig, vms int, placement PlacementMode, attack AttackKind, lockDuty float64) (BandwidthPoint, error) {
	return Profile(ProfileSpec{Host: cfg, VMs: vms, Placement: placement, Kind: attack, LockDuty: lockDuty})
}

// BandwidthSweep is the positional-argument form of Sweep.
//
// Deprecated: use Sweep with a ProfileSpec.
func BandwidthSweep(cfg HostConfig, maxVMs int, placement PlacementMode, attack AttackKind, lockDuty float64) ([]BandwidthPoint, error) {
	return Sweep(ProfileSpec{Host: cfg, VMs: maxVMs, Placement: placement, Kind: attack, LockDuty: lockDuty})
}
