package memmodel

import "fmt"

// AttackKind selects which memory attack an adversary VM runs.
type AttackKind int

// Attack kinds.
const (
	// AttackBusSaturation streams through memory to saturate the bus.
	AttackBusSaturation AttackKind = iota + 1
	// AttackMemoryLock triggers bus locks with unaligned atomics.
	AttackMemoryLock
)

// String implements fmt.Stringer.
func (k AttackKind) String() string {
	switch k {
	case AttackBusSaturation:
		return "bus-saturation"
	case AttackMemoryLock:
		return "memory-lock"
	default:
		return fmt.Sprintf("AttackKind(%d)", int(k))
	}
}

// PlacementMode selects the VM placement of the Figure 3 profiling
// experiments.
type PlacementMode int

// Placement modes.
const (
	// PlacementSamePackage pins every VM to package 0.
	PlacementSamePackage PlacementMode = iota + 1
	// PlacementRandomPackage lets VMs float over all packages.
	PlacementRandomPackage
)

// String implements fmt.Stringer.
func (m PlacementMode) String() string {
	switch m {
	case PlacementSamePackage:
		return "same-package"
	case PlacementRandomPackage:
		return "random-package"
	default:
		return fmt.Sprintf("PlacementMode(%d)", int(m))
	}
}

// BandwidthPoint is one measurement of the Figure 3 sweep.
type BandwidthPoint struct {
	VMs       int           `json:"vms"`
	Placement PlacementMode `json:"placement"`
	Attack    AttackKind    `json:"attack"`
	// PerVMMBps is the bandwidth each measuring VM obtains.
	PerVMMBps float64 `json:"per_vm_mbps"`
	// AggregateMBps is the total across measuring VMs.
	AggregateMBps float64 `json:"aggregate_mbps"`
}

// ProfileBandwidth reproduces the paper's Section III measurement: k
// co-located VMs run a RAMspeed-style benchmark under the given placement,
// and the attack runs alongside. For AttackBusSaturation the measuring VMs
// themselves are the saturating load (as in the paper, where the benchmark
// doubles as the attack program); for AttackMemoryLock one extra adversary
// VM holds bus locks at the given duty cycle.
func ProfileBandwidth(cfg HostConfig, vms int, placement PlacementMode, attack AttackKind, lockDuty float64) (BandwidthPoint, error) {
	if vms <= 0 {
		return BandwidthPoint{}, fmt.Errorf("memmodel: need at least one measuring VM, got %d", vms)
	}
	h, err := NewHost(cfg)
	if err != nil {
		return BandwidthPoint{}, err
	}
	pkg := FloatingPackage
	if placement == PlacementSamePackage {
		pkg = 0
	}
	for i := 0; i < vms; i++ {
		_, err := h.AddVM(VM{
			ID:         fmt.Sprintf("meas-%d", i),
			Package:    pkg,
			Workload:   WorkloadStream,
			DemandMBps: cfg.SingleCoreDemandMBps,
		})
		if err != nil {
			return BandwidthPoint{}, fmt.Errorf("placing measuring VM %d: %w", i, err)
		}
	}
	if attack == AttackMemoryLock {
		// Bus locks are system-wide, so the adversary's placement does
		// not matter; float it so it never competes for a core slot with
		// the measuring VMs.
		if _, err := h.AddVM(VM{ID: "adversary", Package: FloatingPackage, Workload: WorkloadLock, LockDuty: lockDuty}); err != nil {
			return BandwidthPoint{}, fmt.Errorf("placing adversary VM: %w", err)
		}
	}
	alloc := h.Allocate()
	point := BandwidthPoint{VMs: vms, Placement: placement, Attack: attack}
	for i := 0; i < vms; i++ {
		bw := alloc.PerVM[fmt.Sprintf("meas-%d", i)]
		point.AggregateMBps += bw
	}
	point.PerVMMBps = point.AggregateMBps / float64(vms)
	return point, nil
}

// BandwidthSweep runs ProfileBandwidth for 1..maxVMs VMs, producing one
// curve of Figure 3.
func BandwidthSweep(cfg HostConfig, maxVMs int, placement PlacementMode, attack AttackKind, lockDuty float64) ([]BandwidthPoint, error) {
	if maxVMs <= 0 {
		return nil, fmt.Errorf("memmodel: maxVMs must be positive, got %d", maxVMs)
	}
	out := make([]BandwidthPoint, 0, maxVMs)
	for k := 1; k <= maxVMs; k++ {
		p, err := ProfileBandwidth(cfg, k, placement, attack, lockDuty)
		if err != nil {
			return nil, fmt.Errorf("sweep at %d VMs: %w", k, err)
		}
		out = append(out, p)
	}
	return out, nil
}
