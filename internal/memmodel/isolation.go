package memmodel

import "fmt"

// The isolation primitives below model the two defense families the
// paper's related-work section discusses (Heracles-style resource
// partitioning) and the split-lock mitigation modern kernels ship. They
// have an instructive asymmetry: bandwidth partitioning blunts the
// bus-saturation attack but cannot stop a split-lock attack (the lock
// stalls the bus below the partitioning layer), while split-lock
// protection neutralizes the lock attack specifically.

// ReserveBandwidth guarantees a VM a bandwidth floor (MB/s), as a memory-
// bandwidth-allocation (MBA) or Heracles-style partition would. During
// allocation the reservation is carved out of the VM's domain capacity
// before fair sharing; it does not protect against bus locks.
func (h *Host) ReserveBandwidth(id string, mbps float64) error {
	if _, err := h.VM(id); err != nil {
		return err
	}
	if mbps < 0 {
		return fmt.Errorf("memmodel: reservation must be non-negative, got %v", mbps)
	}
	if mbps > h.cfg.BusBandwidthMBps {
		return fmt.Errorf("memmodel: reservation %v exceeds bus capacity %v", mbps, h.cfg.BusBandwidthMBps)
	}
	if h.reservations == nil {
		h.reservations = make(map[string]float64)
	}
	if mbps == 0 {
		delete(h.reservations, id)
		return nil
	}
	h.reservations[id] = mbps
	return nil
}

// Reservation returns a VM's bandwidth floor (0 when none).
func (h *Host) Reservation(id string) float64 {
	return h.reservations[id]
}

// SetSplitLockProtection toggles the split-lock mitigation: when enabled,
// unaligned atomics that would assert a system-wide bus lock are trapped
// and emulated, so the locking VM's interference collapses (at the cost of
// the attacker's own throughput, which we do not need to model further).
func (h *Host) SetSplitLockProtection(enabled bool) {
	h.splitLockProtection = enabled
}

// SplitLockProtection reports whether the mitigation is enabled.
func (h *Host) SplitLockProtection() bool { return h.splitLockProtection }
