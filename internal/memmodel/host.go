// Package memmodel models the shared on-chip memory subsystem of a
// multi-package cloud host: per-package memory bus bandwidth, last-level
// cache, VM placement, and the two memory-attack programs the paper
// measures (bus saturation and exotic-atomic memory locking).
//
// The model answers two questions the rest of the reproduction depends on:
//
//  1. How much memory bandwidth is available to each co-located VM under a
//     given mix of workloads? (Figure 3)
//  2. How does a victim VM's effective CPU capacity degrade when its
//     available bandwidth shrinks? (the cross-resource coupling that turns a
//     memory attack into transient CPU saturation — the "CA" in MemCA)
//
// It also emits last-level-cache miss rates per VM, which back the
// OProfile-style detection experiment (Figure 11).
package memmodel

import (
	"cmp"
	"fmt"
	"slices"
)

// Workload identifies what a VM is currently running, from the memory
// subsystem's point of view.
type Workload int

// Workload values.
const (
	// WorkloadIdle consumes no memory bandwidth.
	WorkloadIdle Workload = iota + 1
	// WorkloadStream runs a RAMspeed-style sequential scan that pulls as
	// much bandwidth as the core can sustain. Both the bandwidth
	// measurement program and the bus-saturation attack use this.
	WorkloadStream
	// WorkloadLock runs the exotic-atomic locking attack: unaligned atomic
	// operations spanning two cache lines assert a bus lock that blocks
	// all other memory traffic for its duration.
	WorkloadLock
	// WorkloadVictim runs an application (e.g. MySQL) with a moderate,
	// latency-critical memory demand.
	WorkloadVictim
)

// String implements fmt.Stringer.
func (w Workload) String() string {
	switch w {
	case WorkloadIdle:
		return "idle"
	case WorkloadStream:
		return "stream"
	case WorkloadLock:
		return "lock"
	case WorkloadVictim:
		return "victim"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// FloatingPackage marks a VM that is not pinned and floats over all
// packages (the common cloud scheduling practice).
const FloatingPackage = -1

// HostConfig describes the memory subsystem of one physical host.
type HostConfig struct {
	// Packages is the number of processor packages (sockets).
	Packages int
	// CoresPerPackage bounds how many single-vCPU VMs a package hosts.
	CoresPerPackage int
	// LLCPerPackageMB is the last-level cache per package in MiB.
	LLCPerPackageMB float64
	// BusBandwidthMBps is the measured per-package memory bus capacity in
	// MB/s (aggregate across channels, as a streaming benchmark sees it).
	BusBandwidthMBps float64
	// SingleCoreDemandMBps is the maximum bandwidth one core can pull,
	// which is below the package bus capacity on modern parts (paper
	// finding 1: one VM cannot saturate the bus).
	SingleCoreDemandMBps float64
	// ContentionOverhead is the fractional capacity loss per additional
	// active VM sharing a bus, modelling scheduler/row-buffer interference.
	ContentionOverhead float64
	// NUMAEfficiency scales pooled cross-package capacity for floating
	// VMs (remote accesses are slower than local ones).
	NUMAEfficiency float64
	// LockBandwidthFraction is the fraction of bus capacity that remains
	// available to other VMs while a locking attack runs at 100% duty.
	// Split-lock bus locks are system-wide, so this applies across
	// packages.
	LockBandwidthFraction float64
	// VictimBaselineMissRate is the victim application's LLC miss rate
	// (misses/s) when running alone.
	VictimBaselineMissRate float64
	// StreamMissRate is an attacker's own LLC miss rate while streaming
	// (roughly demand / cache-line size).
	StreamMissRate float64
	// LockMissRate is an attacker's own LLC miss rate while locking
	// (negligible: the working set is two cache lines).
	LockMissRate float64
	// EvictionPressure is the multiplier applied to a victim's baseline
	// miss rate per co-located streaming VM on the same package, modelling
	// LLC cleansing.
	EvictionPressure float64
}

// Validate reports the first configuration error, or nil.
func (c HostConfig) Validate() error {
	switch {
	case c.Packages <= 0:
		return fmt.Errorf("memmodel: Packages must be positive, got %d", c.Packages)
	case c.CoresPerPackage <= 0:
		return fmt.Errorf("memmodel: CoresPerPackage must be positive, got %d", c.CoresPerPackage)
	case c.BusBandwidthMBps <= 0:
		return fmt.Errorf("memmodel: BusBandwidthMBps must be positive, got %v", c.BusBandwidthMBps)
	case c.SingleCoreDemandMBps <= 0:
		return fmt.Errorf("memmodel: SingleCoreDemandMBps must be positive, got %v", c.SingleCoreDemandMBps)
	case c.ContentionOverhead < 0 || c.ContentionOverhead >= 1:
		return fmt.Errorf("memmodel: ContentionOverhead must be in [0,1), got %v", c.ContentionOverhead)
	case c.NUMAEfficiency <= 0 || c.NUMAEfficiency > 1:
		return fmt.Errorf("memmodel: NUMAEfficiency must be in (0,1], got %v", c.NUMAEfficiency)
	case c.LockBandwidthFraction <= 0 || c.LockBandwidthFraction > 1:
		return fmt.Errorf("memmodel: LockBandwidthFraction must be in (0,1], got %v", c.LockBandwidthFraction)
	case c.EvictionPressure < 0:
		return fmt.Errorf("memmodel: EvictionPressure must be non-negative, got %v", c.EvictionPressure)
	}
	return nil
}

// XeonE5_2603v3 returns the paper's private-cloud host: a 2-package,
// 6-core-per-package Intel Xeon E5-2603 v3 with 15 MB LLC per package.
// Bandwidth figures are representative streaming-benchmark values for that
// part (DDR4-1600, 4 channels), not theoretical maxima.
func XeonE5_2603v3() HostConfig {
	return HostConfig{
		Packages:               2,
		CoresPerPackage:        6,
		LLCPerPackageMB:        15,
		BusBandwidthMBps:       17000,
		SingleCoreDemandMBps:   9000,
		ContentionOverhead:     0.03,
		NUMAEfficiency:         0.85,
		LockBandwidthFraction:  0.06,
		VictimBaselineMissRate: 2e5,
		StreamMissRate:         1.4e8,
		LockMissRate:           2e3,
		EvictionPressure:       0.9,
	}
}

// EC2DedicatedHost returns a model of the paper's EC2 dedicated node (two
// ten-core Xeon E5-2680, 64 GB): more cores and more bandwidth per package,
// same sharing behaviour.
func EC2DedicatedHost() HostConfig {
	cfg := XeonE5_2603v3()
	cfg.CoresPerPackage = 10
	cfg.LLCPerPackageMB = 25
	cfg.BusBandwidthMBps = 25000
	cfg.SingleCoreDemandMBps = 11000
	return cfg
}

// VM is one virtual machine placed on the host. Fields are mutated through
// Host methods so the host can keep derived state consistent.
type VM struct {
	// ID is the caller-chosen unique identifier.
	ID string
	// Package is the package index the VM is pinned to, or
	// FloatingPackage.
	Package int
	// Workload is what the VM currently runs.
	Workload Workload
	// DemandMBps is the bandwidth the VM would consume unconstrained.
	// Ignored for WorkloadIdle and WorkloadLock.
	DemandMBps float64
	// LockDuty is the fraction of time the bus lock is held while
	// Workload == WorkloadLock (1 = continuous locking).
	LockDuty float64
}

// Host is a physical machine with a set of co-located VMs. Methods are not
// safe for concurrent use; the simulator is single-threaded.
type Host struct {
	cfg HostConfig
	vms []*VM

	// reservations maps VM ID to a guaranteed bandwidth floor (MB/s);
	// see ReserveBandwidth.
	reservations map[string]float64
	// splitLockProtection traps bus locks; see SetSplitLockProtection.
	splitLockProtection bool

	// Scratch reused across allocate calls so the burst-transition path
	// (attack.MemoryInjector -> VMAllocation) performs no steady-state
	// allocations. Methods are single-threaded (see type comment), so one
	// set per host suffices.
	perVMScratch  map[string]float64
	pinnedScratch [][]demander
	floatScratch  []demander
	sharedScratch []demander
}

// demander is one VM with positive effective bandwidth demand, grouped by
// sharing domain during allocation.
type demander struct {
	vm     *VM
	demand float64
}

// NewHost returns a host with the given configuration and no VMs.
func NewHost(cfg HostConfig) (*Host, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Host{cfg: cfg}, nil
}

// Config returns the host configuration.
func (h *Host) Config() HostConfig { return h.cfg }

// VMs returns the VMs in placement order. The returned slice is shared;
// callers must not append to it.
func (h *Host) VMs() []*VM { return h.vms }

// AddVM places a VM on the host. It returns an error when the ID is
// duplicated, the package index is invalid, or the host is out of cores
// (each VM is single-vCPU, matching the paper's profiling setup).
func (h *Host) AddVM(vm VM) (*VM, error) {
	if vm.ID == "" {
		return nil, fmt.Errorf("memmodel: VM ID must not be empty")
	}
	if vm.Package != FloatingPackage && (vm.Package < 0 || vm.Package >= h.cfg.Packages) {
		return nil, fmt.Errorf("memmodel: package %d out of range [0,%d)", vm.Package, h.cfg.Packages)
	}
	if vm.Workload == 0 {
		vm.Workload = WorkloadIdle
	}
	if len(h.vms) >= h.cfg.Packages*h.cfg.CoresPerPackage {
		return nil, fmt.Errorf("memmodel: host is full (%d cores)", h.cfg.Packages*h.cfg.CoresPerPackage)
	}
	if vm.Package != FloatingPackage {
		onPkg := 0
		for _, v := range h.vms {
			if v.Package == vm.Package {
				onPkg++
			}
		}
		if onPkg >= h.cfg.CoresPerPackage {
			return nil, fmt.Errorf("memmodel: package %d is full (%d cores)", vm.Package, h.cfg.CoresPerPackage)
		}
	}
	for _, v := range h.vms {
		if v.ID == vm.ID {
			return nil, fmt.Errorf("memmodel: duplicate VM ID %q", vm.ID)
		}
	}
	cp := vm
	h.vms = append(h.vms, &cp)
	return &cp, nil
}

// VM returns the VM with the given ID, or an error when absent.
func (h *Host) VM(id string) (*VM, error) {
	for _, v := range h.vms {
		if v.ID == id {
			return v, nil
		}
	}
	return nil, fmt.Errorf("memmodel: no VM %q on host", id)
}

// SetWorkload switches a VM's workload, e.g. when an attack burst starts or
// ends.
func (h *Host) SetWorkload(id string, w Workload, demandMBps, lockDuty float64) error {
	vm, err := h.VM(id)
	if err != nil {
		return err
	}
	vm.Workload = w
	vm.DemandMBps = demandMBps
	vm.LockDuty = lockDuty
	return nil
}

// lockSeverity returns the combined lock duty across all locking VMs,
// capped at 1. Bus locks from split atomics are system-wide — unless the
// host traps them (split-lock protection), in which case they never reach
// the bus.
func (h *Host) lockSeverity() float64 {
	if h.splitLockProtection {
		return 0
	}
	duty := 0.0
	for _, v := range h.vms {
		if v.Workload == WorkloadLock {
			duty += v.LockDuty
		}
	}
	if duty > 1 {
		duty = 1
	}
	return duty
}

// Allocation is the result of dividing bus bandwidth among active VMs.
type Allocation struct {
	// PerVM maps VM ID to available bandwidth in MB/s. Idle and locking
	// VMs get an entry of 0 and their own (tiny) demand respectively.
	PerVM map[string]float64
	// LockSeverity is the system-wide bus-lock duty in effect.
	LockSeverity float64
}

// Allocate computes the bandwidth available to every VM under the current
// workload mix using max-min fair sharing of per-package (or pooled, for
// floating VMs) capacity, after subtracting lock-attack degradation and
// per-VM contention overhead. The returned map is freshly allocated and
// owned by the caller; the burst-transition hot path uses VMAllocation
// instead.
func (h *Host) Allocate() Allocation {
	perVM, severity := h.allocate()
	out := make(map[string]float64, len(perVM))
	for id, bw := range perVM {
		out[id] = bw
	}
	return Allocation{PerVM: out, LockSeverity: severity}
}

// VMAllocation returns the bandwidth available to one VM and the
// system-wide lock severity without materializing an Allocation. A
// missing ID yields 0 bandwidth, matching an absent Allocation.PerVM
// entry. Attack burst transitions call this on every flank, so it reuses
// host-owned scratch and performs no steady-state allocations.
//
//memca:hotpath
func (h *Host) VMAllocation(id string) (bandwidthMBps, lockSeverity float64) {
	perVM, severity := h.allocate()
	return perVM[id], severity
}

// allocate computes the current allocation into the host's scratch map,
// which stays valid until the next allocate call.
func (h *Host) allocate() (map[string]float64, float64) {
	if h.perVMScratch == nil {
		h.perVMScratch = make(map[string]float64, len(h.vms))
	}
	clear(h.perVMScratch)
	if len(h.pinnedScratch) < h.cfg.Packages {
		h.pinnedScratch = make([][]demander, h.cfg.Packages)
	}
	for i := range h.pinnedScratch {
		h.pinnedScratch[i] = h.pinnedScratch[i][:0]
	}
	h.floatScratch = h.floatScratch[:0]

	perVM := h.perVMScratch
	severity := h.lockSeverity()

	// System-wide factor from bus locking.
	lockFactor := 1 - severity*(1-h.cfg.LockBandwidthFraction)

	// Group demanding VMs by domain: one domain per package for pinned
	// VMs, plus a pooled domain for floating VMs. Floating VMs share the
	// pooled capacity of all packages at NUMA efficiency, minus what the
	// pinned VMs consume.
	for _, v := range h.vms {
		var d float64
		switch v.Workload {
		case WorkloadStream, WorkloadVictim:
			d = v.DemandMBps
			if d > h.cfg.SingleCoreDemandMBps {
				d = h.cfg.SingleCoreDemandMBps
			}
		case WorkloadLock:
			perVM[v.ID] = 0 // a locker transfers almost nothing
			continue
		default:
			perVM[v.ID] = 0
			continue
		}
		if d <= 0 {
			perVM[v.ID] = 0
			continue
		}
		if v.Package == FloatingPackage {
			h.floatScratch = append(h.floatScratch, demander{vm: v, demand: d})
		} else {
			h.pinnedScratch[v.Package] = append(h.pinnedScratch[v.Package], demander{vm: v, demand: d})
		}
	}

	pinnedUse := 0.0
	for pkg := 0; pkg < h.cfg.Packages; pkg++ {
		h.fairShare(perVM, lockFactor, h.cfg.BusBandwidthMBps, h.pinnedScratch[pkg])
		// Sum in the original placement order (fairShare sorts only its
		// own copy), keeping the float accumulation byte-stable.
		for _, d := range h.pinnedScratch[pkg] {
			pinnedUse += perVM[d.vm.ID]
		}
	}
	pooled := float64(h.cfg.Packages)*h.cfg.BusBandwidthMBps*h.cfg.NUMAEfficiency - pinnedUse
	if pooled < 0 {
		pooled = 0
	}
	h.fairShare(perVM, lockFactor, pooled, h.floatScratch)
	return perVM, severity
}

// fairShare grants each demander its max-min fair share of capacity and
// records the grants into perVM. ds itself is left untouched: the
// demand-sorted working copy lives in the host's shared scratch.
func (h *Host) fairShare(perVM map[string]float64, lockFactor, capacity float64, ds []demander) {
	if len(ds) == 0 {
		return
	}
	// Reserved VMs take their dedicated partition off the top: the
	// partition is immune to contention overhead but not to bus
	// locks (hardware stalls sit below the partitioning layer).
	h.sharedScratch = h.sharedScratch[:0]
	for _, d := range ds {
		if r := h.reservations[d.vm.ID]; r > 0 {
			grant := d.demand
			if grant > r {
				grant = r
			}
			if grant > capacity {
				grant = capacity
			}
			perVM[d.vm.ID] = grant * lockFactor
			capacity -= grant
			continue
		}
		h.sharedScratch = append(h.sharedScratch, d)
	}
	ds = h.sharedScratch
	if len(ds) == 0 {
		return
	}
	// Contention overhead shrinks capacity as sharers increase.
	capacity *= 1 - h.cfg.ContentionOverhead*float64(len(ds)-1)
	if capacity < 0 {
		capacity = 0
	}
	// Max-min fair: satisfy the smallest demands first, then split
	// what is left evenly among the still-unsatisfied. The comparator is
	// a total order (IDs are unique), so any sort yields one sequence.
	slices.SortFunc(ds, func(a, b demander) int {
		if a.demand < b.demand {
			return -1
		}
		if b.demand < a.demand {
			return 1
		}
		return cmp.Compare(a.vm.ID, b.vm.ID)
	})
	remaining := capacity
	left := len(ds)
	for _, d := range ds {
		share := remaining / float64(left)
		grant := d.demand
		if grant > share {
			grant = share
		}
		perVM[d.vm.ID] = grant * lockFactor
		remaining -= grant
		left--
	}
}

// AvailableBandwidth returns the bandwidth available to one VM under the
// current mix, in MB/s.
func (h *Host) AvailableBandwidth(id string) (float64, error) {
	if _, err := h.VM(id); err != nil {
		return 0, err
	}
	bw, _ := h.VMAllocation(id)
	return bw, nil
}

// LLCMissRate returns the current LLC miss rate (misses/s) a profiler like
// OProfile would attribute to the given VM.
//
// A streaming VM misses at StreamMissRate by itself and additionally
// inflates same-package victims' miss rates through eviction pressure. A
// locking VM barely touches the cache: its attack is invisible to an
// LLC-miss profiler (the paper's Figure 11b).
func (h *Host) LLCMissRate(id string) (float64, error) {
	vm, err := h.VM(id)
	if err != nil {
		return 0, err
	}
	switch vm.Workload {
	case WorkloadStream:
		return h.cfg.StreamMissRate, nil
	case WorkloadLock:
		return h.cfg.LockMissRate, nil
	case WorkloadIdle:
		return 0, nil
	}
	// Victim: baseline plus eviction pressure from streaming neighbours
	// in the same cache domain (same package, or anywhere for floaters).
	rate := h.cfg.VictimBaselineMissRate
	for _, v := range h.vms {
		if v.ID == vm.ID || v.Workload != WorkloadStream {
			continue
		}
		samePackage := vm.Package == FloatingPackage || v.Package == FloatingPackage || v.Package == vm.Package
		if samePackage {
			rate += h.cfg.VictimBaselineMissRate * h.cfg.EvictionPressure
		}
	}
	return rate, nil
}
