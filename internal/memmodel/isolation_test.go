package memmodel

import "testing"

func isolationHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost(XeonE5_2603v3())
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, h, VM{ID: "victim", Package: 0, Workload: WorkloadVictim, DemandMBps: 3000})
	mustAdd(t, h, VM{ID: "adv1", Package: 0, Workload: WorkloadIdle})
	mustAdd(t, h, VM{ID: "adv2", Package: 0, Workload: WorkloadIdle})
	return h
}

func TestReserveBandwidthValidation(t *testing.T) {
	h := isolationHost(t)
	if err := h.ReserveBandwidth("ghost", 1000); err == nil {
		t.Error("unknown VM accepted")
	}
	if err := h.ReserveBandwidth("victim", -1); err == nil {
		t.Error("negative reservation accepted")
	}
	if err := h.ReserveBandwidth("victim", 99999); err == nil {
		t.Error("reservation above bus capacity accepted")
	}
	if err := h.ReserveBandwidth("victim", 3000); err != nil {
		t.Fatalf("valid reservation rejected: %v", err)
	}
	if got := h.Reservation("victim"); got != 3000 {
		t.Errorf("Reservation = %v", got)
	}
	if err := h.ReserveBandwidth("victim", 0); err != nil {
		t.Fatalf("clearing reservation: %v", err)
	}
	if got := h.Reservation("victim"); got != 0 {
		t.Errorf("reservation not cleared: %v", got)
	}
}

func TestReservationProtectsAgainstSaturation(t *testing.T) {
	h := isolationHost(t)
	cfg := h.Config()
	// Fill the rest of the package with streamers.
	for _, id := range []string{"adv1", "adv2"} {
		if err := h.SetWorkload(id, WorkloadStream, cfg.SingleCoreDemandMBps, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		vm := mustAdd(t, h, VM{ID: string(rune('a' + i)), Package: 0})
		if err := h.SetWorkload(vm.ID, WorkloadStream, cfg.SingleCoreDemandMBps, 0); err != nil {
			t.Fatal(err)
		}
	}

	unprotected, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	if unprotected >= 3000 {
		t.Fatalf("saturation should starve the unprotected victim, got %v", unprotected)
	}
	if err := h.ReserveBandwidth("victim", 3000); err != nil {
		t.Fatal(err)
	}
	protected, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	if protected != 3000 {
		t.Errorf("reserved victim got %v, want full 3000", protected)
	}
}

func TestReservationDoesNotStopBusLocks(t *testing.T) {
	h := isolationHost(t)
	if err := h.ReserveBandwidth("victim", 3000); err != nil {
		t.Fatal(err)
	}
	if err := h.SetWorkload("adv1", WorkloadLock, 0, 1); err != nil {
		t.Fatal(err)
	}
	got, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	// The bus lock stalls the partition too: bandwidth collapses despite
	// the reservation.
	if got >= 3000*0.5 {
		t.Errorf("reservation blocked a bus lock: victim still gets %v", got)
	}
}

func TestSplitLockProtectionNeutralizesLockAttack(t *testing.T) {
	h := isolationHost(t)
	if err := h.SetWorkload("adv1", WorkloadLock, 0, 1); err != nil {
		t.Fatal(err)
	}
	before, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	if before >= 3000 {
		t.Fatalf("lock attack ineffective even unprotected: %v", before)
	}
	h.SetSplitLockProtection(true)
	if !h.SplitLockProtection() {
		t.Fatal("protection flag not set")
	}
	after, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	if after != 3000 {
		t.Errorf("protected victim got %v, want full 3000", after)
	}
	alloc := h.Allocate()
	if alloc.LockSeverity != 0 {
		t.Errorf("lock severity %v under protection, want 0", alloc.LockSeverity)
	}
}

func TestSplitLockProtectionLeavesSaturationAlone(t *testing.T) {
	// Split-lock protection is lock-specific: saturation pressure remains.
	h := isolationHost(t)
	h.SetSplitLockProtection(true)
	cfg := h.Config()
	for _, id := range []string{"adv1", "adv2"} {
		if err := h.SetWorkload(id, WorkloadStream, cfg.SingleCoreDemandMBps, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		vm := mustAdd(t, h, VM{ID: string(rune('a' + i)), Package: 0})
		if err := h.SetWorkload(vm.ID, WorkloadStream, cfg.SingleCoreDemandMBps, 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := h.AvailableBandwidth("victim")
	if err != nil {
		t.Fatal(err)
	}
	if got >= 3000 {
		t.Errorf("saturation should still bite under split-lock protection, got %v", got)
	}
}
