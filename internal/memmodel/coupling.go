package memmodel

import "fmt"

// VictimProfile characterizes how sensitive a victim application's
// throughput is to memory-bandwidth loss. The model splits each unit of
// work into a compute part and a memory part; the memory part stretches in
// proportion to the bandwidth shortfall, and bus-lock duty stalls
// everything while the lock is held.
type VictimProfile struct {
	// StallFraction is the fraction of service time spent waiting on
	// memory at full bandwidth (0 = pure compute, 1 = pure memory).
	StallFraction float64
	// DemandMBps is the bandwidth the victim needs to run at full speed.
	DemandMBps float64
}

// Validate reports the first profile error, or nil.
func (p VictimProfile) Validate() error {
	if p.StallFraction < 0 || p.StallFraction >= 1 {
		return fmt.Errorf("memmodel: StallFraction must be in [0,1), got %v", p.StallFraction)
	}
	if p.DemandMBps <= 0 {
		return fmt.Errorf("memmodel: DemandMBps must be positive, got %v", p.DemandMBps)
	}
	return nil
}

// MySQLProfile returns a representative profile for the paper's victim: a
// database whose working set misses the LLC often enough that about half
// of its service time is memory stalls.
func MySQLProfile() VictimProfile {
	return VictimProfile{StallFraction: 0.5, DemandMBps: 3000}
}

// CapacityMultiplier returns the victim's effective capacity as a fraction
// of its unconstrained capacity, given the bandwidth available to it and
// the system-wide bus-lock severity. This is the paper's degradation index
// D seen from the mechanism side: Equation (3)'s C_ON = D * C_OFF.
//
// With available bandwidth b and demand d, the memory portion of each unit
// of work inflates by d/b, so
//
//	slowdown = (1 - s) + s * max(1, d/b)
//
// and a bus lock additionally freezes all memory traffic for lockSeverity
// of the time:
//
//	D = (1 - lockSeverity*s) / slowdown, clamped to (0, 1].
//
// A zero available bandwidth with positive demand yields the configured
// floor rather than 0, because in reality locks release and schedulers
// make some progress; the floor keeps queueing-model service rates finite.
func CapacityMultiplier(p VictimProfile, availMBps, lockSeverity float64) float64 {
	const floor = 0.02
	if err := p.Validate(); err != nil {
		return 1 // invalid profiles mean "no victim modelled"
	}
	if lockSeverity < 0 {
		lockSeverity = 0
	}
	if lockSeverity > 1 {
		lockSeverity = 1
	}
	stretch := 1.0
	if availMBps <= 0 {
		stretch = 1 / floor
	} else if p.DemandMBps > availMBps {
		stretch = p.DemandMBps / availMBps
	}
	slowdown := (1 - p.StallFraction) + p.StallFraction*stretch
	d := (1 - lockSeverity*p.StallFraction) / slowdown
	if d < floor {
		d = floor
	}
	if d > 1 {
		d = 1
	}
	return d
}

// DegradationIndex is the paper's Equation (2): D = (Rmax - R) / Rmax,
// where R is the attack's resource consumption per burst and Rmax the
// host's peak capacity. It returns a value clamped to [0, 1].
func DegradationIndex(rMax, r float64) float64 {
	if rMax <= 0 {
		return 1
	}
	d := (rMax - r) / rMax
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}
