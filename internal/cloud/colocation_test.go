package cloud

import (
	"math/rand"
	"testing"

	"memca/internal/memmodel"
)

func campaignPlatform(t *testing.T) *Platform {
	t.Helper()
	p := NewPlatform()
	if _, err := p.AddHost("host1", memmodel.XeonE5_2603v3()); err != nil {
		t.Fatal(err)
	}
	if err := p.Place("mysql", "host1", C3Large(), 0); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCoLocationCampaignValidation(t *testing.T) {
	p := campaignPlatform(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := p.RunCoLocationCampaign(nil, DefaultCoLocationCampaign(), "adv", "mysql", PrivateCloudVM()); err == nil {
		t.Error("nil rng accepted")
	}
	bad := DefaultCoLocationCampaign()
	bad.SuccessProbability = 0
	if _, err := p.RunCoLocationCampaign(rng, bad, "adv", "mysql", PrivateCloudVM()); err == nil {
		t.Error("zero probability accepted")
	}
	bad = DefaultCoLocationCampaign()
	bad.CostPerAttempt = -1
	if _, err := p.RunCoLocationCampaign(rng, bad, "adv", "mysql", PrivateCloudVM()); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := p.RunCoLocationCampaign(rng, DefaultCoLocationCampaign(), "adv", "ghost", PrivateCloudVM()); err == nil {
		t.Error("unplaced target accepted")
	}
}

func TestCoLocationCampaignSucceedsAndPlaces(t *testing.T) {
	p := campaignPlatform(t)
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultCoLocationCampaign()
	out, err := p.RunCoLocationCampaign(rng, cfg, "adv", "mysql", PrivateCloudVM())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Succeeded {
		t.Fatalf("campaign failed in %d attempts at p=%v", out.Attempts, cfg.SuccessProbability)
	}
	if out.Cost != float64(out.Attempts)*cfg.CostPerAttempt {
		t.Errorf("cost %v for %d attempts at %v each", out.Cost, out.Attempts, cfg.CostPerAttempt)
	}
	advHost, err := p.HostOf("adv")
	if err != nil {
		t.Fatal(err)
	}
	if advHost.ID != "host1" {
		t.Errorf("adversary on %q, want host1", advHost.ID)
	}
}

func TestCoLocationCampaignCostMatchesPaperRange(t *testing.T) {
	// Expected cost = CostPerAttempt / p. Over many campaigns at the
	// paper's parameters the mean cost should land inside the measured
	// $0.137-$5.304 range.
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultCoLocationCampaign()
	total := 0.0
	const runs = 2000
	for i := 0; i < runs; i++ {
		p := NewPlatform()
		if _, err := p.AddHost("h", memmodel.XeonE5_2603v3()); err != nil {
			t.Fatal(err)
		}
		if err := p.Place("mysql", "h", C3Large(), 0); err != nil {
			t.Fatal(err)
		}
		out, err := p.RunCoLocationCampaign(rng, cfg, "adv", "mysql", PrivateCloudVM())
		if err != nil {
			t.Fatal(err)
		}
		total += out.Cost
	}
	mean := total / runs
	want := cfg.CostPerAttempt / cfg.SuccessProbability
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("mean cost %v, want ~%v (geometric)", mean, want)
	}
	if mean < 0.137 || mean > 5.304 {
		t.Errorf("mean cost $%.3f outside the paper's measured range", mean)
	}
}

func TestCoLocationCampaignBounded(t *testing.T) {
	p := campaignPlatform(t)
	rng := rand.New(rand.NewSource(1))
	cfg := CoLocationCampaignConfig{SuccessProbability: 1e-9, CostPerAttempt: 1, MaxAttempts: 5}
	out, err := p.RunCoLocationCampaign(rng, cfg, "adv", "mysql", PrivateCloudVM())
	if err != nil {
		t.Fatal(err)
	}
	if out.Succeeded {
		t.Error("campaign at p=1e-9 should fail")
	}
	if out.Attempts != 5 {
		t.Errorf("attempts = %d, want capped 5", out.Attempts)
	}
	if _, err := p.HostOf("adv"); err == nil {
		t.Error("failed campaign still placed the adversary")
	}
}
