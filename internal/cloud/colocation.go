package cloud

import (
	"fmt"
	"math/rand"
)

// CoLocationCampaignConfig models the adversary's placement step (Section
// II-B): repeatedly launching probe VMs until one lands on the target's
// host. The paper cites Varadarajan et al.'s measured economics: success
// probability per placement round between 0.6 and 0.89, total cost between
// $0.137 and $5.304.
type CoLocationCampaignConfig struct {
	// SuccessProbability is the chance one placement round co-locates.
	SuccessProbability float64
	// CostPerAttempt is the dollar cost of one probe VM round (instance
	// time plus verification traffic).
	CostPerAttempt float64
	// MaxAttempts bounds the campaign; 0 means unbounded.
	MaxAttempts int
}

// DefaultCoLocationCampaign returns the midpoint of the measured range.
func DefaultCoLocationCampaign() CoLocationCampaignConfig {
	return CoLocationCampaignConfig{
		SuccessProbability: 0.75,
		CostPerAttempt:     0.8,
		MaxAttempts:        20,
	}
}

// Validate reports the first configuration error, or nil.
func (c CoLocationCampaignConfig) Validate() error {
	if c.SuccessProbability <= 0 || c.SuccessProbability > 1 {
		return fmt.Errorf("cloud: SuccessProbability must be in (0,1], got %v", c.SuccessProbability)
	}
	if c.CostPerAttempt < 0 {
		return fmt.Errorf("cloud: CostPerAttempt must be non-negative, got %v", c.CostPerAttempt)
	}
	if c.MaxAttempts < 0 {
		return fmt.Errorf("cloud: MaxAttempts must be non-negative, got %d", c.MaxAttempts)
	}
	return nil
}

// CoLocationOutcome summarizes one campaign.
type CoLocationOutcome struct {
	// Succeeded reports whether a probe VM landed on the target host.
	Succeeded bool
	// Attempts is how many placement rounds ran.
	Attempts int
	// Cost is the total dollars spent.
	Cost float64
}

// RunCoLocationCampaign simulates the placement step: geometric trials at
// the configured success probability. On success it actually places the
// adversary VM next to the target on the platform.
func (p *Platform) RunCoLocationCampaign(rng *rand.Rand, cfg CoLocationCampaignConfig, adversaryID, targetVMID string, instType InstanceType) (CoLocationOutcome, error) {
	if rng == nil {
		return CoLocationOutcome{}, fmt.Errorf("cloud: rng must not be nil")
	}
	if err := cfg.Validate(); err != nil {
		return CoLocationOutcome{}, err
	}
	if _, ok := p.placements[targetVMID]; !ok {
		return CoLocationOutcome{}, fmt.Errorf("cloud: target VM %q not placed", targetVMID)
	}
	out := CoLocationOutcome{}
	for {
		out.Attempts++
		out.Cost += cfg.CostPerAttempt
		if rng.Float64() < cfg.SuccessProbability {
			out.Succeeded = true
			break
		}
		if cfg.MaxAttempts > 0 && out.Attempts >= cfg.MaxAttempts {
			break
		}
	}
	if !out.Succeeded {
		return out, nil
	}
	if err := p.CoLocate(adversaryID, targetVMID, instType, 0); err != nil {
		return out, fmt.Errorf("cloud: campaign placement: %w", err)
	}
	return out, nil
}
