package cloud

import (
	"fmt"
	"time"

	"memca/internal/monitor"
	"memca/internal/queueing"
	"memca/internal/sim"
)

// ScalingGroupConfig wires a live Auto Scaling group to one tier.
type ScalingGroupConfig struct {
	// Engine drives the periodic trigger evaluation.
	Engine *sim.Engine
	// Network and Tier locate the fleet being scaled.
	Network *queueing.Network
	Tier    int
	// Trigger is the CloudWatch-style policy.
	Trigger monitor.AutoScalerConfig
	// MaxInstances caps the fleet (initial fleet is 1).
	MaxInstances int
	// ProvisionDelay is how long a new instance takes to come up before
	// it adds capacity (EC2 boots are minutes; default 1 minute).
	ProvisionDelay time.Duration
}

// ScalingGroup periodically evaluates the trigger against the tier's real
// utilization and grows the fleet when it breaches — the live counterpart
// of the offline monitor.AutoScaler analysis.
type ScalingGroup struct {
	cfg       ScalingGroupConfig
	instances int
	running   bool
	breaching int
	cooldown  time.Duration
	events    []monitor.ScaleEvent
}

// NewScalingGroup validates the wiring and builds a group with one
// instance.
func NewScalingGroup(cfg ScalingGroupConfig) (*ScalingGroup, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("cloud: engine must not be nil")
	}
	if cfg.Network == nil {
		return nil, fmt.Errorf("cloud: network must not be nil")
	}
	if cfg.Tier < 0 || cfg.Tier >= cfg.Network.NumTiers() {
		return nil, fmt.Errorf("cloud: tier %d out of range [0,%d)", cfg.Tier, cfg.Network.NumTiers())
	}
	if err := cfg.Trigger.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxInstances <= 0 {
		return nil, fmt.Errorf("cloud: MaxInstances must be positive, got %d", cfg.MaxInstances)
	}
	if cfg.ProvisionDelay < 0 {
		return nil, fmt.Errorf("cloud: ProvisionDelay must be non-negative, got %v", cfg.ProvisionDelay)
	}
	if cfg.ProvisionDelay == 0 {
		cfg.ProvisionDelay = time.Minute
	}
	return &ScalingGroup{cfg: cfg, instances: 1}, nil
}

// Instances returns the current fleet size (including booting instances).
func (g *ScalingGroup) Instances() int { return g.instances }

// Events returns the scale-out actions taken so far.
func (g *ScalingGroup) Events() []monitor.ScaleEvent {
	out := make([]monitor.ScaleEvent, len(g.events))
	copy(out, g.events)
	return out
}

// Start begins trigger evaluation at the configured period.
func (g *ScalingGroup) Start() {
	if g.running {
		return
	}
	g.running = true
	g.scheduleEval()
}

// Stop halts trigger evaluation.
func (g *ScalingGroup) Stop() { g.running = false }

func (g *ScalingGroup) scheduleEval() {
	g.cfg.Engine.Schedule(g.cfg.Trigger.Period, func() {
		if !g.running {
			return
		}
		g.evaluate()
		g.scheduleEval()
	})
}

func (g *ScalingGroup) evaluate() {
	now := g.cfg.Engine.Now()
	from := now - g.cfg.Trigger.Period
	if from < 0 {
		from = 0
	}
	util, err := g.cfg.Network.TierUtilization(g.cfg.Tier, from, now)
	if err != nil {
		panic(err) // tier validated at construction
	}
	if util > g.cfg.Trigger.Threshold {
		g.breaching++
	} else {
		g.breaching = 0
	}
	if g.breaching < g.cfg.Trigger.ConsecutivePeriods || now < g.cooldown {
		return
	}
	if g.instances >= g.cfg.MaxInstances {
		return
	}
	g.breaching = 0
	g.cooldown = now + g.cfg.Trigger.Cooldown
	g.instances++
	g.events = append(g.events, monitor.ScaleEvent{At: now, Utilization: util})
	target := float64(g.instances)
	g.cfg.Engine.Schedule(g.cfg.ProvisionDelay, func() {
		// Capacity arrives when the instance finishes booting.
		if err := g.cfg.Network.SetCapacityScale(g.cfg.Tier, target); err != nil {
			panic(err)
		}
	})
}
