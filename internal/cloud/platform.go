// Package cloud models the IaaS platform hosting the target n-tier system:
// physical hosts with the memmodel memory subsystem, VM placement (and the
// adversary's co-location step), instance types, and a live Auto Scaling
// group that grows a tier's fleet when the CloudWatch-style trigger fires
// — the elasticity mechanism the MemCA attack is shown to bypass.
package cloud

import (
	"fmt"

	"memca/internal/memmodel"
)

// InstanceType names a VM shape, matching the paper's deployments.
type InstanceType struct {
	// Name is the provider's type name.
	Name string
	// VCPUs is the virtual CPU count.
	VCPUs int
	// MemoryGB is the instance memory.
	MemoryGB float64
}

// C3Large is the paper's EC2 instance type (2 vCPU, 3.75 GB).
func C3Large() InstanceType { return InstanceType{Name: "c3.large", VCPUs: 2, MemoryGB: 3.75} }

// PrivateCloudVM is the paper's private-cloud VM shape (1 vCPU, 2 GB).
func PrivateCloudVM() InstanceType { return InstanceType{Name: "private-1vcpu", VCPUs: 1, MemoryGB: 2} }

// HostNode is one physical machine with its memory-subsystem model.
type HostNode struct {
	// ID is the platform-unique host name.
	ID string
	// Mem models the host's shared on-chip memory resources.
	Mem *memmodel.Host
}

// Placement records where a VM landed.
type Placement struct {
	// VM is the VM ID.
	VM string
	// Host is the host ID.
	Host string
	// Type is the instance shape.
	Type InstanceType
}

// Platform is a small IaaS: hosts plus a placement map.
type Platform struct {
	hosts      []*HostNode
	placements map[string]Placement
}

// NewPlatform returns an empty platform.
func NewPlatform() *Platform {
	return &Platform{placements: make(map[string]Placement)}
}

// AddHost registers a physical machine. Host IDs must be unique.
func (p *Platform) AddHost(id string, cfg memmodel.HostConfig) (*HostNode, error) {
	if id == "" {
		return nil, fmt.Errorf("cloud: host ID must not be empty")
	}
	for _, h := range p.hosts {
		if h.ID == id {
			return nil, fmt.Errorf("cloud: duplicate host ID %q", id)
		}
	}
	mem, err := memmodel.NewHost(cfg)
	if err != nil {
		return nil, fmt.Errorf("cloud: host %q: %w", id, err)
	}
	node := &HostNode{ID: id, Mem: mem}
	p.hosts = append(p.hosts, node)
	return node, nil
}

// Host returns the host with the given ID.
func (p *Platform) Host(id string) (*HostNode, error) {
	for _, h := range p.hosts {
		if h.ID == id {
			return h, nil
		}
	}
	return nil, fmt.Errorf("cloud: no host %q", id)
}

// Hosts returns all hosts in registration order (shared slice; do not
// append).
func (p *Platform) Hosts() []*HostNode { return p.hosts }

// Place puts a VM of the given type on a host. pkg is the package pin, or
// memmodel.FloatingPackage.
func (p *Platform) Place(vmID, hostID string, instType InstanceType, pkg int) error {
	if _, dup := p.placements[vmID]; dup {
		return fmt.Errorf("cloud: VM %q already placed", vmID)
	}
	host, err := p.Host(hostID)
	if err != nil {
		return err
	}
	if _, err := host.Mem.AddVM(memmodel.VM{ID: vmID, Package: pkg}); err != nil {
		return fmt.Errorf("cloud: placing %q on %q: %w", vmID, hostID, err)
	}
	p.placements[vmID] = Placement{VM: vmID, Host: hostID, Type: instType}
	return nil
}

// HostOf returns the host node a VM runs on.
func (p *Platform) HostOf(vmID string) (*HostNode, error) {
	pl, ok := p.placements[vmID]
	if !ok {
		return nil, fmt.Errorf("cloud: VM %q not placed", vmID)
	}
	return p.Host(pl.Host)
}

// CoLocate places an adversary VM on the same host as the target VM — the
// attack's prerequisite step (the paper cites Ristenpart-style placement
// techniques; here the platform grants it directly since co-location is
// orthogonal to the study).
func (p *Platform) CoLocate(adversaryID, targetVMID string, instType InstanceType, pkg int) error {
	pl, ok := p.placements[targetVMID]
	if !ok {
		return fmt.Errorf("cloud: target VM %q not placed", targetVMID)
	}
	return p.Place(adversaryID, pl.Host, instType, pkg)
}

// Placements returns a copy of the placement table.
func (p *Platform) Placements() map[string]Placement {
	out := make(map[string]Placement, len(p.placements))
	for k, v := range p.placements {
		out[k] = v
	}
	return out
}
