package cloud

import (
	"testing"
	"time"

	"memca/internal/memmodel"
	"memca/internal/monitor"
	"memca/internal/queueing"
	"memca/internal/sim"
)

func TestPlatformPlacement(t *testing.T) {
	p := NewPlatform()
	if _, err := p.AddHost("host1", memmodel.XeonE5_2603v3()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddHost("host1", memmodel.XeonE5_2603v3()); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := p.AddHost("", memmodel.XeonE5_2603v3()); err == nil {
		t.Error("empty host ID accepted")
	}
	bad := memmodel.XeonE5_2603v3()
	bad.Packages = 0
	if _, err := p.AddHost("host2", bad); err == nil {
		t.Error("invalid host config accepted")
	}

	if err := p.Place("mysql", "host1", C3Large(), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Place("mysql", "host1", C3Large(), 0); err != nil {
		// placement is recorded once
	} else {
		t.Error("duplicate VM placement accepted")
	}
	if err := p.Place("x", "ghost", C3Large(), 0); err == nil {
		t.Error("unknown host accepted")
	}

	h, err := p.HostOf("mysql")
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != "host1" {
		t.Errorf("HostOf = %q, want host1", h.ID)
	}
	if _, err := p.HostOf("ghost"); err == nil {
		t.Error("unplaced VM accepted")
	}
	if len(p.Hosts()) != 1 {
		t.Errorf("Hosts() = %d, want 1", len(p.Hosts()))
	}
}

func TestCoLocation(t *testing.T) {
	p := NewPlatform()
	if _, err := p.AddHost("host1", memmodel.XeonE5_2603v3()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddHost("host2", memmodel.XeonE5_2603v3()); err != nil {
		t.Fatal(err)
	}
	if err := p.Place("mysql", "host2", C3Large(), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.CoLocate("adversary", "mysql", PrivateCloudVM(), 0); err != nil {
		t.Fatal(err)
	}
	advHost, err := p.HostOf("adversary")
	if err != nil {
		t.Fatal(err)
	}
	victimHost, err := p.HostOf("mysql")
	if err != nil {
		t.Fatal(err)
	}
	if advHost.ID != victimHost.ID {
		t.Errorf("adversary on %q, victim on %q: not co-located", advHost.ID, victimHost.ID)
	}
	// Both VMs visible to the shared memory model.
	if _, err := advHost.Mem.VM("adversary"); err != nil {
		t.Errorf("adversary not in memory model: %v", err)
	}
	if _, err := advHost.Mem.VM("mysql"); err != nil {
		t.Errorf("victim not in memory model: %v", err)
	}
	if err := p.CoLocate("adv2", "ghost", PrivateCloudVM(), 0); err == nil {
		t.Error("co-location with unplaced target accepted")
	}
	pls := p.Placements()
	if len(pls) != 2 {
		t.Errorf("placements = %d, want 2", len(pls))
	}
}

func TestInstanceTypes(t *testing.T) {
	if C3Large().VCPUs != 2 {
		t.Error("c3.large should have 2 vCPUs")
	}
	if PrivateCloudVM().VCPUs != 1 {
		t.Error("private VM should have 1 vCPU")
	}
}

func scalingFixture(t *testing.T, seed int64) (*sim.Engine, *queueing.Network, *queueing.Source) {
	t.Helper()
	e := sim.NewEngine(seed)
	n, err := queueing.New(e, queueing.Config{
		Mode: queueing.ModeNTierRPC,
		Tiers: []queueing.TierConfig{
			{Name: "web", QueueLimit: queueing.Infinite, Servers: 2, Service: sim.NewExponential(4 * time.Millisecond)},
		},
		Classes: []queueing.Class{{Name: "c", Depth: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := queueing.NewPoissonSource(n, queueing.SourceConfig{Class: 0, Rate: 450})
	if err != nil {
		t.Fatal(err)
	}
	return e, n, src
}

func TestScalingGroupGrowsUnderSustainedLoad(t *testing.T) {
	// λ=450/s against 2 servers at 250/s each → 90% utilization:
	// the trigger must fire and the added instance must cut utilization.
	e, n, src := scalingFixture(t, 5)
	g, err := NewScalingGroup(ScalingGroupConfig{
		Engine:         e,
		Network:        n,
		Tier:           0,
		Trigger:        monitor.DefaultAutoScaler(),
		MaxInstances:   4,
		ProvisionDelay: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	g.Start()
	e.Run(10 * time.Minute)
	src.Stop()
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}

	if g.Instances() < 2 {
		t.Fatalf("fleet did not grow under 90%% load: %d instances", g.Instances())
	}
	if len(g.Events()) == 0 {
		t.Fatal("no scale events recorded")
	}
	// After scaling, late-window utilization drops below the trigger.
	lateFrom := 8 * time.Minute
	util, err := n.TierUtilization(0, lateFrom, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if util > 0.85 {
		t.Errorf("utilization after scale-out = %v, want below threshold", util)
	}
	scale, err := n.CapacityScale(0)
	if err != nil {
		t.Fatal(err)
	}
	if scale < 2 {
		t.Errorf("capacity scale = %v, want >= 2", scale)
	}
}

func TestScalingGroupIgnoresMemCABursts(t *testing.T) {
	// Moderate base load plus MemCA-style 500ms/2s full stalls: 1-minute
	// average utilization stays under 85%, so the fleet must not grow —
	// the elasticity bypass of Figure 10.
	e := sim.NewEngine(7)
	n, err := queueing.New(e, queueing.Config{
		Mode: queueing.ModeNTierRPC,
		Tiers: []queueing.TierConfig{
			{Name: "db", QueueLimit: queueing.Infinite, Servers: 2, Service: sim.NewExponential(4 * time.Millisecond)},
		},
		Classes: []queueing.Class{{Name: "c", Depth: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := queueing.NewPoissonSource(n, queueing.SourceConfig{Class: 0, Rate: 200}) // 40% base
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewScalingGroup(ScalingGroupConfig{
		Engine:       e,
		Network:      n,
		Tier:         0,
		Trigger:      monitor.DefaultAutoScaler(),
		MaxInstances: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	g.Start()
	// MemCA bursts for the full horizon.
	var burst func(i int)
	burst = func(i int) {
		if i >= 300 {
			return
		}
		_ = n.SetCapacityMultiplier(0, 0.02)
		e.Schedule(500*time.Millisecond, func() { _ = n.SetCapacityMultiplier(0, 1) })
		e.Schedule(2*time.Second, func() { burst(i + 1) })
	}
	e.Schedule(0, func() { burst(0) })
	e.Run(8 * time.Minute)
	src.Stop()
	g.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if g.Instances() != 1 {
		t.Errorf("MemCA bursts triggered scaling: %d instances", g.Instances())
	}
}

func TestScalingGroupValidation(t *testing.T) {
	e, n, _ := scalingFixture(t, 1)
	good := ScalingGroupConfig{
		Engine:       e,
		Network:      n,
		Tier:         0,
		Trigger:      monitor.DefaultAutoScaler(),
		MaxInstances: 2,
	}
	if _, err := NewScalingGroup(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Engine = nil
	if _, err := NewScalingGroup(bad); err == nil {
		t.Error("nil engine accepted")
	}
	bad = good
	bad.Network = nil
	if _, err := NewScalingGroup(bad); err == nil {
		t.Error("nil network accepted")
	}
	bad = good
	bad.Tier = 9
	if _, err := NewScalingGroup(bad); err == nil {
		t.Error("bad tier accepted")
	}
	bad = good
	bad.Trigger.Threshold = 0
	if _, err := NewScalingGroup(bad); err == nil {
		t.Error("bad trigger accepted")
	}
	bad = good
	bad.MaxInstances = 0
	if _, err := NewScalingGroup(bad); err == nil {
		t.Error("zero max accepted")
	}
	bad = good
	bad.ProvisionDelay = -time.Second
	if _, err := NewScalingGroup(bad); err == nil {
		t.Error("negative provision delay accepted")
	}
}

func TestCapacityScaleComposition(t *testing.T) {
	// Scale 2 with multiplier 0.5 should yield the full-rate completion
	// time: the knobs compose multiplicatively.
	e := sim.NewEngine(1)
	n, err := queueing.New(e, queueing.Config{
		Mode: queueing.ModeNTierRPC,
		Tiers: []queueing.TierConfig{
			{Name: "t", QueueLimit: queueing.Infinite, Servers: 1, Service: sim.NewDeterministic(100 * time.Millisecond)},
		},
		Classes: []queueing.Class{{Name: "c", Depth: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetCapacityScale(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.SetCapacityMultiplier(0, 0.5); err != nil {
		t.Fatal(err)
	}
	var done time.Duration
	if _, err := n.Submit(queueing.SubmitOpts{Class: 0, OnComplete: func(r *queueing.Request) { done = r.Done }}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if done != 100*time.Millisecond {
		t.Errorf("completion at %v, want 100ms (scale and multiplier cancel)", done)
	}
}
