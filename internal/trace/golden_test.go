package trace

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"memca/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden writes one CSV via write, then compares it byte-for-byte
// against testdata/<name>. The CSV formats are artifact contracts —
// figure regeneration promises byte-identical output across runs, worker
// counts, and refactors — so any diff here is a breaking change.
// Regenerate deliberately with: go test ./internal/trace -run Golden -update
func checkGolden(t *testing.T, name string, write func(path string) error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := write(path); err != nil {
		t.Fatalf("writing %s: %v", name, err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s back: %v", name, err)
	}
	goldenPath := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file:\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenPercentileCurveCSV(t *testing.T) {
	percentiles := []float64{50, 90, 95, 99, 99.9}
	curves := map[string][]time.Duration{
		"client": {120 * time.Millisecond, 340 * time.Millisecond, 612 * time.Millisecond, 1850 * time.Millisecond, 3210 * time.Millisecond},
		"apache": {80 * time.Millisecond, 210 * time.Millisecond, 400 * time.Millisecond, 1200 * time.Millisecond, 2900 * time.Millisecond},
		"mysql":  {2 * time.Millisecond, 9 * time.Millisecond, 25 * time.Millisecond, 310 * time.Millisecond, 450 * time.Millisecond},
	}
	checkGolden(t, "percentile_curve.csv", func(path string) error {
		return PercentileCurveCSV(path, percentiles, []string{"client", "apache", "mysql"}, curves)
	})
}

func TestGoldenBucketsCSV(t *testing.T) {
	ts := stats.NewTimeSeries("cpu")
	// A deterministic sawtooth resampled at 1 s: exercises full,
	// partial, and fractional-mean buckets.
	for i := 0; i < 40; i++ {
		ts.Add(time.Duration(i)*250*time.Millisecond, float64(i%8)/8)
	}
	buckets, err := ts.Resample(time.Second, 10*time.Second)
	if err != nil {
		t.Fatalf("resampling: %v", err)
	}
	checkGolden(t, "buckets.csv", func(path string) error {
		return BucketsCSV(path, buckets)
	})
}

func TestGoldenSeriesCSV(t *testing.T) {
	ts := stats.NewTimeSeries("rt")
	// Values picked to pin the 'g'/8-digit float formatting: integers,
	// fractions that need rounding, very small and large magnitudes.
	ts.Add(0, 0)
	ts.Add(500*time.Millisecond, 1)
	ts.Add(time.Second, 0.125)
	ts.Add(1500*time.Millisecond, 2.0/3.0)
	ts.Add(2*time.Second, 1e-9)
	ts.Add(2500*time.Millisecond, 123456.789)
	checkGolden(t, "series.csv", func(path string) error {
		return SeriesCSV(path, ts)
	})
}
