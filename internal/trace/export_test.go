package trace

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"memca/internal/stats"
)

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "out.csv")
	err := WriteCSV(path, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0][0] != "a" || records[2][1] != "4" {
		t.Errorf("unexpected records: %v", records)
	}
}

func TestWriteJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	if err := WriteJSON(path, map[string]int{"x": 7}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got["x"] != 7 {
		t.Errorf("round trip failed: %v", got)
	}
}

func TestBucketsCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.csv")
	buckets := []stats.Bucket{{Start: time.Second, Mean: 0.5, Max: 1, Min: 0, Count: 3}}
	if err := BucketsCSV(path, buckets); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "1.000000,0.5,1,0,3") {
		t.Errorf("unexpected CSV: %s", data)
	}
}

func TestSeriesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.csv")
	ts := stats.NewTimeSeries("x")
	ts.Add(500*time.Millisecond, 2.5)
	if err := SeriesCSV(path, ts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "0.500000,2.5") {
		t.Errorf("unexpected CSV: %s", data)
	}
	if err := SeriesCSV(path, nil); err == nil {
		t.Error("nil series accepted")
	}
}

func TestPercentileCurveCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.csv")
	ps := []float64{50, 95}
	curves := map[string][]time.Duration{
		"client": {10 * time.Millisecond, 1200 * time.Millisecond},
		"mysql":  {2 * time.Millisecond, 300 * time.Millisecond},
	}
	if err := PercentileCurveCSV(path, ps, []string{"client", "mysql"}, curves); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "percentile,client_ms,mysql_ms") {
		t.Errorf("bad header: %s", text)
	}
	if !strings.Contains(text, "95,1200.000,300.000") {
		t.Errorf("bad row: %s", text)
	}
	// Missing curve.
	if err := PercentileCurveCSV(path, ps, []string{"ghost"}, curves); err == nil {
		t.Error("missing curve accepted")
	}
	// Length mismatch.
	short := map[string][]time.Duration{"client": {time.Millisecond}}
	if err := PercentileCurveCSV(path, ps, []string{"client"}, short); err == nil {
		t.Error("short curve accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{Header: []string{"tier", "p95"}}
	tbl.Add("apache", "1.2s")
	tbl.Add("mysql", "300ms")
	out := tbl.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "tier") || !strings.Contains(lines[0], "p95") {
		t.Errorf("bad header line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "apache") {
		t.Errorf("bad row: %q", lines[2])
	}
}
