// Package trace exports experiment artifacts: CSV series for each figure,
// JSON reports, and aligned text tables for terminal output.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"memca/internal/stats"
)

// WriteCSV writes a header and rows to path, creating parent directories.
func WriteCSV(path string, header []string, rows [][]string) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trace: creating directory for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: closing %s: %w", path, cerr)
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return fmt.Errorf("trace: writing header to %s: %w", path, err)
	}
	for i, row := range rows {
		if err := w.Write(row); err != nil {
			return fmt.Errorf("trace: writing row %d to %s: %w", i, path, err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("trace: flushing %s: %w", path, err)
	}
	return nil
}

// WriteJSON writes v as indented JSON to path, creating parent
// directories.
func WriteJSON(path string, v any) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("trace: creating directory for %s: %w", path, err)
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: marshaling for %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return nil
}

// BucketsCSV exports sampled buckets as (start_s, mean, max, min, count).
func BucketsCSV(path string, buckets []stats.Bucket) error {
	rows := make([][]string, 0, len(buckets))
	for _, b := range buckets {
		rows = append(rows, []string{
			formatSeconds(b.Start),
			strconv.FormatFloat(b.Mean, 'g', 8, 64),
			strconv.FormatFloat(b.Max, 'g', 8, 64),
			strconv.FormatFloat(b.Min, 'g', 8, 64),
			strconv.Itoa(b.Count),
		})
	}
	return WriteCSV(path, []string{"start_s", "mean", "max", "min", "count"}, rows)
}

// SeriesCSV exports a raw time series as (t_s, value).
func SeriesCSV(path string, ts *stats.TimeSeries) error {
	if ts == nil {
		return fmt.Errorf("trace: series must not be nil")
	}
	rows := make([][]string, 0, len(ts.Points))
	for _, p := range ts.Points {
		rows = append(rows, []string{formatSeconds(p.T), strconv.FormatFloat(p.V, 'g', 8, 64)})
	}
	return WriteCSV(path, []string{"t_s", "value"}, rows)
}

// PercentileCurveCSV exports percentile curves (one column per named
// series), the format of the paper's Figures 2 and 7. Order fixes the
// column order for the named series.
func PercentileCurveCSV(path string, percentiles []float64, order []string, curves map[string][]time.Duration) error {
	header := make([]string, 0, len(order)+1)
	header = append(header, "percentile")
	for _, name := range order {
		if _, ok := curves[name]; !ok {
			return fmt.Errorf("trace: curve %q missing", name)
		}
		header = append(header, name+"_ms")
	}
	rows := make([][]string, 0, len(percentiles))
	for i, p := range percentiles {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatFloat(p, 'g', 6, 64))
		for _, name := range order {
			curve := curves[name]
			if i >= len(curve) {
				return fmt.Errorf("trace: curve %q has %d points, want %d", name, len(curve), len(percentiles))
			}
			row = append(row, strconv.FormatFloat(float64(curve[i])/float64(time.Millisecond), 'f', 3, 64))
		}
		rows = append(rows, row)
	}
	return WriteCSV(path, header, rows)
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 6, 64)
}

// Table renders aligned text tables for terminal reports.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends one row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
