package dsweep

import (
	"fmt"
	"os"

	"memca/internal/sweep"
)

// Merge validates every shard artifact against the manifest and writes
// the merged artifact: the records for jobs 0..Jobs-1 in index order,
// with no header (see sweep.EncodeRecords). The merged bytes are a pure
// function of the job payloads — independent of the shard count and of
// any kill/resume history — so a merge at 8 shards is byte-identical to
// one at 1 shard, and both to the encoding of a single-process
// sweep.Run's results. An incomplete, torn, or mismatched shard refuses
// to merge; nothing partial is ever written.
func Merge(m *Manifest) error {
	payloads, err := collectShards(m)
	if err != nil {
		return err
	}
	return atomicWrite(m.MergedPath(), sweep.EncodeRecords(payloads))
}

// collectShards recovers every shard and assembles the payloads in job
// index order, failing unless each shard is complete and clean.
func collectShards(m *Manifest) ([][]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	payloads := make([][]byte, m.Jobs)
	for s := 0; s < m.Shards; s++ {
		state, err := RecoverShard(m, s)
		if err != nil {
			return nil, err
		}
		if !state.Complete() {
			return nil, fmt.Errorf("dsweep: shard %d incomplete (%d/%d records) — run or resume it before merging",
				s, state.Done, len(state.Indices))
		}
		if !state.Clean() {
			return nil, fmt.Errorf("dsweep: shard %d has a torn record tail after its last expected record — resume it so the tail is repaired before merging", s)
		}
		for k, idx := range state.Indices {
			payloads[idx] = state.Payloads[k]
		}
	}
	for i, p := range payloads {
		if p == nil {
			return nil, fmt.Errorf("dsweep: job %d has no record after collecting all shards", i)
		}
	}
	return payloads, nil
}

// ReadMerged reads the merged artifact back as payloads in job index
// order, validating the framing and the index sequence.
func ReadMerged(m *Manifest) ([][]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(m.MergedPath())
	if err != nil {
		return nil, fmt.Errorf("dsweep: reading merged artifact: %w", err)
	}
	indices, payloads, err := sweep.DecodeRecords(data)
	if err != nil {
		return nil, fmt.Errorf("dsweep: merged artifact: %w", err)
	}
	if len(payloads) != m.Jobs {
		return nil, fmt.Errorf("dsweep: merged artifact holds %d records, manifest expects %d", len(payloads), m.Jobs)
	}
	for k, idx := range indices {
		if idx != k {
			return nil, fmt.Errorf("dsweep: merged artifact record %d has index %d", k, idx)
		}
	}
	return payloads, nil
}
