// Package dsweep is the distributed execution fabric layered on
// internal/sweep: it runs one sweep's jobs across multiple worker
// processes and merges their results back into a stream that is
// byte-identical to what a single-process sweep.Run would have produced.
//
// The fabric has three pieces:
//
//   - a job manifest (Manifest): a JSON spec naming the figure driver,
//     its configuration, the base seed, the total job count, and the
//     shard plan, carrying a content hash so results from mismatched
//     manifests can never be merged;
//   - shard artifact files: each worker owns the shard
//     {i : sweep.Shard(i, shards) == s} and appends one self-validating,
//     index-keyed record per completed job (see sweep.AppendRecord),
//     fsyncing in batches — the artifact doubles as the checkpoint, so a
//     killed worker resumes from its last durable record;
//   - a merge (Merge): once every shard is complete, the records are
//     reassembled in job-index order into a merged artifact whose bytes
//     are independent of the shard count.
//
// Everything here is deterministic — shard math, record framing, hashing,
// merging — and never reads the wall clock or any RNG; the package sits
// on the simulated side of the clock boundary like internal/sweep itself.
// Process orchestration (spawning workers, monitoring their checkpoints
// on real time, retrying dead shards) lives in dsweep/coord.
package dsweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestVersion is the current manifest schema version. It participates
// in the content hash, so artifacts from different schema generations
// never merge.
const ManifestVersion = 1

// DefaultFsyncEvery is the default checkpoint batch: the artifact file is
// fsynced after every batch of this many records (and always at shard
// completion). Smaller batches lose less work to a kill; larger batches
// cost fewer synchronous disk waits on many-job shards.
const DefaultFsyncEvery = 8

// Manifest is the job spec a distributed sweep runs under. One manifest
// describes one figure-driver invocation: which driver, how many jobs,
// the seed and horizon options the jobs are a pure function of, and how
// the job indices are sharded across worker processes. Workers and the
// coordinator all load the same manifest file; the content hash ties
// every shard artifact to it.
type Manifest struct {
	// Version is the manifest schema version (ManifestVersion).
	Version int `json:"version"`
	// Figure names the registered distributable driver (see
	// figures.DistDrivers).
	Figure string `json:"figure"`
	// Jobs is the total job count; job indices run 0..Jobs-1.
	Jobs int `json:"jobs"`
	// Shards is the shard count: shard s owns the job indices with
	// sweep.Shard(i, Shards) == s.
	Shards int `json:"shards"`
	// Seed is the base seed every job derives its randomness from.
	Seed int64 `json:"seed"`
	// Quick selects the shortened experiment horizons (figures.Options).
	Quick bool `json:"quick"`
	// OutDir receives the figure's CSV artifacts at finalize time; only
	// the merge/finalize step writes there, never the workers.
	OutDir string `json:"out_dir"`
	// ArtifactDir holds the per-shard artifact, checkpoint, and merged
	// files.
	ArtifactDir string `json:"artifact_dir"`
	// FsyncEvery is the checkpoint batch size in records (>= 1).
	FsyncEvery int `json:"fsync_every"`
	// Hash is the hex SHA-256 content hash over the result-determining
	// fields (see ComputeHash); it is embedded in every shard artifact so
	// artifacts from a different manifest can never be merged.
	Hash string `json:"hash"`
}

// ComputeHash returns the manifest's content hash: SHA-256 over a
// canonical rendering of the fields that determine the sweep's results
// and shard layout (version, figure, jobs, shards, seed, quick). Output
// and scratch locations (OutDir, ArtifactDir) and durability tuning
// (FsyncEvery) deliberately stay outside the hash — moving artifacts or
// changing the fsync cadence does not change what the jobs compute.
func (m *Manifest) ComputeHash() string {
	canonical := fmt.Sprintf("memca-dsweep|v%d|figure=%s|jobs=%d|shards=%d|seed=%d|quick=%t",
		m.Version, m.Figure, m.Jobs, m.Shards, m.Seed, m.Quick)
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// Validate checks structural invariants and that the embedded hash
// matches the content: a manifest edited after the fact (or corrupted)
// refuses to drive workers or merges.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("dsweep: manifest version %d, this build understands %d", m.Version, ManifestVersion)
	}
	if m.Figure == "" {
		return fmt.Errorf("dsweep: manifest names no figure driver")
	}
	if m.Jobs < 1 {
		return fmt.Errorf("dsweep: manifest job count must be positive, got %d", m.Jobs)
	}
	if m.Shards < 1 {
		return fmt.Errorf("dsweep: manifest shard count must be positive, got %d", m.Shards)
	}
	if m.FsyncEvery < 1 {
		return fmt.Errorf("dsweep: manifest fsync batch must be positive, got %d", m.FsyncEvery)
	}
	if m.ArtifactDir == "" {
		return fmt.Errorf("dsweep: manifest has no artifact directory")
	}
	if want := m.ComputeHash(); m.Hash != want {
		return fmt.Errorf("dsweep: manifest hash %.12s does not match content hash %.12s — refusing to run or merge", m.Hash, want)
	}
	return nil
}

// WriteManifest stamps the version and content hash and writes the
// manifest as indented JSON, atomically (write-then-rename), creating
// parent directories.
func WriteManifest(path string, m *Manifest) error {
	m.Version = ManifestVersion
	if m.FsyncEvery == 0 {
		m.FsyncEvery = DefaultFsyncEvery
	}
	m.Hash = m.ComputeHash()
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("dsweep: marshaling manifest: %w", err)
	}
	return atomicWrite(path, append(data, '\n'))
}

// LoadManifest reads and validates a manifest file; a bad or tampered
// hash is a hard error.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dsweep: reading manifest: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("dsweep: parsing manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (manifest %s)", err, path)
	}
	return m, nil
}

// ShardArtifactPath returns the shard's record artifact file.
func (m *Manifest) ShardArtifactPath(shard int) string {
	return filepath.Join(m.ArtifactDir, fmt.Sprintf("shard-%04d.rec", shard))
}

// CheckpointPath returns the shard's progress sidecar file. The sidecar
// is monitoring state only — recovery truth lives in the artifact itself.
func (m *Manifest) CheckpointPath(shard int) string {
	return filepath.Join(m.ArtifactDir, fmt.Sprintf("shard-%04d.ckpt", shard))
}

// MergedPath returns the merged artifact file.
func (m *Manifest) MergedPath() string {
	return filepath.Join(m.ArtifactDir, "merged.rec")
}

// atomicWrite writes data to path via a temporary file and rename, so
// readers never observe a half-written file.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dsweep: creating directory for %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("dsweep: creating temp file for %s: %w", path, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		if cerr := tmp.Close(); cerr != nil {
			err = fmt.Errorf("%w (and closing: %v)", err, cerr)
		}
		if rerr := os.Remove(name); rerr != nil {
			err = fmt.Errorf("%w (and removing temp: %v)", err, rerr)
		}
		return fmt.Errorf("dsweep: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		if rerr := os.Remove(name); rerr != nil {
			err = fmt.Errorf("%w (and removing temp: %v)", err, rerr)
		}
		return fmt.Errorf("dsweep: closing temp for %s: %w", path, err)
	}
	if err := os.Rename(name, path); err != nil {
		if rerr := os.Remove(name); rerr != nil {
			err = fmt.Errorf("%w (and removing temp: %v)", err, rerr)
		}
		return fmt.Errorf("dsweep: renaming into %s: %w", path, err)
	}
	return nil
}
