package dsweep

import (
	"context"
	"errors"
	"fmt"
)

// Job computes the record payload for one global job index. Like
// sweep.Job it must be a pure function of the index (randomness only via
// the manifest's seed and sweep.DeriveSeed), so that a shard can run
// anywhere — and rerun after a crash — and produce the same bytes.
type Job func(ctx context.Context, index int) ([]byte, error)

// ErrCrashInjected is returned by RunShard when ShardOptions.MaxRecords
// stopped the worker early — the deterministic stand-in for a kill, used
// by the crash/resume tests and the CI smoke.
var ErrCrashInjected = errors.New("dsweep: injected crash after record budget")

// ShardOptions tune one worker's shard run.
type ShardOptions struct {
	// InjectCrash, when true, stops the run with ErrCrashInjected once
	// MaxRecords records have been appended in this run — MaxRecords may
	// be zero, meaning die right after the durable header. The
	// deterministic stand-in for kill -9 in tests and the CI smoke.
	InjectCrash bool
	// MaxRecords is the record budget when InjectCrash is set; ignored
	// otherwise.
	MaxRecords int
	// Progress, when non-nil, is called after each completed job with
	// the shard's (done, total) counts — done includes records recovered
	// from a previous run.
	Progress func(done, total int)
}

// RunShard executes one shard of the manifest's job sequence, appending a
// record per completed job to the shard artifact with fsync-batched
// checkpoints. It resumes automatically: jobs whose records were
// recovered from a previous run are skipped, a torn trailing record is
// truncated and re-run. The context is checked between jobs; a canceled
// shard can simply be run again.
func RunShard(ctx context.Context, m *Manifest, shard int, job Job, opts ShardOptions) (err error) {
	if job == nil {
		return fmt.Errorf("dsweep: shard job must not be nil")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w, err := openShardWriter(m, shard)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := w.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	state := w.state
	if opts.Progress != nil && state.Done > 0 {
		opts.Progress(state.Done, len(state.Indices))
	}
	appended := 0
	for !state.Complete() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if opts.InjectCrash && appended >= opts.MaxRecords {
			return ErrCrashInjected
		}
		index := state.Indices[state.Done]
		payload, err := job(ctx, index)
		if err != nil {
			return fmt.Errorf("dsweep: shard %d job %d: %w", shard, index, err)
		}
		if err := w.append(payload); err != nil {
			return err
		}
		appended++
		if opts.Progress != nil {
			opts.Progress(state.Done, len(state.Indices))
		}
	}
	return nil
}
