// Package coord is the process-orchestration half of the distributed
// sweep fabric: it spawns one worker subprocess per shard, watches their
// checkpoint sidecars on the wall clock, retries shards whose workers
// die, and merges the shard artifacts once every shard is complete.
//
// Everything that determines results — shard math, record framing,
// recovery, merging — lives in internal/dsweep and never touches the
// clock; this package only decides when to look and whether to respawn,
// which is why it (alone) sits on the wall-clock side of the boundary.
package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"memca/internal/dsweep"
)

// Options configure one coordinated run.
type Options struct {
	// Manifest is the validated job manifest the workers run under.
	Manifest *dsweep.Manifest
	// Worker builds the subprocess command for one shard (typically the
	// current executable re-invoked in worker mode with the manifest
	// path and -shard). Required. The command's stdout/stderr are the
	// caller's to wire.
	Worker func(shard int) (*exec.Cmd, error)
	// Retries is how many times a dead shard worker is respawned before
	// the run gives up on it. Respawned workers resume from the shard's
	// durable checkpoint, so a retry never repeats completed work.
	Retries int
	// Poll is the progress-monitoring interval (0 = 500ms).
	Poll time.Duration
	// Log, when non-nil, receives human-readable progress lines.
	Log io.Writer
}

// Run coordinates a full distributed sweep: it recovers every shard's
// durable state, spawns workers only for incomplete shards (so a rerun
// after a kill is automatically a resume), monitors their checkpoints,
// retries dead workers up to Retries times, and — once every shard is
// complete — merges the artifacts into the manifest's merged file. The
// merge is not reached unless every shard succeeded.
func Run(ctx context.Context, o Options) error {
	m := o.Manifest
	if m == nil {
		return fmt.Errorf("coord: options need a manifest")
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if o.Worker == nil {
		return fmt.Errorf("coord: options need a worker command builder")
	}
	poll := o.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}

	pending, err := incompleteShards(m)
	if err != nil {
		return err
	}
	if len(pending) > 0 {
		o.logf("coord: %d/%d shards incomplete, spawning workers", len(pending), m.Shards)

		parent := ctx
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()

		var wg sync.WaitGroup
		errs := make([]error, len(pending))
		for k, shard := range pending {
			wg.Add(1)
			go func(k, shard int) {
				defer wg.Done()
				if err := runShardWorker(runCtx, o, shard); err != nil {
					errs[k] = err
					cancel() // a lost shard fails the run; stop the others early
				}
			}(k, shard)
		}

		monitorDone := make(chan struct{})
		go func() {
			defer close(monitorDone)
			ticker := time.NewTicker(poll)
			defer ticker.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-ticker.C:
					o.logf("coord: %s", progressLine(m))
				}
			}
		}()

		wg.Wait()
		cancel()
		<-monitorDone
		// Prefer the shard failure that caused the cancellation over the
		// context.Canceled its siblings died with.
		var firstErr error
		for _, err := range errs {
			if err == nil {
				continue
			}
			if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
				firstErr = err
			}
		}
		if firstErr != nil {
			return firstErr
		}
		if err := parent.Err(); err != nil {
			return err
		}
	}

	if err := dsweep.Merge(m); err != nil {
		return err
	}
	o.logf("coord: merged %d jobs from %d shards into %s", m.Jobs, m.Shards, m.MergedPath())
	return nil
}

// runShardWorker spawns (and respawns, up to Retries) the worker process
// for one shard until the shard's artifact is complete.
func runShardWorker(ctx context.Context, o Options, shard int) error {
	m := o.Manifest
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cmd, err := o.Worker(shard)
		if err != nil {
			return fmt.Errorf("coord: building worker command for shard %d: %w", shard, err)
		}
		o.logf("coord: shard %d attempt %d: %s", shard, attempt+1, strings.Join(cmd.Args, " "))
		runErr := runCmd(ctx, cmd)

		// Trust the artifact, not the exit code: a worker that completed
		// its shard and then died while exiting still counts.
		state, recErr := dsweep.RecoverShard(m, shard)
		if recErr != nil {
			return recErr
		}
		if state.Complete() && state.Clean() {
			if runErr != nil {
				o.logf("coord: shard %d complete despite worker error: %v", shard, runErr)
			}
			return nil
		}
		if runErr == nil {
			return fmt.Errorf("coord: shard %d worker exited cleanly but left %d/%d records",
				shard, state.Done, len(state.Indices))
		}
		if attempt >= o.Retries {
			return fmt.Errorf("coord: shard %d dead after %d attempt(s), %d/%d records durable (resume with `memca-sweep resume`): %w",
				shard, attempt+1, state.Done, len(state.Indices), runErr)
		}
		o.logf("coord: shard %d worker died (%v), retrying from checkpoint %d/%d",
			shard, runErr, state.Done, len(state.Indices))
	}
}

// runCmd runs a worker to completion, killing it if ctx is canceled.
func runCmd(ctx context.Context, cmd *exec.Cmd) error {
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("coord: starting worker: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		if err := cmd.Process.Kill(); err != nil {
			return fmt.Errorf("coord: killing worker after cancel: %w", err)
		}
		<-done
		return ctx.Err()
	}
}

// incompleteShards lists the shards that still need a worker — missing
// records, or a torn tail to repair — in ascending order.
func incompleteShards(m *dsweep.Manifest) ([]int, error) {
	var pending []int
	for s := 0; s < m.Shards; s++ {
		state, err := dsweep.RecoverShard(m, s)
		if err != nil {
			return nil, err
		}
		if !state.Complete() || !state.Clean() {
			pending = append(pending, s)
		}
	}
	sort.Ints(pending)
	return pending, nil
}

// progressLine renders a one-line status summary from the checkpoints.
func progressLine(m *dsweep.Manifest) string {
	progress, err := dsweep.Status(m)
	if err != nil {
		return fmt.Sprintf("status unavailable: %v", err)
	}
	done, total := 0, 0
	parts := make([]string, 0, len(progress))
	for _, p := range progress {
		done += p.Done
		total += p.Total
		parts = append(parts, fmt.Sprintf("s%d %d/%d", p.Shard, p.Done, p.Total))
	}
	return fmt.Sprintf("%d/%d jobs (%s)", done, total, strings.Join(parts, ", "))
}

// logf writes a progress line when a log sink is configured. Logging is
// best-effort by design: a broken log pipe must not kill a coordinated
// run whose workers are fine.
func (o Options) logf(format string, args ...any) {
	if o.Log == nil {
		return
	}
	_, _ = fmt.Fprintf(o.Log, format+"\n", args...)
}
