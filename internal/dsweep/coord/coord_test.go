package coord_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"memca/internal/dsweep"
	"memca/internal/dsweep/coord"
	"memca/internal/sweep"
)

// The coordinator tests exercise real subprocesses by re-executing this
// test binary: TestMain diverts into workerMain when the manifest env var
// is set, so each spawned "worker" runs dsweep.RunShard on a synthetic
// job in its own process, exactly like a production worker would.
const (
	envManifest = "MEMCA_COORD_TEST_MANIFEST"
	envShard    = "MEMCA_COORD_TEST_SHARD"
	envCrash    = "MEMCA_COORD_TEST_CRASH"
)

func TestMain(m *testing.M) {
	if os.Getenv(envManifest) != "" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

func workerMain() int {
	m, err := dsweep.LoadManifest(os.Getenv(envManifest))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	shard, err := strconv.Atoi(os.Getenv(envShard))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad shard env:", err)
		return 1
	}
	opts := dsweep.ShardOptions{}
	if budget := os.Getenv(envCrash); budget != "" {
		n, err := strconv.Atoi(budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bad crash env:", err)
			return 1
		}
		opts.InjectCrash = true
		opts.MaxRecords = n
	}
	if err := dsweep.RunShard(context.Background(), m, shard, syntheticJob(m), opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// syntheticJob derives a deterministic payload from the manifest seed and
// the job index — the same function the in-test reference uses, so merged
// bytes can be compared exactly.
func syntheticJob(m *dsweep.Manifest) dsweep.Job {
	return func(_ context.Context, index int) ([]byte, error) {
		seed := sweep.DeriveSeed(m.Seed, index)
		return []byte(fmt.Sprintf("job %d seed %x", index, seed)), nil
	}
}

func testManifest(t *testing.T, jobs, shards int) *dsweep.Manifest {
	t.Helper()
	dir := t.TempDir()
	m := &dsweep.Manifest{
		Figure:      "coord-test",
		Jobs:        jobs,
		Shards:      shards,
		Seed:        4242,
		ArtifactDir: filepath.Join(dir, "artifacts"),
		FsyncEvery:  1,
	}
	if err := dsweep.WriteManifest(filepath.Join(dir, "manifest.json"), m); err != nil {
		t.Fatal(err)
	}
	return m
}

func manifestPath(m *dsweep.Manifest) string {
	return filepath.Join(filepath.Dir(m.ArtifactDir), "manifest.json")
}

// workerCmd re-executes the test binary in worker mode for one shard.
// crashBudget >= 0 injects a crash after that many records.
func workerCmd(m *dsweep.Manifest, shard, crashBudget int) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		envManifest+"="+manifestPath(m),
		envShard+"="+strconv.Itoa(shard),
	)
	if crashBudget >= 0 {
		cmd.Env = append(cmd.Env, envCrash+"="+strconv.Itoa(crashBudget))
	}
	return cmd
}

// referenceBytes is what a single-process run of the same jobs encodes to.
func referenceBytes(t *testing.T, m *dsweep.Manifest) []byte {
	t.Helper()
	job := syntheticJob(m)
	payloads := make([][]byte, m.Jobs)
	for i := range payloads {
		p, err := job(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		payloads[i] = p
	}
	return sweep.EncodeRecords(payloads)
}

func TestCoordinatorRunsAllShardsAndMerges(t *testing.T) {
	m := testManifest(t, 13, 3)
	var log bytes.Buffer
	err := coord.Run(context.Background(), coord.Options{
		Manifest: m,
		Worker:   func(shard int) (*exec.Cmd, error) { return workerCmd(m, shard, -1), nil },
		Log:      &log,
	})
	if err != nil {
		t.Fatalf("coord.Run: %v\nlog:\n%s", err, log.String())
	}
	merged, err := os.ReadFile(m.MergedPath())
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, m); !bytes.Equal(merged, want) {
		t.Fatalf("merged artifact differs from single-process reference (%d vs %d bytes)", len(merged), len(want))
	}
}

func TestCoordinatorRetriesDeadWorker(t *testing.T) {
	m := testManifest(t, 12, 3)
	// Shard 1's first attempt dies after 2 records; the retry must resume
	// from the durable checkpoint and finish the shard. The Worker builder
	// is called from per-shard goroutines, so the counter needs a lock.
	var mu sync.Mutex
	attempts := make(map[int]int)
	var log bytes.Buffer
	err := coord.Run(context.Background(), coord.Options{
		Manifest: m,
		Retries:  1,
		Worker: func(shard int) (*exec.Cmd, error) {
			mu.Lock()
			attempts[shard]++
			first := attempts[shard] == 1
			mu.Unlock()
			if shard == 1 && first {
				return workerCmd(m, shard, 2), nil
			}
			return workerCmd(m, shard, -1), nil
		},
		Log: &log,
	})
	if err != nil {
		t.Fatalf("coord.Run: %v\nlog:\n%s", err, log.String())
	}
	if attempts[1] != 2 {
		t.Fatalf("shard 1 ran %d attempts, want 2", attempts[1])
	}
	merged, err := os.ReadFile(m.MergedPath())
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, m); !bytes.Equal(merged, want) {
		t.Fatal("merged artifact after retry differs from single-process reference")
	}
	if !strings.Contains(log.String(), "retrying from checkpoint") {
		t.Fatalf("log does not mention the retry:\n%s", log.String())
	}
}

func TestCoordinatorGivesUpAfterRetries(t *testing.T) {
	m := testManifest(t, 9, 3)
	var log bytes.Buffer
	err := coord.Run(context.Background(), coord.Options{
		Manifest: m,
		Retries:  1,
		Worker: func(shard int) (*exec.Cmd, error) {
			if shard == 2 {
				return workerCmd(m, shard, 1), nil // dies every attempt
			}
			return workerCmd(m, shard, -1), nil
		},
		Log: &log,
	})
	if err == nil {
		t.Fatal("coord.Run succeeded with a permanently dying shard")
	}
	if !strings.Contains(err.Error(), "shard 2 dead after 2 attempt(s)") {
		t.Fatalf("error does not describe the dead shard: %v", err)
	}
	if _, statErr := os.Stat(m.MergedPath()); !os.IsNotExist(statErr) {
		t.Fatalf("merged artifact exists after failed run (stat err: %v)", statErr)
	}
}

func TestCoordinatorResumeSkipsCompleteShards(t *testing.T) {
	m := testManifest(t, 10, 2)
	// Complete shard 0 in-process first; the coordinator must only spawn
	// a worker for shard 1.
	if err := dsweep.RunShard(context.Background(), m, 0, syntheticJob(m), dsweep.ShardOptions{}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	spawned := make(map[int]int)
	err := coord.Run(context.Background(), coord.Options{
		Manifest: m,
		Worker: func(shard int) (*exec.Cmd, error) {
			mu.Lock()
			spawned[shard]++
			mu.Unlock()
			return workerCmd(m, shard, -1), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if spawned[0] != 0 || spawned[1] != 1 {
		t.Fatalf("spawn counts = %v, want shard 0 skipped and shard 1 run once", spawned)
	}
	merged, err := os.ReadFile(m.MergedPath())
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceBytes(t, m); !bytes.Equal(merged, want) {
		t.Fatal("merged artifact differs from single-process reference")
	}
}

func TestCoordinatorAllShardsAlreadyComplete(t *testing.T) {
	m := testManifest(t, 6, 2)
	for s := 0; s < m.Shards; s++ {
		if err := dsweep.RunShard(context.Background(), m, s, syntheticJob(m), dsweep.ShardOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	err := coord.Run(context.Background(), coord.Options{
		Manifest: m,
		Worker: func(shard int) (*exec.Cmd, error) {
			return nil, fmt.Errorf("no worker should be spawned")
		},
	})
	if err != nil {
		t.Fatalf("coord.Run on fully complete shards: %v", err)
	}
	if _, err := dsweep.ReadMerged(m); err != nil {
		t.Fatal(err)
	}
}
