package dsweep

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"memca/internal/sweep"
)

// Shard artifact layout:
//
//	header  := magic uvarint(shard) uvarint(len(hash)) hash
//	records := sweep record stream (see sweep.AppendRecord), one record
//	           per completed job, in the shard's execution order
//	           (ascending global job index within the shard)
//
// The header binds the file to one (manifest, shard) pair: the embedded
// manifest content hash means artifacts produced under a different spec —
// different figure, seed, job count, or shard plan — are rejected instead
// of merged. The record stream after the header is the checkpoint: its
// valid prefix is exactly the set of durably completed jobs, and a torn
// or corrupt tail (a worker killed mid-write) is truncated and re-run.

// shardMagic begins every shard artifact file.
var shardMagic = []byte("MEMCADSW1\n")

// ErrShardArtifact reports a shard artifact that cannot belong to the
// manifest: wrong magic, wrong shard number, or a mismatched manifest
// hash. Unlike a torn tail this is never repaired silently.
var ErrShardArtifact = errors.New("dsweep: shard artifact does not match manifest")

// ShardState is what recovery finds in a shard's artifact file: the
// durably completed prefix of the shard's job sequence.
type ShardState struct {
	// Shard is the shard number.
	Shard int
	// Indices is the shard's full job sequence (ascending global
	// indices); the worker executes and checkpoints in exactly this
	// order.
	Indices []int
	// Done is the number of completed jobs recovered: the first Done
	// elements of Indices have valid records.
	Done int
	// Payloads holds the recovered record payloads for Indices[:Done].
	Payloads [][]byte
	// validOffset is the file offset just past the last valid byte
	// (header included); a resuming writer truncates here. Zero means
	// the file is missing or even the header is unusable.
	validOffset int64
	// clean reports that the file ends exactly at validOffset — no torn
	// or corrupt tail.
	clean bool
}

// Complete reports whether every job of the shard has a durable record.
func (s *ShardState) Complete() bool { return s.Done == len(s.Indices) }

// Clean reports that no torn or corrupt bytes follow the valid prefix.
// A complete but unclean shard must be resumed (which truncates the
// tail) before it can merge.
func (s *ShardState) Clean() bool { return s.clean }

// LastIndex returns the global index of the most recently completed job,
// or -1 when none.
func (s *ShardState) LastIndex() int {
	if s.Done == 0 {
		return -1
	}
	return s.Indices[s.Done-1]
}

// appendShardHeader frames the artifact header for (shard, hash).
func appendShardHeader(dst []byte, shard int, hash string) []byte {
	dst = append(dst, shardMagic...)
	dst = binary.AppendUvarint(dst, uint64(shard))
	dst = binary.AppendUvarint(dst, uint64(len(hash)))
	return append(dst, hash...)
}

// errHeaderTorn reports a file cut off mid-header: the worker died
// between creating the file and making the header durable. No record can
// exist after a torn header (the header is fsynced before the first
// record), so recovery treats the file as fresh.
var errHeaderTorn = errors.New("dsweep: torn shard header")

// parseShardHeader validates the artifact header against the manifest and
// returns the remaining bytes. Running out of bytes while the prefix is
// still consistent with a header is errHeaderTorn (resumable-fresh);
// bytes that contradict the expected header are ErrShardArtifact.
func parseShardHeader(m *Manifest, shard int, b []byte) (rest []byte, n int64, err error) {
	if len(b) < len(shardMagic) {
		if bytes.Equal(b, shardMagic[:len(b)]) {
			return nil, 0, errHeaderTorn
		}
		return nil, 0, fmt.Errorf("%w: bad magic", ErrShardArtifact)
	}
	if !bytes.Equal(b[:len(shardMagic)], shardMagic) {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrShardArtifact)
	}
	off := len(shardMagic)
	gotShard, k := binary.Uvarint(b[off:])
	if k == 0 {
		return nil, 0, errHeaderTorn
	}
	if k < 0 {
		return nil, 0, fmt.Errorf("%w: bad shard varint", ErrShardArtifact)
	}
	off += k
	hashLen, k := binary.Uvarint(b[off:])
	if k == 0 {
		return nil, 0, errHeaderTorn
	}
	if k < 0 || hashLen > 1<<10 {
		return nil, 0, fmt.Errorf("%w: bad hash framing", ErrShardArtifact)
	}
	off += k
	if off+int(hashLen) > len(b) {
		return nil, 0, errHeaderTorn
	}
	hash := string(b[off : off+int(hashLen)])
	off += int(hashLen)
	if int(gotShard) != shard {
		return nil, 0, fmt.Errorf("%w: artifact is for shard %d, expected %d", ErrShardArtifact, gotShard, shard)
	}
	if hash != m.Hash {
		return nil, 0, fmt.Errorf("%w: artifact manifest hash %.12s, expected %.12s", ErrShardArtifact, hash, m.Hash)
	}
	return b[off:], int64(off), nil
}

// RecoverShard scans a shard's artifact file and returns its durable
// state. A missing file is an empty, resumable state. A file whose header
// does not match the manifest is ErrShardArtifact — never merged, never
// overwritten silently. A torn or corrupt record tail ends the valid
// prefix: the jobs after it count as not done, which is what makes a
// kill-anywhere crash safe (a partially written record is detected and
// re-run, not merged).
func RecoverShard(m *Manifest, shard int) (*ShardState, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= m.Shards {
		return nil, fmt.Errorf("dsweep: shard %d outside plan of %d shards", shard, m.Shards)
	}
	state := &ShardState{Shard: shard, Indices: sweep.ShardIndices(m.Jobs, m.Shards, shard)}
	data, err := os.ReadFile(m.ShardArtifactPath(shard))
	if errors.Is(err, os.ErrNotExist) {
		// No file, no stray bytes: clean. This matters for shards that own
		// zero jobs and are never run — they are complete as-is.
		state.clean = true
		return state, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dsweep: reading shard %d artifact: %w", shard, err)
	}
	rest, off, err := parseShardHeader(m, shard, data)
	if errors.Is(err, errHeaderTorn) {
		// Died before the header was durable: no record can exist.
		return state, nil
	}
	if err != nil {
		return nil, err
	}
	state.validOffset = off
	for len(rest) > 0 && state.Done < len(state.Indices) {
		idx, payload, next, err := sweep.DecodeRecord(rest)
		if err != nil {
			// Torn or rotted tail: the valid prefix ends here.
			return state, nil
		}
		if idx != state.Indices[state.Done] {
			// A record out of sequence cannot have been written by a
			// correct worker under this manifest; treat everything from
			// here on as invalid tail.
			return state, nil
		}
		state.Payloads = append(state.Payloads, bytes.Clone(payload))
		state.Done++
		state.validOffset += int64(len(rest) - len(next))
		rest = next
	}
	state.clean = len(rest) == 0
	return state, nil
}

// shardWriter appends records to a shard artifact with batched fsync.
type shardWriter struct {
	f         *os.File
	m         *Manifest
	state     *ShardState
	sinceSync int
}

// openShardWriter recovers the shard's durable state, truncates any
// invalid tail, and returns a writer positioned to append the next
// record. The caller owns Close.
func openShardWriter(m *Manifest, shard int) (*shardWriter, error) {
	state, err := RecoverShard(m, shard)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(m.ArtifactDir, 0o755); err != nil {
		return nil, fmt.Errorf("dsweep: creating artifact directory: %w", err)
	}
	f, err := os.OpenFile(m.ShardArtifactPath(shard), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dsweep: opening shard %d artifact: %w", shard, err)
	}
	w := &shardWriter{f: f, m: m, state: state}
	if state.validOffset == 0 {
		// Fresh (or unusable-before-header) file: write the header and
		// make it durable before any record can refer to it.
		header := appendShardHeader(nil, shard, m.Hash)
		if err := f.Truncate(0); err != nil {
			return nil, w.fail(fmt.Errorf("dsweep: truncating shard %d artifact: %w", shard, err))
		}
		if _, err := f.WriteAt(header, 0); err != nil {
			return nil, w.fail(fmt.Errorf("dsweep: writing shard %d header: %w", shard, err))
		}
		state.validOffset = int64(len(header))
	} else if err := f.Truncate(state.validOffset); err != nil {
		// Drop the torn tail so the file ends at the last valid record.
		return nil, w.fail(fmt.Errorf("dsweep: truncating shard %d artifact tail: %w", shard, err))
	}
	if err := f.Sync(); err != nil {
		return nil, w.fail(fmt.Errorf("dsweep: syncing shard %d artifact: %w", shard, err))
	}
	if _, err := f.Seek(state.validOffset, 0); err != nil {
		return nil, w.fail(fmt.Errorf("dsweep: seeking shard %d artifact: %w", shard, err))
	}
	return w, nil
}

// fail closes the file and returns err, for open-path error exits.
func (w *shardWriter) fail(err error) error {
	if cerr := w.f.Close(); cerr != nil {
		return fmt.Errorf("%w (and closing: %v)", err, cerr)
	}
	return err
}

// append frames and writes the record for the shard's next pending job
// and advances the durable state, fsyncing when the batch fills.
func (w *shardWriter) append(payload []byte) error {
	if w.state.Complete() {
		return fmt.Errorf("dsweep: shard %d already complete", w.state.Shard)
	}
	index := w.state.Indices[w.state.Done]
	rec := sweep.AppendRecord(nil, index, payload)
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("dsweep: appending record %d to shard %d: %w", index, w.state.Shard, err)
	}
	w.state.Done++
	w.state.validOffset += int64(len(rec))
	w.sinceSync++
	if w.sinceSync >= w.m.FsyncEvery {
		return w.checkpoint()
	}
	return nil
}

// checkpoint makes the appended records durable and refreshes the
// progress sidecar.
func (w *shardWriter) checkpoint() error {
	if w.sinceSync == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dsweep: syncing shard %d artifact: %w", w.state.Shard, err)
	}
	w.sinceSync = 0
	return writeCheckpoint(w.m, w.state)
}

// Close flushes a final checkpoint and closes the artifact.
func (w *shardWriter) Close() error {
	err := w.checkpoint()
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("dsweep: closing shard %d artifact: %w", w.state.Shard, cerr)
	}
	return err
}
