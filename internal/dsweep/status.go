package dsweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Checkpoint is the progress sidecar a worker refreshes at every fsync
// batch. It exists for monitoring only — the coordinator and the status
// subcommand read it cheaply instead of scanning artifacts — and is
// written atomically so readers never see a torn file. Recovery truth
// always lives in the artifact itself; a stale or missing sidecar is
// never an error.
type Checkpoint struct {
	// Shard is the shard number.
	Shard int `json:"shard"`
	// Done and Total are the shard's completed and owned job counts.
	Done  int `json:"done"`
	Total int `json:"total"`
	// LastIndex is the global index of the most recent durable record,
	// -1 when none.
	LastIndex int `json:"last_index"`
	// Hash is the manifest content hash, so a sidecar from another
	// manifest is ignored rather than trusted.
	Hash string `json:"hash"`
}

// writeCheckpoint refreshes the shard's sidecar from its durable state.
func writeCheckpoint(m *Manifest, state *ShardState) error {
	ck := Checkpoint{
		Shard:     state.Shard,
		Done:      state.Done,
		Total:     len(state.Indices),
		LastIndex: state.LastIndex(),
		Hash:      m.Hash,
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("dsweep: marshaling checkpoint for shard %d: %w", state.Shard, err)
	}
	return atomicWrite(m.CheckpointPath(state.Shard), append(data, '\n'))
}

// ShardProgress is one shard's view in a Status report.
type ShardProgress struct {
	// Shard is the shard number; Done and Total its job counts.
	Shard int
	Done  int
	Total int
	// LastIndex is the most recently completed global job index, -1
	// when none.
	LastIndex int
	// FromCheckpoint reports whether the numbers came from the cheap
	// sidecar (possibly a batch behind the artifact) or from a full
	// artifact scan.
	FromCheckpoint bool
	// CheckpointPath is the sidecar file when one was used; callers that
	// want a staleness age stat it — this package never reads the clock.
	CheckpointPath string
}

// Status reports per-shard progress for a manifest. It prefers the
// checkpoint sidecars (cheap, refreshed every fsync batch) and falls back
// to scanning the shard artifact when a sidecar is missing or belongs to
// a different manifest.
func Status(m *Manifest) ([]ShardProgress, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	progress := make([]ShardProgress, m.Shards)
	for s := 0; s < m.Shards; s++ {
		p := ShardProgress{Shard: s, LastIndex: -1}
		ckPath := m.CheckpointPath(s)
		if ck, err := readCheckpoint(ckPath); err == nil && ck.Hash == m.Hash && ck.Shard == s {
			p.Done, p.Total, p.LastIndex = ck.Done, ck.Total, ck.LastIndex
			p.FromCheckpoint = true
			p.CheckpointPath = ckPath
		} else {
			state, err := RecoverShard(m, s)
			if err != nil {
				return nil, err
			}
			p.Done, p.Total, p.LastIndex = state.Done, len(state.Indices), state.LastIndex()
		}
		progress[s] = p
	}
	return progress, nil
}

// readCheckpoint loads a sidecar; any failure just means "fall back to
// the artifact".
func readCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, errors.Join(fmt.Errorf("dsweep: parsing checkpoint %s", path), err)
	}
	return ck, nil
}
