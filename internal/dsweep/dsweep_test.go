package dsweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"memca/internal/sweep"
)

// testManifest returns a validated manifest over a temp artifact dir.
func testManifest(t *testing.T, jobs, shards, fsyncEvery int) *Manifest {
	t.Helper()
	m := &Manifest{
		Figure:      "synthetic",
		Jobs:        jobs,
		Shards:      shards,
		Seed:        42,
		ArtifactDir: t.TempDir(),
		FsyncEvery:  fsyncEvery,
	}
	path := filepath.Join(m.ArtifactDir, "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	return loaded
}

// syntheticJob derives a deterministic, variable-length payload from the
// job index and the manifest seed, mimicking a gob-encoded result.
func syntheticJob(m *Manifest) Job {
	return func(_ context.Context, index int) ([]byte, error) {
		seed := sweep.DeriveSeed(m.Seed, index)
		head := fmt.Sprintf("job-%d-seed-%d|", index, seed)
		return append([]byte(head), bytes.Repeat([]byte{byte(index + 1)}, index%7)...), nil
	}
}

// referenceBytes is the single-process oracle: the merged artifact must
// equal the encoding of every job's payload in index order.
func referenceBytes(t *testing.T, m *Manifest) []byte {
	t.Helper()
	job := syntheticJob(m)
	payloads := make([][]byte, m.Jobs)
	for i := range payloads {
		p, err := job(context.Background(), i)
		if err != nil {
			t.Fatalf("reference job %d: %v", i, err)
		}
		payloads[i] = p
	}
	return sweep.EncodeRecords(payloads)
}

func runAllShards(t *testing.T, m *Manifest) {
	t.Helper()
	for s := 0; s < m.Shards; s++ {
		if err := RunShard(context.Background(), m, s, syntheticJob(m), ShardOptions{}); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
}

// TestMergeByteIdentityAcrossShardCounts pins the fabric's core claim:
// the merged artifact is byte-identical at shard counts 1, 2, 4, and 8,
// and equal to the single-process encoding of the same jobs.
func TestMergeByteIdentityAcrossShardCounts(t *testing.T) {
	const jobs = 11
	for _, shards := range []int{1, 2, 4, 8} {
		m := testManifest(t, jobs, shards, 2)
		runAllShards(t, m)
		if err := Merge(m); err != nil {
			t.Fatalf("%d shards: merge: %v", shards, err)
		}
		merged, err := os.ReadFile(m.MergedPath())
		if err != nil {
			t.Fatalf("%d shards: reading merged: %v", shards, err)
		}
		if want := referenceBytes(t, m); !bytes.Equal(merged, want) {
			t.Errorf("%d shards: merged artifact differs from single-process encoding", shards)
		}
		payloads, err := ReadMerged(m)
		if err != nil {
			t.Fatalf("%d shards: ReadMerged: %v", shards, err)
		}
		if len(payloads) != jobs {
			t.Errorf("%d shards: ReadMerged returned %d payloads", shards, len(payloads))
		}
	}
}

// TestCrashResumeByteIdentity kills a worker mid-shard (deterministically,
// via crash injection) and resumes it: completed jobs must not re-run, and
// the merged artifact must be byte-identical to the uninterrupted run.
func TestCrashResumeByteIdentity(t *testing.T) {
	m := testManifest(t, 10, 3, 1)
	// Shard 1 owns indices 1, 4, 7: crash after 2 records.
	err := RunShard(context.Background(), m, 1, syntheticJob(m), ShardOptions{InjectCrash: true, MaxRecords: 2})
	if !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("crash-injected run: got %v, want ErrCrashInjected", err)
	}
	state, err := RecoverShard(m, 1)
	if err != nil {
		t.Fatalf("RecoverShard after crash: %v", err)
	}
	if state.Done != 2 || state.LastIndex() != 4 {
		t.Fatalf("after crash: done=%d last=%d, want 2 and 4", state.Done, state.LastIndex())
	}
	// Resume counts executed jobs: only the one missing job may run.
	ran := 0
	job := func(ctx context.Context, index int) ([]byte, error) {
		ran++
		return syntheticJob(m)(ctx, index)
	}
	if err := RunShard(context.Background(), m, 1, job, ShardOptions{}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if ran != 1 {
		t.Errorf("resume re-ran %d jobs, want 1 (index 7 only)", ran)
	}
	for _, s := range []int{0, 2} {
		if err := RunShard(context.Background(), m, s, syntheticJob(m), ShardOptions{}); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	if err := Merge(m); err != nil {
		t.Fatalf("merge after resume: %v", err)
	}
	merged, err := os.ReadFile(m.MergedPath())
	if err != nil {
		t.Fatalf("reading merged: %v", err)
	}
	if !bytes.Equal(merged, referenceBytes(t, m)) {
		t.Errorf("merged artifact after crash+resume differs from uninterrupted encoding")
	}
}

// TestTruncatedTailDetectedAndRerun cuts the artifact mid-record — the
// torn write of a kill -9 — and checks the codec never merges it: the
// truncated record is detected, re-run on resume, and the final merge is
// byte-identical.
func TestTruncatedTailDetectedAndRerun(t *testing.T) {
	m := testManifest(t, 6, 2, 1)
	runAllShards(t, m)
	art := m.ShardArtifactPath(0)
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	// Cut 3 bytes off the final record's checksum: a torn tail.
	if err := os.WriteFile(art, data[:len(data)-3], 0o644); err != nil {
		t.Fatalf("truncating artifact: %v", err)
	}
	state, err := RecoverShard(m, 0)
	if err != nil {
		t.Fatalf("RecoverShard on torn tail: %v", err)
	}
	if state.Complete() {
		t.Fatalf("torn trailing record counted as complete")
	}
	if err := Merge(m); err == nil {
		t.Fatalf("merge accepted a shard with a torn trailing record")
	}
	ran := 0
	job := func(ctx context.Context, index int) ([]byte, error) {
		ran++
		return syntheticJob(m)(ctx, index)
	}
	if err := RunShard(context.Background(), m, 0, job, ShardOptions{}); err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	if ran != 1 {
		t.Errorf("resume re-ran %d jobs, want exactly the torn one", ran)
	}
	if err := Merge(m); err != nil {
		t.Fatalf("merge after repair: %v", err)
	}
	merged, err := os.ReadFile(m.MergedPath())
	if err != nil {
		t.Fatalf("reading merged: %v", err)
	}
	if !bytes.Equal(merged, referenceBytes(t, m)) {
		t.Errorf("merged artifact after torn-tail repair differs from reference")
	}
}

// TestCorruptRecordNeverMerged flips a byte inside a completed record:
// recovery must stop trusting the file at that point and a merge must
// refuse, never silently merging rotted bytes.
func TestCorruptRecordNeverMerged(t *testing.T) {
	m := testManifest(t, 6, 2, 1)
	runAllShards(t, m)
	art := m.ShardArtifactPath(0)
	data, err := os.ReadFile(art)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}
	data[len(data)-5] ^= 0xFF // inside the last record
	if err := os.WriteFile(art, data, 0o644); err != nil {
		t.Fatalf("corrupting artifact: %v", err)
	}
	state, err := RecoverShard(m, 0)
	if err != nil {
		t.Fatalf("RecoverShard on corrupt record: %v", err)
	}
	if state.Complete() {
		t.Fatalf("corrupt record counted as complete")
	}
	if err := Merge(m); err == nil {
		t.Fatalf("merge accepted a corrupt record")
	}
}

// TestMismatchedManifestRefused pins the hash guard in all three places:
// a tampered manifest file refuses to load, a hand-edited Manifest value
// refuses to validate, and shard artifacts written under one manifest
// refuse to serve a different one.
func TestMismatchedManifestRefused(t *testing.T) {
	m := testManifest(t, 4, 2, 1)
	runAllShards(t, m)

	// Tampered manifest file: change a result-determining field.
	path := filepath.Join(m.ArtifactDir, "manifest.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	tampered := bytes.Replace(data, []byte(`"seed": 42`), []byte(`"seed": 43`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatalf("tamper target not found in manifest JSON")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatalf("writing tampered manifest: %v", err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Errorf("tampered manifest loaded cleanly")
	}

	// A different (validly hashed) manifest over the same artifacts: the
	// embedded per-shard hash must refuse both recovery and merge.
	other := &Manifest{
		Figure:      m.Figure,
		Jobs:        m.Jobs,
		Shards:      m.Shards,
		Seed:        m.Seed + 1,
		ArtifactDir: m.ArtifactDir,
		FsyncEvery:  m.FsyncEvery,
	}
	if err := WriteManifest(filepath.Join(m.ArtifactDir, "other.json"), other); err != nil {
		t.Fatalf("writing other manifest: %v", err)
	}
	if _, err := RecoverShard(other, 0); !errors.Is(err, ErrShardArtifact) {
		t.Errorf("recovery under mismatched manifest: got %v, want ErrShardArtifact", err)
	}
	if err := Merge(other); !errors.Is(err, ErrShardArtifact) {
		t.Errorf("merge under mismatched manifest: got %v, want ErrShardArtifact", err)
	}
}

// TestIncompleteShardRefusesMerge pins that a merge never papers over a
// shard that has not finished.
func TestIncompleteShardRefusesMerge(t *testing.T) {
	m := testManifest(t, 5, 2, 1)
	if err := RunShard(context.Background(), m, 0, syntheticJob(m), ShardOptions{}); err != nil {
		t.Fatalf("shard 0: %v", err)
	}
	if err := Merge(m); err == nil {
		t.Fatalf("merge succeeded with shard 1 never run")
	}
}

// TestStatusProgress pins the status surface: sidecar-backed progress
// after runs, artifact-scan fallback when the sidecar is gone, and empty
// shards reported as 0/0.
func TestStatusProgress(t *testing.T) {
	m := testManifest(t, 5, 3, 1) // shard 2 owns index 2 only; sizes 2,2,1
	runAllShards(t, m)
	progress, err := Status(m)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if len(progress) != 3 {
		t.Fatalf("Status returned %d shards", len(progress))
	}
	for _, p := range progress {
		want := sweep.ShardSize(m.Jobs, m.Shards, p.Shard)
		if p.Done != want || p.Total != want {
			t.Errorf("shard %d: %d/%d, want %d/%d", p.Shard, p.Done, p.Total, want, want)
		}
		if !p.FromCheckpoint {
			t.Errorf("shard %d progress not from checkpoint after a clean run", p.Shard)
		}
	}
	// Remove a sidecar: the artifact scan must agree.
	if err := os.Remove(m.CheckpointPath(0)); err != nil {
		t.Fatalf("removing checkpoint: %v", err)
	}
	progress, err = Status(m)
	if err != nil {
		t.Fatalf("Status after sidecar removal: %v", err)
	}
	if progress[0].FromCheckpoint || progress[0].Done != progress[0].Total {
		t.Errorf("artifact-scan fallback wrong: %+v", progress[0])
	}
}

// TestEmptyShardCompletes pins the more-shards-than-jobs edge: a shard
// with no jobs runs, completes, and merges cleanly.
func TestEmptyShardCompletes(t *testing.T) {
	m := testManifest(t, 2, 4, 1)
	runAllShards(t, m)
	if err := Merge(m); err != nil {
		t.Fatalf("merge with empty shards: %v", err)
	}
	merged, err := os.ReadFile(m.MergedPath())
	if err != nil {
		t.Fatalf("reading merged: %v", err)
	}
	if !bytes.Equal(merged, referenceBytes(t, m)) {
		t.Errorf("merged artifact with empty shards differs from reference")
	}
}
