package plan

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"memca/internal/core"
	"memca/internal/spec"
	"memca/internal/sweep"
	"memca/internal/trace"
)

// Cell is one point of the planner-vs-simulator validation grid: a
// closed-loop population the planner sizes for and the simulator then
// replays.
type Cell struct {
	// Clients and Think define the offered load.
	Clients int
	Think   time.Duration
}

// DefaultGrid returns the calibrated validation cells. Each sits on a
// provisioning cliff: the planner's sizing runs with comfortable SLO
// margin, while the next-smaller sizing (one bottleneck replica fewer)
// is overloaded enough that the closed-loop simulation blows past the
// target through queueing and TCP retransmissions — so the planner's
// feasibility boundary and the simulator's agree with wide margins on
// both sides at any seed.
func DefaultGrid() []Cell {
	return []Cell{
		{Clients: 1050, Think: 500 * time.Millisecond},
		{Clients: 2100, Think: time.Second},
		{Clients: 3300, Think: time.Second},
		{Clients: 4200, Think: 2 * time.Second},
	}
}

// ValidateOptions tune the validation sweep.
type ValidateOptions struct {
	// Cells is the load grid (empty: DefaultGrid).
	Cells []Cell
	// Seeds are the simulation seeds replayed per cell (empty: three
	// seeds derived from BaseSeed).
	Seeds []int64
	// BaseSeed feeds seed derivation when Seeds is empty.
	BaseSeed int64
	// Duration is the measured horizon per run (zero: 40 s).
	Duration time.Duration
	// Warmup is discarded before measurement (zero: 15 s).
	Warmup time.Duration
	// Workers bounds sweep concurrency (see sweep.Options); results are
	// identical for every value.
	Workers int
	// Progress, when non-nil, receives (done, total) after each run.
	Progress func(done, total int)
}

func (o ValidateOptions) cells() []Cell {
	if len(o.Cells) == 0 {
		return DefaultGrid()
	}
	return o.Cells
}

func (o ValidateOptions) seeds() []int64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	seeds := make([]int64, 3)
	for i := range seeds {
		seeds[i] = sweep.DeriveSeed(o.BaseSeed, i)
	}
	return seeds
}

func (o ValidateOptions) duration() time.Duration {
	if o.Duration <= 0 {
		return 40 * time.Second
	}
	return o.Duration
}

func (o ValidateOptions) warmup() time.Duration {
	if o.Warmup <= 0 {
		return 15 * time.Second
	}
	return o.Warmup
}

// CellResult is one (cell, seed) validation verdict: the planner's
// sizing replayed through the simulator, next to its minimality witness.
type CellResult struct {
	// Clients/Think/Seed identify the run.
	Clients int           `json:"clients"`
	Think   time.Duration `json:"think"`
	Seed    int64         `json:"seed"`
	// Replicas and ThreadScale are the planner's sizing for the cell.
	Replicas    []int `json:"replicas"`
	ThreadScale int   `json:"thread_scale"`
	// SizedP99 and SizedDropRate are the simulator's verdict on the
	// sizing; SizedOK reports the SLO held.
	SizedP99      time.Duration `json:"sized_p99"`
	SizedDropRate float64       `json:"sized_drop_rate"`
	SizedOK       bool          `json:"sized_ok"`
	// SmallerReplicas is the minimality witness (one bottleneck replica
	// fewer); SmallerP99/SmallerDropRate its simulated outcome, and
	// SmallerViolates whether the simulator agrees it breaks the SLO.
	SmallerReplicas []int         `json:"smaller_replicas"`
	SmallerP99      time.Duration `json:"smaller_p99"`
	SmallerDropRate float64       `json:"smaller_drop_rate"`
	SmallerViolates bool          `json:"smaller_violates"`
}

// sized is one cell's planner verdict, computed once and shared across
// that cell's seeds.
type sized struct {
	res Result
	req Request
}

// Validation is a prepared validation sweep: every grid cell already
// sized by Solve, ready to replay (cell, seed) jobs one index at a time.
// Solve is deterministic and pure, so preparing a Validation in several
// worker processes yields identical plans — which is what lets the
// distributed fabric run validation jobs anywhere and still merge
// byte-identical results. Job index i maps to cell i/len(seeds) and seed
// i%len(seeds).
type Validation struct {
	slo   spec.SLO
	opts  ValidateOptions
	cells []Cell
	seeds []int64
	plans []sized
}

// NewValidation checks the SLO and sizes every grid cell once up front —
// sharing each verdict across the cell's seeds keeps the per-index jobs
// sim-only.
func NewValidation(slo spec.SLO, opts ValidateOptions) (*Validation, error) {
	if err := slo.Validate(); err != nil {
		return nil, err
	}
	v := &Validation{slo: slo, opts: opts, cells: opts.cells(), seeds: opts.seeds()}
	v.plans = make([]sized, len(v.cells))
	for i, cell := range v.cells {
		req := Request{
			System:  spec.RUBBoSSystem(),
			Traffic: spec.Traffic{Clients: cell.Clients, ThinkTime: cell.Think},
			SLO:     slo,
		}
		res, err := Solve(req)
		if err != nil {
			return nil, fmt.Errorf("plan: sizing cell %d (%d clients): %w", i, cell.Clients, err)
		}
		if res.NextSmaller == nil {
			return nil, fmt.Errorf("plan: cell %d (%d clients) sized to a single bottleneck replica; validation needs a minimality witness", i, cell.Clients)
		}
		v.plans[i] = sized{res: res, req: req}
	}
	return v, nil
}

// Jobs is the total (cell, seed) job count.
func (v *Validation) Jobs() int { return len(v.cells) * len(v.seeds) }

// Run replays job index i — one (cell, seed) pair, both the chosen sizing
// and its minimality witness — through the closed-loop simulator. It is a
// pure function of the index, safe to call from any worker in any order.
func (v *Validation) Run(i int) (CellResult, error) {
	if i < 0 || i >= v.Jobs() {
		return CellResult{}, fmt.Errorf("plan: validation job index %d out of range [0,%d)", i, v.Jobs())
	}
	ci, si := i/len(v.seeds), i%len(v.seeds)
	cell, p, seed := v.cells[ci], v.plans[ci], v.seeds[si]

	out := CellResult{
		Clients:         cell.Clients,
		Think:           cell.Think,
		Seed:            seed,
		Replicas:        p.res.Sizing.Replicas,
		ThreadScale:     p.res.Sizing.ThreadScale,
		SmallerReplicas: p.res.NextSmaller.Replicas,
	}
	p99, dropRate, err := simulate(p.res.Sizing.System, p.req.Traffic, seed, v.opts.duration(), v.opts.warmup())
	if err != nil {
		return CellResult{}, err
	}
	out.SizedP99, out.SizedDropRate = p99, dropRate
	out.SizedOK = p99 <= v.slo.TargetRT && dropRate <= v.slo.MaxDropRate

	p99, dropRate, err = simulate(p.res.NextSmaller.System, p.req.Traffic, seed, v.opts.duration(), v.opts.warmup())
	if err != nil {
		return CellResult{}, err
	}
	out.SmallerP99, out.SmallerDropRate = p99, dropRate
	out.SmallerViolates = p99 > v.slo.TargetRT || dropRate > v.slo.MaxDropRate
	return out, nil
}

// Validate sizes every grid cell with Solve, replays both the chosen
// sizing and its minimality witness through the full closed-loop
// simulator (attack-free) at every seed, and reports whether the
// simulator agrees with the planner's feasibility boundary. Runs fan out
// over the sweep engine; results are returned in grid order and are
// identical for every worker count.
func Validate(slo spec.SLO, opts ValidateOptions) ([]CellResult, error) {
	v, err := NewValidation(slo, opts)
	if err != nil {
		return nil, err
	}
	sweepOpts := sweep.Options{Workers: opts.Workers, Progress: opts.Progress}
	return sweep.Run(context.Background(), sweepOpts, v.Jobs(), func(_ context.Context, i int) (CellResult, error) {
		return v.Run(i)
	})
}

// simulate replays one sizing through the closed-loop simulator
// attack-free and returns the client p99 and the drop fraction.
func simulate(sys spec.System, traffic spec.Traffic, seed int64, duration, warmup time.Duration) (time.Duration, float64, error) {
	cfg := core.DefaultConfig()
	cfg.Attack = nil
	cfg.Seed = seed
	cfg.Duration = duration
	cfg.Warmup = warmup
	cfg, err := cfg.FromSpec(sys, traffic.AtPeak())
	if err != nil {
		return 0, 0, err
	}
	x, err := core.NewExperiment(cfg)
	if err != nil {
		return 0, 0, err
	}
	rep, err := x.Run()
	if err != nil {
		return 0, 0, err
	}
	dropRate := 0.0
	if rep.Requests > 0 {
		dropRate = float64(rep.Drops) / float64(rep.Requests)
	}
	return rep.Client.P99, dropRate, nil
}

// ValidationCSV writes the validation results as a CSV artifact
// (byte-identical across worker counts; see internal/sweep).
func ValidationCSV(path string, results []CellResult) error {
	header := []string{
		"clients", "think_s", "seed", "replicas", "thread_scale",
		"sized_p99_ms", "sized_drop_rate", "sized_ok",
		"smaller_replicas", "smaller_p99_ms", "smaller_drop_rate", "smaller_violates",
	}
	rows := make([][]string, len(results))
	for i, r := range results {
		rows[i] = []string{
			strconv.Itoa(r.Clients),
			strconv.FormatFloat(r.Think.Seconds(), 'g', -1, 64),
			strconv.FormatInt(r.Seed, 10),
			replicasLabel(r.Replicas),
			strconv.Itoa(r.ThreadScale),
			strconv.FormatFloat(float64(r.SizedP99)/float64(time.Millisecond), 'f', 3, 64),
			strconv.FormatFloat(r.SizedDropRate, 'f', 6, 64),
			strconv.FormatBool(r.SizedOK),
			replicasLabel(r.SmallerReplicas),
			strconv.FormatFloat(float64(r.SmallerP99)/float64(time.Millisecond), 'f', 3, 64),
			strconv.FormatFloat(r.SmallerDropRate, 'f', 6, 64),
			strconv.FormatBool(r.SmallerViolates),
		}
	}
	return trace.WriteCSV(path, header, rows)
}

// replicasLabel renders a replica vector as "2-2-3".
func replicasLabel(replicas []int) string {
	s := ""
	for i, r := range replicas {
		if i > 0 {
			s += "-"
		}
		s += strconv.Itoa(r)
	}
	return s
}
