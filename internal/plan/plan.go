package plan

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"memca/internal/spec"
)

// ErrNoFeasibleSizing is returned when no sizing within the search caps
// holds the SLO under the worst-case stealthy attack.
var ErrNoFeasibleSizing = errors.New("plan: no feasible sizing within the search caps")

// Request is one planning problem: size the system templates for the
// traffic forecast so the SLO holds attack-free and under the adversary.
type Request struct {
	// System holds the per-replica tier templates. Replica counts in the
	// request are the per-tier minimums the search starts from.
	System spec.System
	// Traffic is the forecast; the planner sizes for its peak.
	Traffic spec.Traffic
	// SLO is the objective the sizing must hold.
	SLO spec.SLO
	// Adversary bounds the attacker (zero value: DefaultAdversary).
	Adversary Adversary
	// Options tune the search (zero value: DefaultOptions).
	Options Options
}

// Options cap the sizing search.
type Options struct {
	// MaxReplicas caps every tier's replica count. Zero means 8.
	MaxReplicas int
	// ThreadScales are the per-replica thread-pool multipliers the search
	// may apply uniformly across tiers (deeper queues lengthen the
	// attacker's fill and drain times at no server cost). Empty means
	// {1, 2, 4}.
	ThreadScales []int
}

// DefaultOptions returns the default search caps.
func DefaultOptions() Options {
	return Options{MaxReplicas: 8, ThreadScales: []int{1, 2, 4}}
}

func (o Options) maxReplicas() int {
	if o.MaxReplicas <= 0 {
		return 8
	}
	return o.MaxReplicas
}

func (o Options) threadScales() []int {
	if len(o.ThreadScales) == 0 {
		return []int{1, 2, 4}
	}
	return o.ThreadScales
}

// Validate reports the first option error, or nil.
func (o Options) Validate() error {
	if o.MaxReplicas < 0 {
		return fmt.Errorf("plan: MaxReplicas must be non-negative, got %d", o.MaxReplicas)
	}
	for _, s := range o.ThreadScales {
		if s <= 0 {
			return fmt.Errorf("plan: thread scales must be positive, got %d", s)
		}
	}
	return nil
}

// Cost orders sizings: servers are machines (the expensive axis), pooled
// threads are memory and connection state (the tie-breaker).
type Cost struct {
	// Servers is the fleet-wide station count across tiers.
	Servers int `json:"servers"`
	// Threads is the fleet-wide pooled thread count across tiers.
	Threads int `json:"threads"`
}

// Less orders by servers, then threads.
func (c Cost) Less(d Cost) bool {
	if c.Servers != d.Servers {
		return c.Servers < d.Servers
	}
	return c.Threads < d.Threads
}

// Sizing is one point of the search space: per-tier replica counts plus a
// uniform thread-pool scale applied to the templates.
type Sizing struct {
	// Replicas[i] is tier i's replica count.
	Replicas []int `json:"replicas"`
	// ThreadScale multiplies every tier's per-replica thread pool.
	ThreadScale int `json:"thread_scale"`
	// System is the materialized system (templates scaled and
	// replicated).
	System spec.System `json:"system"`
	// Cost is the sizing's fleet-wide cost.
	Cost Cost `json:"cost"`
}

// materialize applies the sizing knobs to the request's templates.
func materialize(base spec.System, replicas []int, scale int) (Sizing, error) {
	sys, err := base.WithReplicas(replicas)
	if err != nil {
		return Sizing{}, err
	}
	for i := range sys.Tiers {
		sys.Tiers[i].Threads *= scale
	}
	s := Sizing{
		Replicas:    append([]int(nil), replicas...),
		ThreadScale: scale,
		System:      sys,
	}
	for _, t := range sys.Tiers {
		s.Cost.Servers += t.PooledServers()
		s.Cost.Threads += t.PooledThreads()
	}
	return s, nil
}

// Result is the planner's verdict.
type Result struct {
	// Sizing is the cheapest feasible sizing.
	Sizing Sizing `json:"sizing"`
	// Assessment is the oracle's verdict on the chosen sizing at the
	// forecast peak.
	Assessment Assessment `json:"assessment"`
	// MaxClientsOff / MaxRateOff are the largest client population and
	// peak request rate the sizing sustains attack-free within the SLO.
	MaxClientsOff int     `json:"max_clients_off"`
	MaxRateOff    float64 `json:"max_rate_off"`
	// MaxClientsOn / MaxRateOn are the same under the worst-case stealthy
	// attack.
	MaxClientsOn int     `json:"max_clients_on"`
	MaxRateOn    float64 `json:"max_rate_on"`
	// NextSmaller is the chosen sizing with one bottleneck replica
	// removed — the minimality witness the validation harness replays
	// through the simulator. Nil when the bottleneck is already at the
	// search minimum.
	NextSmaller *Sizing `json:"next_smaller,omitempty"`
	// NextSmallerAssessment explains why NextSmaller fails (nil with
	// NextSmaller). A NextSmaller violating condition 1 gets a synthetic
	// assessment with OKOn false.
	NextSmallerAssessment *Assessment `json:"next_smaller_assessment,omitempty"`
	// Evaluated counts the candidates the oracle scored before the first
	// feasible one.
	Evaluated int `json:"evaluated"`
	// Elapsed is reserved for callers that want to stamp wall time into
	// reports; the solver itself leaves it zero for determinism.
	Elapsed time.Duration `json:"-"`
}

// Solve searches the sizing space in ascending cost order and returns the
// first (hence cheapest) sizing whose oracle verdict holds the SLO under
// the worst-case stealthy attack. The enumeration order is total and
// deterministic — cost, then replicas lexicographically, then thread
// scale — so minimality is by construction: every cheaper candidate was
// scored and rejected.
func Solve(req Request) (Result, error) {
	if err := req.System.Validate(); err != nil {
		return Result{}, err
	}
	if err := req.Traffic.Validate(); err != nil {
		return Result{}, err
	}
	if err := req.SLO.Validate(); err != nil {
		return Result{}, err
	}
	adv := req.Adversary
	if len(adv.Intervals) == 0 && adv.MaxMillibottleneck == 0 && adv.RTOMin == 0 {
		adv = DefaultAdversary()
	}
	if err := adv.Validate(); err != nil {
		return Result{}, err
	}
	if err := req.Options.Validate(); err != nil {
		return Result{}, err
	}

	candidates, err := enumerate(req.System, req.Options)
	if err != nil {
		return Result{}, err
	}

	res := Result{}
	for _, cand := range candidates {
		// The analytical adversary model assumes condition 1; sizings
		// breaking it are outside the model and never selected.
		if cand.System.CheckCondition1() != nil {
			continue
		}
		res.Evaluated++
		a, err := Evaluate(cand.System, req.Traffic, req.SLO, adv)
		if err != nil {
			return Result{}, err
		}
		if !a.OKOn {
			continue
		}
		res.Sizing = cand
		res.Assessment = a

		if err := res.fillRates(req, adv); err != nil {
			return Result{}, err
		}
		if err := res.fillNextSmaller(req, adv); err != nil {
			return Result{}, err
		}
		return res, nil
	}
	return Result{}, fmt.Errorf("%w: %d candidates scored (caps: %d replicas/tier, thread scales %v)",
		ErrNoFeasibleSizing, res.Evaluated, req.Options.maxReplicas(), req.Options.threadScales())
}

// enumerate builds every sizing within the caps, sorted ascending by
// cost with deterministic tie-breakers.
func enumerate(base spec.System, opts Options) ([]Sizing, error) {
	n := len(base.Tiers)
	maxR := opts.maxReplicas()
	scales := append([]int(nil), opts.threadScales()...)
	sort.Ints(scales)

	minReplicas := make([]int, n)
	for i, t := range base.Tiers {
		minReplicas[i] = 1
		if t.Replicas > 1 {
			minReplicas[i] = t.Replicas
		}
	}

	var out []Sizing
	replicas := append([]int(nil), minReplicas...)
	for {
		for _, scale := range scales {
			s, err := materialize(base, replicas, scale)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		// Odometer increment over [min..max]^n.
		i := n - 1
		for ; i >= 0; i-- {
			replicas[i]++
			if replicas[i] <= maxR {
				break
			}
			replicas[i] = minReplicas[i]
		}
		if i < 0 {
			break
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Cost != out[b].Cost {
			return out[a].Cost.Less(out[b].Cost)
		}
		for i := range out[a].Replicas {
			if out[a].Replicas[i] != out[b].Replicas[i] {
				return out[a].Replicas[i] < out[b].Replicas[i]
			}
		}
		return out[a].ThreadScale < out[b].ThreadScale
	})
	return out, nil
}

// fillRates bisects the largest sustainable client populations,
// attack-free and under attack, for the chosen sizing. Attack-free
// feasibility is monotone in load (the M/M/c tail only grows), so that
// bound is exact. Attacked feasibility is not: near saturation the
// bottleneck's drain time (Eq 9) blows past the stealth bound and the
// attack becomes infeasible again, so the feasible set can have holes.
// The search therefore seeds at the forecast population — feasible by
// construction, Solve just verified it — and reports the boundary of the
// feasible region containing it.
func (r *Result) fillRates(req Request, adv Adversary) error {
	sys := r.Sizing.System

	// Upper bound: the population that saturates the tightest tier.
	rates, err := req.Traffic.TierRates(len(sys.Tiers))
	if err != nil {
		return err
	}
	total := 0.0
	for _, rate := range rates {
		total += rate
	}
	limit := 0.0
	for i, t := range sys.Tiers {
		seen := 0.0
		for j := i; j < len(rates); j++ {
			seen += rates[j]
		}
		if seen <= 0 {
			continue
		}
		tierLimit := t.Capacity() * total / seen
		if limit == 0 || tierLimit < limit {
			limit = tierLimit
		}
	}
	peakPerClient := req.Traffic.PeakMultiplier() / req.Traffic.ThinkTime.Seconds()
	hi := int(limit/peakPerClient) + 2
	if hi <= req.Traffic.Clients {
		hi = req.Traffic.Clients + 1
	}

	okAt := func(clients int, attacked bool) (bool, error) {
		if clients <= 0 {
			return true, nil
		}
		t := req.Traffic
		t.Clients = clients
		a, err := Evaluate(sys, t, req.SLO, adv)
		if err != nil {
			return false, err
		}
		if attacked {
			return a.OKOn, nil
		}
		return a.OKOff, nil
	}

	search := func(attacked bool) (int, error) {
		lo, high := req.Traffic.Clients, hi
		for high-lo > 1 {
			mid := lo + (high-lo)/2
			ok, err := okAt(mid, attacked)
			if err != nil {
				return 0, err
			}
			if ok {
				lo = mid
			} else {
				high = mid
			}
		}
		return lo, nil
	}

	if r.MaxClientsOff, err = search(false); err != nil {
		return err
	}
	if r.MaxClientsOn, err = search(true); err != nil {
		return err
	}
	r.MaxRateOff = rateAt(req.Traffic, r.MaxClientsOff)
	r.MaxRateOn = rateAt(req.Traffic, r.MaxClientsOn)
	return nil
}

// rateAt is the peak request rate of the forecast at the given
// population.
func rateAt(t spec.Traffic, clients int) float64 {
	t.Clients = clients
	if clients <= 0 {
		return 0
	}
	return t.PeakRate()
}

// fillNextSmaller scores the minimality witness: the chosen sizing with
// one bottleneck replica removed.
func (r *Result) fillNextSmaller(req Request, adv Adversary) error {
	replicas := append([]int(nil), r.Sizing.Replicas...)
	last := len(replicas) - 1
	if replicas[last] <= 1 {
		return nil
	}
	replicas[last]--
	smaller, err := materialize(req.System, replicas, r.Sizing.ThreadScale)
	if err != nil {
		return err
	}
	r.NextSmaller = &smaller
	if err := smaller.System.CheckCondition1(); err != nil {
		r.NextSmallerAssessment = &Assessment{Reason: err.Error()}
		return nil
	}
	a, err := Evaluate(smaller.System, req.Traffic, req.SLO, adv)
	if err != nil {
		return err
	}
	r.NextSmallerAssessment = &a
	return nil
}
