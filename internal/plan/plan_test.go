package plan

import (
	"errors"
	"testing"
	"time"

	"memca/internal/spec"
)

func rubbosRequest() Request {
	return Request{
		System:  spec.RUBBoSSystem(),
		Traffic: spec.RUBBoSTraffic(),
		SLO:     spec.DefaultSLO(),
	}
}

func TestSolveRUBBoSDefaults(t *testing.T) {
	req := rubbosRequest()
	res, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assessment.OKOn || !res.Assessment.OKOff {
		t.Fatalf("chosen sizing not feasible: %+v", res.Assessment)
	}
	// The paper's stock deployment (one replica per tier, stock pools) is
	// vulnerable to the stealthy attack, so the planner must change
	// something — here it deepens the pools until no stealthy burst can
	// fill the queues within the millibottleneck bound.
	if res.Sizing.ThreadScale == 1 {
		stock, err := Evaluate(req.System, req.Traffic, req.SLO, DefaultAdversary())
		if err != nil {
			t.Fatal(err)
		}
		if !stock.OKOn {
			t.Error("planner kept the stock pools although the stock sizing fails under attack")
		}
	}
	if err := res.Sizing.System.CheckCondition1(); err != nil {
		t.Errorf("chosen sizing violates condition 1: %v", err)
	}
	if res.MaxClientsOn > res.MaxClientsOff {
		t.Errorf("attacked capacity %d exceeds attack-free capacity %d", res.MaxClientsOn, res.MaxClientsOff)
	}
	if res.MaxClientsOff < req.Traffic.Clients {
		t.Errorf("sized system sustains only %d clients, below the forecast %d", res.MaxClientsOff, req.Traffic.Clients)
	}
}

func TestSolveMinimalityWitness(t *testing.T) {
	req := rubbosRequest()
	req.Traffic = spec.Traffic{Clients: 2600, ThinkTime: time.Second}
	res, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.NextSmaller == nil {
		t.Fatalf("expected a multi-replica bottleneck with a minimality witness, got replicas %v", res.Sizing.Replicas)
	}
	if res.NextSmallerAssessment == nil || res.NextSmallerAssessment.OKOn {
		t.Errorf("minimality witness must fail the SLO: %+v", res.NextSmallerAssessment)
	}
	last := len(res.Sizing.Replicas) - 1
	if res.NextSmaller.Replicas[last] != res.Sizing.Replicas[last]-1 {
		t.Errorf("witness replicas %v for sizing %v", res.NextSmaller.Replicas, res.Sizing.Replicas)
	}
}

func TestSolveInfeasible(t *testing.T) {
	req := rubbosRequest()
	req.SLO.TargetRT = time.Microsecond // nothing can hold a 1us p99
	_, err := Solve(req)
	if !errors.Is(err, ErrNoFeasibleSizing) {
		t.Fatalf("Solve = %v, want ErrNoFeasibleSizing", err)
	}
}

// TestSolveMonotoneInSLO: loosening the target response time never makes
// the chosen sizing more expensive.
func TestSolveMonotoneInSLO(t *testing.T) {
	req := rubbosRequest()
	req.Traffic = spec.Traffic{Clients: 2000, ThinkTime: time.Second}
	targets := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond, time.Second}
	var prev *Cost
	for _, target := range targets {
		req.SLO.TargetRT = target
		res, err := Solve(req)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if prev != nil && prev.Less(res.Sizing.Cost) {
			t.Errorf("loosening target to %v raised cost %+v -> %+v", target, *prev, res.Sizing.Cost)
		}
		c := res.Sizing.Cost
		prev = &c
	}
}

// TestSolveMonotoneInLoad: more offered load never makes the chosen
// sizing cheaper, and the sustainable-rate ceilings never shrink below
// the forecast.
func TestSolveMonotoneInLoad(t *testing.T) {
	req := rubbosRequest()
	var prev *Cost
	for _, clients := range []int{500, 1000, 2000, 3000} {
		req.Traffic = spec.Traffic{Clients: clients, ThinkTime: time.Second}
		res, err := Solve(req)
		if err != nil {
			t.Fatalf("%d clients: %v", clients, err)
		}
		if prev != nil && res.Sizing.Cost.Less(*prev) {
			t.Errorf("raising load to %d clients lowered cost %+v -> %+v", clients, *prev, res.Sizing.Cost)
		}
		if res.MaxClientsOn < clients {
			t.Errorf("%d clients: sized system sustains only %d under attack", clients, res.MaxClientsOn)
		}
		c := res.Sizing.Cost
		prev = &c
	}
}

// TestEvaluateMonotoneInLoad: the oracle's attack-free tail never
// improves when load grows on a fixed sizing. (The worst stealthy impact
// is deliberately not asserted monotone: near saturation the bottleneck's
// drain time outgrows the stealth bound and the attacker loses ground.)
func TestEvaluateMonotoneInLoad(t *testing.T) {
	sys, err := spec.RUBBoSSystem().WithReplicas([]int{2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	slo := spec.DefaultSLO()
	adv := DefaultAdversary()
	var prev *Assessment
	for _, clients := range []int{500, 1000, 1500, 2000, 2500} {
		a, err := Evaluate(sys, spec.Traffic{Clients: clients, ThinkTime: time.Second}, slo, adv)
		if err != nil {
			t.Fatalf("%d clients: %v", clients, err)
		}
		if !a.Stable {
			t.Fatalf("%d clients: expected a stable operating point", clients)
		}
		if prev != nil {
			if a.TailOff < prev.TailOff {
				t.Errorf("%d clients: attack-free tail improved %v -> %v", clients, prev.TailOff, a.TailOff)
			}
		}
		prev = &a
	}
}

func TestEvaluateOverloadedSizing(t *testing.T) {
	// 5000 req/s against mysql's ~920 req/s: the oracle must report an
	// unstable, infeasible sizing, not an error.
	a, err := Evaluate(spec.RUBBoSSystem(), spec.Traffic{Clients: 5000, ThinkTime: time.Second},
		spec.DefaultSLO(), DefaultAdversary())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stable || a.OKOff || a.OKOn {
		t.Errorf("overloaded sizing assessed as %+v", a)
	}
	if a.Reason == "" {
		t.Error("expected a reason for the infeasible verdict")
	}
}

// TestStockRUBBoSVulnerable reproduces the paper's premise through the
// oracle: the stock deployment has attack-free headroom yet a stealthy
// burst train drives it out of any reasonable SLO.
func TestStockRUBBoSVulnerable(t *testing.T) {
	a, err := Evaluate(spec.RUBBoSSystem(), spec.RUBBoSTraffic(), spec.DefaultSLO(), DefaultAdversary())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Stable || !a.OKOff {
		t.Fatalf("stock RUBBoS should be fine attack-free: %+v", a)
	}
	if a.WorstImpact < 0.05 {
		t.Errorf("worst stealthy impact %.4f, want >= 0.05 (the paper's damage goal)", a.WorstImpact)
	}
	if a.OKOn {
		t.Error("stock RUBBoS must fail the SLO under the worst stealthy attack")
	}
	if a.TailOn < DefaultAdversary().RTOMin {
		t.Errorf("attacked tail %v below the retransmission floor", a.TailOn)
	}
}

func TestEnumerateOrderDeterministic(t *testing.T) {
	opts := Options{MaxReplicas: 3, ThreadScales: []int{2, 1}}
	first, err := enumerate(spec.RUBBoSSystem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := enumerate(spec.RUBBoSSystem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) || len(first) != 3*3*3*2 {
		t.Fatalf("enumeration sizes %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Cost != second[i].Cost || first[i].ThreadScale != second[i].ThreadScale {
			t.Fatalf("enumeration order diverges at %d", i)
		}
		for j := range first[i].Replicas {
			if first[i].Replicas[j] != second[i].Replicas[j] {
				t.Fatalf("enumeration order diverges at %d", i)
			}
		}
		if i > 0 && first[i].Cost.Less(first[i-1].Cost) {
			t.Fatalf("enumeration not ascending at %d: %+v after %+v", i, first[i].Cost, first[i-1].Cost)
		}
	}
}

func TestSolveRespectsRequestMinimumReplicas(t *testing.T) {
	req := rubbosRequest()
	sys, err := req.System.WithReplicas([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	req.System = sys
	res, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Sizing.Replicas {
		if r < 2 {
			t.Errorf("tier %d sized below the requested minimum: %d", i, r)
		}
	}
}
