package plan

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"memca/internal/spec"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got byte-for-byte against testdata/<name>. The
// memca-plan report formats are artifact contracts — any diff is a
// breaking change. Regenerate deliberately with:
// go test ./internal/plan -run Golden -update
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	goldenPath := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file:\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// goldenRequest is the pinned planning problem behind both golden files:
// a heavy-traffic point whose sizing needs multiple replicas, so the
// report exercises the minimality witness and both rate ceilings.
func goldenRequest() Request {
	return Request{
		System:  spec.RUBBoSSystem(),
		Traffic: spec.Traffic{Clients: 2600, ThinkTime: time.Second},
		SLO:     spec.DefaultSLO(),
	}
}

func TestGoldenTextReport(t *testing.T) {
	req := goldenRequest()
	res, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.txt", []byte(res.Render(req)))
}

func TestGoldenJSONReport(t *testing.T) {
	req := goldenRequest()
	res, err := Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.JSON(req)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", append(got, '\n'))
}
