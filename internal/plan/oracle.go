// Package plan inverts the reproduction's analytical model into a
// capacity planner: given a tier template catalogue, a traffic forecast,
// and an SLO, it searches replica counts and thread-pool sizes for the
// cheapest sizing that holds the objective both attack-free and under the
// worst-case stealthy MemCA burst train, reusing analytical.PlanAttack as
// the adversary oracle. The solver is pure arithmetic over the spec
// vocabulary — deterministic, simulation-free — and is validated against
// the simulator by the sweep harness in validate.go.
package plan

import (
	"errors"
	"fmt"
	"time"

	"memca/internal/analytical"
	"memca/internal/spec"
)

// Adversary bounds the attacker the planner sizes against: a MemCA burst
// train that must stay stealthy (millibottlenecks below the detection
// window) but is otherwise free to pick its degradation, burst length,
// and interval.
type Adversary struct {
	// Intervals are the candidate burst intervals I the attacker may use;
	// the oracle takes the worst case over them.
	Intervals []time.Duration
	// MaxMillibottleneck is the stealth bound on P_MB = L + drain: bursts
	// whose millibottlenecks exceed it are visible to coarse monitoring
	// and assumed to be caught. Zero disables the bound (an unconstrained
	// attacker).
	MaxMillibottleneck time.Duration
	// RTOMin is the response-time floor a request caught in the hold-on
	// stage pays (the TCP retransmission minimum, RFC 6298: 1 s).
	RTOMin time.Duration
}

// DefaultAdversary returns the paper's stealthy attacker: bursts at 1, 2,
// or 5 second intervals, millibottlenecks kept under 1 s, damaged
// requests delayed by the 1 s TCP retransmission minimum.
func DefaultAdversary() Adversary {
	return Adversary{
		Intervals:          []time.Duration{time.Second, 2 * time.Second, 5 * time.Second},
		MaxMillibottleneck: time.Second,
		RTOMin:             time.Second,
	}
}

// Validate reports the first adversary error, or nil.
func (a Adversary) Validate() error {
	if len(a.Intervals) == 0 {
		return fmt.Errorf("plan: adversary needs at least one interval")
	}
	for i, iv := range a.Intervals {
		if iv <= 0 {
			return fmt.Errorf("plan: adversary interval %d must be positive, got %v", i, iv)
		}
	}
	if a.MaxMillibottleneck < 0 {
		return fmt.Errorf("plan: MaxMillibottleneck must be non-negative, got %v", a.MaxMillibottleneck)
	}
	if a.RTOMin <= 0 {
		return fmt.Errorf("plan: RTOMin must be positive, got %v", a.RTOMin)
	}
	return nil
}

// Assessment is the oracle's verdict on one sizing under one traffic
// point: the attack-free tail, the worst stealthy attack, and whether the
// SLO holds in each regime.
type Assessment struct {
	// Stable reports every tier keeps attack-free headroom at the
	// forecast peak (analytical.CheckStability).
	Stable bool `json:"stable"`
	// Utilization[i] is tier i's pooled utilization at the peak.
	Utilization []float64 `json:"utilization,omitempty"`
	// TailOff is the attack-free SLO-percentile response time: the sum of
	// per-tier M/M/c waiting-time quantiles plus service times, a
	// conservative composition of the critical path.
	TailOff time.Duration `json:"tail_off"`
	// WorstImpact is the largest hold-on fraction rho = P_D / I any
	// stealthy attack achieves against this sizing (0 when no stealthy
	// attack fills the queues).
	WorstImpact float64 `json:"worst_impact"`
	// WorstAttack is a maximal attack realizing WorstImpact (zero value
	// when WorstImpact is 0).
	WorstAttack analytical.Attack `json:"worst_attack"`
	// WorstInterval is the burst interval of WorstAttack.
	WorstInterval time.Duration `json:"worst_interval,omitempty"`
	// TailOn is the SLO-percentile response time under WorstAttack: a
	// fraction WorstImpact of requests pays at least RTOMin, the rest see
	// the attack-free distribution.
	TailOn time.Duration `json:"tail_on"`
	// DropOn is the request drop fraction under WorstAttack: during the
	// hold-on stage the front queue is full, so arrivals are shed.
	DropOn float64 `json:"drop_on"`
	// OKOff reports the SLO holds attack-free.
	OKOff bool `json:"ok_off"`
	// OKOn reports the SLO also holds under the worst stealthy attack.
	OKOn bool `json:"ok_on"`
	// Reason names the first violated constraint when OKOn is false.
	Reason string `json:"reason,omitempty"`
}

// impactIterations is the bisection depth for the worst-impact search:
// 20 halvings of [0,1) resolve rho to ~1e-6.
const impactIterations = 20

// Evaluate runs the oracle for one sizing: the system must already be in
// a shape the analytical model accepts (validated, condition 1). The
// traffic's forecast peak is the sizing point.
func Evaluate(sys spec.System, traffic spec.Traffic, slo spec.SLO, adv Adversary) (Assessment, error) {
	if err := slo.Validate(); err != nil {
		return Assessment{}, err
	}
	if err := adv.Validate(); err != nil {
		return Assessment{}, err
	}
	m, err := sys.Model(traffic)
	if err != nil {
		return Assessment{}, err
	}
	if err := m.Validate(); err != nil {
		return Assessment{}, err
	}

	a := Assessment{}
	if err := m.CheckStability(); err != nil {
		if !errors.Is(err, analytical.ErrInfeasible) {
			return Assessment{}, err
		}
		a.Reason = "overloaded: " + err.Error()
		return a, nil
	}
	a.Stable = true
	for i := range m.Tiers {
		a.Utilization = append(a.Utilization, m.SeenRate(i)/m.Tiers[i].CapacityOFF)
	}

	p := slo.EffectivePercentile() / 100
	tailOff, err := tailQuantile(sys, m, p)
	if err != nil {
		return Assessment{}, err
	}
	a.TailOff = tailOff
	a.OKOff = tailOff <= slo.TargetRT && slo.MaxDropRate >= 0
	if !a.OKOff {
		a.Reason = fmt.Sprintf("attack-free p%g %v exceeds target %v", slo.EffectivePercentile(), tailOff, slo.TargetRT)
	}

	rho, attack, interval, err := worstImpact(m, adv)
	if err != nil {
		return Assessment{}, err
	}
	a.WorstImpact = rho
	a.WorstAttack = attack
	a.WorstInterval = interval
	a.DropOn = rho

	// Attacked tail: mixture of the hold-on fraction (RT >= RTOMin) and
	// the attack-free distribution. The quantile either lands in the
	// damaged mass or maps to a deeper attack-free quantile.
	tail := 1 - p
	switch {
	case rho <= 0:
		a.TailOn = tailOff
	case rho >= tail:
		a.TailOn = adv.RTOMin
		if tailOff > a.TailOn {
			a.TailOn = tailOff
		}
	default:
		adjusted := 1 - (tail-rho)/(1-rho)
		t, err := tailQuantile(sys, m, adjusted)
		if err != nil {
			return Assessment{}, err
		}
		a.TailOn = t
	}

	a.OKOn = a.OKOff && a.TailOn <= slo.TargetRT && a.DropOn <= slo.MaxDropRate
	if a.OKOff && !a.OKOn {
		switch {
		case a.TailOn > slo.TargetRT:
			a.Reason = fmt.Sprintf("attacked p%g %v exceeds target %v (worst stealthy impact %.4f)",
				slo.EffectivePercentile(), a.TailOn, slo.TargetRT, rho)
		default:
			a.Reason = fmt.Sprintf("attacked drop rate %.4f exceeds budget %.4f", a.DropOn, slo.MaxDropRate)
		}
	}
	return a, nil
}

// tailQuantile composes a conservative p-quantile of the client response
// time attack-free: each tier is an M/M/c station at its pooled traffic,
// and the per-tier waiting-time p-quantiles plus mean demands are summed
// along the critical path. Summing per-tier quantiles upper-bounds the
// quantile of the sum, so a sizing accepted here holds the target in any
// dependence structure.
func tailQuantile(sys spec.System, m analytical.Model, p float64) (time.Duration, error) {
	var total time.Duration
	for i, tier := range sys.Tiers {
		demand := time.Duration(float64(tier.Service) * demandFactor(tier))
		total += demand
		seen := m.SeenRate(i)
		if seen <= 0 {
			continue
		}
		servers := tier.PooledServers()
		mu := 1 / demand.Seconds()
		q, err := analytical.NewMMc(seen, mu, servers)
		if err != nil {
			return 0, fmt.Errorf("plan: tier %q: %w", tier.Name, err)
		}
		total += q.WaitQuantile(p)
	}
	return total, nil
}

// demandFactor mirrors the spec's zero-value-is-1 convention.
func demandFactor(t spec.TierSpec) float64 {
	if t.DemandFactor <= 0 {
		return 1
	}
	return t.DemandFactor
}

// worstImpact returns the supremum hold-on fraction rho any stealthy
// attack achieves against the model, over the adversary's candidate
// intervals, by bisecting the largest feasible MinImpact goal through
// analytical.PlanAttack. Errors other than ErrInfeasible (a broken model)
// propagate.
func worstImpact(m analytical.Model, adv Adversary) (float64, analytical.Attack, time.Duration, error) {
	var (
		bestRho      float64
		bestAttack   analytical.Attack
		bestInterval time.Duration
	)
	for _, interval := range adv.Intervals {
		goal := analytical.Goal{MaxMillibottleneck: adv.MaxMillibottleneck}
		feasible := func(g float64) (bool, error) {
			goal.MinImpact = g
			_, err := analytical.PlanAttack(m, goal, interval)
			if err == nil {
				return true, nil
			}
			if errors.Is(err, analytical.ErrInfeasible) {
				return false, nil
			}
			return false, err
		}
		ok, err := feasible(0)
		if err != nil {
			return 0, analytical.Attack{}, 0, err
		}
		if !ok {
			continue // no stealthy attack fills the queues at this interval
		}
		lo, hi := 0.0, 1.0
		for iter := 0; iter < impactIterations; iter++ {
			mid := (lo + hi) / 2
			ok, err := feasible(mid)
			if err != nil {
				return 0, analytical.Attack{}, 0, err
			}
			if ok {
				lo = mid
			} else {
				hi = mid
			}
		}
		if lo >= bestRho {
			goal.MinImpact = lo
			attack, err := analytical.PlanAttack(m, goal, interval)
			if err != nil {
				return 0, analytical.Attack{}, 0, err
			}
			// Report the realized impact of the planned attack, not the
			// bisection bound (the attack may overshoot the goal).
			pred, err := m.Predict(attack)
			if err != nil {
				return 0, analytical.Attack{}, 0, err
			}
			if pred.Impact >= bestRho {
				bestRho = pred.Impact
				bestAttack = attack
				bestInterval = interval
			}
		}
	}
	return bestRho, bestAttack, bestInterval, nil
}
