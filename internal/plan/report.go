package plan

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Render formats the result as the memca-plan text report.
func (r Result) Render(req Request) string {
	var b strings.Builder
	slo := req.SLO
	fmt.Fprintf(&b, "memca-plan: sizing for p%g <= %v, drops <= %.2f%%\n",
		slo.EffectivePercentile(), slo.TargetRT, slo.MaxDropRate*100)
	fmt.Fprintf(&b, "traffic: %d clients, %v think (peak x%.2f -> %.1f req/s)\n",
		req.Traffic.Clients, req.Traffic.ThinkTime, req.Traffic.PeakMultiplier(), req.Traffic.PeakRate())
	b.WriteString("\nchosen sizing (cheapest feasible):\n")
	fmt.Fprintf(&b, "  %-8s %9s %8s %8s %9s %6s\n", "tier", "replicas", "threads", "servers", "cap req/s", "util")
	for i, t := range r.Sizing.System.Tiers {
		util := 0.0
		if i < len(r.Assessment.Utilization) {
			util = r.Assessment.Utilization[i]
		}
		fmt.Fprintf(&b, "  %-8s %9d %8d %8d %9.0f %5.1f%%\n",
			t.Name, r.Sizing.Replicas[i], t.PooledThreads(), t.PooledServers(), t.Capacity(), util*100)
	}
	fmt.Fprintf(&b, "  cost: %d servers, %d threads (thread scale x%d); %d candidates scored\n",
		r.Sizing.Cost.Servers, r.Sizing.Cost.Threads, r.Sizing.ThreadScale, r.Evaluated)

	a := r.Assessment
	b.WriteString("\nverdict at forecast peak:\n")
	fmt.Fprintf(&b, "  attack-free: p%g = %v, drops 0.00%%\n", slo.EffectivePercentile(), a.TailOff)
	if a.WorstImpact > 0 {
		fmt.Fprintf(&b, "  worst stealthy attack: D=%.2f L=%v I=%v (impact %.4f)\n",
			a.WorstAttack.D, a.WorstAttack.L, a.WorstInterval, a.WorstImpact)
		fmt.Fprintf(&b, "  under attack: p%g = %v, drops %.2f%%\n", slo.EffectivePercentile(), a.TailOn, a.DropOn*100)
	} else {
		b.WriteString("  worst stealthy attack: none fills the queues (sizing is attack-proof at this stealth bound)\n")
	}

	b.WriteString("\nmax sustainable load within SLO:\n")
	fmt.Fprintf(&b, "  attack-free:  %d clients (%.1f req/s peak)\n", r.MaxClientsOff, r.MaxRateOff)
	fmt.Fprintf(&b, "  under attack: %d clients (%.1f req/s peak)\n", r.MaxClientsOn, r.MaxRateOn)

	if r.NextSmaller != nil {
		fmt.Fprintf(&b, "\nminimality witness: one %s replica fewer (%v) fails: %s\n",
			lastTierName(req), r.NextSmaller.Replicas, nextSmallerReason(r))
	} else {
		b.WriteString("\nminimality witness: bottleneck already at one replica\n")
	}
	return b.String()
}

// lastTierName names the bottleneck tier.
func lastTierName(req Request) string {
	return req.System.Tiers[len(req.System.Tiers)-1].Name
}

// nextSmallerReason summarizes why the minimality witness fails.
func nextSmallerReason(r Result) string {
	a := r.NextSmallerAssessment
	if a == nil {
		return "not assessed"
	}
	if a.Reason != "" {
		return a.Reason
	}
	if a.OKOn {
		return "unexpectedly feasible"
	}
	return "SLO violated"
}

// reportJSON is the memca-plan JSON document.
type reportJSON struct {
	SLO struct {
		Percentile  float64       `json:"percentile"`
		TargetRT    time.Duration `json:"target_rt_ns"`
		MaxDropRate float64       `json:"max_drop_rate"`
	} `json:"slo"`
	Traffic struct {
		Clients  int     `json:"clients"`
		ThinkSec float64 `json:"think_seconds"`
		PeakMult float64 `json:"peak_multiplier"`
		PeakRate float64 `json:"peak_rate"`
	} `json:"traffic"`
	Result Result `json:"result"`
}

// JSON renders the result as an indented JSON document.
func (r Result) JSON(req Request) ([]byte, error) {
	var doc reportJSON
	doc.SLO.Percentile = req.SLO.EffectivePercentile()
	doc.SLO.TargetRT = req.SLO.TargetRT
	doc.SLO.MaxDropRate = req.SLO.MaxDropRate
	doc.Traffic.Clients = req.Traffic.Clients
	doc.Traffic.ThinkSec = req.Traffic.ThinkTime.Seconds()
	doc.Traffic.PeakMult = req.Traffic.PeakMultiplier()
	doc.Traffic.PeakRate = req.Traffic.PeakRate()
	doc.Result = r
	return json.MarshalIndent(doc, "", "  ")
}
