package memcafw

import (
	"net"
	"net/http"
	"testing"
	"time"
)

// newSlowServer starts an HTTP server whose root handler sleeps for delay
// before answering, and returns its base URL. The server is torn down with
// the test.
func newSlowServer(t *testing.T, delay time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(delay)
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write([]byte("ok")); err != nil {
			t.Logf("slow server write: %v", err)
		}
	})
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			t.Errorf("slow server: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Logf("closing slow server: %v", err)
		}
	})
	return "http://" + ln.Addr().String() + "/"
}
