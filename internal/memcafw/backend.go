package memcafw

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"memca/internal/attack"
	"memca/internal/control"
	"memca/internal/telemetry/live"
)

// ProbeFunc measures the target system's response time once. HTTPProbe
// adapts a URL; tests inject synthetic probes.
type ProbeFunc func(ctx context.Context) (time.Duration, error)

// HTTPProbe returns a ProbeFunc that times a GET against the target web
// system's front door — the lightweight probing of Section IV-C.
func HTTPProbe(url string, timeout time.Duration) ProbeFunc {
	client := &http.Client{Timeout: timeout}
	return func(ctx context.Context) (time.Duration, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, fmt.Errorf("memcafw: building probe: %w", err)
		}
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			// A timed-out probe is a damage signal: report the timeout
			// itself as the observed latency.
			return timeout, nil
		}
		if err := resp.Body.Close(); err != nil {
			return 0, fmt.Errorf("memcafw: closing probe body: %w", err)
		}
		return time.Since(start), nil
	}
}

// TracedHTTPProbe is HTTPProbe with client-side causal tracing: each
// probe mints a trace ID, injects the trace header so every victimd tier
// records its spans, and closes the trace (complete on 200, abandoned on
// timeout or refusal). The probes then appear in the collector's report
// alongside the load generator's traffic.
func TracedHTTPProbe(url string, timeout time.Duration, col *live.Collector) ProbeFunc {
	client := &http.Client{Timeout: timeout}
	return func(ctx context.Context) (time.Duration, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, fmt.Errorf("memcafw: building probe: %w", err)
		}
		id := col.NextTraceID()
		req.Header.Set(live.TraceHeader, live.FormatTraceHeader(id, 0))
		start := time.Now()
		col.Record(id, live.KindSubmit, live.ClientTier, 0, 0)
		resp, err := client.Do(req)
		if err != nil {
			// A timed-out probe is a damage signal: report the timeout
			// itself as the observed latency.
			col.Record(id, live.KindAbandoned, live.ClientTier, 0, 0)
			return timeout, nil
		}
		status := resp.StatusCode
		if err := resp.Body.Close(); err != nil {
			col.Record(id, live.KindAbandoned, live.ClientTier, 0, 0)
			return 0, fmt.Errorf("memcafw: closing probe body: %w", err)
		}
		if status == http.StatusOK {
			col.Record(id, live.KindComplete, live.ClientTier, 0, 0)
		} else {
			col.Record(id, live.KindAbandoned, live.ClientTier, 0, 0)
		}
		return time.Since(start), nil
	}
}

// ProbeSample is one timestamped probe measurement. The BE keeps the full
// timestamped history (not just the smoothing window) so tail spikes can
// be aligned with attack bursts after the run.
type ProbeSample struct {
	// At is when the probe completed.
	At time.Time
	// RT is the observed response time.
	RT time.Duration
}

// TimedReport is a burst report stamped with its receive time at the BE,
// anchoring the FE's relative telemetry on the BE's clock.
type TimedReport struct {
	BurstReport
	// At is when the BE received the report (just after the burst ended).
	At time.Time
}

// BurstWindow aligns one attack burst with the probe samples observed
// around it: the window spans the burst's execution (receive time minus
// the reported execution time) padded on both sides, so the drain phase
// after the burst — where the paper's tail amplification lives — is
// captured too.
type BurstWindow struct {
	// Report is the burst's telemetry.
	Report TimedReport
	// Start and End bound the window.
	Start, End time.Time
	// Samples are the probe measurements inside the window, in time order.
	Samples []ProbeSample
}

// MaxRT returns the worst probe response time in the window, or 0 when
// no probe landed inside it.
func (w BurstWindow) MaxRT() time.Duration {
	var max time.Duration
	for _, s := range w.Samples {
		if s.RT > max {
			max = s.RT
		}
	}
	return max
}

// BackendConfig parameterizes MemCA-BE.
type BackendConfig struct {
	// FEAddr is the frontend's TCP address.
	FEAddr string
	// Probe measures the target's response time.
	Probe ProbeFunc
	// ProbePeriod separates probes (default 1 s).
	ProbePeriod time.Duration
	// Window is how many recent probes the percentile uses (default 30).
	Window int
	// Goal is the damage/stealth objective.
	Goal control.Goal
	// Bounds clamp the commander's search.
	Bounds control.Bounds
	// Initial are the attack parameters to start from.
	Initial attack.Params
	// DecisionEvery separates commander decisions (default 5 s).
	DecisionEvery time.Duration
	// Logger receives operational messages; nil disables logging.
	Logger *log.Logger
}

// Backend is the MemCA-BE controller: it probes the target, smooths the
// tail signal, decides new parameters, and pushes them to the FE.
type Backend struct {
	cfg       BackendConfig
	conn      *conn
	commander *control.Commander

	mu       sync.Mutex
	samples  []ProbeSample
	reports  []TimedReport
	feHello  Hello
	lastSent attack.Params

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewBackend validates the configuration, dials the FE, and reads its
// hello.
func NewBackend(cfg BackendConfig) (*Backend, error) {
	if cfg.Probe == nil {
		return nil, fmt.Errorf("memcafw: BE needs a probe function")
	}
	if cfg.ProbePeriod <= 0 {
		cfg.ProbePeriod = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 30
	}
	if cfg.DecisionEvery <= 0 {
		cfg.DecisionEvery = 5 * time.Second
	}
	commander, err := control.NewCommander(cfg.Goal, cfg.Bounds, cfg.Initial)
	if err != nil {
		return nil, err
	}
	raw, err := net.Dial("tcp", cfg.FEAddr)
	if err != nil {
		return nil, fmt.Errorf("memcafw: dialing FE %s: %w", cfg.FEAddr, err)
	}
	c := newConn(raw)
	env, err := c.recv()
	if err != nil {
		_ = c.close()
		return nil, fmt.Errorf("memcafw: waiting for hello: %w", err)
	}
	if env.Type != MsgHello {
		_ = c.close()
		return nil, fmt.Errorf("memcafw: expected hello, got %q", env.Type)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Backend{
		cfg:       cfg,
		conn:      c,
		commander: commander,
		feHello:   *env.Hello,
		lastSent:  cfg.Initial,
		ctx:       ctx,
		cancel:    cancel,
	}
	return b, nil
}

// FEInfo returns the connected frontend's hello.
func (b *Backend) FEInfo() Hello { return b.feHello }

// Commander exposes the controller for inspection.
func (b *Backend) Commander() *control.Commander { return b.commander }

// Reports returns a copy of the burst reports received so far, each
// stamped with its receive time.
func (b *Backend) Reports() []TimedReport {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TimedReport, len(b.reports))
	copy(out, b.reports)
	return out
}

// ProbeSamples returns a copy of the full timestamped probe history.
func (b *Backend) ProbeSamples() []ProbeSample {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]ProbeSample, len(b.samples))
	copy(out, b.samples)
	return out
}

// BurstWindows aligns every received burst report with the probe samples
// around it: each window covers the burst's execution plus pad on both
// sides. This is the timestamped replacement for the old flat RT ring —
// it lets live attribution correlate tail spans with burst intervals.
func (b *Backend) BurstWindows(pad time.Duration) []BurstWindow {
	reports := b.Reports()
	samples := b.ProbeSamples()
	out := make([]BurstWindow, 0, len(reports))
	for _, r := range reports {
		w := BurstWindow{
			Report: r,
			Start:  r.At.Add(-time.Duration(r.ExecMs)*time.Millisecond - pad),
			End:    r.At.Add(pad),
		}
		for _, s := range samples {
			if !s.At.Before(w.Start) && !s.At.After(w.End) {
				w.Samples = append(w.Samples, s)
			}
		}
		out = append(out, w)
	}
	return out
}

// TailRT returns the configured-window percentile of the most recent
// probe response times.
func (b *Backend) TailRT(pct float64) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.samples) == 0 {
		return 0
	}
	recent := b.samples
	if len(recent) > b.cfg.Window {
		recent = recent[len(recent)-b.cfg.Window:]
	}
	cp := make([]time.Duration, len(recent))
	for i, s := range recent {
		cp[i] = s.RT
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(pct / 100 * float64(len(cp)-1))
	return cp[idx]
}

// Run drives the control loop until ctx is canceled or the FE disconnects.
// It sends the initial parameters immediately, probes continuously, and
// decides periodically.
func (b *Backend) Run(ctx context.Context) error {
	if err := b.sendParams(b.cfg.Initial); err != nil {
		return err
	}

	// Reader: collect burst reports.
	readErr := make(chan error, 1)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			env, err := b.conn.recv()
			if err != nil {
				readErr <- err
				return
			}
			if env.Type == MsgBurstReport {
				b.mu.Lock()
				b.reports = append(b.reports, TimedReport{BurstReport: *env.Report, At: time.Now()})
				b.mu.Unlock()
			}
		}
	}()

	// Prober: one probe per period.
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		ticker := time.NewTicker(b.cfg.ProbePeriod)
		defer ticker.Stop()
		for {
			select {
			case <-b.ctx.Done():
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				rt, err := b.cfg.Probe(ctx)
				if err != nil {
					b.logf("be: probe: %v", err)
					continue
				}
				b.record(rt)
			}
		}
	}()

	decide := time.NewTicker(b.cfg.DecisionEvery)
	defer decide.Stop()
	for {
		select {
		case <-ctx.Done():
			return b.shutdown()
		case err := <-readErr:
			b.cancel()
			b.wg.Wait()
			return fmt.Errorf("memcafw: FE connection lost: %w", err)
		case <-decide.C:
			obs := control.Observation{
				TailRT:          b.TailRT(b.cfg.Goal.Percentile),
				Millibottleneck: b.lastExec(),
			}
			next := b.commander.Decide(obs)
			if next != b.lastSent {
				if err := b.sendParams(next); err != nil {
					b.cancel()
					b.wg.Wait()
					return err
				}
				b.logf("be: retuned to R=%.2f L=%v I=%v (tail %v)",
					next.Intensity, next.BurstLength, next.Interval, obs.TailRT)
			}
		}
	}
}

// shutdown tells the FE to stop and releases resources.
func (b *Backend) shutdown() error {
	if err := b.conn.send(Envelope{Type: MsgStop}); err != nil {
		b.logf("be: sending stop: %v", err)
	}
	b.cancel()
	err := b.conn.close()
	b.wg.Wait()
	if err != nil {
		return fmt.Errorf("memcafw: closing FE connection: %w", err)
	}
	return nil
}

// record appends one timestamped probe sample. The full history is kept
// (one sample per probe period, bounded by run length) so burst windows
// can be cut out of it after the fact; TailRT reads only the recent
// cfg.Window samples.
func (b *Backend) record(rt time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.samples = append(b.samples, ProbeSample{At: time.Now(), RT: rt})
}

// lastExec returns the FE's latest execution-time report as the
// millibottleneck estimate, or 0 when none arrived yet.
func (b *Backend) lastExec() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.reports) == 0 {
		return 0
	}
	return time.Duration(b.reports[len(b.reports)-1].ExecMs) * time.Millisecond
}

func (b *Backend) sendParams(p attack.Params) error {
	msg := paramsToMsg(p.Intensity, p.BurstLength, p.Interval)
	if err := b.conn.send(Envelope{Type: MsgSetParams, Params: &msg}); err != nil {
		return err
	}
	b.lastSent = p
	return nil
}

func (b *Backend) logf(format string, args ...any) {
	if b.cfg.Logger != nil {
		b.cfg.Logger.Printf(format, args...)
	}
}
