package memcafw

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"memca/internal/attack"
	"memca/internal/control"
)

// ProbeFunc measures the target system's response time once. HTTPProbe
// adapts a URL; tests inject synthetic probes.
type ProbeFunc func(ctx context.Context) (time.Duration, error)

// HTTPProbe returns a ProbeFunc that times a GET against the target web
// system's front door — the lightweight probing of Section IV-C.
func HTTPProbe(url string, timeout time.Duration) ProbeFunc {
	client := &http.Client{Timeout: timeout}
	return func(ctx context.Context) (time.Duration, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, fmt.Errorf("memcafw: building probe: %w", err)
		}
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			// A timed-out probe is a damage signal: report the timeout
			// itself as the observed latency.
			return timeout, nil
		}
		if err := resp.Body.Close(); err != nil {
			return 0, fmt.Errorf("memcafw: closing probe body: %w", err)
		}
		return time.Since(start), nil
	}
}

// BackendConfig parameterizes MemCA-BE.
type BackendConfig struct {
	// FEAddr is the frontend's TCP address.
	FEAddr string
	// Probe measures the target's response time.
	Probe ProbeFunc
	// ProbePeriod separates probes (default 1 s).
	ProbePeriod time.Duration
	// Window is how many recent probes the percentile uses (default 30).
	Window int
	// Goal is the damage/stealth objective.
	Goal control.Goal
	// Bounds clamp the commander's search.
	Bounds control.Bounds
	// Initial are the attack parameters to start from.
	Initial attack.Params
	// DecisionEvery separates commander decisions (default 5 s).
	DecisionEvery time.Duration
	// Logger receives operational messages; nil disables logging.
	Logger *log.Logger
}

// Backend is the MemCA-BE controller: it probes the target, smooths the
// tail signal, decides new parameters, and pushes them to the FE.
type Backend struct {
	cfg       BackendConfig
	conn      *conn
	commander *control.Commander

	mu       sync.Mutex
	window   []time.Duration
	reports  []BurstReport
	feHello  Hello
	lastSent attack.Params

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewBackend validates the configuration, dials the FE, and reads its
// hello.
func NewBackend(cfg BackendConfig) (*Backend, error) {
	if cfg.Probe == nil {
		return nil, fmt.Errorf("memcafw: BE needs a probe function")
	}
	if cfg.ProbePeriod <= 0 {
		cfg.ProbePeriod = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 30
	}
	if cfg.DecisionEvery <= 0 {
		cfg.DecisionEvery = 5 * time.Second
	}
	commander, err := control.NewCommander(cfg.Goal, cfg.Bounds, cfg.Initial)
	if err != nil {
		return nil, err
	}
	raw, err := net.Dial("tcp", cfg.FEAddr)
	if err != nil {
		return nil, fmt.Errorf("memcafw: dialing FE %s: %w", cfg.FEAddr, err)
	}
	c := newConn(raw)
	env, err := c.recv()
	if err != nil {
		_ = c.close()
		return nil, fmt.Errorf("memcafw: waiting for hello: %w", err)
	}
	if env.Type != MsgHello {
		_ = c.close()
		return nil, fmt.Errorf("memcafw: expected hello, got %q", env.Type)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := &Backend{
		cfg:       cfg,
		conn:      c,
		commander: commander,
		feHello:   *env.Hello,
		lastSent:  cfg.Initial,
		ctx:       ctx,
		cancel:    cancel,
	}
	return b, nil
}

// FEInfo returns the connected frontend's hello.
func (b *Backend) FEInfo() Hello { return b.feHello }

// Commander exposes the controller for inspection.
func (b *Backend) Commander() *control.Commander { return b.commander }

// Reports returns a copy of the burst reports received so far.
func (b *Backend) Reports() []BurstReport {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BurstReport, len(b.reports))
	copy(out, b.reports)
	return out
}

// TailRT returns the current window percentile of probe response times.
func (b *Backend) TailRT(pct float64) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.window) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(b.window))
	copy(cp, b.window)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(pct / 100 * float64(len(cp)-1))
	return cp[idx]
}

// Run drives the control loop until ctx is canceled or the FE disconnects.
// It sends the initial parameters immediately, probes continuously, and
// decides periodically.
func (b *Backend) Run(ctx context.Context) error {
	if err := b.sendParams(b.cfg.Initial); err != nil {
		return err
	}

	// Reader: collect burst reports.
	readErr := make(chan error, 1)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			env, err := b.conn.recv()
			if err != nil {
				readErr <- err
				return
			}
			if env.Type == MsgBurstReport {
				b.mu.Lock()
				b.reports = append(b.reports, *env.Report)
				b.mu.Unlock()
			}
		}
	}()

	// Prober: one probe per period.
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		ticker := time.NewTicker(b.cfg.ProbePeriod)
		defer ticker.Stop()
		for {
			select {
			case <-b.ctx.Done():
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				rt, err := b.cfg.Probe(ctx)
				if err != nil {
					b.logf("be: probe: %v", err)
					continue
				}
				b.record(rt)
			}
		}
	}()

	decide := time.NewTicker(b.cfg.DecisionEvery)
	defer decide.Stop()
	for {
		select {
		case <-ctx.Done():
			return b.shutdown()
		case err := <-readErr:
			b.cancel()
			b.wg.Wait()
			return fmt.Errorf("memcafw: FE connection lost: %w", err)
		case <-decide.C:
			obs := control.Observation{
				TailRT:          b.TailRT(b.cfg.Goal.Percentile),
				Millibottleneck: b.lastExec(),
			}
			next := b.commander.Decide(obs)
			if next != b.lastSent {
				if err := b.sendParams(next); err != nil {
					b.cancel()
					b.wg.Wait()
					return err
				}
				b.logf("be: retuned to R=%.2f L=%v I=%v (tail %v)",
					next.Intensity, next.BurstLength, next.Interval, obs.TailRT)
			}
		}
	}
}

// shutdown tells the FE to stop and releases resources.
func (b *Backend) shutdown() error {
	if err := b.conn.send(Envelope{Type: MsgStop}); err != nil {
		b.logf("be: sending stop: %v", err)
	}
	b.cancel()
	err := b.conn.close()
	b.wg.Wait()
	if err != nil {
		return fmt.Errorf("memcafw: closing FE connection: %w", err)
	}
	return nil
}

func (b *Backend) record(rt time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.window = append(b.window, rt)
	if len(b.window) > b.cfg.Window {
		b.window = b.window[len(b.window)-b.cfg.Window:]
	}
}

// lastExec returns the FE's latest execution-time report as the
// millibottleneck estimate, or 0 when none arrived yet.
func (b *Backend) lastExec() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.reports) == 0 {
		return 0
	}
	return time.Duration(b.reports[len(b.reports)-1].ExecMs) * time.Millisecond
}

func (b *Backend) sendParams(p attack.Params) error {
	msg := paramsToMsg(p.Intensity, p.BurstLength, p.Interval)
	if err := b.conn.send(Envelope{Type: MsgSetParams, Params: &msg}); err != nil {
		return err
	}
	b.lastSent = p
	return nil
}

func (b *Backend) logf(format string, args ...any) {
	if b.cfg.Logger != nil {
		b.cfg.Logger.Printf(format, args...)
	}
}
