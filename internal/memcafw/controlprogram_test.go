package memcafw

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// controlServer is a minimal stand-in for victimd's capacity endpoint.
func controlServer(t *testing.T) (*httptest.Server, *atomic.Value) {
	t.Helper()
	var current atomic.Value
	current.Store(1.0)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m, err := strconv.ParseFloat(r.URL.Query().Get("multiplier"), 64)
		if err != nil || m <= 0 || m > 1 {
			http.Error(w, "bad multiplier", http.StatusBadRequest)
			return
		}
		current.Store(m)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)
	return srv, &current
}

func TestNewControlProgramValidation(t *testing.T) {
	if _, err := NewControlProgram("", 0.1); err == nil {
		t.Error("empty URL accepted")
	}
	if _, err := NewControlProgram("http://x/", 0); err == nil {
		t.Error("zero D accepted")
	}
	if _, err := NewControlProgram("http://x/", 1); err == nil {
		t.Error("D=1 accepted")
	}
}

func TestControlProgramDegradesAndRestores(t *testing.T) {
	srv, current := controlServer(t)
	p, err := NewControlProgram(srv.URL, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "capacity-control" {
		t.Errorf("Name = %q", p.Name())
	}

	done := make(chan ExecResult, 1)
	go func() {
		res, err := p.Execute(context.Background(), 1, 100*time.Millisecond)
		if err != nil {
			t.Errorf("Execute: %v", err)
		}
		done <- res
	}()
	// Mid-burst the multiplier must be degraded.
	time.Sleep(30 * time.Millisecond)
	if got := current.Load().(float64); got < 0.049 || got > 0.051 {
		t.Errorf("mid-burst multiplier = %v, want ~0.05", got)
	}
	res := <-done
	if res.Elapsed < 100*time.Millisecond {
		t.Errorf("elapsed %v below burst length", res.Elapsed)
	}
	// After the burst capacity must be restored.
	deadline := time.Now().Add(time.Second)
	for current.Load().(float64) != 1.0 {
		if time.Now().After(deadline) {
			t.Fatalf("capacity never restored: %v", current.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestControlProgramIntensityInterpolates(t *testing.T) {
	srv, current := controlServer(t)
	p, err := NewControlProgram(srv.URL, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.Execute(context.Background(), 0.5, 60*time.Millisecond); err != nil {
			t.Errorf("Execute: %v", err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	// d = 1 - 0.5*(1-0.2) = 0.6.
	if got := current.Load().(float64); got < 0.59 || got > 0.61 {
		t.Errorf("interpolated multiplier = %v, want 0.6", got)
	}
	<-done
}

func TestControlProgramRestoresOnCancel(t *testing.T) {
	srv, current := controlServer(t)
	p, err := NewControlProgram(srv.URL, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.Execute(ctx, 1, time.Hour)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Error("canceled execute returned no error")
	}
	deadline := time.Now().Add(time.Second)
	for current.Load().(float64) != 1.0 {
		if time.Now().After(deadline) {
			t.Fatal("interference outlived cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestControlProgramBadEndpoint(t *testing.T) {
	p, err := NewControlProgram("http://127.0.0.1:1/control", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background(), 1, 10*time.Millisecond); err == nil {
		t.Error("dead endpoint accepted")
	}
	if _, err := p.Execute(context.Background(), 0, 10*time.Millisecond); err == nil {
		t.Error("zero intensity accepted")
	}
	if _, err := p.Execute(context.Background(), 1, 0); err == nil {
		t.Error("zero length accepted")
	}
}
