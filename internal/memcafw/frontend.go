package memcafw

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"
)

// FrontendConfig parameterizes a MemCA-FE daemon.
type FrontendConfig struct {
	// ID names this FE in its hello message.
	ID string
	// Listen is the TCP address to serve on (e.g. "127.0.0.1:7070";
	// ":0" picks a free port).
	Listen string
	// Program is the attack program to execute per burst.
	Program AttackProgram
	// Initial are the parameters used until the BE retunes them.
	Initial ParamsMsg
	// Logger receives operational messages; nil disables logging.
	Logger *log.Logger
}

// Frontend is the MemCA-FE daemon: it accepts one BE connection, executes
// the attack program in ON-OFF bursts, applies parameter updates, and
// streams per-burst reports back.
type Frontend struct {
	cfg      FrontendConfig
	listener net.Listener

	mu      sync.Mutex
	params  ParamsMsg
	running bool
	bursts  int

	ctx    context.Context
	cancel context.CancelFunc
}

// NewFrontend validates the configuration and binds the listener.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("memcafw: FE ID must not be empty")
	}
	if cfg.Program == nil {
		return nil, fmt.Errorf("memcafw: FE needs an attack program")
	}
	if err := (Envelope{Type: MsgSetParams, Params: &cfg.Initial}).Validate(); err != nil {
		return nil, fmt.Errorf("memcafw: initial params: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("memcafw: listen on %s: %w", cfg.Listen, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Frontend{
		cfg:      cfg,
		listener: ln,
		params:   cfg.Initial,
		ctx:      ctx,
		cancel:   cancel,
	}, nil
}

// Addr returns the bound listen address.
func (f *Frontend) Addr() string { return f.listener.Addr().String() }

// Bursts returns how many bursts have executed.
func (f *Frontend) Bursts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bursts
}

// Params returns the parameters currently in force.
func (f *Frontend) Params() ParamsMsg {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.params
}

// Serve accepts BE connections until Close. Each connection gets a fresh
// attack loop; only one connection is served at a time (the paper's
// topology has exactly one BE).
func (f *Frontend) Serve() error {
	for {
		raw, err := f.listener.Accept()
		if err != nil {
			if f.ctx.Err() != nil {
				return nil // closed
			}
			return fmt.Errorf("memcafw: accept: %w", err)
		}
		f.handle(newConn(raw))
	}
}

// Close shuts the FE down: it cancels the active session (whose handler
// waits for its own goroutines before returning to Serve) and unblocks
// Accept.
func (f *Frontend) Close() error {
	f.cancel()
	return f.listener.Close()
}

func (f *Frontend) logf(format string, args ...any) {
	if f.cfg.Logger != nil {
		f.cfg.Logger.Printf(format, args...)
	}
}

// handle runs one BE session: hello, then a writer-side attack loop and a
// reader-side control loop until either ends.
func (f *Frontend) handle(c *conn) {
	defer func() {
		// The session watchdog may have closed the connection already;
		// a double close is expected on every shutdown path.
		if err := c.close(); err != nil && f.ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
			f.logf("fe: closing connection: %v", err)
		}
	}()
	if err := c.send(Envelope{Type: MsgHello, Hello: &Hello{FEID: f.cfg.ID, Program: f.cfg.Program.Name()}}); err != nil {
		f.logf("fe: hello: %v", err)
		return
	}
	// Defer order matters: on return the session is canceled first, then
	// the session goroutines are awaited, then the connection closes.
	var wg sync.WaitGroup
	defer wg.Wait()
	sessionCtx, stopSession := context.WithCancel(f.ctx)
	defer stopSession()
	// Unblock the reader when the session (or the whole FE) shuts down:
	// closing the raw connection is the only way out of a blocked recv.
	stopWatch := context.AfterFunc(sessionCtx, func() { _ = c.raw.Close() })
	defer stopWatch()

	f.mu.Lock()
	f.running = true
	f.mu.Unlock()

	reports := make(chan BurstReport)
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.attackLoop(sessionCtx, reports)
		close(reports)
	}()

	// Writer: forward burst reports to the BE.
	writeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := range reports {
			rep := rep
			if err := c.send(Envelope{Type: MsgBurstReport, Report: &rep}); err != nil {
				writeErr <- err
				return
			}
		}
		writeErr <- nil
	}()

	// Reader: apply control messages until the BE disconnects.
	for {
		env, err := c.recv()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				f.logf("fe: session ended: %v", err)
			}
			stopSession()
			<-writeErr
			return
		}
		switch env.Type {
		case MsgSetParams:
			f.mu.Lock()
			f.params = *env.Params
			f.mu.Unlock()
			f.logf("fe: params now R=%.2f L=%dms I=%dms", env.Params.Intensity, env.Params.BurstMs, env.Params.IntervalMs)
		case MsgStop:
			f.logf("fe: stop requested")
			stopSession()
			<-writeErr
			return
		default:
			f.logf("fe: ignoring unexpected %q", env.Type)
		}
	}
}

// attackLoop fires bursts every I for L at intensity R until ctx ends.
func (f *Frontend) attackLoop(ctx context.Context, reports chan<- BurstReport) {
	for {
		f.mu.Lock()
		p := f.params
		f.mu.Unlock()

		cycleStart := time.Now()
		res, err := f.cfg.Program.Execute(ctx, p.Intensity, time.Duration(p.BurstMs)*time.Millisecond)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			f.logf("fe: attack program: %v", err)
			return
		}
		f.mu.Lock()
		f.bursts++
		n := f.bursts
		f.mu.Unlock()

		rep := BurstReport{Burst: n, ExecMs: res.Elapsed.Milliseconds(), ResourceShare: res.ResourceShare}
		select {
		case reports <- rep:
		case <-ctx.Done():
			return
		}

		rest := time.Duration(p.IntervalMs)*time.Millisecond - time.Since(cycleStart)
		if rest > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(rest):
			}
		}
	}
}
