package memcafw

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// ControlProgram is an attack program that drives a victimd-style capacity
// control endpoint instead of generating real memory contention: during
// each burst it degrades the target tier to the given degradation index
// and restores full capacity afterwards. It exists for live end-to-end
// demos on machines where actual co-located memory contention is
// unavailable or undesirable — the timing behaviour (ON-OFF bursts, the
// execution-time report) is identical to the real attack programs.
type ControlProgram struct {
	// ControlURL is the tier's control endpoint (".../control/capacity").
	ControlURL string
	// D is the degradation index applied during bursts.
	D      float64
	client *http.Client
}

// NewControlProgram validates and builds the program.
func NewControlProgram(controlURL string, d float64) (*ControlProgram, error) {
	if controlURL == "" {
		return nil, fmt.Errorf("memcafw: control URL must not be empty")
	}
	if d <= 0 || d >= 1 {
		return nil, fmt.Errorf("memcafw: degradation index must be in (0,1), got %v", d)
	}
	return &ControlProgram{
		ControlURL: controlURL,
		D:          d,
		client:     &http.Client{Timeout: 2 * time.Second},
	}, nil
}

// Name implements AttackProgram.
func (p *ControlProgram) Name() string { return "capacity-control" }

// Execute implements AttackProgram: degrade, hold for the burst length,
// restore. Intensity scales the degradation depth (intensity 1 applies D
// fully; lower intensities interpolate toward no degradation).
func (p *ControlProgram) Execute(ctx context.Context, intensity float64, length time.Duration) (ExecResult, error) {
	if intensity <= 0 || intensity > 1 {
		return ExecResult{}, fmt.Errorf("memcafw: intensity %v out of (0,1]", intensity)
	}
	if length <= 0 {
		return ExecResult{}, fmt.Errorf("memcafw: burst length must be positive, got %v", length)
	}
	d := 1 - intensity*(1-p.D)
	start := time.Now()
	if err := p.set(ctx, d); err != nil {
		return ExecResult{}, err
	}
	// Always restore, even on cancellation: interference must not
	// outlive the burst.
	defer func() {
		restoreCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = p.set(restoreCtx, 1)
	}()
	select {
	case <-ctx.Done():
		return ExecResult{}, ctx.Err()
	case <-time.After(length):
	}
	return ExecResult{Elapsed: time.Since(start), ResourceShare: intensity}, nil
}

func (p *ControlProgram) set(ctx context.Context, m float64) error {
	url := fmt.Sprintf("%s?multiplier=%g", p.ControlURL, m)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("memcafw: building control request: %w", err)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return fmt.Errorf("memcafw: control endpoint: %w", err)
	}
	if err := resp.Body.Close(); err != nil {
		return fmt.Errorf("memcafw: closing control response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("memcafw: control endpoint returned %d", resp.StatusCode)
	}
	return nil
}

// Verify interface compliance.
var _ AttackProgram = (*ControlProgram)(nil)
