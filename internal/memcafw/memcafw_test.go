package memcafw

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"memca/internal/attack"
	"memca/internal/control"
)

func fastParams() ParamsMsg {
	return ParamsMsg{Intensity: 1, BurstMs: 5, IntervalMs: 20}
}

func TestEnvelopeValidate(t *testing.T) {
	good := []Envelope{
		{Type: MsgHello, Hello: &Hello{FEID: "fe1", Program: "simulated"}},
		{Type: MsgSetParams, Params: &ParamsMsg{Intensity: 0.5, BurstMs: 100, IntervalMs: 2000}},
		{Type: MsgBurstReport, Report: &BurstReport{Burst: 1, ExecMs: 100}},
		{Type: MsgStop},
	}
	for i, e := range good {
		if err := e.Validate(); err != nil {
			t.Errorf("valid envelope %d rejected: %v", i, err)
		}
	}
	bad := []Envelope{
		{Type: MsgHello},
		{Type: MsgSetParams},
		{Type: MsgSetParams, Params: &ParamsMsg{Intensity: 0, BurstMs: 100, IntervalMs: 2000}},
		{Type: MsgSetParams, Params: &ParamsMsg{Intensity: 1.5, BurstMs: 100, IntervalMs: 2000}},
		{Type: MsgSetParams, Params: &ParamsMsg{Intensity: 0.5, BurstMs: 0, IntervalMs: 2000}},
		{Type: MsgSetParams, Params: &ParamsMsg{Intensity: 0.5, BurstMs: 3000, IntervalMs: 2000}},
		{Type: MsgBurstReport},
		{Type: "bogus"},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("bad envelope %d accepted", i)
		}
	}
}

func TestSimulatedProgram(t *testing.T) {
	p := SimulatedProgram{}
	res, err := p.Execute(context.Background(), 0.7, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed < 20*time.Millisecond || res.Elapsed > 100*time.Millisecond {
		t.Errorf("elapsed %v, want ~20ms", res.Elapsed)
	}
	if res.ResourceShare != 0.7 {
		t.Errorf("share %v, want 0.7", res.ResourceShare)
	}
	if _, err := p.Execute(context.Background(), 0, time.Millisecond); err == nil {
		t.Error("zero intensity accepted")
	}
	if _, err := p.Execute(context.Background(), 1, 0); err == nil {
		t.Error("zero length accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Execute(ctx, 1, time.Hour); err == nil {
		t.Error("canceled context not honored")
	}
}

func TestStreamProgramProducesLoad(t *testing.T) {
	p, err := NewStreamProgram(4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(context.Background(), 1, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBytes() == 0 {
		t.Error("no memory traffic generated")
	}
	if res.ResourceShare <= 0 || res.ResourceShare > 1 {
		t.Errorf("resource share %v out of (0,1]", res.ResourceShare)
	}
	if res.Elapsed < 30*time.Millisecond {
		t.Errorf("elapsed %v below burst length", res.Elapsed)
	}
}

func TestStreamProgramValidation(t *testing.T) {
	if _, err := NewStreamProgram(0, 100); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewStreamProgram(1, 0); err == nil {
		t.Error("zero peak accepted")
	}
}

func TestFrontendValidation(t *testing.T) {
	if _, err := NewFrontend(FrontendConfig{Listen: "127.0.0.1:0", Program: SimulatedProgram{}, Initial: fastParams()}); err == nil {
		t.Error("empty ID accepted")
	}
	if _, err := NewFrontend(FrontendConfig{ID: "fe", Listen: "127.0.0.1:0", Initial: fastParams()}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := NewFrontend(FrontendConfig{ID: "fe", Listen: "127.0.0.1:0", Program: SimulatedProgram{}}); err == nil {
		t.Error("zero params accepted")
	}
}

// startFE builds and serves a frontend for tests, returning a cleanup.
func startFE(t *testing.T) *Frontend {
	t.Helper()
	fe, err := NewFrontend(FrontendConfig{
		ID:      "fe-test",
		Listen:  "127.0.0.1:0",
		Program: SimulatedProgram{},
		Initial: fastParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := fe.Serve(); err != nil {
			t.Errorf("FE serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		if err := fe.Close(); err != nil && !errors.Is(err, context.Canceled) {
			t.Logf("FE close: %v", err)
		}
		wg.Wait()
	})
	return fe
}

func TestFEBEEndToEnd(t *testing.T) {
	fe := startFE(t)

	// Synthetic target: tail RT grows with attack duty, read from the
	// FE's current parameters — a closed loop over real TCP.
	probe := func(ctx context.Context) (time.Duration, error) {
		p := fe.Params()
		duty := float64(p.BurstMs) / float64(p.IntervalMs) * p.Intensity
		return time.Duration(4 * duty * float64(time.Second) / 4), nil // up to 1s at duty 1
	}
	be, err := NewBackend(BackendConfig{
		FEAddr:      fe.Addr(),
		Probe:       probe,
		ProbePeriod: 5 * time.Millisecond,
		Window:      20,
		Goal:        control.Goal{Percentile: 95, TargetRT: 200 * time.Millisecond, MaxMillibottleneck: time.Second},
		Bounds: control.Bounds{
			MinBurst: 2 * time.Millisecond, MaxBurst: 18 * time.Millisecond,
			MinInterval: 20 * time.Millisecond, MaxInterval: 100 * time.Millisecond,
			MinIntensity: 0.1,
		},
		Initial:       attack.Params{Intensity: 0.5, BurstLength: 5 * time.Millisecond, Interval: 20 * time.Millisecond},
		DecisionEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if be.FEInfo().FEID != "fe-test" || be.FEInfo().Program != "simulated" {
		t.Errorf("hello = %+v", be.FEInfo())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := be.Run(ctx); err != nil {
		t.Fatalf("BE run: %v", err)
	}

	if fe.Bursts() < 10 {
		t.Errorf("FE executed only %d bursts", fe.Bursts())
	}
	if len(be.Reports()) == 0 {
		t.Error("BE received no burst reports")
	}
	if be.Commander().Decisions() < 5 {
		t.Errorf("only %d decisions", be.Commander().Decisions())
	}
	// Initial duty = 0.125 → tail 125ms < 200ms goal: the commander must
	// have escalated and the FE must have received the retune.
	final := fe.Params()
	initialDuty := 0.5 * 5.0 / 20.0
	finalDuty := final.Intensity * float64(final.BurstMs) / float64(final.IntervalMs)
	if finalDuty <= initialDuty {
		t.Errorf("attack pressure did not grow over TCP: %v -> %v", initialDuty, finalDuty)
	}
}

func TestBackendValidation(t *testing.T) {
	fe := startFE(t)
	ok := BackendConfig{
		FEAddr:  fe.Addr(),
		Probe:   func(context.Context) (time.Duration, error) { return 0, nil },
		Goal:    control.Goal{Percentile: 95, TargetRT: time.Second, MaxMillibottleneck: time.Second},
		Bounds:  control.DefaultBounds(),
		Initial: attack.Params{Intensity: 1, BurstLength: 100 * time.Millisecond, Interval: 2 * time.Second},
	}
	bad := ok
	bad.Probe = nil
	if _, err := NewBackend(bad); err == nil {
		t.Error("nil probe accepted")
	}
	bad = ok
	bad.Goal = control.Goal{}
	if _, err := NewBackend(bad); err == nil {
		t.Error("zero goal accepted")
	}
	bad = ok
	bad.FEAddr = "127.0.0.1:1" // nothing listens there
	if _, err := NewBackend(bad); err == nil {
		t.Error("dead FE address accepted")
	}
	b, err := NewBackend(ok)
	if err != nil {
		t.Fatalf("valid backend rejected: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := b.Run(ctx); err != nil {
		t.Errorf("short run failed: %v", err)
	}
}

func TestFELostConnectionSurfaces(t *testing.T) {
	fe := startFE(t)
	be, err := NewBackend(BackendConfig{
		FEAddr:  fe.Addr(),
		Probe:   func(context.Context) (time.Duration, error) { return time.Millisecond, nil },
		Goal:    control.Goal{Percentile: 95, TargetRT: time.Second, MaxMillibottleneck: time.Second},
		Bounds:  control.DefaultBounds(),
		Initial: attack.Params{Intensity: 1, BurstLength: 100 * time.Millisecond, Interval: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the FE shortly after the BE starts.
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = fe.Close()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := be.Run(ctx); err == nil {
		t.Error("lost FE connection not reported")
	}
}

func TestHTTPProbeAgainstLocalServer(t *testing.T) {
	// Serve a tiny delayed endpoint and verify the probe times it.
	srv := newSlowServer(t, 20*time.Millisecond)
	probe := HTTPProbe(srv, time.Second)
	rt, err := probe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rt < 20*time.Millisecond || rt > 500*time.Millisecond {
		t.Errorf("probe RT %v, want >= 20ms", rt)
	}
	// Timeout path: the probe reports the timeout as the latency.
	slow := newSlowServer(t, 300*time.Millisecond)
	probe = HTTPProbe(slow, 50*time.Millisecond)
	rt, err = probe(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rt != 50*time.Millisecond {
		t.Errorf("timed-out probe RT %v, want 50ms", rt)
	}
}
