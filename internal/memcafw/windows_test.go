package memcafw

import (
	"context"
	"testing"
	"time"

	"memca/internal/telemetry/live"
)

// TestBurstWindowsAlignment builds a backend with hand-placed samples and
// reports (no sockets) and checks each burst window cuts exactly the
// probe samples that fall inside the padded burst span.
func TestBurstWindowsAlignment(t *testing.T) {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	at := func(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }
	b := &Backend{cfg: BackendConfig{Window: 3}}
	b.samples = []ProbeSample{
		{At: at(0), RT: 5 * time.Millisecond},
		{At: at(100), RT: 80 * time.Millisecond}, // inside burst 1
		{At: at(150), RT: 120 * time.Millisecond},
		{At: at(400), RT: 6 * time.Millisecond},
		{At: at(900), RT: 200 * time.Millisecond}, // inside burst 2's drain pad
	}
	// Burst 1 ran [50ms, 150ms] (exec 100ms, received at its end);
	// burst 2 ran [800ms, 850ms].
	b.reports = []TimedReport{
		{BurstReport: BurstReport{Burst: 1, ExecMs: 100}, At: at(150)},
		{BurstReport: BurstReport{Burst: 2, ExecMs: 50}, At: at(850)},
	}

	wins := b.BurstWindows(60 * time.Millisecond)
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	// Burst 1 window: [-10ms, 210ms] → samples at 0, 100, 150.
	if got := len(wins[0].Samples); got != 3 {
		t.Errorf("burst 1 captured %d samples, want 3: %+v", got, wins[0].Samples)
	}
	if wins[0].MaxRT() != 120*time.Millisecond {
		t.Errorf("burst 1 max RT %v, want 120ms", wins[0].MaxRT())
	}
	// Burst 2 window: [740ms, 910ms] → only the drain-phase spike at 900.
	if got := len(wins[1].Samples); got != 1 {
		t.Fatalf("burst 2 captured %d samples, want 1: %+v", got, wins[1].Samples)
	}
	if wins[1].Samples[0].RT != 200*time.Millisecond {
		t.Errorf("burst 2 sample RT %v, want the 200ms drain spike", wins[1].Samples[0].RT)
	}
	if wins[1].Start != at(740) || wins[1].End != at(910) {
		t.Errorf("burst 2 window [%v, %v], want [740ms, 910ms]", wins[1].Start, wins[1].End)
	}
}

// TestTailRTUsesRecentWindow: the percentile must read only the last
// cfg.Window samples even though the full history is retained.
func TestTailRTUsesRecentWindow(t *testing.T) {
	b := &Backend{cfg: BackendConfig{Window: 2}}
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	for _, rt := range []time.Duration{time.Second, time.Millisecond, 2 * time.Millisecond} {
		b.samples = append(b.samples, ProbeSample{At: now, RT: rt})
	}
	if got := b.TailRT(100); got != 2*time.Millisecond {
		t.Errorf("TailRT(100) = %v, want 2ms (1s sample aged out of the window)", got)
	}
	if got := len(b.samples); got != 3 {
		t.Errorf("history truncated to %d, want full 3", got)
	}
}

// TestTracedHTTPProbe checks the probe participates in the trace: a
// served probe closes its trace complete, a timed-out one abandoned, and
// both report a latency.
func TestTracedHTTPProbe(t *testing.T) {
	col, err := live.New(live.Config{Events: 256})
	if err != nil {
		t.Fatal(err)
	}
	fast := newSlowServer(t, 5*time.Millisecond)
	probe := TracedHTTPProbe(fast, time.Second, col)
	if rt, err := probe(context.Background()); err != nil || rt < 5*time.Millisecond {
		t.Fatalf("traced probe rt=%v err=%v", rt, err)
	}
	slow := newSlowServer(t, 300*time.Millisecond)
	probe = TracedHTTPProbe(slow, 30*time.Millisecond, col)
	if rt, err := probe(context.Background()); err != nil || rt != 30*time.Millisecond {
		t.Fatalf("timed-out traced probe rt=%v err=%v, want 30ms", rt, err)
	}

	rep := col.Report()
	if rep.Open != 0 {
		t.Errorf("open traces = %d, want 0 (every probe closes its trace)", rep.Open)
	}
	if len(rep.Attributions) != 2 {
		t.Fatalf("attributions = %d, want 2", len(rep.Attributions))
	}
	completed, abandoned := 0, 0
	for _, a := range rep.Attributions {
		if a.Abandoned {
			abandoned++
		} else {
			completed++
		}
	}
	if completed != 1 || abandoned != 1 {
		t.Errorf("completed/abandoned = %d/%d, want 1/1", completed, abandoned)
	}
}
