package memcafw

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// ExecResult is what an attack program measures about its own burst.
type ExecResult struct {
	// Elapsed is the wall-clock execution time — the FE's conservative
	// millibottleneck estimate.
	Elapsed time.Duration
	// ResourceShare is the consumed fraction of the host's profiled peak
	// resource (memory bandwidth).
	ResourceShare float64
}

// AttackProgram is one burst's worth of interference. Implementations must
// return promptly once the burst length elapses or ctx is canceled.
type AttackProgram interface {
	// Execute runs one burst at the given intensity for the given
	// length.
	Execute(ctx context.Context, intensity float64, length time.Duration) (ExecResult, error)
	// Name labels the program in the hello message.
	Name() string
}

// StreamProgram is a real bus-saturation load: it sweeps writes through a
// buffer sized past any LLC so every access goes to memory, mimicking
// RAMspeed. On a real co-located deployment this is the actual attack; in
// tests it doubles as a harmless CPU/memory load.
type StreamProgram struct {
	buf []byte
	// ops counts bytes touched, for the resource-share estimate.
	ops atomic.Int64
	// peakBytesPerSec is the calibrated single-core streaming peak used
	// to normalize ResourceShare.
	peakBytesPerSec float64
}

// NewStreamProgram allocates the streaming buffer. sizeMB should exceed
// the LLC (paper host: 15 MB per package); peakMBps normalizes the
// reported resource share.
func NewStreamProgram(sizeMB int, peakMBps float64) (*StreamProgram, error) {
	if sizeMB <= 0 {
		return nil, fmt.Errorf("memcafw: buffer size must be positive, got %d MB", sizeMB)
	}
	if peakMBps <= 0 {
		return nil, fmt.Errorf("memcafw: peak bandwidth must be positive, got %v", peakMBps)
	}
	return &StreamProgram{
		buf:             make([]byte, sizeMB<<20),
		peakBytesPerSec: peakMBps * 1e6,
	}, nil
}

// Name implements AttackProgram.
func (p *StreamProgram) Name() string { return "stream" }

// Execute implements AttackProgram: stream through the buffer until the
// burst ends. Intensity modulates the duty cycle inside the burst
// (work/pause slicing), matching how a lock program modulates lock duty.
func (p *StreamProgram) Execute(ctx context.Context, intensity float64, length time.Duration) (ExecResult, error) {
	if intensity <= 0 || intensity > 1 {
		return ExecResult{}, fmt.Errorf("memcafw: intensity %v out of (0,1]", intensity)
	}
	if length <= 0 {
		return ExecResult{}, fmt.Errorf("memcafw: burst length must be positive, got %v", length)
	}
	start := time.Now()
	deadline := start.Add(length)
	var touched int64
	const stride = 64 // one cache line
	slice := 2 * time.Millisecond
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return ExecResult{}, err
		}
		// Work for intensity*slice, pause for the rest.
		workUntil := time.Now().Add(time.Duration(float64(slice) * intensity))
		for time.Now().Before(workUntil) {
			for i := 0; i < len(p.buf); i += stride {
				p.buf[i]++
				touched += stride
			}
			if !time.Now().Before(deadline) {
				break
			}
		}
		if pause := time.Duration(float64(slice) * (1 - intensity)); pause > 0 {
			select {
			case <-ctx.Done():
				return ExecResult{}, ctx.Err()
			case <-time.After(pause):
			}
		}
	}
	elapsed := time.Since(start)
	p.ops.Add(touched)
	share := float64(touched) / elapsed.Seconds() / p.peakBytesPerSec
	if share > 1 {
		share = 1
	}
	return ExecResult{Elapsed: elapsed, ResourceShare: share}, nil
}

// TotalBytes returns the cumulative bytes streamed (for tests and
// reporting).
func (p *StreamProgram) TotalBytes() int64 { return p.ops.Load() }

// SimulatedProgram is a no-load stand-in for tests and demos: it sleeps
// for the burst length and reports the intensity as the resource share.
type SimulatedProgram struct{}

// Name implements AttackProgram.
func (SimulatedProgram) Name() string { return "simulated" }

// Execute implements AttackProgram.
func (SimulatedProgram) Execute(ctx context.Context, intensity float64, length time.Duration) (ExecResult, error) {
	if intensity <= 0 || intensity > 1 {
		return ExecResult{}, fmt.Errorf("memcafw: intensity %v out of (0,1]", intensity)
	}
	if length <= 0 {
		return ExecResult{}, fmt.Errorf("memcafw: burst length must be positive, got %v", length)
	}
	start := time.Now()
	select {
	case <-ctx.Done():
		return ExecResult{}, ctx.Err()
	case <-time.After(length):
	}
	return ExecResult{Elapsed: time.Since(start), ResourceShare: intensity}, nil
}

// Verify interface compliance.
var (
	_ AttackProgram = (*StreamProgram)(nil)
	_ AttackProgram = SimulatedProgram{}
)
