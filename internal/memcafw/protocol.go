// Package memcafw implements the MemCA control framework of Section IV-C
// as real networked components (Figure 8): MemCA-FE, a daemon running in
// the co-located adversary VM that executes the attack program in ON-OFF
// bursts and reports each burst's resource consumption; and MemCA-BE, the
// attacker-side controller that probes the target web system's tail
// response time and retunes the FE's (R, L, I) parameters through the
// Kalman-filtered commander.
//
// FE and BE speak newline-delimited JSON over TCP, so they can run as
// separate processes (cmd/memca-fe and cmd/memca-be) exactly as the paper
// deploys them.
package memcafw

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// MsgType discriminates protocol envelopes.
type MsgType string

// Protocol message types.
const (
	// MsgHello is sent by the FE on connection accept.
	MsgHello MsgType = "hello"
	// MsgSetParams carries new attack parameters from BE to FE.
	MsgSetParams MsgType = "set_params"
	// MsgBurstReport carries one burst's execution report from FE to BE.
	MsgBurstReport MsgType = "burst_report"
	// MsgStop tells the FE to cease attacking (it keeps listening).
	MsgStop MsgType = "stop"
)

// Hello announces an FE to its BE.
type Hello struct {
	// FEID identifies the frontend instance.
	FEID string `json:"fe_id"`
	// Program names the attack program in use.
	Program string `json:"program"`
}

// ParamsMsg is the wire form of attack.Params.
type ParamsMsg struct {
	// Intensity is R in (0, 1].
	Intensity float64 `json:"intensity"`
	// BurstMs is L in milliseconds.
	BurstMs int64 `json:"burst_ms"`
	// IntervalMs is I in milliseconds.
	IntervalMs int64 `json:"interval_ms"`
}

// BurstReport is the FE's per-burst telemetry: the attack program's
// execution time is the FE's conservative estimate of the millibottleneck
// length (Section IV-C), and the consumed share of the profiled resource
// approximates R.
type BurstReport struct {
	// Burst is the 1-based burst counter.
	Burst int `json:"burst"`
	// ExecMs is the measured execution time of the attack program.
	ExecMs int64 `json:"exec_ms"`
	// ResourceShare is the fraction of the host's profiled peak the
	// program consumed during the burst.
	ResourceShare float64 `json:"resource_share"`
}

// Envelope is the single wire message type.
type Envelope struct {
	Type   MsgType      `json:"type"`
	Hello  *Hello       `json:"hello,omitempty"`
	Params *ParamsMsg   `json:"params,omitempty"`
	Report *BurstReport `json:"report,omitempty"`
}

// Validate reports the first envelope error, or nil.
func (e Envelope) Validate() error {
	switch e.Type {
	case MsgHello:
		if e.Hello == nil {
			return fmt.Errorf("memcafw: hello envelope missing body")
		}
	case MsgSetParams:
		if e.Params == nil {
			return fmt.Errorf("memcafw: set_params envelope missing body")
		}
		if e.Params.Intensity <= 0 || e.Params.Intensity > 1 {
			return fmt.Errorf("memcafw: intensity %v out of (0,1]", e.Params.Intensity)
		}
		if e.Params.BurstMs <= 0 || e.Params.IntervalMs <= 0 || e.Params.BurstMs > e.Params.IntervalMs {
			return fmt.Errorf("memcafw: invalid burst/interval %d/%d ms", e.Params.BurstMs, e.Params.IntervalMs)
		}
	case MsgBurstReport:
		if e.Report == nil {
			return fmt.Errorf("memcafw: burst_report envelope missing body")
		}
	case MsgStop:
		// No body.
	default:
		return fmt.Errorf("memcafw: unknown message type %q", e.Type)
	}
	return nil
}

// conn wraps a TCP connection with line-oriented JSON framing.
type conn struct {
	raw net.Conn
	r   *bufio.Scanner
	w   *bufio.Writer
}

func newConn(raw net.Conn) *conn {
	sc := bufio.NewScanner(raw)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &conn{raw: raw, r: sc, w: bufio.NewWriter(raw)}
}

// send writes one envelope and flushes.
func (c *conn) send(e Envelope) error {
	if err := e.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("memcafw: marshal: %w", err)
	}
	if _, err := c.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("memcafw: write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("memcafw: flush: %w", err)
	}
	return nil
}

// recv reads one envelope, blocking until a line arrives or the peer
// closes.
func (c *conn) recv() (Envelope, error) {
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return Envelope{}, fmt.Errorf("memcafw: read: %w", err)
		}
		return Envelope{}, fmt.Errorf("memcafw: connection closed")
	}
	var e Envelope
	if err := json.Unmarshal(c.r.Bytes(), &e); err != nil {
		return Envelope{}, fmt.Errorf("memcafw: unmarshal: %w", err)
	}
	if err := e.Validate(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

func (c *conn) close() error { return c.raw.Close() }

// paramsToMsg converts durations to the wire form.
func paramsToMsg(intensity float64, burst, interval time.Duration) ParamsMsg {
	return ParamsMsg{
		Intensity:  intensity,
		BurstMs:    burst.Milliseconds(),
		IntervalMs: interval.Milliseconds(),
	}
}
