package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

// spin burns a rand-chosen number of scheduling points so that job
// completion order varies between runs without touching the wall clock:
// under `go test -race` this shakes out ordering assumptions in the
// dispatch/collect paths.
func spin(rng *rand.Rand) int {
	acc := 0
	for i, n := 0, rng.Intn(2000); i < n; i++ {
		acc += i
		if i%64 == 0 {
			runtime.Gosched()
		}
	}
	return acc
}

// TestRaceManySmallJobs floods the pool with far more jobs than workers,
// each with injected-rand latency, and checks ordered delivery plus a
// consistent progress count. Run under -race via `make race`.
func TestRaceManySmallJobs(t *testing.T) {
	const jobs = 500
	for _, workers := range []int{2, 4, 16} {
		var progressCalls atomic.Int64
		opts := Options{Workers: workers, Progress: func(done, total int) {
			progressCalls.Add(1)
			if done < 1 || done > total || total != jobs {
				t.Errorf("progress (%d, %d) out of range", done, total)
			}
		}}
		res, err := Run(context.Background(), opts, jobs, func(_ context.Context, i int) (int, error) {
			rng := rand.New(rand.NewSource(DeriveSeed(7, i)))
			spin(rng)
			return i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range res {
			if v != i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
		if progressCalls.Load() != jobs {
			t.Errorf("workers=%d: %d progress calls, want %d", workers, progressCalls.Load(), jobs)
		}
	}
}

// TestRaceCancellationMidSweep cancels the sweep from inside a job at a
// rand-chosen point while other workers are mid-job: no result slice
// corruption, no deadlock, and the context error is surfaced.
func TestRaceCancellationMidSweep(t *testing.T) {
	for round := 0; round < 20; round++ {
		rng := rand.New(rand.NewSource(DeriveSeed(99, round)))
		cancelAt := rng.Intn(200)
		ctx, cancel := context.WithCancel(context.Background())
		_, err := Run(ctx, Options{Workers: 8}, 200, func(ctx context.Context, i int) (int, error) {
			jobRng := rand.New(rand.NewSource(DeriveSeed(int64(round), i)))
			spin(jobRng)
			if i == cancelAt {
				cancel()
			}
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: err = %v, want context.Canceled", round, err)
		}
	}
}

// TestRaceErrorsUnderContention makes a rand-chosen subset of jobs fail
// concurrently and checks the lowest-indexed failure is reported while
// the pool shuts down cleanly.
func TestRaceErrorsUnderContention(t *testing.T) {
	for round := 0; round < 10; round++ {
		rng := rand.New(rand.NewSource(DeriveSeed(123, round)))
		failFrom := 1 + rng.Intn(50)
		_, err := Run(context.Background(), Options{Workers: 8}, 300, func(_ context.Context, i int) (int, error) {
			jobRng := rand.New(rand.NewSource(DeriveSeed(int64(round)+1000, i)))
			spin(jobRng)
			if i >= failFrom {
				return 0, fmt.Errorf("planned failure %d", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("round %d: no error surfaced", round)
		}
		// Every job below failFrom succeeds and failFrom is always
		// dispatched before any later failure, so the reported error
		// is deterministically failFrom's.
		if want := fmt.Sprintf("sweep: job %d: planned failure %d", failFrom, failFrom); err.Error() != want {
			t.Fatalf("round %d: error %q, want %q", round, err, want)
		}
	}
}
