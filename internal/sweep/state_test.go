package sweep

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// trackedState is a per-worker scratch object whose lifecycle the tests
// observe: acquire/release pairing, exclusive ownership during a job, and
// how many jobs each state served.
type trackedState struct {
	id     int
	inUse  atomic.Bool
	served int
}

// stateTracker hands out trackedStates and remembers every one, so tests
// can audit the full population after a sweep.
type stateTracker struct {
	mu       sync.Mutex
	states   []*trackedState
	released int
}

func (st *stateTracker) acquire() *trackedState {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := &trackedState{id: len(st.states)}
	st.states = append(st.states, s)
	return s
}

func (st *stateTracker) release(s *trackedState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if s == nil {
		return
	}
	st.released++
}

// audit checks the invariants every sweep must leave behind: one release
// per acquire, no state still marked in-use, at most `workers` states, and
// (when the sweep succeeded) all n jobs accounted for.
func (st *stateTracker) audit(t *testing.T, workers int, wantServed int) {
	t.Helper()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.released != len(st.states) {
		t.Errorf("acquired %d states but released %d", len(st.states), st.released)
	}
	if len(st.states) > workers {
		t.Errorf("acquired %d states for %d workers", len(st.states), workers)
	}
	served := 0
	for _, s := range st.states {
		if s.inUse.Load() {
			t.Errorf("state %d still marked in-use after sweep", s.id)
		}
		served += s.served
	}
	if wantServed >= 0 && served != wantServed {
		t.Errorf("states served %d jobs total, want %d", served, wantServed)
	}
}

// TestRunStateAcquirePerWorker pins the RunState contract that the figure
// drivers' per-worker arenas rely on: each worker acquires exactly one
// state, owns it exclusively for every job it runs, and releases it at
// worker exit.
func TestRunStateAcquirePerWorker(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		const jobs = 100
		tracker := &stateTracker{}
		res, err := RunState(context.Background(), Options{Workers: workers}, jobs,
			tracker.acquire, tracker.release,
			func(_ context.Context, s *trackedState, i int) (int, error) {
				if !s.inUse.CompareAndSwap(false, true) {
					return 0, errors.New("state shared between concurrent jobs")
				}
				rng := rand.New(rand.NewSource(DeriveSeed(3, i)))
				spin(rng)
				s.served++
				if !s.inUse.CompareAndSwap(true, false) {
					return 0, errors.New("state ownership lost mid-job")
				}
				return i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range res {
			if v != i {
				t.Fatalf("workers=%d: result[%d] = %d", workers, i, v)
			}
		}
		tracker.audit(t, workers, jobs)
	}
}

// TestRunStateReleaseOnFailure checks that a failing job still leads to
// every acquired state being released exactly once — workers that exit
// early on the recorded failure included.
func TestRunStateReleaseOnFailure(t *testing.T) {
	boom := errors.New("boom")
	tracker := &stateTracker{}
	_, err := RunState(context.Background(), Options{Workers: 4}, 64,
		tracker.acquire, tracker.release,
		func(_ context.Context, s *trackedState, i int) (int, error) {
			s.served++
			if i == 13 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	tracker.audit(t, 4, -1)
}

// TestRunStateReleaseOnCancellation cancels the caller's context mid-sweep
// and checks that the sweep reports the cancellation and still releases
// every state, so pooled resources (arenas) are never leaked by an
// interrupted run.
func TestRunStateReleaseOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tracker := &stateTracker{}
	var done atomic.Int64
	_, err := RunState(ctx, Options{Workers: 4}, 500,
		tracker.acquire, tracker.release,
		func(ctx context.Context, s *trackedState, i int) (int, error) {
			s.served++
			if done.Add(1) == 40 {
				cancel()
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			default:
				return i, nil
			}
		})
	if err == nil {
		t.Fatal("canceled sweep reported success")
	}
	tracker.audit(t, 4, -1)
}

// TestRunStateNilHooks covers the Run delegation shape: nil acquire and
// release are valid and the sweep behaves exactly like Run.
func TestRunStateNilHooks(t *testing.T) {
	res, err := RunState(context.Background(), Options{Workers: 3}, 9, nil, nil,
		func(_ context.Context, _ struct{}, i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*2 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*2)
		}
	}
}

// TestRunStateNilJobRejected mirrors Run's nil-job validation.
func TestRunStateNilJobRejected(t *testing.T) {
	if _, err := RunState[int, struct{}](context.Background(), Options{}, 4, nil, nil, nil); err == nil {
		t.Fatal("nil job accepted")
	}
}
