package sweep

import "testing"

// TestShardPartition pins the frozen plan: every job index lands in
// exactly one shard, shards own ascending disjoint index sets, and the
// union over shards is 0..jobs-1 in every plan shape — including plans
// with more shards than jobs (empty shards).
func TestShardPartition(t *testing.T) {
	for _, tc := range []struct{ jobs, shards int }{
		{0, 1}, {1, 1}, {1, 3}, {2, 3}, {7, 1}, {7, 2}, {7, 3}, {8, 4}, {8, 8}, {100, 7},
	} {
		seen := make(map[int]int)
		total := 0
		for s := 0; s < tc.shards; s++ {
			indices := ShardIndices(tc.jobs, tc.shards, s)
			if got, want := len(indices), ShardSize(tc.jobs, tc.shards, s); got != want {
				t.Errorf("jobs=%d shards=%d shard=%d: len(indices)=%d, ShardSize=%d", tc.jobs, tc.shards, s, got, want)
			}
			total += len(indices)
			prev := -1
			for _, i := range indices {
				if i <= prev {
					t.Errorf("jobs=%d shards=%d shard=%d: indices not ascending: %v", tc.jobs, tc.shards, s, indices)
				}
				prev = i
				if Shard(i, tc.shards) != s {
					t.Errorf("index %d listed under shard %d but Shard()=%d", i, s, Shard(i, tc.shards))
				}
				seen[i]++
			}
		}
		if total != tc.jobs {
			t.Errorf("jobs=%d shards=%d: shards own %d indices in total", tc.jobs, tc.shards, total)
		}
		for i := 0; i < tc.jobs; i++ {
			if seen[i] != 1 {
				t.Errorf("jobs=%d shards=%d: index %d owned by %d shards", tc.jobs, tc.shards, i, seen[i])
			}
		}
	}
}

// TestShardFrozenValues pins the exact assignment — index mod shards —
// the same way the DeriveSeed values are pinned: recorded manifests and
// shard artifacts depend on it.
func TestShardFrozenValues(t *testing.T) {
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := Shard(i, 3); got != w {
			t.Errorf("Shard(%d, 3) = %d, want %d", i, got, w)
		}
	}
}

// TestShardPanics pins that malformed plans fail loudly — they are
// manifest bugs, never data-dependent states.
func TestShardPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Shard(0, 0) },
		func() { Shard(-1, 2) },
		func() { ShardSize(4, 2, 2) },
		func() { ShardIndices(4, 2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("malformed shard plan did not panic")
				}
			}()
			f()
		}()
	}
}
