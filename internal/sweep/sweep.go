// Package sweep is the parallelism layer of the experiment pipeline: it
// fans N independent, seed-deterministic jobs out over a bounded worker
// pool and hands the results back in job-index order.
//
// The engine guarantees that a sweep's outcome is a pure function of its
// inputs, independent of the worker count and of the order in which jobs
// happen to finish:
//
//   - every job is identified by its index and must derive all of its
//     randomness from that index (typically via DeriveSeed), never from
//     shared mutable state;
//   - results are buffered and returned in job-index order, so artifact
//     writers that iterate the result slice produce byte-identical output
//     for workers = 1 and workers = N;
//   - when jobs fail, the error of the lowest-indexed failing job is
//     returned — the same error the serial path would have surfaced first.
//
// The package contains no randomness and never reads the wall clock; it
// is on the simulated side of the clock boundary (see DESIGN.md) even
// though it uses real goroutines, because the goroutines only carry
// independent single-threaded simulations.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job computes the index-th result of a sweep. Implementations must be
// pure functions of the index (plus read-only captured configuration):
// any randomness must come from a generator seeded via the index, and no
// mutable state may be shared between jobs. The context is canceled when
// another job fails or the caller cancels the sweep; long-running jobs
// may honor it, but ignoring it only delays shutdown, never corrupts
// results.
type Job[T any] func(ctx context.Context, index int) (T, error)

// Options tune one sweep.
type Options struct {
	// Workers bounds concurrency: at most Workers jobs run at once.
	// Zero or negative means one worker per available CPU
	// (runtime.GOMAXPROCS); 1 forces the serial path. The results are
	// identical for every value.
	Workers int

	// Progress, when non-nil, is called after each job completes, with
	// the number of completed jobs and the total. Calls are serialized
	// (never concurrent) but arrive in completion order, which is not
	// deterministic under parallelism; treat it as a display hook, not
	// a result channel.
	Progress func(done, total int)
}

// workerCount resolves Options.Workers against the job count.
func (o Options) workerCount(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes jobs 0..n-1 over the worker pool and returns their results
// in job-index order. Indices are dispatched in ascending order, so with
// Workers = 1 the execution order is exactly the serial loop's.
//
// On failure the remaining undispatched jobs are abandoned, in-flight
// jobs run to completion (or observe ctx and stop early), and the error
// of the lowest-indexed failing job is returned — deterministically,
// because a lower-indexed failing job is always dispatched before the
// failure that stopped the sweep. If the caller's context is canceled
// and no job failed, Run returns the context's error even when every
// job happened to complete.
func Run[T any](ctx context.Context, opts Options, n int, job Job[T]) ([]T, error) {
	if job == nil {
		return nil, fmt.Errorf("sweep: job must not be nil")
	}
	return RunState(ctx, opts, n, nil, nil,
		func(ctx context.Context, _ struct{}, i int) (T, error) { return job(ctx, i) })
}

// StateJob computes the index-th result of a sweep using per-worker
// scratch state. The same purity rules as Job apply, with one relaxation:
// state is owned exclusively by the calling worker for the duration of the
// call, so jobs may mutate it freely — but the result must not depend on
// what previous jobs left inside (reset it, or treat it as storage whose
// contents never reach the output). That is exactly the contract of a
// stats.Arena reset between jobs.
type StateJob[T, S any] func(ctx context.Context, state S, index int) (T, error)

// RunState is Run with per-worker scratch state: each worker calls acquire
// once when it starts, passes the state to every job it executes, and
// calls release when it exits (on success, failure, and cancellation
// alike). It exists so expensive reusable resources — a stats.Arena, a
// scratch buffer pool — are paid for once per worker, not once per job,
// while keeping the job functions pure in everything that reaches the
// results. Either of acquire and release may be nil.
func RunState[T, S any](ctx context.Context, opts Options, n int, acquire func() S, release func(S), job StateJob[T, S]) ([]T, error) {
	if job == nil {
		return nil, fmt.Errorf("sweep: job must not be nil")
	}
	if n < 0 {
		return nil, fmt.Errorf("sweep: job count must be non-negative, got %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	errs := make([]error, n)
	ran := make([]bool, n)

	// minFailed tracks the lowest failing job index (n when none). A
	// worker skips any index above a recorded failure, which preserves
	// serial first-error semantics (with one worker, nothing after the
	// failure runs) without ever skipping a lower-indexed job — so the
	// reported error is deterministically the lowest-indexed failure.
	var minFailed atomic.Int64
	minFailed.Store(int64(n))

	// Dispatch indices in ascending order; stop feeding on cancellation.
	indices := make(chan int)
	go func() {
		defer close(indices)
		for i := 0; i < n; i++ {
			select {
			case indices <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var (
		progressMu sync.Mutex
		done       int
	)
	finish := func() {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		d := done
		opts.Progress(d, n)
		progressMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := opts.workerCount(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var state S
			if acquire != nil {
				state = acquire()
			}
			if release != nil {
				defer release(state)
			}
			for i := range indices {
				if minFailed.Load() < int64(i) {
					return
				}
				res, err := job(ctx, state, i)
				ran[i] = true
				if err != nil {
					errs[i] = err
					for {
						cur := minFailed.Load()
						if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					cancel()
					continue
				}
				results[i] = res
				finish()
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	// No job failed, so the derived context can only have been canceled
	// from the caller's side; a canceled sweep never reports success,
	// even when every job happened to finish first.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range ran {
		if !ran[i] {
			return nil, fmt.Errorf("sweep: job %d never ran", i)
		}
	}
	return results, nil
}
