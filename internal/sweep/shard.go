package sweep

// Shard math for the distributed fabric (internal/dsweep): a sweep of n
// jobs is partitioned across S shards by round-robin over the job index.
// Because every job is a pure function of its index (the package
// contract), the partition is safe by construction: a shard can run in
// another process — or on another machine — and the merged, index-ordered
// results are exactly what a single-process Run would have produced.
//
// The plan is frozen: manifests, shard artifact files, and checkpoint
// resume positions all depend on Shard(index) = index mod shards, so
// changing it is a breaking change to every recorded distributed sweep.

// Shard returns the shard that owns job index under a plan with shards
// shards: index mod shards. It panics if shards < 1 or index < 0, which
// are manifest-validation errors upstream, never data-dependent states.
func Shard(index, shards int) int {
	if shards < 1 {
		panic("sweep: shard plan needs at least one shard")
	}
	if index < 0 {
		panic("sweep: negative job index")
	}
	return index % shards
}

// ShardSize returns the number of jobs a shard owns in a sweep of jobs
// jobs: the size of {i : 0 <= i < jobs, i mod shards == shard}.
func ShardSize(jobs, shards, shard int) int {
	checkShard(shards, shard)
	if shard >= jobs {
		return 0
	}
	return (jobs - shard + shards - 1) / shards
}

// ShardIndices returns the ascending job indices owned by shard. The
// sequence is the order a shard worker must execute and checkpoint in:
// resuming after k completed records means continuing at element k.
func ShardIndices(jobs, shards, shard int) []int {
	n := ShardSize(jobs, shards, shard)
	if n == 0 {
		return nil
	}
	indices := make([]int, 0, n)
	for i := shard; i < jobs; i += shards {
		indices = append(indices, i)
	}
	return indices
}

// checkShard validates a (shards, shard) pair; violations are manifest
// bugs, not data-dependent states, so they panic like Shard does.
func checkShard(shards, shard int) {
	if shards < 1 {
		panic("sweep: shard plan needs at least one shard")
	}
	if shard < 0 || shard >= shards {
		panic("sweep: shard outside plan")
	}
}
