package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestRunOrdersResults pins the core contract: results come back in
// job-index order for every worker count, including worker counts far
// above the job count.
func TestRunOrdersResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 4, 8, 64} {
		res, err := Run(context.Background(), Options{Workers: workers}, 17, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != 17 {
			t.Fatalf("workers=%d: got %d results, want 17", workers, len(res))
		}
		for i, v := range res {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestRunWorkerCountEquivalence runs a sweep whose jobs consume derived
// randomness and checks that the collected result is byte-identical for
// workers 1, 4, and 8 — the property every converted figure driver
// relies on.
func TestRunWorkerCountEquivalence(t *testing.T) {
	const base = int64(42)
	fingerprint := func(workers int) string {
		res, err := Run(context.Background(), Options{Workers: workers}, 32, func(_ context.Context, i int) (string, error) {
			rng := rand.New(rand.NewSource(DeriveSeed(base, i)))
			return fmt.Sprintf("%d:%d:%d", i, rng.Int63(), rng.Int63()), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return strings.Join(res, "|")
	}
	serial := fingerprint(1)
	for _, workers := range []int{4, 8} {
		if got := fingerprint(workers); got != serial {
			t.Errorf("workers=%d result differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

// TestRunZeroJobs checks the n = 0 fast path.
func TestRunZeroJobs(t *testing.T) {
	res, err := Run(context.Background(), Options{}, 0, func(_ context.Context, _ int) (int, error) {
		t.Fatal("job ran for n = 0")
		return 0, nil
	})
	if err != nil || res != nil {
		t.Fatalf("Run(0 jobs) = (%v, %v), want (nil, nil)", res, err)
	}
}

// TestRunRejectsBadInput covers nil jobs and negative counts.
func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run[int](context.Background(), Options{}, 3, nil); err == nil {
		t.Error("nil job accepted")
	}
	if _, err := Run(context.Background(), Options{}, -1, func(_ context.Context, _ int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative job count accepted")
	}
}

// TestRunErrorPropagation checks that a failing job surfaces its error
// wrapped with the job index, and that with one worker later jobs are
// never dispatched (serial first-error semantics).
func TestRunErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	_, err := Run(context.Background(), Options{Workers: 1}, 10, func(_ context.Context, i int) (int, error) {
		ran = append(ran, i)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the job error", err)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Errorf("error %q does not name job 3", err)
	}
	if len(ran) != 4 {
		t.Errorf("serial sweep ran %v after the failure, want jobs 0-3 only", ran)
	}
}

// TestRunErrorLowestIndex checks that when several jobs fail under
// parallelism, the lowest-indexed failure wins — matching what the
// serial path would have reported.
func TestRunErrorLowestIndex(t *testing.T) {
	_, err := Run(context.Background(), Options{Workers: 8}, 16, func(_ context.Context, i int) (int, error) {
		return 0, fmt.Errorf("fail-%d", i)
	})
	if err == nil {
		t.Fatal("sweep with all-failing jobs returned nil error")
	}
	if !strings.Contains(err.Error(), "job 0") {
		t.Errorf("error %q, want the lowest-indexed failure (job 0)", err)
	}
}

// TestRunCancellation cancels the caller context mid-sweep and checks
// that Run returns the context error instead of a partial result.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := Run(ctx, Options{Workers: 2}, 100, func(ctx context.Context, i int) (int, error) {
		once.Do(cancel)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancellation = %v, want context.Canceled", err)
	}
}

// TestRunProgress checks the progress callback: serialized monotone
// counts ending at (total, total) on success.
func TestRunProgress(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	opts := Options{Workers: 4, Progress: func(done, total int) {
		if total != 20 {
			t.Errorf("progress total = %d, want 20", total)
		}
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	}}
	if _, err := Run(context.Background(), opts, 20, func(_ context.Context, i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 20 {
		t.Fatalf("progress fired %d times, want 20", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress counts %v not monotone", seen)
		}
	}
}

// TestWorkerCountResolution pins the Workers-resolution rules.
func TestWorkerCountResolution(t *testing.T) {
	if got := (Options{Workers: 5}).workerCount(3); got != 3 {
		t.Errorf("workerCount clamps to job count: got %d, want 3", got)
	}
	if got := (Options{Workers: 2}).workerCount(10); got != 2 {
		t.Errorf("workerCount honors Workers: got %d, want 2", got)
	}
	if got := (Options{}).workerCount(10); got < 1 {
		t.Errorf("default workerCount = %d, want >= 1", got)
	}
}

// TestDeriveSeedStability freezes the seed-derivation scheme: these
// values are part of the artifact format and must never change.
func TestDeriveSeedStability(t *testing.T) {
	cases := []struct {
		base  int64
		index int
		want  int64
	}{
		{0, 0, -2152535657050944081},
		{0, 1, 7960286522194355700},
		{1, 0, -7995527694508729151},
		{1, 1, -4689498862643123097},
		{-7, 3, 2940488688193949890},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.base, c.index); got != c.want {
			t.Errorf("DeriveSeed(%d, %d) = %d, want %d (frozen scheme changed!)", c.base, c.index, got, c.want)
		}
	}
}

// TestDeriveSeedDistinct checks that derived seeds do not collide across
// a realistic replication range, for several base seeds.
func TestDeriveSeedDistinct(t *testing.T) {
	for _, base := range []int64{0, 1, 42, -1, 1 << 40} {
		seen := make(map[int64]int, 4096)
		for i := 0; i < 4096; i++ {
			s := DeriveSeed(base, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("base %d: DeriveSeed collision between index %d and %d", base, prev, i)
			}
			if s == base {
				t.Errorf("base %d: DeriveSeed(base, %d) returned the base seed itself", base, i)
			}
			seen[s] = i
		}
	}
}
