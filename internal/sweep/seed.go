package sweep

// DeriveSeed mixes a base seed and a job index into an independent
// per-job seed, so that replicated runs draw decorrelated random streams
// while remaining a pure function of (base, index).
//
// The derivation is the splitmix64 generator evaluated at its
// (index+1)-th step from state base: the state advances by the golden
// -ratio increment and is finalized with the Stafford mix13 permutation.
// It is a bijection of the state for every fixed index, so distinct base
// seeds never collide, and the +1 offset keeps DeriveSeed(base, 0) from
// degenerating into a fixed point of the base seed itself.
//
// The scheme is frozen: artifacts and tests depend on the exact values,
// so changing these constants is a breaking change to every recorded
// sweep.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
