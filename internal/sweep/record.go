package sweep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record codec for the distributed fabric's shard artifacts and merged
// result streams. A record carries one job's encoded result, keyed by its
// global job index:
//
//	record := uvarint(index) uvarint(len(payload)) payload crc32
//
// where crc32 is the IEEE checksum of everything before it, little-endian.
// The framing is self-delimiting and self-validating: a reader can tell a
// cleanly ended stream from one cut mid-record (ErrRecordTruncated — the
// torn tail of a killed worker) and from one whose bytes rotted
// (ErrRecordCorrupt), which is exactly what crash-safe checkpoint
// recovery needs. The layout is frozen: recorded shard artifacts depend
// on it.

// ErrRecordTruncated reports a stream that ends partway through a record:
// every byte present is a valid prefix, but the record is incomplete. A
// recovering worker truncates the tail and re-runs the job.
var ErrRecordTruncated = errors.New("sweep: truncated record")

// ErrRecordCorrupt reports a record whose framing or checksum is invalid
// within the bytes present. Recovery treats it like a truncated tail —
// the record and everything after it are discarded and re-run — but a
// merge must never accept it silently.
var ErrRecordCorrupt = errors.New("sweep: corrupt record")

// AppendRecord appends the framed record for (index, payload) to dst and
// returns the extended slice. index must be non-negative.
func AppendRecord(dst []byte, index int, payload []byte) []byte {
	if index < 0 {
		panic("sweep: negative record index")
	}
	start := len(dst)
	dst = binary.AppendUvarint(dst, uint64(index))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// DecodeRecord parses the first framed record in b, returning the job
// index, its payload (aliasing b, not copied), and the remaining bytes.
// It returns ErrRecordTruncated when b is a proper prefix of a record and
// ErrRecordCorrupt when the framing or checksum is invalid.
func DecodeRecord(b []byte) (index int, payload, rest []byte, err error) {
	idx, n := binary.Uvarint(b)
	if n == 0 {
		return 0, nil, nil, ErrRecordTruncated
	}
	if n < 0 || idx > 1<<31 {
		return 0, nil, nil, fmt.Errorf("%w: bad index varint", ErrRecordCorrupt)
	}
	off := n
	size, n := binary.Uvarint(b[off:])
	if n == 0 {
		return 0, nil, nil, ErrRecordTruncated
	}
	if n < 0 || size > 1<<31 {
		return 0, nil, nil, fmt.Errorf("%w: bad length varint", ErrRecordCorrupt)
	}
	off += n
	end := off + int(size)
	if end+4 > len(b) {
		return 0, nil, nil, ErrRecordTruncated
	}
	sum := binary.LittleEndian.Uint32(b[end:])
	if crc32.ChecksumIEEE(b[:end]) != sum {
		return 0, nil, nil, fmt.Errorf("%w: checksum mismatch for record index %d", ErrRecordCorrupt, idx)
	}
	return int(idx), b[off:end], b[end+4:], nil
}

// EncodeRecords frames payloads[i] as the record for job index i, in
// index order — the canonical encoding of a fully merged sweep. A
// distributed run's merged artifact is byte-identical to EncodeRecords
// over the payloads a single-process Run would have produced.
func EncodeRecords(payloads [][]byte) []byte {
	size := 0
	for _, p := range payloads {
		size += len(p) + 2*binary.MaxVarintLen64 + 4
	}
	out := make([]byte, 0, size)
	for i, p := range payloads {
		out = AppendRecord(out, i, p)
	}
	return out
}

// DecodeRecords parses a complete record stream into a map-free slice
// keyed by position in the stream, returning each record's index and
// payload (payloads alias b). It fails on any truncated or corrupt tail.
func DecodeRecords(b []byte) (indices []int, payloads [][]byte, err error) {
	for len(b) > 0 {
		idx, payload, rest, err := DecodeRecord(b)
		if err != nil {
			return nil, nil, err
		}
		indices = append(indices, idx)
		payloads = append(payloads, payload)
		b = rest
	}
	return indices, payloads, nil
}
