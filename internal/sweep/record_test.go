package sweep

import (
	"bytes"
	"errors"
	"testing"
)

// TestRecordRoundTrip pins the codec: append then decode returns the
// original (index, payload) pairs and consumes the stream exactly.
func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		nil,
		bytes.Repeat([]byte{0xAB}, 300), // multi-byte length varint
		{0},
	}
	stream := EncodeRecords(payloads)
	indices, got, err := DecodeRecords(stream)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if indices[i] != i {
			t.Errorf("record %d decoded with index %d", i, indices[i])
		}
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
}

// TestRecordTruncationDetected pins the crash-safety contract: every
// proper prefix of a record stream either decodes fewer whole records or
// fails with ErrRecordTruncated — never with a wrong payload.
func TestRecordTruncationDetected(t *testing.T) {
	payloads := [][]byte{[]byte("first"), []byte("second record payload")}
	stream := EncodeRecords(payloads)
	first := AppendRecord(nil, 0, payloads[0])
	for cut := 0; cut < len(stream); cut++ {
		prefix := stream[:cut]
		indices, got, err := DecodeRecords(prefix)
		if err != nil {
			if !errors.Is(err, ErrRecordTruncated) {
				t.Fatalf("cut at %d: got %v, want ErrRecordTruncated", cut, err)
			}
			continue
		}
		// A clean decode of a prefix must be exactly the whole records
		// that fit: nothing, or the first record alone.
		switch len(got) {
		case 0:
			if cut != 0 {
				t.Errorf("cut at %d decoded zero records without error", cut)
			}
		case 1:
			if cut != len(first) || indices[0] != 0 || !bytes.Equal(got[0], payloads[0]) {
				t.Errorf("cut at %d decoded unexpected record", cut)
			}
		default:
			t.Errorf("cut at %d decoded %d records from a truncated stream", cut, len(got))
		}
	}
}

// TestRecordCorruptionDetected flips every single bit of a framed record
// and requires the decoder to notice. CRC32 detects all single-bit
// errors, and the checksum covers the framing varints too, so a flip
// anywhere in the frame must surface as truncated or corrupt — never as
// a clean decode.
func TestRecordCorruptionDetected(t *testing.T) {
	payload := []byte("the payload under test")
	stream := AppendRecord(nil, 7, payload)
	for i := range stream {
		for bit := 0; bit < 8; bit++ {
			mutated := bytes.Clone(stream)
			mutated[i] ^= 1 << bit
			if _, _, _, err := DecodeRecord(mutated); err == nil {
				t.Errorf("flip of bit %d in byte %d decoded cleanly", bit, i)
			} else if !errors.Is(err, ErrRecordCorrupt) && !errors.Is(err, ErrRecordTruncated) {
				t.Errorf("flip of bit %d in byte %d: unexpected error %v", bit, i, err)
			}
		}
	}
}

// TestEncodeRecordsMergeIdentity pins the merge contract at the codec
// level: concatenating per-shard record sets in index order reproduces
// EncodeRecords byte for byte, for every shard count.
func TestEncodeRecordsMergeIdentity(t *testing.T) {
	payloads := make([][]byte, 9)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, i*3+1)
	}
	want := EncodeRecords(payloads)
	for _, shards := range []int{1, 2, 4, 8} {
		byIndex := make(map[int][]byte)
		for s := 0; s < shards; s++ {
			for _, i := range ShardIndices(len(payloads), shards, s) {
				byIndex[i] = AppendRecord(nil, i, payloads[i])
			}
		}
		var merged []byte
		for i := range payloads {
			merged = append(merged, byIndex[i]...)
		}
		if !bytes.Equal(merged, want) {
			t.Errorf("merged stream at %d shards differs from single-process encoding", shards)
		}
	}
}
