package analytical

import (
	"math"
	"testing"
	"time"
)

func TestNewMMcValidation(t *testing.T) {
	if _, err := NewMMc(0, 1, 1); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := NewMMc(1, 0, 1); err == nil {
		t.Error("zero mu accepted")
	}
	if _, err := NewMMc(1, 1, 0); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := NewMMc(10, 5, 2); err == nil {
		t.Error("unstable system accepted")
	}
}

func TestMM1ClosedForm(t *testing.T) {
	// For c=1 the Erlang C probability reduces to rho, and
	// W = 1/(mu - lambda).
	q, err := NewMMc(50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Utilization(); got != 0.5 {
		t.Errorf("rho = %v, want 0.5", got)
	}
	if got := q.ErlangC(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ErlangC = %v, want 0.5", got)
	}
	want := 20 * time.Millisecond // 1/(100-50)
	if got := q.MeanResponse(); got < want-time.Microsecond || got > want+time.Microsecond {
		t.Errorf("W = %v, want %v", got, want)
	}
}

func TestMMcKnownValues(t *testing.T) {
	// Classic tabulated case: lambda=2, mu=1, c=3 (rho=2/3):
	// ErlangC = 4/9 ≈ 0.4444, Wq = 4/9 s, W = 13/9 s.
	q, err := NewMMc(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.ErlangC(); math.Abs(got-4.0/9) > 1e-9 {
		t.Errorf("ErlangC = %v, want 4/9", got)
	}
	wq := 4.0 / 9.0
	wantWq := time.Duration(wq * float64(time.Second))
	if got := q.MeanWait(); math.Abs(float64(got-wantWq)) > float64(time.Microsecond) {
		t.Errorf("Wq = %v, want %v", got, wantWq)
	}
	// Lq = lambda * Wq = 8/9.
	if got := q.MeanQueueLength(); math.Abs(got-8.0/9) > 1e-6 {
		t.Errorf("Lq = %v, want 8/9", got)
	}
}

func TestWaitQuantile(t *testing.T) {
	q, err := NewMMc(50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Half the arrivals don't wait at all (rho=0.5): the median is 0.
	if got := q.WaitQuantile(0.5); got != 0 {
		t.Errorf("median wait = %v, want 0", got)
	}
	// p99: P(W > t) = 0.01 → t = ln(0.5/0.01)/50 ≈ 78.2 ms.
	want := time.Duration(math.Log(50) / 50 * float64(time.Second))
	got := q.WaitQuantile(0.99)
	if math.Abs(float64(got-want)) > float64(time.Millisecond) {
		t.Errorf("p99 wait = %v, want ~%v", got, want)
	}
	// Monotonicity.
	prev := time.Duration(-1)
	for _, p := range []float64{0, 0.3, 0.6, 0.9, 0.99, 0.999} {
		v := q.WaitQuantile(p)
		if v < prev {
			t.Errorf("quantile not monotone at %v", p)
		}
		prev = v
	}
}
