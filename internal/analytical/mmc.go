package analytical

import (
	"fmt"
	"math"
	"time"
)

// MMc holds the closed-form results for an M/M/c queue: Poisson arrivals
// at rate lambda, c servers each at rate mu, infinite queue. These formulas
// validate the simulator's steady-state behaviour between attack bursts
// (the OFF periods are plain M/M/c systems).
type MMc struct {
	Lambda float64
	Mu     float64
	C      int
}

// NewMMc validates the parameters; the system must be stable
// (lambda < c*mu).
func NewMMc(lambda, mu float64, c int) (MMc, error) {
	if lambda <= 0 {
		return MMc{}, fmt.Errorf("analytical: lambda must be positive, got %v", lambda)
	}
	if mu <= 0 {
		return MMc{}, fmt.Errorf("analytical: mu must be positive, got %v", mu)
	}
	if c <= 0 {
		return MMc{}, fmt.Errorf("analytical: c must be positive, got %d", c)
	}
	if lambda >= float64(c)*mu {
		return MMc{}, fmt.Errorf("analytical: unstable system: lambda %v >= c*mu %v", lambda, float64(c)*mu)
	}
	return MMc{Lambda: lambda, Mu: mu, C: c}, nil
}

// Utilization returns rho = lambda / (c*mu).
func (q MMc) Utilization() float64 {
	return q.Lambda / (float64(q.C) * q.Mu)
}

// ErlangC returns the probability an arriving request must wait (all c
// servers busy).
func (q MMc) ErlangC() float64 {
	c := float64(q.C)
	a := q.Lambda / q.Mu // offered load in Erlangs
	rho := q.Utilization()

	// Sum_{k=0}^{c-1} a^k/k!, computed iteratively for stability.
	sum := 0.0
	term := 1.0
	for k := 0; k < q.C; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	// a^c / c!.
	top := term * a / c
	return top / (top + (1-rho)*sum)
}

// MeanWait returns the mean time in queue (excluding service), Wq.
func (q MMc) MeanWait() time.Duration {
	wq := q.ErlangC() / (float64(q.C)*q.Mu - q.Lambda)
	return time.Duration(wq * float64(time.Second))
}

// MeanResponse returns the mean sojourn time W = Wq + 1/mu.
func (q MMc) MeanResponse() time.Duration {
	return q.MeanWait() + time.Duration(float64(time.Second)/q.Mu)
}

// MeanQueueLength returns Lq = lambda * Wq (Little's law).
func (q MMc) MeanQueueLength() float64 {
	return q.Lambda * q.MeanWait().Seconds()
}

// WaitQuantile returns the p-quantile of the waiting time (0 <= p < 1).
// For M/M/c the conditional wait is exponential:
// P(Wq > t) = ErlangC * exp(-(c*mu - lambda) t).
func (q MMc) WaitQuantile(p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 1 - 1e-12
	}
	pc := q.ErlangC()
	if 1-p >= pc {
		return 0 // the quantile falls in the no-wait mass
	}
	rate := float64(q.C)*q.Mu - q.Lambda
	t := -math.Log((1-p)/pc) / rate
	return time.Duration(t * float64(time.Second))
}
