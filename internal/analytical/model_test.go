package analytical

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestModelValidate(t *testing.T) {
	if err := RUBBoS3Tier().Validate(); err != nil {
		t.Fatalf("default model rejected: %v", err)
	}
	bad := []Model{
		{},
		{Tiers: []Tier{{Name: "a", Queue: 0, CapacityOFF: 1}}},
		{Tiers: []Tier{{Name: "a", Queue: 1, CapacityOFF: 0}}},
		{Tiers: []Tier{{Name: "a", Queue: 1, CapacityOFF: 1, ArrivalRate: -1}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestAttackValidate(t *testing.T) {
	good := Attack{D: 0.1, L: 100 * time.Millisecond, I: 2 * time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid attack rejected: %v", err)
	}
	bad := []Attack{
		{D: -0.1, L: time.Second, I: 2 * time.Second},
		{D: 1.1, L: time.Second, I: 2 * time.Second},
		{D: 0.5, L: 0, I: 2 * time.Second},
		{D: 0.5, L: time.Second, I: 0},
		{D: 0.5, L: 3 * time.Second, I: 2 * time.Second},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad attack %d accepted", i)
		}
	}
}

func TestConditions(t *testing.T) {
	m := RUBBoS3Tier()
	if err := m.CheckCondition1(); err != nil {
		t.Errorf("condition 1 should hold for default model: %v", err)
	}
	inverted := Model{Tiers: []Tier{
		{Name: "a", Queue: 10, CapacityOFF: 100, ArrivalRate: 10},
		{Name: "b", Queue: 20, CapacityOFF: 100, ArrivalRate: 10},
	}}
	if err := inverted.CheckCondition1(); err == nil {
		t.Error("condition 1 violation not detected")
	}

	strong := Attack{D: 0.1, L: 100 * time.Millisecond, I: 2 * time.Second}
	if err := m.CheckCondition2(strong); err != nil {
		t.Errorf("condition 2 should hold for D=0.1: %v", err)
	}
	weak := Attack{D: 0.9, L: 100 * time.Millisecond, I: 2 * time.Second}
	if err := m.CheckCondition2(weak); err == nil {
		t.Error("condition 2 should fail for D=0.9 (C_ON=828 > λ_n=350)")
	}
}

func TestSeenRate(t *testing.T) {
	m := RUBBoS3Tier()
	if got := m.SeenRate(0); got != 500 {
		t.Errorf("front tier sees %v req/s, want 500", got)
	}
	if got := m.SeenRate(2); got != 350 {
		t.Errorf("bottleneck sees %v req/s, want 350", got)
	}
}

// TestPredictEquationsByHand checks Equations 4-10 against hand-computed
// values for a small 3-tier model.
func TestPredictEquationsByHand(t *testing.T) {
	m := Model{Tiers: []Tier{
		{Name: "t1", Queue: 100, CapacityOFF: 1000, ArrivalRate: 50}, // sees 350
		{Name: "t2", Queue: 60, CapacityOFF: 500, ArrivalRate: 100},  // sees 300
		{Name: "t3", Queue: 20, CapacityOFF: 300, ArrivalRate: 200},  // sees 200
	}}
	a := Attack{D: 0.1, L: 500 * time.Millisecond, I: 2 * time.Second}
	p, err := m.Predict(a)
	if err != nil {
		t.Fatal(err)
	}
	// C_n,ON = 0.1 * 300 = 30.
	if p.CnON != 30 {
		t.Errorf("CnON = %v, want 30", p.CnON)
	}
	approx := func(got time.Duration, wantSecs float64) bool {
		return math.Abs(got.Seconds()-wantSecs) < 1e-6
	}
	// Eq 4: l_3,UP = 20 / (200 - 30) s.
	if !approx(p.FillTimes[2], 20.0/170) {
		t.Errorf("l_3,UP = %v, want %vs", p.FillTimes[2], 20.0/170)
	}
	// Eq 5: l_2,UP = (60-20) / (300 - 30).
	if !approx(p.FillTimes[1], 40.0/270) {
		t.Errorf("l_2,UP = %v, want %vs", p.FillTimes[1], 40.0/270)
	}
	// Eq 6: l_1,UP = (100-60) / (350 - 30).
	if !approx(p.FillTimes[0], 40.0/320) {
		t.Errorf("l_1,UP = %v, want %vs", p.FillTimes[0], 40.0/320)
	}
	if !p.QueuesAllFill {
		t.Error("cascade should reach the front tier")
	}
	totalFill := 20.0/170 + 40.0/270 + 40.0/320
	if !approx(p.TotalFill, totalFill) {
		t.Errorf("TotalFill = %v, want %vs", p.TotalFill, totalFill)
	}
	// Eq 7: P_D = 0.5 - totalFill.
	if !approx(p.DamagePeriod, 0.5-totalFill) {
		t.Errorf("DamagePeriod = %v, want %vs", p.DamagePeriod, 0.5-totalFill)
	}
	// Eq 8: rho = P_D / 2.
	wantImpact := (0.5 - totalFill) / 2
	if math.Abs(p.Impact-wantImpact) > 1e-6 {
		t.Errorf("Impact = %v, want %v", p.Impact, wantImpact)
	}
	// Eq 9: l_3,DOWN = 20 / (300 - 200) = 0.2 s.
	if !approx(p.DrainTime, 0.2) {
		t.Errorf("DrainTime = %v, want 200ms", p.DrainTime)
	}
	// Eq 10: P_MB = 0.5 + 0.2 = 0.7 s.
	if !approx(p.Millibottleneck, 0.7) {
		t.Errorf("Millibottleneck = %v, want 700ms", p.Millibottleneck)
	}
}

func TestPredictShortBurstNoDamage(t *testing.T) {
	m := RUBBoS3Tier()
	a := Attack{D: 0.1, L: 50 * time.Millisecond, I: 2 * time.Second}
	p, err := m.Predict(a)
	if err != nil {
		t.Fatal(err)
	}
	if p.DamagePeriod != 0 {
		t.Errorf("burst shorter than build-up produced damage period %v", p.DamagePeriod)
	}
	if p.Impact != 0 {
		t.Errorf("Impact = %v, want 0", p.Impact)
	}
	// The millibottleneck still outlasts the burst (Eq 10).
	if p.Millibottleneck <= a.L {
		t.Errorf("Millibottleneck %v should exceed burst length %v", p.Millibottleneck, a.L)
	}
}

func TestPredictWeakAttackCascadeStops(t *testing.T) {
	m := RUBBoS3Tier()
	// D=0.8 gives C_ON=320 > λ_n=300: bottleneck never fills.
	a := Attack{D: 0.8, L: time.Second, I: 2 * time.Second}
	p, err := m.Predict(a)
	if err != nil {
		t.Fatal(err)
	}
	if p.QueuesAllFill {
		t.Error("cascade should not complete for a too-weak attack")
	}
	for i, ft := range p.FillTimes {
		if ft != -1 {
			t.Errorf("tier %d fill time = %v, want -1 (never fills)", i, ft)
		}
	}
	if p.DamagePeriod != 0 {
		t.Errorf("DamagePeriod = %v, want 0", p.DamagePeriod)
	}
}

func TestPredictCascadePartial(t *testing.T) {
	// Bottleneck fills but tier 2's deficit is negative: cascade stops.
	m := Model{Tiers: []Tier{
		{Name: "t1", Queue: 100, CapacityOFF: 1000, ArrivalRate: 0},
		{Name: "t2", Queue: 50, CapacityOFF: 500, ArrivalRate: 0},
		{Name: "t3", Queue: 20, CapacityOFF: 100, ArrivalRate: 60},
	}}
	// C_ON = 70: bottleneck deficit = 60-70 < 0? No: we need the
	// bottleneck to fill, so pick D such that C_ON < 60 but the tier-2
	// deficit (also 60 - C_ON here) stays positive... with equal seen
	// rates the cascade continues. Instead give tier 2 enough capacity
	// headroom is irrelevant; deficit uses the bottleneck C_ON. So a
	// partial cascade requires upstream seen-rate < C_ON, impossible
	// when deeper tiers' rates are included. Verify that invariant: if
	// the bottleneck fills, every upstream tier fills too.
	a := Attack{D: 0.5, L: 5 * time.Second, I: 10 * time.Second}
	p, err := m.Predict(a)
	if err != nil {
		t.Fatal(err)
	}
	if !p.QueuesAllFill {
		t.Error("upstream seen rate >= bottleneck rate, cascade must complete")
	}
}

func TestPredictImpactMonotoneInL(t *testing.T) {
	m := RUBBoS3Tier()
	f := func(l1Raw, l2Raw uint16) bool {
		l1 := time.Duration(l1Raw%1900+50) * time.Millisecond
		l2 := time.Duration(l2Raw%1900+50) * time.Millisecond
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		p1, err1 := m.Predict(Attack{D: 0.1, L: l1, I: 2 * time.Second})
		p2, err2 := m.Predict(Attack{D: 0.1, L: l2, I: 2 * time.Second})
		if err1 != nil || err2 != nil {
			return false
		}
		return p1.Impact <= p2.Impact+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPredictStrongerAttackFillsFaster(t *testing.T) {
	m := RUBBoS3Tier()
	weak, err := m.Predict(Attack{D: 0.3, L: time.Second, I: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := m.Predict(Attack{D: 0.05, L: time.Second, I: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if strong.TotalFill >= weak.TotalFill {
		t.Errorf("stronger attack fill time %v not below weaker %v", strong.TotalFill, weak.TotalFill)
	}
	if strong.DamagePeriod <= weak.DamagePeriod {
		t.Errorf("stronger attack damage %v not above weaker %v", strong.DamagePeriod, weak.DamagePeriod)
	}
}

func TestPredictOverloadedModelInfeasible(t *testing.T) {
	m := Model{Tiers: []Tier{
		{Name: "front", Queue: 50, CapacityOFF: 500, ArrivalRate: 0},
		{Name: "db", Queue: 10, CapacityOFF: 100, ArrivalRate: 150}, // overloaded even OFF
	}}
	a := Attack{D: 0.1, L: 100 * time.Millisecond, I: time.Second}
	if _, err := m.Predict(a); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Predict on an overloaded model = %v, want ErrInfeasible", err)
	}

	// An upstream tier over capacity must be rejected too: tier 1 sees
	// the sum of all terminating rates (120 + 90 > 200).
	front := Model{Tiers: []Tier{
		{Name: "front", Queue: 50, CapacityOFF: 200, ArrivalRate: 120},
		{Name: "db", Queue: 10, CapacityOFF: 100, ArrivalRate: 90},
	}}
	if _, err := front.Predict(a); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Predict with an overloaded front tier = %v, want ErrInfeasible", err)
	}
	if _, err := PlanAttack(front, Goal{MinImpact: 0.05}, time.Second); !errors.Is(err, ErrInfeasible) {
		t.Errorf("PlanAttack on an overloaded model = %v, want ErrInfeasible", err)
	}

	// The boundary is strict: a tier exactly at capacity never drains,
	// so equality is infeasible as well.
	edge := Model{Tiers: []Tier{
		{Name: "front", Queue: 50, CapacityOFF: 500, ArrivalRate: 0},
		{Name: "db", Queue: 10, CapacityOFF: 100, ArrivalRate: 100},
	}}
	if _, err := edge.Predict(a); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Predict at the capacity boundary = %v, want ErrInfeasible", err)
	}
}

func TestPlanAttackMeetsGoal(t *testing.T) {
	m := RUBBoS3Tier()
	goal := Goal{MinImpact: 0.05, MaxMillibottleneck: time.Second}
	a, err := PlanAttack(m, goal, 2*time.Second)
	if err != nil {
		t.Fatalf("PlanAttack: %v", err)
	}
	p, err := m.Predict(a)
	if err != nil {
		t.Fatal(err)
	}
	if p.Impact < goal.MinImpact {
		t.Errorf("planned impact %v below goal %v", p.Impact, goal.MinImpact)
	}
	if p.Millibottleneck > goal.MaxMillibottleneck {
		t.Errorf("planned millibottleneck %v exceeds stealth bound %v", p.Millibottleneck, goal.MaxMillibottleneck)
	}
	if a.L > a.I {
		t.Errorf("planned burst %v exceeds interval %v", a.L, a.I)
	}
}

func TestPlanAttackPrefersWeakest(t *testing.T) {
	m := RUBBoS3Tier()
	goal := Goal{MinImpact: 0.01, MaxMillibottleneck: 2 * time.Second}
	interval := 2 * time.Second
	a, err := PlanAttack(m, goal, interval)
	if err != nil {
		t.Fatal(err)
	}
	// Every stronger-than-necessary candidate is skipped: the next grid
	// step up in D (a weaker attack) must be infeasible.
	feasible := func(d float64) bool {
		cand := Attack{D: d, L: interval, I: interval}
		if m.CheckCondition2(cand) != nil {
			return false
		}
		pred, err := m.Predict(cand)
		if err != nil || !pred.QueuesAllFill || pred.TotalFill > interval {
			return false
		}
		cand.L = pred.TotalFill + time.Duration(goal.MinImpact*float64(interval))
		if cand.L > interval {
			return false
		}
		pred, err = m.Predict(cand)
		if err != nil {
			return false
		}
		return pred.Impact >= goal.MinImpact && pred.Millibottleneck <= goal.MaxMillibottleneck
	}
	if !feasible(a.D) {
		t.Fatalf("planned D = %v is itself infeasible", a.D)
	}
	if feasible(a.D + 0.01) {
		t.Errorf("a weaker attack (D = %v) was feasible but not chosen", a.D+0.01)
	}
}

func TestPlanAttackInfeasible(t *testing.T) {
	m := RUBBoS3Tier()
	// Demanding 90% impact with a sub-second millibottleneck cannot work
	// with a 2 s interval (P_D would need 1.8 s, so L > 1.8 s > P_MB cap).
	_, err := PlanAttack(m, Goal{MinImpact: 0.9, MaxMillibottleneck: time.Second}, 2*time.Second)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("got %v, want ErrInfeasible", err)
	}
}

func TestPlanAttackRejectsBadInputs(t *testing.T) {
	m := RUBBoS3Tier()
	if _, err := PlanAttack(m, Goal{MinImpact: 0.05}, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := PlanAttack(m, Goal{MinImpact: 1.5}, time.Second); err == nil {
		t.Error("impact >= 1 accepted")
	}
	if _, err := PlanAttack(Model{}, Goal{MinImpact: 0.05}, time.Second); err == nil {
		t.Error("empty model accepted")
	}
	inverted := Model{Tiers: []Tier{
		{Name: "a", Queue: 10, CapacityOFF: 100, ArrivalRate: 10},
		{Name: "b", Queue: 20, CapacityOFF: 100, ArrivalRate: 10},
	}}
	if _, err := PlanAttack(inverted, Goal{MinImpact: 0.05}, time.Second); err == nil {
		t.Error("condition-1-violating model accepted")
	}
}

func TestPredictRejectsInvalid(t *testing.T) {
	m := RUBBoS3Tier()
	if _, err := m.Predict(Attack{D: 2, L: time.Second, I: time.Second}); err == nil {
		t.Error("invalid attack accepted")
	}
	if _, err := (Model{}).Predict(Attack{D: 0.1, L: time.Second, I: time.Second}); err == nil {
		t.Error("invalid model accepted")
	}
}
