// Package analytical implements the paper's closed-form queueing analysis
// of MemCA attacks on n-tier systems (Section IV-B, Equations 2-10): queue
// fill-up times per tier, the damage period of a burst, the drain period,
// the millibottleneck length, and the overall attack impact ρ. It also
// provides the inverse: planning attack parameters (D, L, I) that meet a
// damage goal under a stealthiness constraint.
//
// Conventions: tiers are indexed front-to-back, Tiers[0] is the front-most
// tier (tier 1, e.g. Apache) and Tiers[n-1] the bottleneck back-end (tier
// n, e.g. MySQL). ArrivalRate of tier i is the rate of requests whose
// deepest tier is i; the traffic a tier actually sees is the sum over it
// and all deeper tiers, because every request to a downstream tier passes
// through all upstream tiers.
package analytical

import (
	"errors"
	"fmt"
	"time"
)

// ErrInfeasible is returned when no attack parameters within the search
// space meet the requested damage and stealth goals, and (wrapped with
// the offending tier) when a model is overloaded before any attack: a
// tier whose offered load already meets or exceeds its attack-free
// capacity has no stable baseline for the equations to perturb.
var ErrInfeasible = errors.New("analytical: no feasible attack parameters")

// Tier holds the per-tier parameters of Table I.
type Tier struct {
	// Name is a label for reports ("apache", "tomcat", "mysql").
	Name string
	// Queue is Q_i: the tier's concurrency limit (threads/connections).
	Queue int
	// CapacityOFF is C_i,OFF: the tier's service rate in requests/second
	// without interference.
	CapacityOFF float64
	// ArrivalRate is λ_i: the rate of legitimate requests terminating at
	// this tier, in requests/second.
	ArrivalRate float64
}

// Model is an n-tier system under the paper's assumptions: Poisson
// arrivals, exponential capacities, synchronous RPC between consecutive
// tiers, and the back-most tier as the attack target.
type Model struct {
	Tiers []Tier
}

// Attack is one MemCA parameterization: the capacity of the bottleneck
// tier is multiplied by D during ON bursts of length L, repeating every I.
type Attack struct {
	// D is the degradation index: C_n,ON = D * C_n,OFF (Equations 2-3).
	D float64
	// L is the burst length.
	L time.Duration
	// I is the interval between consecutive burst starts.
	I time.Duration
}

// Validate reports the first parameter error, or nil.
func (a Attack) Validate() error {
	switch {
	case a.D < 0 || a.D > 1:
		return fmt.Errorf("analytical: D must be in [0,1], got %v", a.D)
	case a.L <= 0:
		return fmt.Errorf("analytical: burst length L must be positive, got %v", a.L)
	case a.I <= 0:
		return fmt.Errorf("analytical: burst interval I must be positive, got %v", a.I)
	case a.L > a.I:
		return fmt.Errorf("analytical: burst length %v exceeds interval %v", a.L, a.I)
	}
	return nil
}

// Validate reports the first model error, or nil.
func (m Model) Validate() error {
	if len(m.Tiers) == 0 {
		return errors.New("analytical: model needs at least one tier")
	}
	for i, t := range m.Tiers {
		if t.Queue <= 0 {
			return fmt.Errorf("analytical: tier %d (%s) queue must be positive, got %d", i, t.Name, t.Queue)
		}
		if t.CapacityOFF <= 0 {
			return fmt.Errorf("analytical: tier %d (%s) capacity must be positive, got %v", i, t.Name, t.CapacityOFF)
		}
		if t.ArrivalRate < 0 {
			return fmt.Errorf("analytical: tier %d (%s) arrival rate must be non-negative, got %v", i, t.Name, t.ArrivalRate)
		}
	}
	return nil
}

// Bottleneck returns the back-most tier (tier n), the attack target.
func (m Model) Bottleneck() Tier { return m.Tiers[len(m.Tiers)-1] }

// CheckStability verifies every tier has attack-free headroom: the
// traffic a tier sees stays strictly below its CapacityOFF. A tier at or
// over capacity before any attack makes the model's fade-off equations
// meaningless (its queue never drains), so Predict and PlanAttack refuse
// such models with an error wrapping ErrInfeasible.
func (m Model) CheckStability() error {
	for i, t := range m.Tiers {
		if seen := m.SeenRate(i); seen >= t.CapacityOFF {
			return fmt.Errorf("analytical: tier %d (%s) offered load %v req/s >= C_OFF %v req/s before any attack: %w",
				i+1, t.Name, seen, t.CapacityOFF, ErrInfeasible)
		}
	}
	return nil
}

// SeenRate returns the total request rate tier i sees: the sum of arrival
// rates of tier i and every deeper tier.
func (m Model) SeenRate(i int) float64 {
	var sum float64
	for j := i; j < len(m.Tiers); j++ {
		sum += m.Tiers[j].ArrivalRate
	}
	return sum
}

// CheckCondition1 verifies Q_1 > Q_2 > ... > Q_n (the realistic n-tier
// configuration the fill-up equations assume).
func (m Model) CheckCondition1() error {
	for i := 1; i < len(m.Tiers); i++ {
		if m.Tiers[i-1].Queue <= m.Tiers[i].Queue {
			return fmt.Errorf("analytical: condition 1 violated: Q_%d (%d) <= Q_%d (%d)",
				i, m.Tiers[i-1].Queue, i+1, m.Tiers[i].Queue)
		}
	}
	return nil
}

// CheckCondition2 verifies λ_n > C_n,ON: the attack degrades the
// bottleneck below its arrival rate so its queue actually fills.
func (m Model) CheckCondition2(a Attack) error {
	bn := m.Bottleneck()
	cON := a.D * bn.CapacityOFF
	if bn.ArrivalRate <= cON {
		return fmt.Errorf("analytical: condition 2 violated: λ_n (%v) <= C_n,ON (%v); attack too weak to fill the bottleneck queue",
			bn.ArrivalRate, cON)
	}
	return nil
}

// Prediction is the closed-form outcome of one attack parameterization.
type Prediction struct {
	// CnON is the degraded bottleneck capacity during bursts (Eq 3).
	CnON float64
	// FillTimes[i] is l_{i+1},UP: the time to fill tier i's queue once
	// all deeper queues are full (Equations 4-6). Index matches
	// Model.Tiers. A fill time of -1 marks a tier whose queue never
	// fills within the build-up cascade (rate deficit non-positive).
	FillTimes []time.Duration
	// TotalFill is the build-up stage length: the sum of fill times from
	// the bottleneck up to the front, truncated at the first tier that
	// never fills.
	TotalFill time.Duration
	// QueuesAllFill reports whether the cascade reaches the front tier,
	// i.e. the hold-on stage (drops + retransmissions) is reached.
	QueuesAllFill bool
	// DamagePeriod is P_D = L - Σ l_i,UP (Eq 7), clamped at 0.
	DamagePeriod time.Duration
	// DrainTime is l_n,DOWN = Q_n / (C_n,OFF - λ_n) (Eq 9).
	DrainTime time.Duration
	// Millibottleneck is P_MB = L + l_n,DOWN (Eq 10).
	Millibottleneck time.Duration
	// Impact is ρ = P_D / I (Eq 8): the fraction of time the system
	// spends in the maximum-damage hold-on stage.
	Impact float64
}

func durationFromSeconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	const maxSecs = float64(1<<63-1) / float64(time.Second)
	if s >= maxSecs {
		return 1<<63 - 1
	}
	return time.Duration(s * float64(time.Second))
}

// addSat adds two non-negative durations, saturating at the maximum
// representable duration instead of overflowing.
func addSat(a, b time.Duration) time.Duration {
	const max = 1<<63 - 1
	if a > max-b {
		return max
	}
	return a + b
}

// Predict evaluates Equations (2)-(10) for the given attack.
func (m Model) Predict(a Attack) (Prediction, error) {
	if err := m.Validate(); err != nil {
		return Prediction{}, err
	}
	if err := a.Validate(); err != nil {
		return Prediction{}, err
	}
	if err := m.CheckStability(); err != nil {
		return Prediction{}, err
	}
	n := len(m.Tiers)
	bn := m.Bottleneck()
	p := Prediction{
		CnON:      a.D * bn.CapacityOFF,
		FillTimes: make([]time.Duration, n),
	}

	// Build-up: fill the bottleneck queue first (Eq 4), then walk
	// upstream (Eq 5-6). The cascade stops at the first tier whose
	// inflow deficit is non-positive.
	cascade := true
	for i := n - 1; i >= 0; i-- {
		deficit := m.SeenRate(i) - p.CnON
		var slots int
		if i == n-1 {
			slots = m.Tiers[i].Queue
		} else {
			slots = m.Tiers[i].Queue - m.Tiers[i+1].Queue
		}
		if !cascade || deficit <= 0 || slots < 0 {
			p.FillTimes[i] = -1
			cascade = false
			continue
		}
		p.FillTimes[i] = durationFromSeconds(float64(slots) / deficit)
		p.TotalFill = addSat(p.TotalFill, p.FillTimes[i])
	}
	p.QueuesAllFill = cascade

	// Hold-on: damage period (Eq 7) exists only when the cascade
	// completes within the burst.
	if p.QueuesAllFill && a.L > p.TotalFill {
		p.DamagePeriod = a.L - p.TotalFill
	}
	p.Impact = float64(p.DamagePeriod) / float64(a.I)

	// Fade-off: drain of the bottleneck queue (Eq 9) and the
	// millibottleneck period (Eq 10). CheckStability guarantees the
	// drain rate is strictly positive here.
	drainRate := bn.CapacityOFF - bn.ArrivalRate
	p.DrainTime = durationFromSeconds(float64(bn.Queue) / drainRate)
	p.Millibottleneck = a.L + p.DrainTime
	return p, nil
}

// Goal states the attacker's objectives from Section IV: enough damage
// (ρ at or above MinImpact, e.g. 0.05 for "p95 > 1 s with I = 2 s") while
// staying stealthy (millibottleneck no longer than MaxMillibottleneck).
type Goal struct {
	// MinImpact is the minimum acceptable ρ = P_D / I.
	MinImpact float64
	// MaxMillibottleneck bounds P_MB for stealth (e.g. < 1 s).
	MaxMillibottleneck time.Duration
}

// PlanAttack searches for attack parameters meeting the goal at the given
// burst interval. It scans the degradation index downward (stronger
// attacks first would be less stealthy, so it prefers the weakest D that
// works) and derives the burst length from the required damage period.
func PlanAttack(m Model, goal Goal, interval time.Duration) (Attack, error) {
	if err := m.Validate(); err != nil {
		return Attack{}, err
	}
	if interval <= 0 {
		return Attack{}, fmt.Errorf("analytical: interval must be positive, got %v", interval)
	}
	if goal.MinImpact < 0 || goal.MinImpact >= 1 {
		return Attack{}, fmt.Errorf("analytical: MinImpact must be in [0,1), got %v", goal.MinImpact)
	}
	if err := m.CheckStability(); err != nil {
		return Attack{}, err
	}
	if err := m.CheckCondition1(); err != nil {
		return Attack{}, err
	}

	neededDamage := time.Duration(goal.MinImpact * float64(interval))
	var best *Attack
	for d := 0.95; d >= 0; d -= 0.01 {
		candidate := Attack{D: d, L: interval, I: interval}
		if m.CheckCondition2(candidate) != nil {
			continue // attack too weak at this D
		}
		pred, err := m.Predict(candidate)
		if err != nil {
			return Attack{}, err
		}
		if !pred.QueuesAllFill || pred.TotalFill > interval {
			continue
		}
		l := pred.TotalFill + neededDamage
		if l > interval {
			continue // cannot fit the burst in the interval
		}
		candidate.L = l
		pred, err = m.Predict(candidate)
		if err != nil {
			return Attack{}, err
		}
		if pred.Impact < goal.MinImpact {
			continue
		}
		if goal.MaxMillibottleneck > 0 && pred.Millibottleneck > goal.MaxMillibottleneck {
			continue
		}
		// Prefer the weakest feasible attack (largest D) with the
		// shortest burst: first hit wins since we scan D downward.
		cp := candidate
		best = &cp
		break
	}
	if best == nil {
		return Attack{}, ErrInfeasible
	}
	return *best, nil
}

// RUBBoS3Tier returns the model parameters matching the reproduction's
// RUBBoS-style deployment (workload.RUBBoSTiers): Apache, Tomcat, MySQL
// with descending concurrency limits, MySQL as the bottleneck, and arrival
// rates for 3500 users with 7 s mean think time (≈ 500 req/s total, 70%
// touching the database).
func RUBBoS3Tier() Model {
	return Model{Tiers: []Tier{
		{Name: "apache", Queue: 100, CapacityOFF: 3330, ArrivalRate: 50},
		{Name: "tomcat", Queue: 60, CapacityOFF: 1670, ArrivalRate: 100},
		{Name: "mysql", Queue: 25, CapacityOFF: 920, ArrivalRate: 350},
	}}
}
