package queueing

import "fmt"

// SpanKind enumerates the request lifecycle points a Network reports to
// its Observer. Together the kinds reconstruct the full causal path of a
// request: client arrival, per-tier queue-enter/exit, service
// start/preempt/end, the response walk, front-tier drops, and final
// delivery.
type SpanKind uint8

// Span kinds, in rough lifecycle order.
const (
	// SpanSubmit fires when an attempt enters the network (tier = -1).
	// Request.TraceID and Request.Attempt are set; an Observer that
	// tracks per-trace state should claim Request.TraceSlot here.
	SpanSubmit SpanKind = iota
	// SpanTierRequest fires when the request asks tier `tier` for a
	// concurrency slot (before any admission decision).
	SpanTierRequest
	// SpanTierBlocked fires when a full interior tier blocks the request
	// in front of it (RPC back-pressure; queue-enter).
	SpanTierBlocked
	// SpanTierAdmit fires when the tier admits the request (queue-exit
	// from the blocked state, TierArrive stamped).
	SpanTierAdmit
	// SpanStationWait fires when the admitted request must wait for a
	// free service station (queue-enter on the station queue).
	SpanStationWait
	// SpanServiceStart fires when a station begins serving the request
	// (queue-exit; the span between SpanTierRequest and here is the
	// tier's total queueing delay for this attempt).
	SpanServiceStart
	// SpanServicePreempt fires for every in-flight service when the
	// tier's capacity changes mid-service (the fluid-model reconcile
	// that implements millibottleneck bursts and elastic scaling).
	SpanServicePreempt
	// SpanServiceEnd fires when the station finishes the request's work
	// at this tier.
	SpanServiceEnd
	// SpanTierRespond fires when the response leaves the tier on its way
	// back to the client.
	SpanTierRespond
	// SpanDrop fires when the tier sheds the request (front tier, or an
	// interior tier in tandem mode). The logical trace stays open: the
	// client may retransmit the same TraceID.
	SpanDrop
	// SpanComplete fires when the response reaches the client
	// (tier = -1), before the completion callbacks run.
	SpanComplete
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case SpanSubmit:
		return "submit"
	case SpanTierRequest:
		return "tier-request"
	case SpanTierBlocked:
		return "tier-blocked"
	case SpanTierAdmit:
		return "tier-admit"
	case SpanStationWait:
		return "station-wait"
	case SpanServiceStart:
		return "service-start"
	case SpanServicePreempt:
		return "service-preempt"
	case SpanServiceEnd:
		return "service-end"
	case SpanTierRespond:
		return "tier-respond"
	case SpanDrop:
		return "drop"
	case SpanComplete:
		return "complete"
	default:
		return fmt.Sprintf("SpanKind(%d)", uint8(k))
	}
}

// Observer receives every request lifecycle event of a Network through a
// single narrow hook. It runs synchronously on the simulator goroutine at
// the exact virtual time of the event (read it from the engine), so an
// implementation must not mutate the network and must not retain req
// beyond the call — the object is recycled once its trace completes.
//
// The hook is designed for zero-overhead instrumentation: the network
// performs one nil check per lifecycle point when no observer is set, and
// the call itself passes only pointer- and integer-shaped values, so a
// careful implementation (see internal/telemetry) keeps the steady-state
// request path allocation-free with observation enabled.
type Observer interface {
	// Observe handles one lifecycle event. tier is the tier index, or -1
	// for the client-side SpanSubmit/SpanComplete events.
	Observe(req *Request, kind SpanKind, tier int)
}
