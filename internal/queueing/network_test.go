package queueing

import (
	"math"
	"testing"
	"time"

	"memca/internal/sim"
)

// singleTier returns a 1-tier network: queue limit q (Infinite allowed),
// servers s, exponential service with the given mean.
func singleTier(t *testing.T, e *sim.Engine, q, s int, mean time.Duration) *Network {
	t.Helper()
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "only", QueueLimit: q, Servers: s, Service: sim.NewExponential(mean)},
		},
		Classes: []Class{{Name: "basic", Depth: 0}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

// threeTier builds the standard test topology: Apache-like, Tomcat-like,
// MySQL-like with descending queue limits, deterministic or exponential
// service.
func threeTier(t *testing.T, e *sim.Engine, q1, q2, q3 int, det bool) *Network {
	t.Helper()
	mk := func(mean time.Duration) sim.Dist {
		if det {
			return sim.NewDeterministic(mean)
		}
		return sim.NewExponential(mean)
	}
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "apache", QueueLimit: q1, Servers: 2, Service: mk(400 * time.Microsecond)},
			{Name: "tomcat", QueueLimit: q2, Servers: 2, Service: mk(800 * time.Microsecond)},
			{Name: "mysql", QueueLimit: q3, Servers: 1, Service: mk(2 * time.Millisecond)},
		},
		Classes: []Class{{Name: "full", Depth: 2}},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestConfigValidation(t *testing.T) {
	e := sim.NewEngine(1)
	svc := sim.NewExponential(time.Millisecond)
	valid := Config{
		Mode:    ModeNTierRPC,
		Tiers:   []TierConfig{{Name: "a", QueueLimit: 10, Servers: 2, Service: svc}},
		Classes: []Class{{Name: "c", Depth: 0}},
	}
	if _, err := New(e, valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := New(nil, valid); err == nil {
		t.Error("nil engine accepted")
	}

	bad := []Config{
		{Mode: 0, Tiers: valid.Tiers, Classes: valid.Classes},
		{Mode: ModeNTierRPC, Tiers: nil, Classes: valid.Classes},
		{Mode: ModeNTierRPC, Tiers: []TierConfig{{Name: "a", QueueLimit: -1, Servers: 1, Service: svc}}, Classes: valid.Classes},
		{Mode: ModeNTierRPC, Tiers: []TierConfig{{Name: "a", QueueLimit: 1, Servers: 0, Service: svc}}, Classes: valid.Classes},
		{Mode: ModeNTierRPC, Tiers: []TierConfig{{Name: "a", QueueLimit: 1, Servers: 2, Service: svc}}, Classes: valid.Classes},
		{Mode: ModeNTierRPC, Tiers: []TierConfig{{Name: "a", QueueLimit: 1, Servers: 1}}, Classes: valid.Classes},
		{Mode: ModeNTierRPC, Tiers: valid.Tiers, Classes: nil},
		{Mode: ModeNTierRPC, Tiers: valid.Tiers, Classes: []Class{{Name: "c", Depth: 5}}},
		{Mode: ModeNTierRPC, Tiers: valid.Tiers, Classes: []Class{{Name: "c", Depth: 0, DemandScale: []float64{1, 2}}}},
		{Mode: ModeNTierRPC, Tiers: valid.Tiers, Classes: []Class{{Name: "c", Depth: 0, DemandScale: []float64{0}}}},
	}
	for i, cfg := range bad {
		if _, err := New(e, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMM1MeanResponseTime(t *testing.T) {
	// M/M/1 with λ=50/s, μ=100/s: mean sojourn 1/(μ-λ) = 20 ms,
	// utilization 0.5.
	e := sim.NewEngine(7)
	n := singleTier(t, e, Infinite, 1, 10*time.Millisecond)
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 50})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	horizon := 400 * time.Second
	e.Run(horizon)
	src.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}

	mean := src.ClientRT().Mean()
	if mean < 17*time.Millisecond || mean > 23*time.Millisecond {
		t.Errorf("M/M/1 mean RT = %v, want ~20ms", mean)
	}
	util, err := n.TierUtilization(0, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if util < 0.45 || util > 0.55 {
		t.Errorf("M/M/1 utilization = %v, want ~0.5", util)
	}
	if n.Drops() != 0 {
		t.Errorf("infinite queue dropped %d requests", n.Drops())
	}
}

func TestMMcUtilization(t *testing.T) {
	// M/M/4 with λ=200/s, per-server μ=100/s: utilization 0.5.
	e := sim.NewEngine(11)
	n := singleTier(t, e, Infinite, 4, 10*time.Millisecond)
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 200})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	horizon := 200 * time.Second
	e.Run(horizon)
	src.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	util, err := n.TierUtilization(0, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if util < 0.45 || util > 0.55 {
		t.Errorf("M/M/4 utilization = %v, want ~0.5", util)
	}
	// With 4 servers, mean RT is close to the service time at ρ=0.5.
	mean := src.ClientRT().Mean()
	if mean < 10*time.Millisecond || mean > 13*time.Millisecond {
		t.Errorf("M/M/4 mean RT = %v, want ~10.6ms", mean)
	}
}

func TestThroughputEqualsArrivalWhenUnderloaded(t *testing.T) {
	e := sim.NewEngine(3)
	n := singleTier(t, e, Infinite, 1, time.Millisecond)
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 300})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	e.Run(100 * time.Second)
	src.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	got := float64(n.Completed()) / 100
	if got < 285 || got > 315 {
		t.Errorf("throughput %v req/s, want ~300", got)
	}
}

func TestFluidCapacityModulationExact(t *testing.T) {
	// Deterministic 100ms service; halve capacity at t=50ms: the request
	// has 50ms of work left, draining at 0.5, so it completes at 150ms.
	e := sim.NewEngine(1)
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "t", QueueLimit: Infinite, Servers: 1, Service: sim.NewDeterministic(100 * time.Millisecond)},
		},
		Classes: []Class{{Name: "c", Depth: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var done time.Duration
	if _, err := n.Submit(SubmitOpts{Class: 0, OnComplete: func(r *Request) { done = r.Done }}); err != nil {
		t.Fatal(err)
	}
	e.Schedule(50*time.Millisecond, func() {
		if err := n.SetCapacityMultiplier(0, 0.5); err != nil {
			t.Errorf("SetCapacityMultiplier: %v", err)
		}
	})
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if done != 150*time.Millisecond {
		t.Errorf("completion at %v, want 150ms", done)
	}
}

func TestFullStallFreezesService(t *testing.T) {
	// Stall to zero at 30ms, resume at 230ms: 70ms of work remains, so
	// completion lands at 300ms.
	e := sim.NewEngine(1)
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "t", QueueLimit: Infinite, Servers: 1, Service: sim.NewDeterministic(100 * time.Millisecond)},
		},
		Classes: []Class{{Name: "c", Depth: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var done time.Duration
	if _, err := n.Submit(SubmitOpts{Class: 0, OnComplete: func(r *Request) { done = r.Done }}); err != nil {
		t.Fatal(err)
	}
	e.Schedule(30*time.Millisecond, func() { _ = n.SetCapacityMultiplier(0, 0) })
	e.Schedule(230*time.Millisecond, func() { _ = n.SetCapacityMultiplier(0, 1) })
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if done != 300*time.Millisecond {
		t.Errorf("completion at %v, want 300ms", done)
	}
}

func TestTierRTOrderingPerRequest(t *testing.T) {
	// RPC semantics: the front tier's observed latency includes all
	// downstream time, so per request RT_1 >= RT_2 >= RT_3.
	e := sim.NewEngine(5)
	n := threeTier(t, e, 100, 50, 20, false)
	var checked int
	for i := 0; i < 500; i++ {
		delay := time.Duration(i) * 3 * time.Millisecond
		e.Schedule(delay, func() {
			_, err := n.Submit(SubmitOpts{Class: 0, OnComplete: func(r *Request) {
				checked++
				if r.TierRT(0) < r.TierRT(1) || r.TierRT(1) < r.TierRT(2) {
					t.Errorf("tier RT ordering violated: %v %v %v", r.TierRT(0), r.TierRT(1), r.TierRT(2))
				}
			}})
			if err != nil {
				t.Errorf("Submit: %v", err)
			}
		})
	}
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if checked != 500 {
		t.Errorf("completed %d requests, want 500", checked)
	}
}

func TestSlotConservationAfterDrain(t *testing.T) {
	e := sim.NewEngine(9)
	n := threeTier(t, e, 40, 20, 8, false)
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 300, Retransmit: DefaultRetransmit()})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	// Stall the bottleneck periodically to force overflow and drops.
	for i := 0; i < 5; i++ {
		start := time.Duration(i) * 2 * time.Second
		e.Schedule(start, func() { _ = n.SetCapacityMultiplier(2, 0.05) })
		e.Schedule(start+300*time.Millisecond, func() { _ = n.SetCapacityMultiplier(2, 1) })
	}
	e.Run(12 * time.Second)
	src.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n.NumTiers(); i++ {
		st, err := n.TierState(i)
		if err != nil {
			t.Fatal(err)
		}
		if st.InUse != 0 || st.Backlog != 0 || st.BusyStations != 0 {
			t.Errorf("tier %d not drained: %+v", i, st)
		}
	}
	if n.InFlight() != 0 {
		t.Errorf("InFlight = %d after drain", n.InFlight())
	}
	// Every submitted attempt either completed, was retried, or failed.
	if src.Sent() != n.Completed()+src.Retransmissions()+src.Failures() {
		t.Errorf("attempt accounting broken: sent %d, completed %d, retrans %d, failures %d",
			src.Sent(), n.Completed(), src.Retransmissions(), src.Failures())
	}
	if n.Drops() == 0 {
		t.Error("expected front-tier drops under a stalled bottleneck")
	}
}

func TestCrossTierOverflowPropagation(t *testing.T) {
	// Stall the bottleneck completely and watch the queues fill from the
	// back tier toward the front (the paper's build-up stage).
	e := sim.NewEngine(13)
	n := threeTier(t, e, 60, 30, 10, false)
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 400})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	e.Schedule(time.Second, func() { _ = n.SetCapacityMultiplier(2, 0) })

	fullAt := make([]time.Duration, 3)
	var check func()
	check = func() {
		limits := []int{60, 30, 10}
		for i := 0; i < 3; i++ {
			st, err := n.TierState(i)
			if err != nil {
				t.Fatal(err)
			}
			if fullAt[i] == 0 && st.InUse >= limits[i] {
				fullAt[i] = e.Now()
			}
		}
		if e.Now() < 4*time.Second {
			e.Schedule(5*time.Millisecond, check)
		}
	}
	e.Schedule(time.Second, check)
	e.Run(4 * time.Second)
	src.Stop()

	if fullAt[2] == 0 || fullAt[1] == 0 || fullAt[0] == 0 {
		t.Fatalf("queues never filled: %v", fullAt)
	}
	if !(fullAt[2] <= fullAt[1] && fullAt[1] <= fullAt[0]) {
		t.Errorf("overflow did not propagate back-to-front: mysql %v, tomcat %v, apache %v",
			fullAt[2], fullAt[1], fullAt[0])
	}
}

func TestTandemQueuesOnlyAtBottleneck(t *testing.T) {
	// In the tandem baseline the same stall keeps all queued work at the
	// last tier; upstream occupancy stays bounded by its own service.
	e := sim.NewEngine(13)
	n, err := New(e, Config{
		Mode: ModeTandem,
		Tiers: []TierConfig{
			{Name: "apache", QueueLimit: Infinite, Servers: 2, Service: sim.NewExponential(400 * time.Microsecond)},
			{Name: "tomcat", QueueLimit: Infinite, Servers: 2, Service: sim.NewExponential(800 * time.Microsecond)},
			{Name: "mysql", QueueLimit: Infinite, Servers: 1, Service: sim.NewExponential(2 * time.Millisecond)},
		},
		Classes: []Class{{Name: "full", Depth: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 400})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	e.Schedule(time.Second, func() { _ = n.SetCapacityMultiplier(2, 0) })
	e.Run(3 * time.Second)

	front, err := n.TierState(0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := n.TierState(1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := n.TierState(2)
	if err != nil {
		t.Fatal(err)
	}
	if back.InUse < 500 {
		t.Errorf("stalled tandem bottleneck holds %d, want ~800 (2s * 400/s)", back.InUse)
	}
	if front.InUse > 20 || mid.InUse > 20 {
		t.Errorf("tandem upstream tiers accumulated work: apache %d, tomcat %d", front.InUse, mid.InUse)
	}
	src.Stop()
}

func TestFrontTierDropsAndRetransmission(t *testing.T) {
	// A tiny front queue under a hard stall forces drops; with RFC 6298
	// retransmission the client-perceived RT jumps past 1 second.
	e := sim.NewEngine(21)
	n := threeTier(t, e, 20, 10, 4, false)
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 300, Retransmit: DefaultRetransmit()})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	// 500ms stall every 2s.
	for i := 0; i < 6; i++ {
		start := time.Duration(i)*2*time.Second + 500*time.Millisecond
		e.Schedule(start, func() { _ = n.SetCapacityMultiplier(2, 0.02) })
		e.Schedule(start+500*time.Millisecond, func() { _ = n.SetCapacityMultiplier(2, 1) })
	}
	e.Run(13 * time.Second)
	src.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}

	if n.Drops() == 0 {
		t.Fatal("expected drops")
	}
	if src.Retransmissions() == 0 {
		t.Fatal("expected retransmissions")
	}
	// Retried requests carry at least one full RTO.
	if max := src.ClientRT().Max(); max < time.Second {
		t.Errorf("max client RT %v, want >= 1s (RTO floor)", max)
	}
}

func TestRetransmitDisabledCountsFailures(t *testing.T) {
	e := sim.NewEngine(2)
	n := singleTier(t, e, 2, 1, 50*time.Millisecond)
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 200})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	e.Run(2 * time.Second)
	src.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if src.Failures() == 0 {
		t.Error("overloaded loss system produced no failures")
	}
	if src.Retransmissions() != 0 {
		t.Error("retransmissions counted with policy disabled")
	}
}

func TestRetransmitPolicyRTO(t *testing.T) {
	p := DefaultRetransmit()
	if got := p.RTO(1); got != time.Second {
		t.Errorf("RTO(1) = %v, want 1s", got)
	}
	if got := p.RTO(3); got != 4*time.Second {
		t.Errorf("RTO(3) = %v, want 4s", got)
	}
	if got := p.RTO(0); got != time.Second {
		t.Errorf("RTO(0) = %v, want clamped 1s", got)
	}
	// Overflow guard.
	big := RetransmitPolicy{RTOMin: time.Second, Backoff: 10, MaxRetries: 100}
	if got := big.RTO(50); got <= 0 {
		t.Errorf("RTO(50) overflowed: %v", got)
	}
}

func TestDemandScale(t *testing.T) {
	// A class with 3x demand at tier 0 takes 3x the deterministic base.
	e := sim.NewEngine(1)
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "t", QueueLimit: Infinite, Servers: 1, Service: sim.NewDeterministic(10 * time.Millisecond)},
		},
		Classes: []Class{
			{Name: "light", Depth: 0},
			{Name: "heavy", Depth: 0, DemandScale: []float64{3}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var lightRT, heavyRT time.Duration
	if _, err := n.Submit(SubmitOpts{Class: 0, OnComplete: func(r *Request) { lightRT = r.ClientRT() }}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Submit(SubmitOpts{Class: 1, OnComplete: func(r *Request) { heavyRT = r.ClientRT() }}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	if lightRT != 10*time.Millisecond {
		t.Errorf("light RT = %v, want 10ms", lightRT)
	}
	if heavyRT != 30*time.Millisecond {
		t.Errorf("heavy RT = %v, want 30ms", heavyRT)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) (uint64, time.Duration) {
		e := sim.NewEngine(seed)
		n := threeTier(t, e, 60, 30, 10, false)
		src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 200, Retransmit: DefaultRetransmit()})
		if err != nil {
			t.Fatal(err)
		}
		src.Start()
		e.Schedule(time.Second, func() { _ = n.SetCapacityMultiplier(2, 0.05) })
		e.Schedule(1500*time.Millisecond, func() { _ = n.SetCapacityMultiplier(2, 1) })
		e.Run(5 * time.Second)
		src.Stop()
		if err := e.RunAll(0); err != nil {
			t.Fatal(err)
		}
		return n.Completed(), src.ClientRT().Percentile(99)
	}
	c1, p1 := run(42)
	c2, p2 := run(42)
	if c1 != c2 || p1 != p2 {
		t.Errorf("same seed diverged: (%d, %v) vs (%d, %v)", c1, p1, c2, p2)
	}
}

func TestAccessorsRejectOutOfRange(t *testing.T) {
	e := sim.NewEngine(1)
	n := singleTier(t, e, Infinite, 1, time.Millisecond)
	for _, i := range []int{-1, 1} {
		if err := n.SetCapacityMultiplier(i, 0.5); err == nil {
			t.Errorf("SetCapacityMultiplier(%d) accepted", i)
		}
		if _, err := n.CapacityMultiplier(i); err == nil {
			t.Errorf("CapacityMultiplier(%d) accepted", i)
		}
		if _, err := n.TierState(i); err == nil {
			t.Errorf("TierState(%d) accepted", i)
		}
		if _, err := n.TierRT(i); err == nil {
			t.Errorf("TierRT(%d) accepted", i)
		}
		if _, err := n.TierOccupancy(i); err == nil {
			t.Errorf("TierOccupancy(%d) accepted", i)
		}
		if _, err := n.TierBacklog(i); err == nil {
			t.Errorf("TierBacklog(%d) accepted", i)
		}
		if _, err := n.TierBusy(i); err == nil {
			t.Errorf("TierBusy(%d) accepted", i)
		}
		if _, err := n.TierUtilization(i, 0, time.Second); err == nil {
			t.Errorf("TierUtilization(%d) accepted", i)
		}
		if _, err := n.TierName(i); err == nil {
			t.Errorf("TierName(%d) accepted", i)
		}
	}
	if _, err := n.Submit(SubmitOpts{Class: 7}); err == nil {
		t.Error("out-of-range class accepted")
	}
}

func TestSourceValidation(t *testing.T) {
	e := sim.NewEngine(1)
	n := singleTier(t, e, Infinite, 1, time.Millisecond)
	if _, err := NewPoissonSource(nil, SourceConfig{Class: 0, Rate: 1}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewPoissonSource(n, SourceConfig{Class: 5, Rate: 1}); err == nil {
		t.Error("bad class accepted")
	}
	if _, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 1, Retransmit: RetransmitPolicy{RTOMin: time.Second, Backoff: 0.5}}); err == nil {
		t.Error("bad retransmit policy accepted")
	}
}

func TestAnalyticalFillTimeAgreement(t *testing.T) {
	// Cross-validate the simulator against Equation 4: with the
	// bottleneck stalled to C_ON and Poisson arrivals at λ, the time to
	// fill Q_n slots should be about Q_n / (λ - C_ON).
	e := sim.NewEngine(31)
	const (
		qn     = 50
		lambda = 400.0
		cOFF   = 800.0 // servers=1, mean 1.25ms
		d      = 0.1
	)
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "front", QueueLimit: Infinite, Servers: 4, Service: sim.NewExponential(200 * time.Microsecond)},
			{Name: "db", QueueLimit: qn, Servers: 1, Service: sim.NewExponential(1250 * time.Microsecond)},
		},
		Classes: []Class{{Name: "c", Depth: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: lambda})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()

	var stallStart, fullAt time.Duration
	e.Schedule(2*time.Second, func() {
		stallStart = e.Now()
		_ = n.SetCapacityMultiplier(1, d)
	})
	var watch func()
	watch = func() {
		st, err := n.TierState(1)
		if err != nil {
			t.Fatal(err)
		}
		if fullAt == 0 && stallStart > 0 && st.InUse >= qn {
			fullAt = e.Now()
			return
		}
		e.Schedule(time.Millisecond, watch)
	}
	e.Schedule(2*time.Second, watch)
	e.Run(6 * time.Second)
	src.Stop()

	if fullAt == 0 {
		t.Fatal("bottleneck queue never filled")
	}
	got := (fullAt - stallStart).Seconds()
	want := qn / (lambda - d*cOFF)
	if math.Abs(got-want)/want > 0.35 {
		t.Errorf("fill time %.3fs, analytical %.3fs (Eq 4)", got, want)
	}
}

func TestModeString(t *testing.T) {
	if ModeNTierRPC.String() != "ntier-rpc" || ModeTandem.String() != "tandem" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestHopDelayAddsNetworkLatency(t *testing.T) {
	// Deterministic services and a 5ms hop delay: a depth-2 request pays
	// 2 downstream hops + 1 response delivery = 15ms on top of service.
	e := sim.NewEngine(1)
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "a", QueueLimit: Infinite, Servers: 1, Service: sim.NewDeterministic(time.Millisecond)},
			{Name: "b", QueueLimit: Infinite, Servers: 1, Service: sim.NewDeterministic(2 * time.Millisecond)},
			{Name: "c", QueueLimit: Infinite, Servers: 1, Service: sim.NewDeterministic(3 * time.Millisecond)},
		},
		Classes:  []Class{{Name: "full", Depth: 2}},
		HopDelay: sim.NewDeterministic(5 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	var rt time.Duration
	if _, err := n.Submit(SubmitOpts{Class: 0, OnComplete: func(r *Request) { rt = r.ClientRT() }}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	want := 6*time.Millisecond + 15*time.Millisecond
	if rt != want {
		t.Errorf("client RT = %v, want %v (service 6ms + 3 hops)", rt, want)
	}
}

func TestHopDelaySlotConservation(t *testing.T) {
	// With hop delays in play, slots still reconcile to zero on drain.
	e := sim.NewEngine(9)
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "a", QueueLimit: 40, Servers: 2, Service: sim.NewExponential(500 * time.Microsecond)},
			{Name: "b", QueueLimit: 10, Servers: 1, Service: sim.NewExponential(2 * time.Millisecond)},
		},
		Classes:  []Class{{Name: "full", Depth: 1}},
		HopDelay: sim.NewExponential(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 300, Retransmit: DefaultRetransmit()})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	e.Schedule(time.Second, func() { _ = n.SetCapacityMultiplier(1, 0.05) })
	e.Schedule(1500*time.Millisecond, func() { _ = n.SetCapacityMultiplier(1, 1) })
	e.Run(5 * time.Second)
	src.Stop()
	if err := e.RunAll(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.NumTiers(); i++ {
		st, err := n.TierState(i)
		if err != nil {
			t.Fatal(err)
		}
		if st.InUse != 0 || st.Backlog != 0 || st.BusyStations != 0 {
			t.Errorf("tier %d not drained with hop delays: %+v", i, st)
		}
	}
	if n.InFlight() != 0 {
		t.Errorf("in flight after drain: %d", n.InFlight())
	}
}
