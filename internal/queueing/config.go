// Package queueing implements the discrete-event n-tier queueing network at
// the center of the MemCA study: finite per-tier concurrency (thread
// pools), synchronous RPC slot-holding across tiers, multi-server FCFS
// service with fluid capacity modulation (the millibottleneck lever), drop
// at the front tier with TCP retransmission, and a classic tandem-queue
// baseline for comparison (the paper's Figures 6 and 7).
package queueing

import (
	"fmt"
	"time"

	"memca/internal/sim"
	"memca/internal/stats"
)

// Mode selects the inter-tier coupling model.
type Mode int

// Modes.
const (
	// ModeNTierRPC is the paper's system model: a request holds one
	// concurrency slot in every tier it has entered until its response
	// returns, so a full downstream queue back-pressures all upstream
	// tiers and overflow propagates toward the front (Figure 6b).
	ModeNTierRPC Mode = iota + 1
	// ModeTandem is the classic tandem-queue baseline: tiers are
	// independent, a request occupies only its current tier, and queued
	// work piles up exclusively at the bottleneck (Figure 6a).
	ModeTandem
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNTierRPC:
		return "ntier-rpc"
	case ModeTandem:
		return "tandem"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Infinite marks an unbounded queue limit.
const Infinite = 0

// TierConfig describes one tier of the system.
type TierConfig struct {
	// Name labels the tier in reports ("apache", "tomcat", "mysql").
	Name string
	// QueueLimit is Q_i: the maximum number of requests the tier admits
	// concurrently (in service plus waiting), i.e. its thread/connection
	// pool size. Infinite (0) means unbounded.
	QueueLimit int
	// Servers is the number of parallel service stations (vCPUs or
	// worker processes actually executing).
	Servers int
	// Service is the base service-time distribution of one request at
	// this tier at full capacity.
	Service sim.Dist
}

// Validate reports the first tier configuration error, or nil.
func (c TierConfig) Validate() error {
	if c.QueueLimit < 0 {
		return fmt.Errorf("queueing: tier %q QueueLimit must be >= 0, got %d", c.Name, c.QueueLimit)
	}
	if c.Servers <= 0 {
		return fmt.Errorf("queueing: tier %q Servers must be positive, got %d", c.Name, c.Servers)
	}
	if c.Service == nil {
		return fmt.Errorf("queueing: tier %q needs a service-time distribution", c.Name)
	}
	if c.QueueLimit != Infinite && c.QueueLimit < c.Servers {
		return fmt.Errorf("queueing: tier %q QueueLimit %d below Servers %d", c.Name, c.QueueLimit, c.Servers)
	}
	return nil
}

// Class is a request class: how deep into the tier chain it travels and how
// its service demand scales per tier.
type Class struct {
	// Name labels the class ("static", "servlet", "db-read", ...).
	Name string
	// Depth is the index of the deepest tier the class reaches;
	// 0 touches only the front tier.
	Depth int
	// DemandScale multiplies each tier's base service time for this
	// class. Nil means 1.0 everywhere; otherwise it must have Depth+1
	// entries.
	DemandScale []float64
}

// Config assembles a network.
type Config struct {
	// Mode selects RPC slot-holding or the tandem baseline.
	Mode Mode
	// Tiers lists tiers front to back; Tiers[0] faces the clients.
	Tiers []TierConfig
	// Classes lists request classes; Submit refers to them by index.
	Classes []Class
	// HopDelay, when non-nil, models network latency: one sample is
	// added on every downstream hop (tier i to tier i+1) and one on the
	// final response delivery to the client, so a depth-d request pays
	// d+1 samples. The paper's LAN deployments have negligible hop
	// latency; this supports WAN sensitivity studies.
	HopDelay sim.Dist
	// RecordQueues enables exact per-change queue-length time series
	// (memory grows with event count; keep off for long benches).
	RecordQueues bool
	// OnComplete, when non-nil, observes every completed request after
	// metrics are recorded.
	OnComplete func(*Request)
	// OnDrop, when non-nil, observes every request rejected by the full
	// front tier.
	OnDrop func(*Request)
	// Observer, when non-nil, receives every request lifecycle event (see
	// SpanKind). Nil costs one branch per lifecycle point and nothing
	// else, keeping the uninstrumented hot path identical to a network
	// built without observation.
	Observer Observer
	// Arena, when non-nil, backs the per-tier samples and level
	// integrators (and those of sources bound to the network), so a run
	// reuses slab storage instead of growing fresh slices. The caller owns
	// the arena's lifecycle: it must outlive the network and must not be
	// Reset while the network's metrics are still read. Nil keeps plain
	// heap allocation.
	Arena *stats.Arena
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	if c.Mode != ModeNTierRPC && c.Mode != ModeTandem {
		return fmt.Errorf("queueing: unknown mode %v", c.Mode)
	}
	if len(c.Tiers) == 0 {
		return fmt.Errorf("queueing: need at least one tier")
	}
	for _, t := range c.Tiers {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("queueing: need at least one request class")
	}
	for i, cl := range c.Classes {
		if cl.Depth < 0 || cl.Depth >= len(c.Tiers) {
			return fmt.Errorf("queueing: class %d (%s) depth %d out of range [0,%d)", i, cl.Name, cl.Depth, len(c.Tiers))
		}
		if cl.DemandScale != nil && len(cl.DemandScale) != cl.Depth+1 {
			return fmt.Errorf("queueing: class %d (%s) has %d demand scales, want %d", i, cl.Name, len(cl.DemandScale), cl.Depth+1)
		}
		for j, s := range cl.DemandScale {
			if s <= 0 {
				return fmt.Errorf("queueing: class %d (%s) demand scale %d must be positive, got %v", i, cl.Name, j, s)
			}
		}
	}
	return nil
}

// RetransmitPolicy models TCP SYN retransmission for requests dropped by
// the full front tier, per RFC 6298: the initial retransmission timeout is
// at least one second and backs off exponentially.
type RetransmitPolicy struct {
	// RTOMin is the initial retransmission timeout (RFC 6298 floor: 1 s).
	RTOMin time.Duration
	// Backoff multiplies the timeout per successive retry.
	Backoff float64
	// MaxRetries bounds retransmission attempts; beyond it the request
	// fails permanently.
	MaxRetries int
}

// DefaultRetransmit returns the RFC 6298 minimum-RTO policy the paper
// invokes: 1 s initial timeout, doubling, up to 6 retries.
func DefaultRetransmit() RetransmitPolicy {
	return RetransmitPolicy{RTOMin: time.Second, Backoff: 2, MaxRetries: 6}
}

// RTO returns the timeout preceding the given retry attempt (attempt 1 is
// the first retransmission).
func (p RetransmitPolicy) RTO(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	rto := p.RTOMin.Seconds()
	for i := 1; i < attempt; i++ {
		rto *= p.Backoff
	}
	const maxSecs = float64(1<<62) / float64(time.Second)
	if rto > maxSecs {
		rto = maxSecs
	}
	return time.Duration(rto * float64(time.Second))
}

// Validate reports the first policy error, or nil.
func (p RetransmitPolicy) Validate() error {
	if p.RTOMin <= 0 {
		return fmt.Errorf("queueing: RTOMin must be positive, got %v", p.RTOMin)
	}
	if p.Backoff < 1 {
		return fmt.Errorf("queueing: Backoff must be >= 1, got %v", p.Backoff)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("queueing: MaxRetries must be >= 0, got %d", p.MaxRetries)
	}
	return nil
}
