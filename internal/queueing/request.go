package queueing

import "time"

// Request is one client request traveling through the tier chain. Fields
// are written by the network; callers read them from callbacks.
//
// Requests are pooled: once the OnComplete/OnDrop callbacks return, the
// network recycles the object for a later submission. Callbacks must copy
// out any fields they need later and must not retain the pointer. The
// value returned by Submit is likewise only valid until the next Submit on
// the same network.
type Request struct {
	// ID is unique per network, in submission order.
	ID uint64
	// TraceID links the retransmission attempts of one logical client
	// request into a single causal trace. Submit assigns a fresh ID when
	// SubmitOpts.TraceID is zero; retransmitting clients pass the
	// original attempt's TraceID through so per-request telemetry can
	// attribute the full retransmission wait to one trace.
	TraceID uint64
	// TraceSlot is scratch storage reserved for the network's Observer
	// (see Config.Observer): an index into the observer's own per-trace
	// state, claimed at SpanSubmit and read back on later events without
	// any map lookup. The network resets it to -1 between uses and never
	// interprets it; other callers must not touch it.
	TraceSlot int32
	// Class indexes Config.Classes.
	Class int
	// FirstAttempt is when the client first sent the request, across
	// retransmissions; client response time is measured from it.
	FirstAttempt time.Duration
	// Submit is when this attempt entered the network.
	Submit time.Duration
	// Attempt counts retransmissions (0 = first attempt).
	Attempt int
	// Done is when the response reached the client (zero until then).
	Done time.Duration
	// Dropped reports that this attempt was rejected by the full front
	// tier.
	Dropped bool
	// TierArrive[i] is when the request was admitted into tier i. Time
	// spent blocked in front of a full tier i is charged to the upstream
	// tiers (where the request physically waits, holding their threads),
	// mirroring how per-tier latency is measured in real deployments.
	TierArrive []time.Duration
	// TierLeave[i] is when the response left tier i on the way back.
	TierLeave []time.Duration
	// UserData carries caller context (e.g. the emulated client).
	UserData any

	onComplete func(*Request)
	onDrop     func(*Request)
	curTier    int
	// phase tells the network's hop dispatcher what to do with the
	// request when a network-hop event fires.
	phase hopPhase
}

// hopPhase is the pending action carried by a request across a network hop.
type hopPhase uint8

const (
	// hopDescend admits the request into tiers[curTier].
	hopDescend hopPhase = iota
	// hopComplete delivers the response to the client.
	hopComplete
)

// reset clears the request for reuse, keeping the TierArrive/TierLeave
// backing arrays so steady-state submissions allocate nothing. The tier
// slices are resized to depth+1 and zeroed (a recycled request must never
// leak a prior run's timestamps into latency stats).
func (r *Request) reset(depth int) {
	r.ID = 0
	r.TraceID = 0
	r.TraceSlot = -1
	r.Class = 0
	r.FirstAttempt = 0
	r.Submit = 0
	r.Attempt = 0
	r.Done = 0
	r.Dropped = false
	r.TierArrive = resetDurations(r.TierArrive, depth+1)
	r.TierLeave = resetDurations(r.TierLeave, depth+1)
	r.UserData = nil
	r.onComplete = nil
	r.onDrop = nil
	r.curTier = 0
	r.phase = hopDescend
}

// resetDurations returns s resized to n with every element zeroed, reusing
// the backing array when it is large enough.
func resetDurations(s []time.Duration, n int) []time.Duration {
	if cap(s) < n {
		return make([]time.Duration, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// ClientRT returns the response time the end user perceives: completion
// minus first attempt, spanning retransmissions.
func (r *Request) ClientRT() time.Duration { return r.Done - r.FirstAttempt }

// TierRT returns the response time observed at tier i: from the moment the
// request was handed to the tier until its response left it. It returns 0
// for tiers the request never reached.
func (r *Request) TierRT(i int) time.Duration {
	if i < 0 || i >= len(r.TierArrive) || r.TierLeave[i] == 0 {
		return 0
	}
	return r.TierLeave[i] - r.TierArrive[i]
}

// Depth returns the deepest tier index this request visits.
func (r *Request) Depth() int { return len(r.TierArrive) - 1 }
