package queueing

import "time"

// Request is one client request traveling through the tier chain. Fields
// are written by the network; callers read them from callbacks.
type Request struct {
	// ID is unique per network, in submission order.
	ID uint64
	// Class indexes Config.Classes.
	Class int
	// FirstAttempt is when the client first sent the request, across
	// retransmissions; client response time is measured from it.
	FirstAttempt time.Duration
	// Submit is when this attempt entered the network.
	Submit time.Duration
	// Attempt counts retransmissions (0 = first attempt).
	Attempt int
	// Done is when the response reached the client (zero until then).
	Done time.Duration
	// Dropped reports that this attempt was rejected by the full front
	// tier.
	Dropped bool
	// TierArrive[i] is when the request was admitted into tier i. Time
	// spent blocked in front of a full tier i is charged to the upstream
	// tiers (where the request physically waits, holding their threads),
	// mirroring how per-tier latency is measured in real deployments.
	TierArrive []time.Duration
	// TierLeave[i] is when the response left tier i on the way back.
	TierLeave []time.Duration
	// UserData carries caller context (e.g. the emulated client).
	UserData any

	onComplete func(*Request)
	onDrop     func(*Request)
	curTier    int
}

// ClientRT returns the response time the end user perceives: completion
// minus first attempt, spanning retransmissions.
func (r *Request) ClientRT() time.Duration { return r.Done - r.FirstAttempt }

// TierRT returns the response time observed at tier i: from the moment the
// request was handed to the tier until its response left it. It returns 0
// for tiers the request never reached.
func (r *Request) TierRT(i int) time.Duration {
	if i < 0 || i >= len(r.TierArrive) || r.TierLeave[i] == 0 {
		return 0
	}
	return r.TierLeave[i] - r.TierArrive[i]
}

// Depth returns the deepest tier index this request visits.
func (r *Request) Depth() int { return len(r.TierArrive) - 1 }
