package queueing

import (
	"testing"
	"time"

	"memca/internal/sim"
)

// TestSubmitRecycleZeroAllocs pins the request-pooling contract: once the
// pools and stats buffers are warm, a submit → service → complete →
// recycle round trip performs no heap allocations. (Stats-history appends
// still double occasionally; the integer-averaged AllocsPerRun result
// absorbs that amortized tail.)
func TestSubmitRecycleZeroAllocs(t *testing.T) {
	e := sim.NewEngine(11)
	n := singleTier(t, e, Infinite, 1, 50*time.Microsecond)
	completions := 0
	onComplete := func(*Request) { completions++ }
	submitOne := func() {
		if _, err := n.Submit(SubmitOpts{Class: 0, OnComplete: onComplete}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if err := e.RunAll(100); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
	}
	// Warm the request/run pools and grow the stats buffers.
	for i := 0; i < 4096; i++ {
		submitOne()
	}
	allocs := testing.AllocsPerRun(10000, submitOne)
	if allocs != 0 {
		t.Errorf("submit/complete/recycle allocates %v objects/op, want 0", allocs)
	}
	if completions == 0 {
		t.Error("no completions observed")
	}
}

// TestRecycledRequestNoAliasing pins the reset contract: a recycled
// Request must not leak any prior-run field — timestamps, attempt counts,
// user data, or callbacks — into the next submission's statistics.
func TestRecycledRequestNoAliasing(t *testing.T) {
	e := sim.NewEngine(5)
	n := threeTier(t, e, 100, 100, 100, true)

	var firstPtr *Request
	first, err := n.Submit(SubmitOpts{
		Class:        0,
		FirstAttempt: 3 * time.Second,
		Attempt:      4,
		UserData:     "stale-user-data",
		OnComplete:   func(r *Request) { firstPtr = r },
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if first.Attempt != 4 || first.UserData != "stale-user-data" {
		t.Fatalf("submitted request lost its options: %+v", first)
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if firstPtr == nil {
		t.Fatal("first request never completed")
	}

	second, err := n.Submit(SubmitOpts{Class: 0})
	if err != nil {
		t.Fatalf("second Submit: %v", err)
	}
	if second != firstPtr {
		// Pooling should hand the recycled object back; if it ever does
		// not, the aliasing checks below are vacuous, so flag it.
		t.Fatalf("expected recycled request, got a fresh allocation")
	}
	if second.Attempt != 0 {
		t.Errorf("recycled Attempt = %d, want 0", second.Attempt)
	}
	if second.UserData != nil {
		t.Errorf("recycled UserData = %v, want nil", second.UserData)
	}
	if second.Done != 0 {
		t.Errorf("recycled Done = %v, want 0", second.Done)
	}
	if second.Dropped {
		t.Error("recycled Dropped = true, want false")
	}
	if second.FirstAttempt != e.Now() {
		t.Errorf("recycled FirstAttempt = %v, want now (%v)", second.FirstAttempt, e.Now())
	}
	// The prior run visited three tiers and stamped all six timestamps;
	// none may survive into the new attempt beyond the fresh admission.
	for i, at := range second.TierArrive {
		if i > 0 && at != 0 {
			t.Errorf("recycled TierArrive[%d] = %v, want 0", i, at)
		}
	}
	for i, lv := range second.TierLeave {
		if lv != 0 {
			t.Errorf("recycled TierLeave[%d] = %v, want 0", i, lv)
		}
	}
	if rt := second.TierRT(2); rt != 0 {
		t.Errorf("recycled TierRT(2) = %v, want 0 before the tier is reached", rt)
	}
}
