package queueing

import (
	"testing"
	"testing/quick"
	"time"

	"memca/internal/sim"
)

// TestRandomTopologyConservation drives randomly shaped networks with
// random attack bursts and verifies the global invariants: every tier
// drains to zero, and every request is accounted for exactly once
// (completed, retried, or failed).
func TestRandomTopologyConservation(t *testing.T) {
	f := func(seed int64, tierRaw, qRaw [4]uint8, rateRaw uint16, dRaw, lRaw uint8) bool {
		numTiers := int(tierRaw[0]%4) + 1
		tiers := make([]TierConfig, 0, numTiers)
		prevQ := 256
		for i := 0; i < numTiers; i++ {
			servers := int(tierRaw[i]%3) + 1
			q := int(qRaw[i]%100) + servers + 1
			if q >= prevQ {
				q = prevQ - 1 // descending limits keep condition 1
			}
			if q < servers {
				q = servers
			}
			prevQ = q
			mean := time.Duration(int(qRaw[i])%2000+200) * time.Microsecond
			tiers = append(tiers, TierConfig{
				Name:       string(rune('a' + i)),
				QueueLimit: q,
				Servers:    servers,
				Service:    sim.NewExponential(mean),
			})
		}
		classes := []Class{{Name: "deep", Depth: numTiers - 1}}

		e := sim.NewEngine(seed)
		n, err := New(e, Config{Mode: ModeNTierRPC, Tiers: tiers, Classes: classes})
		if err != nil {
			return false
		}
		rate := float64(rateRaw%400) + 50
		src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: rate, Retransmit: DefaultRetransmit()})
		if err != nil {
			return false
		}
		src.Start()

		// One random burst against the back tier.
		d := float64(dRaw%50) / 100 // 0..0.49
		l := time.Duration(int(lRaw)%800+50) * time.Millisecond
		e.Schedule(time.Second, func() { _ = n.SetCapacityMultiplier(numTiers-1, d) })
		e.Schedule(time.Second+l, func() { _ = n.SetCapacityMultiplier(numTiers-1, 1) })

		e.Run(4 * time.Second)
		src.Stop()
		if err := e.RunAll(10_000_000); err != nil {
			return false
		}

		for i := 0; i < n.NumTiers(); i++ {
			st, err := n.TierState(i)
			if err != nil || st.InUse != 0 || st.Backlog != 0 || st.BusyStations != 0 {
				return false
			}
		}
		if n.InFlight() != 0 {
			return false
		}
		return src.Sent() == n.Completed()+src.Retransmissions()+src.Failures()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRandomTopologyTierRTOrdering verifies the per-request latency
// ordering invariant (upstream >= downstream) under random shapes.
func TestRandomTopologyTierRTOrdering(t *testing.T) {
	f := func(seed int64, meanRaw [3]uint8) bool {
		e := sim.NewEngine(seed)
		tiers := make([]TierConfig, 3)
		for i := range tiers {
			tiers[i] = TierConfig{
				Name:       string(rune('a' + i)),
				QueueLimit: 60 - 20*i,
				Servers:    2,
				Service:    sim.NewExponential(time.Duration(int(meanRaw[i])%1500+100) * time.Microsecond),
			}
		}
		n, err := New(e, Config{
			Mode:    ModeNTierRPC,
			Tiers:   tiers,
			Classes: []Class{{Name: "c", Depth: 2}},
		})
		if err != nil {
			return false
		}
		ok := true
		src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: 150})
		if err != nil {
			return false
		}
		src.Start()
		e.Schedule(500*time.Millisecond, func() { _ = n.SetCapacityMultiplier(2, 0.1) })
		e.Schedule(800*time.Millisecond, func() { _ = n.SetCapacityMultiplier(2, 1) })
		e.Run(2 * time.Second)
		src.Stop()
		if err := e.RunAll(10_000_000); err != nil {
			return false
		}
		// Ordering is checked via the tier samples' maxima: the front
		// tier's worst case dominates the back tier's.
		for i := 1; i < 3; i++ {
			up, err1 := n.TierRT(i - 1)
			down, err2 := n.TierRT(i)
			if err1 != nil || err2 != nil {
				return false
			}
			if down.Len() > 0 && up.Max() < down.Max() {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
