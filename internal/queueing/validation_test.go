package queueing

import (
	"math"
	"testing"
	"time"

	"memca/internal/analytical"
	"memca/internal/sim"
)

// TestSimulatorMatchesErlangC cross-validates the simulator's steady state
// against the closed-form M/M/c results for several utilization levels:
// the OFF periods of a MemCA attack are plain M/M/c systems, so this
// anchors the substrate to textbook queueing theory.
func TestSimulatorMatchesErlangC(t *testing.T) {
	cases := []struct {
		name    string
		lambda  float64
		mu      float64
		servers int
		horizon time.Duration
	}{
		{"mm1-light", 30, 100, 1, 300 * time.Second},
		// High utilization converges slowly (long autocorrelated busy
		// periods), so the heavy case gets a much longer horizon.
		{"mm1-heavy", 80, 100, 1, 3000 * time.Second},
		{"mm2", 150, 100, 2, 500 * time.Second},
		{"mm4", 300, 100, 4, 500 * time.Second},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			q, err := analytical.NewMMc(tc.lambda, tc.mu, tc.servers)
			if err != nil {
				t.Fatal(err)
			}
			e := sim.NewEngine(42)
			mean := time.Duration(float64(time.Second) / tc.mu)
			n, err := New(e, Config{
				Mode: ModeNTierRPC,
				Tiers: []TierConfig{
					{Name: "q", QueueLimit: Infinite, Servers: tc.servers, Service: sim.NewExponential(mean)},
				},
				Classes: []Class{{Name: "c", Depth: 0}},
			})
			if err != nil {
				t.Fatal(err)
			}
			src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: tc.lambda})
			if err != nil {
				t.Fatal(err)
			}
			src.Start()
			horizon := tc.horizon
			e.Run(horizon)
			src.Stop()
			if err := e.RunAll(0); err != nil {
				t.Fatal(err)
			}

			gotW := src.ClientRT().Mean().Seconds()
			wantW := q.MeanResponse().Seconds()
			if math.Abs(gotW-wantW)/wantW > 0.1 {
				t.Errorf("mean response %vs, Erlang-C %vs", gotW, wantW)
			}
			gotU, err := n.TierUtilization(0, 0, horizon)
			if err != nil {
				t.Fatal(err)
			}
			wantU := q.Utilization()
			if math.Abs(gotU-wantU) > 0.05 {
				t.Errorf("utilization %v, want %v", gotU, wantU)
			}
		})
	}
}

// TestSimulatorMatchesDrainTime cross-validates Equation 9: after a full
// stall ends, the bottleneck queue drains in about Q_n / (C_OFF - λ).
func TestSimulatorMatchesDrainTime(t *testing.T) {
	const (
		qn     = 40
		lambda = 300.0
		mu     = 600.0 // 1 server
	)
	e := sim.NewEngine(11)
	n, err := New(e, Config{
		Mode: ModeNTierRPC,
		Tiers: []TierConfig{
			{Name: "db", QueueLimit: qn, Servers: 1, Service: sim.NewExponentialRate(mu)},
		},
		Classes: []Class{{Name: "c", Depth: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No retransmission: Equation 9 models the drain under the
	// legitimate arrival rate only. (With retries the drops from the
	// stall period return as an extra wave and stretch the drain — a
	// real effect, but not the one Eq 9 isolates.)
	src, err := NewPoissonSource(n, SourceConfig{Class: 0, Rate: lambda})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	// Stall long enough to fill the queue completely.
	e.Schedule(2*time.Second, func() { _ = n.SetCapacityMultiplier(0, 0) })
	e.Schedule(4*time.Second, func() { _ = n.SetCapacityMultiplier(0, 1) })

	var drainedAt time.Duration
	var watch func()
	watch = func() {
		st, err := n.TierState(0)
		if err != nil {
			t.Fatal(err)
		}
		// Drained when occupancy returns to a normal M/M/1 level.
		if drainedAt == 0 && e.Now() > 4*time.Second && st.InUse <= 3 {
			drainedAt = e.Now()
			return
		}
		if e.Now() < 10*time.Second {
			e.Schedule(2*time.Millisecond, watch)
		}
	}
	e.Schedule(4*time.Second, watch)
	e.Run(10 * time.Second)
	src.Stop()

	if drainedAt == 0 {
		t.Fatal("queue never drained")
	}
	got := (drainedAt - 4*time.Second).Seconds()
	want := qn / (mu - lambda) // Eq 9
	if math.Abs(got-want)/want > 0.5 {
		t.Errorf("drain time %.3fs, Eq 9 predicts %.3fs", got, want)
	}
}
