package queueing

import (
	"time"

	"memca/internal/sim"
	"memca/internal/stats"
)

// serviceRun tracks one request being served by a station, with the fluid
// remaining-work bookkeeping that lets the network retarget completion
// times when the tier's capacity multiplier changes mid-service.
//
// Runs are pooled on the network and linked into their tier's in-service
// list (an intrusive doubly-linked list in admission order — deterministic,
// unlike map iteration, and allocation-free, unlike map inserts).
type serviceRun struct {
	req *Request
	// remaining is the work left, in seconds of service at full rate.
	remaining float64
	// lastUpdate is the last time remaining was reconciled.
	lastUpdate time.Duration
	ev         sim.Event

	prev, next *serviceRun
}

// tier is one stage of the network. All mutation happens on the simulator
// goroutine.
type tier struct {
	cfg TierConfig
	idx int
	net *Network

	// mult is the current capacity multiplier: work drains at mult*scale
	// work-seconds per second. 1 = full capacity; the MemCA burst sets
	// the victim tier below 1 (C_ON = D * C_OFF).
	mult float64
	// scale is the elastic-scaling factor (instances relative to the
	// initial fleet); it composes multiplicatively with mult so an
	// attack and a scale-out can coexist.
	scale float64

	inUse          int // admitted slots (held until response in RPC mode)
	waitingService reqRing
	pendingAdmit   reqRing
	// runsHead/runsTail anchor the in-service list in admission order.
	runsHead, runsTail *serviceRun
	busyStations       int

	occupancy *stats.LevelIntegrator // slots in use over time
	backlog   *stats.LevelIntegrator // requests blocked in front of the tier
	busy      *stats.LevelIntegrator // busy stations over time
	rt        *stats.Sample          // per-request tier response times

	completions uint64
	drops       uint64 // tandem-mode drops at this tier
}

func newTier(cfg TierConfig, idx int, net *Network) *tier {
	a := net.cfg.Arena
	return &tier{
		cfg:       cfg,
		idx:       idx,
		net:       net,
		mult:      1,
		scale:     1,
		occupancy: stats.NewLevelIntegratorIn(a),
		backlog:   stats.NewLevelIntegratorIn(a),
		busy:      stats.NewLevelIntegratorIn(a),
		rt:        stats.NewSampleIn(a, 1024),
	}
}

// Act dispatches a completion event for one in-service run: tiers are the
// sim.Actor for their own service completions, so the per-service event
// carries no closure.
//
//memca:hotpath
func (t *tier) Act(arg any) { t.serviceDone(arg.(*serviceRun)) }

func (t *tier) now() time.Duration { return t.net.engine.Now() }

func (t *tier) full() bool {
	return t.cfg.QueueLimit != Infinite && t.inUse >= t.cfg.QueueLimit
}

// requestSlot is the entry point into the tier. TierArrive is stamped at
// admission (see admit): a request blocked in front of a full tier is
// still *inside* the upstream tier — holding its thread while waiting for
// a downstream connection — so the wait counts toward upstream latency,
// which is exactly how the paper's per-tier response times amplify from
// the back tier to the front.
func (t *tier) requestSlot(req *Request) {
	t.net.observe(req, SpanTierRequest, t.idx)
	if !t.full() {
		t.admit(req)
		return
	}
	if t.idx == 0 {
		// The front tier sheds load: the connection is refused and the
		// client's TCP stack will retransmit after its RTO.
		t.drops++
		req.Dropped = true
		t.net.drops++
		t.net.observe(req, SpanDrop, t.idx)
		t.net.notifyDrop(req)
		return
	}
	if t.net.cfg.Mode == ModeTandem {
		// Independent tiers have no upstream to hold the request; a
		// finite interior queue in tandem mode is a loss queue.
		t.drops++
		req.Dropped = true
		t.net.drops++
		t.net.observe(req, SpanDrop, t.idx)
		t.net.notifyDrop(req)
		return
	}
	// RPC mode: the request blocks here, still holding its slots in
	// every upstream tier — this is the cross-tier back-pressure that
	// propagates queue overflow toward the front.
	t.net.observe(req, SpanTierBlocked, t.idx)
	t.pendingAdmit.push(req)
	t.backlog.Set(t.now(), float64(t.pendingAdmit.len()))
}

func (t *tier) admit(req *Request) {
	req.TierArrive[t.idx] = t.now()
	t.net.observe(req, SpanTierAdmit, t.idx)
	t.inUse++
	t.occupancy.Set(t.now(), float64(t.inUse))
	if t.busyStations < t.cfg.Servers {
		t.startService(req)
		return
	}
	t.net.observe(req, SpanStationWait, t.idx)
	t.waitingService.push(req)
}

func (t *tier) startService(req *Request) {
	t.net.observe(req, SpanServiceStart, t.idx)
	t.busyStations++
	t.busy.Set(t.now(), float64(t.busyStations))
	base := t.cfg.Service.Sample(t.net.engine.Rand())
	scale := 1.0
	class := t.net.cfg.Classes[req.Class]
	if class.DemandScale != nil {
		scale = class.DemandScale[t.idx]
	}
	run := t.net.getRun()
	run.req = req
	run.remaining = base.Seconds() * scale
	run.lastUpdate = t.now()
	t.linkRun(run)
	t.scheduleCompletion(run)
}

// linkRun appends run to the in-service list.
func (t *tier) linkRun(run *serviceRun) {
	run.prev = t.runsTail
	run.next = nil
	if t.runsTail != nil {
		t.runsTail.next = run
	} else {
		t.runsHead = run
	}
	t.runsTail = run
}

// unlinkRun removes run from the in-service list.
func (t *tier) unlinkRun(run *serviceRun) {
	if run.prev != nil {
		run.prev.next = run.next
	} else {
		t.runsHead = run.next
	}
	if run.next != nil {
		run.next.prev = run.prev
	} else {
		t.runsTail = run.prev
	}
	run.prev, run.next = nil, nil
}

// rate returns the tier's current drain rate in work-seconds per second.
func (t *tier) rate() float64 { return t.mult * t.scale }

// scheduleCompletion (re)schedules the completion event for run based on
// its remaining work and the tier's current rate.
func (t *tier) scheduleCompletion(run *serviceRun) {
	run.ev.Cancel()
	run.ev = sim.Event{}
	r := t.rate()
	if r <= 0 {
		return // fully stalled; rescheduled when capacity returns
	}
	delay := time.Duration(run.remaining / r * float64(time.Second))
	run.ev = t.net.engine.ScheduleCall(delay, t, run)
}

// reconcileTo books the work done at the old rate into every in-flight
// service, installs the new capacity factors, and reschedules completions
// at the new rate (fluid model). The list is walked in admission order, so
// the rescheduled events' tie-break sequence is deterministic. Taking both
// factors as plain values (rather than an apply closure) keeps the
// per-burst rate-change path allocation-free.
func (t *tier) reconcileTo(mult, scale float64) {
	now := t.now()
	oldRate := t.rate()
	for run := t.runsHead; run != nil; run = run.next {
		elapsed := (now - run.lastUpdate).Seconds()
		run.remaining -= elapsed * oldRate
		if run.remaining < 0 {
			run.remaining = 0
		}
		run.lastUpdate = now
		t.net.observe(run.req, SpanServicePreempt, t.idx)
	}
	t.mult = mult
	t.scale = scale
	for run := t.runsHead; run != nil; run = run.next {
		t.scheduleCompletion(run)
	}
}

// setMultiplier changes the tier's capacity multiplier, preserving
// in-flight work. It runs on every attack-burst edge.
//
//memca:hotpath
func (t *tier) setMultiplier(m float64) {
	if m < 0 {
		m = 0
	}
	if stats.ApproxEqual(m, t.mult) {
		return
	}
	t.reconcileTo(m, t.scale)
}

// setScale changes the tier's elastic-scaling factor, preserving in-flight
// work.
//
//memca:hotpath
func (t *tier) setScale(s float64) {
	if s < 0 {
		s = 0
	}
	if stats.ApproxEqual(s, t.scale) {
		return
	}
	t.reconcileTo(t.mult, s)
}

func (t *tier) serviceDone(run *serviceRun) {
	req := run.req
	t.net.observe(req, SpanServiceEnd, t.idx)
	t.unlinkRun(run)
	t.net.putRun(run)
	t.busyStations--
	t.busy.Set(t.now(), float64(t.busyStations))
	if t.waitingService.len() > 0 {
		t.startService(t.waitingService.pop())
	}

	if t.net.cfg.Mode == ModeTandem {
		// Independent tiers: leave this one entirely, then move on.
		req.TierLeave[t.idx] = t.now()
		t.net.observe(req, SpanTierRespond, t.idx)
		t.rt.Add(req.TierRT(t.idx))
		t.completions++
		t.releaseSlot()
		t.net.advance(req, t.idx)
		return
	}
	// RPC mode: keep the slot; descend or respond.
	t.net.advance(req, t.idx)
}

// respond is called in RPC mode when the request's deepest tier finished:
// the response propagates back through this tier instantly, releasing its
// slot.
func (t *tier) respond(req *Request) {
	req.TierLeave[t.idx] = t.now()
	t.net.observe(req, SpanTierRespond, t.idx)
	t.rt.Add(req.TierRT(t.idx))
	t.completions++
	t.releaseSlot()
}

// releaseSlot frees one concurrency slot and, in RPC mode, admits the head
// of the blocked backlog if any.
func (t *tier) releaseSlot() {
	t.inUse--
	t.occupancy.Set(t.now(), float64(t.inUse))
	if t.pendingAdmit.len() > 0 && !t.full() {
		next := t.pendingAdmit.pop()
		t.backlog.Set(t.now(), float64(t.pendingAdmit.len()))
		t.admit(next)
	}
}
