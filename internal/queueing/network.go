package queueing

import (
	"fmt"
	"time"

	"memca/internal/sim"
	"memca/internal/stats"
)

// Network is an n-tier queueing system bound to a simulation engine. It is
// single-threaded: all methods must run on the simulator goroutine (inside
// engine callbacks or between engine runs).
//
// The steady-state request path allocates nothing: Request objects and
// service runs are recycled through free lists, tier queues are ring
// buffers, and network-hop events use the engine's Actor path instead of
// closures.
type Network struct {
	engine *sim.Engine
	cfg    Config
	tiers  []*tier
	// obs receives lifecycle events when set (see Config.Observer); a
	// nil observer costs one predictable branch per lifecycle point.
	obs Observer

	nextID uint64
	// nextTraceID assigns trace identities to fresh (non-retransmitted)
	// submissions; IDs start at 1 so zero always means "unset".
	nextTraceID uint64
	drops       uint64
	completed   uint64
	inFlight    int

	// freeReqs and freeRuns are the recycling pools. Objects are reset on
	// checkout, so a recycled Request still carries its final field values
	// until reused (Submit's return value stays readable until the next
	// Submit).
	freeReqs []*Request
	freeRuns []*serviceRun
}

// New builds a network from the configuration.
func New(engine *sim.Engine, cfg Config) (*Network, error) {
	if engine == nil {
		return nil, fmt.Errorf("queueing: engine must not be nil")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{engine: engine, cfg: cfg, obs: cfg.Observer}
	n.tiers = make([]*tier, len(cfg.Tiers))
	for i, tc := range cfg.Tiers {
		n.tiers[i] = newTier(tc, i, n)
	}
	return n, nil
}

// reqBlock is how many requests a pool refill allocates at once. Blocks
// turn the cold-pool ramp (thousands of in-flight requests for a large
// client population) into two allocations each instead of three per
// request.
const reqBlock = 64

// getRequest checks a request out of the pool, reset for a class of the
// given depth.
func (n *Network) getRequest(depth int) *Request {
	if len(n.freeReqs) == 0 {
		n.growRequests()
	}
	k := len(n.freeReqs)
	req := n.freeReqs[k-1]
	n.freeReqs = n.freeReqs[:k-1]
	req.reset(depth)
	return req
}

// growRequests refills the pool with one block of requests whose
// TierArrive/TierLeave slices are carved from a single backing slab, each
// with capacity for the deepest class so Request.reset never reallocates.
func (n *Network) growRequests() {
	width := len(n.tiers)
	reqs := make([]Request, reqBlock)
	backing := make([]time.Duration, reqBlock*2*width)
	for i := range reqs {
		off := i * 2 * width
		reqs[i].TierArrive = backing[off : off : off+width]
		reqs[i].TierLeave = backing[off+width : off+width : off+2*width]
		n.freeReqs = append(n.freeReqs, &reqs[i])
	}
}

// putRequest returns a finished request to the pool. Callbacks have
// already run; the object must not be referenced by the caller afterwards.
func (n *Network) putRequest(req *Request) {
	// Drop the callback references eagerly so the pool doesn't pin
	// caller state between submissions.
	req.onComplete = nil
	req.onDrop = nil
	req.UserData = nil
	n.freeReqs = append(n.freeReqs, req)
}

// getRun checks a service run out of the pool.
func (n *Network) getRun() *serviceRun {
	if k := len(n.freeRuns); k > 0 {
		run := n.freeRuns[k-1]
		n.freeRuns = n.freeRuns[:k-1]
		return run
	}
	return &serviceRun{}
}

// putRun recycles a completed service run.
func (n *Network) putRun(run *serviceRun) {
	run.req = nil
	run.ev = sim.Event{}
	n.freeRuns = append(n.freeRuns, run)
}

// Engine returns the bound simulation engine.
func (n *Network) Engine() *sim.Engine { return n.engine }

// NumTiers returns the number of tiers.
func (n *Network) NumTiers() int { return len(n.tiers) }

// NumClasses returns the number of configured request classes.
func (n *Network) NumClasses() int { return len(n.cfg.Classes) }

// SubmitOpts parameterizes one request submission.
type SubmitOpts struct {
	// Class indexes Config.Classes.
	Class int
	// FirstAttempt is the client's original send time; zero means "now".
	FirstAttempt time.Duration
	// Attempt is the retransmission count (0 = first).
	Attempt int
	// TraceID carries the logical trace identity across retransmission
	// attempts; zero makes Submit assign a fresh one. Retransmitting
	// clients must echo the dropped attempt's Request.TraceID here so
	// observers can stitch the attempts into one trace.
	TraceID uint64
	// UserData is carried on the request.
	UserData any
	// OnComplete fires when the response reaches the client. The *Request
	// is recycled once the callback returns; copy fields out, do not
	// retain the pointer.
	OnComplete func(*Request)
	// OnDrop fires when the front tier rejects the request, under the
	// same no-retention rule as OnComplete.
	OnDrop func(*Request)
}

// Submit injects a request at the front tier. The drop decision is made
// synchronously: a request rejected by a full front tier has its OnDrop
// callback invoked before Submit returns. The returned *Request comes from
// the network's recycling pool and is only valid for reading until the
// next Submit.
func (n *Network) Submit(opts SubmitOpts) (*Request, error) {
	if opts.Class < 0 || opts.Class >= len(n.cfg.Classes) {
		return nil, fmt.Errorf("queueing: class %d out of range [0,%d)", opts.Class, len(n.cfg.Classes))
	}
	now := n.engine.Now()
	first := opts.FirstAttempt
	if first == 0 {
		first = now
	}
	req := n.getRequest(n.cfg.Classes[opts.Class].Depth)
	req.ID = n.nextID
	req.Class = opts.Class
	req.FirstAttempt = first
	req.Submit = now
	req.Attempt = opts.Attempt
	req.UserData = opts.UserData
	req.onComplete = opts.OnComplete
	req.onDrop = opts.OnDrop
	n.nextID++
	if opts.TraceID != 0 {
		req.TraceID = opts.TraceID
	} else {
		n.nextTraceID++
		req.TraceID = n.nextTraceID
	}
	n.inFlight++
	n.observe(req, SpanSubmit, -1)
	n.tiers[0].requestSlot(req)
	return req, nil
}

// observe dispatches one lifecycle event to the configured observer.
func (n *Network) observe(req *Request, kind SpanKind, tier int) {
	if n.obs != nil {
		n.obs.Observe(req, kind, tier)
	}
}

// advance moves a request that finished service at tier i: deeper if the
// class descends further, otherwise back to the client.
func (n *Network) advance(req *Request, i int) {
	depth := n.cfg.Classes[req.Class].Depth
	if i < depth {
		req.curTier = i + 1
		req.phase = hopDescend
		n.afterHop(req)
		return
	}
	// Deepest tier done: in RPC mode the response releases every held
	// slot from the back to the front; in tandem mode tiers were already
	// released one by one. The held slots free immediately (the threads
	// unblock as the response passes); only the client-delivery hop is
	// delayed.
	if n.cfg.Mode == ModeNTierRPC {
		for j := i; j >= 0; j-- {
			n.tiers[j].respond(req)
		}
	}
	req.phase = hopComplete
	n.afterHop(req)
}

// afterHop dispatches the request's pending phase now, or after one
// network-hop delay when configured.
func (n *Network) afterHop(req *Request) {
	if n.cfg.HopDelay == nil {
		n.hopArrive(req)
		return
	}
	n.engine.ScheduleCall(n.cfg.HopDelay.Sample(n.engine.Rand()), n, req)
}

// Act makes the network the sim.Actor for its hop events: arg is the
// *Request in flight, whose phase field says what the hop delivers.
//
//memca:hotpath
func (n *Network) Act(arg any) { n.hopArrive(arg.(*Request)) }

// hopArrive lands a request after a hop: either into the next tier on the
// way down, or at the client with the finished response.
func (n *Network) hopArrive(req *Request) {
	if req.phase == hopDescend {
		n.tiers[req.curTier].requestSlot(req)
		return
	}
	req.Done = n.engine.Now()
	n.completed++
	n.inFlight--
	n.observe(req, SpanComplete, -1)
	if req.onComplete != nil {
		req.onComplete(req)
	}
	if n.cfg.OnComplete != nil {
		n.cfg.OnComplete(req)
	}
	n.putRequest(req)
}

// notifyDrop records and dispatches a front-tier rejection, then recycles
// the request.
func (n *Network) notifyDrop(req *Request) {
	n.inFlight--
	if req.onDrop != nil {
		req.onDrop(req)
	}
	if n.cfg.OnDrop != nil {
		n.cfg.OnDrop(req)
	}
	n.putRequest(req)
}

// SetCapacityMultiplier scales tier i's service rate: 1 is full capacity
// C_OFF, the MemCA ON-burst sets the victim tier to the degradation index
// D so that C_ON = D * C_OFF. In-flight work is preserved (fluid model).
func (n *Network) SetCapacityMultiplier(i int, mult float64) error {
	if i < 0 || i >= len(n.tiers) {
		return fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	n.tiers[i].setMultiplier(mult)
	return nil
}

// CapacityMultiplier returns tier i's current multiplier.
func (n *Network) CapacityMultiplier(i int) (float64, error) {
	if i < 0 || i >= len(n.tiers) {
		return 0, fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	return n.tiers[i].mult, nil
}

// SetCapacityScale sets tier i's elastic-scaling factor: the tier's
// aggregate service rate becomes scale * multiplier * C_OFF. An auto
// scaler growing a fleet from 1 to k instances sets scale = k.
func (n *Network) SetCapacityScale(i int, scale float64) error {
	if i < 0 || i >= len(n.tiers) {
		return fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	n.tiers[i].setScale(scale)
	return nil
}

// CapacityScale returns tier i's current elastic-scaling factor.
func (n *Network) CapacityScale(i int) (float64, error) {
	if i < 0 || i >= len(n.tiers) {
		return 0, fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	return n.tiers[i].scale, nil
}

// ResetTierSamples discards the accumulated per-tier response-time
// samples in place (e.g. after a warm-up phase), keeping their backing
// storage. Level integrators keep their full history since utilization
// queries are windowed.
func (n *Network) ResetTierSamples() {
	for _, t := range n.tiers {
		t.rt.Reset()
	}
}

// Drops returns the number of requests rejected so far.
func (n *Network) Drops() uint64 { return n.drops }

// Completed returns the number of requests that finished.
func (n *Network) Completed() uint64 { return n.completed }

// InFlight returns the number of requests currently inside the network.
func (n *Network) InFlight() int { return n.inFlight }

// TierSnapshot is a read-only view of one tier's state and metrics.
type TierSnapshot struct {
	Name string
	// InUse is the current number of held concurrency slots.
	InUse int
	// Backlog is the number of requests blocked in front of the tier.
	Backlog int
	// BusyStations is the number of stations serving right now.
	BusyStations int
	// Completions counts responses the tier has returned.
	Completions uint64
	// Drops counts rejections at this tier (front tier, or interior
	// tiers in tandem mode).
	Drops uint64
}

// TierState returns a snapshot of tier i.
func (n *Network) TierState(i int) (TierSnapshot, error) {
	if i < 0 || i >= len(n.tiers) {
		return TierSnapshot{}, fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	t := n.tiers[i]
	return TierSnapshot{
		Name:         t.cfg.Name,
		InUse:        t.inUse,
		Backlog:      t.pendingAdmit.len(),
		BusyStations: t.busyStations,
		Completions:  t.completions,
		Drops:        t.drops,
	}, nil
}

// TierRT returns the response-time sample of tier i (shared, do not
// mutate).
func (n *Network) TierRT(i int) (*stats.Sample, error) {
	if i < 0 || i >= len(n.tiers) {
		return nil, fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	return n.tiers[i].rt, nil
}

// TierOccupancy returns the exact slots-in-use level integrator of tier i.
func (n *Network) TierOccupancy(i int) (*stats.LevelIntegrator, error) {
	if i < 0 || i >= len(n.tiers) {
		return nil, fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	return n.tiers[i].occupancy, nil
}

// TierBacklog returns the blocked-in-front level integrator of tier i.
func (n *Network) TierBacklog(i int) (*stats.LevelIntegrator, error) {
	if i < 0 || i >= len(n.tiers) {
		return nil, fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	return n.tiers[i].backlog, nil
}

// TierBusy returns the busy-stations level integrator of tier i; dividing
// its window averages by Servers yields CPU utilization, the signal the
// monitoring experiments sample at different granularities.
func (n *Network) TierBusy(i int) (*stats.LevelIntegrator, error) {
	if i < 0 || i >= len(n.tiers) {
		return nil, fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	return n.tiers[i].busy, nil
}

// TierUtilization returns tier i's CPU utilization over [from, to).
func (n *Network) TierUtilization(i int, from, to time.Duration) (float64, error) {
	if i < 0 || i >= len(n.tiers) {
		return 0, fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	t := n.tiers[i]
	return t.busy.WindowAverage(from, to) / float64(t.cfg.Servers), nil
}

// TierName returns tier i's configured name.
func (n *Network) TierName(i int) (string, error) {
	if i < 0 || i >= len(n.tiers) {
		return "", fmt.Errorf("queueing: tier %d out of range [0,%d)", i, len(n.tiers))
	}
	return n.tiers[i].cfg.Name, nil
}
