package queueing

import (
	"fmt"
	"testing"
	"time"

	"memca/internal/sim"
)

// fingerprintRun drives the standard 3-tier topology under a Poisson
// source for 30 virtual seconds and serializes every externally visible
// metric — completion/drop/retransmission counters, the raw client RT
// sample, per-tier RT samples and occupancy integrals — into one string.
// Byte-identical fingerprints mean the run was reproduced exactly.
func fingerprintRun(t *testing.T, seed int64) string {
	t.Helper()
	e := sim.NewEngine(seed)
	n := threeTier(t, e, 60, 30, 15, false)
	src, err := NewPoissonSource(n, SourceConfig{
		Class: 0,
		Rate:  400,
		Retransmit: RetransmitPolicy{
			RTOMin:     200 * time.Millisecond,
			Backoff:    2,
			MaxRetries: 3,
		},
	})
	if err != nil {
		t.Fatalf("NewPoissonSource: %v", err)
	}
	src.Start()
	// A mid-run capacity dip exercises the fluid-reconciliation path too.
	e.Schedule(10*time.Second, func() {
		if err := n.SetCapacityMultiplier(2, 0.3); err != nil {
			t.Errorf("SetCapacityMultiplier: %v", err)
		}
	})
	e.Schedule(12*time.Second, func() {
		if err := n.SetCapacityMultiplier(2, 1.0); err != nil {
			t.Errorf("SetCapacityMultiplier: %v", err)
		}
	})
	e.Run(30 * time.Second)
	src.Stop()

	fp := fmt.Sprintf("sent=%d retrans=%d failures=%d completed=%d drops=%d inflight=%d processed=%d\n",
		src.Sent(), src.Retransmissions(), src.Failures(),
		n.Completed(), n.Drops(), n.InFlight(), e.Processed())
	fp += fmt.Sprintf("clientRT=%v\n", src.ClientRT().Values())
	for i := 0; i < n.NumTiers(); i++ {
		rt, err := n.TierRT(i)
		if err != nil {
			t.Fatalf("TierRT(%d): %v", i, err)
		}
		occ, err := n.TierOccupancy(i)
		if err != nil {
			t.Fatalf("TierOccupancy(%d): %v", i, err)
		}
		fp += fmt.Sprintf("tier%d rt=%v occ=%.17g\n", i, rt.Values(), occ.Integral(30*time.Second))
	}
	return fp
}

// TestSeedDeterminism is the regression test for the invariant memca-lint
// exists to protect: the same seed must reproduce a run byte for byte,
// and a different seed must actually change it.
func TestSeedDeterminism(t *testing.T) {
	a := fingerprintRun(t, 7)
	b := fingerprintRun(t, 7)
	if a != b {
		t.Errorf("same seed produced different runs:\nrun1: %.200s...\nrun2: %.200s...", a, b)
	}
	c := fingerprintRun(t, 8)
	if a == c {
		t.Error("different seeds produced byte-identical runs; randomness is not flowing from the seed")
	}
}
