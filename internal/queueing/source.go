package queueing

import (
	"fmt"
	"time"

	"memca/internal/sim"
	"memca/internal/stats"
)

// SourceConfig parameterizes an open-loop Poisson request source with
// TCP-style retransmission on drop, matching the paper's model analysis
// setup (Poisson arrivals per tier class).
type SourceConfig struct {
	// Class indexes the network's request classes.
	Class int
	// Rate is the arrival rate in requests/second.
	Rate float64
	// Retransmit governs retry behaviour for dropped requests. A zero
	// value (RTOMin == 0) disables retransmission: drops are final.
	Retransmit RetransmitPolicy
}

// srcRetrans is one pending retransmission, pooled so that the drop-retry
// path stays allocation-free.
type srcRetrans struct {
	first   time.Duration
	attempt int
	traceID uint64
}

// Source generates Poisson arrivals into a network and records the
// client-perceived response times, including retransmission delays. The
// steady-state arrival path performs no allocations: the inter-arrival
// distribution is hoisted, submissions reuse prebuilt callbacks, and both
// arrival and retransmission events ride the engine's Actor path.
type Source struct {
	engine  *sim.Engine
	network *Network
	cfg     SourceConfig
	gap     sim.Exponential

	running  bool
	stopped  bool
	clientRT *stats.Sample

	onComplete func(*Request)
	onDrop     func(*Request)
	freeRecs   []*srcRetrans

	sent     uint64
	retrans  uint64
	failures uint64
}

// NewPoissonSource binds a source to a network. Call Start to begin
// arrivals.
func NewPoissonSource(network *Network, cfg SourceConfig) (*Source, error) {
	if network == nil {
		return nil, fmt.Errorf("queueing: network must not be nil")
	}
	if cfg.Class < 0 || cfg.Class >= len(network.cfg.Classes) {
		return nil, fmt.Errorf("queueing: source class %d out of range [0,%d)", cfg.Class, len(network.cfg.Classes))
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("queueing: source rate must be positive, got %v", cfg.Rate)
	}
	if cfg.Retransmit.RTOMin != 0 {
		if err := cfg.Retransmit.Validate(); err != nil {
			return nil, err
		}
	}
	s := &Source{
		engine:   network.engine,
		network:  network,
		cfg:      cfg,
		gap:      sim.NewExponentialRate(cfg.Rate),
		clientRT: stats.NewSampleIn(network.cfg.Arena, 1024),
	}
	s.onComplete = func(req *Request) { s.clientRT.Add(req.ClientRT()) }
	s.onDrop = func(req *Request) { s.handleDrop(req) }
	return s, nil
}

// Start begins generating arrivals. It is idempotent.
func (s *Source) Start() {
	if s.running {
		return
	}
	s.running = true
	s.stopped = false
	s.scheduleNext()
}

// Stop halts future arrivals; in-flight requests complete normally.
func (s *Source) Stop() {
	s.stopped = true
	s.running = false
}

func (s *Source) scheduleNext() {
	s.engine.ScheduleCall(s.gap.Sample(s.engine.Rand()), s, nil)
}

// Act makes the source the sim.Actor for its own events: a nil arg is the
// next Poisson arrival, a *srcRetrans is a due retransmission.
func (s *Source) Act(arg any) {
	if arg == nil {
		if s.stopped {
			return
		}
		s.fire(0, 0, 0)
		s.scheduleNext()
		return
	}
	rec := arg.(*srcRetrans)
	first, attempt, traceID := rec.first, rec.attempt, rec.traceID
	s.freeRecs = append(s.freeRecs, rec)
	if s.stopped {
		return
	}
	s.fire(first, attempt, traceID)
}

// fire submits one attempt. firstAttempt is zero for fresh requests;
// traceID carries the original attempt's trace across retransmissions.
func (s *Source) fire(firstAttempt time.Duration, attempt int, traceID uint64) {
	s.sent++
	_, err := s.network.Submit(SubmitOpts{
		Class:        s.cfg.Class,
		FirstAttempt: firstAttempt,
		Attempt:      attempt,
		TraceID:      traceID,
		OnComplete:   s.onComplete,
		OnDrop:       s.onDrop,
	})
	if err != nil {
		// Class was validated at construction; a failure here is a bug.
		panic(err)
	}
}

func (s *Source) handleDrop(req *Request) {
	if s.cfg.Retransmit.RTOMin == 0 {
		s.failures++
		return
	}
	next := req.Attempt + 1
	if next > s.cfg.Retransmit.MaxRetries {
		s.failures++
		return
	}
	s.retrans++
	rto := s.cfg.Retransmit.RTO(next)
	var rec *srcRetrans
	if k := len(s.freeRecs); k > 0 {
		rec = s.freeRecs[k-1]
		s.freeRecs = s.freeRecs[:k-1]
	} else {
		rec = &srcRetrans{}
	}
	rec.first = req.FirstAttempt
	rec.attempt = next
	rec.traceID = req.TraceID
	s.engine.ScheduleCall(rto, s, rec)
}

// ClientRT returns the sample of end-user response times (shared, do not
// mutate).
func (s *Source) ClientRT() *stats.Sample { return s.clientRT }

// Sent returns the number of submit attempts (including retransmissions).
func (s *Source) Sent() uint64 { return s.sent }

// Retransmissions returns how many drops were retried.
func (s *Source) Retransmissions() uint64 { return s.retrans }

// Failures returns how many requests exhausted their retries (or were
// dropped with retransmission disabled).
func (s *Source) Failures() uint64 { return s.failures }
