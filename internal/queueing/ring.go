package queueing

// reqRing is a FIFO queue of requests over a reusable circular buffer.
// The capacity is always a power of two so the index math is a mask; the
// buffer grows on demand and is then reused forever, keeping steady-state
// push/pop allocation-free.
type reqRing struct {
	buf  []*Request
	head int
	n    int
}

// len returns the number of queued requests.
func (q *reqRing) len() int { return q.n }

// push appends r at the tail.
func (q *reqRing) push(r *Request) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = r
	q.n++
}

// pop removes and returns the head. It panics on an empty ring (callers
// always check len first).
func (q *reqRing) pop() *Request {
	if q.n == 0 {
		panic("queueing: pop from empty ring")
	}
	r := q.buf[q.head]
	q.buf[q.head] = nil // do not retain the request past its dequeue
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return r
}

// grow doubles the buffer, unwrapping the ring so head restarts at 0.
func (q *reqRing) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 8
	}
	next := make([]*Request, size)
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = next
	q.head = 0
}
