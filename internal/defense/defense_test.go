package defense

import (
	"testing"
	"time"

	"memca/internal/stats"
)

// memcaSignal builds a utilization source with saturation bursts of the
// given length every interval, over a base load.
func memcaSignal(length, interval time.Duration, base float64, bursts int) func(from, to time.Duration) float64 {
	b := stats.NewBusyIntegrator()
	for i := 0; i < bursts; i++ {
		start := time.Duration(i) * interval
		b.SetBusy(start, true)
		b.SetBusy(start+length, false)
	}
	return func(from, to time.Duration) float64 {
		u := b.Utilization(from, to)
		return u + (1-u)*base
	}
}

func TestDetectorConfigValidate(t *testing.T) {
	if err := DefaultDetector().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []DetectorConfig{
		{Granularity: 0, SaturationLevel: 0.9},
		{Granularity: time.Second, SaturationLevel: 0},
		{Granularity: time.Second, SaturationLevel: 1.5},
		{Granularity: time.Second, SaturationLevel: 0.9, MinLength: -time.Second},
		{Granularity: time.Second, SaturationLevel: 0.9, PerSampleOverhead: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDetector(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDetectorFindsMillibottlenecks(t *testing.T) {
	d, err := NewDetector(DefaultDetector())
	if err != nil {
		t.Fatal(err)
	}
	src := memcaSignal(500*time.Millisecond, 2*time.Second, 0.4, 10)
	episodes, err := d.Detect(src, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(episodes) != 10 {
		t.Fatalf("found %d episodes, want 10", len(episodes))
	}
	for i, e := range episodes {
		if e.Length < 400*time.Millisecond || e.Length > 600*time.Millisecond {
			t.Errorf("episode %d length %v, want ~500ms", i, e.Length)
		}
		want := time.Duration(i) * 2 * time.Second
		if e.Start < want-100*time.Millisecond || e.Start > want+100*time.Millisecond {
			t.Errorf("episode %d starts at %v, want ~%v", i, e.Start, want)
		}
	}
}

func TestDetectorIgnoresShortBlips(t *testing.T) {
	d, err := NewDetector(DefaultDetector()) // MinLength = 100ms
	if err != nil {
		t.Fatal(err)
	}
	src := memcaSignal(50*time.Millisecond, 2*time.Second, 0.3, 10)
	episodes, err := d.Detect(src, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(episodes) != 0 {
		t.Errorf("flagged %d sub-threshold blips", len(episodes))
	}
}

func TestDetectorMissesAtCoarseGranularity(t *testing.T) {
	// The stealthiness argument: 1-second windows dilute a 500ms burst
	// to ~70% utilization over a 40% base — below the saturation level.
	cfg := DefaultDetector()
	cfg.Granularity = time.Second
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := memcaSignal(500*time.Millisecond, 2*time.Second, 0.4, 10)
	episodes, err := d.Detect(src, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(episodes) != 0 {
		t.Errorf("coarse detector found %d episodes, want 0", len(episodes))
	}
}

func TestDetectorEpisodeSpansHorizonEnd(t *testing.T) {
	d, err := NewDetector(DefaultDetector())
	if err != nil {
		t.Fatal(err)
	}
	// Saturated for the entire horizon: one long episode, flushed at end.
	src := func(from, to time.Duration) float64 { return 1 }
	episodes, err := d.Detect(src, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(episodes) != 1 || episodes[0].Length < 4900*time.Millisecond {
		t.Errorf("open episode not flushed correctly: %+v", episodes)
	}
}

func TestOverheadFraction(t *testing.T) {
	fine := DefaultDetector()
	coarse := fine
	coarse.Granularity = time.Second
	// 20x more samples at 50ms → 20x the overhead.
	ratio := fine.OverheadFraction() / coarse.OverheadFraction()
	if ratio < 19.9 || ratio > 20.1 {
		t.Errorf("overhead ratio %v, want 20", ratio)
	}
	// The calibrated default keeps 1s sampling well under the 1% budget
	// and 50ms sampling near it.
	if coarse.OverheadFraction() > 0.001 {
		t.Errorf("1s overhead %v, want < 0.1%%", coarse.OverheadFraction())
	}
	if fine.OverheadFraction() < 0.0005 {
		t.Errorf("50ms overhead %v, should be material", fine.OverheadFraction())
	}
}

func TestClassifyPulsatingAttack(t *testing.T) {
	var episodes []Millibottleneck
	for i := 0; i < 10; i++ {
		episodes = append(episodes, Millibottleneck{
			Start:  time.Duration(i) * 2 * time.Second,
			Length: 500 * time.Millisecond,
		})
	}
	c := Classify(episodes, 5)
	if !c.PulsatingAttack {
		t.Errorf("periodic episodes not classified as attack: %+v", c)
	}
	if c.MeanInterval < 1900*time.Millisecond || c.MeanInterval > 2100*time.Millisecond {
		t.Errorf("mean interval %v, want ~2s", c.MeanInterval)
	}
	if c.IntervalCV > 0.01 {
		t.Errorf("interval CV %v for perfectly periodic input", c.IntervalCV)
	}
}

func TestClassifyOrganicSpikes(t *testing.T) {
	// Irregular gaps: organic load, not an attack.
	starts := []time.Duration{0, 3 * time.Second, 4 * time.Second, 11 * time.Second, 12 * time.Second, 25 * time.Second}
	var episodes []Millibottleneck
	for _, s := range starts {
		episodes = append(episodes, Millibottleneck{Start: s, Length: 300 * time.Millisecond})
	}
	c := Classify(episodes, 5)
	if c.PulsatingAttack {
		t.Errorf("irregular spikes classified as attack (CV = %v)", c.IntervalCV)
	}
}

func TestClassifyDegenerateInputs(t *testing.T) {
	if c := Classify(nil, 5); c.PulsatingAttack || c.Episodes != 0 {
		t.Error("empty input misclassified")
	}
	one := []Millibottleneck{{Start: 0, Length: time.Second}}
	if c := Classify(one, 5); c.PulsatingAttack {
		t.Error("single episode classified as attack")
	}
}

func TestClassifyLongEpisodesNotMemCA(t *testing.T) {
	// Periodic but multi-second saturations: a batch job, not a
	// millibottleneck attack.
	var episodes []Millibottleneck
	for i := 0; i < 10; i++ {
		episodes = append(episodes, Millibottleneck{
			Start:  time.Duration(i) * 10 * time.Second,
			Length: 5 * time.Second,
		})
	}
	if c := Classify(episodes, 5); c.PulsatingAttack {
		t.Error("long periodic saturations classified as MemCA")
	}
}
