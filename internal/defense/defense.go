// Package defense explores the countermeasure space the paper's
// conclusion calls for: a fine-grained millibottleneck detector with an
// explicit overhead budget (the reason clouds don't already run one), an
// ON-OFF pattern classifier that attributes detected millibottlenecks to
// a pulsating attack, and an evaluation harness for the two isolation
// primitives modelled in memmodel (bandwidth reservation and split-lock
// protection) — which have the instructive asymmetry that partitioning
// stops bus saturation but not bus locks, while split-lock protection
// stops exactly the lock attack.
package defense

import (
	"fmt"
	"math"
	"time"

	"memca/internal/monitor"
)

// Millibottleneck is one detected transient saturation episode.
type Millibottleneck struct {
	// Start is when the saturation began.
	Start time.Duration
	// Length is how long it lasted.
	Length time.Duration
}

// DetectorConfig parameterizes the millibottleneck detector.
type DetectorConfig struct {
	// Granularity is the sampling period (fine: 50 ms).
	Granularity time.Duration
	// SaturationLevel is the utilization above which a window counts as
	// saturated.
	SaturationLevel float64
	// MinLength is the shortest episode worth reporting.
	MinLength time.Duration
	// PerSampleOverhead is the monitoring cost of one sample as a
	// fraction of one core-second (models the agent's CPU draw).
	PerSampleOverhead float64
}

// DefaultDetector returns a 50 ms detector flagging >=95% windows lasting
// at least 100 ms, with a per-sample cost calibrated so 1-second sampling
// costs ~0.005% and 50 ms sampling ~0.1% of a core.
func DefaultDetector() DetectorConfig {
	return DetectorConfig{
		Granularity:       50 * time.Millisecond,
		SaturationLevel:   0.95,
		MinLength:         100 * time.Millisecond,
		PerSampleOverhead: 5e-5,
	}
}

// Validate reports the first configuration error, or nil.
func (c DetectorConfig) Validate() error {
	switch {
	case c.Granularity <= 0:
		return fmt.Errorf("defense: Granularity must be positive, got %v", c.Granularity)
	case c.SaturationLevel <= 0 || c.SaturationLevel > 1:
		return fmt.Errorf("defense: SaturationLevel must be in (0,1], got %v", c.SaturationLevel)
	case c.MinLength < 0:
		return fmt.Errorf("defense: MinLength must be non-negative, got %v", c.MinLength)
	case c.PerSampleOverhead < 0:
		return fmt.Errorf("defense: PerSampleOverhead must be non-negative, got %v", c.PerSampleOverhead)
	}
	return nil
}

// OverheadFraction returns the monitoring cost as a fraction of one core:
// samples/second x per-sample cost. Providers budget under 1% (the paper
// cites Kambadur et al.), which rules out fine granularity fleet-wide and
// opens the MemCA window in the first place.
func (c DetectorConfig) OverheadFraction() float64 {
	return float64(time.Second) / float64(c.Granularity) * c.PerSampleOverhead
}

// Detector finds millibottlenecks in a utilization signal.
type Detector struct {
	cfg DetectorConfig
}

// NewDetector validates and builds a detector.
func NewDetector(cfg DetectorConfig) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Detect samples the source over [0, horizon) at the detector's
// granularity and returns every saturation episode of at least MinLength.
func (d *Detector) Detect(source monitor.UtilizationSource, horizon time.Duration) ([]Millibottleneck, error) {
	sampler, err := monitor.NewSampler("defense", d.cfg.Granularity, source)
	if err != nil {
		return nil, err
	}
	buckets, err := sampler.Collect(horizon)
	if err != nil {
		return nil, err
	}
	var out []Millibottleneck
	var openStart time.Duration
	open := false
	flush := func(end time.Duration) {
		if !open {
			return
		}
		open = false
		if length := end - openStart; length >= d.cfg.MinLength {
			out = append(out, Millibottleneck{Start: openStart, Length: length})
		}
	}
	// A single sub-threshold window inside a burst must not split the
	// episode in two; tolerate gaps up to two sampling periods.
	mergeGap := 2 * d.cfg.Granularity
	gap := time.Duration(0)
	for _, b := range buckets {
		if b.Mean >= d.cfg.SaturationLevel {
			if !open {
				open = true
				openStart = b.Start
			}
			gap = 0
			continue
		}
		if open {
			gap += d.cfg.Granularity
			if gap > mergeGap {
				flush(b.Start - gap + d.cfg.Granularity)
				gap = 0
			}
		}
	}
	flush(horizon - gap)
	return out, nil
}

// Classification summarizes what the detected episodes look like.
type Classification struct {
	// Episodes is the number of millibottlenecks found.
	Episodes int
	// MeanLength and MeanInterval describe the ON-OFF pattern.
	MeanLength   time.Duration
	MeanInterval time.Duration
	// IntervalCV is the coefficient of variation of inter-episode gaps:
	// a pulsating attack is near-periodic (CV << 1), organic load
	// spikes are not.
	IntervalCV float64
	// PulsatingAttack is the verdict: many near-periodic short episodes.
	// The gap CV threshold is deliberately loose (0.5): a MemCA attack's
	// footprint includes retransmission-echo millibottlenecks ~1 RTO
	// after each burst, which interleave with the bursts themselves.
	PulsatingAttack bool
}

// Classify inspects detected millibottlenecks for the MemCA signature:
// at least minEpisodes short episodes at near-regular intervals.
func Classify(episodes []Millibottleneck, minEpisodes int) Classification {
	c := Classification{Episodes: len(episodes)}
	if len(episodes) == 0 {
		return c
	}
	var lengthSum time.Duration
	for _, e := range episodes {
		lengthSum += e.Length
	}
	c.MeanLength = lengthSum / time.Duration(len(episodes))

	if len(episodes) < 2 {
		return c
	}
	gaps := make([]float64, 0, len(episodes)-1)
	var gapSum float64
	for i := 1; i < len(episodes); i++ {
		g := (episodes[i].Start - episodes[i-1].Start).Seconds()
		gaps = append(gaps, g)
		gapSum += g
	}
	mean := gapSum / float64(len(gaps))
	c.MeanInterval = time.Duration(mean * float64(time.Second))
	var varSum float64
	for _, g := range gaps {
		varSum += (g - mean) * (g - mean)
	}
	if mean > 0 {
		c.IntervalCV = math.Sqrt(varSum/float64(len(gaps))) / mean
	}
	c.PulsatingAttack = len(episodes) >= minEpisodes && c.IntervalCV < 0.5 && c.MeanLength < time.Second
	return c
}
