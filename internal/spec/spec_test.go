package spec

import (
	"strings"
	"testing"
	"time"
)

func TestRUBBoSSystemValid(t *testing.T) {
	sys := RUBBoSSystem()
	if err := sys.Validate(); err != nil {
		t.Fatalf("RUBBoS system rejected: %v", err)
	}
	if err := sys.CheckCondition1(); err != nil {
		t.Fatalf("RUBBoS system violates condition 1: %v", err)
	}
}

func TestRUBBoSModelMatchesAnalytical(t *testing.T) {
	// The spec-derived model must reproduce the hand-written
	// analytical.RUBBoS3Tier parameters: same queues, capacities within
	// 1.5% (the demand factors are rounded), arrival rates from the mix.
	m, err := RUBBoSSystem().Model(Traffic{Clients: 3500, ThinkTime: 7 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	wantQueues := []int{100, 60, 25}
	wantCaps := []float64{3330, 1670, 920}
	for i, tier := range m.Tiers {
		if tier.Queue != wantQueues[i] {
			t.Errorf("tier %d queue = %d, want %d", i, tier.Queue, wantQueues[i])
		}
		if rel := (tier.CapacityOFF - wantCaps[i]) / wantCaps[i]; rel > 0.015 || rel < -0.015 {
			t.Errorf("tier %d capacity = %v, want ~%v", i, tier.CapacityOFF, wantCaps[i])
		}
	}
	total := 0.0
	for _, tier := range m.Tiers {
		total += tier.ArrivalRate
	}
	if total < 495 || total > 505 {
		t.Errorf("total arrival rate = %v, want ~500", total)
	}
}

func TestTierSpecPooling(t *testing.T) {
	tier := TierSpec{Name: "db", Threads: 25, Servers: 2, Service: 1600 * time.Microsecond, Replicas: 3}
	if got := tier.PooledThreads(); got != 75 {
		t.Errorf("PooledThreads = %d, want 75", got)
	}
	if got := tier.PooledServers(); got != 6 {
		t.Errorf("PooledServers = %d, want 6", got)
	}
	// Zero-value Replicas and DemandFactor behave as 1.
	zero := TierSpec{Name: "db", Threads: 25, Servers: 2, Service: 1600 * time.Microsecond}
	if got := zero.PooledServers(); got != 2 {
		t.Errorf("zero-value PooledServers = %d, want 2", got)
	}
	if cap3 := tier.Capacity(); cap3 != 3*zero.Capacity() {
		t.Errorf("capacity does not scale with replicas: %v vs 3 x %v", cap3, zero.Capacity())
	}
}

func TestSystemPooledFoldsReplicas(t *testing.T) {
	sys, err := RUBBoSSystem().WithReplicas([]int{2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	pooled := sys.Pooled()
	for i, tier := range pooled.Tiers {
		if tier.Replicas != 1 {
			t.Errorf("pooled tier %d replicas = %d", i, tier.Replicas)
		}
		if tier.Threads != sys.Tiers[i].PooledThreads() {
			t.Errorf("pooled tier %d threads = %d, want %d", i, tier.Threads, sys.Tiers[i].PooledThreads())
		}
		if got, want := tier.Capacity(), sys.Tiers[i].Capacity(); got < want*0.999 || got > want*1.001 {
			t.Errorf("pooled tier %d capacity = %v, want %v", i, got, want)
		}
	}
}

func TestTrafficForecast(t *testing.T) {
	tr := Traffic{Clients: 1000, ThinkTime: 2 * time.Second, Growth: 1.5, Diurnal: []float64{0.4, 1.0, 1.2, 0.7}}
	if got := tr.OfferedRate(); got != 500 {
		t.Errorf("OfferedRate = %v, want 500", got)
	}
	if got, want := tr.PeakMultiplier(), 1.8; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("PeakMultiplier = %v, want %v", got, want)
	}
	if got, want := tr.PeakRate(), 900.0; got < want-1e-6 || got > want+1e-6 {
		t.Errorf("PeakRate = %v, want %v", got, want)
	}
	peak := tr.AtPeak()
	if peak.Clients != 1800 {
		t.Errorf("AtPeak clients = %d, want 1800", peak.Clients)
	}
	if peak.PeakMultiplier() != 1 {
		t.Errorf("AtPeak must flatten the forecast, got multiplier %v", peak.PeakMultiplier())
	}
	// A diurnal trough never lowers the sizing point below the base.
	trough := Traffic{Clients: 1000, ThinkTime: 2 * time.Second, Diurnal: []float64{0.2, 0.5}}
	if got := trough.PeakMultiplier(); got != 1 {
		t.Errorf("trough-only diurnal multiplier = %v, want 1", got)
	}
}

func TestTierRates(t *testing.T) {
	tr := Traffic{Clients: 700, ThinkTime: time.Second, TierMix: []float64{0.1, 0.2, 0.7}}
	rates, err := tr.TierRates(3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{70, 140, 490}
	for i := range want {
		if rates[i] < want[i]-1e-9 || rates[i] > want[i]+1e-9 {
			t.Errorf("rates = %v, want ~%v", rates, want)
			break
		}
	}
	// Default mix only exists for 3 tiers.
	if _, err := (Traffic{Clients: 1, ThinkTime: time.Second}).TierRates(2); err == nil {
		t.Error("expected error for default mix on 2 tiers")
	}
	if _, err := tr.TierRates(2); err == nil {
		t.Error("expected error for mix length mismatch")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"threads", TierSpec{Name: "t", Servers: 1, Service: time.Millisecond}.Validate()},
		{"servers", TierSpec{Name: "t", Threads: 4, Service: time.Millisecond}.Validate()},
		{"threads<servers", TierSpec{Name: "t", Threads: 2, Servers: 4, Service: time.Millisecond}.Validate()},
		{"service", TierSpec{Name: "t", Threads: 4, Servers: 2}.Validate()},
		{"empty system", System{}.Validate()},
		{"clients", Traffic{ThinkTime: time.Second}.Validate()},
		{"think", Traffic{Clients: 1}.Validate()},
		{"mix sum", Traffic{Clients: 1, ThinkTime: time.Second, TierMix: []float64{0.5, 0.4}}.Validate()},
		{"slo target", SLO{MaxDropRate: 0.1}.Validate()},
		{"slo drop", SLO{TargetRT: time.Second, MaxDropRate: 1}.Validate()},
		{"slo percentile", SLO{Percentile: 100, TargetRT: time.Second}.Validate()},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
	if err := DefaultSLO().Validate(); err != nil {
		t.Errorf("default SLO rejected: %v", err)
	}
	if got := DefaultSLO().EffectivePercentile(); got != 99 {
		t.Errorf("default percentile = %v", got)
	}
	if got := (SLO{}).EffectivePercentile(); got != 99 {
		t.Errorf("zero-value percentile = %v", got)
	}
}

func TestCondition1Violation(t *testing.T) {
	sys, err := RUBBoSSystem().WithReplicas([]int{1, 2, 1}) // tomcat pooled 120 > apache 100
	if err != nil {
		t.Fatal(err)
	}
	err = sys.CheckCondition1()
	if err == nil || !strings.Contains(err.Error(), "condition 1") {
		t.Errorf("CheckCondition1 = %v", err)
	}
}
