package spec

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// PlanJSON is the file-facing planning schema: one document carrying the
// system templates, the traffic forecast, and the SLO. Durations are Go
// duration strings ("600us", "7s"); omitted sections fall back to the
// RUBBoS defaults.
type PlanJSON struct {
	System *struct {
		Tiers []struct {
			Name         string  `json:"name"`
			Threads      int     `json:"threads"`
			Servers      int     `json:"servers"`
			Service      string  `json:"service"`
			DemandFactor float64 `json:"demand_factor,omitempty"`
			Replicas     int     `json:"replicas,omitempty"`
		} `json:"tiers"`
	} `json:"system,omitempty"`

	Traffic *struct {
		Clients   int       `json:"clients"`
		ThinkTime string    `json:"think_time"`
		Growth    float64   `json:"growth,omitempty"`
		Diurnal   []float64 `json:"diurnal,omitempty"`
		TierMix   []float64 `json:"tier_mix,omitempty"`
	} `json:"traffic,omitempty"`

	SLO *struct {
		Percentile  float64 `json:"percentile,omitempty"`
		TargetRT    string  `json:"target_rt"`
		MaxDropRate float64 `json:"max_drop_rate"`
	} `json:"slo,omitempty"`
}

// LoadPlan reads a PlanJSON file and resolves it into validated specs.
func LoadPlan(path string) (System, Traffic, SLO, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return System{}, Traffic{}, SLO{}, fmt.Errorf("spec: reading plan: %w", err)
	}
	var j PlanJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return System{}, Traffic{}, SLO{}, fmt.Errorf("spec: parsing plan %s: %w", path, err)
	}
	return j.Resolve()
}

// parseDur parses a duration string, returning def for empty input.
func parseDur(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("spec: bad duration %q: %w", s, err)
	}
	return d, nil
}

// Resolve converts the file schema into validated specs, filling missing
// sections with the RUBBoS defaults.
func (j PlanJSON) Resolve() (System, Traffic, SLO, error) {
	fail := func(err error) (System, Traffic, SLO, error) {
		return System{}, Traffic{}, SLO{}, err
	}

	sys := RUBBoSSystem()
	if j.System != nil {
		sys = System{}
		for _, t := range j.System.Tiers {
			service, err := parseDur(t.Service, 0)
			if err != nil {
				return fail(err)
			}
			sys.Tiers = append(sys.Tiers, TierSpec{
				Name:         t.Name,
				Threads:      t.Threads,
				Servers:      t.Servers,
				Service:      service,
				DemandFactor: t.DemandFactor,
				Replicas:     t.Replicas,
			})
		}
	}
	if err := sys.Validate(); err != nil {
		return fail(err)
	}

	traffic := RUBBoSTraffic()
	if j.Traffic != nil {
		think, err := parseDur(j.Traffic.ThinkTime, traffic.ThinkTime)
		if err != nil {
			return fail(err)
		}
		traffic = Traffic{
			Clients:   j.Traffic.Clients,
			ThinkTime: think,
			Growth:    j.Traffic.Growth,
			Diurnal:   j.Traffic.Diurnal,
			TierMix:   j.Traffic.TierMix,
		}
		if traffic.Clients == 0 {
			traffic.Clients = RUBBoSTraffic().Clients
		}
	}
	if err := traffic.Validate(); err != nil {
		return fail(err)
	}

	slo := DefaultSLO()
	if j.SLO != nil {
		target, err := parseDur(j.SLO.TargetRT, slo.TargetRT)
		if err != nil {
			return fail(err)
		}
		slo = SLO{Percentile: j.SLO.Percentile, TargetRT: target, MaxDropRate: j.SLO.MaxDropRate}
	}
	if err := slo.Validate(); err != nil {
		return fail(err)
	}
	return sys, traffic, slo, nil
}
