// Package spec defines the shared system/traffic/SLO vocabulary of the
// reproduction: one description of an n-tier deployment, its offered
// traffic, and its service-level objective that feeds the capacity planner
// (internal/plan), the simulator (core.Config.FromSpec), and the live
// victim daemon (victimd.SystemFromSpec) alike. The types are pure data —
// conversions to the consumers' native configurations live with the
// consumers, so this package depends only on the analytical model it
// parameterizes.
package spec

import (
	"fmt"
	"time"

	"memca/internal/analytical"
)

// TierSpec describes one tier of an n-tier deployment as a per-replica
// template: the planner and the simulator scale it by Replicas into a
// pooled multi-server station behind an ideal balancer.
type TierSpec struct {
	// Name labels the tier ("apache", "tomcat", "mysql").
	Name string `json:"name"`
	// Threads is the per-replica concurrency limit Q_i: the thread or
	// connection pool size, which is also the replica's queue depth
	// (admitted = in service + waiting).
	Threads int `json:"threads"`
	// Servers is the per-replica count of parallel service stations
	// (vCPUs actually executing).
	Servers int `json:"servers"`
	// Service is the mean base service time of one request at this tier
	// at full capacity (exponentially distributed in the simulator).
	Service time.Duration `json:"service"`
	// DemandFactor is the workload's mean demand multiplier at this tier
	// (request classes that hit the tier harder than the base service
	// time raise it above 1). Effective per-replica capacity is
	// Servers / (Service * DemandFactor). Zero means 1.
	DemandFactor float64 `json:"demand_factor,omitempty"`
	// Replicas is the instance count (minimum 1). Zero means 1.
	Replicas int `json:"replicas,omitempty"`
}

// replicas returns the effective replica count (zero-value = 1).
func (t TierSpec) replicas() int {
	if t.Replicas <= 0 {
		return 1
	}
	return t.Replicas
}

// demandFactor returns the effective demand factor (zero-value = 1).
func (t TierSpec) demandFactor() float64 {
	if t.DemandFactor <= 0 {
		return 1
	}
	return t.DemandFactor
}

// PooledThreads is the fleet-wide concurrency limit: Threads * Replicas.
func (t TierSpec) PooledThreads() int { return t.Threads * t.replicas() }

// PooledServers is the fleet-wide station count: Servers * Replicas.
func (t TierSpec) PooledServers() int { return t.Servers * t.replicas() }

// Capacity is the fleet-wide service rate in requests/second under the
// workload's demand mix: PooledServers / (Service * DemandFactor).
func (t TierSpec) Capacity() float64 {
	return float64(t.PooledServers()) / (t.Service.Seconds() * t.demandFactor())
}

// Validate reports the first tier error, or nil.
func (t TierSpec) Validate() error {
	if t.Threads <= 0 {
		return fmt.Errorf("spec: tier %q Threads must be positive, got %d", t.Name, t.Threads)
	}
	if t.Servers <= 0 {
		return fmt.Errorf("spec: tier %q Servers must be positive, got %d", t.Name, t.Servers)
	}
	if t.Threads < t.Servers {
		return fmt.Errorf("spec: tier %q Threads %d below Servers %d", t.Name, t.Threads, t.Servers)
	}
	if t.Service <= 0 {
		return fmt.Errorf("spec: tier %q Service must be positive, got %v", t.Name, t.Service)
	}
	if t.DemandFactor < 0 {
		return fmt.Errorf("spec: tier %q DemandFactor must be non-negative, got %v", t.Name, t.DemandFactor)
	}
	if t.Replicas < 0 {
		return fmt.Errorf("spec: tier %q Replicas must be non-negative, got %d", t.Name, t.Replicas)
	}
	return nil
}

// System describes an n-tier deployment, front to back: Tiers[0] faces
// the clients, the last tier is the bottleneck back-end the MemCA
// adversary targets.
type System struct {
	Tiers []TierSpec `json:"tiers"`
}

// Validate reports the first system error, or nil.
func (s System) Validate() error {
	if len(s.Tiers) == 0 {
		return fmt.Errorf("spec: system needs at least one tier")
	}
	for _, t := range s.Tiers {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CheckCondition1 verifies the pooled concurrency limits descend front to
// back (Q_1 > Q_2 > ... > Q_n), the realistic n-tier configuration the
// analytical fill-up equations assume.
func (s System) CheckCondition1() error {
	for i := 1; i < len(s.Tiers); i++ {
		if s.Tiers[i-1].PooledThreads() <= s.Tiers[i].PooledThreads() {
			return fmt.Errorf("spec: condition 1 violated: pooled Q_%d (%d) <= Q_%d (%d)",
				i, s.Tiers[i-1].PooledThreads(), i+1, s.Tiers[i].PooledThreads())
		}
	}
	return nil
}

// Pooled returns an equivalent system with every tier's replicas folded
// into its per-replica template (Replicas 1, pooled threads and servers).
// This is the normal form Config.Spec round-trips through: a pooled fleet
// and a single wide replica are indistinguishable to the simulator.
func (s System) Pooled() System {
	out := System{Tiers: make([]TierSpec, len(s.Tiers))}
	for i, t := range s.Tiers {
		out.Tiers[i] = TierSpec{
			Name:         t.Name,
			Threads:      t.PooledThreads(),
			Servers:      t.PooledServers(),
			Service:      t.Service,
			DemandFactor: t.demandFactor(),
			Replicas:     1,
		}
	}
	return out
}

// WithReplicas returns a copy of the system with the given per-tier
// replica counts (len must match Tiers).
func (s System) WithReplicas(replicas []int) (System, error) {
	if len(replicas) != len(s.Tiers) {
		return System{}, fmt.Errorf("spec: %d replica counts for %d tiers", len(replicas), len(s.Tiers))
	}
	out := System{Tiers: make([]TierSpec, len(s.Tiers))}
	copy(out.Tiers, s.Tiers)
	for i, r := range replicas {
		if r <= 0 {
			return System{}, fmt.Errorf("spec: tier %d replicas must be positive, got %d", i, r)
		}
		out.Tiers[i].Replicas = r
	}
	return out, nil
}

// Model builds the analytical n-tier model (Equations 2-10) for the
// system under the given traffic: pooled queue limits and capacities from
// the tier templates, per-tier terminating arrival rates from the traffic
// mix. The traffic's tier mix must cover every tier.
func (s System) Model(t Traffic) (analytical.Model, error) {
	if err := s.Validate(); err != nil {
		return analytical.Model{}, err
	}
	rates, err := t.TierRates(len(s.Tiers))
	if err != nil {
		return analytical.Model{}, err
	}
	m := analytical.Model{Tiers: make([]analytical.Tier, len(s.Tiers))}
	for i, tier := range s.Tiers {
		m.Tiers[i] = analytical.Tier{
			Name:        tier.Name,
			Queue:       tier.PooledThreads(),
			CapacityOFF: tier.Capacity(),
			ArrivalRate: rates[i],
		}
	}
	return m, nil
}

// Traffic describes the offered load as a closed-loop client population
// plus a forecast shape: a growth multiplier and an optional diurnal
// cycle. The planner sizes for the forecast peak; the simulator runs the
// base population.
type Traffic struct {
	// Clients is the emulated user population.
	Clients int `json:"clients"`
	// ThinkTime is the mean think time between requests of one client.
	ThinkTime time.Duration `json:"think_time"`
	// Growth multiplies the offered load for provisioning headroom
	// (e.g. 1.5 plans for 50% organic growth). Zero means 1.
	Growth float64 `json:"growth,omitempty"`
	// Diurnal, when non-empty, is a cycle of non-negative load
	// multipliers (e.g. 24 hourly points of a day curve); the planner
	// sizes for the largest. Empty means a flat curve at 1.
	Diurnal []float64 `json:"diurnal,omitempty"`
	// TierMix[i] is the fraction of requests whose deepest tier is i
	// (the per-tier terminating shares; must sum to 1). Empty defaults
	// to the RUBBoS mix for 3 tiers.
	TierMix []float64 `json:"tier_mix,omitempty"`
}

// RUBBoSTierMix is the terminating-share mix of the RUBBoS browsing
// profile for a 3-tier deployment: the stationary distribution of the
// page-transition Markov chain puts ~8% of requests on static content
// (web only), ~17% on servlets (app), and ~75% on the database.
var RUBBoSTierMix = []float64{0.08, 0.17, 0.75}

// growth returns the effective growth multiplier (zero-value = 1).
func (t Traffic) growth() float64 {
	if t.Growth <= 0 {
		return 1
	}
	return t.Growth
}

// PeakMultiplier is the forecast peak over the base load: the growth
// multiplier times the largest diurnal point (1 for a flat curve).
func (t Traffic) PeakMultiplier() float64 {
	peak := 1.0
	for _, v := range t.Diurnal {
		if v > peak {
			peak = v
		}
	}
	return peak * t.growth()
}

// OfferedRate approximates the base offered request rate in
// requests/second: Clients / ThinkTime, the closed-loop throughput when
// response times are small against think times.
func (t Traffic) OfferedRate() float64 {
	return float64(t.Clients) / t.ThinkTime.Seconds()
}

// PeakRate is OfferedRate scaled to the forecast peak.
func (t Traffic) PeakRate() float64 { return t.OfferedRate() * t.PeakMultiplier() }

// AtPeak returns the traffic with the forecast peak folded into the
// client population (growth and diurnal reset to flat): the population
// the simulator should run to reproduce the planner's peak.
func (t Traffic) AtPeak() Traffic {
	clients := int(float64(t.Clients)*t.PeakMultiplier() + 0.5)
	return Traffic{Clients: clients, ThinkTime: t.ThinkTime, TierMix: t.TierMix}
}

// TierRates returns the per-tier terminating request rates at the
// forecast peak for a system of n tiers, from the tier mix (or the
// RUBBoS default when the mix is empty and n is 3).
func (t Traffic) TierRates(n int) ([]float64, error) {
	mix := t.TierMix
	if len(mix) == 0 {
		if n != len(RUBBoSTierMix) {
			return nil, fmt.Errorf("spec: no tier mix given and no default for %d tiers", n)
		}
		mix = RUBBoSTierMix
	}
	if len(mix) != n {
		return nil, fmt.Errorf("spec: tier mix has %d entries for %d tiers", len(mix), n)
	}
	rate := t.PeakRate()
	rates := make([]float64, n)
	for i, f := range mix {
		rates[i] = rate * f
	}
	return rates, nil
}

// Validate reports the first traffic error, or nil.
func (t Traffic) Validate() error {
	if t.Clients <= 0 {
		return fmt.Errorf("spec: Clients must be positive, got %d", t.Clients)
	}
	if t.ThinkTime <= 0 {
		return fmt.Errorf("spec: ThinkTime must be positive, got %v", t.ThinkTime)
	}
	if t.Growth < 0 {
		return fmt.Errorf("spec: Growth must be non-negative, got %v", t.Growth)
	}
	for i, v := range t.Diurnal {
		if v < 0 {
			return fmt.Errorf("spec: Diurnal[%d] must be non-negative, got %v", i, v)
		}
	}
	if len(t.TierMix) > 0 {
		sum := 0.0
		for i, f := range t.TierMix {
			if f < 0 {
				return fmt.Errorf("spec: TierMix[%d] must be non-negative, got %v", i, f)
			}
			sum += f
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			return fmt.Errorf("spec: TierMix sums to %v, want 1", sum)
		}
	}
	return nil
}

// SLO is the service-level objective a sizing must hold.
type SLO struct {
	// Percentile selects the response-time quantile the objective binds
	// (e.g. 99 for p99). Zero means 99.
	Percentile float64 `json:"percentile,omitempty"`
	// TargetRT bounds the percentile response time.
	TargetRT time.Duration `json:"target_rt"`
	// MaxDropRate bounds the fraction of requests dropped by the full
	// front tier (TCP SYN losses the client retransmits after >= 1 s).
	MaxDropRate float64 `json:"max_drop_rate"`
}

// EffectivePercentile returns the quantile the objective binds
// (zero-value = 99).
func (s SLO) EffectivePercentile() float64 {
	if s.Percentile <= 0 {
		return 99
	}
	return s.Percentile
}

// Validate reports the first SLO error, or nil.
func (s SLO) Validate() error {
	p := s.EffectivePercentile()
	if p <= 0 || p >= 100 {
		return fmt.Errorf("spec: Percentile must be in (0,100), got %v", p)
	}
	if s.TargetRT <= 0 {
		return fmt.Errorf("spec: TargetRT must be positive, got %v", s.TargetRT)
	}
	if s.MaxDropRate < 0 || s.MaxDropRate >= 1 {
		return fmt.Errorf("spec: MaxDropRate must be in [0,1), got %v", s.MaxDropRate)
	}
	return nil
}

// RUBBoSSystem returns the per-replica tier templates of the
// reproduction's RUBBoS deployment (workload.RUBBoSTiers' thread pools,
// stations, and base service times). The demand factors fold the request
// mix's per-tier demand scaling in, so each tier's Capacity matches the
// effective capacities of analytical.RUBBoS3Tier.
func RUBBoSSystem() System {
	return System{Tiers: []TierSpec{
		{Name: "apache", Threads: 100, Servers: 2, Service: 600 * time.Microsecond, DemandFactor: 1.0, Replicas: 1},
		{Name: "tomcat", Threads: 60, Servers: 2, Service: 1200 * time.Microsecond, DemandFactor: 1.0, Replicas: 1},
		{Name: "mysql", Threads: 25, Servers: 2, Service: 1600 * time.Microsecond, DemandFactor: 1.36, Replicas: 1},
	}}
}

// RUBBoSTraffic returns the paper's evaluation population: 3500 clients
// with 7 s mean think time, flat forecast.
func RUBBoSTraffic() Traffic {
	return Traffic{Clients: 3500, ThinkTime: 7 * time.Second}
}

// DefaultSLO returns a provisioning objective in the spirit of the
// paper's damage goal, inverted: keep the client p99 under 500 ms and
// drop fewer than 1% of requests.
func DefaultSLO() SLO {
	return SLO{Percentile: 99, TargetRT: 500 * time.Millisecond, MaxDropRate: 0.01}
}
