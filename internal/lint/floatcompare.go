package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// AnalyzerFloatCompare flags exact ==/!= comparisons between floating-point
// operands. Accumulated rounding error makes exact float equality a
// correctness trap; comparisons must go through the epsilon helpers in
// internal/stats (stats.ApproxEqual / stats.ApproxZero).
//
// Two comparisons are deliberately exempt:
//
//   - comparisons where one side is the constant zero: zero is exactly
//     representable, and `x == 0` guards (division, empty-sample checks)
//     test "was this ever assigned", not "is this numerically close";
//   - comparisons where both sides are constants, which the compiler
//     evaluates in exact arithmetic.
func AnalyzerFloatCompare() *Analyzer {
	return &Analyzer{
		Name: "floatcompare",
		Doc:  "no exact ==/!= on floating-point operands; use the epsilon helpers in internal/stats",
		Run:  runFloatCompare,
	}
}

func runFloatCompare(pkg *Package, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x, y := pkg.Info.Types[bin.X], pkg.Info.Types[bin.Y]
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			if isZeroConst(x.Value) || isZeroConst(y.Value) {
				return true
			}
			if x.Value != nil && y.Value != nil {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(bin.Pos()),
				Analyzer: "floatcompare",
				Message:  fmt.Sprintf("exact float comparison (%s): use stats.ApproxEqual or an explicit tolerance", bin.Op),
			})
			return true
		})
	}
	return diags
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (covering named types such as `type Fraction float64`).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether v is a numeric constant equal to zero.
func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
