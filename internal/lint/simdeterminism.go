package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// randConstructors are the math/rand functions that build a new generator
// or source. They are the sanctioned way to create the injected *rand.Rand
// — but only from an explicit seed, so construction is confined to
// functions that receive one (or that receive a generator/source to wrap).
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 additions.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// AnalyzerSimDeterminism enforces the determinism contract on sim-path
// packages: every draw of randomness flows through an injected *rand.Rand
// seeded from an explicit seed, never through the global math/rand source
// or an ambient seed. Three things are flagged:
//
//   - any reference to a package-level math/rand function other than the
//     constructors (rand.Intn, rand.Float64, rand.Shuffle, rand.Seed, ...),
//     because those draw from the shared global source;
//   - a constructor call (rand.New, rand.NewSource, ...) inside a function
//     that does not itself receive a seed or a generator — an "un-injected"
//     RNG whose seed is invisible to the caller;
//   - importing crypto/rand, which is nondeterministic by design.
func AnalyzerSimDeterminism() *Analyzer {
	return &Analyzer{
		Name: "simdeterminism",
		Doc:  "sim-path packages must draw all randomness from an injected, explicitly seeded *rand.Rand",
		Run:  runSimDeterminism,
	}
}

func runSimDeterminism(pkg *Package, cfg *Config) []Diagnostic {
	if !cfg.IsSimPath(pkg.ImportPath) {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "simdeterminism",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, file := range pkg.Syntax {
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "crypto/rand" {
				report(imp, "import of crypto/rand in sim-path package %s: cryptographic randomness is not reproducible from a seed", pkg.ImportPath)
			}
		}
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			path := importedPackage(pkg.Info, sel.X)
			if path != "math/rand" && path != "math/rand/v2" {
				return
			}
			name := sel.Sel.Name
			if !randConstructors[name] {
				// Package-level types (rand.Rand, rand.Source) are fine;
				// only function and variable references draw randomness.
				if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
					if _, isType := obj.(*types.TypeName); isType {
						return
					}
				}
				report(sel, "use of global rand.%s: draw from the injected *rand.Rand instead", name)
				return
			}
			if !seededScope(pkg.Info, stack) {
				report(sel, "rand.%s outside a seed-accepting function: construct generators only from an explicit seed parameter so runs are reproducible", name)
			}
		})
	}
	return diags
}

// seededScope reports whether the innermost enclosing function receives the
// seed explicitly: an int64/uint64 seed parameter, a *rand.Rand, or a
// rand.Source. Package-level initializers and parameterless helpers do not
// qualify — their seed would be ambient and invisible to callers.
func seededScope(info *types.Info, stack []ast.Node) bool {
	ft := enclosingFuncType(stack)
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		switch types.TypeString(t, nil) {
		case "int64", "uint64",
			"*math/rand.Rand", "math/rand.Source", "math/rand.Source64",
			"*math/rand/v2.Rand", "math/rand/v2.Source":
			return true
		}
	}
	return false
}
