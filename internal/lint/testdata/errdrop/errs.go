// Package errs is a golden file for the errdrop analyzer.
package errs

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

func drop() {
	fallible()       // want `call discards error result of fallible`
	pair()           // want `call discards error result of pair`
	go fallible()    // want `go statement discards error result of fallible`
	defer fallible() // want `defer discards error result of fallible`

	// An explicit blank assignment is visible in review: not flagged.
	_ = fallible()
	if err := fallible(); err != nil {
		panic(err)
	}
}

func closer(f *os.File) {
	defer f.Close() // want `defer discards error result of f\.Close`
}

func prints(f *os.File) {
	fmt.Println("to stdout")        // exempt
	fmt.Fprintf(os.Stderr, "diag")  // exempt
	fmt.Fprintln(os.Stdout, "diag") // exempt

	fmt.Fprintf(f, "payload") // want `call discards error result of fmt\.Fprintf`

	var sb strings.Builder
	sb.WriteString("x") // exempt: in-memory sink
	fmt.Fprintf(&sb, "x")

	var buf bytes.Buffer
	buf.WriteByte('x')
	fmt.Fprintln(&buf, "x")
	_ = sb.String() + buf.String()
}
