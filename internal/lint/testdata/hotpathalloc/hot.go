// Package hotpathalloc is the golden corpus for the hotpathalloc analyzer.
// Functions marked //memca:hotpath (and everything they call within the
// package) must avoid alloc-prone constructs; unmarked, unreachable
// functions may do what they like.
package hotpathalloc

import "fmt"

type sink struct {
	vals []int
	out  any
}

// push appends to a struct field: fields are trusted to be pre-sized by
// their constructors (the slab convention), so this stays legal even though
// push is reachable from a hot function.
func (s *sink) push(v int) { s.vals = append(s.vals, v) }

// helper is unmarked but called from Record, so it is in the hot closure.
func helper(s *sink) string {
	return fmt.Sprint(s) // want `fmt.Sprint allocates on every call`
}

//memca:hotpath
func Record(s *sink, v int) {
	s.push(v)
	_ = helper(s)
	s.out = v // want `assignment boxes int into interface`
}

//memca:hotpath
func Format(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt.Sprintf allocates on every call`
}

//memca:hotpath
func Join(a, b string) string {
	return a + b // want `string concatenation builds a fresh string per evaluation`
}

//memca:hotpath
func JoinAssign(a, b string) string {
	a += b // want `string concatenation builds a fresh string per evaluation`
	return a
}

//memca:hotpath
func Capture(done func()) {
	x := 0
	defer func() { x++ }() // want `func literal captures x`
	done()
}

//memca:hotpath
func Grow(n int) int {
	var buf []int
	for i := 0; i < n; i++ {
		buf = append(buf, i) // want `append to un-presized local slice buf`
	}
	m := make(map[int]int) // want `make\(map\[int\]int\) without a size hint`
	m[1] = 1
	return len(buf) + len(m)
}

// Sized shows the sanctioned forms: capacity-carrying make calls are legal.
//
//memca:hotpath
func Sized(n int) []int {
	buf := make([]int, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	counts := make(map[int]int, n)
	counts[0] = n
	return buf
}

func consume(v any) { use(v) }

func use(any) {}

//memca:hotpath
func Box(p *sink, v int) {
	consume(p) // pointer-shaped values convert free
	consume(v) // want `argument boxes int into interface`
	_ = any(v) // want `conversion boxes int into interface`
}

//memca:hotpath
func Wrap(v int) any {
	return v // want `return boxes int into interface`
}

// Apply calls through a function value with non-interface parameters;
// nothing here allocates.
//
//memca:hotpath
func Apply(vals []int, f func(int) int) {
	for i, v := range vals {
		vals[i] = f(v)
	}
}

// Reset uses a capture-free literal, which compiles to a plain function.
//
//memca:hotpath
func Reset(vals []int) {
	zero := func(int) int { return 0 }
	for i := range vals {
		vals[i] = zero(vals[i])
	}
}

// Cold is unmarked and unreachable from any hot function: fmt, closures,
// and boxing are all legal here.
func Cold(v int) string {
	s := fmt.Sprint(v)
	f := func() string { return s }
	return f()
}
