// Package allocbound is the fixture corpus for the escape-budget gate: a
// package with known, deliberate heap escapes. The allocbound tests collect
// its compiler diagnostics, round-trip them through the budget encoding,
// and prove that removing an entry from the budget surfaces the escape as
// a lint failure carrying the compiler's reason string.
package allocbound

// Leak returns the address of a local: the classic "moved to heap".
func Leak() *int {
	v := 42
	return &v
}

// Box boxes an int into an interface: "escapes to heap".
func Box(n int) any {
	return n
}

// Grow returns a slice whose backing array must live past the frame.
func Grow(n int) []int {
	s := make([]int, n)
	return s
}

// Stay keeps everything on the stack: contributes no budget entries.
func Stay(n int) int {
	buf := [8]int{}
	for i := range buf {
		buf[i] = n
	}
	return buf[0]
}
