// Package atomicmix is the golden corpus for the atomicmix analyzer: a
// variable accessed through sync/atomic anywhere in the package must be
// accessed atomically everywhere in the package, and typed atomics must
// never be copied by value.
package atomicmix

import "sync/atomic"

type counter struct {
	hits   int64
	misses int64
	// total is never touched atomically, so plain access stays legal.
	total int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

func (c *counter) read() int64 {
	return c.hits + atomic.LoadInt64(&c.misses) // want `plain access to hits`
}

func (c *counter) reset() {
	c.hits = 0 // want `plain access to hits`
	atomic.StoreInt64(&c.misses, 0)
	c.total++
}

var ops int64

func bumpOps() { atomic.AddInt64(&ops, 1) }

func opsSnapshot() int64 {
	return ops // want `plain access to ops`
}

type gauge struct {
	level atomic.Int64
	name  string
}

func (g *gauge) set(v int64) { g.level.Store(v) }

func snapshot(g *gauge) atomic.Int64 {
	return g.level // want `g.level value of type sync/atomic.Int64 is copied`
}

func copyLevel(g *gauge) int64 {
	l := g.level // want `g.level value of type sync/atomic.Int64 is copied`
	return l.Load()
}

// watch takes the atomic by pointer: the sanctioned hand-off.
func watch(l *atomic.Int64) int64 { return l.Load() }

func (g *gauge) current() int64 {
	return watch(&g.level)
}

func (g *gauge) label() string { return g.name }

type slots struct {
	ready [4]atomic.Uint32
}

func (s *slots) mark(i int) { s.ready[i].Store(1) }

func (s *slots) peek(i int) atomic.Uint32 {
	return s.ready[i] // want `s.ready\[\.\.\.\] value of type sync/atomic.Uint32 is copied`
}
