// Package clock is a golden file for the clockdiscipline analyzer: the
// test config does not allowlist it, so every wall-clock read or wait must
// be reported, while pure time.Duration arithmetic stays legal.
package clock

import "time"

var start = time.Now() // want `wall-clock call time\.Now`

const day = 24 * time.Hour

func wait() {
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep`
}

func since(t time.Time) time.Duration {
	return time.Since(t) // want `wall-clock call time\.Since`
}

func timeout() {
	_ = time.After(time.Second) // want `wall-clock call time\.After`
}

func ticker() {
	t := time.NewTicker(time.Second) // want `wall-clock call time\.NewTicker`
	t.Stop()
}

// Virtual-time arithmetic on time.Duration is the simulated clock's own
// currency and must stay permitted.
func span(d time.Duration) time.Duration { return d*2 + time.Millisecond }

// Explicit construction from components does not read the clock.
func epoch() time.Time { return time.Unix(0, 0) }
