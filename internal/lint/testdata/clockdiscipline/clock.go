// Package clock is a golden file for the clockdiscipline analyzer: the
// test config does not allowlist it, so every wall-clock read or wait must
// be reported, while pure time.Duration arithmetic stays legal.
package clock

import (
	"context"
	"time"
)

var start = time.Now() // want `wall-clock call time\.Now`

const day = 24 * time.Hour

func wait() {
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep`
}

func since(t time.Time) time.Duration {
	return time.Since(t) // want `wall-clock call time\.Since`
}

func timeout() {
	_ = time.After(time.Second) // want `wall-clock call time\.After`
}

func ticker() {
	t := time.NewTicker(time.Second) // want `wall-clock call time\.NewTicker`
	t.Stop()
}

func until(t time.Time) time.Duration {
	return time.Until(t) // want `wall-clock call time\.Until`
}

func timer() {
	t := time.NewTimer(time.Second) // want `wall-clock call time\.NewTimer`
	t.Stop()
}

func afterFunc() {
	time.AfterFunc(time.Second, func() {}) // want `wall-clock call time\.AfterFunc`
}

func tick() {
	_ = time.Tick(time.Second) // want `wall-clock call time\.Tick`
}

func deadlineCtx(ctx context.Context) {
	c, cancel := context.WithTimeout(ctx, time.Second) // want `context\.WithTimeout .* arms a wall-clock timer`
	defer cancel()
	_ = c
	d, cancel2 := context.WithDeadline(ctx, time.Unix(0, 0)) // want `context\.WithDeadline .* arms a wall-clock timer`
	defer cancel2()
	_ = d
}

// Deadline-free context plumbing never touches the clock and stays legal.
func plumbing(ctx context.Context) context.Context {
	c, cancel := context.WithCancel(ctx)
	cancel()
	return c
}

// Virtual-time arithmetic on time.Duration is the simulated clock's own
// currency and must stay permitted.
func span(d time.Duration) time.Duration { return d*2 + time.Millisecond }

// Explicit construction from components does not read the clock.
func epoch() time.Time { return time.Unix(0, 0) }
