// Package floats is a golden file for the floatcompare analyzer.
package floats

type fraction float64

func equal(a, b float64) bool { return a == b } // want `exact float comparison \(==\)`

func notEqual(a, b float64) bool { return a != b } // want `exact float comparison \(!=\)`

func f32(a, b float32) bool { return a != b } // want `exact float comparison \(!=\)`

// Named types with a float underlying type are still float comparisons.
func named(a, b fraction) bool { return a == b } // want `exact float comparison \(==\)`

// Comparing against a non-zero constant is as fragile as variable-variable.
func lit(x float64) bool { return x == 0.25 } // want `exact float comparison \(==\)`

// Exact-zero guards are exempt: zero is exactly representable and these
// test "was this ever set", not numerical closeness.
func zeroGuard(x float64) bool { return x == 0 }

func zeroGuardFlipped(x float64) bool { return 0.0 != x }

// Constant folding happens in exact arithmetic.
const exactlyEqual = 1.5 == 1.5

// Integer comparisons are not this analyzer's business.
func ints(a, b int) bool { return a == b }
