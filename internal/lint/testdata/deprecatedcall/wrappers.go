// Package wrappers is a golden file for the deprecatedcall analyzer.
package wrappers

import "memca/internal/memmodel"

// profileBandwidth stands in for a same-package legacy wrapper.
//
// Deprecated: use profile with a profileSpec.
func profileBandwidth(vms int) int { return profile(profileSpec{vms: vms}) }

type profileSpec struct{ vms int }

// profile is the spec-based replacement.
func profile(s profileSpec) int { return s.vms }

// Same-package calls to a listed wrapper are flagged.
func callsLocalWrapper() int {
	return profileBandwidth(2) // want `call to deprecated memca/internal/lint/testdata/deprecatedcall.profileBandwidth`
}

// The replacement is fine.
func callsReplacement() int { return profile(profileSpec{vms: 2}) }

// Cross-package calls resolve through the import and are flagged too.
func callsCrossPackage() (memmodel.BandwidthPoint, error) {
	return memmodel.ProfileBandwidth(memmodel.XeonE5_2603v3(), 1, memmodel.PlacementSamePackage, memmodel.AttackBusSaturation, 0) // want `call to deprecated memca/internal/memmodel.ProfileBandwidth`
}

// The spec-based form from the same package is fine.
func callsCrossReplacement() (memmodel.BandwidthPoint, error) {
	return memmodel.Profile(memmodel.ProfileSpec{
		Host:      memmodel.XeonE5_2603v3(),
		VMs:       1,
		Placement: memmodel.PlacementSamePackage,
		Kind:      memmodel.AttackBusSaturation,
	})
}

// A local variable of function type shadowing the name is not a call to
// the package-level wrapper.
func callsShadowed() int {
	profileBandwidth := func(vms int) int { return vms }
	return profileBandwidth(2)
}

// Methods named like a wrapper are not package-level functions.
type profiler struct{}

func (profiler) profileBandwidth(vms int) int { return vms }

func callsMethod() int { return profiler{}.profileBandwidth(2) }
