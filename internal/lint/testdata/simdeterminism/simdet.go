// Package simdet is a golden file for the simdeterminism analyzer: it is
// treated as a sim-path package by the test config, so every draw from the
// global math/rand source and every un-injected generator construction
// must be reported.
package simdet

import (
	crand "crypto/rand" // want `import of crypto/rand`
	"math/rand"
)

// Package-level initializers have no seed parameter in scope.
var global = rand.Intn(6) // want `global rand\.Intn`

var pkgRNG = rand.New(rand.NewSource(1)) // want `rand\.New outside a seed-accepting function` `rand\.NewSource outside a seed-accepting function`

// A function value reference draws from the global source just like a call.
var pick = rand.Float64 // want `global rand\.Float64`

// Type references are not draws.
var _ rand.Source

// roll draws from an injected generator: the sanctioned pattern.
func roll(rng *rand.Rand) int { return rng.Intn(6) }

// seeded constructs a generator from an explicit seed: allowed.
func seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// wrap receives a source, so construction is still caller-controlled.
func wrap(src rand.Source) *rand.Rand { return rand.New(src) }

// unseeded hides a constant seed from its caller: reproducible but
// un-injectable, and one refactor away from time.Now().UnixNano().
func unseeded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.New outside a seed-accepting function` `rand\.NewSource outside a seed-accepting function`
}

// shuffle uses the global source through a helper.
func shuffle(n int) {
	rand.Shuffle(n, func(i, j int) {}) // want `global rand\.Shuffle`
}

func cryptoRead() {
	buf := make([]byte, 8)
	_, _ = crand.Read(buf)
}
