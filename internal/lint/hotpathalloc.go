package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// HotPathDirective marks a function as allocation-sensitive: the
// hotpathalloc analyzer checks the function and everything it calls within
// the same package for alloc-prone constructs. Put it on its own line in
// the function's doc comment:
//
//	//memca:hotpath
//	func (t *Tracer) Observe(...) { ... }
const HotPathDirective = "//memca:hotpath"

// AnalyzerHotPathAlloc flags allocation-prone constructs inside functions
// marked //memca:hotpath and everything they call within the package, so a
// reviewer sees the allocation before the benchmark does. It is the static
// companion of the AllocsPerRun tests and the benchjson gate: those catch a
// regression only on the paths a benchmark exercises; this flags the
// construct at the source line that introduces it.
//
// Flagged constructs:
//
//   - fmt.* calls — formatting allocates (and reflects) per call;
//   - string concatenation with a non-constant operand — builds a fresh
//     string on every evaluation;
//   - func literals capturing enclosing variables — the closure (and often
//     its captures) may be heap-allocated;
//   - boxing a non-pointer value into an interface (explicit conversion,
//     call argument, assignment, or return) — pointer-shaped values convert
//     free, everything else allocates;
//   - append to a slice declared locally without a capacity — growth
//     reallocates; appends to fields and parameters are trusted to be
//     pre-sized by their constructors (the project's slab convention);
//   - make(map[...]...) without a size hint — rehashing allocates as the
//     map grows.
func AnalyzerHotPathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpathalloc",
		Doc:  "no alloc-prone constructs in //memca:hotpath functions or their intra-package callees",
		Run:  runHotPathAlloc,
	}
}

func runHotPathAlloc(pkg *Package, cfg *Config) []Diagnostic {
	decls := packageFuncDecls(pkg)
	roots := markedHotPath(decls)
	if len(roots) == 0 {
		return nil
	}
	hot := reachableFuncs(pkg, decls, roots)

	var diags []Diagnostic
	for fn, decl := range decls {
		if !hot[fn] {
			continue
		}
		c := &hotChecker{pkg: pkg, fn: fn, marked: roots[fn]}
		c.check(decl)
		diags = append(diags, c.diags...)
	}
	return diags
}

// packageFuncDecls maps every package-level function and method object to
// its declaration.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Syntax {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// markedHotPath returns the functions carrying the //memca:hotpath
// directive in their doc comment.
func markedHotPath(decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	roots := make(map[*types.Func]bool)
	for fn, decl := range decls {
		if decl.Doc == nil {
			continue
		}
		for _, c := range decl.Doc.List {
			text := strings.TrimSpace(c.Text)
			if text == HotPathDirective || strings.HasPrefix(text, HotPathDirective+" ") {
				roots[fn] = true
				break
			}
		}
	}
	return roots
}

// reachableFuncs closes the marked set over intra-package static calls:
// calls to package-level functions and methods declared in this package.
// Calls through interfaces, function values, and other packages are outside
// the closure (conservatively unchecked — allocbound still sees them).
func reachableFuncs(pkg *Package, decls map[*types.Func]*ast.FuncDecl, roots map[*types.Func]bool) map[*types.Func]bool {
	hot := make(map[*types.Func]bool, len(roots))
	var queue []*types.Func
	for fn := range roots {
		hot[fn] = true
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			callee, ok := pkg.Info.Uses[id].(*types.Func)
			if !ok || hot[callee] {
				return true
			}
			if _, declared := decls[callee]; declared {
				hot[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}
	return hot
}

// hotChecker walks one hot function body and records alloc-prone constructs.
type hotChecker struct {
	pkg    *Package
	fn     *types.Func
	marked bool
	diags  []Diagnostic
	// unsized holds local slice variables declared without a capacity;
	// appending to them is flagged.
	unsized map[*types.Var]bool
}

func (c *hotChecker) report(n ast.Node, format string, args ...any) {
	where := "reachable from a //memca:hotpath function"
	if c.marked {
		where = "marked " + HotPathDirective
	}
	c.diags = append(c.diags, Diagnostic{
		Pos:      c.pkg.Fset.Position(n.Pos()),
		Analyzer: "hotpathalloc",
		Message:  fmt.Sprintf(format, args...) + fmt.Sprintf(" [hot path: %s is %s]", c.fn.Name(), where),
	})
}

func (c *hotChecker) check(decl *ast.FuncDecl) {
	if decl.Body == nil {
		return
	}
	c.unsized = make(map[*types.Var]bool)
	c.collectUnsizedLocals(decl.Body)
	inspectWithStack(decl.Body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.BinaryExpr:
			c.checkConcat(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.FuncLit:
			// Only flag the outermost literal in a nest; its captures
			// subsume the inner ones.
			if enclosingFuncLit(stack) == nil {
				c.checkClosure(n)
			}
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
	})
}

// collectUnsizedLocals records slice variables declared in this function
// with no capacity: `var s []T`, `s := []T{}`, and `s := make([]T, 0)`.
// A make with a length or capacity, or a literal with elements, counts as
// pre-sized; growth past a deliberate size is the author's call.
func (c *hotChecker) collectUnsizedLocals(body *ast.BlockStmt) {
	record := func(name *ast.Ident, rhs ast.Expr) {
		obj, ok := c.pkg.Info.Defs[name].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if rhs == nil {
			c.unsized[obj] = true // var s []T
			return
		}
		switch e := rhs.(type) {
		case *ast.CompositeLit:
			if len(e.Elts) == 0 {
				c.unsized[obj] = true // []T{}
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && c.pkg.Info.Uses[id] == types.Universe.Lookup("make") {
				// make([]T, 0) with no cap and zero length is unsized.
				if len(e.Args) == 2 && isIntZero(c.pkg, e.Args[1]) {
					c.unsized[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				record(name, rhs)
			}
		}
		return true
	})
}

func isIntZero(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constantInt64(tv)
	return exact && v == 0
}

func (c *hotChecker) checkCall(call *ast.CallExpr) {
	// Explicit conversion T(x)?
	if tv, ok := c.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterface(tv.Type) && boxes(c.pkg, call.Args[0]) {
			c.report(call, "conversion boxes %s into interface %s (allocates; keep hot-path values pointer-shaped)",
				typeOf(c.pkg, call.Args[0]), tv.Type)
		}
		return
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if importedPackage(c.pkg.Info, sel.X) == "fmt" {
			c.report(call, "fmt.%s allocates on every call", sel.Sel.Name)
			return
		}
	}

	// Builtins: append to unsized locals, make(map) without a size hint.
	if id, ok := call.Fun.(*ast.Ident); ok && c.pkg.Info.Uses[id] == types.Universe.Lookup(id.Name) {
		switch id.Name {
		case "append":
			if len(call.Args) > 0 {
				if base, ok := call.Args[0].(*ast.Ident); ok {
					if v, ok := c.pkg.Info.Uses[base].(*types.Var); ok && c.unsized[v] {
						c.report(call, "append to un-presized local slice %s reallocates as it grows (declare it with a capacity)", base.Name)
					}
				}
			}
		case "make":
			if len(call.Args) == 1 {
				if tv, ok := c.pkg.Info.Types[call.Args[0]]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						c.report(call, "make(%s) without a size hint rehashes as it grows", tv.Type)
					}
				}
			}
		}
		return
	}

	// Implicit boxing of call arguments into interface parameters.
	sig, ok := typeOf(c.pkg, call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && boxes(c.pkg, arg) {
			c.report(arg, "argument boxes %s into interface %s (allocates; keep hot-path values pointer-shaped)",
				typeOf(c.pkg, arg), pt)
		}
	}
}

func (c *hotChecker) checkConcat(bin *ast.BinaryExpr) {
	if bin.Op != token.ADD {
		return
	}
	t := typeOf(c.pkg, bin)
	if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	if tv, ok := c.pkg.Info.Types[bin]; ok && tv.Value != nil {
		return // constant-folded at compile time
	}
	c.report(bin, "string concatenation builds a fresh string per evaluation")
}

func (c *hotChecker) checkAssign(a *ast.AssignStmt) {
	if a.Tok == token.ADD_ASSIGN && len(a.Lhs) == 1 {
		t := typeOf(c.pkg, a.Lhs[0])
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			c.report(a, "string concatenation builds a fresh string per evaluation")
			return
		}
	}
	if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
		return
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		lt := typeOf(c.pkg, a.Lhs[i])
		if isInterface(lt) && boxes(c.pkg, a.Rhs[i]) {
			c.report(a.Rhs[i], "assignment boxes %s into interface %s (allocates; keep hot-path values pointer-shaped)",
				typeOf(c.pkg, a.Rhs[i]), lt)
		}
	}
}

func (c *hotChecker) checkReturn(r *ast.ReturnStmt) {
	sig, ok := c.fn.Type().(*types.Signature)
	if !ok || sig.Results() == nil || len(r.Results) != sig.Results().Len() {
		return
	}
	for i, res := range r.Results {
		rt := sig.Results().At(i).Type()
		if isInterface(rt) && boxes(c.pkg, res) {
			c.report(res, "return boxes %s into interface %s (allocates; keep hot-path values pointer-shaped)",
				typeOf(c.pkg, res), rt)
		}
	}
}

// checkClosure flags a func literal that captures variables from an
// enclosing function: the closure header (and often the captured variables
// themselves) moves to the heap when the literal escapes. Capture-free
// literals compile to plain functions and stay legal.
func (c *hotChecker) checkClosure(lit *ast.FuncLit) {
	captured := map[string]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == c.pkg.Types.Scope() {
			return true
		}
		// Declared inside the literal (including its params)? Not a capture.
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		if !captured[v.Name()] {
			captured[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	if len(names) == 0 {
		return
	}
	c.report(lit, "func literal captures %s; the closure may be heap-allocated (use the sim.Actor path or pass state explicitly)",
		strings.Join(names, ", "))
}

// enclosingFuncLit returns the innermost func literal on the stack, or nil.
func enclosingFuncLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}

// boxes reports whether using e as an interface value heap-allocates:
// true for non-pointer-shaped concrete values, false for values already
// interface-typed, pointer-shaped values (pointers, channels, maps, funcs,
// unsafe pointers), and untyped nil.
func boxes(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if isInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if t.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	return pkg.Info.TypeOf(e)
}

// constantInt64 extracts an exact int64 from a constant type-and-value.
func constantInt64(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
