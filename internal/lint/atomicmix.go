package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerAtomicMix enforces the claim-once / lock-free discipline the
// live-span collector and the real-socket daemons rely on: a variable that
// is accessed atomically anywhere in a package must be accessed atomically
// everywhere in that package. Mixing one atomic.AddInt64 with one plain read
// of the same field is a data race the race detector only catches when both
// sides happen to run concurrently under `-race`; this encodes the rule
// statically.
//
// Two access disciplines are checked:
//
//   - legacy sync/atomic functions: any variable (struct field or package
//     var) that appears as the &-argument of atomic.LoadT/StoreT/AddT/
//     SwapT/CompareAndSwapT anywhere in the package must never be read or
//     written plainly elsewhere in the package;
//   - typed atomics (atomic.Bool, Int32, Int64, Uint32, Uint64, Uintptr,
//     Pointer[T], Value): values of these types must only be used as method
//     receivers or through their address — copying one (assignment, call
//     argument, return, composite literal, comparison) smuggles a plain
//     read of the underlying word past the type's API.
func AnalyzerAtomicMix() *Analyzer {
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "variables accessed through sync/atomic must never be read or written plainly in the same package",
		Run:  runAtomicMix,
	}
}

// atomicFuncPrefixes are the legacy sync/atomic operation families; the
// concrete functions are e.g. LoadInt64, StoreUint32, AddInt32,
// CompareAndSwapPointer, SwapUintptr, OrInt64, AndUint64.
var atomicFuncPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"}

func isAtomicFunc(name string) bool {
	for _, p := range atomicFuncPrefixes {
		if rest, ok := strings.CutPrefix(name, p); ok && rest != "" {
			return true
		}
	}
	return false
}

// typedAtomicNames are the sync/atomic wrapper types whose methods are the
// only sanctioned access path.
var typedAtomicNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isTypedAtomic reports whether t is one of the sync/atomic wrapper types.
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && typedAtomicNames[obj.Name()]
}

func runAtomicMix(pkg *Package, cfg *Config) []Diagnostic {
	// Pass 1: collect every variable whose address feeds a legacy
	// sync/atomic operation.
	atomicVars := make(map[*types.Var][]token.Position)
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || importedPackage(pkg.Info, sel.X) != "sync/atomic" || !isAtomicFunc(sel.Sel.Name) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if v := referencedVar(pkg.Info, addr.X); v != nil {
				atomicVars[v] = append(atomicVars[v], pkg.Fset.Position(call.Pos()))
			}
			return true
		})
	}

	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pkg.Fset.Position(n.Pos()),
			Analyzer: "atomicmix",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	// Pass 2: find plain accesses to those variables, and copies of typed
	// atomics, anywhere else in the package.
	for _, file := range pkg.Syntax {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				c := atomicAccess{pkg: pkg, stack: stack}
				if v := fieldVar(pkg.Info, n); v != nil {
					if _, isAtomic := atomicVars[v]; isAtomic && !c.insideAtomicArg(n) {
						report(n, "plain access to %s, which is accessed via sync/atomic elsewhere in %s: every access must go through sync/atomic (or migrate the field to a typed atomic)",
							v.Name(), pkg.ImportPath)
					}
				}
				c.checkTypedCopy(n, report)
			case *ast.Ident:
				v, ok := pkg.Info.Uses[n].(*types.Var)
				if !ok || v.IsField() {
					return
				}
				if _, isAtomic := atomicVars[v]; !isAtomic {
					return
				}
				// Skip the identifier inside a selector (handled above) or
				// inside the atomic call's own &arg.
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel != n {
						return
					}
				}
				c := atomicAccess{pkg: pkg, stack: stack}
				if !c.insideAtomicArg(n) {
					report(n, "plain access to %s, which is accessed via sync/atomic elsewhere in %s: every access must go through sync/atomic (or migrate the variable to a typed atomic)",
						v.Name(), pkg.ImportPath)
				}
			case *ast.IndexExpr:
				c := atomicAccess{pkg: pkg, stack: stack}
				c.checkTypedCopy(n, report)
			}
		})
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].Pos, diags[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	return diags
}

// referencedVar resolves the variable an lvalue expression refers to: a
// plain identifier or a field selector (possibly through pointers/indexing).
func referencedVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		return fieldVar(info, e)
	case *ast.IndexExpr:
		return referencedVar(info, e.X)
	case *ast.ParenExpr:
		return referencedVar(info, e.X)
	}
	return nil
}

// fieldVar resolves a selector to the struct field it names, or nil for
// package qualifiers and method selections.
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// atomicAccess classifies how an expression is used, from its enclosing
// nodes.
type atomicAccess struct {
	pkg   *Package
	stack []ast.Node
}

// insideAtomicArg reports whether e is (part of) the &-argument of a legacy
// sync/atomic call: atomic.AddInt64(&s.f, 1) must not flag s.f.
func (c *atomicAccess) insideAtomicArg(e ast.Expr) bool {
	for i := len(c.stack) - 1; i >= 0; i-- {
		switch n := c.stack[i].(type) {
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return false
			}
			// The & must itself be an argument of an atomic call.
			if i > 0 {
				if call, ok := c.stack[i-1].(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						return importedPackage(c.pkg.Info, sel.X) == "sync/atomic" && isAtomicFunc(sel.Sel.Name)
					}
				}
			}
			return false
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.ParenExpr:
			continue // still inside the lvalue path
		default:
			return false
		}
	}
	return false
}

// checkTypedCopy flags expressions of typed-atomic type used as values.
// Legal uses: the receiver of a method call (s.f.Load()), the operand of &,
// and being selected further (s.f.Load's selector itself).
func (c *atomicAccess) checkTypedCopy(e ast.Expr, report func(ast.Node, string, ...any)) {
	// Only value expressions matter: `atomic.Int64` written as a type (in
	// a field, parameter, or result declaration) is not an access.
	tv, ok := c.pkg.Info.Types[e]
	if !ok || !tv.IsValue() || !isTypedAtomic(tv.Type) {
		return
	}
	t := tv.Type
	if len(c.stack) == 0 {
		return
	}
	parent := c.stack[len(c.stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == e {
			return // method access s.f.Load()
		}
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return // explicit pointer: legal hand-off
		}
	case *ast.StarExpr:
		return // deref of a *atomic.T; the deref result is checked instead
	}
	report(e, "%s value of type %s is copied: typed atomics must be used only through their methods or by pointer", exprString(e), t)
}

// exprString renders a short label for an expression in diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	}
	return "expression"
}
