package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Incomplete bool
}

// Load enumerates the packages matching the go-list patterns (relative to
// dir, which must lie inside the module), parses their non-test Go files,
// and type-checks them. Imports — both standard library and intra-module —
// are resolved from compiled export data produced by `go list -export`, so
// loading works offline and tolerates cgo-backed dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,Name,GoFiles"}, patterns...))
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if t.Name == "" || len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, t listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// goList runs `go list` with the given arguments and decodes the JSON
// stream it prints.
func goList(dir string, args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", args, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
