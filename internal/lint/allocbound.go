package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// allocbound is the escape-budget gate: it drives the compiler's own escape
// analysis (`go build -gcflags=-m`) over the hot-path packages, normalizes
// the "escapes to heap" / "moved to heap" diagnostics into a position-keyed
// set, and diffs that set against a checked-in budget file. Any escape the
// budget does not already account for fails lint with the compiler's reason
// string — so a new heap allocation on a zero-alloc path is caught at review
// time, on every path the compiler sees, not only on the paths a benchmark
// happens to exercise.
//
// Unlike the AST analyzers, allocbound is not a per-package syntax pass: it
// shells out to the go tool (stdlib-subprocess only, same dependency budget
// as the loader) and is wired through cmd/memca-lint beside the Run suite.

// Escape is one heap-escape diagnostic from the compiler, keyed by source
// position. File is slash-separated and relative to the module root.
type Escape struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// EscapeBudget is the checked-in allowance: for every budgeted package, the
// exact set of heap escapes the current code is known (and accepted) to
// have. The map is keyed by import path; entries are kept sorted so the
// JSON encoding is byte-stable across regenerations of identical code.
type EscapeBudget struct {
	// Comment documents the file's purpose and regeneration command inside
	// the artifact itself.
	Comment string `json:"comment"`
	// Packages maps import path -> sorted escape set.
	Packages map[string][]Escape `json:"packages"`
}

const budgetComment = "Escape budget for the zero-alloc hot-path packages. " +
	"Every entry is one heap escape the compiler reports today and the project accepts. " +
	"memca-lint fails on any escape not listed here. " +
	"Regenerate deliberately with: go run ./cmd/memca-lint -update-budget"

// DefaultBudgetPath is where the budget lives, relative to the module root.
const DefaultBudgetPath = "internal/lint/testdata/escape_budget.json"

// CollectEscapes compiles the given packages (import paths or ./-relative
// patterns, resolved in dir) with -gcflags=-m and returns the heap-escape
// diagnostics grouped by package, each group sorted by position. The go
// tool replays compiler output from the build cache, so repeated runs over
// unchanged code are fast and byte-identical.
func CollectEscapes(dir string, pkgs ...string) (map[string][]Escape, error) {
	if len(pkgs) == 0 {
		return map[string][]Escape{}, nil
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m %v: %w\n%s", pkgs, err, out.String())
	}
	return ParseEscapes(out.String()), nil
}

// ParseEscapes extracts the heap-escape diagnostics from `go build
// -gcflags=-m` output. The go tool groups each package's diagnostics under
// a "# import/path" header line; within a group, escape lines have the
// form "file.go:line:col: <what> escapes to heap" (or "moved to heap:
// <what>"). Inlining and parameter-leak chatter is ignored: only messages
// that mean "this allocation lands on the heap" are budgeted.
func ParseEscapes(output string) map[string][]Escape {
	byPkg := make(map[string][]Escape)
	pkg := ""
	for _, line := range strings.Split(output, "\n") {
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		esc, ok := parseEscapeLine(line)
		if !ok || pkg == "" {
			continue
		}
		byPkg[pkg] = append(byPkg[pkg], esc)
	}
	for p := range byPkg {
		sortEscapes(byPkg[p])
	}
	return byPkg
}

// parseEscapeLine splits "file:line:col: message" into an Escape.
func parseEscapeLine(line string) (Escape, bool) {
	// The message itself may contain colons (type literals), so split the
	// position prefix field by field from the left.
	rest := strings.TrimSpace(line)
	parts := strings.SplitN(rest, ":", 4)
	if len(parts) != 4 {
		return Escape{}, false
	}
	lineNo, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return Escape{}, false
	}
	return Escape{
		File:    filepath.ToSlash(parts[0]),
		Line:    lineNo,
		Col:     col,
		Message: strings.TrimSpace(parts[3]),
	}, true
}

func sortEscapes(es []Escape) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
}

// EncodeBudget renders the budget deterministically: sorted packages
// (encoding/json sorts map keys), sorted entries, two-space indentation,
// trailing newline. Two regenerations of identical code are byte-identical.
func EncodeBudget(byPkg map[string][]Escape) ([]byte, error) {
	b := EscapeBudget{Comment: budgetComment, Packages: byPkg}
	for p := range b.Packages {
		sortEscapes(b.Packages[p])
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("lint: encoding escape budget: %w", err)
	}
	return append(data, '\n'), nil
}

// ReadBudget loads and decodes a budget file.
func ReadBudget(path string) (*EscapeBudget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading escape budget: %w", err)
	}
	var b EscapeBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: decoding escape budget %s: %w", path, err)
	}
	if b.Packages == nil {
		b.Packages = map[string][]Escape{}
	}
	return &b, nil
}

// WriteBudget collects the current escapes of the budgeted packages and
// writes the budget file. It returns the total entry count.
func WriteBudget(dir, path string, pkgs []string) (int, error) {
	byPkg, err := CollectEscapes(dir, pkgs...)
	if err != nil {
		return 0, err
	}
	// Budgeted packages with zero escapes still get an (empty) entry so the
	// file names the full contract surface, not just its current offenders.
	for _, p := range pkgs {
		if byPkg[p] == nil {
			byPkg[p] = []Escape{}
		}
	}
	data, err := EncodeBudget(byPkg)
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, fmt.Errorf("lint: writing escape budget: %w", err)
	}
	n := 0
	for _, es := range byPkg {
		n += len(es)
	}
	return n, nil
}

// DiffEscapes compares the current escape set of one package against its
// budget. New escapes (present now, absent from the budget) are the gate's
// failures; stale entries (budgeted but no longer produced) mean the code
// improved and the budget can be tightened by regenerating.
func DiffEscapes(budget, current []Escape) (fresh, stale []Escape) {
	key := func(e Escape) string {
		return fmt.Sprintf("%s:%d:%d:%s", e.File, e.Line, e.Col, e.Message)
	}
	have := make(map[string]bool, len(budget))
	for _, e := range budget {
		have[key(e)] = true
	}
	now := make(map[string]bool, len(current))
	for _, e := range current {
		now[key(e)] = true
		if !have[key(e)] {
			fresh = append(fresh, e)
		}
	}
	for _, e := range budget {
		if !now[key(e)] {
			stale = append(stale, e)
		}
	}
	sortEscapes(fresh)
	sortEscapes(stale)
	return fresh, stale
}

// CheckEscapeBudget runs the allocbound gate: collect the current escapes
// of every budgeted package and diff them against the budget file. New
// escapes come back as diagnostics (one per escape, carrying the compiler's
// reason); stale budget entries come back separately as non-fatal notices.
func CheckEscapeBudget(dir, budgetPath string, cfg *Config) (diags []Diagnostic, staleNotes []string, err error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	budget, err := ReadBudget(budgetPath)
	if err != nil {
		return nil, nil, err
	}
	current, err := CollectEscapes(dir, cfg.EscapeBudget...)
	if err != nil {
		return nil, nil, err
	}
	for _, pkg := range cfg.EscapeBudget {
		budgeted, ok := budget.Packages[pkg]
		if !ok {
			return nil, nil, fmt.Errorf("lint: package %s is under the escape budget but missing from %s; regenerate with -update-budget", pkg, budgetPath)
		}
		fresh, stale := DiffEscapes(budgeted, current[pkg])
		for _, e := range fresh {
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: e.File, Line: e.Line, Column: e.Col},
				Analyzer: "allocbound",
				Message:  fmt.Sprintf("new heap escape in budgeted package %s: %s (accept deliberately with `go run ./cmd/memca-lint -update-budget`)", pkg, e.Message),
			})
		}
		for _, e := range stale {
			staleNotes = append(staleNotes, fmt.Sprintf("%s:%d:%d: budgeted escape no longer produced (%s) — tighten with -update-budget", e.File, e.Line, e.Col, e.Message))
		}
	}
	sort.Strings(staleNotes)
	return diags, staleNotes, nil
}
