package lint

import "go/ast"

// inspectWithStack walks the subtree in depth-first order, invoking fn for
// every node with the stack of enclosing nodes (outermost first, excluding
// the node itself). The stack is rooted at root, not at the file.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingFuncType returns the type of the innermost function declaration
// or literal on the stack, or nil at package scope (e.g. a package-level
// variable initializer).
func enclosingFuncType(stack []ast.Node) *ast.FuncType {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Type
		case *ast.FuncLit:
			return f.Type
		}
	}
	return nil
}
