package lint

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// expectation is one `// want "rx"` annotation in a golden file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// CheckExpectations compares diagnostics against the `// want` annotations
// in the given golden files. A line may carry several quoted patterns:
//
//	rand.Intn(6) // want `global rand\.Intn` "injected"
//
// Every diagnostic on an annotated line must match one pattern and every
// pattern must match one diagnostic; diagnostics on unannotated lines are
// failures. The returned slice lists every mismatch, empty when clean.
func CheckExpectations(files []string, diags []Diagnostic) ([]string, error) {
	var expects []*expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			quoted := quotedRe.FindAllString(m[1], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment: %s", file, i+1, line)
			}
			for _, q := range quoted {
				var pat string
				if strings.HasPrefix(q, "`") {
					pat = strings.Trim(q, "`")
				} else {
					pat, err = strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad pattern %s: %v", file, i+1, q, err)
					}
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad regexp %q: %v", file, i+1, pat, err)
				}
				expects = append(expects, &expectation{file: file, line: i + 1, pattern: rx})
			}
		}
	}

	var problems []string
	for _, d := range diags {
		found := false
		for _, e := range expects {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic at %s", d))
		}
	}
	for _, e := range expects {
		if !e.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched %q", e.file, e.line, e.pattern))
		}
	}
	sort.Strings(problems)
	return problems, nil
}
