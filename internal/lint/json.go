package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonDiagnostic is the machine-readable shape of one finding, one object
// per line (JSON Lines), for editor integrations and CI tooling.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders diagnostics as JSON Lines: one object per diagnostic,
// fields file, line, col, analyzer, message. An empty diagnostic list
// writes nothing.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		jd := jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if err := enc.Encode(&jd); err != nil {
			return fmt.Errorf("lint: encoding diagnostic: %w", err)
		}
	}
	return nil
}

// WriteGitHubAnnotations renders diagnostics as GitHub Actions workflow
// commands (`::error file=...,line=...,col=...::message`), so CI findings
// surface inline on the pull-request diff.
func WriteGitHubAnnotations(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		msg := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, escapeAnnotation(msg))
		if err != nil {
			return err
		}
	}
	return nil
}

// escapeAnnotation applies the workflow-command data escaping rules:
// percent, carriage return, and newline must be URL-style encoded or the
// runner truncates the message at the first newline.
func escapeAnnotation(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}
