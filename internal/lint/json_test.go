package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/sim/engine.go", Line: 12, Column: 3},
			Analyzer: "hotpathalloc",
			Message:  "fmt.Sprintf allocates on every call [hot path: Step is marked //memca:hotpath]",
		},
		{
			Pos:      token.Position{Filename: "internal/stats/sample.go", Line: 7, Column: 1},
			Analyzer: "atomicmix",
			Message:  "plain access to hits, 100% of the time",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want one JSON object per diagnostic (2):\n%s", len(lines), buf.String())
	}
	var first struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v\n%s", err, lines[0])
	}
	if first.File != "internal/sim/engine.go" || first.Line != 12 || first.Col != 3 ||
		first.Analyzer != "hotpathalloc" || !strings.Contains(first.Message, "fmt.Sprintf") {
		t.Errorf("line 1 fields wrong: %+v", first)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty diagnostics must write nothing, got %q", buf.String())
	}
}

func TestWriteGitHubAnnotations(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGitHubAnnotations(&buf, sampleDiags()); err != nil {
		t.Fatalf("WriteGitHubAnnotations: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "::error file=internal/sim/engine.go,line=12,col=3::") {
		t.Errorf("missing annotation header:\n%s", out)
	}
	// The % in the second message must be escaped or the runner mangles it.
	if !strings.Contains(out, "100%25") {
		t.Errorf("percent not escaped in annotation:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("got %d lines, want 2", lines)
	}
}
