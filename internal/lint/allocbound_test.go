package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixturePkg is the deliberate-escape corpus under testdata; building it by
// import path keeps the diagnostics' file paths relative to this directory.
const fixturePkg = "memca/internal/lint/testdata/allocbound"

func TestParseEscapes(t *testing.T) {
	output := strings.Join([]string{
		"# memca/internal/sim",
		"internal/sim/engine.go:10:6: can inline (*Engine).Now",
		"internal/sim/engine.go:42:13: leaking param: e",
		"# memca/internal/stats",
		"internal/stats/histogram.go:26:76: base escapes to heap",
		"internal/stats/histogram.go:12:2: moved to heap: cuts",
		"internal/stats/sample.go:8:10: make([]float64, 0, n) escapes to heap",
		"",
	}, "\n")
	byPkg := ParseEscapes(output)
	if len(byPkg) != 1 {
		t.Fatalf("got %d packages, want 1 (inline/leak chatter must not create entries): %v", len(byPkg), byPkg)
	}
	got := byPkg["memca/internal/stats"]
	want := []Escape{
		{File: "internal/stats/histogram.go", Line: 12, Col: 2, Message: "moved to heap: cuts"},
		{File: "internal/stats/histogram.go", Line: 26, Col: 76, Message: "base escapes to heap"},
		{File: "internal/stats/sample.go", Line: 8, Col: 10, Message: "make([]float64, 0, n) escapes to heap"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d escapes, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("escape %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDiffEscapes(t *testing.T) {
	budget := []Escape{
		{File: "a.go", Line: 1, Col: 1, Message: "x escapes to heap"},
		{File: "a.go", Line: 9, Col: 1, Message: "moved to heap: gone"},
	}
	current := []Escape{
		{File: "a.go", Line: 1, Col: 1, Message: "x escapes to heap"},
		{File: "b.go", Line: 3, Col: 7, Message: "y escapes to heap"},
	}
	fresh, stale := DiffEscapes(budget, current)
	if len(fresh) != 1 || fresh[0].File != "b.go" {
		t.Errorf("fresh = %v, want the b.go escape only", fresh)
	}
	if len(stale) != 1 || stale[0].Line != 9 {
		t.Errorf("stale = %v, want the line-9 entry only", stale)
	}
}

// TestBudgetByteStable regenerates the fixture budget twice and requires
// byte-identical output: the file must not churn under version control when
// the code has not changed.
func TestBudgetByteStable(t *testing.T) {
	first, err := CollectEscapes(".", fixturePkg)
	if err != nil {
		t.Fatalf("CollectEscapes: %v", err)
	}
	second, err := CollectEscapes(".", fixturePkg)
	if err != nil {
		t.Fatalf("CollectEscapes (second run): %v", err)
	}
	a, err := EncodeBudget(first)
	if err != nil {
		t.Fatalf("EncodeBudget: %v", err)
	}
	b, err := EncodeBudget(second)
	if err != nil {
		t.Fatalf("EncodeBudget (second run): %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("budget not byte-stable across regenerations:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if a[len(a)-1] != '\n' {
		t.Error("encoded budget must end in a newline")
	}
	es := first[fixturePkg]
	if len(es) < 3 {
		t.Fatalf("fixture produced %d escapes, want at least 3: %v", len(es), es)
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].File > es[i].File || (es[i-1].File == es[i].File && es[i-1].Line > es[i].Line) {
			t.Errorf("escapes not sorted: %+v before %+v", es[i-1], es[i])
		}
	}
}

// TestBudgetRoundTrip writes the fixture budget and reads it back.
func TestBudgetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.json")
	n, err := WriteBudget(".", path, []string{fixturePkg})
	if err != nil {
		t.Fatalf("WriteBudget: %v", err)
	}
	if n < 3 {
		t.Fatalf("WriteBudget wrote %d entries, want at least 3", n)
	}
	b, err := ReadBudget(path)
	if err != nil {
		t.Fatalf("ReadBudget: %v", err)
	}
	if len(b.Packages[fixturePkg]) != n {
		t.Errorf("round-trip lost entries: wrote %d, read %d", n, len(b.Packages[fixturePkg]))
	}
	if !strings.Contains(b.Comment, "-update-budget") {
		t.Errorf("budget comment must carry the regeneration command, got %q", b.Comment)
	}
}

// TestNewEscapeReported removes one known entry from the fixture budget and
// proves the gate reports it as a new escape carrying the compiler's reason.
func TestNewEscapeReported(t *testing.T) {
	byPkg, err := CollectEscapes(".", fixturePkg)
	if err != nil {
		t.Fatalf("CollectEscapes: %v", err)
	}
	es := byPkg[fixturePkg]
	if len(es) == 0 {
		t.Fatal("fixture produced no escapes")
	}
	// Drop the "moved to heap" entry to simulate code that newly escapes.
	removed := es[0]
	for _, e := range es {
		if strings.HasPrefix(e.Message, "moved to heap") {
			removed = e
			break
		}
	}
	var trimmed []Escape
	for _, e := range es {
		if e != removed {
			trimmed = append(trimmed, e)
		}
	}
	// Plus a bogus entry the code no longer produces, to exercise the
	// stale-note path.
	trimmed = append(trimmed, Escape{File: "testdata/allocbound/escapes.go", Line: 999, Col: 1, Message: "ghost escapes to heap"})

	path := filepath.Join(t.TempDir(), "budget.json")
	data, err := EncodeBudget(map[string][]Escape{fixturePkg: trimmed})
	if err != nil {
		t.Fatalf("EncodeBudget: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing trimmed budget: %v", err)
	}

	cfg := &Config{EscapeBudget: []string{fixturePkg}}
	diags, stale, err := CheckEscapeBudget(".", path, cfg)
	if err != nil {
		t.Fatalf("CheckEscapeBudget: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the removed escape: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "allocbound" {
		t.Errorf("analyzer = %q, want allocbound", d.Analyzer)
	}
	if d.Pos.Filename != removed.File || d.Pos.Line != removed.Line {
		t.Errorf("diagnostic at %s:%d, want %s:%d", d.Pos.Filename, d.Pos.Line, removed.File, removed.Line)
	}
	if !strings.Contains(d.Message, removed.Message) {
		t.Errorf("diagnostic %q must carry the compiler reason %q", d.Message, removed.Message)
	}
	if !strings.Contains(d.Message, "-update-budget") {
		t.Errorf("diagnostic %q must point at the regeneration command", d.Message)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "ghost escapes to heap") {
		t.Errorf("stale notes = %v, want the ghost entry only", stale)
	}
}

// TestCheckEscapeBudgetMissingPackage pins the hard error when a budgeted
// package has no entry at all in the file.
func TestCheckEscapeBudgetMissingPackage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.json")
	data, err := EncodeBudget(map[string][]Escape{})
	if err != nil {
		t.Fatalf("EncodeBudget: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing empty budget: %v", err)
	}
	cfg := &Config{EscapeBudget: []string{fixturePkg}}
	if _, _, err := CheckEscapeBudget(".", path, cfg); err == nil || !strings.Contains(err.Error(), "-update-budget") {
		t.Errorf("missing package: err = %v, want -update-budget guidance", err)
	}
}
