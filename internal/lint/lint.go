// Package lint implements memca-lint, the project's custom static-analysis
// suite. It enforces the invariants the paper reproduction rests on:
//
//   - simdeterminism: simulation-path packages draw all randomness from an
//     injected *rand.Rand; the global math/rand source and nondeterministic
//     seeds are forbidden there.
//   - clockdiscipline: simulated-time code never touches the wall clock.
//     Only the real-socket framework packages and the binaries in cmd/ and
//     examples/ may call time.Now, time.Sleep, and friends.
//   - floatcompare: no exact ==/!= on floating-point operands outside test
//     files; epsilon comparisons go through internal/stats.
//   - errdrop: no silently discarded error return values in non-test code.
//   - hotpathalloc: functions marked //memca:hotpath (and everything they
//     call within their package) avoid alloc-prone constructs — capturing
//     closures, interface boxing, fmt, string concatenation, un-presized
//     append/make(map).
//   - atomicmix: a variable accessed through sync/atomic anywhere in a
//     package is never read or written plainly elsewhere in that package,
//     and typed atomics are never copied by value.
//   - deprecatedcall: simulation-path packages never call the legacy
//     positional wrappers (ProfileBandwidth, BandwidthSweep,
//     PlanAttackArgs); in-repo code uses the spec-based API so the
//     wrappers stay deletable.
//   - allocbound (wired through cmd/memca-lint, not a per-package AST
//     pass): the compiler's own escape analysis over the hot-path packages
//     must match the checked-in budget; any new heap escape fails lint.
//
// The analyzers are built on the standard library only (go/parser, go/types
// with compiled export data from `go list -export`), so the suite adds no
// module dependencies and runs offline.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one type-checked, non-test compilation unit under analysis.
// Test files (_test.go) are deliberately excluded: the determinism and
// error-handling invariants must hold in library code, while tests run
// under the go test harness with its own timeouts and failure reporting.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Analyzer is one named check. Run inspects a package and returns findings;
// it must not mutate the package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package, *Config) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerSimDeterminism(),
		AnalyzerClockDiscipline(),
		AnalyzerFloatCompare(),
		AnalyzerErrDrop(),
		AnalyzerHotPathAlloc(),
		AnalyzerAtomicMix(),
		AnalyzerDeprecatedCall(),
	}
}

// Run applies every analyzer to every package and returns all findings
// sorted by position. A nil config selects DefaultConfig.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(pkg, cfg)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pos, out[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// importedPackage reports the import path of the package an identifier
// refers to, or "" when the expression is not a package qualifier.
func importedPackage(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
