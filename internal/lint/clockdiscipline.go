package lint

import (
	"fmt"
	"go/ast"
)

// wallClockFuncs are the package time functions that read or wait on the
// real clock. Pure conversions and constants (time.Duration, time.Second,
// time.Unix, Duration arithmetic) are fine everywhere — simulated time is
// itself carried as time.Duration.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// deadlineCtxFuncs are the context constructors that arm a wall-clock
// timer under the hood: a sim-path package calling context.WithTimeout is
// waiting on real time exactly as if it had called time.AfterFunc itself.
// Deadline-free constructors (Background, WithCancel, WithValue) are fine.
var deadlineCtxFuncs = map[string]bool{
	"WithTimeout":       true,
	"WithTimeoutCause":  true,
	"WithDeadline":      true,
	"WithDeadlineCause": true,
}

// AnalyzerClockDiscipline enforces the simulated/wall clock boundary. The
// policy is default-deny: only packages on the Config.ClockAllowed list
// (the real-socket framework, the monitor, and the binaries) may call the
// wall-clock functions; everything else — in particular every sim-path
// package — must take time from the simulation engine's virtual clock.
// Besides package time, the deadline-carrying context constructors are
// caught too: context.WithTimeout arms a runtime timer on the real clock.
func AnalyzerClockDiscipline() *Analyzer {
	return &Analyzer{
		Name: "clockdiscipline",
		Doc:  "simulated-time code must never read or wait on the wall clock",
		Run:  runClockDiscipline,
	}
}

func runClockDiscipline(pkg *Package, cfg *Config) []Diagnostic {
	if cfg.IsClockAllowed(pkg.ImportPath) {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch importedPackage(pkg.Info, sel.X) {
			case "time":
				if !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(sel.Pos()),
					Analyzer: "clockdiscipline",
					Message: fmt.Sprintf("wall-clock call time.%s in %s: simulated time must come from the engine's virtual clock (sim.Engine.Now / Schedule)",
						sel.Sel.Name, pkg.ImportPath),
				})
			case "context":
				if !deadlineCtxFuncs[sel.Sel.Name] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      pkg.Fset.Position(sel.Pos()),
					Analyzer: "clockdiscipline",
					Message: fmt.Sprintf("context.%s in %s arms a wall-clock timer: simulated deadlines must be scheduled on the engine's virtual clock",
						sel.Sel.Name, pkg.ImportPath),
				})
			}
			return true
		})
	}
	return diags
}
