package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AnalyzerDeprecatedCall flags calls from sim-path packages to the legacy
// positional wrappers listed in Config.DeprecatedCalls. The wrappers are
// kept so external callers keep compiling, but in-repo simulation code
// must use the spec-based forms (Profile/Sweep with a ProfileSpec,
// PlanAttack with a PlanGoal) — otherwise the deprecation arc never
// finishes and the wrappers can never be deleted.
//
// Test files are outside the loader's scope, so the wrapper-equivalence
// regression tests that deliberately exercise the deprecated forms keep
// working.
func AnalyzerDeprecatedCall() *Analyzer {
	return &Analyzer{
		Name: "deprecatedcall",
		Doc:  "sim-path packages must not call deprecated positional wrappers; use the spec-based API",
		Run:  runDeprecatedCall,
	}
}

func runDeprecatedCall(pkg *Package, cfg *Config) []Diagnostic {
	if len(cfg.DeprecatedCalls) == 0 || !cfg.IsSimPath(pkg.ImportPath) {
		return nil
	}
	banned := make(map[string]bool, len(cfg.DeprecatedCalls))
	for _, name := range cfg.DeprecatedCalls {
		banned[name] = true
	}
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			qualified := calledFunction(pkg, call.Fun)
			if qualified == "" || !banned[qualified] {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "deprecatedcall",
				Message:  fmt.Sprintf("call to deprecated %s: use its spec-based replacement", qualified),
			})
			return true
		})
	}
	return diags
}

// calledFunction resolves a call target to its fully qualified
// "import/path.Name" form. It covers the two shapes deprecated wrappers
// are reached through — a package-qualified selector (memmodel.Sweep's
// predecessor from another package) and a bare identifier (a call from
// inside the wrapper's own package). Methods and local variables of
// function type resolve to "".
func calledFunction(pkg *Package, fun ast.Expr) string {
	switch fn := fun.(type) {
	case *ast.SelectorExpr:
		if path := importedPackage(pkg.Info, fn.X); path != "" {
			return path + "." + fn.Sel.Name
		}
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[fn].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkg.ImportPath {
			return ""
		}
		if obj.Type().(*types.Signature).Recv() != nil {
			return ""
		}
		return pkg.ImportPath + "." + obj.Name()
	}
	return ""
}
