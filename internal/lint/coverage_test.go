package lint

import "testing"

// TestSimPathCoversEngine pins the determinism contract's reach: the event
// engine and everything the redesigned zero-allocation path touches must
// stay on the sim side of the clock boundary. Removing one of these from
// DefaultConfig would silently exempt it from the analyzers.
func TestSimPathCoversEngine(t *testing.T) {
	cfg := DefaultConfig()
	for _, path := range []string{
		"memca",
		"memca/internal/sim",
		"memca/internal/queueing",
		"memca/internal/workload",
		"memca/internal/stats",
		"memca/internal/core",
		"memca/internal/sweep",
		"memca/internal/telemetry",
	} {
		if !cfg.IsSimPath(path) {
			t.Errorf("IsSimPath(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"memca/cmd/benchjson",
		"memca/cmd/membench",
		"memca/cmd/memca-trace",
		"memca/examples/quickstart",
	} {
		if cfg.IsSimPath(path) {
			t.Errorf("IsSimPath(%q) = true, want false (binary)", path)
		}
		if !cfg.IsClockAllowed(path) {
			t.Errorf("IsClockAllowed(%q) = false, want true (binary)", path)
		}
	}
}

// TestEngineFilesClean runs the full analyzer suite over the real engine
// packages — not golden fixtures — so a determinism or clock regression in
// the rewritten event loop and pooled queueing path fails this unit test,
// not just the out-of-band `make lint` gate.
func TestEngineFilesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks real packages")
	}
	pkgs, err := Load("../..", "./internal/sim", "./internal/queueing", "./internal/workload", "./internal/core", "./internal/telemetry", "./cmd/memca-trace")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 6 {
		t.Fatalf("loaded %d packages, want 6", len(pkgs))
	}
	diags := Run(pkgs, Analyzers(), DefaultConfig())
	for _, d := range diags {
		t.Errorf("unexpected finding: %v", d)
	}
}
