package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSimPathCoversEngine pins the determinism contract's reach: the event
// engine and everything the redesigned zero-allocation path touches must
// stay on the sim side of the clock boundary. Removing one of these from
// DefaultConfig would silently exempt it from the analyzers.
func TestSimPathCoversEngine(t *testing.T) {
	cfg := DefaultConfig()
	for _, path := range []string{
		"memca",
		"memca/internal/sim",
		"memca/internal/queueing",
		"memca/internal/workload",
		"memca/internal/stats",
		"memca/internal/core",
		"memca/internal/sweep",
		"memca/internal/telemetry",
	} {
		if !cfg.IsSimPath(path) {
			t.Errorf("IsSimPath(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"memca/cmd/benchjson",
		"memca/cmd/membench",
		"memca/cmd/memca-trace",
		"memca/examples/quickstart",
	} {
		if cfg.IsSimPath(path) {
			t.Errorf("IsSimPath(%q) = true, want false (binary)", path)
		}
		if !cfg.IsClockAllowed(path) {
			t.Errorf("IsClockAllowed(%q) = false, want true (binary)", path)
		}
	}
}

// TestEngineFilesClean runs the full analyzer suite over the real engine
// packages — not golden fixtures — so a determinism or clock regression in
// the rewritten event loop and pooled queueing path fails this unit test,
// not just the out-of-band `make lint` gate.
func TestEngineFilesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks real packages")
	}
	pkgs, err := Load("../..",
		"./internal/sim", "./internal/queueing", "./internal/workload",
		"./internal/core", "./internal/telemetry", "./internal/telemetry/live",
		"./internal/stats", "./cmd/memca-trace")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 8 {
		t.Fatalf("loaded %d packages, want 8", len(pkgs))
	}
	diags := Run(pkgs, Analyzers(), DefaultConfig())
	for _, d := range diags {
		t.Errorf("unexpected finding: %v", d)
	}
}

// TestSimPathFreeOfDeprecatedCalls loads the real packages that sit on
// the sim path around the legacy positional wrappers — the facade that
// declares them, the package that implements them, and the planner and
// figure pipelines built on top — and asserts none of them calls a
// wrapper. This is the deprecation arc's finish line: when this test and
// the wrapper-equivalence tests both pass, the wrappers are pure
// compatibility surface and can be deleted in a future major version.
func TestSimPathFreeOfDeprecatedCalls(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks real packages")
	}
	pkgs, err := Load("../..",
		".", "./internal/memmodel", "./internal/core",
		"./internal/plan", "./internal/spec", "./internal/figures")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 6 {
		t.Fatalf("loaded %d packages, want 6", len(pkgs))
	}
	diags := Run(pkgs, []*Analyzer{AnalyzerDeprecatedCall()}, DefaultConfig())
	for _, d := range diags {
		t.Errorf("deprecated wrapper still called: %v", d)
	}
}

// TestEveryInternalPackageClassified walks internal/ on disk and fails if
// any package directory is classified neither SimPath, ClockAllowed, nor
// Tools. This closes the PR-5 gap where a freshly added package
// (telemetry/live nearly did it) would silently fall outside every
// contract: the default-deny model only works if "unclassified" is loud.
func TestEveryInternalPackageClassified(t *testing.T) {
	cfg := DefaultConfig()
	root := filepath.Join("..", "..")
	internal := filepath.Join(root, "internal")
	err := filepath.WalkDir(internal, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" {
			return filepath.SkipDir
		}
		// Only directories that actually hold Go files form packages.
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := "memca/" + filepath.ToSlash(rel)
		n := 0
		if cfg.IsSimPath(importPath) {
			n++
		}
		if cfg.IsClockAllowed(importPath) {
			n++
		}
		if cfg.IsTool(importPath) {
			n++
		}
		switch n {
		case 0:
			t.Errorf("package %s is classified neither SimPath, ClockAllowed, nor Tools: add it to DefaultConfig deliberately", importPath)
		case 1:
			// exactly one classification: correct
		default:
			t.Errorf("package %s has %d classifications, want exactly 1", importPath, n)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/: %v", err)
	}
}
