package lint

import "strings"

// Config classifies packages for the analyzers. The model is default-deny:
// a package gets wall-clock access only when explicitly allowlisted, so a
// freshly added package inherits the strict simulated-time discipline until
// someone consciously decides otherwise.
type Config struct {
	// SimPath lists import paths under the determinism contract: no
	// global math/rand, no nondeterministically seeded RNG construction,
	// no wall-clock calls. Entries are exact import paths.
	SimPath []string

	// ClockAllowed lists import paths that may legitimately touch the
	// wall clock: the real-socket measurement framework and binaries.
	// Entries ending in "/..." allow a whole subtree.
	ClockAllowed []string

	// Tools lists import paths that are development tooling rather than
	// simulation or measurement code (the lint suite itself). They are
	// exempt from both the determinism and the clock contracts, but the
	// coverage completeness test requires every internal package to be
	// classified into exactly one of the three lists.
	Tools []string

	// EscapeBudget lists the import paths under the allocbound gate: the
	// zero-alloc hot-path packages whose compiler escape analysis must
	// match the checked-in budget file. Entries are exact import paths.
	EscapeBudget []string

	// DeprecatedCalls lists fully qualified functions ("import/path.Name")
	// that sim-path packages must not call: the legacy positional wrappers
	// kept only so external callers keep compiling. Test files are outside
	// the loader's scope, so wrapper-equivalence regression tests may still
	// exercise them.
	DeprecatedCalls []string
}

// DefaultConfig returns the project policy.
//
// The sim-path set covers every package on the simulated side of the clock
// boundary described in DESIGN.md: the engine itself, the queueing network,
// workload generation, the cloud/attack/defense models, the analytical
// model, the spec vocabulary and the capacity planner built on it (pure
// arithmetic over the analytical model — any wall-clock use would make
// sizing decisions irreproducible), statistics kernels, figure pipelines,
// the parallel sweep engine
// (its goroutines carry independent single-threaded simulations and no
// randomness of their own), the per-request telemetry tracer (a pure
// observer of the simulation — any wall-clock or stray-RNG use would
// break trace-export determinism), and the orchestration layer that
// wires them (core and the memca facade).
//
// The clock-allowed set covers the packages that measure or interact with
// the real world: the memcached-protocol framework and victim daemon that
// drive real sockets, the resource monitor, and every binary under cmd/
// and examples/.
func DefaultConfig() *Config {
	return &Config{
		SimPath: []string{
			"memca",
			"memca/internal/analytical",
			"memca/internal/attack",
			"memca/internal/cloud",
			"memca/internal/control",
			"memca/internal/core",
			"memca/internal/defense",
			// The deterministic half of the distributed sweep fabric:
			// shard math, record framing, manifest hashing, recovery, and
			// merging never read the clock or any RNG (file I/O and fsync
			// are fine — durability is not nondeterminism). Orchestration
			// lives in dsweep/coord, which is clock-allowed below.
			"memca/internal/dsweep",
			"memca/internal/figures",
			"memca/internal/memmodel",
			"memca/internal/plan",
			"memca/internal/queueing",
			"memca/internal/sim",
			"memca/internal/spec",
			"memca/internal/stats",
			"memca/internal/sweep",
			"memca/internal/telemetry",
			"memca/internal/trace",
			"memca/internal/workload",
		},
		ClockAllowed: []string{
			"memca/internal/memcafw",
			"memca/internal/victimd",
			"memca/internal/monitor",
			// The live collector timestamps real-socket spans; it sits
			// beside the sim tracer in internal/telemetry but on the
			// wall-clock side of the boundary (SimPath entries are exact,
			// so the parent package stays under the contract).
			"memca/internal/telemetry/live",
			// The worker-process coordinator polls checkpoint files and
			// retries dead shards on real time; everything that determines
			// results stays in the sim-path internal/dsweep (SimPath
			// entries are exact, so the parent stays under the contract).
			"memca/internal/dsweep/coord",
			"memca/cmd/...",
			"memca/examples/...",
		},
		Tools: []string{
			"memca/internal/lint",
		},
		EscapeBudget: []string{
			"memca/internal/memmodel",
			"memca/internal/queueing",
			"memca/internal/sim",
			"memca/internal/stats",
			"memca/internal/telemetry",
			"memca/internal/telemetry/live",
			"memca/internal/workload",
		},
		DeprecatedCalls: []string{
			"memca.PlanAttackArgs",
			"memca.ProfileBandwidth",
			"memca.BandwidthSweep",
			"memca/internal/memmodel.ProfileBandwidth",
			"memca/internal/memmodel.BandwidthSweep",
		},
	}
}

// IsSimPath reports whether the package is under the determinism contract.
func (c *Config) IsSimPath(importPath string) bool {
	for _, p := range c.SimPath {
		if matchPattern(p, importPath) {
			return true
		}
	}
	return false
}

// IsClockAllowed reports whether the package may use the wall clock.
func (c *Config) IsClockAllowed(importPath string) bool {
	for _, p := range c.ClockAllowed {
		if matchPattern(p, importPath) {
			return true
		}
	}
	return false
}

// IsTool reports whether the package is development tooling exempt from
// both the determinism and clock contracts.
func (c *Config) IsTool(importPath string) bool {
	for _, p := range c.Tools {
		if matchPattern(p, importPath) {
			return true
		}
	}
	return false
}

// matchPattern matches an exact import path, or a subtree when the pattern
// ends in "/...". The "/..." form also matches the subtree root itself.
func matchPattern(pattern, path string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return pattern == path
}
