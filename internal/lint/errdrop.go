package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerErrDrop flags statements that call a function returning an error
// and silently drop the result: bare expression statements, `go` and
// `defer` statements. An explicit `_ =` assignment is visible in review and
// is not flagged — but fixes in this tree should prefer handling the error
// (see ISSUE 1); the analyzer exists to stop the *silent* kind.
//
// Calls that cannot usefully fail are exempt: the fmt print family writing
// to stdout/stderr, and writes to in-memory sinks (strings.Builder,
// bytes.Buffer) whose error results are documented to always be nil.
func AnalyzerErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "no silently discarded error return values in non-test code",
		Run:  runErrDrop,
	}
}

func runErrDrop(pkg *Package, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				how = "call"
			case *ast.GoStmt:
				call, how = s.Call, "go statement"
			case *ast.DeferStmt:
				call, how = s.Call, "defer"
			}
			if call == nil || !returnsError(pkg.Info, call) || exemptCall(pkg.Info, call) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "errdrop",
				Message:  fmt.Sprintf("%s discards error result of %s", how, callName(pkg.Info, call)),
			})
			return true
		})
	}
	return diags
}

// returnsError reports whether the call yields an error, alone or as part
// of a result tuple.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// exemptCall reports whether the dropped error is conventionally ignorable.
func exemptCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	// fmt.Print/Printf/Println to stdout; fmt.Fprint* to stderr/stdout
	// or an in-memory sink.
	if importedPackage(info, sel.X) == "fmt" {
		switch {
		case name == "Print" || name == "Printf" || name == "Println":
			return true
		case strings.HasPrefix(name, "Fprint") && len(call.Args) > 0:
			return stdStream(info, call.Args[0]) || memorySink(info.TypeOf(call.Args[0]))
		}
		return false
	}
	// Writes on strings.Builder / bytes.Buffer never return a non-nil error.
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return memorySink(s.Recv())
	}
	return false
}

// stdStream reports whether the expression is os.Stdout or os.Stderr.
func stdStream(info *types.Info, x ast.Expr) bool {
	sel, ok := x.(*ast.SelectorExpr)
	if !ok || importedPackage(info, sel.X) != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

// memorySink reports whether t is (a pointer to) strings.Builder or
// bytes.Buffer.
func memorySink(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch types.TypeString(t, nil) {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// callName renders the callee for diagnostics (pkg.Func or recv.Method).
func callName(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function"
}
