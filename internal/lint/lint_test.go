package lint

import (
	"strings"
	"testing"
)

// loadGolden loads one testdata package and returns it with the list of
// files the diagnostics will be anchored to.
func loadGolden(t *testing.T, name string) (*Package, []string) {
	t.Helper()
	pkgs, err := Load(".", "./testdata/"+name)
	if err != nil {
		t.Fatalf("Load testdata/%s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load testdata/%s: got %d packages, want 1", name, len(pkgs))
	}
	pkg := pkgs[0]
	var files []string
	for _, f := range pkg.Syntax {
		files = append(files, pkg.Fset.Position(f.Pos()).Filename)
	}
	return pkg, files
}

// runGolden applies one analyzer to a golden package and checks the
// `// want` annotations.
func runGolden(t *testing.T, name string, a *Analyzer, cfg *Config) {
	t.Helper()
	pkg, files := loadGolden(t, name)
	diags := Run([]*Package{pkg}, []*Analyzer{a}, cfg)
	problems, err := CheckExpectations(files, diags)
	if err != nil {
		t.Fatalf("CheckExpectations: %v", err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// goldenConfig treats every testdata package as sim-path and nothing as
// clock-allowed, so the golden files exercise the strict side of each rule.
func goldenConfig() *Config {
	return &Config{SimPath: []string{"memca/internal/lint/testdata/..."}}
}

func TestSimDeterminismGolden(t *testing.T) {
	runGolden(t, "simdeterminism", AnalyzerSimDeterminism(), goldenConfig())
}

func TestClockDisciplineGolden(t *testing.T) {
	runGolden(t, "clockdiscipline", AnalyzerClockDiscipline(), goldenConfig())
}

func TestFloatCompareGolden(t *testing.T) {
	runGolden(t, "floatcompare", AnalyzerFloatCompare(), goldenConfig())
}

func TestErrDropGolden(t *testing.T) {
	runGolden(t, "errdrop", AnalyzerErrDrop(), goldenConfig())
}

func TestHotPathAllocGolden(t *testing.T) {
	runGolden(t, "hotpathalloc", AnalyzerHotPathAlloc(), goldenConfig())
}

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, "atomicmix", AnalyzerAtomicMix(), goldenConfig())
}

func TestDeprecatedCallGolden(t *testing.T) {
	cfg := goldenConfig()
	cfg.DeprecatedCalls = []string{
		"memca/internal/lint/testdata/deprecatedcall.profileBandwidth",
		"memca/internal/memmodel.ProfileBandwidth",
		"memca/internal/memmodel.BandwidthSweep",
	}
	runGolden(t, "deprecatedcall", AnalyzerDeprecatedCall(), cfg)
}

// TestDeprecatedCallSilentOffSimPath pins the scoping: the deprecation
// gate polices the sim path only, so binaries and external-style callers
// may keep using the wrappers until they migrate on their own schedule.
func TestDeprecatedCallSilentOffSimPath(t *testing.T) {
	pkg, _ := loadGolden(t, "deprecatedcall")
	cfg := &Config{DeprecatedCalls: DefaultConfig().DeprecatedCalls} // no sim-path packages
	if diags := Run([]*Package{pkg}, []*Analyzer{AnalyzerDeprecatedCall()}, cfg); len(diags) != 0 {
		t.Errorf("deprecatedcall on non-sim-path package: got %d diagnostics, want 0", len(diags))
	}
}

// TestSimPathSilentWhenNotConfigured pins the scoping: simdeterminism and
// clockdiscipline must stay quiet on packages outside their police beat.
func TestSimPathSilentWhenNotConfigured(t *testing.T) {
	pkg, _ := loadGolden(t, "simdeterminism")
	cfg := &Config{} // no sim-path packages
	if diags := Run([]*Package{pkg}, []*Analyzer{AnalyzerSimDeterminism()}, cfg); len(diags) != 0 {
		t.Errorf("simdeterminism on non-sim-path package: got %d diagnostics, want 0", len(diags))
	}

	clock, _ := loadGolden(t, "clockdiscipline")
	allowed := &Config{ClockAllowed: []string{"memca/internal/lint/testdata/..."}}
	if diags := Run([]*Package{clock}, []*Analyzer{AnalyzerClockDiscipline()}, allowed); len(diags) != 0 {
		t.Errorf("clockdiscipline on allowlisted package: got %d diagnostics, want 0", len(diags))
	}
}

func TestDefaultConfigPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		path                  string
		simPath, clockAllowed bool
	}{
		{"memca", true, false},
		{"memca/internal/sim", true, false},
		{"memca/internal/queueing", true, false},
		{"memca/internal/figures", true, false},
		{"memca/internal/memcafw", false, true},
		{"memca/internal/victimd", false, true},
		{"memca/internal/monitor", false, true},
		{"memca/cmd/memca-bench", false, true},
		{"memca/examples/quickstart", false, true},
		// A brand-new package gets the strict default: no wall clock
		// until someone allowlists it consciously.
		{"memca/internal/newthing", false, false},
		// The lint suite is classified as tooling, not sim or clock code.
		{"memca/internal/lint", false, false},
	}
	for _, c := range cases {
		if got := cfg.IsSimPath(c.path); got != c.simPath {
			t.Errorf("IsSimPath(%q) = %v, want %v", c.path, got, c.simPath)
		}
		if got := cfg.IsClockAllowed(c.path); got != c.clockAllowed {
			t.Errorf("IsClockAllowed(%q) = %v, want %v", c.path, got, c.clockAllowed)
		}
	}
	if !cfg.IsTool("memca/internal/lint") {
		t.Error("IsTool(memca/internal/lint) = false, want true")
	}
	if cfg.IsTool("memca/internal/sim") {
		t.Error("IsTool(memca/internal/sim) = true, want false")
	}
	// Sanity: no package is both sim-path and clock-allowed, and tools are
	// in neither contract.
	for _, p := range cfg.SimPath {
		if cfg.IsClockAllowed(strings.TrimSuffix(p, "/...")) {
			t.Errorf("package %q is both sim-path and clock-allowed", p)
		}
	}
	for _, p := range cfg.Tools {
		if cfg.IsSimPath(p) || cfg.IsClockAllowed(p) {
			t.Errorf("tool package %q is also under a sim/clock contract", p)
		}
	}
	// Every escape-budgeted package is on the sim path: the zero-alloc
	// contract is a property of the measurement path.
	for _, p := range cfg.EscapeBudget {
		if !cfg.IsSimPath(p) && !cfg.IsClockAllowed(p) {
			t.Errorf("escape-budgeted package %q is unclassified", p)
		}
	}
}

// TestRunOrdersDiagnostics pins the stable output order the CLI relies on.
func TestRunOrdersDiagnostics(t *testing.T) {
	pkg, _ := loadGolden(t, "errdrop")
	diags := Run([]*Package{pkg}, []*Analyzer{AnalyzerErrDrop()}, goldenConfig())
	if len(diags) < 2 {
		t.Fatalf("want at least 2 diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		prev, cur := diags[i-1].Pos, diags[i].Pos
		if prev.Filename > cur.Filename || (prev.Filename == cur.Filename && prev.Line > cur.Line) {
			t.Errorf("diagnostics out of order: %v before %v", prev, cur)
		}
	}
}
