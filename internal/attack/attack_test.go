package attack

import (
	"testing"
	"time"

	"memca/internal/memmodel"
	"memca/internal/queueing"
	"memca/internal/sim"
)

// recordingInjector logs burst edges for schedule assertions.
type recordingInjector struct {
	starts []time.Duration
	ends   []time.Duration
	engine *sim.Engine
	level  int
}

func (r *recordingInjector) BurstStart(float64) {
	r.starts = append(r.starts, r.engine.Now())
	r.level++
}

func (r *recordingInjector) BurstEnd() {
	r.ends = append(r.ends, r.engine.Now())
	r.level--
}

func TestParamsValidate(t *testing.T) {
	good := Params{Intensity: 1, BurstLength: 100 * time.Millisecond, Interval: 2 * time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Intensity: 0, BurstLength: time.Second, Interval: 2 * time.Second},
		{Intensity: 1.5, BurstLength: time.Second, Interval: 2 * time.Second},
		{Intensity: 1, BurstLength: 0, Interval: 2 * time.Second},
		{Intensity: 1, BurstLength: time.Second, Interval: 0},
		{Intensity: 1, BurstLength: 3 * time.Second, Interval: 2 * time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestBursterSchedule(t *testing.T) {
	e := sim.NewEngine(1)
	rec := &recordingInjector{engine: e}
	b, err := NewBurster(e, rec, Params{Intensity: 1, BurstLength: 100 * time.Millisecond, Interval: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	e.Run(7 * time.Second)
	b.Stop()

	if len(rec.starts) != 4 {
		t.Fatalf("got %d bursts in 7s with I=2s, want 4", len(rec.starts))
	}
	for i, s := range rec.starts {
		want := time.Duration(i) * 2 * time.Second
		if s != want {
			t.Errorf("burst %d started at %v, want %v", i, s, want)
		}
		if i < len(rec.ends) {
			if got := rec.ends[i] - s; got != 100*time.Millisecond {
				t.Errorf("burst %d lasted %v, want 100ms", i, got)
			}
		}
	}
	if rec.level != 0 {
		t.Errorf("unbalanced burst edges: level %d", rec.level)
	}
	if b.Bursts() != 4 {
		t.Errorf("Bursts() = %d, want 4", b.Bursts())
	}
}

func TestBursterStopEndsOpenBurst(t *testing.T) {
	e := sim.NewEngine(1)
	rec := &recordingInjector{engine: e}
	b, err := NewBurster(e, rec, Params{Intensity: 1, BurstLength: 500 * time.Millisecond, Interval: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	e.Run(100 * time.Millisecond) // mid-burst
	if !b.InBurst() {
		t.Fatal("expected an open burst at t=100ms")
	}
	b.Stop()
	if b.InBurst() {
		t.Error("Stop left a burst open")
	}
	if rec.level != 0 {
		t.Errorf("interference outlived Stop: level %d", rec.level)
	}
	// No further bursts after Stop.
	e.Run(10 * time.Second)
	if len(rec.starts) != 1 {
		t.Errorf("bursts after Stop: %d starts", len(rec.starts))
	}
}

func TestBursterRetuneAppliesNextBurst(t *testing.T) {
	e := sim.NewEngine(1)
	rec := &recordingInjector{engine: e}
	b, err := NewBurster(e, rec, Params{Intensity: 1, BurstLength: 100 * time.Millisecond, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	e.Run(50 * time.Millisecond)
	if err := b.SetParams(Params{Intensity: 1, BurstLength: 300 * time.Millisecond, Interval: time.Second}); err != nil {
		t.Fatal(err)
	}
	e.Run(3 * time.Second)
	b.Stop()
	// Burst 0 keeps the old 100ms length; burst 1 onward uses 300ms.
	if got := rec.ends[0] - rec.starts[0]; got != 100*time.Millisecond {
		t.Errorf("burst 0 lasted %v, want 100ms (old params)", got)
	}
	if got := rec.ends[1] - rec.starts[1]; got != 300*time.Millisecond {
		t.Errorf("burst 1 lasted %v, want 300ms (new params)", got)
	}
	if err := b.SetParams(Params{Intensity: 0, BurstLength: time.Second, Interval: time.Second}); err == nil {
		t.Error("invalid retune accepted")
	}
}

func TestBursterBusySignal(t *testing.T) {
	e := sim.NewEngine(1)
	rec := &recordingInjector{engine: e}
	b, err := NewBurster(e, rec, Params{Intensity: 1, BurstLength: 500 * time.Millisecond, Interval: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	e.Run(8 * time.Second)
	b.Stop()
	// Average adversary activity = L/I = 25%.
	u := b.Busy().Utilization(0, 8*time.Second)
	if u < 0.24 || u > 0.26 {
		t.Errorf("adversary activity %v, want ~0.25", u)
	}
}

func TestNewBursterValidation(t *testing.T) {
	e := sim.NewEngine(1)
	rec := &recordingInjector{engine: e}
	ok := Params{Intensity: 1, BurstLength: time.Second, Interval: 2 * time.Second}
	if _, err := NewBurster(nil, rec, ok); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewBurster(e, nil, ok); err == nil {
		t.Error("nil injector accepted")
	}
	if _, err := NewBurster(e, rec, Params{}); err == nil {
		t.Error("zero params accepted")
	}
}

func newTestNetwork(t *testing.T, e *sim.Engine) *queueing.Network {
	t.Helper()
	n, err := queueing.New(e, queueing.Config{
		Mode: queueing.ModeNTierRPC,
		Tiers: []queueing.TierConfig{
			{Name: "front", QueueLimit: 50, Servers: 2, Service: sim.NewExponential(500 * time.Microsecond)},
			{Name: "db", QueueLimit: 10, Servers: 1, Service: sim.NewExponential(2 * time.Millisecond)},
		},
		Classes: []queueing.Class{{Name: "c", Depth: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDirectInjector(t *testing.T) {
	e := sim.NewEngine(1)
	n := newTestNetwork(t, e)
	di, err := NewDirectInjector(n, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	di.BurstStart(1)
	if m, _ := n.CapacityMultiplier(1); m != 0.1 {
		t.Errorf("multiplier during burst = %v, want 0.1", m)
	}
	di.BurstEnd()
	if m, _ := n.CapacityMultiplier(1); m != 1 {
		t.Errorf("multiplier after burst = %v, want 1", m)
	}
}

func TestDirectInjectorValidation(t *testing.T) {
	e := sim.NewEngine(1)
	n := newTestNetwork(t, e)
	if _, err := NewDirectInjector(nil, 0, 0.5); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewDirectInjector(n, 5, 0.5); err == nil {
		t.Error("bad tier accepted")
	}
	if _, err := NewDirectInjector(n, 0, 1.5); err == nil {
		t.Error("bad D accepted")
	}
}

func buildHost(t *testing.T) (*memmodel.Host, *memmodel.VM, *memmodel.VM) {
	t.Helper()
	h, err := memmodel.NewHost(memmodel.XeonE5_2603v3())
	if err != nil {
		t.Fatal(err)
	}
	victim, err := h.AddVM(memmodel.VM{ID: "mysql", Package: 0})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := h.AddVM(memmodel.VM{ID: "adv", Package: 0})
	if err != nil {
		t.Fatal(err)
	}
	return h, victim, adv
}

func TestMemoryInjectorLockAttack(t *testing.T) {
	e := sim.NewEngine(1)
	n := newTestNetwork(t, e)
	h, _, _ := buildHost(t)
	mi, err := NewMemoryInjector(MemoryInjectorConfig{
		Host:         h,
		Kind:         memmodel.AttackMemoryLock,
		AdversaryVMs: []string{"adv"},
		VictimVM:     "mysql",
		Profile:      memmodel.MySQLProfile(),
		Network:      n,
		VictimTier:   1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Before any burst the victim runs at full capacity.
	if m, _ := n.CapacityMultiplier(1); m != 1 {
		t.Fatalf("pre-attack multiplier = %v, want 1", m)
	}
	mi.BurstStart(1)
	during, _ := n.CapacityMultiplier(1)
	if during >= 0.7 {
		t.Errorf("lock burst degraded capacity only to %v, want well below 0.7", during)
	}
	if mi.LastD != during {
		t.Errorf("LastD = %v, tier multiplier = %v", mi.LastD, during)
	}
	mi.BurstEnd()
	if m, _ := n.CapacityMultiplier(1); m != 1 {
		t.Errorf("post-burst multiplier = %v, want 1 (capacity recovers)", m)
	}
}

func TestMemoryInjectorLockStrongerThanStream(t *testing.T) {
	degradeWith := func(kind memmodel.AttackKind) float64 {
		e := sim.NewEngine(1)
		n := newTestNetwork(t, e)
		h, _, _ := buildHost(t)
		mi, err := NewMemoryInjector(MemoryInjectorConfig{
			Host:         h,
			Kind:         kind,
			AdversaryVMs: []string{"adv"},
			VictimVM:     "mysql",
			Profile:      memmodel.MySQLProfile(),
			Network:      n,
			VictimTier:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		mi.BurstStart(1)
		return mi.LastD
	}
	lock := degradeWith(memmodel.AttackMemoryLock)
	stream := degradeWith(memmodel.AttackBusSaturation)
	if lock >= stream {
		t.Errorf("lock attack D=%v not stronger (lower) than stream D=%v", lock, stream)
	}
}

func TestMemoryInjectorIntensityScales(t *testing.T) {
	e := sim.NewEngine(1)
	n := newTestNetwork(t, e)
	h, _, _ := buildHost(t)
	mi, err := NewMemoryInjector(MemoryInjectorConfig{
		Host:         h,
		Kind:         memmodel.AttackMemoryLock,
		AdversaryVMs: []string{"adv"},
		VictimVM:     "mysql",
		Profile:      memmodel.MySQLProfile(),
		Network:      n,
		VictimTier:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mi.BurstStart(0.3)
	weak := mi.LastD
	mi.BurstEnd()
	mi.BurstStart(1)
	strong := mi.LastD
	mi.BurstEnd()
	if strong >= weak {
		t.Errorf("full-duty lock D=%v not below 30%%-duty D=%v", strong, weak)
	}
}

func TestMemoryInjectorValidation(t *testing.T) {
	e := sim.NewEngine(1)
	n := newTestNetwork(t, e)
	h, _, _ := buildHost(t)
	base := MemoryInjectorConfig{
		Host:         h,
		Kind:         memmodel.AttackMemoryLock,
		AdversaryVMs: []string{"adv"},
		VictimVM:     "mysql",
		Profile:      memmodel.MySQLProfile(),
		Network:      n,
		VictimTier:   1,
	}
	mutations := []struct {
		name   string
		mutate func(*MemoryInjectorConfig)
	}{
		{"nil host", func(c *MemoryInjectorConfig) { c.Host = nil }},
		{"nil network", func(c *MemoryInjectorConfig) { c.Network = nil }},
		{"bad kind", func(c *MemoryInjectorConfig) { c.Kind = 0 }},
		{"no adversaries", func(c *MemoryInjectorConfig) { c.AdversaryVMs = nil }},
		{"ghost adversary", func(c *MemoryInjectorConfig) { c.AdversaryVMs = []string{"ghost"} }},
		{"ghost victim", func(c *MemoryInjectorConfig) { c.VictimVM = "ghost" }},
		{"bad profile", func(c *MemoryInjectorConfig) { c.Profile = memmodel.VictimProfile{} }},
		{"bad tier", func(c *MemoryInjectorConfig) { c.VictimTier = 9 }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := NewMemoryInjector(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if _, err := NewMemoryInjector(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEndToEndBurstsDegradeTail(t *testing.T) {
	// The integration sanity check: with an attack on, the p99 of the
	// client RT must be far above the no-attack baseline.
	run := func(attackOn bool) time.Duration {
		e := sim.NewEngine(77)
		n := newTestNetwork(t, e)
		src, err := queueing.NewPoissonSource(n, queueing.SourceConfig{
			Class: 0, Rate: 300, Retransmit: queueing.DefaultRetransmit(),
		})
		if err != nil {
			t.Fatal(err)
		}
		src.Start()
		var b *Burster
		if attackOn {
			h, _, _ := buildHost(t)
			mi, err := NewMemoryInjector(MemoryInjectorConfig{
				Host:         h,
				Kind:         memmodel.AttackMemoryLock,
				AdversaryVMs: []string{"adv"},
				VictimVM:     "mysql",
				Profile:      memmodel.MySQLProfile(),
				Network:      n,
				VictimTier:   1,
			})
			if err != nil {
				t.Fatal(err)
			}
			b, err = NewBurster(e, mi, Params{Intensity: 1, BurstLength: 500 * time.Millisecond, Interval: 2 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			b.Start()
		}
		e.Run(30 * time.Second)
		src.Stop()
		if b != nil {
			b.Stop()
		}
		if err := e.RunAll(0); err != nil {
			t.Fatal(err)
		}
		return src.ClientRT().Percentile(99)
	}
	baseline := run(false)
	attacked := run(true)
	if baseline > 100*time.Millisecond {
		t.Errorf("baseline p99 = %v, want under 100ms", baseline)
	}
	if attacked < 4*baseline {
		t.Errorf("attack p99 %v not well above baseline %v", attacked, baseline)
	}
}

func TestParamsJitterValidation(t *testing.T) {
	base := Params{Intensity: 1, BurstLength: 100 * time.Millisecond, Interval: 2 * time.Second}
	ok := base
	ok.Jitter = 0.5
	if err := ok.Validate(); err != nil {
		t.Errorf("valid jitter rejected: %v", err)
	}
	bad := base
	bad.Jitter = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
	bad = base
	bad.Jitter = 1
	if err := bad.Validate(); err == nil {
		t.Error("jitter 1 accepted")
	}
	// Jitter that can shrink the interval below the burst length.
	tight := Params{Intensity: 1, BurstLength: 1900 * time.Millisecond, Interval: 2 * time.Second, Jitter: 0.5}
	if err := tight.Validate(); err == nil {
		t.Error("interval-shrinking jitter accepted")
	}
}

func TestBursterJitterPreservesMeanRate(t *testing.T) {
	e := sim.NewEngine(3)
	rec := &recordingInjector{engine: e}
	b, err := NewBurster(e, rec, Params{
		Intensity: 1, BurstLength: 100 * time.Millisecond, Interval: 2 * time.Second, Jitter: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	e.Run(400 * time.Second)
	b.Stop()

	n := len(rec.starts)
	if n < 180 || n > 220 {
		t.Fatalf("got %d bursts in 400s at mean I=2s, want ~200", n)
	}
	// Gaps vary: the spread must be visible (CV > 0.1) and bounded by
	// the jitter window [1.4s, 2.6s].
	var minGap, maxGap time.Duration = 1 << 62, 0
	for i := 1; i < n; i++ {
		g := rec.starts[i] - rec.starts[i-1]
		if g < minGap {
			minGap = g
		}
		if g > maxGap {
			maxGap = g
		}
	}
	if minGap < 1390*time.Millisecond || maxGap > 2610*time.Millisecond {
		t.Errorf("gaps [%v, %v] outside the jitter window", minGap, maxGap)
	}
	if maxGap-minGap < 500*time.Millisecond {
		t.Errorf("gap spread %v too small for jitter 0.6", maxGap-minGap)
	}
}
