package attack

import (
	"fmt"

	"memca/internal/memmodel"
	"memca/internal/queueing"
)

// DirectInjector degrades the victim tier's capacity to a fixed
// degradation index D during bursts, with no memory model in between. It
// reproduces the paper's JMT-style model simulations, where D is a given.
type DirectInjector struct {
	net  *queueing.Network
	tier int
	// D is the degradation index applied during ON bursts (C_ON = D *
	// C_OFF). The burster's intensity is ignored; D is authoritative.
	D float64
}

// NewDirectInjector validates and builds a direct injector.
func NewDirectInjector(net *queueing.Network, tier int, d float64) (*DirectInjector, error) {
	if net == nil {
		return nil, fmt.Errorf("attack: network must not be nil")
	}
	if tier < 0 || tier >= net.NumTiers() {
		return nil, fmt.Errorf("attack: tier %d out of range [0,%d)", tier, net.NumTiers())
	}
	if d < 0 || d > 1 {
		return nil, fmt.Errorf("attack: degradation index must be in [0,1], got %v", d)
	}
	return &DirectInjector{net: net, tier: tier, D: d}, nil
}

// BurstStart implements Injector.
func (di *DirectInjector) BurstStart(float64) {
	// Tier index was validated at construction.
	if err := di.net.SetCapacityMultiplier(di.tier, di.D); err != nil {
		panic(err)
	}
}

// BurstEnd implements Injector.
func (di *DirectInjector) BurstEnd() {
	if err := di.net.SetCapacityMultiplier(di.tier, 1); err != nil {
		panic(err)
	}
}

// MemoryInjector drives the full cross-resource chain: during a burst the
// adversary VMs switch to the attack workload on the modelled host, the
// host reallocates memory bandwidth, and the victim tier's capacity is
// degraded according to the bandwidth left to the victim VM — memory
// attack, CPU damage.
type MemoryInjector struct {
	host       *memmodel.Host
	kind       memmodel.AttackKind
	adversary  []string
	victimVM   string
	profile    memmodel.VictimProfile
	net        *queueing.Network
	victimTier int

	// LastD records the degradation index currently applied (1 between
	// bursts).
	LastD float64
	// BurstD records the degradation index of the most recent ON burst,
	// which MemCA-FE reports to the backend.
	BurstD float64
}

// MemoryInjectorConfig assembles a MemoryInjector.
type MemoryInjectorConfig struct {
	// Host is the physical machine model co-hosting adversary and victim.
	Host *memmodel.Host
	// Kind selects bus saturation or memory locking.
	Kind memmodel.AttackKind
	// AdversaryVMs are the IDs of the attack VMs on Host.
	AdversaryVMs []string
	// VictimVM is the ID of the victim VM on Host.
	VictimVM string
	// Profile characterizes the victim's bandwidth sensitivity.
	Profile memmodel.VictimProfile
	// Network and VictimTier locate the victim tier to degrade.
	Network    *queueing.Network
	VictimTier int
}

// NewMemoryInjector validates the wiring and builds the injector.
func NewMemoryInjector(cfg MemoryInjectorConfig) (*MemoryInjector, error) {
	if cfg.Host == nil {
		return nil, fmt.Errorf("attack: host must not be nil")
	}
	if cfg.Network == nil {
		return nil, fmt.Errorf("attack: network must not be nil")
	}
	if cfg.Kind != memmodel.AttackBusSaturation && cfg.Kind != memmodel.AttackMemoryLock {
		return nil, fmt.Errorf("attack: unknown attack kind %v", cfg.Kind)
	}
	if len(cfg.AdversaryVMs) == 0 {
		return nil, fmt.Errorf("attack: need at least one adversary VM")
	}
	for _, id := range cfg.AdversaryVMs {
		if _, err := cfg.Host.VM(id); err != nil {
			return nil, fmt.Errorf("attack: adversary VM: %w", err)
		}
	}
	if _, err := cfg.Host.VM(cfg.VictimVM); err != nil {
		return nil, fmt.Errorf("attack: victim VM: %w", err)
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.VictimTier < 0 || cfg.VictimTier >= cfg.Network.NumTiers() {
		return nil, fmt.Errorf("attack: victim tier %d out of range [0,%d)", cfg.VictimTier, cfg.Network.NumTiers())
	}
	// The victim VM runs its application workload so the allocator gives
	// it the bandwidth the profile says it needs.
	if err := cfg.Host.SetWorkload(cfg.VictimVM, memmodel.WorkloadVictim, cfg.Profile.DemandMBps, 0); err != nil {
		return nil, fmt.Errorf("attack: configuring victim VM: %w", err)
	}
	return &MemoryInjector{
		host:       cfg.Host,
		kind:       cfg.Kind,
		adversary:  cfg.AdversaryVMs,
		victimVM:   cfg.VictimVM,
		profile:    cfg.Profile,
		net:        cfg.Network,
		victimTier: cfg.VictimTier,
	}, nil
}

// BurstStart implements Injector: flip the adversary VMs to the attack
// workload at the given intensity and degrade the victim tier according to
// the resulting bandwidth allocation.
func (mi *MemoryInjector) BurstStart(intensity float64) {
	if intensity <= 0 {
		intensity = 1
	}
	if intensity > 1 {
		intensity = 1
	}
	for _, id := range mi.adversary {
		switch mi.kind {
		case memmodel.AttackBusSaturation:
			demand := intensity * mi.host.Config().SingleCoreDemandMBps
			mi.mustSetWorkload(id, memmodel.WorkloadStream, demand, 0)
		case memmodel.AttackMemoryLock:
			mi.mustSetWorkload(id, memmodel.WorkloadLock, 0, intensity)
		}
	}
	mi.applyVictimCapacity()
	mi.BurstD = mi.LastD
}

// BurstEnd implements Injector: idle the adversaries and restore capacity.
func (mi *MemoryInjector) BurstEnd() {
	for _, id := range mi.adversary {
		mi.mustSetWorkload(id, memmodel.WorkloadIdle, 0, 0)
	}
	mi.applyVictimCapacity()
}

// applyVictimCapacity recomputes the host allocation and pushes the
// resulting degradation index into the victim tier.
func (mi *MemoryInjector) applyVictimCapacity() {
	bw, severity := mi.host.VMAllocation(mi.victimVM)
	d := memmodel.CapacityMultiplier(mi.profile, bw, severity)
	mi.LastD = d
	if err := mi.net.SetCapacityMultiplier(mi.victimTier, d); err != nil {
		panic(err) // tier was validated at construction
	}
}

func (mi *MemoryInjector) mustSetWorkload(id string, w memmodel.Workload, demand, duty float64) {
	if err := mi.host.SetWorkload(id, w, demand, duty); err != nil {
		panic(err) // VM IDs were validated at construction
	}
}

// Verify interface compliance.
var (
	_ Injector = (*DirectInjector)(nil)
	_ Injector = (*MemoryInjector)(nil)
)
