// Package attack implements the MemCA burst machinery: an ON-OFF scheduler
// with the paper's (R, L, I) parameters, and injectors that translate an ON
// burst into capacity degradation of the victim tier — either directly via
// the degradation index D (the model experiments of Figures 6 and 7) or
// through the memory-contention model (the end-to-end experiments of
// Figures 2 and 9).
package attack

import (
	"fmt"
	"time"

	"memca/internal/sim"
	"memca/internal/stats"
)

// Params are the attack knobs of Equation (1): Effect = A(R, L, I).
type Params struct {
	// Intensity is R normalized to the attack program's maximum: for a
	// memory-lock attack it is the bus-lock duty cycle; for bus
	// saturation it is the fraction of the adversary core's streaming
	// capability used. In (0, 1].
	Intensity float64
	// BurstLength is L, the ON period.
	BurstLength time.Duration
	// Interval is I, the time between consecutive burst starts.
	Interval time.Duration
	// Jitter randomizes each cycle's interval uniformly over
	// [I*(1-Jitter/2), I*(1+Jitter/2)], preserving the mean rate. A
	// periodic attack leaves an autocorrelation signature in any metric
	// it modulates (the paper's Figure 11a); jitter is the attacker's
	// counter-move against periodicity-based detectors. In [0, 1).
	Jitter float64
}

// Validate reports the first parameter error, or nil.
func (p Params) Validate() error {
	switch {
	case p.Intensity <= 0 || p.Intensity > 1:
		return fmt.Errorf("attack: Intensity must be in (0,1], got %v", p.Intensity)
	case p.BurstLength <= 0:
		return fmt.Errorf("attack: BurstLength must be positive, got %v", p.BurstLength)
	case p.Interval <= 0:
		return fmt.Errorf("attack: Interval must be positive, got %v", p.Interval)
	case p.BurstLength > p.Interval:
		return fmt.Errorf("attack: BurstLength %v exceeds Interval %v", p.BurstLength, p.Interval)
	case p.Jitter < 0 || p.Jitter >= 1:
		return fmt.Errorf("attack: Jitter must be in [0,1), got %v", p.Jitter)
	case p.Jitter > 0 && time.Duration(float64(p.Interval)*(1-p.Jitter/2)) < p.BurstLength:
		return fmt.Errorf("attack: Jitter %v can shrink the interval below the burst length", p.Jitter)
	}
	return nil
}

// Injector receives burst edges. Implementations flip the contention state
// of the modelled host and/or the victim tier's capacity.
type Injector interface {
	// BurstStart begins interference with the given intensity.
	BurstStart(intensity float64)
	// BurstEnd removes the interference.
	BurstEnd()
}

// Burster drives an Injector in the paper's ON-OFF pattern. Parameters may
// be retuned between bursts (the feedback controller does exactly that).
type Burster struct {
	engine   *sim.Engine
	injector Injector
	params   Params
	pending  *Params // applied at the next burst boundary

	running bool
	inBurst bool
	bursts  int

	// busy integrates the adversary VM's activity: 1 during ON bursts.
	// This is what Figure 9a plots.
	busy *stats.BusyIntegrator

	// cycleFn and endFn are bound once so each burst cycle schedules
	// both flanks without materializing new closures.
	cycleFn func()
	endFn   func()
}

// NewBurster builds a burster. Start must be called to begin attacking.
func NewBurster(engine *sim.Engine, injector Injector, params Params) (*Burster, error) {
	if engine == nil {
		return nil, fmt.Errorf("attack: engine must not be nil")
	}
	if injector == nil {
		return nil, fmt.Errorf("attack: injector must not be nil")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	b := &Burster{
		engine:   engine,
		injector: injector,
		params:   params,
		busy:     stats.NewBusyIntegrator(),
	}
	b.cycleFn = b.cycle
	b.endFn = func() {
		if b.inBurst {
			b.endBurst()
		}
	}
	return b, nil
}

// Params returns the parameters currently in force.
func (b *Burster) Params() Params { return b.params }

// SetParams retunes the attack from the next burst boundary; the current
// burst (if any) finishes under the old parameters.
func (b *Burster) SetParams(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cp := p
	b.pending = &cp
	return nil
}

// Bursts returns the number of bursts started.
func (b *Burster) Bursts() int { return b.bursts }

// Busy returns the adversary activity integrator (1 while a burst is ON).
func (b *Burster) Busy() *stats.BusyIntegrator { return b.busy }

// InBurst reports whether an ON burst is in progress.
func (b *Burster) InBurst() bool { return b.inBurst }

// Start launches the ON-OFF cycle, with the first burst beginning
// immediately. It is idempotent while running.
func (b *Burster) Start() {
	if b.running {
		return
	}
	b.running = true
	b.cycle()
}

// Stop ends the attack after the current burst edge; a burst in progress
// is terminated immediately so no interference outlives Stop.
func (b *Burster) Stop() {
	if !b.running {
		return
	}
	b.running = false
	if b.inBurst {
		b.endBurst()
	}
}

func (b *Burster) cycle() {
	if !b.running {
		return
	}
	if b.pending != nil {
		b.params = *b.pending
		b.pending = nil
	}
	b.beginBurst()
	p := b.params
	b.engine.Schedule(p.BurstLength, b.endFn)
	next := p.Interval
	if p.Jitter > 0 {
		f := 1 - p.Jitter/2 + p.Jitter*b.engine.Rand().Float64()
		next = time.Duration(float64(p.Interval) * f)
	}
	b.engine.Schedule(next, b.cycleFn)
}

func (b *Burster) beginBurst() {
	b.inBurst = true
	b.bursts++
	b.busy.SetBusy(b.engine.Now(), true)
	b.injector.BurstStart(b.params.Intensity)
}

func (b *Burster) endBurst() {
	b.inBurst = false
	b.busy.SetBusy(b.engine.Now(), false)
	b.injector.BurstEnd()
}
