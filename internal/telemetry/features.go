package telemetry

import (
	"fmt"
	"time"
)

// WindowFeatures aggregates the attribution components of the traces that
// closed inside one feature window — the streaming detection features the
// paper's stealthiness analysis says CPU sampling cannot see. Raw sums and
// counts are stored; the share accessors derive the normalized features on
// read, so booking a closed trace performs no divisions and no
// allocations.
type WindowFeatures struct {
	// Count is the number of traces closed in the window.
	Count int
	// Attempts and Drops sum the submit and rejected-attempt counts of
	// those traces (drop rate = Drops / Attempts).
	Attempts int
	Drops    int
	// TailOver counts closed traces whose response time reached the
	// series' tail threshold — the per-window damage indicator.
	TailOver int
	// SumRT is the summed client response time.
	SumRT time.Duration
	// SumQueue / SumService / SumRetransWait sum the per-trace critical-
	// path components (all tiers folded together).
	SumQueue       time.Duration
	SumService     time.Duration
	SumRetransWait time.Duration
}

// MeanRT returns the window's mean client response time.
func (w WindowFeatures) MeanRT() time.Duration {
	if w.Count == 0 {
		return 0
	}
	return w.SumRT / time.Duration(w.Count)
}

// RetransShare is the fraction of the window's summed response time spent
// waiting between a drop and its resubmission. Under a MemCA attack this
// share dominates (the attacked >=p99 tail is ~97% retransmission wait);
// benign overloads — flash crowds included — keep it near zero.
func (w WindowFeatures) RetransShare() float64 {
	if w.SumRT <= 0 {
		return 0
	}
	return float64(w.SumRetransWait) / float64(w.SumRT)
}

// QueueShare is the fraction of summed response time spent queued.
func (w WindowFeatures) QueueShare() float64 {
	if w.SumRT <= 0 {
		return 0
	}
	return float64(w.SumQueue) / float64(w.SumRT)
}

// ServiceShare is the fraction of summed response time spent in service.
func (w WindowFeatures) ServiceShare() float64 {
	if w.SumRT <= 0 {
		return 0
	}
	return float64(w.SumService) / float64(w.SumRT)
}

// DropRate is the fraction of submitted attempts that were rejected.
func (w WindowFeatures) DropRate() float64 {
	if w.Attempts <= 0 {
		return 0
	}
	return float64(w.Drops) / float64(w.Attempts)
}

// Observe folds one closed trace into the window: rt is the client
// response time, queue/service/retransWait its summed critical-path
// components, attempts/drops its submit and rejection counts. tail is the
// TailOver threshold (0 disables the count). FeatureSeries books through
// this; the live window tracker books wall-clock observations directly.
//
//memca:hotpath
func (w *WindowFeatures) Observe(rt, queue, service, retransWait time.Duration, attempts, drops int, tail time.Duration) {
	w.Count++
	w.Attempts += attempts
	w.Drops += drops
	if tail > 0 && rt >= tail {
		w.TailOver++
	}
	w.SumRT += rt
	w.SumQueue += queue
	w.SumService += service
	w.SumRetransWait += retransWait
}

// FeatureSeries aggregates closed traces into fixed windows of per-window
// detection features, incrementally as the tracer closes slots. Like
// Timeline it is pre-sized at construction for the full horizon, so the
// booking path performs zero heap allocations in steady state.
type FeatureSeries struct {
	// Res is the window width.
	Res time.Duration
	// TailThreshold is the response time at or above which a closed trace
	// counts toward the window's TailOver feature; zero disables the
	// count.
	TailThreshold time.Duration

	base    time.Duration
	windows []WindowFeatures
}

func newFeatureSeries(res, horizon, tailOver time.Duration) *FeatureSeries {
	n := int(horizon/res) + 1
	return &FeatureSeries{Res: res, TailThreshold: tailOver, windows: make([]WindowFeatures, 0, n)}
}

// NewFeatureSeries builds a standalone feature series covering
// [0, horizon]. The simulator's Tracer builds its own series; this
// constructor exists for offline assembly — the live collector books
// wall-clock attributions into the same structure so the attribution
// detector and the feature CSV export work identically on real runs.
func NewFeatureSeries(res, horizon, tailOver time.Duration) (*FeatureSeries, error) {
	if res <= 0 {
		return nil, fmt.Errorf("telemetry: feature window must be positive, got %v", res)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("telemetry: feature horizon must be positive, got %v", horizon)
	}
	if tailOver < 0 {
		return nil, fmt.Errorf("telemetry: tail-over threshold must be >= 0, got %v", tailOver)
	}
	return newFeatureSeries(res, horizon, tailOver), nil
}

// Add books one closed trace: end is the close time, rt the client
// response time, queue/service/retransWait the trace's summed critical-
// path components, and attempts/drops its submit and rejection counts.
// The series covers [base, base+horizon]; traces closing outside it
// (warmup remnants, the post-run drain) are dropped, mirroring Timeline.
//
//memca:hotpath
func (fs *FeatureSeries) Add(end, rt, queue, service, retransWait time.Duration, attempts, drops int) {
	if end < fs.base {
		return
	}
	idx := int((end - fs.base) / fs.Res)
	if idx >= cap(fs.windows) {
		return
	}
	for len(fs.windows) <= idx {
		fs.windows = fs.windows[:len(fs.windows)+1]
		fs.windows[len(fs.windows)-1] = WindowFeatures{}
	}
	fs.windows[idx].Observe(rt, queue, service, retransWait, attempts, drops, fs.TailThreshold)
}

// reset clears the series and rebases window 0 at base.
func (fs *FeatureSeries) reset(base time.Duration) {
	fs.base = base
	fs.windows = fs.windows[:0]
}

// Base returns the virtual time of window 0's left edge.
func (fs *FeatureSeries) Base() time.Duration { return fs.base }

// Windows returns the per-window features (shared; do not mutate).
func (fs *FeatureSeries) Windows() []WindowFeatures { return fs.windows }

// WindowStart returns the left edge of window i.
func (fs *FeatureSeries) WindowStart(i int) time.Duration {
	return fs.base + time.Duration(i)*fs.Res
}
