package telemetry

import "time"

// Attribution decomposes one trace's client response time along its
// critical path: per-tier queueing (blocked in front of a full tier plus
// waiting for a station), per-tier service (wall time, including fluid
// slowdown during a capacity burst), retransmission wait (drop to
// resubmit), and a residual for everything else (network hop delay).
// When the network has no hop delay, Queue + Service + RetransWait sums
// exactly to RT.
type Attribution struct {
	// TraceID identifies the logical client request.
	TraceID uint64
	// Class is the request-class index.
	Class int
	// Start is the virtual time of the first attempt's submit.
	Start time.Duration
	// End is when the trace closed (response delivered, or abandoned).
	End time.Duration
	// RT is the client response time: End - Start.
	RT time.Duration
	// Attempts counts submits, including retransmissions.
	Attempts int
	// Drops counts rejected attempts.
	Drops int
	// Abandoned reports the client gave up (retries exhausted).
	Abandoned bool
	// Queue[i] is the total time queued at tier i across attempts.
	Queue []time.Duration
	// Service[i] is the total wall time in service at tier i.
	Service []time.Duration
	// RetransWait is the total time between a drop and its resubmission
	// (the RFC 6298 RTO waits that dominate the attacked tail).
	RetransWait time.Duration
	// Other is the residual: RT minus all attributed components.
	Other time.Duration
}

// TotalQueue sums the per-tier queueing components.
func (a *Attribution) TotalQueue() time.Duration {
	var s time.Duration
	for _, q := range a.Queue {
		s += q
	}
	return s
}

// TotalService sums the per-tier service components.
func (a *Attribution) TotalService() time.Duration {
	var s time.Duration
	for _, v := range a.Service {
		s += v
	}
	return s
}

// Wait is the non-service share of the response time: queueing plus
// retransmission wait.
func (a *Attribution) Wait() time.Duration { return a.TotalQueue() + a.RetransWait }

// Aggregate is the running sum of attribution components over closed
// traces.
type Aggregate struct {
	// Count is the number of closed traces.
	Count uint64
	// Abandoned counts traces the client gave up on.
	Abandoned uint64
	// Attempts and Drops sum over all closed traces.
	Attempts int
	Drops    int
	// RT is the summed client response time.
	RT time.Duration
	// Queue[i] / Service[i] are summed per-tier components.
	Queue   []time.Duration
	Service []time.Duration
	// RetransWait and Other are the summed client-side components.
	RetransWait time.Duration
	Other       time.Duration
}

func newAggregate(tiers int) Aggregate {
	return Aggregate{
		Queue:   make([]time.Duration, tiers),
		Service: make([]time.Duration, tiers),
	}
}

// Breakdown is a normalized view over a set of attributions: total time
// per component and the share of the summed response time each claims.
type Breakdown struct {
	// Count is the number of records summarized.
	Count int
	// RT is the summed response time.
	RT time.Duration
	// Queue[i] / Service[i] are the summed per-tier components.
	Queue   []time.Duration
	Service []time.Duration
	// RetransWait and Other are the summed client-side components.
	RetransWait time.Duration
	Other       time.Duration
}

// Summarize folds a set of attribution records into a Breakdown.
func Summarize(tiers int, recs []Attribution) Breakdown {
	b := Breakdown{
		Queue:   make([]time.Duration, tiers),
		Service: make([]time.Duration, tiers),
	}
	for i := range recs {
		r := &recs[i]
		b.Count++
		b.RT += r.RT
		b.RetransWait += r.RetransWait
		b.Other += r.Other
		for j := 0; j < tiers && j < len(r.Queue); j++ {
			b.Queue[j] += r.Queue[j]
			b.Service[j] += r.Service[j]
		}
	}
	return b
}

// TotalQueue sums the per-tier queueing components.
func (b *Breakdown) TotalQueue() time.Duration {
	var s time.Duration
	for _, q := range b.Queue {
		s += q
	}
	return s
}

// TotalService sums the per-tier service components.
func (b *Breakdown) TotalService() time.Duration {
	var s time.Duration
	for _, v := range b.Service {
		s += v
	}
	return s
}

// ServiceShare is the fraction of summed response time spent in service —
// the only component a per-tier latency monitor attributes to "work".
func (b *Breakdown) ServiceShare() float64 {
	if b.RT <= 0 {
		return 0
	}
	return float64(b.TotalService()) / float64(b.RT)
}

// WaitShare is the fraction of summed response time spent waiting:
// queueing plus retransmission wait. Under a MemCA attack this share
// dominates the tail even while every tier's service time looks healthy.
func (b *Breakdown) WaitShare() float64 {
	if b.RT <= 0 {
		return 0
	}
	return float64(b.TotalQueue()+b.RetransWait) / float64(b.RT)
}
