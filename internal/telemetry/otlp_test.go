package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// otlpDoc mirrors just enough of the OTLP/JSON schema to validate the
// export structurally.
type otlpDoc struct {
	ResourceSpans []struct {
		Resource struct {
			Attributes []struct {
				Key   string `json:"key"`
				Value struct {
					StringValue string `json:"stringValue"`
				} `json:"value"`
			} `json:"attributes"`
		} `json:"resource"`
		ScopeSpans []struct {
			Scope struct {
				Name string `json:"name"`
			} `json:"scope"`
			Spans []struct {
				TraceID      string `json:"traceId"`
				SpanID       string `json:"spanId"`
				ParentSpanID string `json:"parentSpanId"`
				Name         string `json:"name"`
				Kind         int    `json:"kind"`
				Start        string `json:"startTimeUnixNano"`
				End          string `json:"endTimeUnixNano"`
				Events       []struct {
					Name string `json:"name"`
				} `json:"events"`
				Status *struct {
					Message string `json:"message"`
					Code    int    `json:"code"`
				} `json:"status"`
			} `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
}

// TestOTLPStructure checks the export against the OTLP contract: one
// resource per tier plus the client, 32/16-hex IDs, every tier span's
// parent link resolving to an emitted root span, drop/retransmit/abandon
// recorded as span events, and span status reflecting the trace outcome.
func TestOTLPStructure(t *testing.T) {
	tr := goldenScenario(t)
	path := filepath.Join(t.TempDir(), "otlp.json")
	if err := tr.WriteOTLP(path, DefaultOTLPSpec()); err != nil {
		t.Fatalf("WriteOTLP: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc otlpDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if got, want := len(doc.ResourceSpans), 3; got != want {
		t.Fatalf("resourceSpans = %d, want %d (client + 2 tiers)", got, want)
	}

	services := make([]string, 0, 3)
	rootIDs := make(map[string]bool)
	var rootOK, rootErr, abandoned int
	events := make(map[string]int)
	for ri, rs := range doc.ResourceSpans {
		var service string
		for _, a := range rs.Resource.Attributes {
			if a.Key == "service.name" {
				service = a.Value.StringValue
			}
		}
		if service == "" {
			t.Errorf("resource %d missing service.name", ri)
		}
		services = append(services, service)
		for _, ss := range rs.ScopeSpans {
			if ss.Scope.Name != "memca/telemetry" {
				t.Errorf("scope name %q", ss.Scope.Name)
			}
			for _, sp := range ss.Spans {
				if len(sp.TraceID) != 32 || len(sp.SpanID) != 16 {
					t.Errorf("span %s/%s: traceId %q spanId %q ill-sized", service, sp.Name, sp.TraceID, sp.SpanID)
				}
				if sp.Start > sp.End && len(sp.Start) == len(sp.End) {
					t.Errorf("span %s/%s ends before it starts (%s > %s)", service, sp.Name, sp.Start, sp.End)
				}
				if sp.Name == "request" {
					rootIDs[sp.TraceID+"/"+sp.SpanID] = true
					if sp.ParentSpanID != "" {
						t.Errorf("root span has parent %q", sp.ParentSpanID)
					}
					if sp.Status != nil {
						switch sp.Status.Code {
						case 1:
							rootOK++
						case 2:
							rootErr++
							if sp.Status.Message == "abandoned" {
								abandoned++
							}
						}
					}
					for _, ev := range sp.Events {
						events[ev.Name]++
					}
				}
			}
		}
	}
	if services[0] != "memca-client" || services[1] != "memca-apache" || services[2] != "memca-tomcat" {
		t.Errorf("service names = %v", services)
	}

	// Every tier span must link to an emitted root span of its own trace.
	for _, rs := range doc.ResourceSpans[1:] {
		for _, ss := range rs.ScopeSpans {
			for _, sp := range ss.Spans {
				if !rootIDs[sp.TraceID+"/"+sp.ParentSpanID] {
					t.Errorf("tier span %s (trace %s) parent %q does not resolve to a root span",
						sp.Name, sp.TraceID, sp.ParentSpanID)
				}
			}
		}
	}

	// The golden scenario closes 4 traces: 3 completions and 1 abandonment,
	// with one drop per trace 3 and 4 and one retransmission scheduling.
	if rootOK != 3 {
		t.Errorf("spans with OK status = %d, want 3", rootOK)
	}
	if rootErr != 1 || abandoned != 1 {
		t.Errorf("error/abandoned roots = %d/%d, want 1/1", rootErr, abandoned)
	}
	if events["drop"] != 2 {
		t.Errorf("drop span events = %d, want 2", events["drop"])
	}
	if events["retransmit-scheduled"] != 1 {
		t.Errorf("retransmit-scheduled span events = %d, want 1", events["retransmit-scheduled"])
	}
	if events["abandoned"] != 1 {
		t.Errorf("abandoned span events = %d, want 1", events["abandoned"])
	}
}

func TestOTLPSpecValidation(t *testing.T) {
	if err := (OTLPSpec{ServicePrefix: "", EpochNanos: 0}).Validate(); err == nil {
		t.Error("empty prefix accepted")
	}
	if err := (OTLPSpec{ServicePrefix: "x", EpochNanos: -1}).Validate(); err == nil {
		t.Error("negative epoch accepted")
	}
	if err := DefaultOTLPSpec().Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
}
