package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"memca/internal/queueing"
)

// The OTLP exporter emits the standard OTLP/JSON trace encoding (the
// protobuf JSON mapping of opentelemetry.proto.trace.v1) without any
// OpenTelemetry dependency, so simulated and live runs alike can be loaded
// into Jaeger, Tempo, or any other OTLP-speaking backend. Each tier is a
// resource (service.name = "<prefix>-<tier>"); the client is its own
// resource. Per trace, the client-side request span is the root, and every
// tier visit contributes queue and service child spans linked to it, with
// drops, retransmission scheduling, capacity preemptions, and abandonment
// recorded as span events on the root.

// DefaultOTLPEpochNanos anchors virtual time zero at a fixed absolute
// instant (2020-01-01T00:00:00Z) so simulated exports are byte-identical
// across runs yet still load into wall-clock tooling.
const DefaultOTLPEpochNanos int64 = 1577836800000000000

// OTLPSpec parameterizes the OTLP export.
type OTLPSpec struct {
	// ServicePrefix prefixes each resource's service.name: the client
	// resource is "<prefix>-client" and tier i is "<prefix>-<tierName>".
	ServicePrefix string
	// EpochNanos is the absolute unix-nano timestamp of event time zero.
	// Simulated runs should keep the fixed default so same-seed exports
	// stay byte-identical; live runs pass their collector's base time.
	EpochNanos int64
}

// DefaultOTLPSpec returns the deterministic simulation-export settings.
func DefaultOTLPSpec() OTLPSpec {
	return OTLPSpec{ServicePrefix: "memca", EpochNanos: DefaultOTLPEpochNanos}
}

// Validate reports the first spec error, or nil.
func (s OTLPSpec) Validate() error {
	if s.ServicePrefix == "" {
		return fmt.Errorf("telemetry: OTLP service prefix must not be empty")
	}
	if s.EpochNanos < 0 {
		return fmt.Errorf("telemetry: OTLP epoch must be >= 0, got %d", s.EpochNanos)
	}
	return nil
}

// OTLP/JSON shapes. Field order fixes the JSON key order, keeping exports
// byte-identical across runs. Per the protobuf JSON mapping, fixed64
// timestamps are encoded as decimal strings and enums as numbers.
type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

func strAttr(key, v string) otlpKeyValue {
	return otlpKeyValue{Key: key, Value: otlpValue{StringValue: &v}}
}

func intAttr(key string, v int64) otlpKeyValue {
	s := strconv.FormatInt(v, 10)
	return otlpKeyValue{Key: key, Value: otlpValue{IntValue: &s}}
}

func doubleAttr(key string, v float64) otlpKeyValue {
	return otlpKeyValue{Key: key, Value: otlpValue{DoubleValue: &v}}
}

type otlpSpanEvent struct {
	TimeUnixNano string         `json:"timeUnixNano"`
	Name         string         `json:"name"`
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpStatus struct {
	Message string `json:"message,omitempty"`
	Code    int    `json:"code,omitempty"`
}

type otlpSpan struct {
	TraceID           string          `json:"traceId"`
	SpanID            string          `json:"spanId"`
	ParentSpanID      string          `json:"parentSpanId,omitempty"`
	Name              string          `json:"name"`
	Kind              int             `json:"kind"`
	StartTimeUnixNano string          `json:"startTimeUnixNano"`
	EndTimeUnixNano   string          `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue  `json:"attributes,omitempty"`
	Events            []otlpSpanEvent `json:"events,omitempty"`
	Status            *otlpStatus     `json:"status,omitempty"`
}

// OTLP span kind and status code enum values (trace.v1).
const (
	otlpKindInternal = 1
	otlpKindServer   = 2
	otlpKindClient   = 3

	otlpStatusOK    = 1
	otlpStatusError = 2
)

// Span-ID derivation: a splitmix64 finalizer over (traceID, role, tier,
// attempt) yields IDs that are deterministic, order-independent, and
// resolvable for parent links even when the root's submit event was lost
// to the ring.
const (
	otlpRoleRoot    = 0
	otlpRoleQueue   = 1
	otlpRoleService = 2
)

func otlpSpanID(traceID uint64, role, tier, attempt int) string {
	x := traceID*0x9e3779b97f4a7c15 + uint64(role)<<32 + uint64(tier+1)<<16 + uint64(attempt)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // OTLP forbids the all-zero span ID
	}
	return fmt.Sprintf("%016x", x)
}

func otlpTraceID(traceID uint64) string { return fmt.Sprintf("%032x", traceID) }

// otlpTraceState accumulates one trace's root-span bookkeeping during the
// event walk.
type otlpTraceState struct {
	start     time.Duration
	end       time.Duration
	started   bool
	ended     bool
	abandoned bool
	drops     int
	events    []otlpSpanEvent
	lastT     time.Duration
	order     int
}

// WriteOTLP reconstructs spans from a span-event sequence (the shared
// vocabulary of the simulator's Observer and the live collector) and
// writes them as OTLP/JSON. Spans whose start was lost to ring overwrite
// are skipped, mirroring WriteChromeTrace.
func WriteOTLP(path string, spec OTLPSpec, tierNames []string, events []SpanEvent) (err error) {
	if err := spec.Validate(); err != nil {
		return err
	}
	nanos := func(t time.Duration) string {
		return strconv.FormatInt(spec.EpochNanos+t.Nanoseconds(), 10)
	}

	type openSpan struct {
		t  time.Duration
		ok bool
	}
	type spanKey struct {
		trace uint64
		tier  int8
	}
	queueOpen := make(map[spanKey]openSpan)
	svcOpen := make(map[spanKey]openSpan)
	traces := make(map[uint64]*otlpTraceState)
	order := 0
	state := func(id uint64, t time.Duration) *otlpTraceState {
		st, ok := traces[id]
		if !ok {
			st = &otlpTraceState{start: t, order: order}
			order++
			traces[id] = st
		}
		st.lastT = t
		return st
	}

	// tierSpans[i] collects tier i's finished queue/service spans; the
	// client resource holds only root spans, assembled after the walk.
	tierSpans := make([][]otlpSpan, len(tierNames))
	addTierSpan := func(role int, name string, e *SpanEvent, open openSpan) {
		tier := int(e.Tier)
		if tier < 0 || tier >= len(tierNames) {
			return
		}
		attempt := int(e.Attempt)
		kind := otlpKindServer
		if role == otlpRoleQueue {
			kind = otlpKindInternal
		}
		tierSpans[tier] = append(tierSpans[tier], otlpSpan{
			TraceID:           otlpTraceID(e.TraceID),
			SpanID:            otlpSpanID(e.TraceID, role, tier, attempt),
			ParentSpanID:      otlpSpanID(e.TraceID, otlpRoleRoot, -1, 0),
			Name:              tierNames[tier] + "/" + name,
			Kind:              kind,
			StartTimeUnixNano: nanos(open.t),
			EndTimeUnixNano:   nanos(e.T),
			Attributes: []otlpKeyValue{
				intAttr("memca.tier", int64(tier)),
				intAttr("memca.attempt", int64(attempt)),
			},
		})
	}
	rootEvent := func(st *otlpTraceState, e *SpanEvent, name string, attrs ...otlpKeyValue) {
		st.events = append(st.events, otlpSpanEvent{
			TimeUnixNano: nanos(e.T),
			Name:         name,
			Attributes:   attrs,
		})
	}

	for i := range events {
		e := &events[i]
		k := spanKey{e.TraceID, e.Tier}
		switch e.Kind {
		case EventKind(queueing.SpanSubmit):
			st := state(e.TraceID, e.T)
			if e.Attempt == 0 {
				st.start = e.T
				st.started = true
			}
		case EventKind(queueing.SpanTierRequest):
			state(e.TraceID, e.T)
			queueOpen[k] = openSpan{e.T, true}
		case EventKind(queueing.SpanServiceStart):
			state(e.TraceID, e.T)
			if o := queueOpen[k]; o.ok {
				addTierSpan(otlpRoleQueue, "queue", e, o)
				delete(queueOpen, k)
			}
			svcOpen[k] = openSpan{e.T, true}
		case EventKind(queueing.SpanServiceEnd):
			state(e.TraceID, e.T)
			if o := svcOpen[k]; o.ok {
				addTierSpan(otlpRoleService, "service", e, o)
				delete(svcOpen, k)
			}
		case EventKind(queueing.SpanServicePreempt):
			st := state(e.TraceID, e.T)
			rootEvent(st, e, "capacity-preempt", intAttr("memca.tier", int64(e.Tier)))
		case EventKind(queueing.SpanDrop):
			st := state(e.TraceID, e.T)
			st.drops++
			delete(queueOpen, k)
			rootEvent(st, e, "drop",
				intAttr("memca.tier", int64(e.Tier)),
				intAttr("memca.attempt", int64(e.Attempt)))
		case EventKind(queueing.SpanComplete):
			st := state(e.TraceID, e.T)
			st.end = e.T
			st.ended = true
		case EvRetransmitScheduled:
			st := state(e.TraceID, e.T)
			rootEvent(st, e, "retransmit-scheduled",
				intAttr("memca.attempt", int64(e.Attempt)),
				doubleAttr("memca.fire_at_ms", msec(e.Aux)))
		case EvAbandoned:
			st := state(e.TraceID, e.T)
			st.end = e.T
			st.ended = true
			st.abandoned = true
			rootEvent(st, e, "abandoned")
		}
	}

	// Root spans, in first-appearance order. Traces still open at export
	// (the post-run drain) end at their last observed event with an unset
	// status, so no child span is ever left without its parent.
	ids := make([]uint64, 0, len(traces))
	for id := range traces {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return traces[ids[i]].order < traces[ids[j]].order })
	rootSpans := make([]otlpSpan, 0, len(ids))
	for _, id := range ids {
		st := traces[id]
		end := st.end
		if !st.ended {
			end = st.lastT
		}
		sp := otlpSpan{
			TraceID:           otlpTraceID(id),
			SpanID:            otlpSpanID(id, otlpRoleRoot, -1, 0),
			Name:              "request",
			Kind:              otlpKindClient,
			StartTimeUnixNano: nanos(st.start),
			EndTimeUnixNano:   nanos(end),
			Attributes:        []otlpKeyValue{intAttr("memca.drops", int64(st.drops))},
			Events:            st.events,
		}
		switch {
		case st.abandoned:
			sp.Status = &otlpStatus{Message: "abandoned", Code: otlpStatusError}
		case st.ended:
			sp.Status = &otlpStatus{Code: otlpStatusOK}
		}
		rootSpans = append(rootSpans, sp)
	}

	// Tier spans in deterministic (start, traceId, name) order per tier.
	for i := range tierSpans {
		s := tierSpans[i]
		sort.SliceStable(s, func(a, b int) bool {
			if s[a].StartTimeUnixNano != s[b].StartTimeUnixNano {
				// Equal-width decimal strings are rare; compare numerically.
				x, _ := strconv.ParseInt(s[a].StartTimeUnixNano, 10, 64)
				y, _ := strconv.ParseInt(s[b].StartTimeUnixNano, 10, 64)
				return x < y
			}
			if s[a].TraceID != s[b].TraceID {
				return s[a].TraceID < s[b].TraceID
			}
			return s[a].Name < s[b].Name
		})
	}

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("telemetry: creating directory for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("telemetry: closing %s: %w", path, cerr)
		}
	}()

	// One span per line keeps the file diffable and the goldens readable.
	write := func(s string) error {
		if _, werr := f.WriteString(s); werr != nil {
			return fmt.Errorf("telemetry: writing %s: %w", path, werr)
		}
		return nil
	}
	writeResource := func(service string, attrs []otlpKeyValue, spans []otlpSpan, last bool) error {
		res := struct {
			Attributes []otlpKeyValue `json:"attributes"`
		}{Attributes: append([]otlpKeyValue{strAttr("service.name", service)}, attrs...)}
		resData, merr := json.Marshal(res)
		if merr != nil {
			return fmt.Errorf("telemetry: marshaling resource %s: %w", service, merr)
		}
		if err := write("{\"resource\":" + string(resData) +
			",\"scopeSpans\":[{\"scope\":{\"name\":\"memca/telemetry\"},\"spans\":[\n"); err != nil {
			return err
		}
		for i := range spans {
			data, merr := json.Marshal(&spans[i])
			if merr != nil {
				return fmt.Errorf("telemetry: marshaling span %d of %s: %w", i, service, merr)
			}
			sep := ",\n"
			if i == len(spans)-1 {
				sep = "\n"
			}
			if err := write(string(data) + sep); err != nil {
				return err
			}
		}
		sep := ",\n"
		if last {
			sep = "\n"
		}
		return write("]}]}" + sep)
	}

	if err := write("{\"resourceSpans\":[\n"); err != nil {
		return err
	}
	if err := writeResource(spec.ServicePrefix+"-client", nil, rootSpans, len(tierNames) == 0); err != nil {
		return err
	}
	for i, name := range tierNames {
		attrs := []otlpKeyValue{intAttr("memca.tier", int64(i))}
		if err := writeResource(spec.ServicePrefix+"-"+name, attrs, tierSpans[i], i == len(tierNames)-1); err != nil {
			return err
		}
	}
	return write("]}\n")
}

// WriteOTLP exports the tracer's event ring as OTLP/JSON.
func (t *Tracer) WriteOTLP(path string, spec OTLPSpec) error {
	return WriteOTLP(path, spec, t.TierNames(), t.Events())
}
