package telemetry

import (
	"strconv"
	"time"

	"memca/internal/trace"
)

func fmtMs(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

func fmtSecs(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 6, 64)
}

// WriteAttributionCSV exports attribution records with one row per trace:
// identity, response time, attempt/drop counts, and the per-tier
// queue/service decomposition plus retransmission wait and residual.
func WriteAttributionCSV(path string, tierNames []string, recs []Attribution) error {
	header := []string{"trace_id", "class", "start_s", "end_s", "rt_ms", "attempts", "drops", "abandoned"}
	for _, name := range tierNames {
		header = append(header, name+"_queue_ms", name+"_service_ms")
	}
	header = append(header, "retrans_wait_ms", "other_ms")

	rows := make([][]string, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		row := make([]string, 0, len(header))
		row = append(row,
			strconv.FormatUint(r.TraceID, 10),
			strconv.Itoa(r.Class),
			fmtSecs(r.Start),
			fmtSecs(r.End),
			fmtMs(r.RT),
			strconv.Itoa(r.Attempts),
			strconv.Itoa(r.Drops),
			strconv.FormatBool(r.Abandoned),
		)
		for t := range tierNames {
			var q, s time.Duration
			if t < len(r.Queue) {
				q, s = r.Queue[t], r.Service[t]
			}
			row = append(row, fmtMs(q), fmtMs(s))
		}
		row = append(row, fmtMs(r.RetransWait), fmtMs(r.Other))
		rows = append(rows, row)
	}
	return trace.WriteCSV(path, header, rows)
}

// WriteTimelineCSV exports one timeline with one row per window.
func WriteTimelineCSV(path string, tl *Timeline) error {
	header := []string{"window_start_s", "count", "drops", "mean_rt_ms", "max_rt_ms", "mean_queue_ms", "max_queue_ms"}
	pts := tl.Points()
	rows := make([][]string, 0, len(pts))
	for i, p := range pts {
		meanQ := time.Duration(0)
		if p.Count > 0 {
			meanQ = p.SumQueue / time.Duration(p.Count)
		}
		rows = append(rows, []string{
			fmtSecs(tl.WindowStart(i)),
			strconv.Itoa(p.Count),
			strconv.Itoa(p.Drops),
			fmtMs(p.MeanRT()),
			fmtMs(p.MaxRT),
			fmtMs(meanQ),
			fmtMs(p.MaxQueue),
		})
	}
	return trace.WriteCSV(path, header, rows)
}

// WriteFeaturesCSV exports one feature series with one row per window:
// the raw counts plus the derived detection features (retransmission-wait
// share, drop rate, queue-vs-service split, tail-over count).
func WriteFeaturesCSV(path string, fs *FeatureSeries) error {
	header := []string{
		"window_start_s", "count", "attempts", "drops", "tail_over",
		"retrans_share", "drop_rate", "queue_share", "service_share", "mean_rt_ms",
	}
	wins := fs.Windows()
	rows := make([][]string, 0, len(wins))
	fmtShare := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for i, w := range wins {
		rows = append(rows, []string{
			fmtSecs(fs.WindowStart(i)),
			strconv.Itoa(w.Count),
			strconv.Itoa(w.Attempts),
			strconv.Itoa(w.Drops),
			strconv.Itoa(w.TailOver),
			fmtShare(w.RetransShare()),
			fmtShare(w.DropRate()),
			fmtShare(w.QueueShare()),
			fmtShare(w.ServiceShare()),
			fmtMs(w.MeanRT()),
		})
	}
	return trace.WriteCSV(path, header, rows)
}

// WriteBreakdownCSV exports labeled breakdowns with one row per component
// per label: (run, component, time_ms, share).
func WriteBreakdownCSV(path string, tierNames []string, labels []string, breakdowns []Breakdown) error {
	rows := make([][]string, 0, len(labels)*(2*len(tierNames)+2))
	for i, label := range labels {
		b := &breakdowns[i]
		total := float64(b.RT)
		share := func(d time.Duration) string {
			if total <= 0 {
				return "0"
			}
			return strconv.FormatFloat(float64(d)/total, 'f', 4, 64)
		}
		add := func(component string, d time.Duration) {
			rows = append(rows, []string{label, component, fmtMs(d), share(d)})
		}
		for t, name := range tierNames {
			add(name+"_queue", b.Queue[t])
			add(name+"_service", b.Service[t])
		}
		add("retrans_wait", b.RetransWait)
		add("other", b.Other)
	}
	return trace.WriteCSV(path, []string{"run", "component", "time_ms", "share"}, rows)
}
