package telemetry

import (
	"testing"
	"time"

	"memca/internal/queueing"
	"memca/internal/sim"
)

// TestTracedSubmitZeroAllocs pins the enabled-path allocation contract:
// once the tracer's slabs and the network's pools are warm, a fully
// traced submit → service → complete round trip — slot claim, per-tier
// stamps, event-ring pushes, tail/head sampling, timeline booking, slot
// recycle — performs no heap allocations.
func TestTracedSubmitZeroAllocs(t *testing.T) {
	e := sim.NewEngine(11)
	spec := Spec{
		MaxActive:   256,
		EventRing:   1 << 12,
		TailKeep:    64,
		HeadEvery:   8,
		HeadKeep:    64,
		Resolutions: []time.Duration{50 * time.Millisecond, time.Second},
		// Feature extraction rides the same close path and must keep the
		// zero-alloc contract.
		FeatureWindows: []time.Duration{50 * time.Millisecond, time.Second},
		TailOver:       time.Second,
	}
	tr, err := New(e, Config{Spec: spec, Tiers: 1, Seed: 1, Horizon: time.Hour})
	if err != nil {
		t.Fatalf("telemetry.New: %v", err)
	}
	n, err := queueing.New(e, queueing.Config{
		Mode: queueing.ModeNTierRPC,
		Tiers: []queueing.TierConfig{{
			Name: "front", QueueLimit: queueing.Infinite, Servers: 1,
			Service: sim.NewDeterministic(50 * time.Microsecond),
		}},
		Classes:  []queueing.Class{{Name: "static", Depth: 0}},
		Observer: tr,
	})
	if err != nil {
		t.Fatalf("queueing.New: %v", err)
	}
	submitOne := func() {
		if _, err := n.Submit(queueing.SubmitOpts{Class: 0}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if err := e.RunAll(100); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
	}
	// Warm the request pool, tracer slots, and stats buffers; the event
	// ring wraps well before the measured phase starts.
	for i := 0; i < 4096; i++ {
		submitOne()
	}
	allocs := testing.AllocsPerRun(10000, submitOne)
	if allocs != 0 {
		t.Errorf("traced submit/complete allocates %v objects/op, want 0", allocs)
	}
	if tr.Closed() == 0 {
		t.Error("tracer observed no completions")
	}
	if tr.Untracked() != 0 {
		t.Errorf("untracked = %d, want 0 (MaxActive never exceeded)", tr.Untracked())
	}
}
