// Package telemetry reconstructs per-request causal traces from the
// queueing network's Observer hook: where each request spent its time
// (per-tier queueing vs service vs retransmission wait), which requests
// landed in the latency tail, and what the timeline of client latency
// looks like at monitoring resolutions fine enough to see a
// millibottleneck and coarse enough to miss it.
//
// The tracer is built for the simulator's zero-allocation discipline:
// every per-event structure (trace slots, per-tier stamp arrays, the span
// event ring, tail/head sample records) is pre-sized at construction, so
// the steady-state request path — submit, queue, serve, respond, complete
// — performs no heap allocations and no map operations. Maps are touched
// only on the drop/retransmission path (rare by construction: drops are
// the phenomenon under study, not the common case) and at export time.
package telemetry

import (
	"fmt"
	"sort"
	"time"

	"memca/internal/queueing"
	"memca/internal/sim"
	"memca/internal/stats"
	"memca/internal/sweep"
)

// Spec holds the user-facing tracer knobs. The zero value is not valid;
// start from DefaultSpec.
type Spec struct {
	// MaxActive bounds the number of concurrently open traces tracked in
	// full detail. Traces opened beyond it are counted as untracked and
	// appear only in the span event ring.
	MaxActive int
	// EventRing is the capacity of the raw span-event ring buffer
	// (overwrite-oldest). Zero disables event recording; attribution and
	// timelines still work.
	EventRing int
	// TailKeep is N for slowest-N sampling: the N completed traces with
	// the largest client response times are kept with full attribution.
	TailKeep int
	// HeadEvery enables a deterministic 1-in-K head sample of all closed
	// traces, seeded from the run seed so repeated runs keep identical
	// traces. Zero disables head sampling.
	HeadEvery int
	// HeadKeep bounds the head-sample reservoir (overwrite-oldest).
	HeadKeep int
	// Resolutions lists the timeline aggregation windows, e.g. 50ms and
	// 1s to contrast fine-grained and coarse monitoring views.
	Resolutions []time.Duration
	// FeatureWindows lists the streaming feature-extraction windows: for
	// each width the tracer maintains a FeatureSeries of per-window
	// detection features (retransmission-wait share, drop rate, queue-vs-
	// service split, tail-over count) booked incrementally as traces
	// close. Empty disables feature extraction.
	FeatureWindows []time.Duration
	// TailOver is the response-time threshold for the per-window TailOver
	// count (the paper's 1 s damage line is the canonical choice); zero
	// disables the count. Only meaningful with FeatureWindows set.
	TailOver time.Duration
}

// DefaultSpec returns tracer settings sized for the paper's experiments:
// room for every concurrent client of the default workload, a 64K event
// ring, 512-deep tail and head samples, and the 50ms-vs-1s dual-resolution
// timelines from the monitoring-blindness analysis.
func DefaultSpec() Spec {
	return Spec{
		MaxActive:   16384,
		EventRing:   1 << 16,
		TailKeep:    512,
		HeadEvery:   64,
		HeadKeep:    512,
		Resolutions: []time.Duration{50 * time.Millisecond, time.Second},
	}
}

// Validate reports the first spec error, or nil.
func (s Spec) Validate() error {
	if s.MaxActive <= 0 {
		return fmt.Errorf("telemetry: MaxActive must be positive, got %d", s.MaxActive)
	}
	if s.EventRing < 0 {
		return fmt.Errorf("telemetry: EventRing must be >= 0, got %d", s.EventRing)
	}
	if s.TailKeep < 0 {
		return fmt.Errorf("telemetry: TailKeep must be >= 0, got %d", s.TailKeep)
	}
	if s.HeadEvery < 0 {
		return fmt.Errorf("telemetry: HeadEvery must be >= 0, got %d", s.HeadEvery)
	}
	if s.HeadEvery > 0 && s.HeadKeep <= 0 {
		return fmt.Errorf("telemetry: HeadKeep must be positive when HeadEvery is set, got %d", s.HeadKeep)
	}
	for i, r := range s.Resolutions {
		if r <= 0 {
			return fmt.Errorf("telemetry: resolution %d must be positive, got %v", i, r)
		}
	}
	for i, w := range s.FeatureWindows {
		if w <= 0 {
			return fmt.Errorf("telemetry: feature window %d must be positive, got %v", i, w)
		}
	}
	if s.TailOver < 0 {
		return fmt.Errorf("telemetry: TailOver must be >= 0, got %v", s.TailOver)
	}
	return nil
}

// Config assembles a Tracer.
type Config struct {
	Spec
	// Tiers is the tier count of the observed network.
	Tiers int
	// TierNames labels tiers in exports; must have Tiers entries when
	// non-nil.
	TierNames []string
	// Seed derives the deterministic head-sampling phase. Use the run's
	// sweep seed so sampling never draws from the engine RNG (which would
	// perturb the simulated system).
	Seed int64
	// Horizon bounds the timelines: they cover [base, base+Horizon] and
	// traces closing beyond that (the post-run drain) are not booked.
	Horizon time.Duration
	// Arena, when non-nil, supplies the tracer's per-record duration slab
	// from the run's shared stats arena, so the sim and trace paths draw
	// from one allocator. The arena must outlive the tracer and must not
	// be Reset while the tracer's attributions are still read.
	Arena *stats.Arena
}

// Validate reports the first configuration error, or nil.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Tiers <= 0 {
		return fmt.Errorf("telemetry: Tiers must be positive, got %d", c.Tiers)
	}
	if c.TierNames != nil && len(c.TierNames) != c.Tiers {
		return fmt.Errorf("telemetry: got %d tier names for %d tiers", len(c.TierNames), c.Tiers)
	}
	if len(c.Resolutions) > 0 && c.Horizon <= 0 {
		return fmt.Errorf("telemetry: Horizon must be positive when timelines are enabled, got %v", c.Horizon)
	}
	if len(c.FeatureWindows) > 0 && c.Horizon <= 0 {
		return fmt.Errorf("telemetry: Horizon must be positive when feature windows are enabled, got %v", c.Horizon)
	}
	return nil
}

// EventKind identifies one span event. Values below evClientBase mirror
// queueing.SpanKind; the rest are client-side events the network cannot
// observe.
type EventKind uint8

// Client-side event kinds.
const (
	evClientBase EventKind = 32
	// EvRetransmitScheduled marks a dropped attempt queued for
	// retransmission; Aux carries the scheduled resubmit time.
	EvRetransmitScheduled EventKind = evClientBase + iota - 1
	// EvAbandoned marks the client giving up on the trace.
	EvAbandoned
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvRetransmitScheduled:
		return "retransmit-scheduled"
	case EvAbandoned:
		return "abandoned"
	default:
		return queueing.SpanKind(k).String()
	}
}

// SpanEvent is one entry of the raw event ring.
type SpanEvent struct {
	// T is the virtual time of the event.
	T time.Duration
	// Seq is the tracer-local sequence number: a total order over events,
	// including ties at the same virtual time.
	Seq uint64
	// TraceID identifies the logical client request.
	TraceID uint64
	// Aux carries kind-specific payload (EvRetransmitScheduled: the
	// scheduled resubmit time).
	Aux time.Duration
	// Kind is the event kind.
	Kind EventKind
	// Tier is the tier index, or -1 for client-side events.
	Tier int8
	// Attempt is the retransmission attempt of the observed request.
	Attempt uint16
}

// tierStamps accumulates one trace's time at one tier. reqAt/svcAt are the
// open span starts (-1 when no span is open); queue/service are the closed
// totals across attempts.
type tierStamps struct {
	reqAt   time.Duration
	svcAt   time.Duration
	queue   time.Duration
	service time.Duration
}

// traceSlot is the per-open-trace state, pooled in a flat array and
// addressed by Request.TraceSlot.
type traceSlot struct {
	traceID     uint64
	first       time.Duration
	lastDrop    time.Duration
	retransWait time.Duration
	class       int
	attempts    int
	drops       int
	open        bool
	// discard marks a slot opened before the last Reset: its timing mixes
	// warmup with measurement, so it is freed without being sampled.
	discard bool
}

// Tracer implements queueing.Observer (and, structurally, the workload
// generator's TraceHook) to reconstruct per-request causal traces. All
// methods run on the simulator goroutine.
type Tracer struct {
	engine *sim.Engine
	cfg    Config
	tiers  int

	slots     []traceSlot
	tierWork  []tierStamps // slot-major: [slot*tiers+tier]
	freeSlots []int32
	// pending maps traceID to slot for traces between a drop and the
	// retransmitted submit (the only phase where the Request pointer — and
	// with it TraceSlot — is not in flight).
	pending map[uint64]int32

	events   []SpanEvent
	eventSeq uint64

	// tail is a min-heap on (RT, TraceID) of the slowest TailKeep closed
	// traces; backing holds its pre-allocated Queue/Service arrays.
	tail []Attribution
	// head is an overwrite-oldest reservoir of every HeadEvery-th closed
	// trace.
	head      []Attribution
	headNext  int
	headCount uint64
	headPhase uint64
	backing   []time.Duration

	timelines []*Timeline
	features  []*FeatureSeries

	agg       Aggregate
	closed    uint64
	untracked uint64
}

// New builds a tracer for a network with cfg.Tiers tiers driven by engine.
// Wire it in via queueing.Config.Observer and (for retransmission-wait
// attribution) the workload generator's Trace hook.
func New(engine *sim.Engine, cfg Config) (*Tracer, error) {
	if engine == nil {
		return nil, fmt.Errorf("telemetry: engine must not be nil")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tracer{
		engine:    engine,
		cfg:       cfg,
		tiers:     cfg.Tiers,
		slots:     make([]traceSlot, cfg.MaxActive),
		tierWork:  make([]tierStamps, cfg.MaxActive*cfg.Tiers),
		freeSlots: make([]int32, 0, cfg.MaxActive),
		pending:   make(map[uint64]int32),
	}
	for i := cfg.MaxActive - 1; i >= 0; i-- {
		t.freeSlots = append(t.freeSlots, int32(i))
	}
	if cfg.EventRing > 0 {
		t.events = make([]SpanEvent, cfg.EventRing)
	}
	// Pre-allocate every sample record's per-tier arrays out of one
	// backing slab so tail replacement and head overwrite never allocate.
	nRecs := cfg.TailKeep + cfg.HeadKeep
	if cfg.Arena != nil {
		t.backing = cfg.Arena.DurationSlab(nRecs * 2 * cfg.Tiers)
	} else {
		t.backing = make([]time.Duration, nRecs*2*cfg.Tiers)
	}
	t.tail = make([]Attribution, 0, cfg.TailKeep)
	if cfg.HeadEvery > 0 {
		t.head = make([]Attribution, 0, cfg.HeadKeep)
		t.headPhase = uint64(sweep.DeriveSeed(cfg.Seed, 0)) % uint64(cfg.HeadEvery)
	}
	t.timelines = make([]*Timeline, len(cfg.Resolutions))
	for i, res := range cfg.Resolutions {
		t.timelines[i] = newTimeline(res, cfg.Horizon)
	}
	t.features = make([]*FeatureSeries, len(cfg.FeatureWindows))
	for i, res := range cfg.FeatureWindows {
		t.features[i] = newFeatureSeries(res, cfg.Horizon, cfg.TailOver)
	}
	t.agg = newAggregate(cfg.Tiers)
	return t, nil
}

// recBacking returns the pre-allocated Queue/Service arrays of sample
// record idx (tail records first, then head records).
func (t *Tracer) recBacking(idx int) (queue, service []time.Duration) {
	off := idx * 2 * t.tiers
	return t.backing[off : off+t.tiers : off+t.tiers],
		t.backing[off+t.tiers : off+2*t.tiers : off+2*t.tiers]
}

// Observe implements queueing.Observer.
//
//memca:hotpath
func (t *Tracer) Observe(req *queueing.Request, kind queueing.SpanKind, tier int) {
	now := t.engine.Now()
	t.pushEvent(now, req.TraceID, EventKind(kind), tier, req.Attempt, 0)
	switch kind {
	case queueing.SpanSubmit:
		t.onSubmit(req, now)
	case queueing.SpanTierRequest:
		if si := req.TraceSlot; si >= 0 {
			t.work(si, tier).reqAt = now
		}
	case queueing.SpanServiceStart:
		if si := req.TraceSlot; si >= 0 {
			w := t.work(si, tier)
			if w.reqAt >= 0 {
				w.queue += now - w.reqAt
				w.reqAt = -1
			}
			w.svcAt = now
		}
	case queueing.SpanServiceEnd:
		if si := req.TraceSlot; si >= 0 {
			w := t.work(si, tier)
			if w.svcAt >= 0 {
				w.service += now - w.svcAt
				w.svcAt = -1
			}
		}
	case queueing.SpanDrop:
		t.onDrop(req, tier, now)
	case queueing.SpanComplete:
		if si := req.TraceSlot; si >= 0 {
			t.closeSlot(si, now, false)
		}
	}
}

// RetransmitScheduled implements the workload generator's TraceHook: a
// dropped attempt was queued for resubmission at fireAt.
//
//memca:hotpath
func (t *Tracer) RetransmitScheduled(traceID uint64, attempt int, fireAt time.Duration) {
	t.pushEvent(t.engine.Now(), traceID, EvRetransmitScheduled, -1, attempt, fireAt)
}

// TraceAbandoned implements the workload generator's TraceHook: the client
// gave up on the trace (retries exhausted or session retired).
func (t *Tracer) TraceAbandoned(traceID uint64) { t.Abandon(traceID) }

// Abandon closes a trace that will never complete. It is safe to call for
// unknown or untracked trace IDs.
//
//memca:hotpath
func (t *Tracer) Abandon(traceID uint64) {
	now := t.engine.Now()
	t.pushEvent(now, traceID, EvAbandoned, -1, 0, 0)
	if si, ok := t.pending[traceID]; ok {
		t.closeSlot(si, now, true)
	}
}

func (t *Tracer) pushEvent(now time.Duration, traceID uint64, kind EventKind, tier, attempt int, aux time.Duration) {
	if len(t.events) == 0 {
		return
	}
	e := &t.events[t.eventSeq%uint64(len(t.events))]
	e.T = now
	e.Seq = t.eventSeq
	e.TraceID = traceID
	e.Aux = aux
	e.Kind = kind
	e.Tier = int8(tier)
	e.Attempt = uint16(attempt)
	t.eventSeq++
}

func (t *Tracer) work(si int32, tier int) *tierStamps {
	return &t.tierWork[int(si)*t.tiers+tier]
}

func (t *Tracer) onSubmit(req *queueing.Request, now time.Duration) {
	if req.Attempt > 0 {
		// A retransmission rejoins its open trace through the pending map
		// (the original Request object was recycled at the drop).
		si, ok := t.pending[req.TraceID]
		if !ok {
			return // trace was untracked or already abandoned
		}
		req.TraceSlot = si
		s := &t.slots[si]
		s.attempts++
		if s.lastDrop >= 0 {
			s.retransWait += now - s.lastDrop
			s.lastDrop = -1
		}
		return
	}
	k := len(t.freeSlots)
	if k == 0 {
		t.untracked++
		return
	}
	si := t.freeSlots[k-1]
	t.freeSlots = t.freeSlots[:k-1]
	req.TraceSlot = si
	s := &t.slots[si]
	s.traceID = req.TraceID
	s.first = now
	s.lastDrop = -1
	s.retransWait = 0
	s.class = req.Class
	s.attempts = 1
	s.drops = 0
	s.open = true
	s.discard = false
	base := int(si) * t.tiers
	for i := 0; i < t.tiers; i++ {
		t.tierWork[base+i] = tierStamps{reqAt: -1, svcAt: -1}
	}
}

func (t *Tracer) onDrop(req *queueing.Request, tier int, now time.Duration) {
	si := req.TraceSlot
	if si < 0 {
		return
	}
	s := &t.slots[si]
	s.drops++
	s.lastDrop = now
	// The refusing tier fired SpanTierRequest at the same instant; clear
	// the dangling queue-enter stamp so it cannot leak into the next
	// attempt's queueing time.
	t.work(si, tier).reqAt = -1
	t.pending[req.TraceID] = si
}

func (t *Tracer) closeSlot(si int32, end time.Duration, abandoned bool) {
	s := &t.slots[si]
	delete(t.pending, s.traceID)
	if s.discard {
		t.freeSlot(si)
		return
	}
	rt := end - s.first
	base := int(si) * t.tiers
	var totalQueue, totalService time.Duration
	for i := 0; i < t.tiers; i++ {
		totalQueue += t.tierWork[base+i].queue
		totalService += t.tierWork[base+i].service
	}

	a := &t.agg
	a.Count++
	a.RT += rt
	a.RetransWait += s.retransWait
	a.Other += rt - totalQueue - totalService - s.retransWait
	a.Attempts += s.attempts
	a.Drops += s.drops
	if abandoned {
		a.Abandoned++
	}
	for i := 0; i < t.tiers; i++ {
		a.Queue[i] += t.tierWork[base+i].queue
		a.Service[i] += t.tierWork[base+i].service
	}

	for _, tl := range t.timelines {
		tl.add(end, rt, totalQueue, s.drops)
	}
	for _, fs := range t.features {
		fs.Add(end, rt, totalQueue, totalService, s.retransWait, s.attempts, s.drops)
	}

	t.sampleTail(si, rt, end, abandoned)
	idx := t.closed
	t.closed++
	if t.cfg.HeadEvery > 0 && idx%uint64(t.cfg.HeadEvery) == t.headPhase {
		t.sampleHead(si, rt, end, abandoned)
	}
	t.freeSlot(si)
}

func (t *Tracer) freeSlot(si int32) {
	t.slots[si].open = false
	t.freeSlots = append(t.freeSlots, si)
}

// fill writes the slot's attribution into rec, reusing rec's Queue/Service
// arrays (they must already have t.tiers entries).
func (t *Tracer) fill(rec *Attribution, si int32, rt, end time.Duration, abandoned bool) {
	s := &t.slots[si]
	rec.TraceID = s.traceID
	rec.Class = s.class
	rec.Start = s.first
	rec.End = end
	rec.RT = rt
	rec.Attempts = s.attempts
	rec.Drops = s.drops
	rec.Abandoned = abandoned
	rec.RetransWait = s.retransWait
	base := int(si) * t.tiers
	var tq, ts time.Duration
	for i := 0; i < t.tiers; i++ {
		q, sv := t.tierWork[base+i].queue, t.tierWork[base+i].service
		rec.Queue[i] = q
		rec.Service[i] = sv
		tq += q
		ts += sv
	}
	rec.Other = rt - tq - ts - rec.RetransWait
}

// tailLess orders the tail min-heap: the root is the fastest kept trace,
// evicted first. TraceID breaks RT ties so the kept set is deterministic.
func tailLess(a, b *Attribution) bool {
	if a.RT != b.RT {
		return a.RT < b.RT
	}
	return a.TraceID < b.TraceID
}

func (t *Tracer) sampleTail(si int32, rt, end time.Duration, abandoned bool) {
	if t.cfg.TailKeep == 0 {
		return
	}
	if len(t.tail) < t.cfg.TailKeep {
		t.tail = t.tail[:len(t.tail)+1]
		rec := &t.tail[len(t.tail)-1]
		if rec.Queue == nil {
			rec.Queue, rec.Service = t.recBacking(len(t.tail) - 1)
		}
		t.fill(rec, si, rt, end, abandoned)
		t.tailSiftUp(len(t.tail) - 1)
		return
	}
	root := &t.tail[0]
	if rt < root.RT || (rt == root.RT && t.slots[si].traceID <= root.TraceID) {
		return
	}
	t.fill(root, si, rt, end, abandoned)
	t.tailSiftDown(0)
}

func (t *Tracer) tailSiftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !tailLess(&t.tail[i], &t.tail[parent]) {
			return
		}
		t.tail[i], t.tail[parent] = t.tail[parent], t.tail[i]
		i = parent
	}
}

func (t *Tracer) tailSiftDown(i int) {
	n := len(t.tail)
	for {
		least := i
		if l := 2*i + 1; l < n && tailLess(&t.tail[l], &t.tail[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && tailLess(&t.tail[r], &t.tail[least]) {
			least = r
		}
		if least == i {
			return
		}
		t.tail[i], t.tail[least] = t.tail[least], t.tail[i]
		i = least
	}
}

func (t *Tracer) sampleHead(si int32, rt, end time.Duration, abandoned bool) {
	var rec *Attribution
	if len(t.head) < t.cfg.HeadKeep {
		t.head = t.head[:len(t.head)+1]
		rec = &t.head[len(t.head)-1]
		if rec.Queue == nil {
			rec.Queue, rec.Service = t.recBacking(t.cfg.TailKeep + len(t.head) - 1)
		}
	} else {
		rec = &t.head[t.headNext]
	}
	t.headNext = (t.headNext + 1) % t.cfg.HeadKeep
	t.headCount++
	t.fill(rec, si, rt, end, abandoned)
}

// Reset starts a fresh measurement window at virtual time base: samples,
// aggregates, timelines, and the event ring are cleared, and every trace
// still open (its timing mixes warmup with measurement) is marked to be
// discarded when it closes. Call it after the warmup phase, mirroring the
// metric resets of the surrounding experiment.
func (t *Tracer) Reset(base time.Duration) {
	for i := range t.slots {
		if t.slots[i].open {
			t.slots[i].discard = true
		}
	}
	t.eventSeq = 0
	t.tail = t.tail[:0]
	t.head = t.head[:0]
	t.headNext = 0
	t.headCount = 0
	t.agg = newAggregate(t.tiers)
	t.closed = 0
	t.untracked = 0
	for _, tl := range t.timelines {
		tl.reset(base)
	}
	for _, fs := range t.features {
		fs.reset(base)
	}
}

// Closed returns the number of traces closed (completed or abandoned)
// since the last Reset, excluding discarded warmup traces.
func (t *Tracer) Closed() uint64 { return t.closed }

// Untracked returns how many traces overflowed MaxActive.
func (t *Tracer) Untracked() uint64 { return t.untracked }

// OpenTraces returns the number of currently open trace slots.
func (t *Tracer) OpenTraces() int { return len(t.slots) - len(t.freeSlots) }

// Aggregate returns the running attribution totals over all closed traces.
// The per-tier slices are shared; do not mutate.
func (t *Tracer) Aggregate() Aggregate { return t.agg }

// Timelines returns the dual-resolution timelines, in Resolutions order
// (shared; do not mutate).
func (t *Tracer) Timelines() []*Timeline { return t.timelines }

// Timeline returns the timeline at the given resolution, or nil.
func (t *Tracer) Timeline(res time.Duration) *Timeline {
	for _, tl := range t.timelines {
		if tl.Res == res {
			return tl
		}
	}
	return nil
}

// Features returns the streaming feature series, in FeatureWindows order
// (shared; do not mutate).
func (t *Tracer) Features() []*FeatureSeries { return t.features }

// FeaturesAt returns the feature series at the given window width, or nil.
func (t *Tracer) FeaturesAt(res time.Duration) *FeatureSeries {
	for _, fs := range t.features {
		if fs.Res == res {
			return fs
		}
	}
	return nil
}

// TierNames returns the configured tier labels, or generated ones.
func (t *Tracer) TierNames() []string {
	if t.cfg.TierNames != nil {
		return t.cfg.TierNames
	}
	names := make([]string, t.tiers)
	for i := range names {
		names[i] = fmt.Sprintf("tier%d", i)
	}
	return names
}

// TailAttributions returns the slowest-N sample ordered slowest first
// (ties by TraceID ascending). The returned records are deep copies.
func (t *Tracer) TailAttributions() []Attribution {
	out := copyAttributions(t.tail, t.tiers)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RT != out[j].RT {
			return out[i].RT > out[j].RT
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// HeadAttributions returns the deterministic 1-in-K head sample in close
// order. The returned records are deep copies.
func (t *Tracer) HeadAttributions() []Attribution {
	out := copyAttributions(t.head, t.tiers)
	if uint64(len(t.head)) < t.headCount {
		// The reservoir wrapped: rotate so the oldest kept record leads.
		rot := make([]Attribution, 0, len(out))
		rot = append(rot, out[t.headNext:]...)
		rot = append(rot, out[:t.headNext]...)
		return rot
	}
	return out
}

func copyAttributions(recs []Attribution, tiers int) []Attribution {
	out := make([]Attribution, len(recs))
	slab := make([]time.Duration, len(recs)*2*tiers)
	for i := range recs {
		out[i] = recs[i]
		off := i * 2 * tiers
		out[i].Queue = slab[off : off+tiers]
		out[i].Service = slab[off+tiers : off+2*tiers]
		copy(out[i].Queue, recs[i].Queue)
		copy(out[i].Service, recs[i].Service)
	}
	return out
}

// Events returns the span-event ring in sequence order (oldest first).
// The slice is freshly allocated.
func (t *Tracer) Events() []SpanEvent {
	if len(t.events) == 0 || t.eventSeq == 0 {
		return nil
	}
	n := uint64(len(t.events))
	if t.eventSeq <= n {
		out := make([]SpanEvent, t.eventSeq)
		copy(out, t.events[:t.eventSeq])
		return out
	}
	out := make([]SpanEvent, n)
	start := t.eventSeq % n
	copy(out, t.events[start:])
	copy(out[n-start:], t.events[:start])
	return out
}

// EventsDropped returns how many span events were overwritten in the ring.
func (t *Tracer) EventsDropped() uint64 {
	if len(t.events) == 0 {
		return 0
	}
	if n := uint64(len(t.events)); t.eventSeq > n {
		return t.eventSeq - n
	}
	return 0
}
