package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// The metrics exporter emits the feature series in the standard OTLP/JSON
// metrics encoding (the protobuf JSON mapping of
// opentelemetry.proto.metrics.v1), again without any OpenTelemetry
// dependency: each detection feature becomes one gauge metric with one
// data point per window, so the same series a detector consumes in
// process can be shipped to any OTLP-speaking metrics backend. Field
// order is fixed by the struct layouts, keeping same-seed exports
// byte-identical.

type otlpNumberPoint struct {
	StartTimeUnixNano string   `json:"startTimeUnixNano"`
	TimeUnixNano      string   `json:"timeUnixNano"`
	AsDouble          *float64 `json:"asDouble,omitempty"`
	AsInt             *string  `json:"asInt,omitempty"`
}

type otlpGauge struct {
	DataPoints []otlpNumberPoint `json:"dataPoints"`
}

type otlpMetric struct {
	Name        string    `json:"name"`
	Description string    `json:"description,omitempty"`
	Unit        string    `json:"unit,omitempty"`
	Gauge       otlpGauge `json:"gauge"`
}

// WriteFeaturesOTLP exports one feature series as OTLP/JSON gauge metrics
// under the resource "<prefix>-features". Each window contributes one data
// point per feature, stamped at the window's right edge with the window's
// left edge as the start time.
func WriteFeaturesOTLP(path string, spec OTLPSpec, fs *FeatureSeries) (err error) {
	if err := spec.Validate(); err != nil {
		return err
	}
	if fs == nil {
		return fmt.Errorf("telemetry: feature series must not be nil")
	}
	nanos := func(i int, edge int64) string {
		t := fs.WindowStart(i).Nanoseconds() + edge*fs.Res.Nanoseconds()
		return strconv.FormatInt(spec.EpochNanos+t, 10)
	}
	wins := fs.Windows()
	doubleMetric := func(name, desc string, value func(WindowFeatures) float64) otlpMetric {
		points := make([]otlpNumberPoint, 0, len(wins))
		for i, w := range wins {
			v := value(w)
			points = append(points, otlpNumberPoint{
				StartTimeUnixNano: nanos(i, 0),
				TimeUnixNano:      nanos(i, 1),
				AsDouble:          &v,
			})
		}
		return otlpMetric{Name: name, Description: desc, Unit: "1", Gauge: otlpGauge{DataPoints: points}}
	}
	intMetric := func(name, desc, unit string, value func(WindowFeatures) int64) otlpMetric {
		points := make([]otlpNumberPoint, 0, len(wins))
		for i, w := range wins {
			v := strconv.FormatInt(value(w), 10)
			points = append(points, otlpNumberPoint{
				StartTimeUnixNano: nanos(i, 0),
				TimeUnixNano:      nanos(i, 1),
				AsInt:             &v,
			})
		}
		return otlpMetric{Name: name, Description: desc, Unit: unit, Gauge: otlpGauge{DataPoints: points}}
	}

	metrics := []otlpMetric{
		intMetric("memca.features.count", "traces closed in the window", "1",
			func(w WindowFeatures) int64 { return int64(w.Count) }),
		intMetric("memca.features.tail_over", "closed traces at or above the tail threshold", "1",
			func(w WindowFeatures) int64 { return int64(w.TailOver) }),
		doubleMetric("memca.features.retrans_share", "retransmission-wait share of summed response time",
			func(w WindowFeatures) float64 { return w.RetransShare() }),
		doubleMetric("memca.features.drop_rate", "rejected fraction of submitted attempts",
			func(w WindowFeatures) float64 { return w.DropRate() }),
		doubleMetric("memca.features.queue_share", "queueing share of summed response time",
			func(w WindowFeatures) float64 { return w.QueueShare() }),
		doubleMetric("memca.features.service_share", "service share of summed response time",
			func(w WindowFeatures) float64 { return w.ServiceShare() }),
	}

	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("telemetry: creating directory for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("telemetry: closing %s: %w", path, cerr)
		}
	}()
	write := func(s string) error {
		if _, werr := f.WriteString(s); werr != nil {
			return fmt.Errorf("telemetry: writing %s: %w", path, werr)
		}
		return nil
	}

	res := struct {
		Attributes []otlpKeyValue `json:"attributes"`
	}{Attributes: []otlpKeyValue{
		strAttr("service.name", spec.ServicePrefix+"-features"),
		intAttr("memca.feature_window_ms", fs.Res.Milliseconds()),
	}}
	resData, merr := json.Marshal(res)
	if merr != nil {
		return fmt.Errorf("telemetry: marshaling features resource: %w", merr)
	}
	if err := write("{\"resourceMetrics\":[\n{\"resource\":" + string(resData) +
		",\"scopeMetrics\":[{\"scope\":{\"name\":\"memca/telemetry\"},\"metrics\":[\n"); err != nil {
		return err
	}
	for i := range metrics {
		data, merr := json.Marshal(&metrics[i])
		if merr != nil {
			return fmt.Errorf("telemetry: marshaling metric %s: %w", metrics[i].Name, merr)
		}
		sep := ",\n"
		if i == len(metrics)-1 {
			sep = "\n"
		}
		if err := write(string(data) + sep); err != nil {
			return err
		}
	}
	return write("]}]}\n]}\n")
}
